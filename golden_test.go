// Golden end-to-end regression fixture (ISSUE PR 2): a tiny fixed-seed
// run of the full pipeline — dataset generation, XGBoost training,
// held-out evaluation, and the scheduling simulation — with the key
// outputs pinned in testdata/golden/e2e.json. Every stage is
// deterministic for fixed seeds regardless of worker count, so any
// drift in these numbers means a behavior change somewhere in the
// pipeline, caught here rather than in production comparisons.
//
// Refresh the fixture after an intentional change with
//
//	go test -run TestGoldenEndToEnd -update
package crossarch

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"testing"

	"crossarch/internal/apps"
	"crossarch/internal/arch"
	"crossarch/internal/core"
	"crossarch/internal/dataset"
	"crossarch/internal/experiments"
	"crossarch/internal/ml/xgboost"
	"crossarch/internal/obs"
	"crossarch/internal/sched"
)

var updateGolden = flag.Bool("update", false, "rewrite the golden end-to-end fixture")

// goldenE2E is the pinned shape of the run. Floats are rounded to six
// decimals before comparison so the fixture file stays readable.
type goldenE2E struct {
	Rows       int                `json:"rows"`
	MAE        float64            `json:"mae"`
	SOS        float64            `json:"sos"`
	Makespans  map[string]float64 `json:"makespan_sec"`
	MetricKeys []string           `json:"metric_keys"`
}

func round6(v float64) float64 { return math.Round(v*1e6) / 1e6 }

// runGoldenPipeline executes the scaled-down pipeline: three apps, one
// trial, a small boosted model, and a 400-job workload under two
// strategies. Fixed seeds end to end.
func runGoldenPipeline(t *testing.T) goldenE2E {
	t.Helper()
	obs.Reset()

	ds, err := dataset.Build(dataset.Params{
		Apps:   []*apps.App{apps.CoMD(), apps.XSBench(), apps.MiniFE()},
		Trials: 1,
		Seed:   11,
	})
	if err != nil {
		t.Fatalf("dataset: %v", err)
	}

	model := xgboost.New(xgboost.Params{Rounds: 40, MaxDepth: 4, LearningRate: 0.2, Seed: 5})
	pred, ev, err := core.TrainPredictor(ds, model, 7)
	if err != nil {
		t.Fatalf("train: %v", err)
	}

	jobs, err := experiments.SampleWorkload(ds, pred, experiments.SchedConfig{
		NumJobs: 400, WorkloadSeed: 13,
	})
	if err != nil {
		t.Fatalf("workload: %v", err)
	}
	makespans := map[string]float64{}
	for _, strat := range []sched.Strategy{sched.NewRoundRobin(), sched.NewModelBased()} {
		jcopy := make([]*sched.Job, len(jobs))
		for i, j := range jobs {
			cp := *j
			jcopy[i] = &cp
		}
		res, err := sched.Run(jcopy, sched.NewCluster(arch.All()), strat, sched.Params{})
		if err != nil {
			t.Fatalf("sched %s: %v", strat.Name(), err)
		}
		makespans[res.Strategy] = round6(res.MakespanSec)
	}

	return goldenE2E{
		Rows:       ds.NumRows(),
		MAE:        round6(ev.MAE),
		SOS:        round6(ev.SOS),
		Makespans:  makespans,
		MetricKeys: obs.TakeSnapshot().MetricKeys(),
	}
}

func TestGoldenEndToEnd(t *testing.T) {
	got := runGoldenPipeline(t)
	path := filepath.Join("testdata", "golden", "e2e.json")

	if *updateGolden {
		buf, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, append(buf, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s", path)
		return
	}

	buf, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read golden fixture (run with -update to create): %v", err)
	}
	var want goldenE2E
	if err := json.Unmarshal(buf, &want); err != nil {
		t.Fatalf("parse %s: %v", path, err)
	}

	if got.Rows != want.Rows {
		t.Errorf("dataset rows = %d, golden %d", got.Rows, want.Rows)
	}
	if got.MAE != want.MAE {
		t.Errorf("held-out MAE = %v, golden %v", got.MAE, want.MAE)
	}
	if got.SOS != want.SOS {
		t.Errorf("held-out SOS = %v, golden %v", got.SOS, want.SOS)
	}
	for strat, wantMS := range want.Makespans {
		if gotMS, ok := got.Makespans[strat]; !ok || gotMS != wantMS {
			t.Errorf("makespan[%s] = %v, golden %v", strat, got.Makespans[strat], wantMS)
		}
	}

	// The metric-key check is a superset assertion: every key the
	// fixture pins must still be emitted (keys may grow as new
	// instrumentation lands; dropping one is the regression).
	have := map[string]bool{}
	for _, k := range got.MetricKeys {
		have[k] = true
	}
	var missing []string
	for _, k := range want.MetricKeys {
		if !have[k] {
			missing = append(missing, k)
		}
	}
	if len(missing) > 0 {
		t.Errorf("metric keys missing from snapshot: %v", missing)
	}
	if t.Failed() {
		fmt.Fprintln(os.Stderr, "golden_test: intentional pipeline changes need `go test -run TestGoldenEndToEnd -update`")
	}
}
