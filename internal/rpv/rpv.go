// Package rpv implements the paper's Relative Performance Vector: for
// an application-input pair executed on N systems, rpv(a, i, s) is the
// vector of runtimes on every system relative to the runtime on system
// s. Following the paper's worked example (10 min on X, 8 on Y, 21 on Z
// gives [1.0, 0.8, 2.1] relative to X), entries are time ratios: lower
// means faster. The reference system's own entry is exactly 1.
//
// Note on Algorithm 2: the paper's pseudocode selects argmax(rpv) for
// "the fastest machine", which is inconsistent with the time-ratio
// encoding of its own example. This package keeps the example's
// semantics, so the fastest machine is the argmin; the scheduler uses
// Fastest()/RankedByPerformance() accordingly (see DESIGN.md §1).
package rpv

import (
	"fmt"
	"math"
	"sort"
)

// RPV is a relative performance vector: entry i is the runtime on
// system i divided by the runtime on the reference system.
type RPV []float64

// FromTimes builds the RPV of the given runtimes relative to system
// ref. It returns an error for an out-of-range reference or a
// non-positive reference time.
func FromTimes(times []float64, ref int) (RPV, error) {
	if ref < 0 || ref >= len(times) {
		return nil, fmt.Errorf("rpv: reference %d out of range [0,%d)", ref, len(times))
	}
	base := times[ref]
	if !(base > 0) {
		return nil, fmt.Errorf("rpv: non-positive reference time %v", base)
	}
	v := make(RPV, len(times))
	for i, t := range times {
		if !(t > 0) {
			return nil, fmt.Errorf("rpv: non-positive time %v at system %d", t, i)
		}
		v[i] = t / base
	}
	return v, nil
}

// RelativeToMin returns the vector relative to the fastest system
// (the paper's rpv(.,.,min) where performance is highest, i.e. the
// smallest runtime): all entries >= 1.
func RelativeToMin(times []float64) (RPV, error) {
	return FromTimes(times, argmin(times))
}

// RelativeToMax returns the vector relative to the slowest system
// (the paper's rpv(.,.,max)): all entries <= 1.
func RelativeToMax(times []float64) (RPV, error) {
	return FromTimes(times, argmax(times))
}

func argmin(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x < xs[best] {
			best = i
		}
	}
	return best
}

func argmax(xs []float64) int {
	best := 0
	for i, x := range xs {
		if x > xs[best] {
			best = i
		}
	}
	return best
}

// Fastest returns the index of the fastest system (smallest time
// ratio). It panics on an empty vector.
func (v RPV) Fastest() int {
	if len(v) == 0 {
		panic("rpv: Fastest of empty vector")
	}
	return argmin(v)
}

// Slowest returns the index of the slowest system.
func (v RPV) Slowest() int {
	if len(v) == 0 {
		panic("rpv: Slowest of empty vector")
	}
	return argmax(v)
}

// RankedByPerformance returns system indices ordered fastest to
// slowest; ties break by index, so the order is deterministic.
func (v RPV) RankedByPerformance() []int {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	return idx
}

// Rebase re-expresses the vector relative to a different system:
// Rebase(j)[i] = v[i] / v[j]. FromTimes(t, a).Rebase(b) equals
// FromTimes(t, b) up to floating point.
func (v RPV) Rebase(ref int) (RPV, error) {
	if ref < 0 || ref >= len(v) {
		return nil, fmt.Errorf("rpv: rebase reference %d out of range", ref)
	}
	if !(v[ref] > 0) {
		return nil, fmt.Errorf("rpv: rebase on non-positive entry %v", v[ref])
	}
	out := make(RPV, len(v))
	for i, x := range v {
		out[i] = x / v[ref]
	}
	return out, nil
}

// Speedup returns how many times faster system i is than system j
// under this vector (> 1 means i is faster). Out-of-range indices
// panic with a descriptive message, matching Fastest/Slowest. A
// non-positive or non-finite entry at either index yields NaN rather
// than a spurious ±Inf or negative ratio, so a degenerate vector
// (one that fails Validate) can never masquerade as a real speedup.
func (v RPV) Speedup(i, j int) float64 {
	if i < 0 || i >= len(v) || j < 0 || j >= len(v) {
		panic(fmt.Sprintf("rpv: Speedup(%d, %d) out of range for %d systems", i, j, len(v)))
	}
	vi, vj := v[i], v[j]
	if !(vi > 0) || !(vj > 0) || math.IsInf(vi, 1) || math.IsInf(vj, 1) {
		return math.NaN()
	}
	return vj / vi
}

// Validate checks the vector is usable: non-empty, all entries
// positive and finite, and at least one entry equal to 1 (the
// reference), within tolerance.
func (v RPV) Validate() error {
	if len(v) == 0 {
		return fmt.Errorf("rpv: empty vector")
	}
	hasRef := false
	for i, x := range v {
		if !(x > 0) || math.IsInf(x, 0) || math.IsNaN(x) {
			return fmt.Errorf("rpv: entry %d = %v invalid", i, x)
		}
		if math.Abs(x-1) < 1e-9 {
			hasRef = true
		}
	}
	if !hasRef {
		return fmt.Errorf("rpv: no reference entry equal to 1 in %v", v)
	}
	return nil
}

// Clone returns an independent copy.
func (v RPV) Clone() RPV { return append(RPV(nil), v...) }

// String renders the vector in the paper's column style.
func (v RPV) String() string {
	s := "["
	for i, x := range v {
		if i > 0 {
			s += " "
		}
		s += fmt.Sprintf("%.2f", x)
	}
	return s + "]"
}
