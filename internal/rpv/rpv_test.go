package rpv

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"crossarch/internal/stats"
)

func TestPaperWorkedExample(t *testing.T) {
	// Section IV: 10 min on X, 8 on Y, 21 on Z relative to X.
	v, err := FromTimes([]float64{10, 8, 21}, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := RPV{1.0, 0.8, 2.1}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-12 {
			t.Fatalf("rpv = %v, want %v", v, want)
		}
	}
}

func TestFromTimesErrors(t *testing.T) {
	if _, err := FromTimes([]float64{1, 2}, 2); err == nil {
		t.Error("out-of-range ref should error")
	}
	if _, err := FromTimes([]float64{1, 2}, -1); err == nil {
		t.Error("negative ref should error")
	}
	if _, err := FromTimes([]float64{0, 2}, 0); err == nil {
		t.Error("zero reference time should error")
	}
	if _, err := FromTimes([]float64{1, -2}, 0); err == nil {
		t.Error("negative time should error")
	}
}

func TestRelativeToMinMax(t *testing.T) {
	times := []float64{10, 8, 21, 12}
	vmin, err := RelativeToMin(times)
	if err != nil {
		t.Fatal(err)
	}
	// Relative to the fastest system: every entry >= 1.
	for _, x := range vmin {
		if x < 1-1e-12 {
			t.Errorf("RelativeToMin entry %v < 1", x)
		}
	}
	if vmin[1] != 1 {
		t.Errorf("fastest system entry = %v, want 1", vmin[1])
	}
	vmax, err := RelativeToMax(times)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range vmax {
		if x > 1+1e-12 {
			t.Errorf("RelativeToMax entry %v > 1", x)
		}
	}
	if vmax[2] != 1 {
		t.Errorf("slowest system entry = %v, want 1", vmax[2])
	}
}

func TestFastestSlowest(t *testing.T) {
	v := RPV{1.0, 0.8, 2.1, 1.5}
	if v.Fastest() != 1 {
		t.Errorf("Fastest = %d", v.Fastest())
	}
	if v.Slowest() != 2 {
		t.Errorf("Slowest = %d", v.Slowest())
	}
}

func TestFastestPanicsOnEmpty(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on empty")
		}
	}()
	RPV{}.Fastest()
}

func TestRankedByPerformance(t *testing.T) {
	v := RPV{1.0, 0.8, 2.1, 1.5}
	want := []int{1, 0, 3, 2}
	if got := v.RankedByPerformance(); !reflect.DeepEqual(got, want) {
		t.Errorf("ranked = %v, want %v", got, want)
	}
	// Ties break by index deterministically.
	tied := RPV{1.0, 1.0}
	if got := tied.RankedByPerformance(); !reflect.DeepEqual(got, []int{0, 1}) {
		t.Errorf("tie order = %v", got)
	}
}

func TestRebaseIdentityProperty(t *testing.T) {
	// FromTimes(t, a).Rebase(b) == FromTimes(t, b).
	err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 2 + rng.Intn(5)
		times := make([]float64, n)
		for i := range times {
			times[i] = rng.Range(0.1, 100)
		}
		a, b := rng.Intn(n), rng.Intn(n)
		va, err1 := FromTimes(times, a)
		vb, err2 := FromTimes(times, b)
		if err1 != nil || err2 != nil {
			return false
		}
		rebased, err := va.Rebase(b)
		if err != nil {
			return false
		}
		for i := range vb {
			if math.Abs(rebased[i]-vb[i]) > 1e-9*vb[i] {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 100})
	if err != nil {
		t.Fatal(err)
	}
}

func TestRebaseErrors(t *testing.T) {
	v := RPV{1, 2}
	if _, err := v.Rebase(5); err == nil {
		t.Error("out-of-range rebase should error")
	}
	bad := RPV{1, 0}
	if _, err := bad.Rebase(1); err == nil {
		t.Error("rebase on zero entry should error")
	}
}

func TestSpeedup(t *testing.T) {
	v := RPV{1.0, 0.5, 2.0}
	if got := v.Speedup(1, 0); got != 2 {
		t.Errorf("Speedup(1,0) = %v, want 2", got)
	}
	if got := v.Speedup(2, 0); got != 0.5 {
		t.Errorf("Speedup(2,0) = %v, want 0.5", got)
	}
}

func TestSpeedupDegenerateEntriesAreNaN(t *testing.T) {
	cases := []struct {
		name string
		v    RPV
		i, j int
	}{
		{"zero denominator", RPV{1.0, 0.0}, 1, 0},
		{"zero numerator", RPV{1.0, 0.0}, 0, 1},
		{"negative entry", RPV{1.0, -0.5}, 1, 0},
		{"NaN entry", RPV{1.0, math.NaN()}, 1, 0},
		{"+Inf entry", RPV{1.0, math.Inf(1)}, 0, 1},
	}
	for _, c := range cases {
		if got := c.v.Speedup(c.i, c.j); !math.IsNaN(got) {
			t.Errorf("%s: Speedup(%d,%d) = %v, want NaN", c.name, c.i, c.j, got)
		}
	}
	// A well-formed vector stays NaN-free.
	if got := (RPV{1.0, 0.5}).Speedup(1, 0); got != 2 {
		t.Errorf("well-formed Speedup = %v, want 2", got)
	}
}

func TestSpeedupOutOfRangePanics(t *testing.T) {
	v := RPV{1.0, 0.5}
	for _, c := range [][2]int{{-1, 0}, {0, -1}, {2, 0}, {0, 2}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("Speedup(%d,%d) did not panic", c[0], c[1])
				}
			}()
			v.Speedup(c[0], c[1])
		}()
	}
}

func TestValidate(t *testing.T) {
	good := RPV{1.0, 0.8, 2.1}
	if err := good.Validate(); err != nil {
		t.Errorf("valid vector rejected: %v", err)
	}
	cases := map[string]RPV{
		"empty":    {},
		"zero":     {1, 0},
		"negative": {1, -1},
		"nan":      {1, math.NaN()},
		"inf":      {1, math.Inf(1)},
		"no-ref":   {2, 3},
	}
	for name, v := range cases {
		if err := v.Validate(); err == nil {
			t.Errorf("%s: expected error for %v", name, v)
		}
	}
}

func TestOrderInvariantUnderRebase(t *testing.T) {
	// The performance ranking must be the same no matter which system
	// the vector is expressed relative to.
	err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		times := make([]float64, 4)
		for i := range times {
			times[i] = rng.Range(1, 50)
		}
		v0, _ := FromTimes(times, 0)
		want := v0.RankedByPerformance()
		for ref := 1; ref < 4; ref++ {
			v, _ := FromTimes(times, ref)
			if !reflect.DeepEqual(v.RankedByPerformance(), want) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestCloneAndString(t *testing.T) {
	v := RPV{1.0, 0.8}
	c := v.Clone()
	c[0] = 9
	if v[0] == 9 {
		t.Error("Clone shares storage")
	}
	if s := v.String(); !strings.Contains(s, "0.80") {
		t.Errorf("String = %s", s)
	}
}
