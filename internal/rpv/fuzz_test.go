package rpv

import (
	"math"
	"testing"
)

// FuzzSpeedup feeds arbitrary float bit patterns (the fuzzer reaches
// NaN, ±Inf, subnormals, and negative zero) through Speedup and checks
// its contract: NaN exactly when either entry is invalid, otherwise a
// non-negative ratio with Speedup(i,i) == 1 and reciprocal symmetry.
func FuzzSpeedup(f *testing.F) {
	f.Add(1.0, 0.8, 2.1, uint64(0), uint64(1))
	f.Add(1.0, 1.0, 1.0, uint64(2), uint64(2))
	f.Add(math.NaN(), -1.0, 0.0, uint64(1), uint64(0))
	f.Add(math.Inf(1), 1e-308, 1e308, uint64(0), uint64(2))
	f.Fuzz(func(t *testing.T, a, b, c float64, i, j uint64) {
		v := RPV{a, b, c}
		ii, jj := int(i%3), int(j%3)
		valid := func(x float64) bool { return x > 0 && !math.IsInf(x, 1) }

		s := v.Speedup(ii, jj)
		if !valid(v[ii]) || !valid(v[jj]) {
			if !math.IsNaN(s) {
				t.Fatalf("Speedup(%d,%d) of %v: invalid entry must yield NaN, got %v", ii, jj, v, s)
			}
			return
		}
		// Both entries valid: the ratio is a plain division of two
		// positive finite numbers — never NaN or negative (it may
		// underflow to 0 or overflow to +Inf at the extremes).
		if math.IsNaN(s) || s < 0 {
			t.Fatalf("Speedup(%d,%d) of %v: got %v for valid entries", ii, jj, v, s)
		}
		if self := v.Speedup(ii, ii); self != 1 {
			t.Fatalf("Speedup(%d,%d) of %v: self-speedup %v != 1", ii, ii, v, self)
		}
		// Reciprocal symmetry away from the underflow/overflow edges.
		inv := v.Speedup(jj, ii)
		if s > 0 && inv > 0 && !math.IsInf(s, 1) && !math.IsInf(inv, 1) {
			if prod := s * inv; prod > 0 && !math.IsInf(prod, 1) && math.Abs(prod-1) > 1e-9 {
				t.Fatalf("Speedup(%d,%d)*Speedup(%d,%d) of %v = %v, want 1", ii, jj, jj, ii, v, prod)
			}
		}

		// Out-of-range indices must panic, matching Fastest/Slowest.
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("Speedup(3,0) of %v: expected out-of-range panic", v)
				}
			}()
			v.Speedup(3, 0)
		}()
	})
}
