// Package arch models the four HPC systems of the paper's Table I:
// Quartz and Ruby (Intel Xeon, CPU-only) and Lassen (IBM Power9 +
// NVIDIA V100) and Corona (AMD Rome + AMD MI50). The published table
// provides cores/node, clock rate, and GPU configuration; the remaining
// microarchitectural parameters (IPC, cache sizes, memory bandwidth,
// interconnect) are filled in from public spec sheets and drive the
// analytic runtime model in internal/perfmodel.
//
// These machine models substitute for the physical systems the paper
// profiled (see DESIGN.md §1): the ML task only needs runtimes whose
// cross-architecture structure reflects application/hardware
// interaction, which these parameterized models produce.
package arch

import "fmt"

// GPU describes one accelerator model.
type GPU struct {
	// Model is the marketing name, e.g. "NVIDIA V100".
	Model string
	// PerNode is the accelerator count per node.
	PerNode int
	// PeakFP64TFLOPS is double-precision throughput per GPU.
	PeakFP64TFLOPS float64
	// PeakFP32TFLOPS is single-precision throughput per GPU.
	PeakFP32TFLOPS float64
	// MemBWGBs is HBM bandwidth per GPU in GB/s.
	MemBWGBs float64
	// DivergencePenalty scales how strongly branchy control flow
	// degrades throughput on this GPU (SIMT divergence).
	DivergencePenalty float64
	// KernelLaunchUs is the per-kernel launch overhead in microseconds.
	KernelLaunchUs float64
	// CounterNoiseSigma is the log-normal sigma of this GPU stack's
	// profiled counters. The paper observes that GPU counters —
	// particularly AMD's, newly supported in HPCToolkit — are less
	// reliable than mature CPU counters; that maturity gap lives here.
	CounterNoiseSigma float64
}

// Machine describes one system of Table I plus the derived parameters
// the runtime model needs.
type Machine struct {
	// Name is the system name used throughout the dataset ("Quartz",
	// "Ruby", "Lassen", "Corona").
	Name string
	// CPUType matches the Table I CPU column.
	CPUType string
	// CoresPerNode and ClockGHz are the published Table I values.
	CoresPerNode int
	ClockGHz     float64
	// BaseIPC is sustained instructions/cycle per core on
	// cache-friendly code.
	BaseIPC float64
	// MemBWGBs is per-node main-memory bandwidth (shared by all cores).
	MemBWGBs float64
	// L1KB and L2KB are per-core cache sizes; L3MBPerNode is shared.
	L1KB, L2KB  int
	L3MBPerNode float64
	// MemLatencyNs is the main-memory load-to-use latency.
	MemLatencyNs float64
	// BranchMissPenaltyCycles is the pipeline refill cost of a
	// mispredicted branch.
	BranchMissPenaltyCycles float64
	// NetLatencyUs / NetBWGBs parameterize the interconnect (alpha-beta).
	NetLatencyUs float64
	NetBWGBs     float64
	// IOBWGBs is the per-node parallel-filesystem bandwidth.
	IOBWGBs float64
	// Nodes is the cluster size, used by the scheduling simulation.
	Nodes int
	// GPU is nil on CPU-only systems.
	GPU *GPU
	// CounterNoiseSigma is the log-normal sigma of CPU-side profiled
	// counters on this system (mature PAPI stacks are low-noise).
	CounterNoiseSigma float64
}

// HasGPU reports whether the machine has accelerators.
func (m *Machine) HasGPU() bool { return m.GPU != nil }

// PeakNodeGFLOPS estimates per-node double-precision CPU throughput in
// GFLOP/s (cores x clock x IPC x 2 for FMA).
func (m *Machine) PeakNodeGFLOPS() float64 {
	return float64(m.CoresPerNode) * m.ClockGHz * m.BaseIPC * 2
}

// String summarizes the machine on one line.
func (m *Machine) String() string {
	if m.HasGPU() {
		return fmt.Sprintf("%s: %s, %d cores @ %.1f GHz, %dx %s",
			m.Name, m.CPUType, m.CoresPerNode, m.ClockGHz, m.GPU.PerNode, m.GPU.Model)
	}
	return fmt.Sprintf("%s: %s, %d cores @ %.1f GHz", m.Name, m.CPUType, m.CoresPerNode, m.ClockGHz)
}

// Quartz returns the Quartz model: Intel Xeon E5-2695 v4 (Broadwell),
// 36 cores/node at 2.1 GHz, CPU-only (Table I row 1).
func Quartz() *Machine {
	return &Machine{
		Name:                    "Quartz",
		CPUType:                 "Intel Xeon E5-2695 v4",
		CoresPerNode:            36,
		ClockGHz:                2.1,
		BaseIPC:                 2.0,
		MemBWGBs:                130,
		L1KB:                    32,
		L2KB:                    256,
		L3MBPerNode:             90,
		MemLatencyNs:            85,
		BranchMissPenaltyCycles: 16,
		NetLatencyUs:            1.5,
		NetBWGBs:                12, // Omni-Path 100 Gb/s
		IOBWGBs:                 2.0,
		Nodes:                   2688,
		CounterNoiseSigma:       0.02,
	}
}

// Ruby returns the Ruby model: Intel Xeon CLX-8276 (Cascade Lake),
// 56 cores/node at 2.2 GHz, CPU-only (Table I row 2).
func Ruby() *Machine {
	return &Machine{
		Name:                    "Ruby",
		CPUType:                 "Intel Xeon CLX-8276",
		CoresPerNode:            56,
		ClockGHz:                2.2,
		BaseIPC:                 2.4,
		MemBWGBs:                280,
		L1KB:                    32,
		L2KB:                    1024,
		L3MBPerNode:             77,
		MemLatencyNs:            80,
		BranchMissPenaltyCycles: 17,
		NetLatencyUs:            1.4,
		NetBWGBs:                12,
		IOBWGBs:                 2.5,
		Nodes:                   1512,
		CounterNoiseSigma:       0.02,
	}
}

// Lassen returns the Lassen model: IBM Power9, 44 cores/node at 3.5 GHz
// with 4 NVIDIA V100 GPUs per node (Table I row 3).
func Lassen() *Machine {
	return &Machine{
		Name:                    "Lassen",
		CPUType:                 "IBM Power9",
		CoresPerNode:            44,
		ClockGHz:                3.5,
		BaseIPC:                 1.8,
		MemBWGBs:                340,
		L1KB:                    32,
		L2KB:                    512,
		L3MBPerNode:             120,
		MemLatencyNs:            90,
		BranchMissPenaltyCycles: 13,
		NetLatencyUs:            1.0,
		NetBWGBs:                25, // dual-rail EDR InfiniBand
		IOBWGBs:                 3.0,
		Nodes:                   795,
		CounterNoiseSigma:       0.03,
		GPU: &GPU{
			Model:             "NVIDIA V100",
			PerNode:           4,
			PeakFP64TFLOPS:    7.8,
			PeakFP32TFLOPS:    15.7,
			MemBWGBs:          900,
			DivergencePenalty: 12.0,
			KernelLaunchUs:    8,
			CounterNoiseSigma: 0.10, // CUPTI: newer than PAPI, noisier
		},
	}
}

// Corona returns the Corona model: AMD Rome, 48 cores/node at 2.8 GHz
// with 8 AMD MI50 GPUs per node (Table I row 4).
func Corona() *Machine {
	return &Machine{
		Name:                    "Corona",
		CPUType:                 "AMD Rome",
		CoresPerNode:            48,
		ClockGHz:                2.8,
		BaseIPC:                 2.2,
		MemBWGBs:                380,
		L1KB:                    32,
		L2KB:                    512,
		L3MBPerNode:             256,
		MemLatencyNs:            95,
		BranchMissPenaltyCycles: 18,
		NetLatencyUs:            1.2,
		NetBWGBs:                12,
		IOBWGBs:                 2.0,
		Nodes:                   121,
		CounterNoiseSigma:       0.03,
		GPU: &GPU{
			Model:             "AMD MI50",
			PerNode:           8,
			PeakFP64TFLOPS:    6.6,
			PeakFP32TFLOPS:    13.3,
			MemBWGBs:          1024,
			DivergencePenalty: 15.0,
			KernelLaunchUs:    12,
			// rocprofiler support was brand new in HPCToolkit when the
			// paper was written; the noisiest counter source of the four.
			CounterNoiseSigma: 0.16,
		},
	}
}

// All returns the four Table I systems in the paper's canonical order:
// Quartz, Ruby, Lassen, Corona. This order defines the RPV component
// indexing and the one-hot architecture encoding everywhere else.
func All() []*Machine {
	return []*Machine{Quartz(), Ruby(), Lassen(), Corona()}
}

// Names returns the system names in canonical order.
func Names() []string {
	ms := All()
	names := make([]string, len(ms))
	for i, m := range ms {
		names[i] = m.Name
	}
	return names
}

// ByName returns the machine with the given name, or an error listing
// the valid names.
func ByName(name string) (*Machine, error) {
	for _, m := range All() {
		if m.Name == name {
			return m, nil
		}
	}
	return nil, fmt.Errorf("arch: unknown system %q (valid: %v)", name, Names())
}

// Index returns the canonical RPV index of the named system, or -1.
func Index(name string) int {
	for i, n := range Names() {
		if n == name {
			return i
		}
	}
	return -1
}

// NumSystems is the number of architectures in the study.
const NumSystems = 4
