package arch

import (
	"strings"
	"testing"
)

func TestTableIValues(t *testing.T) {
	// The published Table I numbers must be encoded exactly.
	cases := []struct {
		name    string
		cpu     string
		cores   int
		clock   float64
		gpus    int
		gpuName string
	}{
		{"Quartz", "Intel Xeon E5-2695 v4", 36, 2.1, 0, ""},
		{"Ruby", "Intel Xeon CLX-8276", 56, 2.2, 0, ""},
		{"Lassen", "IBM Power9", 44, 3.5, 4, "NVIDIA V100"},
		{"Corona", "AMD Rome", 48, 2.8, 8, "AMD MI50"},
	}
	for _, c := range cases {
		m, err := ByName(c.name)
		if err != nil {
			t.Fatal(err)
		}
		if m.CPUType != c.cpu {
			t.Errorf("%s CPU = %q, want %q", c.name, m.CPUType, c.cpu)
		}
		if m.CoresPerNode != c.cores {
			t.Errorf("%s cores = %d, want %d", c.name, m.CoresPerNode, c.cores)
		}
		if m.ClockGHz != c.clock {
			t.Errorf("%s clock = %v, want %v", c.name, m.ClockGHz, c.clock)
		}
		if c.gpus == 0 {
			if m.HasGPU() {
				t.Errorf("%s should be CPU-only", c.name)
			}
		} else {
			if !m.HasGPU() || m.GPU.PerNode != c.gpus || m.GPU.Model != c.gpuName {
				t.Errorf("%s GPU config wrong: %+v", c.name, m.GPU)
			}
		}
	}
}

func TestAllOrderAndCount(t *testing.T) {
	ms := All()
	if len(ms) != NumSystems {
		t.Fatalf("len(All()) = %d, want %d", len(ms), NumSystems)
	}
	want := []string{"Quartz", "Ruby", "Lassen", "Corona"}
	for i, m := range ms {
		if m.Name != want[i] {
			t.Errorf("All()[%d] = %s, want %s", i, m.Name, want[i])
		}
		if Index(m.Name) != i {
			t.Errorf("Index(%s) = %d, want %d", m.Name, Index(m.Name), i)
		}
	}
}

func TestByNameUnknown(t *testing.T) {
	if _, err := ByName("Sierra"); err == nil {
		t.Error("unknown system should error")
	}
	if Index("Sierra") != -1 {
		t.Error("Index of unknown should be -1")
	}
}

func TestMachinesArePhysicallyPlausible(t *testing.T) {
	for _, m := range All() {
		if m.BaseIPC <= 0 || m.MemBWGBs <= 0 || m.MemLatencyNs <= 0 ||
			m.NetBWGBs <= 0 || m.IOBWGBs <= 0 || m.Nodes <= 0 {
			t.Errorf("%s has non-positive parameter: %+v", m.Name, m)
		}
		if m.CounterNoiseSigma <= 0 || m.CounterNoiseSigma > 0.5 {
			t.Errorf("%s CPU counter noise %v implausible", m.Name, m.CounterNoiseSigma)
		}
		if m.HasGPU() {
			g := m.GPU
			if g.PeakFP32TFLOPS < g.PeakFP64TFLOPS {
				t.Errorf("%s GPU FP32 peak below FP64", m.Name)
			}
			if g.CounterNoiseSigma <= m.CounterNoiseSigma {
				t.Errorf("%s GPU counters should be noisier than CPU counters (paper Fig. 3 hypothesis)", m.Name)
			}
		}
	}
}

func TestGPUCounterNoiseOrdering(t *testing.T) {
	// rocprofiler (Corona) was newer than CUPTI (Lassen) at paper time.
	lassen, corona := Lassen(), Corona()
	if corona.GPU.CounterNoiseSigma <= lassen.GPU.CounterNoiseSigma {
		t.Error("Corona GPU counters should be noisier than Lassen's")
	}
}

func TestFreshInstances(t *testing.T) {
	// Each call must return an independent machine; mutating one must
	// not leak into later calls.
	a := Quartz()
	a.CoresPerNode = 1
	if Quartz().CoresPerNode != 36 {
		t.Error("Quartz() shares state between calls")
	}
}

func TestStringAndPeak(t *testing.T) {
	q := Quartz()
	if !strings.Contains(q.String(), "Quartz") {
		t.Error("String missing name")
	}
	l := Lassen()
	if !strings.Contains(l.String(), "V100") {
		t.Error("GPU machine String missing GPU")
	}
	if q.PeakNodeGFLOPS() <= 0 {
		t.Error("non-positive peak")
	}
	// Ruby has more, faster, wider cores than Quartz.
	if Ruby().PeakNodeGFLOPS() <= q.PeakNodeGFLOPS() {
		t.Error("Ruby should out-flop Quartz")
	}
}
