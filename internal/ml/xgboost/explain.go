package xgboost

import "fmt"

// Explanation decomposes one prediction additively:
//
//	prediction[k] = Bias[k] + sum over features f of Contributions[f][k]
//
// Bias is the base score plus every tree's root expectation;
// Contributions attribute the rest to the features along each tree's
// decision path (the Saabas method), the per-prediction counterpart of
// the Figure 6 global importances.
type Explanation struct {
	Bias          []float64
	Contributions [][]float64 // [feature][output]
}

// Explain computes the additive feature contributions of the model's
// prediction for x.
func (m *Model) Explain(x []float64) (*Explanation, error) {
	if m.Trees == nil {
		return nil, fmt.Errorf("xgboost: Explain before Fit")
	}
	lr := m.Params.LearningRate
	if lr == 0 {
		lr = 0.1
	}
	ex := &Explanation{
		Bias:          append([]float64(nil), m.BaseScore...),
		Contributions: make([][]float64, m.Features),
	}
	for f := range ex.Contributions {
		ex.Contributions[f] = make([]float64, m.Outputs)
	}
	for _, round := range m.Trees {
		if len(round) == 1 && round[0].Outputs == m.Outputs {
			// Vector-leaf tree: contributions cover all outputs.
			bias, contrib, err := round[0].Contributions(x, m.Features)
			if err != nil {
				return nil, err
			}
			for k := 0; k < m.Outputs; k++ {
				ex.Bias[k] += lr * bias[k]
			}
			for f := range contrib {
				for k := 0; k < m.Outputs; k++ {
					ex.Contributions[f][k] += lr * contrib[f][k]
				}
			}
			continue
		}
		for k, t := range round {
			bias, contrib, err := t.Contributions(x, m.Features)
			if err != nil {
				return nil, err
			}
			ex.Bias[k] += lr * bias[0]
			for f := range contrib {
				ex.Contributions[f][k] += lr * contrib[f][0]
			}
		}
	}
	return ex, nil
}

// Reconstruct returns Bias + summed contributions, which must equal
// Predict(x) up to floating-point error; exposed for verification.
func (e *Explanation) Reconstruct() []float64 {
	out := append([]float64(nil), e.Bias...)
	for _, c := range e.Contributions {
		for k := range out {
			out[k] += c[k]
		}
	}
	return out
}
