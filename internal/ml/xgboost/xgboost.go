// Package xgboost implements gradient tree boosting with the XGBoost
// second-order objective (Chen & Guestrin, KDD'16), the learner the
// paper trains on the MP-HPC dataset. Each boosting round fits one
// Newton-step regression tree per output component against the gradient
// and hessian of the loss at the current prediction, shrunk by the
// learning rate; L2 leaf regularization (lambda) and split pruning
// (gamma) implement the paper's Omega complexity term. Row subsampling
// and per-tree column subsampling are supported, as are gain-based
// feature importances ("the average gain across all decision splits in
// the trees ... averaged over each output").
package xgboost

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"crossarch/internal/ml"
	"crossarch/internal/ml/tree"
	"crossarch/internal/obs"
	"crossarch/internal/stats"
)

// Objective selects the training loss.
type Objective string

const (
	// SquaredError trains with L2 loss: grad = pred - y, hess = 1.
	SquaredError Objective = "reg:squarederror"
	// AbsoluteError trains with L1 loss via its (sub)gradient
	// grad = sign(pred - y) and unit hessian — the direct analogue of
	// the paper's "mean absolute error is used as the minimization
	// objective during training".
	AbsoluteError Objective = "reg:absoluteerror"
	// PseudoHuber is a twice-differentiable approximation of absolute
	// error (delta = 1), giving smooth MAE-like training.
	PseudoHuber Objective = "reg:pseudohubererror"
)

// Params configures training. The defaults mirror the xgboost Python
// defaults used by the paper's pipeline (eta 0.3 is xgboost's default;
// we default to 0.1 with more rounds, the configuration the paper's
// grid favours for tabular counter data).
type Params struct {
	// Rounds is the number of boosting iterations (default 200).
	Rounds int
	// LearningRate is the shrinkage eta in (0, 1] (default 0.1).
	LearningRate float64
	// MaxDepth bounds each tree (default 6, the xgboost default).
	MaxDepth int
	// Lambda is the L2 leaf regularization (default 1).
	Lambda float64
	// Gamma is the minimum split loss reduction (default 0).
	Gamma float64
	// MinChildWeight is the minimum hessian sum per child (default 1).
	MinChildWeight float64
	// Subsample is the row fraction per round in (0, 1] (default 1).
	Subsample float64
	// ColsampleByTree is the feature fraction per tree (default 1).
	ColsampleByTree float64
	// Objective selects the loss (default SquaredError).
	Objective Objective
	// TreeMethod selects split finding: "hist" (default) scans quantile
	// histograms, "exact" sorts every node — the same trade-off as the
	// xgboost library's tree_method parameter.
	TreeMethod string
	// MultiStrategy selects how vector targets are boosted:
	// "multi_output_tree" (default) grows one vector-leaf tree per
	// round with the split gain summed over outputs, keeping predicted
	// vectors internally coherent; "one_output_per_tree" grows an
	// independent tree per output component, the classic strategy.
	// Mirrors the xgboost library's multi_strategy parameter.
	// multi_output_tree requires the hist tree method.
	MultiStrategy string
	// Seed makes training deterministic.
	Seed uint64
	// EarlyStoppingRounds stops when the internal validation loss has
	// not improved for this many rounds; 0 disables early stopping.
	EarlyStoppingRounds int
	// ValidationFraction is the row fraction held out for early
	// stopping when it is enabled (default 0.1).
	ValidationFraction float64
}

func (p *Params) setDefaults() error {
	if p.Rounds <= 0 {
		p.Rounds = 200
	}
	if p.LearningRate == 0 {
		p.LearningRate = 0.1
	}
	if p.LearningRate < 0 || p.LearningRate > 1 {
		return fmt.Errorf("xgboost: learning rate %v outside (0,1]", p.LearningRate)
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 6
	}
	if p.Lambda == 0 {
		p.Lambda = 1
	}
	if p.Lambda < 0 || p.Gamma < 0 {
		return fmt.Errorf("xgboost: negative regularization (lambda=%v gamma=%v)", p.Lambda, p.Gamma)
	}
	if p.MinChildWeight == 0 {
		p.MinChildWeight = 1
	}
	if p.Subsample == 0 {
		p.Subsample = 1
	}
	if p.Subsample <= 0 || p.Subsample > 1 {
		return fmt.Errorf("xgboost: subsample %v outside (0,1]", p.Subsample)
	}
	if p.ColsampleByTree == 0 {
		p.ColsampleByTree = 1
	}
	if p.ColsampleByTree <= 0 || p.ColsampleByTree > 1 {
		return fmt.Errorf("xgboost: colsample %v outside (0,1]", p.ColsampleByTree)
	}
	if p.Objective == "" {
		p.Objective = SquaredError
	}
	switch p.Objective {
	case SquaredError, AbsoluteError, PseudoHuber:
	default:
		return fmt.Errorf("xgboost: unknown objective %q", p.Objective)
	}
	if p.TreeMethod == "" {
		p.TreeMethod = "hist"
	}
	if p.TreeMethod != "hist" && p.TreeMethod != "exact" {
		return fmt.Errorf("xgboost: unknown tree method %q", p.TreeMethod)
	}
	if p.MultiStrategy == "" {
		p.MultiStrategy = "multi_output_tree"
	}
	if p.MultiStrategy != "multi_output_tree" && p.MultiStrategy != "one_output_per_tree" {
		return fmt.Errorf("xgboost: unknown multi strategy %q", p.MultiStrategy)
	}
	if p.MultiStrategy == "multi_output_tree" && p.TreeMethod != "hist" {
		return fmt.Errorf("xgboost: multi_output_tree requires the hist tree method")
	}
	if p.ValidationFraction == 0 {
		p.ValidationFraction = 0.1
	}
	if p.ValidationFraction <= 0 || p.ValidationFraction >= 1 {
		return fmt.Errorf("xgboost: validation fraction %v outside (0,1)", p.ValidationFraction)
	}
	return nil
}

// Model is a trained boosted ensemble. Trees[r][k] is the round-r tree
// for output component k.
type Model struct {
	Params    Params         `json:"params"`
	Trees     [][]*tree.Tree `json:"trees"`
	BaseScore []float64      `json:"base_score"`
	Features  int            `json:"features"`
	Outputs   int            `json:"outputs"`
	// BestRound records where early stopping cut training (== len(Trees)
	// when early stopping is off or never triggered).
	BestRound int `json:"best_round"`

	// flat caches the ensemble compiled for batched prediction; built
	// lazily on first PredictBatch (also after a JSON load) and
	// invalidated by Fit.
	flatMu sync.Mutex
	flat   [][]*tree.FlatTree
}

var _ ml.Regressor = (*Model)(nil)
var _ ml.BatchRegressor = (*Model)(nil)
var _ ml.FeatureImporter = (*Model)(nil)
var _ ml.EnsembleCompiler = (*Model)(nil)

// New returns an unfitted model with the given parameters.
func New(p Params) *Model { return &Model{Params: p} }

// Name implements ml.Regressor.
func (m *Model) Name() string { return "xgboost" }

// gradHess fills grad and hess with the loss derivatives at the current
// predictions for output k.
func (m *Model) gradHess(obj Objective, pred, y, grad, hess []float64) {
	switch obj {
	case SquaredError:
		for i := range pred {
			grad[i] = pred[i] - y[i]
			hess[i] = 1
		}
	case AbsoluteError:
		for i := range pred {
			d := pred[i] - y[i]
			switch {
			case d > 0:
				grad[i] = 1
			case d < 0:
				grad[i] = -1
			default:
				grad[i] = 0
			}
			hess[i] = 1
		}
	case PseudoHuber:
		for i := range pred {
			d := pred[i] - y[i]
			s := math.Sqrt(1 + d*d)
			grad[i] = d / s
			hess[i] = 1 / (s * s * s)
			if hess[i] < 1e-6 {
				hess[i] = 1e-6
			}
		}
	}
}

// lossOf evaluates the training objective's primal loss for early
// stopping.
func lossOf(obj Objective, pred, y float64) float64 {
	d := pred - y
	switch obj {
	case AbsoluteError:
		return math.Abs(d)
	case PseudoHuber:
		return math.Sqrt(1+d*d) - 1
	default:
		return 0.5 * d * d
	}
}

// Fit trains the boosted ensemble.
func (m *Model) Fit(X, Y [][]float64) error {
	span := obs.StartSpan("xgboost.fit")
	defer span.End()
	features, outputs, err := ml.CheckFitShapes(X, Y)
	if err != nil {
		return err
	}
	span.AddRows(len(X))
	p := m.Params
	if err := p.setDefaults(); err != nil {
		return err
	}
	rng := stats.NewRNG(p.Seed)

	// Optional early-stopping holdout.
	trainIdx := make([]int, len(X))
	for i := range trainIdx {
		trainIdx[i] = i
	}
	var valIdx []int
	if p.EarlyStoppingRounds > 0 {
		perm := rng.Perm(len(X))
		nVal := int(float64(len(X)) * p.ValidationFraction)
		if nVal < 1 {
			nVal = 1
		}
		if nVal >= len(X) {
			return fmt.Errorf("xgboost: %d samples too few for early-stopping holdout", len(X))
		}
		valIdx, trainIdx = perm[:nVal], perm[nVal:]
	}

	// Base score: per-output training mean (xgboost's base_score role).
	base := make([]float64, outputs)
	for _, i := range trainIdx {
		for k := 0; k < outputs; k++ {
			base[k] += Y[i][k]
		}
	}
	for k := range base {
		base[k] /= float64(len(trainIdx))
	}

	// Current margin predictions for every row (train + val).
	pred := make([][]float64, len(X))
	for i := range pred {
		pred[i] = append([]float64(nil), base...)
	}

	// Per-output gradient/hessian buffers for the tree builders.
	grads := make([][]float64, outputs)
	hesses := make([][]float64, outputs)
	for k := range grads {
		grads[k] = make([]float64, len(X))
		hesses[k] = make([]float64, len(X))
	}
	yk := make([]float64, len(X))
	pk := make([]float64, len(X))

	maxFeatures := int(math.Ceil(p.ColsampleByTree * float64(features)))
	if maxFeatures > features {
		maxFeatures = features
	}
	subN := int(math.Ceil(p.Subsample * float64(len(trainIdx))))

	// The hist tree method bins the features once for the whole run.
	var binned *tree.BinnedMatrix
	if p.TreeMethod == "hist" {
		binned = tree.NewBinnedMatrix(X)
	}

	var trees [][]*tree.Tree
	bestLoss := math.Inf(1)
	bestRound := 0
	sinceBest := 0

	// endRound records the per-round observability signals: wall time,
	// trees added, and the mean training loss at the updated margins
	// (one O(rows x outputs) pass, small next to tree growth).
	endRound := func(roundStart time.Time, added int) {
		obs.Observe("xgboost.round.seconds", obs.SinceSeconds(roundStart))
		obs.Add("xgboost.trees.total", float64(added))
		obs.Add("xgboost.rounds.total", 1)
		loss := 0.0
		for _, i := range trainIdx {
			for k := 0; k < outputs; k++ {
				loss += lossOf(p.Objective, pred[i][k], Y[i][k])
			}
		}
		loss /= float64(len(trainIdx) * outputs)
		obs.Observe("xgboost.round.train_loss", loss)
		obs.Set("xgboost.train_loss", loss)
	}

	for round := 0; round < p.Rounds; round++ {
		roundStart := obs.Now()
		// Row subsample for this round (without replacement, as xgboost).
		rows := trainIdx
		if subN < len(trainIdx) {
			pick := rng.SampleWithoutReplacement(len(trainIdx), subN)
			rows = make([]int, subN)
			for j, i := range pick {
				rows[j] = trainIdx[i]
			}
		}

		// Gradients for every output at the current margins, before any
		// of this round's trees move them: the per-output trees of one
		// round are then independent and can be grown in parallel.
		for k := 0; k < outputs; k++ {
			for i := range X {
				yk[i] = Y[i][k]
				pk[i] = pred[i][k]
			}
			m.gradHess(p.Objective, pk, yk, grads[k], hesses[k])
		}
		if p.MultiStrategy == "multi_output_tree" {
			// One vector-leaf tree per round for all outputs.
			t, err := tree.BuildNewtonHistMulti(binned, grads, hesses, rows, tree.NewtonParams{
				MaxDepth:       p.MaxDepth,
				Lambda:         p.Lambda,
				Gamma:          p.Gamma,
				MinChildWeight: p.MinChildWeight,
				MinSamplesLeaf: 1,
				MaxFeatures:    maxFeatures,
				RNG:            rng,
			})
			if err != nil {
				return fmt.Errorf("xgboost: round %d: %w", round, err)
			}
			if p.Objective == AbsoluteError {
				// LAD boosting (Friedman): the sign-gradient tree fixes
				// the structure; each leaf is refit to the median
				// residual of its training rows, the exact L1 minimizer.
				refitLeavesToMedian(t, X, Y, pred, rows, outputs)
			}
			// Margin update for every row (train and val) through the
			// flat compiled tree, rows chunked across cores; each block
			// owns disjoint pred rows, so the update is race-free.
			ft := t.Flatten()
			ml.ParallelRows(len(X), func(lo, hi int) {
				for i := lo; i < hi; i++ {
					ft.Accumulate(X[i], p.LearningRate, pred[i])
				}
			})
			trees = append(trees, []*tree.Tree{t})
			endRound(roundStart, 1)
			if stop := m.earlyStopCheck(&p, pred, Y, valIdx, outputs, &bestLoss, &bestRound, &sinceBest, len(trees)); stop {
				break
			}
			continue
		}

		// Pre-split one RNG per output so parallel growth is
		// deterministic and race-free.
		treeRNGs := make([]*stats.RNG, outputs)
		for k := range treeRNGs {
			treeRNGs[k] = rng.Split()
		}

		roundTrees := make([]*tree.Tree, outputs)
		treeErrs := make([]error, outputs)
		var wg sync.WaitGroup
		for k := 0; k < outputs; k++ {
			wg.Add(1)
			go func(k int) {
				defer wg.Done()
				params := tree.NewtonParams{
					MaxDepth:       p.MaxDepth,
					Lambda:         p.Lambda,
					Gamma:          p.Gamma,
					MinChildWeight: p.MinChildWeight,
					MinSamplesLeaf: 1,
					MaxFeatures:    maxFeatures,
					RNG:            treeRNGs[k],
				}
				var t *tree.Tree
				var err error
				if binned != nil {
					t, err = tree.BuildNewtonHist(binned, grads[k], hesses[k], rows, params)
				} else {
					t, err = tree.BuildNewton(X, grads[k], hesses[k], rows, params)
				}
				if err != nil {
					treeErrs[k] = fmt.Errorf("xgboost: round %d output %d: %w", round, k, err)
					return
				}
				roundTrees[k] = t
			}(k)
		}
		wg.Wait()
		for _, err := range treeErrs {
			if err != nil {
				return err
			}
		}
		// Update every row's margin (train and val) with shrinkage,
		// batched over row blocks through the flat compiled trees.
		flats := make([]*tree.FlatTree, outputs)
		for k, t := range roundTrees {
			flats[k] = t.Flatten()
		}
		ml.ParallelRows(len(X), func(lo, hi int) {
			for k, ft := range flats {
				for i := lo; i < hi; i++ {
					pred[i][k] += p.LearningRate * ft.Predict(X[i])[0]
				}
			}
		})
		trees = append(trees, roundTrees)
		endRound(roundStart, outputs)
		if stop := m.earlyStopCheck(&p, pred, Y, valIdx, outputs, &bestLoss, &bestRound, &sinceBest, len(trees)); stop {
			break
		}
	}
	if p.EarlyStoppingRounds > 0 && bestRound > 0 {
		trees = trees[:bestRound]
	}

	m.Trees = trees
	m.BaseScore = base
	m.Features = features
	m.Outputs = outputs
	m.BestRound = len(trees)
	obs.Set("xgboost.best_round", float64(m.BestRound))
	obs.Add("xgboost.fits.total", 1)
	m.flatMu.Lock()
	m.flat = nil
	m.flatMu.Unlock()
	return nil
}

// refitLeavesToMedian replaces each leaf's value vector with the
// per-output median residual (y - current prediction) of the training
// rows routed to that leaf — Friedman's LAD-TreeBoost terminal-node
// refit, the exact minimizer of absolute error given the structure.
// Leaves that receive no rows keep their Newton values.
func refitLeavesToMedian(t *tree.Tree, X, Y, pred [][]float64, rows []int, outputs int) {
	residuals := make(map[int][][]float64) // leaf node -> list of residual vectors
	for _, i := range rows {
		node := 0
		for t.Feature[node] != tree.LeafMarker {
			if X[i][t.Feature[node]] < t.Threshold[node] {
				node = t.Left[node]
			} else {
				node = t.Right[node]
			}
		}
		r := make([]float64, outputs)
		for k := 0; k < outputs; k++ {
			r[k] = Y[i][k] - pred[i][k]
		}
		residuals[node] = append(residuals[node], r)
	}
	// Iterate leaves in sorted order: the medians themselves are
	// order-independent, but a fixed order keeps allocation and
	// float-op sequencing identical across runs (and satisfies the
	// nondeterminism analyzer's map-iteration rule).
	leaves := make([]int, 0, len(residuals))
	for node := range residuals {
		leaves = append(leaves, node)
	}
	sort.Ints(leaves)
	col := make([]float64, 0, len(rows))
	for _, node := range leaves {
		rs := residuals[node]
		value := make([]float64, outputs)
		for k := 0; k < outputs; k++ {
			col = col[:0]
			for _, r := range rs {
				col = append(col, r[k])
			}
			value[k] = median(col)
		}
		t.Value[node] = value
	}
}

// median returns the middle value of xs, modifying xs in place.
func median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	sort.Float64s(xs)
	mid := len(xs) / 2
	if len(xs)%2 == 1 {
		return xs[mid]
	}
	return (xs[mid-1] + xs[mid]) / 2
}

// earlyStopCheck evaluates the holdout loss after a round and updates
// the early-stopping state. It returns true when training should stop.
func (m *Model) earlyStopCheck(p *Params, pred, Y [][]float64, valIdx []int, outputs int, bestLoss *float64, bestRound, sinceBest *int, rounds int) bool {
	if p.EarlyStoppingRounds <= 0 {
		return false
	}
	loss := 0.0
	for _, i := range valIdx {
		for k := 0; k < outputs; k++ {
			loss += lossOf(p.Objective, pred[i][k], Y[i][k])
		}
	}
	loss /= float64(len(valIdx) * outputs)
	obs.Observe("xgboost.round.val_loss", loss)
	if loss < *bestLoss-1e-12 {
		*bestLoss = loss
		*bestRound = rounds
		*sinceBest = 0
		return false
	}
	*sinceBest++
	return *sinceBest >= p.EarlyStoppingRounds
}

// Predict sums the ensemble: base score plus the shrunken contribution
// of every retained tree. Rounds hold either one vector-leaf tree
// (multi_output_tree) or one single-output tree per component.
func (m *Model) Predict(x []float64) []float64 {
	if m.Trees == nil {
		panic("xgboost: Predict before Fit")
	}
	out := append([]float64(nil), m.BaseScore...)
	lr := m.Params.LearningRate
	if lr == 0 {
		lr = 0.1
	}
	for _, round := range m.Trees {
		if len(round) == 1 && round[0].Outputs == m.Outputs {
			leaf := round[0].Predict(x)
			for k := range out {
				out[k] += lr * leaf[k]
			}
			continue
		}
		for k, t := range round {
			out[k] += lr * t.Predict(x)[0]
		}
	}
	return out
}

// flatTrees returns the retained ensemble compiled to flat trees,
// building and caching it on first use.
func (m *Model) flatTrees() [][]*tree.FlatTree {
	m.flatMu.Lock()
	defer m.flatMu.Unlock()
	if m.flat == nil {
		flat := make([][]*tree.FlatTree, len(m.Trees))
		for r, round := range m.Trees {
			flat[r] = make([]*tree.FlatTree, len(round))
			for k, t := range round {
				flat[r][k] = t.Flatten()
			}
		}
		m.flat = flat
	}
	return m.flat
}

// batchTile bounds how many rows a batch predictor walks through one
// tree before moving to the next: tree-outer iteration keeps a round's
// node arrays hot in cache across the whole tile instead of re-walking
// every round per row, and the tile keeps the touched X and out rows
// cache-resident too.
const batchTile = 1024

// PredictBatch implements ml.BatchRegressor: it fills out[i] with the
// ensemble prediction for X[i], chunking rows across cores and walking
// rounds tree-outer over cache-sized row tiles. Every output element
// still accumulates base score then rounds in Predict's order, so
// results are bitwise identical to row-at-a-time Predict. out must
// have len(X) rows of width Outputs.
func (m *Model) PredictBatch(X, out [][]float64) {
	if m.Trees == nil {
		panic("xgboost: PredictBatch before Fit")
	}
	flat := m.flatTrees()
	lr := m.Params.LearningRate
	if lr == 0 {
		lr = 0.1
	}
	ml.ParallelRows(len(X), func(lo, hi int) {
		for tlo := lo; tlo < hi; tlo += batchTile {
			thi := tlo + batchTile
			if thi > hi {
				thi = hi
			}
			for i := tlo; i < thi; i++ {
				copy(out[i], m.BaseScore)
			}
			for _, round := range flat {
				if len(round) == 1 && round[0].Outputs == m.Outputs {
					ft := round[0]
					for i := tlo; i < thi; i++ {
						ft.Accumulate(X[i], lr, out[i])
					}
					continue
				}
				for k, ft := range round {
					for i := tlo; i < thi; i++ {
						out[i][k] += lr * ft.Predict(X[i])[0]
					}
				}
			}
		}
	})
}

// FeatureImportances returns gain-based importances: each feature's
// average split gain across all trees of all rounds and outputs,
// normalized to sum to 1 — the paper's Section VI-B definition.
func (m *Model) FeatureImportances() []float64 {
	if m.Trees == nil {
		panic("xgboost: FeatureImportances before Fit")
	}
	gain := make([]float64, m.Features)
	splits := make([]int, m.Features)
	for _, round := range m.Trees {
		for _, t := range round {
			t.GainByFeature(gain, splits)
		}
	}
	imp := make([]float64, m.Features)
	total := 0.0
	for j := range imp {
		if splits[j] > 0 {
			imp[j] = gain[j] / float64(splits[j])
			total += imp[j]
		}
	}
	if total > 0 {
		for j := range imp {
			imp[j] /= total
		}
	}
	return imp
}

// CompileEnsemble implements ml.EnsembleCompiler: the whole retained
// ensemble — every round, both leaf strategies — flattened into one
// contiguous node arena. The per-round accumulation rule (vector leaf
// vs one tree per output component) is encoded in the arena's Target
// array using exactly Predict's round classification, so the compiled
// kernel replays the same floating-point operations in the same order
// and its output is bitwise identical to Predict. Returns nil before
// Fit. The arena snapshots the fitted trees; a later Fit does not
// invalidate it.
func (m *Model) CompileEnsemble() *ml.CompiledEnsemble {
	if m.Trees == nil {
		return nil
	}
	lr := m.Params.LearningRate
	if lr == 0 {
		lr = 0.1
	}
	flat := m.flatTrees()
	nodes, leafValues, trees := 0, 0, 0
	for _, round := range flat {
		for _, ft := range round {
			nodes += ft.NumNodes()
			leafValues += len(ft.Values)
			trees++
		}
	}
	ce := &ml.CompiledEnsemble{
		Scale:    lr,
		Base:     append([]float64(nil), m.BaseScore...),
		Outputs:  m.Outputs,
		Features: m.Features,
		Source:   m.Name(),
	}
	ce.Grow(nodes, leafValues, trees)
	for r, round := range m.Trees {
		if len(round) == 1 && round[0].Outputs == m.Outputs {
			flat[r][0].AppendTo(ce, -1)
			continue
		}
		for k := range round {
			flat[r][k].AppendTo(ce, k)
		}
	}
	return ce
}

// NumTrees returns the total number of individual trees retained.
func (m *Model) NumTrees() int {
	n := 0
	for _, round := range m.Trees {
		n += len(round)
	}
	return n
}
