package xgboost

import (
	"bytes"
	"math"
	"strings"
	"testing"

	"crossarch/internal/stats"
)

func TestExplainReconstructsPrediction(t *testing.T) {
	rng := stats.NewRNG(1)
	X, Y := friedman(400, rng)
	for _, strat := range []string{"multi_output_tree", "one_output_per_tree"} {
		m := New(Params{Rounds: 40, MaxDepth: 5, LearningRate: 0.15, Seed: 2, MultiStrategy: strat})
		if err := m.Fit(X, Y); err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		for i := 0; i < 30; i++ {
			x := X[i]
			pred := m.Predict(x)
			ex, err := m.Explain(x)
			if err != nil {
				t.Fatal(err)
			}
			got := ex.Reconstruct()
			for k := range pred {
				if math.Abs(got[k]-pred[k]) > 1e-9 {
					t.Fatalf("%s: reconstruction %v != prediction %v", strat, got, pred)
				}
			}
		}
	}
}

func TestExplainAttributesSignalFeatures(t *testing.T) {
	// y depends only on x0; contributions of the pure-noise feature
	// must be tiny compared to x0's for a point far from the mean.
	rng := stats.NewRNG(3)
	n := 600
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		x0, x1 := rng.Float64(), rng.Float64()
		X[i] = []float64{x0, x1}
		Y[i] = []float64{10 * x0}
	}
	m := New(Params{Rounds: 60, MaxDepth: 4, LearningRate: 0.2, Seed: 4})
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	ex, err := m.Explain([]float64{0.95, 0.5})
	if err != nil {
		t.Fatal(err)
	}
	c0 := math.Abs(ex.Contributions[0][0])
	c1 := math.Abs(ex.Contributions[1][0])
	if c0 < 10*c1 {
		t.Errorf("signal contribution %v not dominant over noise %v", c0, c1)
	}
	if c0 < 2 {
		t.Errorf("x0 contribution %v too small for an extreme point", c0)
	}
}

func TestExplainBeforeFit(t *testing.T) {
	if _, err := New(Params{}).Explain([]float64{1}); err == nil {
		t.Error("Explain before Fit should error")
	}
}

func TestDump(t *testing.T) {
	rng := stats.NewRNG(9)
	X, Y := friedman(150, rng)
	m := New(Params{Rounds: 3, MaxDepth: 2, Seed: 10})
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Dump(&buf, []string{"alpha", "beta"}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"booster[0]", "leaf=", "gain=", "cover="} {
		if !strings.Contains(out, want) {
			t.Errorf("dump missing %q:\n%s", want, out[:min(400, len(out))])
		}
	}
	// Named features appear; unnamed fall back to fN.
	if !strings.Contains(out, "alpha") && !strings.Contains(out, "beta") && !strings.Contains(out, "f2") {
		t.Error("dump shows no feature labels")
	}
	if err := New(Params{}).Dump(&buf, nil); err == nil {
		t.Error("Dump before Fit should error")
	}
}
