package xgboost

import "crossarch/internal/ml"

func init() {
	ml.RegisterModel("xgboost", func() ml.Regressor { return New(Params{}) })
}
