package xgboost

import (
	"fmt"
	"io"
)

// Dump writes a human-readable description of the trained ensemble to
// w, mirroring the xgboost library's dump_model text format: one block
// per tree with depth-indented split conditions and leaf values.
// featureNames labels split features; pass nil for f0, f1, ... labels.
func (m *Model) Dump(w io.Writer, featureNames []string) error {
	if m.Trees == nil {
		return fmt.Errorf("xgboost: Dump before Fit")
	}
	name := func(f int) string {
		if f >= 0 && f < len(featureNames) {
			return featureNames[f]
		}
		return fmt.Sprintf("f%d", f)
	}
	if _, err := fmt.Fprintf(w, "xgboost model: %d rounds, %d outputs, base score %v\n",
		len(m.Trees), m.Outputs, m.BaseScore); err != nil {
		return err
	}
	for round, trees := range m.Trees {
		for k, t := range trees {
			label := fmt.Sprintf("booster[%d]", round)
			if len(trees) > 1 {
				label = fmt.Sprintf("booster[%d][output %d]", round, k)
			}
			if _, err := fmt.Fprintln(w, label+":"); err != nil {
				return err
			}
			var walk func(node, depth int) error
			walk = func(node, depth int) error {
				indent := ""
				for i := 0; i < depth; i++ {
					indent += "  "
				}
				if t.Feature[node] == -1 {
					_, err := fmt.Fprintf(w, "%s%d:leaf=%v cover=%d\n", indent, node, t.Value[node], t.Cover[node])
					return err
				}
				if _, err := fmt.Fprintf(w, "%s%d:[%s<%g] gain=%.4g cover=%d\n",
					indent, node, name(t.Feature[node]), t.Threshold[node], t.Gain[node], t.Cover[node]); err != nil {
					return err
				}
				if err := walk(t.Left[node], depth+1); err != nil {
					return err
				}
				return walk(t.Right[node], depth+1)
			}
			if err := walk(0, 0); err != nil {
				return err
			}
		}
	}
	return nil
}
