package xgboost

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"crossarch/internal/ml"
	"crossarch/internal/ml/baseline"
	"crossarch/internal/ml/linear"
	"crossarch/internal/stats"
)

// friedman is the standard nonlinear regression benchmark.
func friedman(n int, rng *stats.RNG) (X, Y [][]float64) {
	X = make([][]float64, n)
	Y = make([][]float64, n)
	for i := range X {
		x := make([]float64, 6)
		for j := range x {
			x[j] = rng.Float64()
		}
		X[i] = x
		y := 10*math.Sin(math.Pi*x[0]*x[1]) + 20*(x[2]-0.5)*(x[2]-0.5) + 10*x[3] + 5*x[4] + rng.Normal(0, 0.5)
		Y[i] = []float64{y}
	}
	return X, Y
}

func TestBoostingReducesTrainLossMonotonically(t *testing.T) {
	rng := stats.NewRNG(1)
	X, Y := friedman(300, rng)
	prev := math.Inf(1)
	for _, rounds := range []int{1, 5, 25, 100} {
		m := New(Params{Rounds: rounds, MaxDepth: 4, LearningRate: 0.3, Seed: 2})
		if err := m.Fit(X, Y); err != nil {
			t.Fatal(err)
		}
		mse := ml.MSE(ml.PredictBatch(m, X), Y)
		if mse >= prev {
			t.Errorf("train MSE did not decrease at %d rounds: %v >= %v", rounds, mse, prev)
		}
		prev = mse
	}
}

func TestXGBoostBeatsLinearAndMeanOnNonlinearData(t *testing.T) {
	rng := stats.NewRNG(3)
	X, Y := friedman(1200, rng)
	trX, trY, teX, teY, err := ml.TrainTestSplit(X, Y, 0.25, stats.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	xgb := New(Params{Rounds: 150, MaxDepth: 5, LearningRate: 0.1, Seed: 5})
	if err := xgb.Fit(trX, trY); err != nil {
		t.Fatal(err)
	}
	lin := linear.New(0)
	if err := lin.Fit(trX, trY); err != nil {
		t.Fatal(err)
	}
	mean := baseline.New()
	if err := mean.Fit(trX, trY); err != nil {
		t.Fatal(err)
	}
	xgbMAE := ml.MAE(ml.PredictBatch(xgb, teX), teY)
	linMAE := ml.MAE(ml.PredictBatch(lin, teX), teY)
	meanMAE := ml.MAE(ml.PredictBatch(mean, teX), teY)
	if xgbMAE >= linMAE {
		t.Errorf("xgboost MAE %v >= linear MAE %v", xgbMAE, linMAE)
	}
	if linMAE >= meanMAE {
		t.Errorf("linear MAE %v >= mean MAE %v on partly-linear target", linMAE, meanMAE)
	}
	if xgbMAE > meanMAE/3 {
		t.Errorf("xgboost MAE %v not a large improvement over mean %v", xgbMAE, meanMAE)
	}
}

func TestMultiOutputVectors(t *testing.T) {
	rng := stats.NewRNG(6)
	n := 500
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		x := rng.Float64()
		X[i] = []float64{x}
		Y[i] = []float64{math.Sin(4 * x), math.Cos(4 * x), 2 * x}
	}
	m := New(Params{Rounds: 120, MaxDepth: 4, LearningRate: 0.15, Seed: 7})
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	if m.Outputs != 3 {
		t.Fatalf("outputs = %d", m.Outputs)
	}
	mae := ml.MAE(ml.PredictBatch(m, X), Y)
	if mae > 0.05 {
		t.Errorf("multi-output train MAE = %v", mae)
	}
}

func TestObjectives(t *testing.T) {
	rng := stats.NewRNG(8)
	X, Y := friedman(400, rng)
	for _, obj := range []Objective{SquaredError, AbsoluteError, PseudoHuber} {
		m := New(Params{Rounds: 80, MaxDepth: 4, LearningRate: 0.2, Objective: obj, Seed: 9})
		if err := m.Fit(X, Y); err != nil {
			t.Fatalf("%s: %v", obj, err)
		}
		mae := ml.MAE(ml.PredictBatch(m, X), Y)
		if mae > 1.5 {
			t.Errorf("%s train MAE = %v, too high", obj, mae)
		}
	}
}

func TestAbsoluteErrorRobustToOutliers(t *testing.T) {
	// With a large label outlier, L1 training should move predictions of
	// the clean points less than L2 training does.
	n := 101
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		X[i] = []float64{float64(i % 2)} // two groups only
		Y[i] = []float64{1}
	}
	Y[n-1] = []float64{1000} // outlier in group (n-1)%2 == 0
	l2 := New(Params{Rounds: 100, MaxDepth: 2, LearningRate: 0.3, Objective: SquaredError, Seed: 1})
	l1 := New(Params{Rounds: 100, MaxDepth: 2, LearningRate: 0.3, Objective: AbsoluteError, Seed: 1})
	if err := l2.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	if err := l1.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	cleanX := []float64{0}
	l2Err := math.Abs(l2.Predict(cleanX)[0] - 1)
	l1Err := math.Abs(l1.Predict(cleanX)[0] - 1)
	if l1Err >= l2Err {
		t.Errorf("L1 clean-point error %v >= L2 error %v; L1 should be robust", l1Err, l2Err)
	}
}

func TestEarlyStopping(t *testing.T) {
	rng := stats.NewRNG(10)
	X, Y := friedman(500, rng)
	m := New(Params{Rounds: 400, MaxDepth: 6, LearningRate: 0.3, Seed: 11,
		EarlyStoppingRounds: 10})
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	if m.BestRound >= 400 {
		t.Logf("early stopping never triggered (best=%d); acceptable but unusual", m.BestRound)
	}
	if len(m.Trees) != m.BestRound {
		t.Errorf("retained %d rounds, BestRound=%d", len(m.Trees), m.BestRound)
	}
}

// TestEarlyStoppingTruncatesToBestRound is the regression test for the
// ensemble-truncation contract: when early stopping fires, the rounds
// after the best-validation-loss round (the ones that triggered the
// stop) must be discarded, leaving a model identical to one trained for
// exactly BestRound rounds. Training with Rounds = BestRound under the
// same seed replays the identical RNG stream (holdout split, then
// per-round subsampling), so the two ensembles must match tree for
// tree; any retained post-best round would change the predictions.
func TestEarlyStoppingTruncatesToBestRound(t *testing.T) {
	rng := stats.NewRNG(21)
	// Noisy targets plus an aggressive learning rate overfit quickly, so
	// validation loss reliably degrades and the stop fires mid-run.
	X, Y := friedman(300, rng)
	for i := range Y {
		Y[i][0] += rng.Normal(0, 3)
	}
	params := Params{Rounds: 300, MaxDepth: 6, LearningRate: 0.5, Seed: 7,
		EarlyStoppingRounds: 8}
	a := New(params)
	if err := a.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	if a.BestRound >= params.Rounds {
		t.Fatalf("early stopping never fired (BestRound=%d); pick a noisier setup", a.BestRound)
	}
	if len(a.Trees) != a.BestRound {
		t.Fatalf("retained %d rounds after stop, want BestRound=%d (post-best rounds kept?)",
			len(a.Trees), a.BestRound)
	}

	ref := params
	ref.Rounds = a.BestRound
	b := New(ref)
	if err := b.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	if len(b.Trees) != len(a.Trees) {
		t.Fatalf("reference run retained %d rounds, stopped run %d", len(b.Trees), len(a.Trees))
	}
	for i := range X {
		if got, want := a.Predict(X[i])[0], b.Predict(X[i])[0]; got != want {
			t.Fatalf("row %d: stopped model predicts %v, BestRound-trained model %v", i, got, want)
		}
	}
}

// TestPredictBatchGolden is the batch-vs-row golden test for both
// multi-output strategies: PredictBatch must be bitwise identical to
// Predict on every row, including through persistence (which drops the
// cached flat compilation).
func TestPredictBatchGolden(t *testing.T) {
	rng := stats.NewRNG(31)
	X, _ := friedman(400, rng)
	Y := make([][]float64, len(X))
	for i, x := range X {
		Y[i] = []float64{x[0] + x[1], x[0] * x[1], x[2] - x[3]}
	}
	for _, strat := range []string{"multi_output_tree", "one_output_per_tree"} {
		m := New(Params{Rounds: 30, MaxDepth: 5, LearningRate: 0.2,
			MultiStrategy: strat, Seed: 33})
		if err := m.Fit(X, Y); err != nil {
			t.Fatal(err)
		}
		out := ml.NewMatrix(len(X), m.Outputs)
		m.PredictBatch(X, out)
		for i, x := range X {
			want := m.Predict(x)
			for k := range want {
				if out[i][k] != want[k] {
					t.Fatalf("%s row %d: batch %v != row %v", strat, i, out[i], want)
				}
			}
		}

		var buf bytes.Buffer
		if err := ml.SaveModel(&buf, m); err != nil {
			t.Fatal(err)
		}
		back, err := ml.LoadModel(&buf)
		if err != nil {
			t.Fatal(err)
		}
		out2 := ml.NewMatrix(len(X), m.Outputs)
		back.(*Model).PredictBatch(X, out2)
		if out2[0][0] != out[0][0] || out2[len(X)-1][m.Outputs-1] != out[len(X)-1][m.Outputs-1] {
			t.Fatalf("%s: reloaded model batch-predicts differently", strat)
		}
	}
}

// TestPredictBatchConcurrent hammers one fitted model from many
// goroutines — first calls included, so the lazy flat-tree compilation
// is exercised under -race — and checks every result agrees.
func TestPredictBatchConcurrent(t *testing.T) {
	rng := stats.NewRNG(35)
	X, Y := friedman(500, rng)
	m := New(Params{Rounds: 20, MaxDepth: 4, Seed: 36})
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	want := ml.PredictBatch(m, X)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := ml.NewMatrix(len(X), m.Outputs)
			m.PredictBatch(X, out)
			for i := range X {
				if out[i][0] != want[i][0] {
					t.Errorf("concurrent batch diverged at row %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestPerOutputParallelGrowthDeterministic fits the one-tree-per-output
// strategy (whose round trees grow on separate goroutines) twice and
// demands identical ensembles — run under -race this doubles as the
// concurrency test for the parallel growth path.
func TestPerOutputParallelGrowthDeterministic(t *testing.T) {
	rng := stats.NewRNG(37)
	X, _ := friedman(300, rng)
	Y := make([][]float64, len(X))
	for i, x := range X {
		Y[i] = []float64{x[0], x[1] * x[2], x[3] - x[4]}
	}
	fit := func() *Model {
		m := New(Params{Rounds: 25, MaxDepth: 5, MultiStrategy: "one_output_per_tree",
			Subsample: 0.8, Seed: 38})
		if err := m.Fit(X, Y); err != nil {
			t.Fatal(err)
		}
		return m
	}
	a, b := fit(), fit()
	for i := range X {
		pa, pb := a.Predict(X[i]), b.Predict(X[i])
		for k := range pa {
			if pa[k] != pb[k] {
				t.Fatalf("parallel per-output growth not deterministic at row %d", i)
			}
		}
	}
}

func TestSubsamplingStillLearns(t *testing.T) {
	rng := stats.NewRNG(12)
	X, Y := friedman(600, rng)
	m := New(Params{Rounds: 120, MaxDepth: 5, LearningRate: 0.1,
		Subsample: 0.7, ColsampleByTree: 0.7, Seed: 13})
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	mae := ml.MAE(ml.PredictBatch(m, X), Y)
	if mae > 1.0 {
		t.Errorf("subsampled train MAE = %v", mae)
	}
}

func TestDeterminism(t *testing.T) {
	rng := stats.NewRNG(14)
	X, Y := friedman(200, rng)
	a := New(Params{Rounds: 30, Seed: 15, Subsample: 0.8})
	b := New(Params{Rounds: 30, Seed: 15, Subsample: 0.8})
	if err := a.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	if err := b.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if a.Predict(X[i])[0] != b.Predict(X[i])[0] {
			t.Fatal("same seed produced different models")
		}
	}
}

func TestFeatureImportancesIdentifySignal(t *testing.T) {
	rng := stats.NewRNG(16)
	X, Y := friedman(800, rng)
	m := New(Params{Rounds: 80, MaxDepth: 5, LearningRate: 0.1, Seed: 17})
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	imp := m.FeatureImportances()
	if len(imp) != 6 {
		t.Fatalf("importances length = %d", len(imp))
	}
	sum := 0.0
	for _, v := range imp {
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum = %v", sum)
	}
	if imp[5] >= imp[3] {
		t.Errorf("noise feature importance %v >= informative %v", imp[5], imp[3])
	}
}

func TestParamValidation(t *testing.T) {
	X := [][]float64{{1}, {2}}
	Y := [][]float64{{1}, {2}}
	bad := []Params{
		{LearningRate: -0.1},
		{LearningRate: 1.5},
		{Subsample: -0.5},
		{ColsampleByTree: 2},
		{Objective: "reg:nonsense"},
		{Lambda: -1},
		{Gamma: -1},
		{ValidationFraction: 2, EarlyStoppingRounds: 5},
	}
	for i, p := range bad {
		if err := New(p).Fit(X, Y); err == nil {
			t.Errorf("params case %d should error", i)
		}
	}
}

func TestPredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic before fit")
		}
	}()
	New(Params{}).Predict([]float64{1})
}

func TestXGBoostPersistence(t *testing.T) {
	rng := stats.NewRNG(18)
	X, Y := friedman(300, rng)
	m := New(Params{Rounds: 25, MaxDepth: 4, Seed: 19})
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ml.SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ml.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if a, b := m.Predict(X[i])[0], back.Predict(X[i])[0]; a != b {
			t.Fatalf("persisted xgboost prediction %v != %v", b, a)
		}
	}
}

func TestNumTrees(t *testing.T) {
	rng := stats.NewRNG(20)
	n := 100
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64()}
		Y[i] = []float64{rng.Float64(), rng.Float64()}
	}
	m := New(Params{Rounds: 10, MaxDepth: 3, Seed: 21, MultiStrategy: "one_output_per_tree"})
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	if got := m.NumTrees(); got != 20 {
		t.Errorf("NumTrees = %d, want 10 rounds x 2 outputs", got)
	}
	multi := New(Params{Rounds: 10, MaxDepth: 3, Seed: 21})
	if err := multi.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	if got := multi.NumTrees(); got != 10 {
		t.Errorf("multi_output_tree NumTrees = %d, want one per round", got)
	}
}

func TestMultiStrategyValidation(t *testing.T) {
	X := [][]float64{{1}, {2}}
	Y := [][]float64{{1}, {2}}
	if err := New(Params{MultiStrategy: "nonsense"}).Fit(X, Y); err == nil {
		t.Error("unknown multi strategy should error")
	}
	if err := New(Params{MultiStrategy: "multi_output_tree", TreeMethod: "exact"}).Fit(X, Y); err == nil {
		t.Error("multi_output_tree with exact method should error")
	}
}

func TestMultiOutputTreeCoherence(t *testing.T) {
	// Both strategies must fit a coupled two-output target well.
	rng := stats.NewRNG(30)
	n := 600
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		x := rng.Float64()
		X[i] = []float64{x}
		Y[i] = []float64{math.Sin(3 * x), math.Cos(3 * x)}
	}
	for _, strat := range []string{"multi_output_tree", "one_output_per_tree"} {
		m := New(Params{Rounds: 100, MaxDepth: 4, LearningRate: 0.2, Seed: 31, MultiStrategy: strat})
		if err := m.Fit(X, Y); err != nil {
			t.Fatalf("%s: %v", strat, err)
		}
		if mae := ml.MAE(ml.PredictBatch(m, X), Y); mae > 0.05 {
			t.Errorf("%s train MAE = %v", strat, mae)
		}
	}
}

func TestLearningRateShrinksSteps(t *testing.T) {
	// One round at lr=1 equals the raw Newton tree; lr=0.1 must move a
	// tenth of that from the base score.
	X := [][]float64{{0}, {0}, {1}, {1}}
	Y := [][]float64{{0}, {0}, {10}, {10}}
	full := New(Params{Rounds: 1, LearningRate: 1, MaxDepth: 2, Lambda: 0, Seed: 1})
	tenth := New(Params{Rounds: 1, LearningRate: 0.1, MaxDepth: 2, Lambda: 0, Seed: 1})
	if err := full.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	if err := tenth.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	base := 5.0 // mean of labels
	fullStep := full.Predict([]float64{1})[0] - base
	tenthStep := tenth.Predict([]float64{1})[0] - base
	if math.Abs(tenthStep-fullStep/10) > 1e-9 {
		t.Errorf("lr scaling: full step %v, tenth step %v", fullStep, tenthStep)
	}
}

func BenchmarkXGBoostFit(b *testing.B) {
	rng := stats.NewRNG(1)
	X, Y := friedman(1000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m := New(Params{Rounds: 30, MaxDepth: 5, Seed: 1})
		if err := m.Fit(X, Y); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkXGBoostPredict(b *testing.B) {
	rng := stats.NewRNG(1)
	X, Y := friedman(1000, rng)
	m := New(Params{Rounds: 50, MaxDepth: 5, Seed: 1})
	if err := m.Fit(X, Y); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Predict(X[i%len(X)])
	}
}
