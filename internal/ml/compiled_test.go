// Compiled-ensemble equivalence and steady-state allocation guards
// (ISSUE PR 6): the flattened arena must be bitwise identical to the
// envelope path on every learner that compiles, and the hot predict
// kernels must not allocate. Lives in package ml_test because it
// exercises the concrete learners, which import ml.
package ml_test

import (
	"math"
	"testing"

	"crossarch/internal/ml"
	"crossarch/internal/ml/baseline"
	"crossarch/internal/ml/forest"
	"crossarch/internal/ml/linear"
	"crossarch/internal/ml/xgboost"
	"crossarch/internal/stats"
)

// compilingLearners enumerates every fitted configuration with a
// compiled form: both xgboost leaf strategies and the forest. The
// third tree learner, the bare CART/Newton tree, is covered by the
// arena fuzz target in internal/ml/tree.
func compilingLearners() []ml.Regressor {
	return []ml.Regressor{
		xgboost.New(xgboost.Params{Rounds: 12, MaxDepth: 3, Seed: 9}),
		xgboost.New(xgboost.Params{Rounds: 10, MaxDepth: 4, Seed: 5,
			TreeMethod: "exact", MultiStrategy: "one_output_per_tree"}),
		forest.New(forest.Params{Trees: 9, MaxDepth: 5, Seed: 7, Workers: 2}),
	}
}

// queryRows builds prediction queries that stress routing: in-range
// rows, extreme magnitudes, and NaN features (which every tree layout
// must route right at each split).
func queryRows(rng *stats.RNG, n, features int) [][]float64 {
	X := make([][]float64, n)
	for i := range X {
		x := make([]float64, features)
		for j := range x {
			x[j] = rng.Range(-12, 12)
		}
		switch i % 7 {
		case 3:
			x[i%features] = math.NaN()
		case 5:
			x[i%features] = 1e300
		case 6:
			x[i%features] = -1e300
		}
		X[i] = x
	}
	return X
}

// TestCompiledMatchesEnvelope is the compiled-vs-envelope golden: for
// every compiling learner, Predict, PredictInto, and PredictBatch on
// the arena must reproduce the envelope's Predict bit for bit.
func TestCompiledMatchesEnvelope(t *testing.T) {
	for _, seed := range propSeeds {
		rng := stats.NewRNG(seed)
		X, Y := randomDataset(rng, 160, 6, 4)
		queries := queryRows(rng, 64, 6)
		for _, m := range compilingLearners() {
			if err := m.Fit(X, Y); err != nil {
				t.Fatalf("seed %d %s: Fit: %v", seed, m.Name(), err)
			}
			ce, ok := ml.Compile(m)
			if !ok {
				t.Fatalf("seed %d %s: Compile reported unsupported", seed, m.Name())
			}
			if err := ce.Validate(); err != nil {
				t.Fatalf("seed %d %s: invalid arena: %v", seed, m.Name(), err)
			}
			if ce.Name() != m.Name() {
				t.Fatalf("seed %d: compiled name %q, want %q", seed, ce.Name(), m.Name())
			}
			if ce.NumOutputs() != 4 {
				t.Fatalf("seed %d %s: compiled outputs %d, want 4", seed, m.Name(), ce.NumOutputs())
			}
			out := make([]float64, 4)
			batchOut := ml.NewMatrix(len(queries), 4)
			ce.PredictBatch(queries, batchOut)
			for i, x := range queries {
				want := m.Predict(x)
				ce.PredictInto(x, out)
				mustBitwiseRow(t, m.Name(), "PredictInto", i, out, want)
				mustBitwiseRow(t, m.Name(), "Predict", i, ce.Predict(x), want)
				mustBitwiseRow(t, m.Name(), "PredictBatch", i, batchOut[i], want)
			}
		}
	}
}

func mustBitwiseRow(t *testing.T, model, path string, row int, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s %s row %d: width %d, want %d", model, path, row, len(got), len(want))
	}
	for k := range got {
		if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
			t.Fatalf("%s %s row %d out %d: %x (%v), want %x (%v)",
				model, path, row, k,
				math.Float64bits(got[k]), got[k], math.Float64bits(want[k]), want[k])
		}
	}
}

// TestCompileUnsupported: learners without a flattened form — and
// unfitted ensembles — report false, so serving falls back to the
// envelope instead of failing.
func TestCompileUnsupported(t *testing.T) {
	for _, m := range []ml.Regressor{
		baseline.New(),
		linear.New(0.1),
		xgboost.New(xgboost.Params{Rounds: 4}),
		forest.New(forest.Params{Trees: 4}),
	} {
		if ce, ok := ml.Compile(m); ok || ce != nil {
			t.Fatalf("%s: Compile = (%v, %v), want (nil, false)", m.Name(), ce, ok)
		}
	}
}

// TestCompiledFrozen: the arena is an immutable snapshot — Fit must
// refuse, and a post-compile refit of the source must not change the
// snapshot's predictions.
func TestCompiledFrozen(t *testing.T) {
	rng := stats.NewRNG(3)
	X, Y := randomDataset(rng, 120, 6, 4)
	m := xgboost.New(xgboost.Params{Rounds: 6, MaxDepth: 3, Seed: 1})
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	ce, ok := ml.Compile(m)
	if !ok {
		t.Fatal("Compile reported unsupported")
	}
	if err := ce.Fit(X, Y); err == nil {
		t.Fatal("compiled Fit succeeded, want error")
	}
	x := X[7]
	before := ce.Predict(x)
	X2, Y2 := randomDataset(rng, 120, 6, 4)
	if err := m.Fit(X2, Y2); err != nil {
		t.Fatal(err)
	}
	mustBitwiseRow(t, "xgboost", "post-refit snapshot", 0, ce.Predict(x), before)
}

// TestCompiledAllocs pins the steady-state allocation contract the
// serve dispatch path depends on: the compiled kernel allocates
// nothing for single-row or 64-row batch predict, and neither does a
// fault-free degradation ladder wrapped around it.
func TestCompiledAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; zero-alloc contract is enforced on non-race runs and by the bench gate")
	}
	rng := stats.NewRNG(42)
	X, Y := randomDataset(rng, 160, 6, 4)
	m := xgboost.New(xgboost.Params{Rounds: 12, MaxDepth: 3, Seed: 9})
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	ce, ok := ml.Compile(m)
	if !ok {
		t.Fatal("Compile reported unsupported")
	}
	x := X[3]
	out := make([]float64, 4)
	if n := testing.AllocsPerRun(200, func() { ce.PredictInto(x, out) }); n != 0 {
		t.Fatalf("PredictInto allocates %.1f per run, want 0", n)
	}
	batch := X[:64]
	batchOut := ml.NewMatrix(64, 4)
	if n := testing.AllocsPerRun(100, func() { ce.PredictBatch(batch, batchOut) }); n != 0 {
		t.Fatalf("PredictBatch(64) allocates %.1f per run, want 0", n)
	}
	ladder, err := ml.NewDegradingPredictor(ce, nil, 4, ml.DegradeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if n := testing.AllocsPerRun(100, func() { ladder.PredictBatch(batch, batchOut) }); n != 0 {
		t.Fatalf("fault-free ladder PredictBatch(64) allocates %.1f per run, want 0", n)
	}
}

// TestMatrixArena covers the coalescer's reuse contract: shape-exact
// views, growth, and backing reuse at steady state.
func TestMatrixArena(t *testing.T) {
	var a ml.MatrixArena
	m1 := a.Rows(3, 4)
	if len(m1) != 3 || len(m1[0]) != 4 || cap(m1[0]) != 4 {
		t.Fatalf("Rows(3,4) shape = %dx%d cap %d", len(m1), len(m1[0]), cap(m1[0]))
	}
	m1[2][3] = 7
	// Shrinking and regrowing within capacity must not allocate.
	if n := testing.AllocsPerRun(100, func() {
		_ = a.Rows(2, 3)
		_ = a.Rows(3, 4)
	}); n != 0 {
		t.Fatalf("steady-state Rows allocates %.1f per run, want 0", n)
	}
	// The next view aliases the same backing: stale data is visible,
	// which is exactly why the coalescer copies before fan-back.
	m2 := a.Rows(3, 4)
	if m2[2][3] != 7 {
		t.Fatalf("arena backing not reused: m2[2][3] = %v, want 7", m2[2][3])
	}
	big := a.Rows(100, 5)
	if len(big) != 100 || len(big[99]) != 5 {
		t.Fatalf("grown shape = %dx%d", len(big), len(big[99]))
	}
	for i, row := range big {
		for j := range row {
			row[j] = float64(i*5 + j)
		}
	}
	if big[99][4] != 499 {
		t.Fatalf("grown arena write lost: %v", big[99][4])
	}
}
