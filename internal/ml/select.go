package ml

import (
	"fmt"
	"sort"

	"crossarch/internal/stats"
)

// Candidate pairs a label with a model factory for selection runs.
type Candidate struct {
	Name    string
	Factory Factory
}

// SelectionResult records a cross-validated model-selection run.
type SelectionResult struct {
	// Best is the candidate with the lowest mean cross-validation MAE.
	Best string
	// Scores holds every candidate's CV result, sorted by MeanMAE.
	Scores []struct {
		Name string
		CV   CVResult
	}
}

// SelectModel performs the paper's Section VI model-selection loop:
// cross-validate every candidate on the training data and pick the one
// with the lowest mean MAE. Candidates are evaluated with the same
// folds (same RNG seed) so the comparison is paired.
func SelectModel(candidates []Candidate, X, Y [][]float64, folds int, seed uint64) (SelectionResult, error) {
	if len(candidates) == 0 {
		return SelectionResult{}, fmt.Errorf("ml: no candidates")
	}
	var res SelectionResult
	for _, c := range candidates {
		cv, err := CrossValidate(c.Factory, X, Y, folds, stats.NewRNG(seed))
		if err != nil {
			return SelectionResult{}, fmt.Errorf("ml: selecting %s: %w", c.Name, err)
		}
		res.Scores = append(res.Scores, struct {
			Name string
			CV   CVResult
		}{c.Name, cv})
	}
	sort.SliceStable(res.Scores, func(a, b int) bool {
		return res.Scores[a].CV.MeanMAE < res.Scores[b].CV.MeanMAE
	})
	res.Best = res.Scores[0].Name
	return res, nil
}
