package ml

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"sort"
	"sync"

	"crossarch/internal/obs"
)

// ErrChecksum is the typed cause of every payload-checksum failure in
// the load path. Callers branch on it with errors.Is to distinguish "the
// file is corrupt" (refuse to serve, keep the old model) from "the file
// is missing" (fs.ErrNotExist) or "the learner is unknown" — the serving
// reload path and /v1/modelz surface the distinction to operators.
var ErrChecksum = errors.New("ml: model payload checksum mismatch")

// The persistence registry maps a model name (Regressor.Name) to a
// factory producing an empty instance whose exported fields JSON
// round-trips its trained state. Learner packages register themselves in
// init, so any program that imports a learner can load its saved models.
var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// RegisterModel makes a learner loadable by name. It panics on duplicate
// registration, which would indicate two learners claiming one name.
func RegisterModel(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("ml: duplicate model registration %q", name))
	}
	registry[name] = f
}

// RegisteredModels returns the sorted names of all loadable learners.
func RegisteredModels() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// envelope is the on-disk model format: the learner name selects the
// concrete type for the payload, and the checksum (FNV-1a 64 over the
// raw payload bytes, hex) lets load detect truncation or bit flips
// before garbage weights ever produce a prediction. Files written
// before the checksum existed omit the field and still load (with a
// warning), so saved predictors never strand.
type envelope struct {
	Name     string          `json:"name"`
	Checksum string          `json:"checksum,omitempty"`
	Payload  json.RawMessage `json:"payload"`
}

// payloadChecksum is the FNV-1a 64 digest of the payload bytes in
// fixed-width hex.
func payloadChecksum(payload []byte) string {
	h := fnv.New64a()
	_, _ = h.Write(payload) // hash.Hash.Write never returns an error
	return fmt.Sprintf("%016x", h.Sum64())
}

// LegacyWarn receives one line per checksum-less model file loaded; it
// defaults to stderr. Tests may silence or capture it. A nil writer
// disables the warning (the obs counter still counts them).
var LegacyWarn io.Writer = os.Stderr

// SaveModel serializes a fitted model to w as a named, checksummed
// JSON envelope.
func SaveModel(w io.Writer, m Regressor) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("ml: marshaling %s: %w", m.Name(), err)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(envelope{Name: m.Name(), Checksum: payloadChecksum(payload), Payload: payload})
}

// ModelInfo describes a loaded model envelope: the metadata a serving
// process exposes about the weights it holds, without re-reading the
// file.
type ModelInfo struct {
	// Name is the learner name from the envelope (e.g. "xgboost").
	Name string `json:"name"`
	// Checksum is the FNV-1a 64 payload digest in hex; empty for legacy
	// files written before the checksum existed.
	Checksum string `json:"checksum,omitempty"`
	// Legacy marks a checksum-less file (corruption undetectable).
	Legacy bool `json:"legacy,omitempty"`
	// PayloadBytes is the serialized model size.
	PayloadBytes int `json:"payload_bytes"`
}

// LoadModel reads a model envelope from r and reconstructs the learner
// via the registry. The learner's package must have been imported so its
// init registration ran. A checksum mismatch is reported as a distinct
// corrupt-model error wrapping ErrChecksum before any payload field is
// interpreted; checksum-less legacy files load with a warning.
func LoadModel(r io.Reader) (Regressor, error) {
	m, _, err := LoadModelInfo(r)
	return m, err
}

// LoadModelInfo is LoadModel returning the envelope metadata alongside
// the reconstructed learner — the serving layer's load path, which
// reports the checksum on /v1/modelz. On error the info still carries
// whatever envelope fields were decoded, so a corrupt file can be
// reported by name.
func LoadModelInfo(r io.Reader) (Regressor, ModelInfo, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, ModelInfo{}, fmt.Errorf("ml: decoding model envelope: %w", err)
	}
	info := ModelInfo{
		Name:         env.Name,
		Checksum:     env.Checksum,
		Legacy:       env.Checksum == "",
		PayloadBytes: len(env.Payload),
	}
	if env.Checksum != "" {
		if got := payloadChecksum(env.Payload); got != env.Checksum {
			obs.Inc("ml.persist.corrupt.total")
			return nil, info, fmt.Errorf("ml: model %q corrupt: payload checksum %s, envelope says %s: %w", env.Name, got, env.Checksum, ErrChecksum)
		}
	} else {
		obs.Inc("ml.persist.legacy.total")
		if LegacyWarn != nil {
			fmt.Fprintf(LegacyWarn, "ml: warning: model %q has no checksum (written by an older version); corruption cannot be detected\n", env.Name)
		}
	}
	registryMu.RLock()
	factory, ok := registry[env.Name]
	registryMu.RUnlock()
	if !ok {
		return nil, info, fmt.Errorf("ml: unknown model %q (registered: %v)", env.Name, RegisteredModels())
	}
	m := factory()
	if err := json.Unmarshal(env.Payload, m); err != nil {
		return nil, info, fmt.Errorf("ml: decoding %s payload: %w", env.Name, err)
	}
	return m, info, nil
}

// SaveModelFile writes a model to the named file.
func SaveModelFile(path string, m Regressor) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := SaveModel(f, m); err != nil {
		return err
	}
	return f.Close()
}

// LoadModelFile reads a model from the named file.
func LoadModelFile(path string) (Regressor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}

// LoadModelFileInfo reads a model and its envelope metadata from the
// named file. A missing file surfaces as the os.Open error (errors.Is
// fs.ErrNotExist), distinct from the ErrChecksum corrupt-payload case.
func LoadModelFileInfo(path string) (Regressor, ModelInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, ModelInfo{}, err
	}
	defer f.Close()
	return LoadModelInfo(f)
}
