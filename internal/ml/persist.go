package ml

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"crossarch/internal/obs"
)

// ErrChecksum is the typed cause of every payload-checksum failure in
// the load path. Callers branch on it with errors.Is to distinguish "the
// file is corrupt" (refuse to serve, keep the old model) from "the file
// is missing" (fs.ErrNotExist) or "the learner is unknown" — the serving
// reload path and /v1/modelz surface the distinction to operators.
var ErrChecksum = errors.New("ml: model payload checksum mismatch")

// The persistence registry maps a model name (Regressor.Name) to a
// factory producing an empty instance whose exported fields JSON
// round-trips its trained state. Learner packages register themselves in
// init, so any program that imports a learner can load its saved models.
var (
	registryMu sync.RWMutex
	registry   = map[string]Factory{}
)

// RegisterModel makes a learner loadable by name. It panics on duplicate
// registration, which would indicate two learners claiming one name.
func RegisterModel(name string, f Factory) {
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[name]; dup {
		panic(fmt.Sprintf("ml: duplicate model registration %q", name))
	}
	registry[name] = f
}

// RegisteredModels returns the sorted names of all loadable learners.
func RegisteredModels() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for n := range registry {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// envelope is the on-disk model format: the learner name selects the
// concrete type for the payload, and the checksum (FNV-1a 64 over the
// raw payload bytes, hex) lets load detect truncation or bit flips
// before garbage weights ever produce a prediction. Files written
// before the checksum existed omit the field and still load (with a
// warning), so saved predictors never strand.
type envelope struct {
	Name     string          `json:"name"`
	Checksum string          `json:"checksum,omitempty"`
	Payload  json.RawMessage `json:"payload"`
}

// payloadChecksum is the FNV-1a 64 digest of the payload bytes in
// fixed-width hex.
func payloadChecksum(payload []byte) string {
	h := fnv.New64a()
	_, _ = h.Write(payload) // hash.Hash.Write never returns an error
	return fmt.Sprintf("%016x", h.Sum64())
}

// PayloadChecksum exposes the envelope digest for other integrity
// checks in the repository (the registry's manifest self-checksum uses
// it so every on-disk artifact verifies the same way).
func PayloadChecksum(payload []byte) string { return payloadChecksum(payload) }

// LegacyWarn receives one line per checksum-less model file loaded; it
// defaults to stderr. Tests may silence or capture it. A nil writer
// disables the warning (the obs counter still counts them).
var LegacyWarn io.Writer = os.Stderr

// SaveModel serializes a fitted model to w as a named, checksummed
// JSON envelope.
func SaveModel(w io.Writer, m Regressor) error {
	payload, err := json.Marshal(m)
	if err != nil {
		return fmt.Errorf("ml: marshaling %s: %w", m.Name(), err)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(envelope{Name: m.Name(), Checksum: payloadChecksum(payload), Payload: payload})
}

// ModelInfo describes a loaded model envelope: the metadata a serving
// process exposes about the weights it holds, without re-reading the
// file.
type ModelInfo struct {
	// Name is the learner name from the envelope (e.g. "xgboost").
	Name string `json:"name"`
	// Checksum is the FNV-1a 64 payload digest in hex; empty for legacy
	// files written before the checksum existed.
	Checksum string `json:"checksum,omitempty"`
	// Legacy marks a checksum-less file (corruption undetectable).
	Legacy bool `json:"legacy,omitempty"`
	// PayloadBytes is the serialized model size.
	PayloadBytes int `json:"payload_bytes"`
}

// LoadModel reads a model envelope from r and reconstructs the learner
// via the registry. The learner's package must have been imported so its
// init registration ran. A checksum mismatch is reported as a distinct
// corrupt-model error wrapping ErrChecksum before any payload field is
// interpreted; checksum-less legacy files load with a warning.
func LoadModel(r io.Reader) (Regressor, error) {
	m, _, err := LoadModelInfo(r)
	return m, err
}

// LoadModelInfo is LoadModel returning the envelope metadata alongside
// the reconstructed learner — the serving layer's load path, which
// reports the checksum on /v1/modelz. On error the info still carries
// whatever envelope fields were decoded, so a corrupt file can be
// reported by name.
func LoadModelInfo(r io.Reader) (Regressor, ModelInfo, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		// Truncated or garbage bytes where an envelope should be: typed
		// as ErrBadInput so callers (and FuzzLoadModel) can assert that
		// every malformed artifact maps to a branchable cause rather
		// than a bare decoding error.
		return nil, ModelInfo{}, fmt.Errorf("ml: decoding model envelope: %v: %w", err, ErrBadInput)
	}
	info := ModelInfo{
		Name:         env.Name,
		Checksum:     env.Checksum,
		Legacy:       env.Checksum == "",
		PayloadBytes: len(env.Payload),
	}
	if env.Checksum != "" {
		if got := payloadChecksum(env.Payload); got != env.Checksum {
			obs.Inc("ml.persist.corrupt.total")
			return nil, info, fmt.Errorf("ml: model %q corrupt: payload checksum %s, envelope says %s: %w", env.Name, got, env.Checksum, ErrChecksum)
		}
	} else {
		obs.Inc("ml.persist.legacy.total")
		if LegacyWarn != nil {
			fmt.Fprintf(LegacyWarn, "ml: warning: model %q has no checksum (written by an older version); corruption cannot be detected\n", env.Name)
		}
	}
	registryMu.RLock()
	factory, ok := registry[env.Name]
	registryMu.RUnlock()
	if !ok {
		return nil, info, fmt.Errorf("ml: unknown model %q (registered: %v): %w", env.Name, RegisteredModels(), ErrBadInput)
	}
	m := factory()
	if err := json.Unmarshal(env.Payload, m); err != nil {
		// A checksum-valid envelope whose payload does not decode into
		// the named learner: only reachable for legacy (checksum-less)
		// files or a learner-version skew, both caller-facing bad input.
		return nil, info, fmt.Errorf("ml: decoding %s payload: %v: %w", env.Name, err, ErrBadInput)
	}
	return m, info, nil
}

// WriteFileAtomic writes the file produced by write to path so that a
// crash at any instant leaves either the previous file or the new one,
// never a truncation: the bytes go to a temp file in path's directory,
// the temp file is fsynced, renamed over path, and the directory entry
// is fsynced. Every model-envelope write in the repository (train
// -save-model, the registry's blob and manifest commits) goes through
// it — a half-written model where a valid one stood is the failure
// mode the crash-safe registry exists to rule out, so the primitive
// lives here next to the envelope format itself.
func WriteFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	defer func() {
		if err != nil {
			_ = f.Close()
			_ = os.Remove(tmp)
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp, path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so a just-renamed entry survives a crash.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	// Filesystems that cannot sync a directory handle (some network and
	// overlay mounts) fail this call on a perfectly durable rename; the
	// data file itself was already fsynced, so the directory sync is
	// best-effort by design while file-level syncs stay strict.
	_ = d.Sync()
	return nil
}

// SaveModelFile writes a model to the named file atomically: a crash
// mid-save can never leave a truncated envelope where a valid one
// stood, and a failed save leaves the previous file untouched.
func SaveModelFile(path string, m Regressor) error {
	return WriteFileAtomic(path, func(w io.Writer) error { return SaveModel(w, m) })
}

// VerifyEnvelope reads a model envelope and verifies its payload
// checksum without reconstructing the learner, so integrity can be
// audited by processes that never imported the learner's package (the
// registry's blob re-verification pass). Legacy checksum-less
// envelopes are rejected: unverifiable is not verified.
func VerifyEnvelope(r io.Reader) (ModelInfo, error) {
	var env envelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return ModelInfo{}, fmt.Errorf("ml: decoding model envelope: %v: %w", err, ErrBadInput)
	}
	info := ModelInfo{
		Name:         env.Name,
		Checksum:     env.Checksum,
		Legacy:       env.Checksum == "",
		PayloadBytes: len(env.Payload),
	}
	if env.Checksum == "" {
		return info, fmt.Errorf("ml: model %q has no checksum to verify: %w", env.Name, ErrBadInput)
	}
	if got := payloadChecksum(env.Payload); got != env.Checksum {
		return info, fmt.Errorf("ml: model %q corrupt: payload checksum %s, envelope says %s: %w", env.Name, got, env.Checksum, ErrChecksum)
	}
	return info, nil
}

// VerifyEnvelopeFile is VerifyEnvelope over the named file.
func VerifyEnvelopeFile(path string) (ModelInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return ModelInfo{}, err
	}
	defer f.Close()
	return VerifyEnvelope(f)
}

// LoadModelFile reads a model from the named file.
func LoadModelFile(path string) (Regressor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadModel(f)
}

// LoadModelFileInfo reads a model and its envelope metadata from the
// named file. A missing file surfaces as the os.Open error (errors.Is
// fs.ErrNotExist), distinct from the ErrChecksum corrupt-payload case.
func LoadModelFileInfo(path string) (Regressor, ModelInfo, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, ModelInfo{}, err
	}
	defer f.Close()
	return LoadModelInfo(f)
}
