package ml

import (
	"runtime"
	"sync"

	"crossarch/internal/obs"
)

// BatchRegressor is implemented by regressors with a vectorized
// prediction path. PredictBatch fills out[i] with the prediction for
// X[i]; out must have len(X) rows, each of the model's output width.
// Implementations must produce bitwise-identical results to calling
// Predict row by row on the same fitted model, and must be safe to call
// concurrently on a fitted model (prediction is read-only).
type BatchRegressor interface {
	Regressor
	PredictBatch(X, out [][]float64)
}

// minChunk is the smallest row block ParallelRows hands to a worker
// goroutine. Below ~2 blocks the goroutine handoff costs more than the
// traversal work it parallelizes, so small batches run inline.
const minChunk = 256

// ParallelRows partitions [0, n) into contiguous blocks and runs fn on
// every block, using up to GOMAXPROCS goroutines. Blocks are disjoint,
// so fn may write freely to per-row state (output buffers, margins)
// without synchronization; fn must not touch rows outside its block.
// Small n runs inline on the calling goroutine. ParallelRows returns
// after every block has been processed.
func ParallelRows(n int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	// Chunk occupancy is observed per block, not per row, so the
	// instrumentation cost stays negligible next to the traversal work.
	workers := runtime.GOMAXPROCS(0)
	if n < 2*minChunk || workers <= 1 {
		obs.Add("ml.parallel.chunks.total", 1)
		obs.Observe("ml.parallel.chunk.rows", float64(n))
		fn(0, n)
		return
	}
	chunk := (n + workers - 1) / workers
	if chunk < minChunk {
		chunk = minChunk
	}
	var wg sync.WaitGroup
	for lo := 0; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		obs.Add("ml.parallel.chunks.total", 1)
		obs.Observe("ml.parallel.chunk.rows", float64(hi-lo))
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			fn(lo, hi)
		}(lo, hi)
	}
	wg.Wait()
}

// NewMatrix allocates a rows x cols matrix whose rows share one
// contiguous backing array, so batch outputs cost two allocations
// instead of rows+1 and stay cache-friendly when scanned row-major.
func NewMatrix(rows, cols int) [][]float64 {
	backing := make([]float64, rows*cols)
	out := make([][]float64, rows)
	for i := range out {
		out[i] = backing[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return out
}
