package ml

import (
	"runtime"
	"sync"

	"crossarch/internal/obs"
)

// BatchRegressor is implemented by regressors with a vectorized
// prediction path. PredictBatch fills out[i] with the prediction for
// X[i]; out must have len(X) rows, each of the model's output width.
// Implementations must produce bitwise-identical results to calling
// Predict row by row on the same fitted model, and must be safe to call
// concurrently on a fitted model (prediction is read-only).
type BatchRegressor interface {
	Regressor
	PredictBatch(X, out [][]float64)
}

// minChunk is the smallest row block ParallelRows hands to a worker
// goroutine. Below ~2 blocks the goroutine handoff costs more than the
// traversal work it parallelizes, so small batches run inline.
const minChunk = 256

// ParallelRows partitions [0, n) into contiguous blocks and runs fn on
// every block, using up to GOMAXPROCS goroutines. Blocks are disjoint,
// so fn may write freely to per-row state (output buffers, margins)
// without synchronization; fn must not touch rows outside its block.
// Small n runs inline on the calling goroutine. ParallelRows returns
// after every block has been processed.
//
// A panic inside fn is captured in the worker and re-raised on the
// calling goroutine after all blocks finish, so callers can recover it
// like any ordinary panic; an uncaught worker panic would otherwise
// kill the whole process with no recovery point.
func ParallelRows(n int, fn func(lo, hi int)) {
	parallelBlocks(n, fn, nil)
}

// ParallelRowsSafe is ParallelRows with per-row panic isolation for
// degradable work: when a block panics, the pool re-runs that block's
// rows one at a time and reports each row that panics to onPanic
// (called from the worker goroutine that hit it, with disjoint rows)
// instead of unwinding. The batch survives — only the panicking rows
// lack output, and the caller decides how to degrade them. fn must be
// idempotent per row, because rows of a panicked block that ran before
// the panic run again during isolation. A nil onPanic behaves exactly
// like ParallelRows.
func ParallelRowsSafe(n int, fn func(lo, hi int), onPanic func(row int, v any)) {
	parallelBlocks(n, fn, onPanic)
}

// parallelBlocks is the shared pool: chunking, instrumentation, and
// panic containment.
func parallelBlocks(n int, fn func(lo, hi int), onPanic func(row int, v any)) {
	if n <= 0 {
		return
	}
	// runBlock reports whether fn completed; the returned value is the
	// recovered panic when it did not. The bool is the source of truth
	// (a recovered nil still means the block died).
	runBlock := func(lo, hi int) (v any, ok bool) {
		defer func() {
			if r := recover(); r != nil {
				v = r
			}
		}()
		fn(lo, hi)
		return nil, true
	}
	var panicMu sync.Mutex
	var firstPanic any
	var panicked bool
	safeRun := func(lo, hi int) {
		v, ok := runBlock(lo, hi)
		if ok {
			return
		}
		if onPanic == nil {
			panicMu.Lock()
			if !panicked {
				panicked, firstPanic = true, v
			}
			panicMu.Unlock()
			return
		}
		for i := lo; i < hi; i++ {
			if v, ok := runBlock(i, i+1); !ok {
				onPanic(i, v)
			}
		}
	}

	// Chunk occupancy is observed per block, not per row, so the
	// instrumentation cost stays negligible next to the traversal work.
	workers := runtime.GOMAXPROCS(0)
	if n < 2*minChunk || workers <= 1 {
		obs.Add("ml.parallel.chunks.total", 1)
		obs.Observe("ml.parallel.chunk.rows", float64(n))
		safeRun(0, n)
	} else {
		chunk := (n + workers - 1) / workers
		if chunk < minChunk {
			chunk = minChunk
		}
		var wg sync.WaitGroup
		for lo := 0; lo < n; lo += chunk {
			hi := lo + chunk
			if hi > n {
				hi = n
			}
			obs.Add("ml.parallel.chunks.total", 1)
			obs.Observe("ml.parallel.chunk.rows", float64(hi-lo))
			wg.Add(1)
			go func(lo, hi int) {
				defer wg.Done()
				safeRun(lo, hi)
			}(lo, hi)
		}
		wg.Wait()
	}
	if panicked {
		panic(firstPanic)
	}
}

// NewMatrix allocates a rows x cols matrix whose rows share one
// contiguous backing array, so batch outputs cost two allocations
// instead of rows+1 and stay cache-friendly when scanned row-major.
func NewMatrix(rows, cols int) [][]float64 {
	backing := make([]float64, rows*cols)
	out := make([][]float64, rows)
	for i := range out {
		out[i] = backing[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return out
}

// MatrixArena is a reusable NewMatrix: Rows returns a rows x cols
// matrix view over grown-once storage, so a steady-state caller (the
// serve coalescer) allocates nothing per batch. The returned matrix
// holds stale values from earlier batches — callers must fully
// overwrite every row — and is INVALIDATED by the next Rows call, so
// data that outlives the batch must be copied out (the coalescer's
// fan-back ownership rule). Not safe for concurrent use; each arena
// belongs to one goroutine.
type MatrixArena struct {
	backing []float64
	rows    [][]float64
}

// Rows returns a rows x cols matrix backed by the arena, growing the
// arena when the request exceeds its capacity. Row headers are
// re-sliced on every call (cap-limited, contiguous backing), so the
// matrix shape is exact even as dimensions change between calls.
func (a *MatrixArena) Rows(rows, cols int) [][]float64 {
	if need := rows * cols; cap(a.backing) < need {
		a.backing = make([]float64, need)
	}
	if cap(a.rows) < rows {
		a.rows = make([][]float64, rows)
	}
	out := a.rows[:rows]
	backing := a.backing[:cap(a.backing)]
	for i := range out {
		out[i] = backing[i*cols : (i+1)*cols : (i+1)*cols]
	}
	return out
}
