package ml

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

func TestValidateRow(t *testing.T) {
	cases := []struct {
		name string
		x    []float64
		want int
		ok   bool
	}{
		{"finite exact width", []float64{1, -2, 0.5}, 3, true},
		{"width unchecked", []float64{1, 2}, 0, true},
		{"width mismatch", []float64{1, 2}, 3, false},
		{"NaN feature", []float64{1, math.NaN(), 3}, 3, false},
		{"+Inf feature", []float64{math.Inf(1)}, 1, false},
		{"-Inf feature", []float64{math.Inf(-1)}, 1, false},
		{"empty row vs width", []float64{}, 2, false},
		{"empty row unchecked", []float64{}, 0, true},
	}
	for _, c := range cases {
		err := ValidateRow(c.x, c.want)
		if (err == nil) != c.ok {
			t.Errorf("%s: ValidateRow = %v, want ok=%v", c.name, err, c.ok)
		}
		if err != nil && !errors.Is(err, ErrBadInput) {
			t.Errorf("%s: error %v does not wrap ErrBadInput", c.name, err)
		}
	}
}

func TestValidateMatrix(t *testing.T) {
	if err := ValidateMatrix(nil, 0); err != nil {
		t.Errorf("empty matrix: %v", err)
	}
	if err := ValidateMatrix([][]float64{{1, 2}, {3, 4}}, 0); err != nil {
		t.Errorf("rectangular finite matrix: %v", err)
	}
	if err := ValidateMatrix([][]float64{{1, 2}, {3}}, 0); err == nil {
		t.Error("ragged matrix accepted")
	}
	if err := ValidateMatrix([][]float64{{1, 2}}, 3); err == nil {
		t.Error("width mismatch vs explicit want accepted")
	}
	if err := ValidateMatrix([][]float64{{1}, {math.NaN()}}, 1); err == nil {
		t.Error("NaN entry accepted")
	} else if !errors.Is(err, ErrBadInput) {
		t.Errorf("error %v does not wrap ErrBadInput", err)
	}
	if err := ValidateMatrix([][]float64{{}}, 0); err == nil {
		t.Error("zero-width rows accepted")
	}
}

// FuzzPredictInput drives the predict-boundary validator with
// arbitrary byte-derived matrices (the fuzzer reaches NaN payloads,
// infinities, subnormals, and every width mismatch shape) and checks
// its contract against a straightforward reference predicate: the
// validator never panics, accepts exactly the rectangular all-finite
// matrices, and every rejection wraps ErrBadInput.
func FuzzPredictInput(f *testing.F) {
	nan := make([]byte, 8)
	binary.LittleEndian.PutUint64(nan, math.Float64bits(math.NaN()))
	f.Add([]byte{}, uint8(0))
	f.Add([]byte{0, 0, 0, 0, 0, 0, 0xf0, 0x3f, 1, 2, 3, 4, 5, 6, 7, 8}, uint8(2))
	f.Add(nan, uint8(1))
	f.Add([]byte{1, 2, 3}, uint8(3)) // trailing partial value is dropped
	f.Fuzz(func(t *testing.T, data []byte, width uint8) {
		// Decode data as float64s and shape them into rows of `width`
		// columns; a ragged tail row exercises the width check.
		vals := make([]float64, 0, len(data)/8)
		for len(data) >= 8 {
			vals = append(vals, math.Float64frombits(binary.LittleEndian.Uint64(data[:8])))
			data = data[8:]
		}
		w := int(width%8) + 1
		var X [][]float64
		for lo := 0; lo < len(vals); lo += w {
			hi := lo + w
			if hi > len(vals) {
				hi = len(vals)
			}
			X = append(X, vals[lo:hi])
		}

		err := ValidateMatrix(X, w)
		wantOK := true
		for _, row := range X {
			if len(row) != w {
				wantOK = false
			}
			for _, v := range row {
				if math.IsNaN(v) || math.IsInf(v, 0) {
					wantOK = false
				}
			}
		}
		if (err == nil) != wantOK {
			t.Fatalf("ValidateMatrix(%d rows, w=%d) = %v, reference says ok=%v", len(X), w, err, wantOK)
		}
		if err != nil && !errors.Is(err, ErrBadInput) {
			t.Fatalf("validation error %v does not wrap ErrBadInput", err)
		}
		// Inferred-width mode must agree on rectangular matrices.
		if len(X) > 0 && len(X[0]) == w {
			if err2 := ValidateMatrix(X, 0); (err2 == nil) != (err == nil) {
				t.Fatalf("inferred-width disagrees: %v vs %v", err2, err)
			}
		}
	})
}
