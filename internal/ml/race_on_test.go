//go:build race

package ml_test

// raceEnabled lets allocation-count tests skip under the race
// detector, whose instrumentation inserts allocations that
// testing.AllocsPerRun observes. The zero-alloc contract is still
// enforced on every non-race `go test` run and by the benchmark gate.
const raceEnabled = true
