package ml

import (
	"sync"
	"sync/atomic"
	"testing"
)

// TestParallelRowsCoversEveryRowOnce drives the pool at several sizes
// spanning the inline and parallel paths and checks the blocks tile
// [0, n) exactly.
func TestParallelRowsCoversEveryRowOnce(t *testing.T) {
	for _, n := range []int{0, 1, 7, 255, 256, 511, 512, 10000} {
		hits := make([]int32, n)
		ParallelRows(n, func(lo, hi int) {
			if lo < 0 || hi > n || lo >= hi {
				t.Errorf("n=%d: bad block [%d,%d)", n, lo, hi)
				return
			}
			for i := lo; i < hi; i++ {
				atomic.AddInt32(&hits[i], 1)
			}
		})
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("n=%d: row %d visited %d times", n, i, h)
			}
		}
	}
}

// TestParallelRowsBlocksAreDisjoint verifies per-row writes need no
// synchronization: every worker writes its block into a shared slice
// without atomics and nothing is lost (the race detector guards this
// under -race).
func TestParallelRowsBlocksAreDisjoint(t *testing.T) {
	const n = 4096
	out := make([]int, n)
	ParallelRows(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			out[i] = i * i
		}
	})
	for i := range out {
		if out[i] != i*i {
			t.Fatalf("row %d = %d, want %d", i, out[i], i*i)
		}
	}
}

// TestNewMatrixContiguous checks shape and the shared-backing layout.
func TestNewMatrixContiguous(t *testing.T) {
	m := NewMatrix(5, 3)
	if len(m) != 5 {
		t.Fatalf("rows = %d", len(m))
	}
	for i := range m {
		if len(m[i]) != 3 || cap(m[i]) != 3 {
			t.Fatalf("row %d: len %d cap %d", i, len(m[i]), cap(m[i]))
		}
		for j := range m[i] {
			m[i][j] = float64(i*3 + j)
		}
	}
	// Rows must not alias each other.
	if m[0][2] != 2 || m[1][0] != 3 {
		t.Fatal("rows alias or overlap")
	}
}

// stubBatch is a BatchRegressor that records whether the batched path
// was taken.
type stubBatch struct {
	batched int32
}

func (s *stubBatch) Fit(X, Y [][]float64) error { return nil }
func (s *stubBatch) Predict(x []float64) []float64 {
	return []float64{x[0] + 1, x[0] + 2}
}
func (s *stubBatch) Name() string { return "stub" }
func (s *stubBatch) PredictBatch(X, out [][]float64) {
	atomic.StoreInt32(&s.batched, 1)
	for i, x := range X {
		copy(out[i], s.Predict(x))
	}
}

// TestPredictBatchUsesVectorizedPath checks the helper dispatches to
// BatchRegressor and matches the row-at-a-time fallback exactly.
func TestPredictBatchUsesVectorizedPath(t *testing.T) {
	s := &stubBatch{}
	X := [][]float64{{1}, {2}, {3}}
	got := PredictBatch(s, X)
	if atomic.LoadInt32(&s.batched) != 1 {
		t.Fatal("BatchRegressor path not taken")
	}
	for i, x := range X {
		want := s.Predict(x)
		for k := range want {
			if got[i][k] != want[k] {
				t.Fatalf("row %d: %v, want %v", i, got[i], want)
			}
		}
	}
	if out := PredictBatch(s, nil); len(out) != 0 {
		t.Fatalf("empty batch returned %d rows", len(out))
	}
}

// TestParallelRowsRepanicsOnCaller pins the containment contract: a
// worker panic no longer kills the process but surfaces as a
// recoverable panic on the calling goroutine, at inline and parallel
// sizes.
func TestParallelRowsRepanicsOnCaller(t *testing.T) {
	for _, n := range []int{4, 4096} {
		func() {
			defer func() {
				if r := recover(); r != "boom" {
					t.Errorf("n=%d: recovered %v, want boom", n, r)
				}
			}()
			ParallelRows(n, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					if i == n/2 {
						panic("boom")
					}
				}
			})
			t.Errorf("n=%d: ParallelRows returned past a panicking block", n)
		}()
	}
}

// TestParallelRowsSafeIsolatesPanickingRows checks the degradation
// contract: only the rows that panic are reported, every other row's
// output survives, and the pool never unwinds.
func TestParallelRowsSafeIsolatesPanickingRows(t *testing.T) {
	for _, n := range []int{9, 2048} {
		bad := map[int]bool{1: true, n / 2: true, n - 1: true}
		out := make([]float64, n)
		var mu sync.Mutex
		panicked := map[int]bool{}
		ParallelRowsSafe(n, func(lo, hi int) {
			for i := lo; i < hi; i++ {
				if bad[i] {
					panic(i)
				}
				out[i] = float64(i) + 0.5
			}
		}, func(row int, v any) {
			mu.Lock()
			panicked[row] = true
			mu.Unlock()
			if v.(int) != row {
				t.Errorf("row %d reported panic value %v", row, v)
			}
		})
		for i := range out {
			if bad[i] {
				if !panicked[i] {
					t.Errorf("n=%d: bad row %d not reported", n, i)
				}
				continue
			}
			if out[i] != float64(i)+0.5 {
				t.Errorf("n=%d: surviving row %d = %v", n, i, out[i])
			}
		}
		if len(panicked) != len(bad) {
			t.Errorf("n=%d: %d rows reported, want %d", n, len(panicked), len(bad))
		}
	}
}

// TestPredictBatchConcurrent exercises the helper from many goroutines
// at once so -race can observe the shared pool machinery.
func TestPredictBatchConcurrent(t *testing.T) {
	s := &stubBatch{}
	X := make([][]float64, 1000)
	for i := range X {
		X[i] = []float64{float64(i)}
	}
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := PredictBatch(s, X)
			if out[999][0] != 1000 {
				t.Error("wrong batched value")
			}
		}()
	}
	wg.Wait()
}
