// Inference benchmarks for the compiled-ensemble hot path, tracked by
// the BENCH_predict.json trajectory (make bench writes it, make
// bench-gate enforces it). The model is serving-scale — deep enough
// that per-tree pointer-chasing dominates the envelope path — so the
// compiled/envelope pair quantifies exactly the win the serve stack
// inherits.
package ml_test

import (
	"sync"
	"testing"

	"crossarch/internal/ml"
	"crossarch/internal/ml/xgboost"
	"crossarch/internal/stats"
)

var benchEnsemble struct {
	once    sync.Once
	model   *xgboost.Model
	ce      *ml.CompiledEnsemble
	queries [][]float64
}

func benchSetup(b *testing.B) (*xgboost.Model, *ml.CompiledEnsemble, [][]float64) {
	benchEnsemble.once.Do(func() {
		rng := stats.NewRNG(2024)
		X, Y := randomDataset(rng, 400, 12, 4)
		m := xgboost.New(xgboost.Params{Rounds: 60, MaxDepth: 5, Seed: 13})
		if err := m.Fit(X, Y); err != nil {
			panic(err)
		}
		ce, ok := ml.Compile(m)
		if !ok {
			panic("xgboost did not compile")
		}
		benchEnsemble.model = m
		benchEnsemble.ce = ce
		benchEnsemble.queries = queryRows(stats.NewRNG(7), 64, 12)
	})
	return benchEnsemble.model, benchEnsemble.ce, benchEnsemble.queries
}

// BenchmarkCompiledPredict measures the flattened arena kernel: the
// steady-state serving unit (single row and the 64-row coalesced
// batch), both required to run allocation-free.
func BenchmarkCompiledPredict(b *testing.B) {
	_, ce, queries := benchSetup(b)
	b.Run("row", func(b *testing.B) {
		x := queries[0]
		out := make([]float64, ce.NumOutputs())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ce.PredictInto(x, out)
		}
		b.ReportMetric(float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
	b.Run("batch64", func(b *testing.B) {
		out := ml.NewMatrix(len(queries), ce.NumOutputs())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ce.PredictBatch(queries, out)
		}
		b.ReportMetric(float64(len(queries))*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
}

// BenchmarkEnvelopePredict is the same model through the envelope's
// own batch path — the compiled kernel's reference point.
func BenchmarkEnvelopePredict(b *testing.B) {
	m, ce, queries := benchSetup(b)
	b.Run("batch64", func(b *testing.B) {
		out := ml.NewMatrix(len(queries), ce.NumOutputs())
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.PredictBatch(queries, out)
		}
		b.ReportMetric(float64(len(queries))*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
	})
}
