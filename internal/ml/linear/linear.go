// Package linear implements multi-output ridge regression solved exactly
// via the normal equations with Cholesky decomposition. With Alpha = 0 it
// is ordinary least squares, matching the scikit-learn LinearRegression
// baseline from the paper; a small positive Alpha keeps the solve stable
// on nearly collinear counter features.
package linear

import (
	"fmt"
	"math"

	"crossarch/internal/ml"
)

// Ridge is a linear model y = W x + b fit by minimizing
// ||Y - XW||^2 + alpha ||W||^2 (the intercept is not penalized).
type Ridge struct {
	// Alpha is the L2 penalty; 0 gives ordinary least squares.
	Alpha float64 `json:"alpha"`
	// Weights is outputs x features; Intercept is per-output.
	Weights   [][]float64 `json:"weights"`
	Intercept []float64   `json:"intercept"`
}

var _ ml.Regressor = (*Ridge)(nil)

// New returns an unfitted ridge model with the given penalty.
func New(alpha float64) *Ridge { return &Ridge{Alpha: alpha} }

// Name implements ml.Regressor.
func (r *Ridge) Name() string { return "linear" }

// Fit solves the normal equations (X'X + alpha I) W = X'Y on centered
// data, then recovers the intercept from the feature and target means.
// Centering first means the penalty never shrinks the intercept.
func (r *Ridge) Fit(X, Y [][]float64) error {
	features, outputs, err := ml.CheckFitShapes(X, Y)
	if err != nil {
		return err
	}
	if r.Alpha < 0 {
		return fmt.Errorf("linear: negative alpha %v", r.Alpha)
	}
	n := len(X)

	xMean := make([]float64, features)
	for _, row := range X {
		for j, v := range row {
			xMean[j] += v
		}
	}
	for j := range xMean {
		xMean[j] /= float64(n)
	}
	yMean := make([]float64, outputs)
	for _, row := range Y {
		for j, v := range row {
			yMean[j] += v
		}
	}
	for j := range yMean {
		yMean[j] /= float64(n)
	}

	// Gram matrix A = Xc' Xc + alpha I (features x features), and
	// B = Xc' Yc (features x outputs), on centered data.
	A := make([][]float64, features)
	for i := range A {
		A[i] = make([]float64, features)
	}
	B := make([][]float64, features)
	for i := range B {
		B[i] = make([]float64, outputs)
	}
	xc := make([]float64, features)
	for s := 0; s < n; s++ {
		for j := 0; j < features; j++ {
			xc[j] = X[s][j] - xMean[j]
		}
		for i := 0; i < features; i++ {
			xi := xc[i]
			if xi == 0 {
				continue
			}
			row := A[i]
			for j := i; j < features; j++ {
				row[j] += xi * xc[j]
			}
			bi := B[i]
			for k := 0; k < outputs; k++ {
				bi[k] += xi * (Y[s][k] - yMean[k])
			}
		}
	}
	for i := 0; i < features; i++ {
		for j := 0; j < i; j++ {
			A[i][j] = A[j][i]
		}
		A[i][i] += r.Alpha
	}

	L, err := cholesky(A)
	if err != nil {
		// The Gram matrix can be singular for alpha = 0 with collinear
		// features; retry with a tiny jitter, as scikit-learn's LAPACK
		// path effectively does via least-squares.
		for i := 0; i < features; i++ {
			A[i][i] += 1e-8 * (1 + math.Abs(A[i][i]))
		}
		L, err = cholesky(A)
		if err != nil {
			return fmt.Errorf("linear: normal equations not solvable: %w", err)
		}
	}

	// Solve per output column; store W as outputs x features.
	r.Weights = make([][]float64, outputs)
	col := make([]float64, features)
	for k := 0; k < outputs; k++ {
		for i := 0; i < features; i++ {
			col[i] = B[i][k]
		}
		w := choleskySolve(L, col)
		r.Weights[k] = w
	}
	r.Intercept = make([]float64, outputs)
	for k := 0; k < outputs; k++ {
		b := yMean[k]
		for j := 0; j < features; j++ {
			b -= r.Weights[k][j] * xMean[j]
		}
		r.Intercept[k] = b
	}
	return nil
}

// Predict implements ml.Regressor.
func (r *Ridge) Predict(x []float64) []float64 {
	if r.Weights == nil {
		panic("linear: Predict before Fit")
	}
	out := make([]float64, len(r.Weights))
	for k, w := range r.Weights {
		v := r.Intercept[k]
		for j, wj := range w {
			v += wj * x[j]
		}
		out[k] = v
	}
	return out
}

// cholesky computes the lower-triangular factor L with A = L L'. It
// errors if A is not positive definite.
func cholesky(A [][]float64) ([][]float64, error) {
	n := len(A)
	L := make([][]float64, n)
	for i := range L {
		L[i] = make([]float64, n)
	}
	for i := 0; i < n; i++ {
		for j := 0; j <= i; j++ {
			sum := A[i][j]
			for k := 0; k < j; k++ {
				sum -= L[i][k] * L[j][k]
			}
			if i == j {
				if sum <= 0 {
					return nil, fmt.Errorf("matrix not positive definite at pivot %d (%v)", i, sum)
				}
				L[i][i] = math.Sqrt(sum)
			} else {
				L[i][j] = sum / L[j][j]
			}
		}
	}
	return L, nil
}

// choleskySolve solves A w = b given the factor L (forward then backward
// substitution).
func choleskySolve(L [][]float64, b []float64) []float64 {
	n := len(L)
	y := make([]float64, n)
	for i := 0; i < n; i++ {
		sum := b[i]
		for k := 0; k < i; k++ {
			sum -= L[i][k] * y[k]
		}
		y[i] = sum / L[i][i]
	}
	w := make([]float64, n)
	for i := n - 1; i >= 0; i-- {
		sum := y[i]
		for k := i + 1; k < n; k++ {
			sum -= L[k][i] * w[k]
		}
		w[i] = sum / L[i][i]
	}
	return w
}
