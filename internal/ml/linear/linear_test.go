package linear

import (
	"bytes"
	"math"
	"testing"
	"testing/quick"

	"crossarch/internal/ml"
	"crossarch/internal/stats"
)

func TestRecoversExactLinearRelation(t *testing.T) {
	rng := stats.NewRNG(1)
	n := 200
	X := make([][]float64, n)
	Y := make([][]float64, n)
	// y0 = 3*x0 - 2*x1 + 5 ; y1 = -x0 + 0.5*x1 - 1
	for i := range X {
		x0, x1 := rng.Normal(0, 1), rng.Normal(0, 1)
		X[i] = []float64{x0, x1}
		Y[i] = []float64{3*x0 - 2*x1 + 5, -x0 + 0.5*x1 - 1}
	}
	m := New(0)
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	wantW := [][]float64{{3, -2}, {-1, 0.5}}
	wantB := []float64{5, -1}
	for k := range wantW {
		for j := range wantW[k] {
			if math.Abs(m.Weights[k][j]-wantW[k][j]) > 1e-8 {
				t.Errorf("W[%d][%d] = %v, want %v", k, j, m.Weights[k][j], wantW[k][j])
			}
		}
		if math.Abs(m.Intercept[k]-wantB[k]) > 1e-8 {
			t.Errorf("b[%d] = %v, want %v", k, m.Intercept[k], wantB[k])
		}
	}
	pred := m.Predict([]float64{1, 1})
	if math.Abs(pred[0]-6) > 1e-8 || math.Abs(pred[1]+1.5) > 1e-8 {
		t.Errorf("Predict = %v", pred)
	}
}

func TestRidgeShrinksWeights(t *testing.T) {
	rng := stats.NewRNG(2)
	n := 100
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		x := rng.Normal(0, 1)
		X[i] = []float64{x}
		Y[i] = []float64{2 * x}
	}
	ols := New(0)
	ridge := New(100)
	if err := ols.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	if err := ridge.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	if math.Abs(ridge.Weights[0][0]) >= math.Abs(ols.Weights[0][0]) {
		t.Errorf("ridge weight %v not shrunk vs OLS %v", ridge.Weights[0][0], ols.Weights[0][0])
	}
	if math.Abs(ols.Weights[0][0]-2) > 1e-8 {
		t.Errorf("OLS weight = %v, want 2", ols.Weights[0][0])
	}
}

func TestCollinearFeaturesStillSolve(t *testing.T) {
	// x1 = 2*x0 exactly: the Gram matrix is singular for alpha = 0; the
	// jitter fallback must still produce a usable fit.
	rng := stats.NewRNG(3)
	n := 80
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		x := rng.Normal(0, 1)
		X[i] = []float64{x, 2 * x}
		Y[i] = []float64{3 * x}
	}
	m := New(0)
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	pred := ml.PredictBatch(m, X)
	if mae := ml.MAE(pred, Y); mae > 1e-3 {
		t.Errorf("collinear fit MAE = %v", mae)
	}
}

func TestNegativeAlphaRejected(t *testing.T) {
	m := New(-1)
	if err := m.Fit([][]float64{{1}, {2}}, [][]float64{{1}, {2}}); err == nil {
		t.Error("negative alpha should error")
	}
}

func TestPredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic before fit")
		}
	}()
	New(0).Predict([]float64{1})
}

func TestFitShapeErrors(t *testing.T) {
	if err := New(0).Fit(nil, nil); err == nil {
		t.Error("empty fit should error")
	}
}

func TestLinearPersistence(t *testing.T) {
	rng := stats.NewRNG(4)
	X := make([][]float64, 50)
	Y := make([][]float64, 50)
	for i := range X {
		x := rng.Normal(0, 1)
		X[i] = []float64{x}
		Y[i] = []float64{4*x + 1}
	}
	m := New(0)
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ml.SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ml.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for _, x := range X[:5] {
		a, b := m.Predict(x)[0], back.Predict(x)[0]
		if a != b {
			t.Fatalf("persisted prediction %v != %v", b, a)
		}
	}
}

// Property: OLS residuals are orthogonal to every feature column
// (the normal-equation optimality condition).
func TestResidualOrthogonalityProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 60
		X := make([][]float64, n)
		Y := make([][]float64, n)
		for i := range X {
			x0, x1 := rng.Normal(0, 1), rng.Normal(0, 2)
			X[i] = []float64{x0, x1}
			Y[i] = []float64{x0 - x1 + rng.Normal(0, 0.3)}
		}
		m := New(0)
		if err := m.Fit(X, Y); err != nil {
			return false
		}
		for j := 0; j < 2; j++ {
			dot := 0.0
			for i := range X {
				res := Y[i][0] - m.Predict(X[i])[0]
				dot += res * X[i][j]
			}
			if math.Abs(dot) > 1e-6*float64(n) {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSingleFeatureSingleSamplePlusOne(t *testing.T) {
	// Two points define a line exactly.
	X := [][]float64{{0}, {1}}
	Y := [][]float64{{1}, {3}}
	m := New(0)
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict([]float64{2})[0]; math.Abs(got-5) > 1e-9 {
		t.Errorf("extrapolation = %v, want 5", got)
	}
}
