package linear

import "crossarch/internal/ml"

func init() {
	ml.RegisterModel("linear", func() ml.Regressor { return New(0) })
}
