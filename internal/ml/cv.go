package ml

import (
	"fmt"

	"crossarch/internal/stats"
)

// Factory creates a fresh, unfitted regressor. Cross-validation needs a
// factory rather than a model because each fold trains from scratch.
type Factory func() Regressor

// CVResult summarizes a k-fold cross-validation: the per-fold
// evaluations and their averages, which is what the paper reports ("the
// model is trained on four out of the five folds at a time ... and the
// average MAE is reported").
type CVResult struct {
	Folds   []Evaluation
	MeanMAE float64
	MeanSOS float64
}

// CrossValidate performs k-fold cross-validation of the factory's model
// over (X, Y). Rows are shuffled with rng. It returns an error if k is
// out of range or any fold fails to train.
func CrossValidate(f Factory, X, Y [][]float64, k int, rng *stats.RNG) (CVResult, error) {
	if _, _, err := CheckFitShapes(X, Y); err != nil {
		return CVResult{}, err
	}
	n := len(X)
	if k < 2 || k > n {
		return CVResult{}, fmt.Errorf("ml: k=%d invalid for %d samples", k, n)
	}
	perm := rng.Perm(n)
	base, rem := n/k, n%k
	var res CVResult
	start := 0
	for fold := 0; fold < k; fold++ {
		size := base
		if fold < rem {
			size++
		}
		valIdx := perm[start : start+size]
		trainIdx := make([]int, 0, n-size)
		trainIdx = append(trainIdx, perm[:start]...)
		trainIdx = append(trainIdx, perm[start+size:]...)
		start += size

		model := f()
		if err := model.Fit(Take(X, trainIdx), Take(Y, trainIdx)); err != nil {
			return CVResult{}, fmt.Errorf("ml: fold %d: %w", fold, err)
		}
		ev := Evaluate(model, Take(X, valIdx), Take(Y, valIdx))
		res.Folds = append(res.Folds, ev)
		res.MeanMAE += ev.MAE
		res.MeanSOS += ev.SOS
	}
	res.MeanMAE /= float64(k)
	res.MeanSOS /= float64(k)
	return res, nil
}

// TrainTestSplit shuffles and partitions paired matrices; testFrac in
// (0, 1). The returned slices share row storage with the inputs.
func TrainTestSplit(X, Y [][]float64, testFrac float64, rng *stats.RNG) (trainX, trainY, testX, testY [][]float64, err error) {
	if _, _, err := CheckFitShapes(X, Y); err != nil {
		return nil, nil, nil, nil, err
	}
	if testFrac <= 0 || testFrac >= 1 {
		return nil, nil, nil, nil, fmt.Errorf("ml: testFrac %v outside (0,1)", testFrac)
	}
	n := len(X)
	perm := rng.Perm(n)
	nTest := int(float64(n) * testFrac)
	if nTest == 0 {
		nTest = 1
	}
	if nTest >= n {
		nTest = n - 1
	}
	testIdx, trainIdx := perm[:nTest], perm[nTest:]
	return Take(X, trainIdx), Take(Y, trainIdx), Take(X, testIdx), Take(Y, testIdx), nil
}
