package tree

import (
	"fmt"
	"sort"

	"crossarch/internal/floats"
)

// MaxBins is the histogram resolution of the hist tree method (the
// xgboost default of 256 bins).
const MaxBins = 256

// BinnedMatrix is a quantile-binned view of a feature matrix, computed
// once per training run and shared by every tree (the xgboost "hist"
// tree method). Bin b of feature f covers values in
// [Edges[f][b-1], Edges[f][b]); candidate split thresholds are the
// edges themselves, so trained trees predict on raw float vectors.
type BinnedMatrix struct {
	// Bins is column-major: Bins[f][i] is the bin index of sample i's
	// feature f. Column-major layout makes the per-feature histogram
	// accumulation, the hot loop of hist training, a sequential scan.
	Bins [][]uint8
	// Edges[f] are the ascending cut points of feature f; a feature
	// with fewer distinct values than MaxBins gets one cut between each
	// pair of consecutive distinct values.
	Edges [][]float64
	// NumBins[f] = len(Edges[f]) + 1.
	NumBins []int
	// Samples is the number of rows binned.
	Samples int
}

// NewBinnedMatrix quantile-bins X. It panics on an empty or ragged
// matrix (callers validate shapes first).
func NewBinnedMatrix(X [][]float64) *BinnedMatrix {
	n := len(X)
	features := len(X[0])
	bm := &BinnedMatrix{
		Bins:    make([][]uint8, features),
		Edges:   make([][]float64, features),
		NumBins: make([]int, features),
		Samples: n,
	}
	flat := make([]uint8, n*features)
	col := make([]float64, n)
	for f := 0; f < features; f++ {
		for i := range X {
			col[i] = X[i][f]
		}
		bm.Edges[f] = quantileEdges(col, MaxBins)
		bm.NumBins[f] = len(bm.Edges[f]) + 1
		bm.Bins[f] = flat[f*n : (f+1)*n]
		for i := 0; i < n; i++ {
			bm.Bins[f][i] = binOf(col[i], bm.Edges[f])
		}
	}
	return bm
}

// quantileEdges returns up to maxBins-1 ascending cut points placed at
// quantiles of the distinct values, each cut midway between two
// adjacent distinct values so binning is exact for the training data.
func quantileEdges(col []float64, maxBins int) []float64 {
	sorted := append([]float64(nil), col...)
	sort.Float64s(sorted)
	// Distinct values.
	distinct := sorted[:0]
	for i, v := range sorted {
		if i == 0 || !floats.Eq(v, distinct[len(distinct)-1]) {
			distinct = append(distinct, v)
		}
	}
	if len(distinct) <= 1 {
		return nil
	}
	nCuts := len(distinct) - 1
	if nCuts > maxBins-1 {
		nCuts = maxBins - 1
	}
	edges := make([]float64, 0, nCuts)
	for c := 1; c <= nCuts; c++ {
		// Position between distinct values at the c-th quantile.
		pos := float64(c) * float64(len(distinct)-1) / float64(nCuts+1)
		lo := int(pos)
		hi := lo + 1
		if hi >= len(distinct) {
			hi = len(distinct) - 1
			lo = hi - 1
		}
		cut := (distinct[lo] + distinct[hi]) / 2
		if len(edges) == 0 || cut > edges[len(edges)-1] {
			edges = append(edges, cut)
		}
	}
	return edges
}

// binOf returns the bin index of x: the number of edges <= x.
func binOf(x float64, edges []float64) uint8 {
	// Binary search: first edge > x.
	lo, hi := 0, len(edges)
	for lo < hi {
		mid := (lo + hi) / 2
		if x < edges[mid] {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return uint8(lo)
}

// BuildNewtonHist grows a Newton tree like BuildNewton but finds splits
// by scanning per-feature gradient histograms over the binned matrix,
// which is O(samples x features) per tree level instead of
// O(samples log samples x features) per node. Predictions use the raw
// feature values against edge thresholds, so a hist-trained tree is a
// plain *Tree.
func BuildNewtonHist(bm *BinnedMatrix, grad, hess []float64, idx []int, p NewtonParams) (*Tree, error) {
	if bm == nil || bm.Samples == 0 {
		return nil, fmt.Errorf("tree: empty binned matrix")
	}
	if len(grad) != bm.Samples || len(hess) != bm.Samples {
		return nil, fmt.Errorf("tree: grad/hess length mismatch with binned matrix")
	}
	if p.MaxDepth < 0 {
		return nil, fmt.Errorf("tree: negative MaxDepth %d", p.MaxDepth)
	}
	if p.MinSamplesLeaf < 1 {
		p.MinSamplesLeaf = 1
	}
	if idx == nil {
		idx = make([]int, bm.Samples)
		for i := range idx {
			idx[i] = i
		}
	}
	if len(idx) == 0 {
		return nil, fmt.Errorf("tree: empty training index set")
	}
	features := len(bm.NumBins)
	if p.MaxFeatures <= 0 || p.MaxFeatures > features {
		p.MaxFeatures = features
	}
	if p.MaxFeatures < features && p.RNG == nil {
		return nil, fmt.Errorf("tree: column subsampling requires an RNG")
	}

	b := newBuilder(1)
	g := &histGrower{bm: bm, grad: grad, hess: hess, p: p, b: b, features: features}
	g.grow(append([]int(nil), idx...), 0)
	t := b.t
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

type histGrower struct {
	bm         *BinnedMatrix
	grad, hess []float64
	p          NewtonParams
	b          *builder
	features   int
}

func (g *histGrower) sums(idx []int) (G, H float64) {
	for _, i := range idx {
		G += g.grad[i]
		H += g.hess[i]
	}
	return G, H
}

func (g *histGrower) score(G, H float64) float64 { return G * G / (H + g.p.Lambda) }

func (g *histGrower) candidateFeatures() []int {
	if g.p.MaxFeatures >= g.features {
		all := make([]int, g.features)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return g.p.RNG.SampleWithoutReplacement(g.features, g.p.MaxFeatures)
}

type histSplit struct {
	feature   int
	bin       int // split after this bin: bins <= bin go left
	threshold float64
	gain      float64
}

func (g *histGrower) bestSplit(idx []int, Gtot, Htot float64) *histSplit {
	parent := g.score(Gtot, Htot)
	candidates := g.candidateFeatures()
	var best *histSplit

	// Per-feature histograms of gradient, hessian, and count.
	var gh [MaxBins]float64
	var hh [MaxBins]float64
	var ch [MaxBins]int
	for _, f := range candidates {
		nb := g.bm.NumBins[f]
		if nb < 2 {
			continue
		}
		for b := 0; b < nb; b++ {
			gh[b], hh[b], ch[b] = 0, 0, 0
		}
		for _, i := range idx {
			b := g.bm.Bins[f][i]
			gh[b] += g.grad[i]
			hh[b] += g.hess[i]
			ch[b]++
		}
		var GL, HL float64
		var CL int
		for b := 0; b < nb-1; b++ {
			GL += gh[b]
			HL += hh[b]
			CL += ch[b]
			CR := len(idx) - CL
			if CL < g.p.MinSamplesLeaf || CR < g.p.MinSamplesLeaf {
				continue
			}
			GR, HR := Gtot-GL, Htot-HL
			if HL < g.p.MinChildWeight || HR < g.p.MinChildWeight {
				continue
			}
			gain := 0.5*(g.score(GL, HL)+g.score(GR, HR)-parent) - g.p.Gamma
			if gain <= 1e-12 {
				continue
			}
			if best == nil || gain > best.gain {
				if best == nil {
					best = &histSplit{}
				}
				best.feature = f
				best.bin = b
				best.threshold = g.bm.Edges[f][b]
				best.gain = gain
			}
		}
	}
	return best
}

func (g *histGrower) grow(idx []int, depth int) int {
	G, H := g.sums(idx)
	leaf := func() int {
		return g.b.addLeaf([]float64{-G / (H + g.p.Lambda)}, len(idx))
	}
	if depth >= g.p.MaxDepth {
		return leaf()
	}
	split := g.bestSplit(idx, G, H)
	if split == nil {
		return leaf()
	}
	var left, right []int
	for _, i := range idx {
		if int(g.bm.Bins[split.feature][i]) <= split.bin {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return leaf()
	}
	node := g.b.addSplit(split.feature, split.threshold, split.gain, len(idx))
	g.b.t.Left[node] = g.grow(left, depth+1)
	g.b.t.Right[node] = g.grow(right, depth+1)
	return node
}
