package tree

import (
	"math"
	"testing"
	"testing/quick"

	"crossarch/internal/stats"
)

func TestNodeValuesWeighting(t *testing.T) {
	// Hand-built tree: root splits feature 0 at 0.5; left leaf value 0
	// covering 30 samples, right leaf value 10 covering 10 samples.
	tr := &Tree{
		Feature:   []int{0, LeafMarker, LeafMarker},
		Threshold: []float64{0.5, 0, 0},
		Left:      []int{1, -1, -1},
		Right:     []int{2, -1, -1},
		Value:     [][]float64{nil, {0}, {10}},
		Gain:      []float64{5, 0, 0},
		Cover:     []int{40, 30, 10},
		Outputs:   1,
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	values := tr.NodeValues()
	// Root expectation: (0*30 + 10*10)/40 = 2.5.
	if got := values[0][0]; math.Abs(got-2.5) > 1e-12 {
		t.Errorf("root value = %v, want 2.5", got)
	}
}

func TestContributionsHandBuilt(t *testing.T) {
	tr := &Tree{
		Feature:   []int{0, LeafMarker, LeafMarker},
		Threshold: []float64{0.5, 0, 0},
		Left:      []int{1, -1, -1},
		Right:     []int{2, -1, -1},
		Value:     [][]float64{nil, {0}, {10}},
		Gain:      []float64{5, 0, 0},
		Cover:     []int{40, 30, 10},
		Outputs:   1,
	}
	bias, contrib, err := tr.Contributions([]float64{0.9}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(bias[0]-2.5) > 1e-12 {
		t.Errorf("bias = %v", bias[0])
	}
	// Right leaf: contribution of feature 0 = 10 - 2.5 = 7.5.
	if math.Abs(contrib[0][0]-7.5) > 1e-12 {
		t.Errorf("contrib[0] = %v, want 7.5", contrib[0][0])
	}
	if contrib[1][0] != 0 {
		t.Errorf("unused feature contributed %v", contrib[1][0])
	}
	// Bias + contributions == prediction.
	if got := bias[0] + contrib[0][0] + contrib[1][0]; math.Abs(got-10) > 1e-12 {
		t.Errorf("reconstruction = %v, want 10", got)
	}
}

// Property: for trained CART trees, bias + contributions reconstruct
// the prediction exactly for arbitrary inputs.
func TestContributionsReconstructProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 60 + rng.Intn(100)
		X := make([][]float64, n)
		Y := make([][]float64, n)
		for i := range X {
			X[i] = []float64{rng.Normal(0, 1), rng.Normal(0, 1), rng.Normal(0, 1)}
			Y[i] = []float64{X[i][0] + 2*X[i][1] + rng.Normal(0, 0.2), X[i][2]}
		}
		tr, err := BuildCART(X, Y, nil, CARTParams{MaxDepth: 4, MinSamplesLeaf: 2})
		if err != nil {
			return false
		}
		for trial := 0; trial < 10; trial++ {
			x := []float64{rng.Normal(0, 2), rng.Normal(0, 2), rng.Normal(0, 2)}
			pred := tr.Predict(x)
			bias, contrib, err := tr.Contributions(x, 3)
			if err != nil {
				return false
			}
			for k := range pred {
				sum := bias[k]
				for f := range contrib {
					sum += contrib[f][k]
				}
				if math.Abs(sum-pred[k]) > 1e-9 {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

func TestContributionsErrors(t *testing.T) {
	empty := &Tree{}
	if _, _, err := empty.Contributions([]float64{1}, 1); err == nil {
		t.Error("empty tree should error")
	}
	tr, err := BuildCART([][]float64{{0}, {1}}, [][]float64{{0}, {1}}, nil, CARTParams{MaxDepth: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() > 1 {
		if _, _, err := tr.Contributions([]float64{0}, 0); err == nil {
			t.Error("undersized feature table should error")
		}
	}
}

func TestCoverRecorded(t *testing.T) {
	rng := stats.NewRNG(5)
	n := 200
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64()}
		Y[i] = []float64{X[i][0]}
	}
	tr, err := BuildCART(X, Y, nil, CARTParams{MaxDepth: 3, MinSamplesLeaf: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Cover[0] != n {
		t.Errorf("root cover = %d, want %d", tr.Cover[0], n)
	}
	// Children covers partition the parent.
	for node, f := range tr.Feature {
		if f == LeafMarker {
			continue
		}
		if tr.Cover[tr.Left[node]]+tr.Cover[tr.Right[node]] != tr.Cover[node] {
			t.Fatalf("node %d cover %d != %d + %d", node, tr.Cover[node],
				tr.Cover[tr.Left[node]], tr.Cover[tr.Right[node]])
		}
	}
}
