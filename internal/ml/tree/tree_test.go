package tree

import (
	"encoding/json"
	"math"
	"testing"
	"testing/quick"

	"crossarch/internal/stats"
)

// makeStep returns a dataset where y = 1 if x0 >= 0.5 else 0, plus a
// second irrelevant feature.
func makeStep(n int, rng *stats.RNG) (X, Y [][]float64) {
	X = make([][]float64, n)
	Y = make([][]float64, n)
	for i := range X {
		x0 := rng.Float64()
		X[i] = []float64{x0, rng.Float64()}
		label := 0.0
		if x0 >= 0.5 {
			label = 1
		}
		Y[i] = []float64{label}
	}
	return X, Y
}

func TestCARTLearnsStepFunction(t *testing.T) {
	rng := stats.NewRNG(1)
	X, Y := makeStep(400, rng)
	tr, err := BuildCART(X, Y, nil, CARTParams{MaxDepth: 3, MinSamplesLeaf: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range X {
		pred := tr.Predict(x)[0]
		if math.Abs(pred-Y[i][0]) > 0.05 {
			t.Fatalf("step prediction at %v = %v, want %v", x, pred, Y[i][0])
		}
	}
	// The first split must be on the informative feature near 0.5.
	if tr.Feature[0] != 0 {
		t.Errorf("root split on feature %d, want 0", tr.Feature[0])
	}
	if math.Abs(tr.Threshold[0]-0.5) > 0.1 {
		t.Errorf("root threshold = %v, want ~0.5", tr.Threshold[0])
	}
}

func TestCARTMultiOutput(t *testing.T) {
	rng := stats.NewRNG(2)
	n := 300
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		x := rng.Float64()
		X[i] = []float64{x}
		// Two coupled outputs of the same split structure.
		if x < 0.3 {
			Y[i] = []float64{1, 10}
		} else {
			Y[i] = []float64{2, 20}
		}
	}
	tr, err := BuildCART(X, Y, nil, CARTParams{MaxDepth: 2, MinSamplesLeaf: 3})
	if err != nil {
		t.Fatal(err)
	}
	pred := tr.Predict([]float64{0.1})
	if math.Abs(pred[0]-1) > 0.05 || math.Abs(pred[1]-10) > 0.5 {
		t.Errorf("multi-output low prediction = %v", pred)
	}
	pred = tr.Predict([]float64{0.9})
	if math.Abs(pred[0]-2) > 0.05 || math.Abs(pred[1]-20) > 0.5 {
		t.Errorf("multi-output high prediction = %v", pred)
	}
}

func TestCARTDepthZeroIsMeanLeaf(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}}
	Y := [][]float64{{1}, {2}, {6}}
	tr, err := BuildCART(X, Y, nil, CARTParams{MaxDepth: 0})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 1 || tr.NumLeaves() != 1 {
		t.Fatalf("depth-0 tree has %d nodes", tr.NumNodes())
	}
	if got := tr.Predict([]float64{99})[0]; got != 3 {
		t.Errorf("mean leaf = %v, want 3", got)
	}
}

func TestCARTMinSamplesLeaf(t *testing.T) {
	rng := stats.NewRNG(3)
	X, Y := makeStep(100, rng)
	tr, err := BuildCART(X, Y, nil, CARTParams{MaxDepth: 10, MinSamplesLeaf: 40})
	if err != nil {
		t.Fatal(err)
	}
	// With min leaf 40 of 100 samples, at most 2 leaves are possible.
	if tr.NumLeaves() > 2 {
		t.Errorf("leaves = %d, want <= 2", tr.NumLeaves())
	}
}

func TestCARTConstantLabelsNoSplit(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	Y := [][]float64{{5}, {5}, {5}, {5}}
	tr, err := BuildCART(X, Y, nil, CARTParams{MaxDepth: 5})
	if err != nil {
		t.Fatal(err)
	}
	if tr.NumNodes() != 1 {
		t.Errorf("constant labels grew %d nodes", tr.NumNodes())
	}
}

func TestCARTErrors(t *testing.T) {
	X := [][]float64{{1, 2}}
	Y := [][]float64{{1}}
	if _, err := BuildCART(nil, nil, nil, CARTParams{MaxDepth: 1}); err == nil {
		t.Error("empty X should error")
	}
	if _, err := BuildCART(X, nil, nil, CARTParams{MaxDepth: 1}); err == nil {
		t.Error("mismatched Y should error")
	}
	if _, err := BuildCART(X, Y, []int{}, CARTParams{MaxDepth: 1}); err == nil {
		t.Error("empty idx should error")
	}
	if _, err := BuildCART(X, Y, nil, CARTParams{MaxDepth: -1}); err == nil {
		t.Error("negative depth should error")
	}
	if _, err := BuildCART(X, Y, nil, CARTParams{MaxDepth: 1, MaxFeatures: 1}); err == nil {
		t.Error("subsampling without RNG should error")
	}
}

func TestCARTFeatureSubsampling(t *testing.T) {
	rng := stats.NewRNG(4)
	X, Y := makeStep(200, rng)
	tr, err := BuildCART(X, Y, nil, CARTParams{
		MaxDepth: 4, MinSamplesLeaf: 2, MaxFeatures: 1, RNG: stats.NewRNG(9),
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestCARTWithIndexSubset(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	Y := [][]float64{{0}, {0}, {100}, {100}}
	// Train only on rows 0 and 1: should be a constant-0 leaf.
	tr, err := BuildCART(X, Y, []int{0, 1}, CARTParams{MaxDepth: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.Predict([]float64{3})[0]; got != 0 {
		t.Errorf("subset-trained prediction = %v, want 0", got)
	}
}

func TestNewtonLeafWeightMatchesClosedForm(t *testing.T) {
	// With squared loss, grad = pred0 - y = -y (pred0 = 0), hess = 1.
	// A single leaf over all samples gets w = sum(y)/(n + lambda).
	X := [][]float64{{1}, {1}, {1}, {1}}
	ys := []float64{2, 4, 6, 8}
	grad := make([]float64, len(ys))
	hess := make([]float64, len(ys))
	for i, y := range ys {
		grad[i] = -y
		hess[i] = 1
	}
	lambda := 1.0
	tr, err := BuildNewton(X, grad, hess, nil, NewtonParams{MaxDepth: 3, Lambda: lambda})
	if err != nil {
		t.Fatal(err)
	}
	// All features identical: no split possible, single leaf.
	if tr.NumNodes() != 1 {
		t.Fatalf("nodes = %d, want 1", tr.NumNodes())
	}
	want := 20.0 / (4 + lambda)
	if got := tr.Predict([]float64{1})[0]; math.Abs(got-want) > 1e-12 {
		t.Errorf("leaf weight = %v, want %v", got, want)
	}
}

func TestNewtonFindsInformativeSplit(t *testing.T) {
	rng := stats.NewRNG(5)
	n := 500
	X := make([][]float64, n)
	grad := make([]float64, n)
	hess := make([]float64, n)
	for i := range X {
		x := rng.Float64()
		X[i] = []float64{x, rng.Float64()}
		y := 0.0
		if x >= 0.5 {
			y = 4
		}
		grad[i] = -y // squared loss at pred = 0
		hess[i] = 1
	}
	tr, err := BuildNewton(X, grad, hess, nil, NewtonParams{MaxDepth: 1, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	if tr.Feature[0] != 0 {
		t.Fatalf("root split feature = %d, want 0", tr.Feature[0])
	}
	lo := tr.Predict([]float64{0.1, 0.5})[0]
	hi := tr.Predict([]float64{0.9, 0.5})[0]
	if lo > 0.2 || hi < 3.5 {
		t.Errorf("newton leaves = %v / %v, want ~0 / ~4", lo, hi)
	}
}

func TestNewtonGammaPrunes(t *testing.T) {
	rng := stats.NewRNG(6)
	n := 200
	X := make([][]float64, n)
	grad := make([]float64, n)
	hess := make([]float64, n)
	for i := range X {
		x := rng.Float64()
		X[i] = []float64{x}
		// Weak signal: tiny difference across the split.
		y := 0.01 * x
		grad[i] = -y
		hess[i] = 1
	}
	free, err := BuildNewton(X, grad, hess, nil, NewtonParams{MaxDepth: 4, Lambda: 1})
	if err != nil {
		t.Fatal(err)
	}
	pruned, err := BuildNewton(X, grad, hess, nil, NewtonParams{MaxDepth: 4, Lambda: 1, Gamma: 100})
	if err != nil {
		t.Fatal(err)
	}
	if pruned.NumNodes() >= free.NumNodes() {
		t.Errorf("gamma=100 nodes %d, gamma=0 nodes %d; expected pruning",
			pruned.NumNodes(), free.NumNodes())
	}
	if pruned.NumNodes() != 1 {
		t.Errorf("huge gamma should force a single leaf, got %d nodes", pruned.NumNodes())
	}
}

func TestNewtonMinChildWeight(t *testing.T) {
	X := [][]float64{{0}, {1}, {2}, {3}}
	grad := []float64{-1, -1, -10, -10}
	hess := []float64{1, 1, 1, 1}
	tr, err := BuildNewton(X, grad, hess, nil, NewtonParams{MaxDepth: 3, Lambda: 0, MinChildWeight: 3})
	if err != nil {
		t.Fatal(err)
	}
	// Each child needs hessian sum >= 3, impossible with 4 unit-hessian
	// samples split 2/2? 2 < 3, so no split is admissible.
	if tr.NumNodes() != 1 {
		t.Errorf("MinChildWeight violated: %d nodes", tr.NumNodes())
	}
}

func TestNewtonErrors(t *testing.T) {
	X := [][]float64{{1}}
	if _, err := BuildNewton(nil, nil, nil, nil, NewtonParams{MaxDepth: 1}); err == nil {
		t.Error("empty X should error")
	}
	if _, err := BuildNewton(X, []float64{1, 2}, []float64{1}, nil, NewtonParams{MaxDepth: 1}); err == nil {
		t.Error("grad length mismatch should error")
	}
	if _, err := BuildNewton(X, []float64{1}, []float64{1}, nil, NewtonParams{MaxDepth: -2}); err == nil {
		t.Error("negative depth should error")
	}
}

func TestTreeJSONRoundTrip(t *testing.T) {
	rng := stats.NewRNG(7)
	X, Y := makeStep(100, rng)
	tr, err := BuildCART(X, Y, nil, CARTParams{MaxDepth: 3, MinSamplesLeaf: 2})
	if err != nil {
		t.Fatal(err)
	}
	data, err := json.Marshal(tr)
	if err != nil {
		t.Fatal(err)
	}
	var back Tree
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if err := back.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, x := range X {
		if a, b := tr.Predict(x)[0], back.Predict(x)[0]; a != b {
			t.Fatalf("round-trip prediction mismatch: %v vs %v", a, b)
		}
	}
}

func TestValidateCatchesCorruption(t *testing.T) {
	rng := stats.NewRNG(8)
	X, Y := makeStep(50, rng)
	tr, _ := BuildCART(X, Y, nil, CARTParams{MaxDepth: 2, MinSamplesLeaf: 2})
	if tr.NumNodes() < 3 {
		t.Skip("tree too small to corrupt")
	}
	// Introduce a cycle.
	bad := *tr
	bad.Left = append([]int(nil), tr.Left...)
	bad.Left[0] = 0
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted a cyclic tree")
	}
	// Out-of-range child.
	bad.Left[0] = 999
	if err := bad.Validate(); err == nil {
		t.Error("Validate accepted out-of-range child")
	}
}

func TestDepthAndLeaves(t *testing.T) {
	rng := stats.NewRNG(9)
	X, Y := makeStep(200, rng)
	tr, err := BuildCART(X, Y, nil, CARTParams{MaxDepth: 3, MinSamplesLeaf: 1})
	if err != nil {
		t.Fatal(err)
	}
	if d := tr.Depth(); d > 3 {
		t.Errorf("Depth = %d exceeds MaxDepth 3", d)
	}
	if tr.NumLeaves() > 8 {
		t.Errorf("leaves = %d exceeds 2^3", tr.NumLeaves())
	}
	if tr.NumLeaves()+tr.NumLeaves()-1 < tr.NumNodes() {
		t.Errorf("binary tree identity violated: %d leaves, %d nodes", tr.NumLeaves(), tr.NumNodes())
	}
}

func TestGainByFeature(t *testing.T) {
	rng := stats.NewRNG(10)
	X, Y := makeStep(300, rng)
	tr, err := BuildCART(X, Y, nil, CARTParams{MaxDepth: 4, MinSamplesLeaf: 5})
	if err != nil {
		t.Fatal(err)
	}
	gain := make([]float64, 2)
	splits := make([]int, 2)
	tr.GainByFeature(gain, splits)
	// Feature 0 carries the signal: it must dominate total gain.
	if gain[0] <= gain[1] {
		t.Errorf("gain = %v, expected feature 0 to dominate", gain)
	}
	if splits[0] == 0 {
		t.Error("informative feature never split")
	}
}

// Property: CART predictions are always within [min(Y), max(Y)] because
// leaves are means of subsets.
func TestCARTPredictionBoundsProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 30 + rng.Intn(70)
		X := make([][]float64, n)
		Y := make([][]float64, n)
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range X {
			X[i] = []float64{rng.Normal(0, 1), rng.Normal(0, 1)}
			y := rng.Normal(0, 5)
			Y[i] = []float64{y}
			if y < lo {
				lo = y
			}
			if y > hi {
				hi = y
			}
		}
		tr, err := BuildCART(X, Y, nil, CARTParams{MaxDepth: 4, MinSamplesLeaf: 1})
		if err != nil {
			return false
		}
		for i := 0; i < 20; i++ {
			p := tr.Predict([]float64{rng.Normal(0, 3), rng.Normal(0, 3)})[0]
			if p < lo-1e-9 || p > hi+1e-9 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

// Property: shifting all labels by a constant shifts CART predictions by
// the same constant (split structure is shift-invariant).
func TestCARTShiftInvarianceProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, shiftRaw int8) bool {
		rng := stats.NewRNG(seed)
		shift := float64(shiftRaw)
		n := 50
		X := make([][]float64, n)
		Y := make([][]float64, n)
		Y2 := make([][]float64, n)
		for i := range X {
			X[i] = []float64{rng.Float64()}
			y := rng.Normal(0, 2)
			Y[i] = []float64{y}
			Y2[i] = []float64{y + shift}
		}
		p := CARTParams{MaxDepth: 3, MinSamplesLeaf: 2}
		t1, err1 := BuildCART(X, Y, nil, p)
		t2, err2 := BuildCART(X, Y2, nil, p)
		if err1 != nil || err2 != nil {
			return false
		}
		for i := 0; i < 10; i++ {
			x := []float64{rng.Float64()}
			if math.Abs((t2.Predict(x)[0]-t1.Predict(x)[0])-shift) > 1e-6 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 20})
	if err != nil {
		t.Fatal(err)
	}
}

func BenchmarkBuildCART(b *testing.B) {
	rng := stats.NewRNG(1)
	X, Y := makeStep(2000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := BuildCART(X, Y, nil, CARTParams{MaxDepth: 6, MinSamplesLeaf: 5}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTreePredict(b *testing.B) {
	rng := stats.NewRNG(1)
	X, Y := makeStep(2000, rng)
	tr, err := BuildCART(X, Y, nil, CARTParams{MaxDepth: 6, MinSamplesLeaf: 5})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Predict(X[i%len(X)])
	}
}
