package tree

import (
	"fmt"

	"crossarch/internal/floats"
	"crossarch/internal/stats"
)

// CARTParams configures variance-reduction regression tree construction.
type CARTParams struct {
	// MaxDepth bounds the tree depth; 0 means depth 0 (a single leaf),
	// negative is invalid.
	MaxDepth int
	// MinSamplesLeaf is the smallest number of samples a leaf may hold.
	// Values below 1 are treated as 1.
	MinSamplesLeaf int
	// MinSamplesSplit is the smallest node size considered for further
	// splitting. Values below 2 are treated as 2.
	MinSamplesSplit int
	// MaxFeatures is the number of features examined per split (random
	// subspace, as in random forests). 0 or >= num features means all.
	MaxFeatures int
	// RNG drives feature subsampling. Required when MaxFeatures is
	// restrictive; may be nil otherwise.
	RNG *stats.RNG
}

func (p *CARTParams) normalize() {
	if p.MinSamplesLeaf < 1 {
		p.MinSamplesLeaf = 1
	}
	if p.MinSamplesSplit < 2 {
		p.MinSamplesSplit = 2
	}
}

// BuildCART grows a multi-output regression tree minimizing the summed
// per-output squared error. X is row-major (samples x features) and Y is
// samples x outputs. idx selects the training rows; pass nil for all.
func BuildCART(X, Y [][]float64, idx []int, p CARTParams) (*Tree, error) {
	if len(X) == 0 || len(Y) != len(X) {
		return nil, fmt.Errorf("tree: X has %d rows, Y has %d", len(X), len(Y))
	}
	if p.MaxDepth < 0 {
		return nil, fmt.Errorf("tree: negative MaxDepth %d", p.MaxDepth)
	}
	p.normalize()
	if idx == nil {
		idx = make([]int, len(X))
		for i := range idx {
			idx[i] = i
		}
	}
	if len(idx) == 0 {
		return nil, fmt.Errorf("tree: empty training index set")
	}
	outputs := len(Y[0])
	features := len(X[0])
	if p.MaxFeatures <= 0 || p.MaxFeatures > features {
		p.MaxFeatures = features
	}
	if p.MaxFeatures < features && p.RNG == nil {
		return nil, fmt.Errorf("tree: feature subsampling requires an RNG")
	}

	b := newBuilder(outputs)
	scratch := make([]int, 0, len(idx))
	g := &cartGrower{X: X, Y: Y, p: p, b: b, outputs: outputs, features: features, scratch: scratch}
	g.grow(append([]int(nil), idx...), 0)
	t := b.t
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

type cartGrower struct {
	X, Y     [][]float64
	p        CARTParams
	b        *builder
	outputs  int
	features int
	scratch  []int
}

// meanOf returns the per-output mean label of the index set.
func (g *cartGrower) meanOf(idx []int) []float64 {
	mean := make([]float64, g.outputs)
	for _, i := range idx {
		for k, y := range g.Y[i] {
			mean[k] += y
		}
	}
	inv := 1 / float64(len(idx))
	for k := range mean {
		mean[k] *= inv
	}
	return mean
}

// sse returns the total squared error of the index set around its mean,
// summed over outputs, computed from sufficient statistics:
// sum(y^2) - n*mean^2 per output.
func (g *cartGrower) sse(idx []int) float64 {
	sum := make([]float64, g.outputs)
	sumSq := make([]float64, g.outputs)
	for _, i := range idx {
		for k, y := range g.Y[i] {
			sum[k] += y
			sumSq[k] += y * y
		}
	}
	n := float64(len(idx))
	total := 0.0
	for k := range sum {
		total += sumSq[k] - sum[k]*sum[k]/n
	}
	return total
}

type cartSplit struct {
	feature   int
	threshold float64
	gain      float64
	leftIdx   []int
	rightIdx  []int
}

// bestSplit scans the candidate features for the split maximizing SSE
// reduction. It returns nil if no admissible split improves the node.
func (g *cartGrower) bestSplit(idx []int) *cartSplit {
	parentSSE := g.sse(idx)
	candidates := g.candidateFeatures()
	var best *cartSplit

	n := len(idx)
	sumL := make([]float64, g.outputs)
	sqL := make([]float64, g.outputs)
	sumT := make([]float64, g.outputs)
	sqT := make([]float64, g.outputs)
	for _, i := range idx {
		for k, y := range g.Y[i] {
			sumT[k] += y
			sqT[k] += y * y
		}
	}

	for _, f := range candidates {
		g.scratch = sortByFeature(g.X, idx, f, g.scratch)
		sorted := g.scratch
		for k := range sumL {
			sumL[k], sqL[k] = 0, 0
		}
		for cut := 1; cut < n; cut++ {
			i := sorted[cut-1]
			for k, y := range g.Y[i] {
				sumL[k] += y
				sqL[k] += y * y
			}
			// Can't split between equal feature values.
			if floats.Eq(g.X[sorted[cut]][f], g.X[sorted[cut-1]][f]) {
				continue
			}
			if cut < g.p.MinSamplesLeaf || n-cut < g.p.MinSamplesLeaf {
				continue
			}
			nl, nr := float64(cut), float64(n-cut)
			childSSE := 0.0
			for k := range sumL {
				sumR := sumT[k] - sumL[k]
				sqR := sqT[k] - sqL[k]
				childSSE += sqL[k] - sumL[k]*sumL[k]/nl
				childSSE += sqR - sumR*sumR/nr
			}
			gain := parentSSE - childSSE
			if gain <= 1e-12 {
				continue
			}
			if best == nil || gain > best.gain {
				threshold := (g.X[sorted[cut]][f] + g.X[sorted[cut-1]][f]) / 2
				if best == nil {
					best = &cartSplit{}
				}
				best.feature = f
				best.threshold = threshold
				best.gain = gain
				// Partition indices are materialized lazily below; record
				// the cut via threshold-based routing to stay consistent
				// with prediction-time comparisons.
			}
		}
	}
	if best == nil {
		return nil
	}
	for _, i := range idx {
		if g.X[i][best.feature] < best.threshold {
			best.leftIdx = append(best.leftIdx, i)
		} else {
			best.rightIdx = append(best.rightIdx, i)
		}
	}
	// Routing by threshold must agree with the scan's partition sizes; if
	// degenerate (all samples on one side), reject the split.
	if len(best.leftIdx) == 0 || len(best.rightIdx) == 0 {
		return nil
	}
	return best
}

// candidateFeatures returns the feature indices examined at this node.
func (g *cartGrower) candidateFeatures() []int {
	if g.p.MaxFeatures >= g.features {
		all := make([]int, g.features)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return g.p.RNG.SampleWithoutReplacement(g.features, g.p.MaxFeatures)
}

// grow recursively builds the subtree over idx and returns its root node
// index within the builder.
func (g *cartGrower) grow(idx []int, depth int) int {
	if depth >= g.p.MaxDepth || len(idx) < g.p.MinSamplesSplit {
		return g.b.addLeaf(g.meanOf(idx), len(idx))
	}
	split := g.bestSplit(idx)
	if split == nil {
		return g.b.addLeaf(g.meanOf(idx), len(idx))
	}
	node := g.b.addSplit(split.feature, split.threshold, split.gain, len(idx))
	g.b.t.Left[node] = g.grow(split.leftIdx, depth+1)
	g.b.t.Right[node] = g.grow(split.rightIdx, depth+1)
	return node
}
