package tree

import (
	"fmt"

	"crossarch/internal/floats"
	"crossarch/internal/stats"
)

// NewtonParams configures second-order (XGBoost-style) tree construction.
type NewtonParams struct {
	// MaxDepth bounds the tree depth.
	MaxDepth int
	// Lambda is the L2 regularization on leaf weights (xgboost's
	// reg_lambda; the paper's Omega term).
	Lambda float64
	// Gamma is the minimum loss reduction required to make a split
	// (xgboost's complexity pruning term).
	Gamma float64
	// MinChildWeight is the minimum hessian sum in each child.
	MinChildWeight float64
	// MinSamplesLeaf is the smallest number of samples per leaf (>= 1).
	MinSamplesLeaf int
	// MaxFeatures restricts the features examined per split (column
	// subsampling by node). 0 means all.
	MaxFeatures int
	// RNG drives column subsampling; required when MaxFeatures is
	// restrictive.
	RNG *stats.RNG
}

// BuildNewton grows a single-output regression tree from per-sample
// gradients and hessians using the exact greedy XGBoost split criterion:
//
//	gain = 1/2 * ( GL^2/(HL+lambda) + GR^2/(HR+lambda) - G^2/(H+lambda) ) - gamma
//
// and leaf weights w = -G/(H+lambda). The produced Tree has Outputs == 1
// (boosting fits one tree per target component per round).
func BuildNewton(X [][]float64, grad, hess []float64, idx []int, p NewtonParams) (*Tree, error) {
	if len(X) == 0 {
		return nil, fmt.Errorf("tree: empty feature matrix")
	}
	if len(grad) != len(X) || len(hess) != len(X) {
		return nil, fmt.Errorf("tree: grad/hess length %d/%d != %d rows", len(grad), len(hess), len(X))
	}
	if p.MaxDepth < 0 {
		return nil, fmt.Errorf("tree: negative MaxDepth %d", p.MaxDepth)
	}
	if p.MinSamplesLeaf < 1 {
		p.MinSamplesLeaf = 1
	}
	if idx == nil {
		idx = make([]int, len(X))
		for i := range idx {
			idx[i] = i
		}
	}
	if len(idx) == 0 {
		return nil, fmt.Errorf("tree: empty training index set")
	}
	features := len(X[0])
	if p.MaxFeatures <= 0 || p.MaxFeatures > features {
		p.MaxFeatures = features
	}
	if p.MaxFeatures < features && p.RNG == nil {
		return nil, fmt.Errorf("tree: column subsampling requires an RNG")
	}

	b := newBuilder(1)
	g := &newtonGrower{X: X, grad: grad, hess: hess, p: p, b: b, features: features,
		scratch: make([]int, 0, len(idx))}
	g.grow(append([]int(nil), idx...), 0)
	t := b.t
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

type newtonGrower struct {
	X          [][]float64
	grad, hess []float64
	p          NewtonParams
	b          *builder
	features   int
	scratch    []int
}

func (g *newtonGrower) sums(idx []int) (G, H float64) {
	for _, i := range idx {
		G += g.grad[i]
		H += g.hess[i]
	}
	return G, H
}

// score is the (negated, scaled) optimal structure score G^2/(H+lambda).
func (g *newtonGrower) score(G, H float64) float64 {
	return G * G / (H + g.p.Lambda)
}

func (g *newtonGrower) leafWeight(G, H float64) float64 {
	return -G / (H + g.p.Lambda)
}

type newtonSplit struct {
	feature   int
	threshold float64
	gain      float64
	leftIdx   []int
	rightIdx  []int
}

func (g *newtonGrower) bestSplit(idx []int) *newtonSplit {
	Gtot, Htot := g.sums(idx)
	parent := g.score(Gtot, Htot)
	var best *newtonSplit
	candidates := g.candidateFeatures()
	n := len(idx)

	for _, f := range candidates {
		g.scratch = sortByFeature(g.X, idx, f, g.scratch)
		sorted := g.scratch
		var GL, HL float64
		for cut := 1; cut < n; cut++ {
			i := sorted[cut-1]
			GL += g.grad[i]
			HL += g.hess[i]
			if floats.Eq(g.X[sorted[cut]][f], g.X[sorted[cut-1]][f]) {
				continue
			}
			if cut < g.p.MinSamplesLeaf || n-cut < g.p.MinSamplesLeaf {
				continue
			}
			GR, HR := Gtot-GL, Htot-HL
			if HL < g.p.MinChildWeight || HR < g.p.MinChildWeight {
				continue
			}
			gain := 0.5*(g.score(GL, HL)+g.score(GR, HR)-parent) - g.p.Gamma
			if gain <= 1e-12 {
				continue
			}
			if best == nil || gain > best.gain {
				if best == nil {
					best = &newtonSplit{}
				}
				best.feature = f
				best.threshold = (g.X[sorted[cut]][f] + g.X[sorted[cut-1]][f]) / 2
				best.gain = gain
			}
		}
	}
	if best == nil {
		return nil
	}
	for _, i := range idx {
		if g.X[i][best.feature] < best.threshold {
			best.leftIdx = append(best.leftIdx, i)
		} else {
			best.rightIdx = append(best.rightIdx, i)
		}
	}
	if len(best.leftIdx) == 0 || len(best.rightIdx) == 0 {
		return nil
	}
	return best
}

func (g *newtonGrower) candidateFeatures() []int {
	if g.p.MaxFeatures >= g.features {
		all := make([]int, g.features)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return g.p.RNG.SampleWithoutReplacement(g.features, g.p.MaxFeatures)
}

func (g *newtonGrower) grow(idx []int, depth int) int {
	G, H := g.sums(idx)
	if depth >= g.p.MaxDepth {
		return g.b.addLeaf([]float64{g.leafWeight(G, H)}, len(idx))
	}
	split := g.bestSplit(idx)
	if split == nil {
		return g.b.addLeaf([]float64{g.leafWeight(G, H)}, len(idx))
	}
	node := g.b.addSplit(split.feature, split.threshold, split.gain, len(idx))
	g.b.t.Left[node] = g.grow(split.leftIdx, depth+1)
	g.b.t.Right[node] = g.grow(split.rightIdx, depth+1)
	return node
}
