package tree

import (
	"crossarch/internal/ml"
)

// FlatTree is a struct-of-arrays compilation of a Tree built for
// batched prediction. Nodes are renumbered breadth-first so that the
// two children of every split are adjacent (right child = left child
// + 1), which lets traversal compute the next node as base+branch
// instead of loading two child pointers; leaf value vectors are
// concatenated into one contiguous array instead of one small
// allocation per leaf. The layout keeps a hot traversal's working set
// in three parallel arrays that prefetch well when thousands of rows
// walk the same tree.
//
// A FlatTree is immutable after Flatten and safe for concurrent use.
type FlatTree struct {
	// Feature[n] is the split feature of node n; negative marks a leaf.
	Feature []int32
	// Threshold[n] is the split threshold of node n (0 for leaves).
	Threshold []float64
	// Index[n] is the left-child node for splits (right child is
	// Index[n]+1) and the offset of the leaf's value vector in Values
	// for leaves.
	Index []int32
	// Values holds every leaf's output vector, concatenated in node
	// order; a leaf's vector is Values[Index[n] : Index[n]+Outputs].
	Values []float64
	// Outputs is the leaf vector width.
	Outputs int
}

// flatLeaf marks leaf nodes in FlatTree.Feature.
const flatLeaf = int32(-1)

// Flatten compiles t into its struct-of-arrays form. The source tree is
// not retained; the result predicts identically to t.
func Flatten(t *Tree) *FlatTree {
	n := t.NumNodes()
	ft := &FlatTree{
		Feature:   make([]int32, 0, n),
		Threshold: make([]float64, 0, n),
		Index:     make([]int32, 0, n),
		Values:    make([]float64, 0, t.NumLeaves()*t.Outputs),
		Outputs:   t.Outputs,
	}
	// Breadth-first renumbering: when a split is emitted its children
	// are appended to the queue back-to-back, so siblings always land on
	// consecutive new indices.
	queue := make([]int, 1, n)
	queue[0] = 0
	for qi := 0; qi < len(queue); qi++ {
		old := queue[qi]
		if t.Feature[old] == LeafMarker {
			ft.Feature = append(ft.Feature, flatLeaf)
			ft.Threshold = append(ft.Threshold, 0)
			ft.Index = append(ft.Index, int32(len(ft.Values)))
			ft.Values = append(ft.Values, t.Value[old]...)
			continue
		}
		ft.Feature = append(ft.Feature, int32(t.Feature[old]))
		ft.Threshold = append(ft.Threshold, t.Threshold[old])
		ft.Index = append(ft.Index, int32(len(queue)))
		queue = append(queue, t.Left[old], t.Right[old])
	}
	return ft
}

// NumNodes returns the total node count.
func (ft *FlatTree) NumNodes() int { return len(ft.Feature) }

// Predict returns the leaf value vector reached by x. The returned
// slice aliases the tree's storage and must not be modified. The branch
// mirrors Tree.Predict exactly (x < threshold goes left, everything
// else — including NaN — goes right), so results are bitwise identical.
func (ft *FlatTree) Predict(x []float64) []float64 {
	node := int32(0)
	for {
		f := ft.Feature[node]
		if f < 0 {
			break
		}
		next := ft.Index[node] + 1
		if x[f] < ft.Threshold[node] {
			next--
		}
		node = next
	}
	off := int(ft.Index[node])
	return ft.Values[off : off+ft.Outputs]
}

// Accumulate adds scale times the leaf value of x into out, the
// boosting-sum primitive matching Tree.AccumulatePredict.
func (ft *FlatTree) Accumulate(x []float64, scale float64, out []float64) {
	v := ft.Predict(x)
	for i := range out {
		out[i] += scale * v[i]
	}
}

// PredictRange fills out[i] with the prediction for X[i] for every i in
// [lo, hi) — the per-block body batch predictors hand to the shared
// worker pool.
func (ft *FlatTree) PredictRange(X, out [][]float64, lo, hi int) {
	for i := lo; i < hi; i++ {
		copy(out[i], ft.Predict(X[i]))
	}
}

// AppendTo appends the flattened tree to a compiled-ensemble arena,
// rebasing its node and value indices to arena-absolute positions.
// target is the output component the tree contributes to (xgboost's
// one-output-per-tree strategy, leaf width 1), or negative for a
// vector-leaf tree whose leaves span the ensemble's full output
// width. The arena copies the arrays; ft stays usable.
func (ft *FlatTree) AppendTo(ens *ml.CompiledEnsemble, target int) {
	ens.AddTree(ft.Feature, ft.Threshold, ft.Index, ft.Values, target)
}

// Flatten compiles the tree for batched prediction; see FlatTree.
func (t *Tree) Flatten() *FlatTree { return Flatten(t) }

// PredictBatch fills out[i] with the leaf vector reached by X[i],
// chunking rows across cores. It compiles the flat form on every call;
// repeated batch callers should Flatten once and reuse the FlatTree.
// Outputs are bitwise identical to row-at-a-time Predict.
func (t *Tree) PredictBatch(X, out [][]float64) {
	ft := Flatten(t)
	ml.ParallelRows(len(X), func(lo, hi int) {
		ft.PredictRange(X, out, lo, hi)
	})
}
