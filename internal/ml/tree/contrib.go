package tree

import "fmt"

// This file implements per-prediction feature contributions using the
// Saabas path-attribution method: walking a sample from root to leaf,
// each split's feature is credited with the change in the (cover-
// weighted) expected prediction between the node and the chosen child.
// Contributions plus the root expectation reconstruct the prediction
// exactly, giving a local explanation to pair with the global gain
// importances of Figure 6.

// NodeValues returns the cover-weighted expected prediction at every
// node: leaves keep their values; an internal node's value is the
// weighted average of its children's. The result is freshly allocated
// per call (explanation paths are not hot loops).
func (t *Tree) NodeValues() [][]float64 {
	values := make([][]float64, t.NumNodes())
	var walk func(node int) []float64
	walk = func(node int) []float64 {
		if t.Feature[node] == LeafMarker {
			values[node] = t.Value[node]
			return values[node]
		}
		l := walk(t.Left[node])
		r := walk(t.Right[node])
		lc := float64(t.Cover[t.Left[node]])
		rc := float64(t.Cover[t.Right[node]])
		total := lc + rc
		v := make([]float64, t.Outputs)
		if total > 0 {
			for k := range v {
				v[k] = (l[k]*lc + r[k]*rc) / total
			}
		} else {
			// Degenerate cover (should not happen for built trees):
			// fall back to the unweighted mean.
			for k := range v {
				v[k] = (l[k] + r[k]) / 2
			}
		}
		values[node] = v
		return v
	}
	walk(0)
	return values
}

// Contributions decomposes the tree's prediction for x into a bias
// (the root's expected value) plus one additive term per feature:
//
//	Predict(x)[k] == bias[k] + sum_f contrib[f][k]
//
// numFeatures sizes the contribution table (features never split
// contribute zero).
func (t *Tree) Contributions(x []float64, numFeatures int) (bias []float64, contrib [][]float64, err error) {
	if t.NumNodes() == 0 {
		return nil, nil, fmt.Errorf("tree: contributions of empty tree")
	}
	values := t.NodeValues()
	bias = append([]float64(nil), values[0]...)
	contrib = make([][]float64, numFeatures)
	for f := range contrib {
		contrib[f] = make([]float64, t.Outputs)
	}
	node := 0
	for t.Feature[node] != LeafMarker {
		f := t.Feature[node]
		if f >= numFeatures {
			return nil, nil, fmt.Errorf("tree: split feature %d outside table of %d", f, numFeatures)
		}
		var next int
		if x[f] < t.Threshold[node] {
			next = t.Left[node]
		} else {
			next = t.Right[node]
		}
		for k := 0; k < t.Outputs; k++ {
			contrib[f][k] += values[next][k] - values[node][k]
		}
		node = next
	}
	return bias, contrib, nil
}
