package tree

import (
	"math"
	"testing"

	"crossarch/internal/ml"
	"crossarch/internal/stats"
)

// buildFuzzTree grows a random but structurally valid tree: the fuzzed
// seed picks the shape, features, thresholds, and leaf values, so the
// fuzzer explores tree space through a single uint64 while every tree
// still passes Validate.
func buildFuzzTree(rng *stats.RNG, features, outputs, maxDepth int) *Tree {
	t := &Tree{Outputs: outputs}
	var grow func(depth int) int
	grow = func(depth int) int {
		if depth >= maxDepth || rng.Float64() < 0.3 {
			val := make([]float64, outputs)
			for k := range val {
				val[k] = rng.Range(-100, 100)
			}
			idx := len(t.Feature)
			t.Feature = append(t.Feature, LeafMarker)
			t.Threshold = append(t.Threshold, 0)
			t.Left = append(t.Left, -1)
			t.Right = append(t.Right, -1)
			t.Value = append(t.Value, val)
			t.Gain = append(t.Gain, 0)
			t.Cover = append(t.Cover, 1)
			return idx
		}
		idx := len(t.Feature)
		t.Feature = append(t.Feature, rng.Intn(features))
		t.Threshold = append(t.Threshold, rng.Range(-50, 50))
		t.Left = append(t.Left, -1)
		t.Right = append(t.Right, -1)
		t.Value = append(t.Value, nil)
		t.Gain = append(t.Gain, rng.Float64())
		t.Cover = append(t.Cover, 2)
		l := grow(depth + 1)
		r := grow(depth + 1)
		t.Left[idx], t.Right[idx] = l, r
		return idx
	}
	grow(0)
	return t
}

// FuzzFlatTreePredict drives random trees and arbitrary query points
// (including NaN and ±Inf coordinates, which the fuzzer will find)
// through both prediction layouts and demands bitwise agreement between
// the pointer-walk Tree.Predict and the SoA FlatTree paths.
func FuzzFlatTreePredict(f *testing.F) {
	f.Add(uint64(1), 0.5, -1.0, 3.0, uint64(4))
	f.Add(uint64(42), 0.0, 0.0, 0.0, uint64(1))
	f.Add(uint64(7), math.Inf(1), math.Inf(-1), 1e308, uint64(6))
	f.Add(uint64(99), -0.0, 1e-308, -42.5, uint64(3))
	f.Fuzz(func(t *testing.T, seed uint64, x0, x1, x2 float64, depth uint64) {
		rng := stats.NewRNG(seed)
		const outputs = 2
		tr := buildFuzzTree(rng, 3, outputs, int(depth%7))
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: generated tree fails Validate: %v", seed, err)
		}
		ft := tr.Flatten()
		if ft.NumNodes() != tr.NumNodes() {
			t.Fatalf("seed %d: flatten changed node count %d -> %d", seed, tr.NumNodes(), ft.NumNodes())
		}
		x := []float64{x0, x1, x2}

		want := tr.Predict(x)
		got := ft.Predict(x)
		for k := 0; k < outputs; k++ {
			if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
				t.Fatalf("seed %d x=%v: flat predict %v != walk %v", seed, x, got, want)
			}
		}

		// Accumulate must equal out += scale*leaf elementwise.
		out := []float64{1.5, -2.5}
		accWant := []float64{1.5 + 0.5*want[0], -2.5 + 0.5*want[1]}
		ft.Accumulate(x, 0.5, out)
		for k := 0; k < outputs; k++ {
			if math.Float64bits(out[k]) != math.Float64bits(accWant[k]) {
				t.Fatalf("seed %d x=%v: accumulate %v != %v", seed, x, out, accWant)
			}
		}

		// The chunked batch entry point on a 1-row batch.
		batch := [][]float64{make([]float64, outputs)}
		tr.PredictBatch([][]float64{x}, batch)
		for k := 0; k < outputs; k++ {
			if math.Float64bits(batch[0][k]) != math.Float64bits(want[k]) {
				t.Fatalf("seed %d x=%v: batch %v != walk %v", seed, x, batch[0], want)
			}
		}
	})
}

// FuzzCompiledPredict drives the compiled-ensemble kernel: random
// valid trees are appended to one shared arena — a vector-leaf tree,
// plus per-output single-target trees built width-1, mirroring both
// xgboost leaf strategies — and the arena walk must agree bitwise
// with the per-tree pointer walk under the same base/scale
// accumulation, for arbitrary (NaN, ±Inf) query points.
func FuzzCompiledPredict(f *testing.F) {
	f.Add(uint64(1), 0.5, -1.0, 3.0, uint64(4))
	f.Add(uint64(42), 0.0, 0.0, 0.0, uint64(1))
	f.Add(uint64(7), math.Inf(1), math.Inf(-1), 1e308, uint64(6))
	f.Add(uint64(99), -0.0, 1e-308, -42.5, uint64(3))
	f.Fuzz(func(t *testing.T, seed uint64, x0, x1, x2 float64, depth uint64) {
		rng := stats.NewRNG(seed)
		const outputs = 2
		ce := &ml.CompiledEnsemble{
			Scale:   rng.Range(-2, 2),
			Base:    []float64{rng.Range(-10, 10), rng.Range(-10, 10)},
			Outputs: outputs,
			Source:  "fuzz",
		}
		vec := buildFuzzTree(rng, 3, outputs, int(depth%7))
		vec.Flatten().AppendTo(ce, -1)
		narrow := make([]*Tree, outputs)
		for k := range narrow {
			narrow[k] = buildFuzzTree(rng, 3, 1, int(depth%5))
			narrow[k].Flatten().AppendTo(ce, k)
		}
		if err := ce.Validate(); err != nil {
			t.Fatalf("seed %d: compiled arena fails Validate: %v", seed, err)
		}
		x := []float64{x0, x1, x2}

		want := append([]float64(nil), ce.Base...)
		leaf := vec.Predict(x)
		for k := range want {
			want[k] += ce.Scale * leaf[k]
		}
		for k, tr := range narrow {
			want[k] += ce.Scale * tr.Predict(x)[0]
		}

		got := make([]float64, outputs)
		ce.PredictInto(x, got)
		for k := 0; k < outputs; k++ {
			if math.Float64bits(got[k]) != math.Float64bits(want[k]) {
				t.Fatalf("seed %d x=%v: compiled %v != envelope walk %v", seed, x, got, want)
			}
		}
	})
}
