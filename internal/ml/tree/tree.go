// Package tree implements regression trees over dense float feature
// matrices. It provides the two tree learners the repository needs:
//
//   - BuildCART: classic variance-reduction CART regression trees with
//     multi-output mean leaves, used by the decision-forest baseline.
//   - BuildNewton: second-order (gradient/hessian) trees with L2 leaf
//     regularization and split gain per the XGBoost objective, used by
//     the gradient-boosting learner in internal/ml/xgboost.
//
// Trees are stored in a flat array form: node i splits on Feature[i] at
// Threshold[i] and routes to children Left[i]/Right[i]; leaves are marked
// with Feature[i] == LeafMarker and carry a multi-output value vector.
// The flat form serializes to JSON directly and keeps prediction walks
// allocation-free.
package tree

import (
	"fmt"
	"sort"
)

// LeafMarker is the Feature value identifying leaf nodes.
const LeafMarker = -1

// Tree is a trained regression tree in flat array form. All slices have
// one entry per node; node 0 is the root.
type Tree struct {
	Feature   []int       `json:"feature"`
	Threshold []float64   `json:"threshold"`
	Left      []int       `json:"left"`
	Right     []int       `json:"right"`
	Value     [][]float64 `json:"value"` // leaf output vector; nil for internal nodes
	Gain      []float64   `json:"gain"`  // split gain; 0 for leaves
	Cover     []int       `json:"cover"` // training samples routed through the node
	Outputs   int         `json:"outputs"`
}

// NumNodes returns the total node count.
func (t *Tree) NumNodes() int { return len(t.Feature) }

// NumLeaves returns the number of leaf nodes.
func (t *Tree) NumLeaves() int {
	n := 0
	for _, f := range t.Feature {
		if f == LeafMarker {
			n++
		}
	}
	return n
}

// Depth returns the maximum root-to-leaf depth (a lone root counts as 0).
func (t *Tree) Depth() int {
	if t.NumNodes() == 0 {
		return 0
	}
	var walk func(node, d int) int
	walk = func(node, d int) int {
		if t.Feature[node] == LeafMarker {
			return d
		}
		l := walk(t.Left[node], d+1)
		r := walk(t.Right[node], d+1)
		if l > r {
			return l
		}
		return r
	}
	return walk(0, 0)
}

// Predict returns the leaf value vector reached by x. The returned slice
// aliases the tree's storage and must not be modified.
func (t *Tree) Predict(x []float64) []float64 {
	node := 0
	for t.Feature[node] != LeafMarker {
		if x[t.Feature[node]] < t.Threshold[node] {
			node = t.Left[node]
		} else {
			node = t.Right[node]
		}
	}
	return t.Value[node]
}

// AccumulatePredict adds scale times the leaf value of x into out, which
// lets boosting sum trees without allocating.
func (t *Tree) AccumulatePredict(x []float64, scale float64, out []float64) {
	v := t.Predict(x)
	for i := range out {
		out[i] += scale * v[i]
	}
}

// GainByFeature accumulates each feature's total split gain and split
// count into the provided slices (indexed by feature). It is the
// primitive under gain-based feature importances.
func (t *Tree) GainByFeature(totalGain []float64, splits []int) {
	for i, f := range t.Feature {
		if f == LeafMarker {
			continue
		}
		if f >= 0 && f < len(totalGain) {
			totalGain[f] += t.Gain[i]
			splits[f]++
		}
	}
}

// Validate checks structural invariants: children indices in range, every
// leaf has a value vector of the advertised width, no internal node has a
// value, and the node graph reachable from the root is a tree. It returns
// a descriptive error for the first violation found.
func (t *Tree) Validate() error {
	n := t.NumNodes()
	if n == 0 {
		return fmt.Errorf("tree: empty tree")
	}
	if len(t.Threshold) != n || len(t.Left) != n || len(t.Right) != n || len(t.Value) != n || len(t.Gain) != n || len(t.Cover) != n {
		return fmt.Errorf("tree: inconsistent node array lengths")
	}
	seen := make([]bool, n)
	stack := []int{0}
	visited := 0
	for len(stack) > 0 {
		node := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if node < 0 || node >= n {
			return fmt.Errorf("tree: node index %d out of range", node)
		}
		if seen[node] {
			return fmt.Errorf("tree: node %d reachable twice (cycle or DAG)", node)
		}
		seen[node] = true
		visited++
		if t.Feature[node] == LeafMarker {
			if len(t.Value[node]) != t.Outputs {
				return fmt.Errorf("tree: leaf %d has %d outputs, want %d", node, len(t.Value[node]), t.Outputs)
			}
			continue
		}
		if t.Feature[node] < 0 {
			return fmt.Errorf("tree: node %d has invalid feature %d", node, t.Feature[node])
		}
		if t.Value[node] != nil {
			return fmt.Errorf("tree: internal node %d carries a value", node)
		}
		stack = append(stack, t.Left[node], t.Right[node])
	}
	if visited != n {
		return fmt.Errorf("tree: %d of %d nodes unreachable from root", n-visited, n)
	}
	return nil
}

// builder accumulates nodes during recursive construction.
type builder struct {
	t *Tree
}

func newBuilder(outputs int) *builder {
	return &builder{t: &Tree{Outputs: outputs}}
}

// addLeaf appends a leaf node covering count training samples and
// returns its index.
func (b *builder) addLeaf(value []float64, count int) int {
	idx := len(b.t.Feature)
	b.t.Feature = append(b.t.Feature, LeafMarker)
	b.t.Threshold = append(b.t.Threshold, 0)
	b.t.Left = append(b.t.Left, -1)
	b.t.Right = append(b.t.Right, -1)
	b.t.Value = append(b.t.Value, value)
	b.t.Gain = append(b.t.Gain, 0)
	b.t.Cover = append(b.t.Cover, count)
	return idx
}

// addSplit appends an internal node with placeholder children and returns
// its index; the caller patches Left/Right after building the subtrees.
func (b *builder) addSplit(feature int, threshold, gain float64, count int) int {
	idx := len(b.t.Feature)
	b.t.Feature = append(b.t.Feature, feature)
	b.t.Threshold = append(b.t.Threshold, threshold)
	b.t.Left = append(b.t.Left, -1)
	b.t.Right = append(b.t.Right, -1)
	b.t.Value = append(b.t.Value, nil)
	b.t.Gain = append(b.t.Gain, gain)
	b.t.Cover = append(b.t.Cover, count)
	return idx
}

// sortByFeature orders idx by feature f of X, ascending, without
// disturbing the caller's slice. The scratch slice is reused.
func sortByFeature(X [][]float64, idx []int, f int, scratch []int) []int {
	scratch = scratch[:0]
	scratch = append(scratch, idx...)
	sort.Slice(scratch, func(a, b int) bool {
		return X[scratch[a]][f] < X[scratch[b]][f]
	})
	return scratch
}
