package tree

import (
	"math"
	"testing"
	"testing/quick"

	"crossarch/internal/stats"
)

func TestBinnedMatrixBinning(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}, {5}}
	bm := NewBinnedMatrix(X)
	if bm.Samples != 5 {
		t.Fatalf("samples = %d", bm.Samples)
	}
	// 5 distinct values -> 4 cuts -> 5 bins; each value its own bin.
	if bm.NumBins[0] != 5 {
		t.Fatalf("bins = %d, want 5", bm.NumBins[0])
	}
	for i := 0; i < 5; i++ {
		if int(bm.Bins[0][i]) != i {
			t.Errorf("value %v binned to %d, want %d", X[i][0], bm.Bins[0][i], i)
		}
	}
}

func TestBinnedMatrixConstantFeature(t *testing.T) {
	X := [][]float64{{7, 1}, {7, 2}, {7, 3}}
	bm := NewBinnedMatrix(X)
	if bm.NumBins[0] != 1 {
		t.Errorf("constant feature has %d bins, want 1", bm.NumBins[0])
	}
	if len(bm.Edges[0]) != 0 {
		t.Errorf("constant feature has %d edges", len(bm.Edges[0]))
	}
}

func TestBinnedMatrixManyValuesCapped(t *testing.T) {
	rng := stats.NewRNG(1)
	n := 2000
	X := make([][]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64()}
	}
	bm := NewBinnedMatrix(X)
	if bm.NumBins[0] > MaxBins {
		t.Errorf("bins = %d exceeds MaxBins", bm.NumBins[0])
	}
	if bm.NumBins[0] < MaxBins/2 {
		t.Errorf("bins = %d, expected near MaxBins for 2000 distinct values", bm.NumBins[0])
	}
}

// Property: binning is order-consistent — x < y implies bin(x) <= bin(y),
// and edges are strictly increasing.
func TestBinMonotonicityProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		rng := stats.NewRNG(seed)
		n := 10 + rng.Intn(300)
		X := make([][]float64, n)
		for i := range X {
			X[i] = []float64{rng.Normal(0, 10)}
		}
		bm := NewBinnedMatrix(X)
		for i := 1; i < len(bm.Edges[0]); i++ {
			if bm.Edges[0][i] <= bm.Edges[0][i-1] {
				return false
			}
		}
		for a := 0; a < n; a++ {
			for b := 0; b < n; b++ {
				if X[a][0] < X[b][0] && bm.Bins[0][a] > bm.Bins[0][b] {
					return false
				}
			}
		}
		return true
	}, &quick.Config{MaxCount: 25})
	if err != nil {
		t.Fatal(err)
	}
}

func TestHistMatchesExactOnSeparableData(t *testing.T) {
	// On a cleanly separable step function both split finders must
	// learn the same function.
	rng := stats.NewRNG(2)
	n := 400
	X := make([][]float64, n)
	grad := make([]float64, n)
	hess := make([]float64, n)
	for i := range X {
		x := rng.Float64()
		X[i] = []float64{x, rng.Float64()}
		y := 0.0
		if x >= 0.5 {
			y = 2
		}
		grad[i] = -y
		hess[i] = 1
	}
	p := NewtonParams{MaxDepth: 2, Lambda: 1}
	exact, err := BuildNewton(X, grad, hess, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	bm := NewBinnedMatrix(X)
	hist, err := BuildNewtonHist(bm, grad, hess, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64(), rng.Float64()}
		a, b := exact.Predict(x)[0], hist.Predict(x)[0]
		if math.Abs(a-b) > 0.05 {
			t.Fatalf("exact %v vs hist %v at %v", a, b, x)
		}
	}
}

func TestHistMultiMatchesSingleOutputHist(t *testing.T) {
	// A multi-output tree over K identical gradient copies must equal
	// the single-output tree on each component (the summed gain is K
	// times the single gain, so split choices coincide).
	rng := stats.NewRNG(3)
	n := 300
	X := make([][]float64, n)
	grad := make([]float64, n)
	hess := make([]float64, n)
	for i := range X {
		x := rng.Float64()
		X[i] = []float64{x}
		grad[i] = -math.Sin(3 * x)
		hess[i] = 1
	}
	p := NewtonParams{MaxDepth: 4, Lambda: 1}
	single, err := BuildNewtonHist(NewBinnedMatrix(X), grad, hess, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	multi, err := BuildNewtonHistMulti(NewBinnedMatrix(X),
		[][]float64{grad, grad}, [][]float64{hess, hess}, nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if multi.Outputs != 2 {
		t.Fatalf("multi outputs = %d", multi.Outputs)
	}
	for i := 0; i < 50; i++ {
		x := []float64{rng.Float64()}
		s := single.Predict(x)[0]
		m := multi.Predict(x)
		if math.Abs(m[0]-s) > 1e-9 || math.Abs(m[1]-s) > 1e-9 {
			t.Fatalf("multi %v vs single %v at %v", m, s, x)
		}
	}
}

func TestHistMultiSubtractionConsistency(t *testing.T) {
	// Deep trees exercise both the subtraction path (large nodes) and
	// the small-node buffer path; leaf values must remain the exact
	// Newton weights of the routed samples.
	rng := stats.NewRNG(4)
	n := 1500 // large enough to trigger the full-histogram path
	X := make([][]float64, n)
	grads := make([][]float64, 2)
	hesses := make([][]float64, 2)
	for k := range grads {
		grads[k] = make([]float64, n)
		hesses[k] = make([]float64, n)
	}
	for i := range X {
		x0, x1 := rng.Float64(), rng.Float64()
		X[i] = []float64{x0, x1}
		grads[0][i] = -(x0 + x1)
		grads[1][i] = -(x0 * x1)
		hesses[0][i] = 1
		hesses[1][i] = 1
	}
	lambda := 1.0
	tr, err := BuildNewtonHistMulti(NewBinnedMatrix(X), grads, hesses, nil,
		NewtonParams{MaxDepth: 7, Lambda: lambda})
	if err != nil {
		t.Fatal(err)
	}
	// Route every sample; recompute each leaf's Newton weight directly.
	leafG := make(map[int][]float64)
	leafH := make(map[int][]float64)
	for i := range X {
		node := 0
		for tr.Feature[node] != LeafMarker {
			if X[i][tr.Feature[node]] < tr.Threshold[node] {
				node = tr.Left[node]
			} else {
				node = tr.Right[node]
			}
		}
		if leafG[node] == nil {
			leafG[node] = make([]float64, 2)
			leafH[node] = make([]float64, 2)
		}
		for k := 0; k < 2; k++ {
			leafG[node][k] += grads[k][i]
			leafH[node][k] += hesses[k][i]
		}
	}
	for node, G := range leafG {
		for k := 0; k < 2; k++ {
			want := -G[k] / (leafH[node][k] + lambda)
			if math.Abs(tr.Value[node][k]-want) > 1e-6 {
				t.Fatalf("leaf %d output %d = %v, want %v (subtraction drift?)",
					node, k, tr.Value[node][k], want)
			}
		}
	}
}

func TestHistMultiErrors(t *testing.T) {
	X := [][]float64{{1}, {2}}
	bm := NewBinnedMatrix(X)
	g := []float64{1, 2}
	h := []float64{1, 1}
	if _, err := BuildNewtonHistMulti(nil, [][]float64{g}, [][]float64{h}, nil, NewtonParams{MaxDepth: 1}); err == nil {
		t.Error("nil matrix should error")
	}
	if _, err := BuildNewtonHistMulti(bm, nil, nil, nil, NewtonParams{MaxDepth: 1}); err == nil {
		t.Error("no outputs should error")
	}
	if _, err := BuildNewtonHistMulti(bm, [][]float64{{1}}, [][]float64{{1}}, nil, NewtonParams{MaxDepth: 1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := BuildNewtonHistMulti(bm, [][]float64{g}, [][]float64{h}, []int{}, NewtonParams{MaxDepth: 1}); err == nil {
		t.Error("empty idx should error")
	}
	if _, err := BuildNewtonHistMulti(bm, [][]float64{g}, [][]float64{h}, nil, NewtonParams{MaxDepth: -1}); err == nil {
		t.Error("negative depth should error")
	}
}

func TestHistErrors(t *testing.T) {
	X := [][]float64{{1}, {2}}
	bm := NewBinnedMatrix(X)
	if _, err := BuildNewtonHist(nil, []float64{1}, []float64{1}, nil, NewtonParams{MaxDepth: 1}); err == nil {
		t.Error("nil matrix should error")
	}
	if _, err := BuildNewtonHist(bm, []float64{1}, []float64{1}, nil, NewtonParams{MaxDepth: 1}); err == nil {
		t.Error("length mismatch should error")
	}
}

func BenchmarkHistVsExactSplit(b *testing.B) {
	rng := stats.NewRNG(1)
	n := 5000
	X := make([][]float64, n)
	grad := make([]float64, n)
	hess := make([]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64(), rng.Float64(), rng.Float64(), rng.Float64()}
		grad[i] = rng.Normal(0, 1)
		hess[i] = 1
	}
	p := NewtonParams{MaxDepth: 6, Lambda: 1}
	b.Run("exact", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := BuildNewton(X, grad, hess, nil, p); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("hist", func(b *testing.B) {
		bm := NewBinnedMatrix(X)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := BuildNewtonHist(bm, grad, hess, nil, p); err != nil {
				b.Fatal(err)
			}
		}
	})
}
