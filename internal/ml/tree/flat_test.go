package tree

import (
	"math"
	"sync"
	"testing"

	"crossarch/internal/ml"
	"crossarch/internal/stats"
)

// buildRandomTree grows a CART tree on random regression data for the
// flat-compilation tests.
func buildRandomTree(t *testing.T, rows, features, outputs int, seed uint64) (*Tree, [][]float64) {
	t.Helper()
	rng := stats.NewRNG(seed)
	X := make([][]float64, rows)
	Y := make([][]float64, rows)
	idx := make([]int, rows)
	for i := range X {
		x := make([]float64, features)
		for j := range x {
			x[j] = rng.Normal(0, 2)
		}
		X[i] = x
		y := make([]float64, outputs)
		for k := range y {
			y[k] = math.Sin(x[0]) + float64(k)*x[1%features] + rng.Normal(0, 0.1)
		}
		Y[i] = y
		idx[i] = i
	}
	tr, err := BuildCART(X, Y, idx, CARTParams{MaxDepth: 8, MinSamplesLeaf: 1, MaxFeatures: features, RNG: rng})
	if err != nil {
		t.Fatal(err)
	}
	return tr, X
}

// TestFlattenGoldenEquivalence is the golden test of the acceptance
// criteria: the flat compiled tree must return bitwise-identical leaf
// vectors to the pointer-walk Predict for every probe, including probes
// far outside the training distribution.
func TestFlattenGoldenEquivalence(t *testing.T) {
	tr, X := buildRandomTree(t, 400, 3, 2, 1)
	ft := tr.Flatten()
	if ft.NumNodes() != tr.NumNodes() {
		t.Fatalf("flat tree has %d nodes, source %d", ft.NumNodes(), tr.NumNodes())
	}
	rng := stats.NewRNG(2)
	probes := append([][]float64{}, X...)
	for i := 0; i < 500; i++ {
		probes = append(probes, []float64{rng.Normal(0, 10), rng.Normal(0, 10), rng.Normal(0, 10)})
	}
	for _, x := range probes {
		want := tr.Predict(x)
		got := ft.Predict(x)
		if len(got) != len(want) {
			t.Fatalf("output width %d, want %d", len(got), len(want))
		}
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("flat predict %v != tree predict %v at %v", got, want, x)
			}
		}
	}
}

// TestFlattenNaNRouting pins the tie-breaking semantics: Tree.Predict
// sends x < threshold left and everything else right, so a NaN feature
// must route right in the flat form too.
func TestFlattenNaNRouting(t *testing.T) {
	tr, _ := buildRandomTree(t, 200, 2, 1, 3)
	ft := tr.Flatten()
	rng := stats.NewRNG(4)
	for i := 0; i < 200; i++ {
		x := []float64{rng.Normal(0, 2), rng.Normal(0, 2)}
		x[i%2] = math.NaN()
		want, got := tr.Predict(x), ft.Predict(x)
		for k := range want {
			if got[k] != want[k] {
				t.Fatalf("NaN probe routed differently: flat %v, tree %v", got, want)
			}
		}
	}
}

// TestFlattenSingleLeaf covers the degenerate lone-root tree.
func TestFlattenSingleLeaf(t *testing.T) {
	tr := &Tree{
		Feature:   []int{LeafMarker},
		Threshold: []float64{0},
		Left:      []int{-1},
		Right:     []int{-1},
		Value:     [][]float64{{3, 4}},
		Gain:      []float64{0},
		Cover:     []int{1},
		Outputs:   2,
	}
	ft := tr.Flatten()
	got := ft.Predict([]float64{42})
	if got[0] != 3 || got[1] != 4 {
		t.Fatalf("lone leaf predicts %v, want [3 4]", got)
	}
}

// TestPredictBatchMatchesRowByRow checks Tree.PredictBatch against the
// row loop and exercises concurrent batch calls on one tree so the race
// detector sees the shared read-only traversal.
func TestPredictBatchMatchesRowByRow(t *testing.T) {
	tr, X := buildRandomTree(t, 1000, 4, 3, 5)
	out := ml.NewMatrix(len(X), tr.Outputs)
	tr.PredictBatch(X, out)
	for i, x := range X {
		want := tr.Predict(x)
		for k := range want {
			if out[i][k] != want[k] {
				t.Fatalf("row %d: batch %v, row-at-a-time %v", i, out[i], want)
			}
		}
	}

	ft := tr.Flatten()
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			o := ml.NewMatrix(len(X), tr.Outputs)
			ft.PredictRange(X, o, 0, len(X))
			for i := range X {
				if o[i][0] != out[i][0] {
					t.Errorf("concurrent batch diverged at row %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

// TestAccumulateMatchesAccumulatePredict checks the boosting primitive
// agrees between layouts.
func TestAccumulateMatchesAccumulatePredict(t *testing.T) {
	tr, X := buildRandomTree(t, 300, 3, 2, 6)
	ft := tr.Flatten()
	for _, x := range X[:50] {
		a := []float64{1, 2}
		b := []float64{1, 2}
		tr.AccumulatePredict(x, 0.3, a)
		ft.Accumulate(x, 0.3, b)
		if a[0] != b[0] || a[1] != b[1] {
			t.Fatalf("accumulate diverged: tree %v, flat %v", a, b)
		}
	}
}
