package tree

import "fmt"

// BuildNewtonHistMulti grows a single vector-leaf Newton tree over K
// output components simultaneously (the xgboost 2.0
// multi_strategy="multi_output_tree" mode): every sample carries one
// gradient/hessian pair per output, the split gain is the sum of the
// per-output XGBoost gains, and each leaf stores the K per-output
// Newton weights. One such tree replaces K single-output trees per
// boosting round, and because all outputs share the split structure the
// predicted vectors stay internally coherent — which matters for the
// paper's same-order score.
//
// Two classic hist optimizations are implemented: gradients are held in
// sample-major layout so histogram accumulation touches contiguous
// memory, and each node computes the histogram of its smaller child
// directly while deriving the larger child's by subtraction from its
// own (xgboost's "histogram subtraction" trick), halving accumulation
// work per level.
//
// grads and hesses are [K][n] (one row per output component).
func BuildNewtonHistMulti(bm *BinnedMatrix, grads, hesses [][]float64, idx []int, p NewtonParams) (*Tree, error) {
	if bm == nil || bm.Samples == 0 {
		return nil, fmt.Errorf("tree: empty binned matrix")
	}
	K := len(grads)
	if K == 0 || len(hesses) != K {
		return nil, fmt.Errorf("tree: %d gradient rows, %d hessian rows", K, len(hesses))
	}
	n := bm.Samples
	for k := 0; k < K; k++ {
		if len(grads[k]) != n || len(hesses[k]) != n {
			return nil, fmt.Errorf("tree: output %d grad/hess length mismatch", k)
		}
	}
	if p.MaxDepth < 0 {
		return nil, fmt.Errorf("tree: negative MaxDepth %d", p.MaxDepth)
	}
	if p.MinSamplesLeaf < 1 {
		p.MinSamplesLeaf = 1
	}
	if idx == nil {
		idx = make([]int, n)
		for i := range idx {
			idx[i] = i
		}
	}
	if len(idx) == 0 {
		return nil, fmt.Errorf("tree: empty training index set")
	}
	features := len(bm.NumBins)
	if p.MaxFeatures <= 0 || p.MaxFeatures > features {
		p.MaxFeatures = features
	}
	if p.MaxFeatures < features && p.RNG == nil {
		return nil, fmt.Errorf("tree: column subsampling requires an RNG")
	}

	// Transpose to sample-major: gradFlat[i*K+k].
	gradFlat := make([]float64, n*K)
	hessFlat := make([]float64, n*K)
	for k := 0; k < K; k++ {
		gk, hk := grads[k], hesses[k]
		for i := 0; i < n; i++ {
			gradFlat[i*K+k] = gk[i]
			hessFlat[i*K+k] = hk[i]
		}
	}

	b := newBuilder(K)
	g := &multiGrower{
		bm: bm, gradFlat: gradFlat, hessFlat: hessFlat,
		p: p, b: b, features: features, K: K,
	}
	g.grow(append([]int(nil), idx...), 0, nil)
	t := b.t
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

type multiGrower struct {
	bm                 *BinnedMatrix
	gradFlat, hessFlat []float64 // sample-major [i*K + k]
	p                  NewtonParams
	b                  *builder
	features           int
	K                  int
	// Reusable buffers for the small-node split scan.
	smallGH, smallHH []float64
	smallCH          []int
	smallGL          []float64
}

// nodeHist is a node's full gradient histogram across all features:
// gh/hh indexed [(f*MaxBins + b)*K + k], ch indexed [f*MaxBins + b],
// plus the node's per-output totals.
type nodeHist struct {
	gh, hh []float64
	ch     []int
	G, H   []float64
	count  int
}

func (g *multiGrower) newHist() *nodeHist {
	size := g.features * MaxBins
	return &nodeHist{
		gh: make([]float64, size*g.K),
		hh: make([]float64, size*g.K),
		ch: make([]int, size),
		G:  make([]float64, g.K),
		H:  make([]float64, g.K),
	}
}

// computeHist accumulates the full multi-feature histogram of idx.
func (g *multiGrower) computeHist(idx []int) *nodeHist {
	h := g.newHist()
	K := g.K
	for f := 0; f < g.features; f++ {
		bins := g.bm.Bins[f]
		fBase := f * MaxBins
		for _, i := range idx {
			b := fBase + int(bins[i])
			h.ch[b]++
			base := b * K
			gi := g.gradFlat[i*K : i*K+K]
			hi := g.hessFlat[i*K : i*K+K]
			dstG := h.gh[base : base+K]
			dstH := h.hh[base : base+K]
			for k := 0; k < K; k++ {
				dstG[k] += gi[k]
				dstH[k] += hi[k]
			}
		}
	}
	// Node totals from feature 0's histogram (every feature's histogram
	// sums to the same totals).
	for b := 0; b < MaxBins; b++ {
		base := b * K
		for k := 0; k < K; k++ {
			h.G[k] += h.gh[base+k]
			h.H[k] += h.hh[base+k]
		}
	}
	h.count = len(idx)
	return h
}

// subtractHist returns parent - child.
func (g *multiGrower) subtractHist(parent, child *nodeHist) *nodeHist {
	out := g.newHist()
	for i := range out.gh {
		out.gh[i] = parent.gh[i] - child.gh[i]
		out.hh[i] = parent.hh[i] - child.hh[i]
	}
	for i := range out.ch {
		out.ch[i] = parent.ch[i] - child.ch[i]
	}
	for k := 0; k < g.K; k++ {
		out.G[k] = parent.G[k] - child.G[k]
		out.H[k] = parent.H[k] - child.H[k]
	}
	out.count = parent.count - child.count
	return out
}

// score is the summed per-output structure score.
func (g *multiGrower) score(G, H []float64) float64 {
	s := 0.0
	for k := 0; k < g.K; k++ {
		s += G[k] * G[k] / (H[k] + g.p.Lambda)
	}
	return s
}

func (g *multiGrower) leaf(G, H []float64) []float64 {
	w := make([]float64, g.K)
	for k := 0; k < g.K; k++ {
		w[k] = -G[k] / (H[k] + g.p.Lambda)
	}
	return w
}

func (g *multiGrower) candidateFeatures() []int {
	if g.p.MaxFeatures >= g.features {
		all := make([]int, g.features)
		for i := range all {
			all[i] = i
		}
		return all
	}
	return g.p.RNG.SampleWithoutReplacement(g.features, g.p.MaxFeatures)
}

// bestSplit scans the node histogram for the best admissible split.
func (g *multiGrower) bestSplit(h *nodeHist) *histSplit {
	parent := g.score(h.G, h.H)
	var best *histSplit
	K := g.K
	GL := make([]float64, K)
	HL := make([]float64, K)
	GR := make([]float64, K)
	HR := make([]float64, K)

	for _, f := range g.candidateFeatures() {
		nb := g.bm.NumBins[f]
		if nb < 2 {
			continue
		}
		fBase := f * MaxBins
		for k := 0; k < K; k++ {
			GL[k], HL[k] = 0, 0
		}
		CL := 0
		for b := 0; b < nb-1; b++ {
			base := (fBase + b) * K
			for k := 0; k < K; k++ {
				GL[k] += h.gh[base+k]
				HL[k] += h.hh[base+k]
			}
			CL += h.ch[fBase+b]
			CR := h.count - CL
			if CL < g.p.MinSamplesLeaf || CR < g.p.MinSamplesLeaf {
				continue
			}
			admissible := true
			for k := 0; k < K; k++ {
				GR[k] = h.G[k] - GL[k]
				HR[k] = h.H[k] - HL[k]
				if HL[k] < g.p.MinChildWeight || HR[k] < g.p.MinChildWeight {
					admissible = false
					break
				}
			}
			if !admissible {
				continue
			}
			gain := 0.5*(g.score(GL, HL)+g.score(GR, HR)-parent) - g.p.Gamma
			if gain <= 1e-12 {
				continue
			}
			if best == nil || gain > best.gain {
				if best == nil {
					best = &histSplit{}
				}
				best.feature = f
				best.bin = b
				best.threshold = g.bm.Edges[f][b]
				best.gain = gain
			}
		}
	}
	return best
}

// histThreshold is the node size above which the full-feature histogram
// (enabling the subtraction trick) pays for its allocation; smaller
// nodes use the buffer-based per-feature scan. Subtraction beats direct
// accumulation once the derived child exceeds MaxBins samples.
const histThreshold = 2 * MaxBins

// nodeTotals sums per-output gradients and hessians of idx directly.
func (g *multiGrower) nodeTotals(idx []int) (G, H []float64) {
	K := g.K
	G = make([]float64, K)
	H = make([]float64, K)
	for _, i := range idx {
		gi := g.gradFlat[i*K : i*K+K]
		hi := g.hessFlat[i*K : i*K+K]
		for k := 0; k < K; k++ {
			G[k] += gi[k]
			H[k] += hi[k]
		}
	}
	return G, H
}

// bestSplitSmall is the allocation-light split scan for small nodes: it
// builds one per-feature histogram at a time in reusable buffers.
func (g *multiGrower) bestSplitSmall(idx []int, Gtot, Htot []float64) *histSplit {
	parent := g.score(Gtot, Htot)
	var best *histSplit
	K := g.K
	if g.smallGH == nil {
		g.smallGH = make([]float64, MaxBins*K)
		g.smallHH = make([]float64, MaxBins*K)
		g.smallCH = make([]int, MaxBins)
		g.smallGL = make([]float64, 4*K)
	}
	gh, hh, ch := g.smallGH, g.smallHH, g.smallCH
	GL := g.smallGL[0*K : 1*K]
	HL := g.smallGL[1*K : 2*K]
	GR := g.smallGL[2*K : 3*K]
	HR := g.smallGL[3*K : 4*K]

	for _, f := range g.candidateFeatures() {
		nb := g.bm.NumBins[f]
		if nb < 2 {
			continue
		}
		for b := 0; b < nb; b++ {
			ch[b] = 0
			base := b * K
			for k := 0; k < K; k++ {
				gh[base+k], hh[base+k] = 0, 0
			}
		}
		bins := g.bm.Bins[f]
		for _, i := range idx {
			b := int(bins[i])
			ch[b]++
			base := b * K
			gi := g.gradFlat[i*K : i*K+K]
			hi := g.hessFlat[i*K : i*K+K]
			for k := 0; k < K; k++ {
				gh[base+k] += gi[k]
				hh[base+k] += hi[k]
			}
		}
		for k := 0; k < K; k++ {
			GL[k], HL[k] = 0, 0
		}
		CL := 0
		for b := 0; b < nb-1; b++ {
			base := b * K
			for k := 0; k < K; k++ {
				GL[k] += gh[base+k]
				HL[k] += hh[base+k]
			}
			CL += ch[b]
			CR := len(idx) - CL
			if CL < g.p.MinSamplesLeaf || CR < g.p.MinSamplesLeaf {
				continue
			}
			admissible := true
			for k := 0; k < K; k++ {
				GR[k] = Gtot[k] - GL[k]
				HR[k] = Htot[k] - HL[k]
				if HL[k] < g.p.MinChildWeight || HR[k] < g.p.MinChildWeight {
					admissible = false
					break
				}
			}
			if !admissible {
				continue
			}
			gain := 0.5*(g.score(GL, HL)+g.score(GR, HR)-parent) - g.p.Gamma
			if gain <= 1e-12 {
				continue
			}
			if best == nil || gain > best.gain {
				if best == nil {
					best = &histSplit{}
				}
				best.feature = f
				best.bin = b
				best.threshold = g.bm.Edges[f][b]
				best.gain = gain
			}
		}
	}
	return best
}

// grow recursively builds the subtree over idx. h is the node's
// histogram when the parent already derived it (subtraction trick);
// nil means this node decides for itself whether a full histogram is
// worth building.
func (g *multiGrower) grow(idx []int, depth int, h *nodeHist) int {
	if h == nil && len(idx) >= histThreshold {
		h = g.computeHist(idx)
	}
	var G, H []float64
	if h != nil {
		G, H = h.G, h.H
	} else {
		G, H = g.nodeTotals(idx)
	}
	if depth >= g.p.MaxDepth {
		return g.b.addLeaf(g.leaf(G, H), len(idx))
	}
	var split *histSplit
	if h != nil {
		split = g.bestSplit(h)
	} else {
		split = g.bestSplitSmall(idx, G, H)
	}
	if split == nil {
		return g.b.addLeaf(g.leaf(G, H), len(idx))
	}
	bins := g.bm.Bins[split.feature]
	var left, right []int
	for _, i := range idx {
		if int(bins[i]) <= split.bin {
			left = append(left, i)
		} else {
			right = append(right, i)
		}
	}
	if len(left) == 0 || len(right) == 0 {
		return g.b.addLeaf(g.leaf(G, H), len(idx))
	}

	// Histogram subtraction: when the parent histogram exists and the
	// larger child is big enough to profit, accumulate only the smaller
	// child and derive the sibling. Small children fall back to the
	// buffer path in their own grow call.
	var leftHist, rightHist *nodeHist
	if h != nil {
		smaller, larger := left, right
		if len(smaller) > len(larger) {
			smaller, larger = larger, smaller
		}
		if len(larger) >= histThreshold {
			smallerHist := g.computeHist(smaller)
			largerHist := g.subtractHist(h, smallerHist)
			if len(left) <= len(right) {
				rightHist = largerHist
				if len(left) >= histThreshold {
					leftHist = smallerHist
				}
			} else {
				leftHist = largerHist
				if len(right) >= histThreshold {
					rightHist = smallerHist
				}
			}
		}
	}
	h = nil // release the parent histogram before recursing

	node := g.b.addSplit(split.feature, split.threshold, split.gain, len(idx))
	g.b.t.Left[node] = g.grow(left, depth+1, leftHist)
	g.b.t.Right[node] = g.grow(right, depth+1, rightHist)
	return node
}
