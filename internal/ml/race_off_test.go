//go:build !race

package ml_test

const raceEnabled = false
