package ml

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	RegisterModel("constant-test", func() Regressor { return &constantModel{} })
	defer unregister("constant-test")

	m := &constantModel{Vec: []float64{1.5, 2.5}}
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "constant-test" {
		t.Fatalf("loaded name = %s", back.Name())
	}
	got := back.Predict([]float64{0})
	if got[0] != 1.5 || got[1] != 2.5 {
		t.Errorf("loaded prediction = %v", got)
	}
}

func unregister(name string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	delete(registry, name)
}

func TestLoadUnknownModel(t *testing.T) {
	in := strings.NewReader(`{"name":"never-registered","payload":{}}`)
	if _, err := LoadModel(in); err == nil {
		t.Error("unknown model should error")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("not json")); err == nil {
		t.Error("garbage should error")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	RegisterModel("dup-test", func() Regressor { return &constantModel{} })
	defer unregister("dup-test")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterModel("dup-test", func() Regressor { return &constantModel{} })
}

func TestSaveLoadFile(t *testing.T) {
	RegisterModel("file-test", func() Regressor { return &fileModel{} })
	defer unregister("file-test")
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveModelFile(path, &fileModel{constantModel{Vec: []float64{3}}}); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Predict(nil); got[0] != 3 {
		t.Errorf("file round trip = %v", got)
	}
	if _, err := LoadModelFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

type fileModel struct{ constantModel }

func (f *fileModel) Name() string { return "file-test" }
