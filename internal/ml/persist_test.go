package ml

import (
	"bytes"
	"encoding/json"
	"errors"
	"io"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crossarch/internal/obs"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	RegisterModel("constant-test", func() Regressor { return &constantModel{} })
	defer unregister("constant-test")

	m := &constantModel{Vec: []float64{1.5, 2.5}}
	var buf bytes.Buffer
	if err := SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name() != "constant-test" {
		t.Fatalf("loaded name = %s", back.Name())
	}
	got := back.Predict([]float64{0})
	if got[0] != 1.5 || got[1] != 2.5 {
		t.Errorf("loaded prediction = %v", got)
	}
}

func unregister(name string) {
	registryMu.Lock()
	defer registryMu.Unlock()
	delete(registry, name)
}

func TestLoadUnknownModel(t *testing.T) {
	in := strings.NewReader(`{"name":"never-registered","payload":{}}`)
	if _, err := LoadModel(in); err == nil {
		t.Error("unknown model should error")
	}
}

func TestLoadGarbage(t *testing.T) {
	if _, err := LoadModel(strings.NewReader("not json")); err == nil {
		t.Error("garbage should error")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	RegisterModel("dup-test", func() Regressor { return &constantModel{} })
	defer unregister("dup-test")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	RegisterModel("dup-test", func() Regressor { return &constantModel{} })
}

func TestSaveLoadFile(t *testing.T) {
	RegisterModel("file-test", func() Regressor { return &fileModel{} })
	defer unregister("file-test")
	path := filepath.Join(t.TempDir(), "model.json")
	if err := SaveModelFile(path, &fileModel{constantModel{Vec: []float64{3}}}); err != nil {
		t.Fatal(err)
	}
	back, err := LoadModelFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Predict(nil); got[0] != 3 {
		t.Errorf("file round trip = %v", got)
	}
	if _, err := LoadModelFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
}

type fileModel struct{ constantModel }

func (f *fileModel) Name() string { return "file-test" }

// TestChecksumWritten pins the envelope format: SaveModel emits an
// FNV-1a payload checksum that LoadModel verifies.
func TestChecksumWritten(t *testing.T) {
	RegisterModel("ck-test", func() Regressor { return &ckModel{} })
	defer unregister("ck-test")
	var buf bytes.Buffer
	if err := SaveModel(&buf, &ckModel{constantModel{Vec: []float64{1}}}); err != nil {
		t.Fatal(err)
	}
	var env struct {
		Checksum string `json:"checksum"`
	}
	if err := json.Unmarshal(buf.Bytes(), &env); err != nil {
		t.Fatal(err)
	}
	if len(env.Checksum) != 16 {
		t.Fatalf("checksum = %q, want 16 hex digits", env.Checksum)
	}
	if _, err := LoadModel(&buf); err != nil {
		t.Fatalf("round trip with checksum: %v", err)
	}
}

// TestCorruptPayloadRejected flips one payload byte and expects the
// distinct "corrupt" error instead of garbage predictions or a
// confusing decode failure.
func TestCorruptPayloadRejected(t *testing.T) {
	RegisterModel("ck-corrupt", func() Regressor { return &ckCorruptModel{} })
	defer unregister("ck-corrupt")
	var buf bytes.Buffer
	if err := SaveModel(&buf, &ckCorruptModel{constantModel{Vec: []float64{1.5, 2.5}}}); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a digit inside the payload's numeric value: still valid JSON,
	// so only the checksum can catch it.
	i := bytes.Index(data, []byte("1.5"))
	if i < 0 {
		t.Fatalf("payload value not found in %s", data)
	}
	data[i] = '9'
	before := obs.Default().Counter("ml.persist.corrupt.total").Value()
	_, err := LoadModel(bytes.NewReader(data))
	if err == nil || !strings.Contains(err.Error(), "corrupt") {
		t.Fatalf("bit-flipped model load = %v, want corrupt error", err)
	}
	if got := obs.Default().Counter("ml.persist.corrupt.total").Value() - before; got != 1 {
		t.Errorf("ml.persist.corrupt.total delta = %v, want 1", got)
	}
	// Truncation breaks the JSON framing and is caught at decode.
	if _, err := LoadModel(bytes.NewReader(data[:len(data)/2])); err == nil {
		t.Error("truncated model load should error")
	}
}

// TestLegacyChecksumlessLoad keeps backward compatibility: files
// written before the checksum field still load, with a warning.
func TestLegacyChecksumlessLoad(t *testing.T) {
	RegisterModel("ck-legacy", func() Regressor { return &ckLegacyModel{} })
	defer unregister("ck-legacy")
	var warn bytes.Buffer
	old := LegacyWarn
	LegacyWarn = &warn
	defer func() { LegacyWarn = old }()

	before := obs.Default().Counter("ml.persist.legacy.total").Value()
	in := strings.NewReader(`{"name":"ck-legacy","payload":{"vec":[4.5]}}`)
	m, err := LoadModel(in)
	if err != nil {
		t.Fatalf("legacy load: %v", err)
	}
	if got := m.Predict(nil); got[0] != 4.5 {
		t.Errorf("legacy model predicts %v", got)
	}
	if !strings.Contains(warn.String(), "no checksum") {
		t.Errorf("legacy warning = %q", warn.String())
	}
	if got := obs.Default().Counter("ml.persist.legacy.total").Value() - before; got != 1 {
		t.Errorf("ml.persist.legacy.total delta = %v, want 1", got)
	}
}

// TestLoadErrorKinds pins the typed-error contract of the load path:
// a corrupt payload is errors.Is-able as ErrChecksum, a missing file as
// fs.ErrNotExist, and neither wraps the other — the serving reload path
// branches on exactly this distinction.
func TestLoadErrorKinds(t *testing.T) {
	RegisterModel("errkind-test", func() Regressor { return &errKindModel{} })
	defer unregister("errkind-test")

	dir := t.TempDir()
	goodPath := filepath.Join(dir, "good.json")
	if err := SaveModelFile(goodPath, &errKindModel{constantModel{Vec: []float64{1.5}}}); err != nil {
		t.Fatal(err)
	}
	good, err := os.ReadFile(goodPath)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := bytes.Replace(good, []byte("1.5"), []byte("9.5"), 1)
	if bytes.Equal(corrupt, good) {
		t.Fatal("corruption did not change the payload")
	}
	corruptPath := filepath.Join(dir, "corrupt.json")
	if err := os.WriteFile(corruptPath, corrupt, 0o644); err != nil {
		t.Fatal(err)
	}

	old := LegacyWarn
	LegacyWarn = nil
	defer func() { LegacyWarn = old }()
	legacyPath := filepath.Join(dir, "legacy.json")
	if err := os.WriteFile(legacyPath, []byte(`{"name":"errkind-test","payload":{"vec":[2]}}`), 0o644); err != nil {
		t.Fatal(err)
	}

	tests := []struct {
		name         string
		path         string
		wantChecksum bool
		wantMissing  bool
		wantLegacy   bool
	}{
		{name: "intact", path: goodPath},
		{name: "corrupt payload", path: corruptPath, wantChecksum: true},
		{name: "missing file", path: filepath.Join(dir, "missing.json"), wantMissing: true},
		{name: "legacy checksum-less", path: legacyPath, wantLegacy: true},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			m, info, err := LoadModelFileInfo(tc.path)
			if got := errors.Is(err, ErrChecksum); got != tc.wantChecksum {
				t.Errorf("errors.Is(err, ErrChecksum) = %v, want %v (err: %v)", got, tc.wantChecksum, err)
			}
			if got := errors.Is(err, fs.ErrNotExist); got != tc.wantMissing {
				t.Errorf("errors.Is(err, fs.ErrNotExist) = %v, want %v (err: %v)", got, tc.wantMissing, err)
			}
			wantErr := tc.wantChecksum || tc.wantMissing
			if (err != nil) != wantErr {
				t.Fatalf("err = %v, wantErr %v", err, wantErr)
			}
			if wantErr {
				if tc.wantChecksum && info.Name != "errkind-test" {
					t.Errorf("corrupt-load info.Name = %q, want the envelope name", info.Name)
				}
				return
			}
			if m == nil || m.Name() != "errkind-test" {
				t.Fatalf("loaded model = %v", m)
			}
			if info.Legacy != tc.wantLegacy {
				t.Errorf("info.Legacy = %v, want %v", info.Legacy, tc.wantLegacy)
			}
			if !tc.wantLegacy && len(info.Checksum) != 16 {
				t.Errorf("info.Checksum = %q, want 16 hex digits", info.Checksum)
			}
			if info.PayloadBytes <= 0 {
				t.Errorf("info.PayloadBytes = %d, want > 0", info.PayloadBytes)
			}
		})
	}
}

type errKindModel struct{ constantModel }

func (*errKindModel) Name() string { return "errkind-test" }

type ckModel struct{ constantModel }

func (*ckModel) Name() string { return "ck-test" }

type ckCorruptModel struct{ constantModel }

func (*ckCorruptModel) Name() string { return "ck-corrupt" }

type ckLegacyModel struct{ constantModel }

func (*ckLegacyModel) Name() string { return "ck-legacy" }

// TestSaveModelFileAtomic pins the crash-safety contract of every
// envelope write: a save that fails mid-write leaves the previous
// file byte-identical and no temp droppings, and a successful save
// replaces the file in one rename (ISSUE 9 satellite).
func TestSaveModelFileAtomic(t *testing.T) {
	RegisterModel("atomic-test", func() Regressor { return &atomicModel{} })
	defer unregister("atomic-test")
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")

	if err := SaveModelFile(path, &atomicModel{constantModel{Vec: []float64{1, 2}}}); err != nil {
		t.Fatal(err)
	}
	before, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}

	// A write that dies partway (simulating a crash or a marshal
	// failure) must not touch the existing file.
	wantErr := errors.New("boom mid-write")
	err = WriteFileAtomic(path, func(w io.Writer) error {
		if _, werr := w.Write([]byte(`{"name":"atomic-test","payload":`)); werr != nil {
			return werr
		}
		return wantErr
	})
	if !errors.Is(err, wantErr) {
		t.Fatalf("WriteFileAtomic error = %v, want the write error", err)
	}
	after, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(before, after) {
		t.Errorf("failed atomic write changed the file:\nbefore %q\nafter  %q", before, after)
	}

	// A successful overwrite swaps content atomically and leaves the
	// directory free of temp files either way.
	if err := SaveModelFile(path, &atomicModel{constantModel{Vec: []float64{9, 9}}}); err != nil {
		t.Fatal(err)
	}
	if m, err := LoadModelFile(path); err != nil {
		t.Fatal(err)
	} else if got := m.Predict(nil); got[0] != 9 {
		t.Errorf("overwritten model predicts %v", got)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Errorf("temp dropping left behind: %s", e.Name())
		}
	}
	if len(entries) != 1 {
		t.Errorf("dir has %d entries, want just model.json: %v", len(entries), entries)
	}
}

type atomicModel struct{ constantModel }

func (*atomicModel) Name() string { return "atomic-test" }
