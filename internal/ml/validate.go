package ml

import (
	"errors"
	"fmt"
	"math"
)

// ErrBadInput is the typed cause of every predict-boundary validation
// failure: a feature row of the wrong width, or a non-finite feature
// value. Callers branch on it with errors.Is to distinguish "the input
// is garbage" (degrade, reject the request) from infrastructure
// errors. Without this gate a NaN feature silently propagates into a
// NaN RPV, which downstream ranking treats as arbitrary ordering.
var ErrBadInput = errors.New("ml: bad predict input")

// ValidateRow checks one feature vector at the predict boundary: it
// must have exactly want features (want <= 0 skips the width check)
// and every value must be finite. The returned error wraps
// ErrBadInput.
func ValidateRow(x []float64, want int) error {
	if want > 0 && len(x) != want {
		return fmt.Errorf("%w: row has %d features, want %d", ErrBadInput, len(x), want)
	}
	for j, v := range x {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: feature %d is %v", ErrBadInput, j, v)
		}
	}
	return nil
}

// ValidateMatrix checks a whole feature matrix: every row rectangular
// at width want (want <= 0 means the first row's width) and every
// value finite. The error identifies the first offending row and wraps
// ErrBadInput. An empty matrix is valid (an empty batch predicts
// nothing).
func ValidateMatrix(X [][]float64, want int) error {
	if len(X) == 0 {
		return nil
	}
	if want <= 0 {
		want = len(X[0])
		if want == 0 {
			return fmt.Errorf("%w: zero-width feature rows", ErrBadInput)
		}
	}
	for i, row := range X {
		if err := ValidateRow(row, want); err != nil {
			return fmt.Errorf("row %d: %w", i, err)
		}
	}
	return nil
}
