package ml

import (
	"fmt"
	"math"
	"sort"
)

// MAE returns the mean absolute error between predictions and truth,
// averaged over every component of every sample vector — the paper's
// primary metric ("an MAE of 0.1 means the model predicts the relative
// performance within ±0.1 on average across each vector"). It panics on
// shape mismatch or empty input.
func MAE(pred, truth [][]float64) float64 {
	checkPaired(pred, truth)
	sum, count := 0.0, 0
	for i := range pred {
		for j := range pred[i] {
			sum += math.Abs(pred[i][j] - truth[i][j])
			count++
		}
	}
	return sum / float64(count)
}

// MSE returns the mean squared error over every component.
func MSE(pred, truth [][]float64) float64 {
	checkPaired(pred, truth)
	sum, count := 0.0, 0
	for i := range pred {
		for j := range pred[i] {
			d := pred[i][j] - truth[i][j]
			sum += d * d
			count++
		}
	}
	return sum / float64(count)
}

// RMSE returns the root mean squared error.
func RMSE(pred, truth [][]float64) float64 { return math.Sqrt(MSE(pred, truth)) }

// R2 returns the coefficient of determination pooled over all components:
// 1 - SS_res/SS_tot, where SS_tot is taken around the global component
// mean. A constant truth yields NaN.
func R2(pred, truth [][]float64) float64 {
	checkPaired(pred, truth)
	mean, count := 0.0, 0
	for i := range truth {
		for j := range truth[i] {
			mean += truth[i][j]
			count++
		}
	}
	mean /= float64(count)
	ssRes, ssTot := 0.0, 0.0
	for i := range truth {
		for j := range truth[i] {
			d := pred[i][j] - truth[i][j]
			ssRes += d * d
			t := truth[i][j] - mean
			ssTot += t * t
		}
	}
	if ssTot == 0 {
		return math.NaN()
	}
	return 1 - ssRes/ssTot
}

// SameOrder reports whether the two vectors rank their elements
// identically: element i of a must hold the same rank position in a as
// element i of b holds in b, for every i. Ties are broken by index so the
// comparison is deterministic.
func SameOrder(a, b []float64) bool {
	if len(a) != len(b) {
		panic("ml: SameOrder on vectors of different length")
	}
	return rankString(a) == rankString(b)
}

// rankString encodes the argsort permutation of v as a comparable string.
func rankString(v []float64) string {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	buf := make([]byte, len(idx))
	for i, p := range idx {
		buf[i] = byte(p)
	}
	return string(buf)
}

// SOS returns the Same Order Score: the fraction of samples whose
// predicted vector orders the architectures exactly as the true vector
// does (the paper's secondary metric).
func SOS(pred, truth [][]float64) float64 {
	checkPaired(pred, truth)
	hits := 0
	for i := range pred {
		if SameOrder(pred[i], truth[i]) {
			hits++
		}
	}
	return float64(hits) / float64(len(pred))
}

func checkPaired(pred, truth [][]float64) {
	if len(pred) == 0 || len(pred) != len(truth) {
		panic(fmt.Sprintf("ml: paired metric on %d predictions and %d truths", len(pred), len(truth)))
	}
	for i := range pred {
		if len(pred[i]) != len(truth[i]) {
			panic(fmt.Sprintf("ml: sample %d has %d predicted and %d true components", i, len(pred[i]), len(truth[i])))
		}
	}
}

// Evaluation bundles the metrics reported for one model on one test set.
type Evaluation struct {
	Model string
	MAE   float64
	SOS   float64
	RMSE  float64
	R2    float64
	N     int
}

// Evaluate runs a fitted model over the test set and computes all
// metrics.
func Evaluate(m Regressor, X, Y [][]float64) Evaluation {
	pred := PredictBatch(m, X)
	return Evaluation{
		Model: m.Name(),
		MAE:   MAE(pred, Y),
		SOS:   SOS(pred, Y),
		RMSE:  RMSE(pred, Y),
		R2:    R2(pred, Y),
		N:     len(X),
	}
}

// String renders the evaluation as a fixed-width table row.
func (e Evaluation) String() string {
	return fmt.Sprintf("%-16s MAE=%.4f SOS=%.4f RMSE=%.4f R2=%.4f (n=%d)",
		e.Model, e.MAE, e.SOS, e.RMSE, e.R2, e.N)
}
