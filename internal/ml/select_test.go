package ml

import (
	"testing"

	"crossarch/internal/stats"
)

// biasedModel predicts the training mean plus a fixed bias, so
// selection quality is controlled exactly.
type biasedModel struct {
	constantModel
	bias float64
}

func (m *biasedModel) Name() string { return "biased" }
func (m *biasedModel) Fit(X, Y [][]float64) error {
	if err := m.constantModel.Fit(X, Y); err != nil {
		return err
	}
	mean := make([]float64, len(Y[0]))
	for _, row := range Y {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] = mean[j]/float64(len(Y)) + m.bias
	}
	m.Vec = mean
	return nil
}

func TestSelectModelPicksLowestMAE(t *testing.T) {
	rng := stats.NewRNG(1)
	n := 200
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		X[i] = []float64{rng.Float64()}
		Y[i] = []float64{rng.Normal(5, 1)}
	}
	candidates := []Candidate{
		{Name: "bias-2", Factory: func() Regressor { return &biasedModel{bias: 2} }},
		{Name: "bias-0", Factory: func() Regressor { return &biasedModel{bias: 0} }},
		{Name: "bias-1", Factory: func() Regressor { return &biasedModel{bias: 1} }},
	}
	res, err := SelectModel(candidates, X, Y, 5, 7)
	if err != nil {
		t.Fatal(err)
	}
	if res.Best != "bias-0" {
		t.Errorf("Best = %s, want bias-0", res.Best)
	}
	// Scores sorted ascending by MAE.
	for i := 1; i < len(res.Scores); i++ {
		if res.Scores[i-1].CV.MeanMAE > res.Scores[i].CV.MeanMAE {
			t.Error("scores not sorted")
		}
	}
	if len(res.Scores) != 3 {
		t.Errorf("scores = %d", len(res.Scores))
	}
}

func TestSelectModelErrors(t *testing.T) {
	if _, err := SelectModel(nil, nil, nil, 5, 1); err == nil {
		t.Error("no candidates should error")
	}
	bad := []Candidate{{Name: "x", Factory: func() Regressor { return &failingModel{} }}}
	X := [][]float64{{1}, {2}, {3}, {4}}
	Y := [][]float64{{1}, {2}, {3}, {4}}
	if _, err := SelectModel(bad, X, Y, 2, 1); err == nil {
		t.Error("failing candidate should error")
	}
}
