// Package ml defines the regression-model interface shared by every
// learner in the repository (XGBoost-style boosting, decision forest,
// ridge regression, mean baseline), together with the evaluation metrics
// used in the paper (mean absolute error and same-order score),
// train/test utilities, k-fold cross-validation, and JSON model
// persistence.
package ml

import (
	"fmt"

	"crossarch/internal/obs"
)

// Regressor is a multi-output regression model. X is row-major
// (samples x features); Y is samples x outputs. Implementations must
// validate shapes in Fit and may not retain the caller's slices after
// Fit returns (they may copy).
type Regressor interface {
	// Fit trains the model. Calling Fit again retrains from scratch.
	Fit(X, Y [][]float64) error
	// Predict returns the output vector for a single feature vector. It
	// panics if called before a successful Fit.
	Predict(x []float64) []float64
	// Name identifies the learner in experiment tables, e.g. "xgboost".
	Name() string
}

// FeatureImporter is implemented by learners that expose per-feature
// importance scores (the tree ensembles). Importances are normalized to
// sum to 1 and are indexed like the training feature columns.
type FeatureImporter interface {
	FeatureImportances() []float64
}

// OutputSizer is implemented by regressors that know their output
// width without predicting. PredictBatch uses it to size the output
// matrix instead of burning a throwaway Predict call on the first row —
// which matters for stateful wrappers like DegradingPredictor, where
// every prediction consumes a fault-draw key.
type OutputSizer interface {
	NumOutputs() int
}

// PredictBatch applies a regressor to every row of X. Models that
// implement BatchRegressor (the tree ensembles) take the vectorized
// path — one contiguous output allocation, rows chunked across cores —
// which produces bitwise-identical results to the row-at-a-time
// fallback used for everything else.
func PredictBatch(m Regressor, X [][]float64) [][]float64 {
	if len(X) == 0 {
		return make([][]float64, 0)
	}
	start := obs.Now()
	var out [][]float64
	if br, ok := m.(BatchRegressor); ok {
		width := 0
		if os, ok := m.(OutputSizer); ok {
			width = os.NumOutputs()
		}
		if width <= 0 {
			width = len(m.Predict(X[0]))
		}
		out = NewMatrix(len(X), width)
		br.PredictBatch(X, out)
	} else {
		out = make([][]float64, len(X))
		for i, x := range X {
			p := m.Predict(x)
			out[i] = append([]float64(nil), p...)
		}
	}
	obs.Add("ml.predict.rows.total", float64(len(X)))
	obs.Set("ml.predict.batch.rows", float64(len(X)))
	obs.Observe("ml.predict.batch.seconds", obs.SinceSeconds(start))
	return out
}

// CheckFitShapes validates the common preconditions shared by all
// learners: non-empty X, matching Y length, rectangular rows, and at
// least one output. It returns the feature and output dimensions.
func CheckFitShapes(X, Y [][]float64) (features, outputs int, err error) {
	if len(X) == 0 {
		return 0, 0, fmt.Errorf("ml: empty training set")
	}
	if len(Y) != len(X) {
		return 0, 0, fmt.Errorf("ml: X has %d rows but Y has %d", len(X), len(Y))
	}
	features = len(X[0])
	if features == 0 {
		return 0, 0, fmt.Errorf("ml: zero-width feature rows")
	}
	outputs = len(Y[0])
	if outputs == 0 {
		return 0, 0, fmt.Errorf("ml: zero-width target rows")
	}
	for i, row := range X {
		if len(row) != features {
			return 0, 0, fmt.Errorf("ml: X row %d has %d features, want %d", i, len(row), features)
		}
	}
	for i, row := range Y {
		if len(row) != outputs {
			return 0, 0, fmt.Errorf("ml: Y row %d has %d outputs, want %d", i, len(row), outputs)
		}
	}
	return features, outputs, nil
}

// Take extracts the rows of m at the given indices (shared backing rows,
// no per-cell copying).
func Take(m [][]float64, idx []int) [][]float64 {
	out := make([][]float64, len(idx))
	for j, i := range idx {
		out[j] = m[i]
	}
	return out
}
