package ml

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"crossarch/internal/stats"
)

func TestMAEKnown(t *testing.T) {
	pred := [][]float64{{1, 2}, {3, 4}}
	truth := [][]float64{{1, 3}, {5, 4}}
	// |0| + |1| + |2| + |0| = 3 over 4 components.
	if got := MAE(pred, truth); got != 0.75 {
		t.Errorf("MAE = %v, want 0.75", got)
	}
	if got := MAE(pred, pred); got != 0 {
		t.Errorf("self MAE = %v", got)
	}
}

func TestMSEAndRMSE(t *testing.T) {
	pred := [][]float64{{0}, {0}}
	truth := [][]float64{{3}, {4}}
	if got := MSE(pred, truth); got != 12.5 {
		t.Errorf("MSE = %v, want 12.5", got)
	}
	if got := RMSE(pred, truth); math.Abs(got-math.Sqrt(12.5)) > 1e-12 {
		t.Errorf("RMSE = %v", got)
	}
}

func TestR2(t *testing.T) {
	truth := [][]float64{{1}, {2}, {3}, {4}}
	if got := R2(truth, truth); got != 1 {
		t.Errorf("perfect R2 = %v", got)
	}
	meanPred := [][]float64{{2.5}, {2.5}, {2.5}, {2.5}}
	if got := R2(meanPred, truth); math.Abs(got) > 1e-12 {
		t.Errorf("mean-prediction R2 = %v, want 0", got)
	}
	constTruth := [][]float64{{5}, {5}}
	if !math.IsNaN(R2(constTruth, constTruth)) {
		t.Error("R2 with constant truth should be NaN")
	}
}

func TestSameOrder(t *testing.T) {
	cases := []struct {
		a, b []float64
		want bool
	}{
		{[]float64{1, 2, 3}, []float64{10, 20, 30}, true},
		{[]float64{1, 2, 3}, []float64{10, 30, 20}, false},
		{[]float64{3, 1, 2}, []float64{0.3, 0.1, 0.2}, true},
		{[]float64{1}, []float64{5}, true},
		{[]float64{2, 1}, []float64{1, 2}, false},
	}
	for _, c := range cases {
		if got := SameOrder(c.a, c.b); got != c.want {
			t.Errorf("SameOrder(%v, %v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

func TestSameOrderReflexiveProperty(t *testing.T) {
	err := quick.Check(func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 2 + r.Intn(6)
		v := make([]float64, n)
		for i := range v {
			v[i] = r.Normal(0, 1)
		}
		// A vector is always in the same order as any positive affine
		// transform of itself.
		scaled := make([]float64, n)
		for i := range v {
			scaled[i] = 2*v[i] + 10
		}
		return SameOrder(v, v) && SameOrder(v, scaled)
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}

func TestSameOrderPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	SameOrder([]float64{1}, []float64{1, 2})
}

func TestSOS(t *testing.T) {
	pred := [][]float64{{1, 2}, {2, 1}, {1, 2}}
	truth := [][]float64{{5, 9}, {9, 5}, {9, 5}}
	// Rows 0 and 1 preserve order; row 2 does not.
	if got := SOS(pred, truth); math.Abs(got-2.0/3) > 1e-12 {
		t.Errorf("SOS = %v, want 2/3", got)
	}
}

func TestMetricsPanicOnMismatch(t *testing.T) {
	for name, fn := range map[string]func(){
		"empty":        func() { MAE(nil, nil) },
		"len":          func() { MAE([][]float64{{1}}, [][]float64{{1}, {2}}) },
		"ragged":       func() { MAE([][]float64{{1}}, [][]float64{{1, 2}}) },
		"sos mismatch": func() { SOS([][]float64{{1}}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestEvaluationString(t *testing.T) {
	e := Evaluation{Model: "xgboost", MAE: 0.11, SOS: 0.86, N: 100}
	s := e.String()
	if !strings.Contains(s, "xgboost") || !strings.Contains(s, "0.11") {
		t.Errorf("Evaluation.String = %q", s)
	}
}

func TestCheckFitShapes(t *testing.T) {
	X := [][]float64{{1, 2}, {3, 4}}
	Y := [][]float64{{1}, {2}}
	f, o, err := CheckFitShapes(X, Y)
	if err != nil || f != 2 || o != 1 {
		t.Fatalf("CheckFitShapes = %d,%d,%v", f, o, err)
	}
	bad := [][][2][][]float64{}
	_ = bad
	cases := []struct {
		x, y [][]float64
	}{
		{nil, nil},
		{X, [][]float64{{1}}},
		{[][]float64{{}}, [][]float64{{1}}},
		{X, [][]float64{{}, {}}},
		{[][]float64{{1, 2}, {3}}, Y},
		{X, [][]float64{{1}, {2, 3}}},
	}
	for i, c := range cases {
		if _, _, err := CheckFitShapes(c.x, c.y); err == nil {
			t.Errorf("case %d: expected error", i)
		}
	}
}

func TestTake(t *testing.T) {
	m := [][]float64{{1}, {2}, {3}}
	got := Take(m, []int{2, 0})
	if len(got) != 2 || got[0][0] != 3 || got[1][0] != 1 {
		t.Errorf("Take = %v", got)
	}
}
