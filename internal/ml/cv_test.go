package ml

import (
	"fmt"
	"testing"

	"crossarch/internal/stats"
)

// constantModel predicts a fixed vector; used to exercise the CV plumbing
// without depending on learner packages (which would create an import
// cycle in tests).
type constantModel struct {
	Vec []float64 `json:"vec"`
	fit bool
}

func (c *constantModel) Name() string { return "constant-test" }
func (c *constantModel) Fit(X, Y [][]float64) error {
	if _, _, err := CheckFitShapes(X, Y); err != nil {
		return err
	}
	c.fit = true
	if c.Vec == nil {
		c.Vec = append([]float64(nil), Y[0]...)
	}
	return nil
}
func (c *constantModel) Predict(x []float64) []float64 {
	if !c.fit && c.Vec == nil {
		panic("predict before fit")
	}
	return append([]float64(nil), c.Vec...)
}

// failingModel always errors in Fit.
type failingModel struct{ constantModel }

func (f *failingModel) Fit(X, Y [][]float64) error { return fmt.Errorf("boom") }

func cvData(n int) (X, Y [][]float64) {
	X = make([][]float64, n)
	Y = make([][]float64, n)
	for i := range X {
		X[i] = []float64{float64(i)}
		Y[i] = []float64{1, 2}
	}
	return X, Y
}

func TestCrossValidateFoldCount(t *testing.T) {
	X, Y := cvData(50)
	res, err := CrossValidate(func() Regressor { return &constantModel{} }, X, Y, 5, stats.NewRNG(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Folds) != 5 {
		t.Fatalf("folds = %d", len(res.Folds))
	}
	total := 0
	for _, f := range res.Folds {
		total += f.N
	}
	if total != 50 {
		t.Errorf("validation rows total %d, want 50", total)
	}
	// Constant labels => constant model is perfect.
	if res.MeanMAE != 0 {
		t.Errorf("MeanMAE = %v, want 0", res.MeanMAE)
	}
	if res.MeanSOS != 1 {
		t.Errorf("MeanSOS = %v, want 1", res.MeanSOS)
	}
}

func TestCrossValidateErrors(t *testing.T) {
	X, Y := cvData(10)
	if _, err := CrossValidate(func() Regressor { return &constantModel{} }, X, Y, 1, stats.NewRNG(1)); err == nil {
		t.Error("k=1 should error")
	}
	if _, err := CrossValidate(func() Regressor { return &constantModel{} }, X, Y, 11, stats.NewRNG(1)); err == nil {
		t.Error("k>n should error")
	}
	if _, err := CrossValidate(func() Regressor { return &failingModel{} }, X, Y, 2, stats.NewRNG(1)); err == nil {
		t.Error("failing fit should propagate")
	}
	if _, err := CrossValidate(func() Regressor { return &constantModel{} }, nil, nil, 2, stats.NewRNG(1)); err == nil {
		t.Error("empty data should error")
	}
}

func TestTrainTestSplitMatrices(t *testing.T) {
	X, Y := cvData(100)
	trX, trY, teX, teY, err := TrainTestSplit(X, Y, 0.1, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if len(teX) != 10 || len(trX) != 90 || len(trY) != 90 || len(teY) != 10 {
		t.Fatalf("split sizes %d/%d", len(trX), len(teX))
	}
	// Partition check via feature values (all distinct).
	seen := map[float64]bool{}
	for _, r := range trX {
		seen[r[0]] = true
	}
	for _, r := range teX {
		if seen[r[0]] {
			t.Fatalf("row %v in both train and test", r[0])
		}
		seen[r[0]] = true
	}
	if len(seen) != 100 {
		t.Errorf("union = %d rows", len(seen))
	}
}

func TestTrainTestSplitErrors(t *testing.T) {
	X, Y := cvData(10)
	if _, _, _, _, err := TrainTestSplit(X, Y, 0, stats.NewRNG(1)); err == nil {
		t.Error("frac 0 should error")
	}
	if _, _, _, _, err := TrainTestSplit(X, Y, 1, stats.NewRNG(1)); err == nil {
		t.Error("frac 1 should error")
	}
	if _, _, _, _, err := TrainTestSplit(nil, nil, 0.5, stats.NewRNG(1)); err == nil {
		t.Error("empty data should error")
	}
}

func TestPredictBatch(t *testing.T) {
	m := &constantModel{Vec: []float64{7, 8}}
	out := PredictBatch(m, [][]float64{{1}, {2}, {3}})
	if len(out) != 3 || out[2][1] != 8 {
		t.Errorf("PredictBatch = %v", out)
	}
	// Batch rows must be independent copies.
	out[0][0] = -1
	if m.Vec[0] == -1 {
		t.Error("PredictBatch aliases model state")
	}
}
