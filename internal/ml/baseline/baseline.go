// Package baseline provides the mean-vector predictor used in the paper
// as the floor all learned models must beat: it ignores the features and
// always predicts the mean target vector of the training set.
package baseline

import (
	"fmt"

	"crossarch/internal/ml"
)

// Mean is a Regressor that predicts the training-set mean target vector
// for every input. The zero value is ready for Fit.
type Mean struct {
	// MeanVec is the fitted per-output mean; exported for persistence.
	MeanVec []float64 `json:"mean"`
}

var _ ml.Regressor = (*Mean)(nil)

// New returns an unfitted mean predictor.
func New() *Mean { return &Mean{} }

// Name implements ml.Regressor.
func (m *Mean) Name() string { return "mean" }

// Fit computes the per-output mean of Y. X participates only in shape
// validation.
func (m *Mean) Fit(X, Y [][]float64) error {
	_, outputs, err := ml.CheckFitShapes(X, Y)
	if err != nil {
		return err
	}
	mean := make([]float64, outputs)
	for _, row := range Y {
		for j, v := range row {
			mean[j] += v
		}
	}
	for j := range mean {
		mean[j] /= float64(len(Y))
	}
	m.MeanVec = mean
	return nil
}

// Predict returns a copy of the fitted mean vector.
func (m *Mean) Predict(x []float64) []float64 {
	if m.MeanVec == nil {
		panic(fmt.Sprintf("%s: Predict before Fit", m.Name()))
	}
	return append([]float64(nil), m.MeanVec...)
}
