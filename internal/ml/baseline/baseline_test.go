package baseline

import (
	"bytes"
	"math"
	"testing"

	"crossarch/internal/ml"
)

func TestMeanPredictor(t *testing.T) {
	X := [][]float64{{1}, {2}, {3}, {4}}
	Y := [][]float64{{1, 10}, {2, 20}, {3, 30}, {4, 40}}
	m := New()
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	got := m.Predict([]float64{999})
	if got[0] != 2.5 || got[1] != 25 {
		t.Errorf("mean prediction = %v, want [2.5 25]", got)
	}
	// Prediction must be independent of the input.
	other := m.Predict([]float64{-999})
	if other[0] != got[0] || other[1] != got[1] {
		t.Error("mean prediction varies with input")
	}
	// Returned slice must be a copy.
	got[0] = -1
	if m.Predict(nil)[0] == -1 {
		t.Error("Predict aliases internal state")
	}
}

func TestMeanPredictorIsOptimalConstantForMSE(t *testing.T) {
	// Among constant predictors the mean minimizes MSE; verify it beats
	// a slightly perturbed constant.
	X := [][]float64{{0}, {0}, {0}}
	Y := [][]float64{{1}, {5}, {6}}
	m := New()
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	pred := ml.PredictBatch(m, X)
	base := ml.MSE(pred, Y)
	for i := range pred {
		pred[i][0] += 0.5
	}
	if ml.MSE(pred, Y) <= base {
		t.Error("mean is not the optimal constant under MSE")
	}
}

func TestMeanFitErrors(t *testing.T) {
	m := New()
	if err := m.Fit(nil, nil); err == nil {
		t.Error("empty fit should error")
	}
	if err := m.Fit([][]float64{{1}}, [][]float64{{1}, {2}}); err == nil {
		t.Error("mismatched fit should error")
	}
}

func TestMeanPredictBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic before fit")
		}
	}()
	New().Predict([]float64{1})
}

func TestMeanPersistence(t *testing.T) {
	m := New()
	if err := m.Fit([][]float64{{1}, {2}}, [][]float64{{3}, {5}}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ml.SaveModel(&buf, m); err != nil {
		t.Fatal(err)
	}
	back, err := ml.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got := back.Predict(nil)[0]; math.Abs(got-4) > 1e-12 {
		t.Errorf("persisted mean = %v, want 4", got)
	}
}

func TestMeanRefit(t *testing.T) {
	m := New()
	if err := m.Fit([][]float64{{1}}, [][]float64{{10}}); err != nil {
		t.Fatal(err)
	}
	if err := m.Fit([][]float64{{1}}, [][]float64{{20}}); err != nil {
		t.Fatal(err)
	}
	if got := m.Predict(nil)[0]; got != 20 {
		t.Errorf("refit mean = %v, want 20", got)
	}
}
