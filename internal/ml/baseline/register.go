package baseline

import "crossarch/internal/ml"

func init() {
	ml.RegisterModel("mean", func() ml.Regressor { return New() })
}
