package ml

import (
	"fmt"
	"math"
	"sync"
	"sync/atomic"

	"crossarch/internal/fault"
	"crossarch/internal/obs"
)

// Ladder levels, in degradation order. Every prediction resolves at
// exactly one level; the identity floor cannot fail, so a batch always
// returns a full output matrix no matter what faults fire.
const (
	// LevelPrimary is the trained model (xgboost in the paper pipeline).
	LevelPrimary = iota
	// LevelFallback is the feature-independent baseline (per-arch mean).
	LevelFallback
	// LevelIdentity is the unit relative-performance vector: "assume all
	// architectures perform alike". Always succeeds.
	LevelIdentity

	numLevels
)

// LevelName names a ladder level in tables and logs.
func LevelName(level int) string {
	switch level {
	case LevelPrimary:
		return "primary"
	case LevelFallback:
		return "fallback"
	case LevelIdentity:
		return "identity"
	default:
		return fmt.Sprintf("level(%d)", level)
	}
}

// DegradeOpts configures a DegradingPredictor. The zero value is a
// fault-free ladder with the documented breaker defaults.
type DegradeOpts struct {
	// Injector supplies the fault draws; nil injects nothing.
	Injector *fault.Injector
	// Clock receives retry backoff sleeps; nil discards elapsed time.
	Clock *fault.Clock
	// Backoff bounds the per-row retry loop for transient predict
	// errors (zero value = fault.Backoff defaults).
	Backoff fault.Backoff
	// BreakerThreshold is the number of consecutive primary failures
	// that opens the circuit breaker (0 = 8; negative disables the
	// breaker entirely).
	BreakerThreshold int
	// BreakerCooldown is the number of rows served at fallback while
	// the breaker is open before one probe row retries the primary
	// (0 or negative = 64).
	BreakerCooldown int
}

// DegradingPredictor is the graceful-degradation prediction ladder:
// primary model, then feature-independent fallback, then the unit-RPV
// identity, which always succeeds. Faults — injected or organic
// (non-finite inputs, panicking models) — demote individual rows down
// the ladder instead of failing the batch, and a circuit breaker stops
// hammering a primary that fails many rows in a row.
//
// Planning (which level serves which row, fault draws, breaker state)
// is serialized under a mutex over a monotone row-sequence counter, so
// a single stream of batches is bitwise-reproducible regardless of how
// prediction work is later scheduled across goroutines. With a nil
// injector and healthy models, batch output is bitwise identical to
// calling the primary directly.
type DegradingPredictor struct {
	primary  Regressor
	fallback Regressor
	outputs  int
	opts     DegradeOpts

	mu       sync.Mutex
	seq      uint64 // next row-sequence key for fault draws
	consec   int    // consecutive primary failures
	cooldown int    // rows remaining with the breaker open
	halfOpen bool   // next primary row is a probe after cooldown

	// maxLevel is the deepest ladder level any row has resolved to
	// since construction or the last ResetMaxLevel — the degradation
	// high-water the rollout driver's health gate reads (a replica
	// whose candidate model pushes rows off the primary rung is
	// regressing even when every request still answers 200).
	maxLevel atomic.Int64
}

var (
	_ BatchRegressor = (*DegradingPredictor)(nil)
	_ OutputSizer    = (*DegradingPredictor)(nil)
)

// NewDegradingPredictor builds the ladder. primary and fallback may
// each be nil (rows plan past a missing level); outputs is the
// prediction width and must be positive so the identity floor can size
// its all-ones vector even with both models absent.
func NewDegradingPredictor(primary, fallback Regressor, outputs int, opts DegradeOpts) (*DegradingPredictor, error) {
	if outputs <= 0 {
		return nil, fmt.Errorf("ml: degrading predictor needs outputs > 0, got %d", outputs)
	}
	if opts.BreakerThreshold == 0 {
		opts.BreakerThreshold = 8
	}
	if opts.BreakerCooldown <= 0 {
		opts.BreakerCooldown = 64
	}
	return &DegradingPredictor{primary: primary, fallback: fallback, outputs: outputs, opts: opts}, nil
}

// Name identifies the ladder and its rungs, e.g.
// "degrading(xgboost->mean->identity)".
func (d *DegradingPredictor) Name() string {
	p, f := "none", "none"
	if d.primary != nil {
		p = d.primary.Name()
	}
	if d.fallback != nil {
		f = d.fallback.Name()
	}
	return fmt.Sprintf("degrading(%s->%s->identity)", p, f)
}

// NumOutputs implements OutputSizer.
func (d *DegradingPredictor) NumOutputs() int { return d.outputs }

// MaxLevel returns the deepest ladder level any row has resolved to
// since construction or the last ResetMaxLevel: LevelPrimary when
// every prediction came off the primary model, deeper when anything
// degraded. Safe for concurrent use with PredictBatch.
func (d *DegradingPredictor) MaxLevel() int { return int(d.maxLevel.Load()) }

// ResetMaxLevel clears the degradation high-water, typically after a
// model swap so the new generation's ladder depth is measured on its
// own traffic.
func (d *DegradingPredictor) ResetMaxLevel() { d.maxLevel.Store(LevelPrimary) }

// Fit trains both rungs on the same data. The target width must match
// the width the ladder was built for.
func (d *DegradingPredictor) Fit(X, Y [][]float64) error {
	_, outputs, err := CheckFitShapes(X, Y)
	if err != nil {
		return err
	}
	if outputs != d.outputs {
		return fmt.Errorf("ml: degrading predictor built for %d outputs, targets have %d", d.outputs, outputs)
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.primary != nil {
		if err := d.primary.Fit(X, Y); err != nil {
			return err
		}
	}
	if d.fallback != nil {
		if err := d.fallback.Fit(X, Y); err != nil {
			return err
		}
	}
	return nil
}

// Predict resolves a single row through the ladder.
func (d *DegradingPredictor) Predict(x []float64) []float64 {
	out := NewMatrix(1, d.outputs)
	d.PredictBatch([][]float64{x}, out)
	return out[0]
}

// rowPlan is the planned treatment of one row: the level it starts at
// and the feature to impute after a counter dropout (-1 = none).
type rowPlan struct {
	level  int
	impute int
}

// ladderScratch holds PredictBatch's per-call working slices. Pooling
// them keeps the fault-free serving path allocation-free in steady
// state; the scratch carries no model state, so one pool serves every
// predictor.
type ladderScratch struct {
	plans      []rowPlan
	levels     []int
	primaryIdx []int
}

var ladderScratchPool = sync.Pool{New: func() any { return new(ladderScratch) }}

// PredictBatch resolves every row of X through the ladder into out
// (len(X) rows of width NumOutputs). It never panics on model
// failure: a panicking primary row degrades that row, not the batch.
// Level counts are recorded in obs and always sum to len(X).
func (d *DegradingPredictor) PredictBatch(X, out [][]float64) {
	if len(X) == 0 {
		return
	}
	sc := ladderScratchPool.Get().(*ladderScratch)
	n := len(X)
	if cap(sc.plans) < n {
		sc.plans = make([]rowPlan, n)
	}
	if cap(sc.levels) < n {
		sc.levels = make([]int, n)
	}
	plans := sc.plans[:n]
	d.plan(X, plans)

	// Resolved level per row. Rows are written by at most one goroutine
	// (disjoint blocks) and read only after the pool's barrier.
	levels := sc.levels[:n]
	primaryIdx := sc.primaryIdx[:0]
	pure := true // every row primary, nothing imputed: the fault-free fast path
	for i, p := range plans {
		levels[i] = p.level
		if p.level == LevelPrimary {
			primaryIdx = append(primaryIdx, i)
			if p.impute >= 0 {
				pure = false
			}
		} else {
			pure = false
		}
	}

	if pure {
		if !d.predictPrimaryWhole(X, out) {
			// The whole batch panicked; isolate row by row so only the
			// offending rows degrade.
			d.predictPrimaryRows(X, out, primaryIdx, plans, levels)
		}
	} else if len(primaryIdx) > 0 {
		d.predictPrimaryRows(X, out, primaryIdx, plans, levels)
	}

	for i := range X {
		switch levels[i] {
		case LevelFallback:
			d.predictFallbackRow(X[i], out[i], &levels[i])
		case LevelIdentity:
			identityRow(out[i])
		}
	}

	var counts [numLevels]int
	for _, lv := range levels {
		counts[lv]++
	}
	obs.Add("ml.ladder.primary.rows", float64(counts[LevelPrimary]))
	obs.Add("ml.ladder.fallback.rows", float64(counts[LevelFallback]))
	obs.Add("ml.ladder.identity.rows", float64(counts[LevelIdentity]))
	worst := LevelPrimary
	for lv := numLevels - 1; lv > LevelPrimary; lv-- {
		if counts[lv] > 0 {
			worst = lv
			break
		}
	}
	obs.Set("ml.ladder.level", float64(worst))
	for {
		cur := d.maxLevel.Load()
		if int64(worst) <= cur || d.maxLevel.CompareAndSwap(cur, int64(worst)) {
			break
		}
	}

	// Pool the scratch on the way out (keeping any primaryIdx growth).
	// No defer: if a panic ever escaped the containment above, dropping
	// the scratch on the floor is the correct response anyway.
	sc.primaryIdx = primaryIdx
	ladderScratchPool.Put(sc)
}

// plan assigns a ladder level to every row of the batch, filling the
// caller-owned plans slice (len(X) entries). It runs sequentially
// under the mutex so breaker transitions and fault-draw keys depend
// only on row order, never on goroutine scheduling.
func (d *DegradingPredictor) plan(X [][]float64, plans []rowPlan) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i := range X {
		plans[i] = d.planRow(X[i])
	}
}

// planRow decides one row's starting level, consuming the next
// row-sequence key. Caller holds d.mu.
func (d *DegradingPredictor) planRow(x []float64) rowPlan {
	key := d.seq
	d.seq++
	p := rowPlan{level: LevelPrimary, impute: -1}
	switch {
	case d.primary == nil:
		p.level = LevelFallback
	case d.cooldown > 0:
		// Breaker open: serve at fallback without touching the primary.
		d.cooldown--
		if d.cooldown == 0 {
			d.halfOpen = true
		}
		obs.Inc("ml.breaker.skipped.total")
		p.level = LevelFallback
	default:
		inj := d.opts.Injector
		if inj.Hit(fault.CounterDropout, key) && len(x) > 0 {
			// A counter sample never arrived. Pick which feature via the
			// keyed companion draw and impute it; the row stays primary.
			f := int(inj.U(fault.CounterDropout, key) * float64(len(x)))
			if f >= len(x) {
				f = len(x) - 1
			}
			p.impute = f
			obs.Inc("ml.degrade.imputed.total")
		}
		failed := inj.Hit(fault.FeatureCorrupt, key) || !rowFinite(x, p.impute)
		if !failed && inj != nil && inj.Plan.Rate(fault.PredictError) > 0 {
			err := fault.Retry(d.opts.Clock, d.opts.Backoff, func(attempt int) error {
				if inj.Hit(fault.PredictError, fault.Key2(key, uint64(attempt))) {
					return fmt.Errorf("ml: injected transient predict error (row key %d, attempt %d)", key, attempt)
				}
				return nil
			})
			failed = err != nil
		}
		if failed {
			p.level = LevelFallback
			d.noteFailure()
		} else {
			d.noteSuccess()
		}
	}
	if p.level == LevelFallback && d.fallback == nil {
		p.level = LevelIdentity
	}
	return p
}

// noteFailure advances the breaker after a planned primary failure.
// Caller holds d.mu.
func (d *DegradingPredictor) noteFailure() {
	if d.opts.BreakerThreshold < 0 {
		return
	}
	if d.halfOpen {
		// The probe row failed: reopen immediately.
		d.halfOpen = false
		d.openBreaker()
		return
	}
	d.consec++
	if d.consec >= d.opts.BreakerThreshold {
		d.openBreaker()
	}
}

// noteSuccess resets the breaker after a planned primary success.
// Caller holds d.mu.
func (d *DegradingPredictor) noteSuccess() {
	d.consec = 0
	d.halfOpen = false
}

// openBreaker opens the circuit for the configured cooldown. Caller
// holds d.mu.
func (d *DegradingPredictor) openBreaker() {
	d.consec = 0
	d.cooldown = d.opts.BreakerCooldown
	obs.Inc("ml.breaker.open.total")
}

// predictPrimaryWhole runs the primary over the whole batch on its
// native path — bitwise identical to using the primary directly — and
// reports whether it completed. A panic anywhere fails the whole call;
// the caller re-runs with per-row isolation.
func (d *DegradingPredictor) predictPrimaryWhole(X, out [][]float64) (ok bool) {
	defer func() {
		if r := recover(); r != nil {
			ok = false
		}
	}()
	if br, isBatch := d.primary.(BatchRegressor); isBatch {
		br.PredictBatch(X, out)
	} else {
		for i, x := range X {
			writePred(out[i], d.primary.Predict(x))
		}
	}
	return true
}

// predictPrimaryRows runs the primary row by row over the planned
// subset with panic isolation: a row that panics is demoted one level
// and the rest of the batch is untouched. Prediction is read-only on a
// fitted model, so the per-row re-run after a block panic is safe.
func (d *DegradingPredictor) predictPrimaryRows(X, out [][]float64, idx []int, plans []rowPlan, levels []int) {
	ParallelRowsSafe(len(idx), func(lo, hi int) {
		for j := lo; j < hi; j++ {
			i := idx[j]
			x := X[i]
			if f := plans[i].impute; f >= 0 {
				cp := append([]float64(nil), x...)
				cp[f] = 0 // features are z-scored: 0 is the training mean
				x = cp
			}
			writePred(out[i], d.primary.Predict(x))
		}
	}, func(j int, v any) {
		obs.Inc("ml.ladder.panic.total")
		i := idx[j]
		levels[i] = LevelFallback
		if d.fallback == nil {
			levels[i] = LevelIdentity
		}
	})
}

// predictFallbackRow resolves one row at the fallback rung; a panic
// there drops the row to the identity floor.
func (d *DegradingPredictor) predictFallbackRow(x, out []float64, level *int) {
	defer func() {
		if r := recover(); r != nil {
			obs.Inc("ml.ladder.panic.total")
			*level = LevelIdentity
			identityRow(out)
		}
	}()
	writePred(out, d.fallback.Predict(x))
}

// identityRow fills the unit relative-performance vector: every
// architecture predicted to perform identically.
func identityRow(out []float64) {
	for j := range out {
		out[j] = 1
	}
}

// writePred copies a model's prediction into the output row, panicking
// on width mismatch so the ladder's panic isolation degrades the row
// instead of silently truncating it.
func writePred(dst, src []float64) {
	if len(src) != len(dst) {
		panic(fmt.Sprintf("ml: prediction width %d, want %d", len(src), len(dst)))
	}
	copy(dst, src)
}

// rowFinite reports whether every feature except the imputed one is
// finite; a non-finite surviving feature means the row cannot be
// trusted at the primary rung.
func rowFinite(x []float64, impute int) bool {
	for j, v := range x {
		if j == impute {
			continue
		}
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return false
		}
	}
	return true
}
