package ml

import (
	"bytes"
	"errors"
	"io"
	"sync"
	"testing"
)

// fuzzRegisterOnce guards the fuzz learner registration so repeated
// fuzz-engine entries into the target never hit the duplicate panic.
var fuzzRegisterOnce sync.Once

// FuzzLoadModel throws truncated, bit-flipped, and garbage envelope
// bytes at the model load path. The contract under test is the
// registry's foundation: a malformed artifact must come back as a
// typed, branchable error — ErrChecksum for detectable corruption,
// ErrBadInput for bytes that never were a loadable envelope — and the
// loader must never panic, whatever the bytes. The seed corpus is
// built from a real serialized envelope so mutations start from the
// interesting region of the input space.
func FuzzLoadModel(f *testing.F) {
	fuzzRegisterOnce.Do(func() {
		RegisterModel("fuzz-load-test", func() Regressor { return &constantModel{} })
	})
	prevWarn := LegacyWarn
	LegacyWarn = io.Discard
	f.Cleanup(func() { LegacyWarn = prevWarn })

	var real bytes.Buffer
	if err := SaveModel(&real, &constantModel{Vec: []float64{1.25, -2.5, 3}}); err != nil {
		f.Fatal(err)
	}
	env := real.Bytes()
	f.Add(env)
	f.Add(env[:len(env)/2])          // truncated mid-payload
	f.Add(env[:len(env)-2])          // truncated at the tail
	f.Add([]byte(`{}`))              // empty envelope
	f.Add([]byte(`not json at all`)) // garbage
	f.Add([]byte(`{"name":"never-registered","checksum":"0000000000000000","payload":{}}`))
	flipped := append([]byte(nil), env...)
	flipped[len(flipped)/2] ^= 0x40 // bit flip inside the payload
	f.Add(flipped)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, info, err := LoadModelInfo(bytes.NewReader(data))
		if err != nil {
			if m != nil {
				t.Fatalf("load returned both a model and error %v", err)
			}
			if !errors.Is(err, ErrChecksum) && !errors.Is(err, ErrBadInput) {
				t.Fatalf("load error is neither ErrChecksum nor ErrBadInput: %v", err)
			}
			return
		}
		if m == nil {
			t.Fatal("nil model with nil error")
		}
		// A successful load promises envelope metadata consistent with
		// the checksum contract: either a verified digest or an
		// explicitly legacy (checksum-less) file.
		if !info.Legacy && len(info.Checksum) != 16 {
			t.Fatalf("loaded info.Checksum = %q, want 16 hex digits", info.Checksum)
		}
	})
}
