package ml

import (
	"errors"
	"fmt"
)

// VectorTarget marks a compiled tree whose leaves carry a full
// NumOutputs-wide vector accumulated into every output component, as
// opposed to a single-output tree that contributes to one component.
const VectorTarget = int32(-1)

// CompiledEnsemble is every tree of every output of a fitted tree
// ensemble flattened into one contiguous struct-of-arrays node arena.
// The per-tree FlatTree layout (internal/ml/tree) already makes a
// single traversal branch-lean; the compiled form goes one step
// further and concatenates all trees into a single Feature/Threshold/
// Index/Values block, so a row's full ensemble walk streams through
// one cache-resident arena instead of chasing one heap object per
// tree per round.
//
// Encoding, shared with FlatTree but with arena-absolute indices:
//
//   - Feature[n] >= 0: node n splits on Feature[n] at Threshold[n];
//     Index[n] is the arena index of the left child and the right
//     child is Index[n]+1 (breadth-first sibling adjacency).
//   - Feature[n] < 0: node n is a leaf and Index[n] is the absolute
//     offset of its value vector in Values.
//   - Root[t] is the arena index of tree t's root; Target[t] selects
//     the accumulation rule: VectorTarget adds Scale*leaf[k] into
//     every out[k], a value k >= 0 adds Scale*leaf[0] into out[k]
//     only (xgboost's one-output-per-tree strategy).
//
// Prediction starts from Base (the boosting base score, or zeros for
// averaged forests) and accumulates every tree with the single shared
// Scale (learning rate, or 1/len(ensemble)) — the same floating-point
// operations in the same order as the source envelope's Predict, so
// compiled output is bitwise identical to the envelope path.
//
// A CompiledEnsemble is immutable after compilation and safe for
// concurrent use; Fit always fails. Build one via a learner's
// CompileEnsemble method (see Compile), or AddTree for tests.
type CompiledEnsemble struct {
	Feature   []int32
	Threshold []float64
	Index     []int32
	Values    []float64
	Root      []int32
	Target    []int32

	// Scale multiplies every accumulated leaf value; Base seeds the
	// output vector before accumulation (length Outputs).
	Scale float64
	Base  []float64

	// Outputs is the prediction width; Features, when positive, is the
	// expected input width (0 = not enforced).
	Outputs  int
	Features int

	// Source is the compiling learner's Name(); the compiled form
	// reports it unchanged so ladder and /v1/modelz labels are stable
	// whether or not serving compiled.
	Source string
}

// errCompiledFrozen is returned by Fit: a compiled arena has no
// training path by design.
var errCompiledFrozen = errors.New("ml: compiled ensemble is frozen; refit the source model and recompile")

// Name returns the source learner's name, so wrapping a ladder around
// the compiled form labels identically to the envelope.
func (c *CompiledEnsemble) Name() string {
	if c.Source == "" {
		return "compiled"
	}
	return c.Source
}

// NumOutputs implements OutputSizer.
func (c *CompiledEnsemble) NumOutputs() int { return c.Outputs }

// NumTrees returns the number of compiled trees.
func (c *CompiledEnsemble) NumTrees() int { return len(c.Root) }

// NumNodes returns the total node count across all compiled trees.
func (c *CompiledEnsemble) NumNodes() int { return len(c.Feature) }

// Fit fails: compiled ensembles are immutable snapshots of a fitted
// source model.
func (c *CompiledEnsemble) Fit(X, Y [][]float64) error { return errCompiledFrozen }

// AddTree appends one tree in FlatTree encoding (tree-local indices:
// Index is the left child for splits, the Values offset for leaves)
// to the arena, rebasing indices to arena-absolute positions. target
// is the output component the tree contributes to, or a negative
// value for a vector-leaf tree whose leaves are Outputs wide.
// Slices are copied; the caller keeps ownership of its arguments.
func (c *CompiledEnsemble) AddTree(feature []int32, threshold []float64, index []int32, values []float64, target int) {
	n := len(feature)
	if len(threshold) != n || len(index) != n {
		panic(fmt.Sprintf("ml: compiled tree arrays disagree: %d features, %d thresholds, %d indices",
			n, len(threshold), len(index)))
	}
	nodeBase := int32(len(c.Feature))
	valBase := int32(len(c.Values))
	c.Root = append(c.Root, nodeBase)
	if target < 0 {
		c.Target = append(c.Target, VectorTarget)
	} else {
		c.Target = append(c.Target, int32(target))
	}
	c.Threshold = append(c.Threshold, threshold...)
	c.Values = append(c.Values, values...)
	for i := 0; i < n; i++ {
		f := feature[i]
		c.Feature = append(c.Feature, f)
		if f < 0 {
			c.Index = append(c.Index, valBase+index[i])
		} else {
			c.Index = append(c.Index, nodeBase+index[i])
		}
	}
}

// Grow preallocates arena capacity for nodes more nodes, leafValues
// more leaf floats, and trees more trees, so compilers can size the
// arena once and AddTree never reallocates mid-build.
func (c *CompiledEnsemble) Grow(nodes, leafValues, trees int) {
	grow32 := func(s []int32, n int) []int32 {
		out := make([]int32, len(s), len(s)+n)
		copy(out, s)
		return out
	}
	grow64 := func(s []float64, n int) []float64 {
		out := make([]float64, len(s), len(s)+n)
		copy(out, s)
		return out
	}
	c.Feature = grow32(c.Feature, nodes)
	c.Index = grow32(c.Index, nodes)
	c.Threshold = grow64(c.Threshold, nodes)
	c.Values = grow64(c.Values, leafValues)
	c.Root = grow32(c.Root, trees)
	c.Target = grow32(c.Target, trees)
}

// Validate bounds-checks the arena encoding: every split's children
// and every leaf's value vector must stay inside the arena, and every
// tree needs a root and a target inside the output width. Prediction
// assumes a valid arena and elides these checks on the hot path.
func (c *CompiledEnsemble) Validate() error {
	n := int32(len(c.Feature))
	if len(c.Threshold) != int(n) || len(c.Index) != int(n) {
		return fmt.Errorf("ml: compiled arena arrays disagree: %d features, %d thresholds, %d indices",
			n, len(c.Threshold), len(c.Index))
	}
	if len(c.Root) != len(c.Target) {
		return fmt.Errorf("ml: compiled arena has %d roots but %d targets", len(c.Root), len(c.Target))
	}
	if c.Outputs <= 0 {
		return fmt.Errorf("ml: compiled arena output width %d", c.Outputs)
	}
	if len(c.Base) != c.Outputs {
		return fmt.Errorf("ml: compiled base has %d entries, want %d", len(c.Base), c.Outputs)
	}
	// AddTree appends contiguously, so tree t owns nodes
	// [Root[t], Root[t+1]) and its leaf width follows from Target[t].
	for t, root := range c.Root {
		if root < 0 || root >= n {
			return fmt.Errorf("ml: tree %d root %d outside arena of %d nodes", t, root, n)
		}
		if t > 0 && root <= c.Root[t-1] {
			return fmt.Errorf("ml: tree %d root %d not after tree %d root %d", t, root, t-1, c.Root[t-1])
		}
		width := c.Outputs
		if tg := c.Target[t]; tg != VectorTarget {
			if tg < 0 || int(tg) >= c.Outputs {
				return fmt.Errorf("ml: tree %d targets output %d of %d", t, tg, c.Outputs)
			}
			width = 1
		}
		end := n
		if t+1 < len(c.Root) {
			end = c.Root[t+1]
		}
		for i := root; i < end; i++ {
			if c.Feature[i] < 0 {
				if off := c.Index[i]; off < 0 || int(off)+width > len(c.Values) {
					return fmt.Errorf("ml: leaf %d values [%d:%d) outside %d values", i, off, int(off)+width, len(c.Values))
				}
				continue
			}
			// Children must sit strictly after their parent (BFS order) —
			// this also rules out traversal cycles — and inside the tree.
			if left := c.Index[i]; left <= i || left+1 >= end {
				return fmt.Errorf("ml: split %d children %d,%d outside tree range (%d,%d)", i, left, left+1, i, end)
			}
		}
	}
	return nil
}

// accumulateTree walks tree t for x through the arena and adds its
// scaled leaf into out under the tree's target rule. The branch
// mirrors Tree.Predict exactly (x < threshold goes left, everything
// else — including NaN — goes right).
func (c *CompiledEnsemble) accumulateTree(t int, x, out []float64) {
	feature, threshold, index := c.Feature, c.Threshold, c.Index
	node := int(c.Root[t])
	for {
		f := feature[node]
		if f < 0 {
			break
		}
		next := int(index[node]) + 1
		if x[f] < threshold[node] {
			next--
		}
		node = next
	}
	off := int(index[node])
	if k := c.Target[t]; k >= 0 {
		out[k] += c.Scale * c.Values[off]
	} else {
		v := c.Values[off : off+len(out)]
		for j := range out {
			out[j] += c.Scale * v[j]
		}
	}
}

// PredictInto resolves x through every compiled tree into out (length
// Outputs), allocation-free: out is seeded from Base, then each tree
// is walked from its root through the shared arena and its leaf is
// accumulated under the tree's target rule.
//
//lint:hotpath
func (c *CompiledEnsemble) PredictInto(x []float64, out []float64) {
	copy(out, c.Base)
	for t := range c.Root {
		c.accumulateTree(t, x, out)
	}
}

// Predict implements Regressor, allocating the output row. Batch
// callers should prefer PredictInto or PredictBatch.
func (c *CompiledEnsemble) Predict(x []float64) []float64 {
	out := make([]float64, c.Outputs)
	c.PredictInto(x, out)
	return out
}

// compiledTile is the row-block size of the batch kernel's tree-outer
// walk: within a tile every row walks tree t before any row moves to
// tree t+1, so one tree's nodes stay L1-hot across the tile instead
// of every row streaming the whole arena. Per-row accumulation order
// is untouched (base first, then trees in order), so tiling cannot
// change a single bit.
const compiledTile = 64

// predictRange is the batch kernel over rows [lo, hi).
func (c *CompiledEnsemble) predictRange(X, out [][]float64, lo, hi int) {
	for blockLo := lo; blockLo < hi; blockLo += compiledTile {
		blockHi := blockLo + compiledTile
		if blockHi > hi {
			blockHi = hi
		}
		for i := blockLo; i < blockHi; i++ {
			copy(out[i], c.Base)
		}
		for t := range c.Root {
			for i := blockLo; i < blockHi; i++ {
				c.accumulateTree(t, X[i], out[i])
			}
		}
	}
}

// PredictBatch implements BatchRegressor. Small batches (under the
// shared pool's inline threshold) run the tiled kernel inline with
// zero allocations — the serving steady state; large offline batches
// chunk rows across cores, bitwise identical either way because rows
// are independent.
//
//lint:hotpath
func (c *CompiledEnsemble) PredictBatch(X, out [][]float64) {
	if len(X) < 2*minChunk {
		c.predictRange(X, out, 0, len(X))
		return
	}
	//lint:ignore hotpathalloc the parallel split only engages for large offline batches (>= 2*minChunk rows); the serving steady state takes the inline kernel above, pinned zero-alloc by BenchmarkCompiledPredict
	ParallelRows(len(X), func(lo, hi int) {
		c.predictRange(X, out, lo, hi)
	})
}

// EnsembleCompiler is implemented by learners whose fitted form can
// be flattened into a CompiledEnsemble. CompileEnsemble must return a
// snapshot whose predictions are bitwise identical to the learner's
// own Predict, or nil when the learner is not fitted yet.
type EnsembleCompiler interface {
	CompileEnsemble() *CompiledEnsemble
}

// Compile flattens m into a CompiledEnsemble when the learner
// supports it, reporting false for unfitted models and learners with
// no compiled form (baseline, linear). Callers keep serving the
// envelope in the false case — compilation is an optimization, never
// a requirement.
func Compile(m Regressor) (*CompiledEnsemble, bool) {
	ec, ok := m.(EnsembleCompiler)
	if !ok {
		return nil, false
	}
	ce := ec.CompileEnsemble()
	if ce == nil {
		return nil, false
	}
	return ce, true
}
