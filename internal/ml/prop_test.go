// Property-based sweep over the predict path (ISSUE PR 2): random
// datasets drive every learner through invariants that must hold for
// ANY input, not just the fixtures the unit tests pin down —
//
//   - PredictBatch is bitwise identical to row-at-a-time Predict
//     (the vectorized FlatTree path may not change a single ULP);
//   - exact-method trees are equivariant under feature translation
//     (CART/Newton thresholds are midpoints of adjacent sorted values,
//     so shifting a feature column shifts every threshold with it);
//   - finite training data plus finite query points can never produce
//     NaN or ±Inf predictions, even at extreme magnitudes.
//
// The file lives in package ml_test because it pulls in the concrete
// learners (forest, xgboost) which themselves import ml.
package ml_test

import (
	"math"
	"testing"

	"crossarch/internal/ml"
	"crossarch/internal/ml/baseline"
	"crossarch/internal/ml/forest"
	"crossarch/internal/ml/linear"
	"crossarch/internal/ml/tree"
	"crossarch/internal/ml/xgboost"
	"crossarch/internal/stats"
)

// propSeeds drives every property over several independent random
// datasets; failures report the seed so a repro is one -run away.
var propSeeds = []uint64{1, 17, 4242, 987654321}

// randomDataset draws n rows of a noisy piecewise-nonlinear response so
// the trees have real structure to find: each output mixes a linear
// term, a threshold step, and multiplicative noise.
func randomDataset(rng *stats.RNG, n, features, outputs int) (X, Y [][]float64) {
	w := make([][]float64, outputs)
	steps := make([]float64, outputs)
	for k := range w {
		w[k] = make([]float64, features)
		for j := range w[k] {
			w[k][j] = rng.Range(-2, 2)
		}
		steps[k] = rng.Range(-3, 3)
	}
	X = make([][]float64, n)
	Y = make([][]float64, n)
	for i := 0; i < n; i++ {
		x := make([]float64, features)
		for j := range x {
			x[j] = rng.Range(-10, 10)
		}
		y := make([]float64, outputs)
		for k := range y {
			v := 0.0
			for j := range x {
				v += w[k][j] * x[j]
			}
			if x[k%features] > steps[k] {
				v += 5
			}
			y[k] = v * rng.NoiseFactor(0.05)
		}
		X[i], Y[i] = x, y
	}
	return X, Y
}

// fittedLearners trains one instance of every learner family on the
// dataset. Small budgets keep the whole sweep under a second.
func fittedLearners(t *testing.T, X, Y [][]float64) []ml.Regressor {
	t.Helper()
	models := []ml.Regressor{
		baseline.New(),
		linear.New(1.0),
		forest.New(forest.Params{Trees: 8, MaxDepth: 5, Seed: 7, Workers: 2}),
		xgboost.New(xgboost.Params{Rounds: 12, MaxDepth: 3, Seed: 9}),
		xgboost.New(xgboost.Params{
			Rounds: 8, MaxDepth: 3, Seed: 11,
			TreeMethod: "exact", MultiStrategy: "one_output_per_tree",
		}),
	}
	for _, m := range models {
		if err := m.Fit(X, Y); err != nil {
			t.Fatalf("%s: Fit: %v", m.Name(), err)
		}
	}
	return models
}

// TestPropBatchEqualsRowAtATime asserts the documented contract of
// ml.PredictBatch: the vectorized path produces bitwise-identical
// output to calling Predict row by row, for every learner.
func TestPropBatchEqualsRowAtATime(t *testing.T) {
	for _, seed := range propSeeds {
		rng := stats.NewRNG(seed)
		X, Y := randomDataset(rng, 300, 6, 3)
		Xq, _ := randomDataset(rng, 157, 6, 3) // odd size: exercises chunk remainders
		for _, m := range fittedLearners(t, X, Y) {
			batch := ml.PredictBatch(m, Xq)
			for i, x := range Xq {
				want := m.Predict(x)
				for k := range want {
					if math.Float64bits(batch[i][k]) != math.Float64bits(want[k]) {
						t.Fatalf("seed %d %s: row %d output %d: batch %v != predict %v",
							seed, m.Name(), i, k, batch[i][k], want[k])
					}
				}
			}
		}
	}
}

// TestPropTreeBatchEqualsWalk covers the raw tree layer under the
// ensembles: a CART tree's FlatTree compilation must route every query
// to the same leaf as the pointer-chasing walk.
func TestPropTreeBatchEqualsWalk(t *testing.T) {
	for _, seed := range propSeeds {
		rng := stats.NewRNG(seed)
		X, Y := randomDataset(rng, 250, 5, 2)
		tr, err := tree.BuildCART(X, Y, nil, tree.CARTParams{MaxDepth: 6, MinSamplesLeaf: 2})
		if err != nil {
			t.Fatalf("seed %d: BuildCART: %v", seed, err)
		}
		if err := tr.Validate(); err != nil {
			t.Fatalf("seed %d: trained tree fails Validate: %v", seed, err)
		}
		ft := tr.Flatten()
		Xq, _ := randomDataset(rng, 101, 5, 2)
		out := ml.NewMatrix(len(Xq), tr.Outputs)
		tr.PredictBatch(Xq, out)
		for i, x := range Xq {
			want := tr.Predict(x)
			got := ft.Predict(x)
			for k := range want {
				if math.Float64bits(got[k]) != math.Float64bits(want[k]) ||
					math.Float64bits(out[i][k]) != math.Float64bits(want[k]) {
					t.Fatalf("seed %d row %d: flat %v batch %v != walk %v",
						seed, i, got, out[i], want)
				}
			}
		}
	}
}

// TestPropTranslationEquivariance checks the structural property that
// makes exact tree methods trustworthy: thresholds are midpoints of
// adjacent sorted feature values, so translating a feature column by a
// constant translates every threshold by the same constant and leaves
// all routing decisions — hence all predictions — unchanged (up to
// floating-point rounding of the shifted midpoints).
func TestPropTranslationEquivariance(t *testing.T) {
	const shift = 37.5
	shiftCol := func(M [][]float64, col int) [][]float64 {
		out := make([][]float64, len(M))
		for i, row := range M {
			r := append([]float64(nil), row...)
			r[col] += shift
			out[i] = r
		}
		return out
	}
	for _, seed := range propSeeds {
		rng := stats.NewRNG(seed)
		X, Y := randomDataset(rng, 200, 4, 2)
		Xq, _ := randomDataset(rng, 80, 4, 2)
		for col := 0; col < 2; col++ {
			Xs, Xqs := shiftCol(X, col), shiftCol(Xq, col)

			models := map[string][2]ml.Regressor{
				"forest": {
					forest.New(forest.Params{Trees: 6, MaxDepth: 5, MaxFeatures: 4, Seed: 3, Workers: 1}),
					forest.New(forest.Params{Trees: 6, MaxDepth: 5, MaxFeatures: 4, Seed: 3, Workers: 1}),
				},
				"xgboost-exact": {
					xgboost.New(xgboost.Params{Rounds: 10, MaxDepth: 3, Seed: 5,
						TreeMethod: "exact", MultiStrategy: "one_output_per_tree"}),
					xgboost.New(xgboost.Params{Rounds: 10, MaxDepth: 3, Seed: 5,
						TreeMethod: "exact", MultiStrategy: "one_output_per_tree"}),
				},
			}
			for name, pair := range models {
				if err := pair[0].Fit(X, Y); err != nil {
					t.Fatalf("%s: %v", name, err)
				}
				if err := pair[1].Fit(Xs, Y); err != nil {
					t.Fatalf("%s shifted: %v", name, err)
				}
				for i := range Xq {
					a := pair[0].Predict(Xq[i])
					b := pair[1].Predict(Xqs[i])
					for k := range a {
						if !closeRel(a[k], b[k], 1e-9) {
							t.Fatalf("seed %d %s col %d row %d: prediction changed under translation: %v vs %v",
								seed, name, col, i, a, b)
						}
					}
				}
			}
		}
	}
}

// TestPropFiniteInFiniteOut trains on finite data and queries points at
// extreme but finite magnitudes; no learner may emit NaN or ±Inf.
func TestPropFiniteInFiniteOut(t *testing.T) {
	extremes := []float64{0, 1e-300, -1e-300, 1, -1, 1e12, -1e12, 1e300, -1e300}
	for _, seed := range propSeeds[:2] {
		rng := stats.NewRNG(seed)
		X, Y := randomDataset(rng, 200, 6, 3)
		var Xq [][]float64
		for i := 0; i < 120; i++ {
			x := make([]float64, 6)
			for j := range x {
				x[j] = extremes[rng.Intn(len(extremes))]
			}
			Xq = append(Xq, x)
		}
		for _, m := range fittedLearners(t, X, Y) {
			for i, row := range ml.PredictBatch(m, Xq) {
				for k, v := range row {
					if math.IsNaN(v) || math.IsInf(v, 0) {
						t.Fatalf("seed %d %s: non-finite prediction %v at row %d output %d (x=%v)",
							seed, m.Name(), v, i, k, Xq[i])
					}
				}
			}
		}
	}
}

// closeRel reports |a-b| within tol relative to max(1, |a|, |b|).
func closeRel(a, b, tol float64) bool {
	scale := 1.0
	if s := math.Abs(a); s > scale {
		scale = s
	}
	if s := math.Abs(b); s > scale {
		scale = s
	}
	return math.Abs(a-b) <= tol*scale
}
