// Package forest implements a bagged decision-forest regressor (random
// forest): an ensemble of CART trees, each trained on a bootstrap sample
// with per-split random feature subsets, predictions averaged. It is the
// "decision forest" baseline from the paper's Figure 2.
package forest

import (
	"fmt"
	"runtime"
	"sync"

	"crossarch/internal/ml"
	"crossarch/internal/ml/tree"
	"crossarch/internal/stats"
)

// Params configures the forest.
type Params struct {
	// Trees is the ensemble size (default 100).
	Trees int
	// MaxDepth bounds each tree (default 12).
	MaxDepth int
	// MinSamplesLeaf per tree leaf (default 2).
	MinSamplesLeaf int
	// MaxFeatures examined per split; 0 means features/3 (the classic
	// regression-forest heuristic), capped at the feature count.
	MaxFeatures int
	// Seed makes training deterministic.
	Seed uint64
	// Workers bounds the training parallelism; 0 means GOMAXPROCS.
	Workers int
}

func (p *Params) setDefaults() {
	if p.Trees <= 0 {
		p.Trees = 100
	}
	if p.MaxDepth <= 0 {
		p.MaxDepth = 12
	}
	if p.MinSamplesLeaf <= 0 {
		p.MinSamplesLeaf = 2
	}
	if p.Workers <= 0 {
		p.Workers = runtime.GOMAXPROCS(0)
	}
}

// Forest is the trained ensemble.
type Forest struct {
	Params   Params       `json:"params"`
	Ensemble []*tree.Tree `json:"ensemble"`
	Features int          `json:"features"`
	Outputs  int          `json:"outputs"`

	// flat caches the ensemble compiled for batched prediction; built
	// lazily on first PredictBatch (also after a JSON load) and
	// invalidated by Fit.
	flatMu sync.Mutex
	flat   []*tree.FlatTree
}

var _ ml.Regressor = (*Forest)(nil)
var _ ml.BatchRegressor = (*Forest)(nil)
var _ ml.FeatureImporter = (*Forest)(nil)
var _ ml.EnsembleCompiler = (*Forest)(nil)

// New returns an unfitted forest with the given parameters.
func New(p Params) *Forest { return &Forest{Params: p} }

// Name implements ml.Regressor.
func (f *Forest) Name() string { return "decision forest" }

// Fit trains the ensemble. Trees are independent, so they are grown in
// parallel across Workers goroutines; each tree has its own RNG split
// from the seed so results are identical regardless of scheduling.
func (f *Forest) Fit(X, Y [][]float64) error {
	features, outputs, err := ml.CheckFitShapes(X, Y)
	if err != nil {
		return err
	}
	p := f.Params
	p.setDefaults()
	maxFeatures := p.MaxFeatures
	if maxFeatures <= 0 {
		maxFeatures = (features + 2) / 3
	}
	if maxFeatures > features {
		maxFeatures = features
	}

	// Pre-split one RNG per tree from the master seed, so tree i always
	// sees the same stream no matter which worker grows it.
	master := stats.NewRNG(p.Seed)
	rngs := make([]*stats.RNG, p.Trees)
	for i := range rngs {
		rngs[i] = master.Split()
	}

	ensemble := make([]*tree.Tree, p.Trees)
	errs := make([]error, p.Trees)
	var wg sync.WaitGroup
	sem := make(chan struct{}, p.Workers)
	for i := 0; i < p.Trees; i++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			rng := rngs[i]
			idx := rng.SampleWithReplacement(len(X), len(X))
			t, err := tree.BuildCART(X, Y, idx, tree.CARTParams{
				MaxDepth:       p.MaxDepth,
				MinSamplesLeaf: p.MinSamplesLeaf,
				MaxFeatures:    maxFeatures,
				RNG:            rng,
			})
			if err != nil {
				errs[i] = err
				return
			}
			ensemble[i] = t
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return fmt.Errorf("forest: tree %d: %w", i, err)
		}
	}
	f.Ensemble = ensemble
	f.Features = features
	f.Outputs = outputs
	f.flatMu.Lock()
	f.flat = nil
	f.flatMu.Unlock()
	return nil
}

// Predict averages the member trees' outputs.
func (f *Forest) Predict(x []float64) []float64 {
	if len(f.Ensemble) == 0 {
		panic("forest: Predict before Fit")
	}
	out := make([]float64, f.Outputs)
	scale := 1 / float64(len(f.Ensemble))
	for _, t := range f.Ensemble {
		t.AccumulatePredict(x, scale, out)
	}
	return out
}

// flatEnsemble returns the ensemble compiled to flat trees, building
// and caching it on first use.
func (f *Forest) flatEnsemble() []*tree.FlatTree {
	f.flatMu.Lock()
	defer f.flatMu.Unlock()
	if f.flat == nil {
		flat := make([]*tree.FlatTree, len(f.Ensemble))
		for i, t := range f.Ensemble {
			flat[i] = t.Flatten()
		}
		f.flat = flat
	}
	return f.flat
}

// batchTile bounds how many rows PredictBatch walks through one tree
// before moving to the next; see the xgboost batch predictor for the
// cache rationale.
const batchTile = 1024

// PredictBatch implements ml.BatchRegressor: it fills out[i] with the
// ensemble average for X[i], chunking rows across cores and iterating
// trees outer over cache-sized row tiles. Every output element still
// accumulates trees in ensemble order, so results are bitwise
// identical to Predict. out must have len(X) rows of width Outputs.
func (f *Forest) PredictBatch(X, out [][]float64) {
	if len(f.Ensemble) == 0 {
		panic("forest: PredictBatch before Fit")
	}
	flat := f.flatEnsemble()
	scale := 1 / float64(len(f.Ensemble))
	ml.ParallelRows(len(X), func(lo, hi int) {
		for tlo := lo; tlo < hi; tlo += batchTile {
			thi := tlo + batchTile
			if thi > hi {
				thi = hi
			}
			for i := tlo; i < thi; i++ {
				row := out[i]
				for k := range row {
					row[k] = 0
				}
			}
			for _, ft := range flat {
				for i := tlo; i < thi; i++ {
					ft.Accumulate(X[i], scale, out[i])
				}
			}
		}
	})
}

// CompileEnsemble implements ml.EnsembleCompiler: every tree of the
// fitted forest flattened into one contiguous node arena with vector
// leaves, zero base, and Scale = 1/len(Ensemble) — the same averaging
// Predict performs, in the same tree order, so compiled output is
// bitwise identical. Returns nil before Fit.
func (f *Forest) CompileEnsemble() *ml.CompiledEnsemble {
	if len(f.Ensemble) == 0 {
		return nil
	}
	flat := f.flatEnsemble()
	nodes, leafValues := 0, 0
	for _, ft := range flat {
		nodes += ft.NumNodes()
		leafValues += len(ft.Values)
	}
	ce := &ml.CompiledEnsemble{
		Scale:    1 / float64(len(f.Ensemble)),
		Base:     make([]float64, f.Outputs),
		Outputs:  f.Outputs,
		Features: f.Features,
		Source:   f.Name(),
	}
	ce.Grow(nodes, leafValues, len(flat))
	for _, ft := range flat {
		ft.AppendTo(ce, -1)
	}
	return ce
}

// FeatureImportances returns per-feature importances as each feature's
// average split gain across the ensemble, normalized to sum to 1. A
// feature never split has importance 0.
func (f *Forest) FeatureImportances() []float64 {
	if len(f.Ensemble) == 0 {
		panic("forest: FeatureImportances before Fit")
	}
	gain := make([]float64, f.Features)
	splits := make([]int, f.Features)
	for _, t := range f.Ensemble {
		t.GainByFeature(gain, splits)
	}
	imp := make([]float64, f.Features)
	total := 0.0
	for j := range imp {
		if splits[j] > 0 {
			imp[j] = gain[j] / float64(splits[j])
			total += imp[j]
		}
	}
	if total > 0 {
		for j := range imp {
			imp[j] /= total
		}
	}
	return imp
}
