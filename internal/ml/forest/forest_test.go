package forest

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"crossarch/internal/ml"
	"crossarch/internal/ml/baseline"
	"crossarch/internal/stats"
)

// friedman generates a standard nonlinear regression benchmark:
// y = 10 sin(pi x0 x1) + 20 (x2 - 0.5)^2 + 10 x3 + 5 x4 + noise.
func friedman(n int, rng *stats.RNG) (X, Y [][]float64) {
	X = make([][]float64, n)
	Y = make([][]float64, n)
	for i := range X {
		x := make([]float64, 6) // feature 5 is pure noise
		for j := range x {
			x[j] = rng.Float64()
		}
		X[i] = x
		y := 10*math.Sin(math.Pi*x[0]*x[1]) + 20*(x[2]-0.5)*(x[2]-0.5) + 10*x[3] + 5*x[4] + rng.Normal(0, 0.5)
		Y[i] = []float64{y}
	}
	return X, Y
}

// TestPredictBatchGolden pins batch-vs-row bitwise equality for the
// forest, including after a persistence round-trip (which drops the
// cached flat compilation) and under concurrent first use so -race can
// observe the lazy cache build.
func TestPredictBatchGolden(t *testing.T) {
	rng := stats.NewRNG(50)
	X, Y := friedman(400, rng)
	f := New(Params{Trees: 40, MaxDepth: 8, Seed: 51})
	if err := f.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	out := ml.NewMatrix(len(X), f.Outputs)
	f.PredictBatch(X, out)
	for i, x := range X {
		want := f.Predict(x)
		for k := range want {
			if out[i][k] != want[k] {
				t.Fatalf("row %d: batch %v != row %v", i, out[i], want)
			}
		}
	}

	var buf bytes.Buffer
	if err := ml.SaveModel(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := ml.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	reloaded := back.(*Forest)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			o := ml.NewMatrix(len(X), reloaded.Outputs)
			reloaded.PredictBatch(X, o)
			for i := range X {
				if o[i][0] != out[i][0] {
					t.Errorf("reloaded concurrent batch diverged at row %d", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestForestBeatsMeanOnNonlinearData(t *testing.T) {
	rng := stats.NewRNG(1)
	X, Y := friedman(800, rng)
	trX, trY, teX, teY, err := ml.TrainTestSplit(X, Y, 0.25, stats.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	f := New(Params{Trees: 60, MaxDepth: 10, Seed: 3})
	if err := f.Fit(trX, trY); err != nil {
		t.Fatal(err)
	}
	mean := baseline.New()
	if err := mean.Fit(trX, trY); err != nil {
		t.Fatal(err)
	}
	forestMAE := ml.MAE(ml.PredictBatch(f, teX), teY)
	meanMAE := ml.MAE(ml.PredictBatch(mean, teX), teY)
	if forestMAE >= meanMAE/2 {
		t.Errorf("forest MAE %v not clearly better than mean MAE %v", forestMAE, meanMAE)
	}
}

func TestForestDeterministicAcrossWorkerCounts(t *testing.T) {
	rng := stats.NewRNG(4)
	X, Y := friedman(300, rng)
	f1 := New(Params{Trees: 20, MaxDepth: 6, Seed: 7, Workers: 1})
	f4 := New(Params{Trees: 20, MaxDepth: 6, Seed: 7, Workers: 4})
	if err := f1.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	if err := f4.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		a, b := f1.Predict(X[i])[0], f4.Predict(X[i])[0]
		if a != b {
			t.Fatalf("worker-count nondeterminism: %v vs %v", a, b)
		}
	}
}

func TestForestMultiOutput(t *testing.T) {
	rng := stats.NewRNG(5)
	n := 400
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		x := rng.Float64()
		X[i] = []float64{x}
		Y[i] = []float64{x, 1 - x}
	}
	f := New(Params{Trees: 30, MaxDepth: 8, Seed: 6})
	if err := f.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	pred := f.Predict([]float64{0.8})
	if math.Abs(pred[0]-0.8) > 0.1 || math.Abs(pred[1]-0.2) > 0.1 {
		t.Errorf("multi-output prediction = %v", pred)
	}
}

func TestForestFeatureImportances(t *testing.T) {
	rng := stats.NewRNG(7)
	X, Y := friedman(600, rng)
	f := New(Params{Trees: 40, MaxDepth: 8, Seed: 8})
	if err := f.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	imp := f.FeatureImportances()
	if len(imp) != 6 {
		t.Fatalf("importances length = %d", len(imp))
	}
	sum := 0.0
	for _, v := range imp {
		if v < 0 {
			t.Fatalf("negative importance %v", v)
		}
		sum += v
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Errorf("importances sum to %v", sum)
	}
	// The pure-noise feature must be the least (or near-least) important.
	noise := imp[5]
	informative := (imp[0] + imp[1] + imp[3]) / 3
	if noise >= informative {
		t.Errorf("noise importance %v >= informative mean %v", noise, informative)
	}
}

func TestForestDefaults(t *testing.T) {
	f := New(Params{})
	X := [][]float64{{1}, {2}, {3}, {4}}
	Y := [][]float64{{1}, {2}, {3}, {4}}
	if err := f.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	if len(f.Ensemble) != 100 {
		t.Errorf("default ensemble size = %d, want 100", len(f.Ensemble))
	}
}

func TestForestErrorsAndPanics(t *testing.T) {
	if err := New(Params{}).Fit(nil, nil); err == nil {
		t.Error("empty fit should error")
	}
	defer func() {
		if recover() == nil {
			t.Fatal("no panic before fit")
		}
	}()
	New(Params{}).Predict([]float64{1})
}

func TestForestImportancesBeforeFitPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic before fit")
		}
	}()
	New(Params{}).FeatureImportances()
}

func TestForestPersistence(t *testing.T) {
	rng := stats.NewRNG(9)
	X, Y := friedman(200, rng)
	f := New(Params{Trees: 10, MaxDepth: 5, Seed: 10})
	if err := f.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ml.SaveModel(&buf, f); err != nil {
		t.Fatal(err)
	}
	back, err := ml.LoadModel(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		if a, b := f.Predict(X[i])[0], back.Predict(X[i])[0]; a != b {
			t.Fatalf("persisted forest prediction %v != %v", b, a)
		}
	}
}

func BenchmarkForestFit(b *testing.B) {
	rng := stats.NewRNG(1)
	X, Y := friedman(1000, rng)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		f := New(Params{Trees: 20, MaxDepth: 8, Seed: 1})
		if err := f.Fit(X, Y); err != nil {
			b.Fatal(err)
		}
	}
}
