package forest

import "crossarch/internal/ml"

func init() {
	ml.RegisterModel("decision forest", func() ml.Regressor { return New(Params{}) })
}
