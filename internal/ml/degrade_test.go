package ml

import (
	"math"
	"strings"
	"sync"
	"testing"

	"crossarch/internal/fault"
	"crossarch/internal/obs"
)

// affineModel is a deterministic stand-in for the trained primary: a
// feature-dependent BatchRegressor, optionally panicking on marked rows
// so tests can exercise panic isolation.
type affineModel struct {
	w       float64
	panicOn float64 // panic when x[0] equals this (0 disables)
}

func (m *affineModel) Fit(X, Y [][]float64) error { return nil }
func (m *affineModel) Name() string               { return "affine" }
func (m *affineModel) Predict(x []float64) []float64 {
	if m.panicOn != 0 && x[0] == m.panicOn {
		panic("marked row")
	}
	s := 0.0
	for _, v := range x {
		s += v
	}
	return []float64{m.w * s, m.w*s + 1}
}
func (m *affineModel) PredictBatch(X, out [][]float64) {
	for i, x := range X {
		copy(out[i], m.Predict(x))
	}
}

func degradeInputs(n int) [][]float64 {
	X := make([][]float64, n)
	for i := range X {
		X[i] = []float64{float64(i%17) + 0.25, float64(i % 5), -float64(i % 3)}
	}
	return X
}

func ladderCounts(t *testing.T) (primary, fallback, identity float64) {
	t.Helper()
	reg := obs.Default()
	return reg.Counter("ml.ladder.primary.rows").Value(),
		reg.Counter("ml.ladder.fallback.rows").Value(),
		reg.Counter("ml.ladder.identity.rows").Value()
}

// TestDegradingRateZeroBitwise pins the acceptance bar: with no
// injector the ladder's batch output is bitwise identical to calling
// the primary directly, and every row resolves at the primary rung.
func TestDegradingRateZeroBitwise(t *testing.T) {
	primary := &affineModel{w: 2}
	d, err := NewDegradingPredictor(primary, &constantModel{Vec: []float64{7, 8}}, 2, DegradeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	X := degradeInputs(600)
	p0, _, _ := ladderCounts(t)
	got := PredictBatch(d, X)
	want := PredictBatch(primary, X)
	for i := range X {
		for k := range want[i] {
			if got[i][k] != want[i][k] {
				t.Fatalf("row %d: ladder %v, primary %v", i, got[i], want[i])
			}
		}
	}
	p1, _, _ := ladderCounts(t)
	if p1-p0 != 600 {
		t.Errorf("primary rows delta = %v, want 600", p1-p0)
	}
	if name := d.Name(); name != "degrading(affine->constant-test->identity)" {
		t.Errorf("Name() = %q", name)
	}
}

// TestDegradingDeterministic runs two fresh ladders with the same seed
// and plan over the same batches and requires bitwise-identical
// outputs — the property the keyed fault substrate exists to provide.
func TestDegradingDeterministic(t *testing.T) {
	run := func() [][]float64 {
		inj, err := fault.NewInjector(99, fault.Plan{
			CounterDropout: 0.3, FeatureCorrupt: 0.2, PredictError: 0.3,
		})
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDegradingPredictor(&affineModel{w: 2}, &constantModel{Vec: []float64{7, 8}}, 2, DegradeOpts{Injector: inj, Clock: &fault.Clock{}})
		if err != nil {
			t.Fatal(err)
		}
		var out [][]float64
		for _, n := range []int{50, 300, 1} {
			out = append(out, PredictBatch(d, degradeInputs(n))...)
		}
		return out
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("row counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		for k := range a[i] {
			if a[i][k] != b[i][k] {
				t.Fatalf("row %d differs: %v vs %v", i, a[i], b[i])
			}
		}
	}
}

// TestDegradingLadderAccounting checks the obs invariant the faults
// CLI smoke test relies on: level counts sum to exactly the rows
// predicted, at every fault rate.
func TestDegradingLadderAccounting(t *testing.T) {
	for _, rate := range []float64{0, 0.05, 0.2, 0.5, 1} {
		inj, err := fault.NewInjector(7, fault.Uniform(rate))
		if err != nil {
			t.Fatal(err)
		}
		d, err := NewDegradingPredictor(&affineModel{w: 1}, &constantModel{Vec: []float64{7, 8}}, 2, DegradeOpts{Injector: inj})
		if err != nil {
			t.Fatal(err)
		}
		p0, f0, i0 := ladderCounts(t)
		const n = 400
		PredictBatch(d, degradeInputs(n))
		p1, f1, i1 := ladderCounts(t)
		if sum := (p1 - p0) + (f1 - f0) + (i1 - i0); sum != n {
			t.Errorf("rate %v: ladder rows sum to %v, want %v", rate, sum, n)
		}
	}
}

// TestDegradingBreakerOpensAndProbes drives a primary that always
// fails (PredictError at rate 1): the breaker opens after the
// threshold, skips the cooldown rows, and reopens when the probe row
// fails again.
func TestDegradingBreakerOpensAndProbes(t *testing.T) {
	inj, err := fault.NewInjector(3, fault.Plan{PredictError: 1})
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDegradingPredictor(&affineModel{w: 1}, &constantModel{Vec: []float64{7, 8}}, 2, DegradeOpts{
		Injector: inj, Clock: &fault.Clock{}, BreakerThreshold: 2, BreakerCooldown: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.Default()
	opens0 := reg.Counter("ml.breaker.open.total").Value()
	skip0 := reg.Counter("ml.breaker.skipped.total").Value()
	p0, f0, _ := ladderCounts(t)
	// 12 rows: fail,fail(open) skip,skip,skip probe-fail(reopen)
	// skip,skip,skip probe-fail(reopen) skip,skip — 3 opens, 8 skips.
	PredictBatch(d, degradeInputs(12))
	if got := reg.Counter("ml.breaker.open.total").Value() - opens0; got != 3 {
		t.Errorf("breaker opens = %v, want 3", got)
	}
	if got := reg.Counter("ml.breaker.skipped.total").Value() - skip0; got != 8 {
		t.Errorf("breaker skips = %v, want 8", got)
	}
	p1, f1, _ := ladderCounts(t)
	if p1-p0 != 0 || f1-f0 != 12 {
		t.Errorf("primary/fallback deltas = %v/%v, want 0/12", p1-p0, f1-f0)
	}
}

// TestDegradingPanicDegradesRowNotBatch marks two rows so the primary
// panics on them: those rows resolve at fallback, every other row
// keeps its primary output, and the batch call itself never panics.
func TestDegradingPanicDegradesRowNotBatch(t *testing.T) {
	primary := &affineModel{w: 2, panicOn: 13.5}
	d, err := NewDegradingPredictor(primary, &constantModel{Vec: []float64{7, 8}}, 2, DegradeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	X := degradeInputs(300)
	X[40][0] = 13.5
	X[200][0] = 13.5
	out := PredictBatch(d, X)
	clean := &affineModel{w: 2}
	for i, x := range X {
		if i == 40 || i == 200 {
			if out[i][0] != 7 || out[i][1] != 8 {
				t.Errorf("panicking row %d = %v, want fallback [7 8]", i, out[i])
			}
			continue
		}
		want := clean.Predict(x)
		if out[i][0] != want[0] || out[i][1] != want[1] {
			t.Errorf("surviving row %d = %v, want %v", i, out[i], want)
		}
	}
}

// TestDegradingNonFiniteInputFallsBack sends genuinely corrupt rows
// (no injector at all): NaN and Inf rows resolve at fallback, finite
// rows stay primary.
func TestDegradingNonFiniteInputFallsBack(t *testing.T) {
	d, err := NewDegradingPredictor(&affineModel{w: 1}, &constantModel{Vec: []float64{7, 8}}, 2, DegradeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	X := [][]float64{{1, 2, 3}, {math.NaN(), 2, 3}, {1, math.Inf(1), 3}, {4, 5, 6}}
	out := PredictBatch(d, X)
	if out[1][0] != 7 || out[2][0] != 7 {
		t.Errorf("corrupt rows = %v, %v, want fallback", out[1], out[2])
	}
	if out[0][0] != 6 || out[3][0] != 15 {
		t.Errorf("finite rows = %v, %v, want primary sums", out[0], out[3])
	}
}

// TestDegradingIdentityFloor removes both models: every row resolves
// to the all-ones unit RPV and nothing panics.
func TestDegradingIdentityFloor(t *testing.T) {
	d, err := NewDegradingPredictor(nil, nil, 3, DegradeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	_, _, i0 := ladderCounts(t)
	out := PredictBatch(d, degradeInputs(5))
	for i := range out {
		for k := range out[i] {
			if out[i][k] != 1 {
				t.Fatalf("identity row %d = %v", i, out[i])
			}
		}
	}
	_, _, i1 := ladderCounts(t)
	if i1-i0 != 5 {
		t.Errorf("identity rows delta = %v, want 5", i1-i0)
	}
	if !strings.Contains(d.Name(), "none->none") {
		t.Errorf("Name() = %q", d.Name())
	}
}

// TestDegradingRetryRecovers injects transient predict errors at a
// rate where retries matter: with the default budget some rows must
// still resolve at primary, retries are counted, and the simulated
// clock (not the wall clock) absorbs the backoff.
func TestDegradingRetryRecovers(t *testing.T) {
	inj, err := fault.NewInjector(11, fault.Plan{PredictError: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	clock := &fault.Clock{}
	d, err := NewDegradingPredictor(&affineModel{w: 1}, &constantModel{Vec: []float64{7, 8}}, 2, DegradeOpts{Injector: inj, Clock: clock})
	if err != nil {
		t.Fatal(err)
	}
	retries0 := obs.Default().Counter("fault.retries.total").Value()
	p0, f0, _ := ladderCounts(t)
	PredictBatch(d, degradeInputs(300))
	p1, f1, _ := ladderCounts(t)
	// At rate 0.5 with 3 attempts, ~7/8 of rows should recover; require
	// the loose version of both directions.
	if p1-p0 <= f1-f0 {
		t.Errorf("primary %v <= fallback %v: retries are not recovering transient faults", p1-p0, f1-f0)
	}
	if f1-f0 == 0 {
		t.Error("no row exhausted its retry budget at rate 0.5")
	}
	if got := obs.Default().Counter("fault.retries.total").Value() - retries0; got == 0 {
		t.Error("no retries counted")
	}
	if clock.Now() == 0 {
		t.Error("backoff did not advance the simulated clock")
	}
}

// TestDegradingFitAndValidation covers constructor and Fit errors.
func TestDegradingFitAndValidation(t *testing.T) {
	if _, err := NewDegradingPredictor(nil, nil, 0, DegradeOpts{}); err == nil {
		t.Error("outputs=0 accepted")
	}
	d, err := NewDegradingPredictor(&affineModel{w: 1}, &constantModel{}, 2, DegradeOpts{})
	if err != nil {
		t.Fatal(err)
	}
	if err := d.Fit([][]float64{{1}}, [][]float64{{1, 2, 3}}); err == nil {
		t.Error("width-mismatched Fit accepted")
	}
	if err := d.Fit([][]float64{{1}, {2}}, [][]float64{{1, 2}, {3, 4}}); err != nil {
		t.Errorf("Fit: %v", err)
	}
	if got := d.Predict([]float64{1}); len(got) != 2 {
		t.Errorf("Predict width = %d", len(got))
	}
	if d.NumOutputs() != 2 {
		t.Errorf("NumOutputs = %d", d.NumOutputs())
	}
}

// TestDegradingConcurrent hammers one ladder from many goroutines with
// faults on so -race can see the plan mutex and the pool handoffs.
// Outputs are not order-deterministic across goroutines (the plan
// interleaving is) — each row must simply be one of the valid values.
func TestDegradingConcurrent(t *testing.T) {
	inj, err := fault.NewInjector(5, fault.Uniform(0.3))
	if err != nil {
		t.Fatal(err)
	}
	d, err := NewDegradingPredictor(&affineModel{w: 1}, &constantModel{Vec: []float64{7, 8}}, 2, DegradeOpts{Injector: inj, Clock: &fault.Clock{}})
	if err != nil {
		t.Fatal(err)
	}
	X := degradeInputs(500)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out := PredictBatch(d, X)
			for i, x := range X {
				sum := x[0] + x[1] + x[2]
				switch {
				case out[i][0] == sum: // primary
				case out[i][0] == sum-x[0], out[i][0] == sum-x[1], out[i][0] == sum-x[2]: // imputed primary
				case out[i][0] == 7: // fallback
				default:
					t.Errorf("row %d = %v: not a ladder value for %v", i, out[i], x)
				}
			}
		}()
	}
	wg.Wait()
}
