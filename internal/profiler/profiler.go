package profiler

import (
	"fmt"

	"crossarch/internal/apps"
	"crossarch/internal/arch"
	"crossarch/internal/perfmodel"
	"crossarch/internal/stats"
)

// CCTNode is one calling-context-tree node: a named code region with
// attributed counter values and child regions, mirroring the structure
// HPCToolkit produces and Hatchet consumes.
type CCTNode struct {
	Name     string
	Counters map[string]float64
	Children []*CCTNode
}

// RankProfile is the calling context tree recorded for one MPI rank.
type RankProfile struct {
	Rank int
	Root *CCTNode
}

// Profile is the result of profiling one run: metadata plus one CCT per
// rank.
type Profile struct {
	App        string
	Input      string
	System     string
	Scale      string
	Nodes      int
	Cores      int
	GPUs       int
	NumRanks   int
	UsesGPU    bool
	RuntimeSec float64
	Schema     *Schema
	Ranks      []RankProfile
}

// regionShare describes how one synthetic code region splits the run's
// counters: every region receives `frac` of each compute counter; the
// region flagged io receives all I/O bytes.
type regionShare struct {
	name string
	frac float64
	io   bool
}

// regionsFor derives the synthetic CCT shape from the application: the
// solver loop dominates, I/O-heavy codes get a visible io region, and
// communication-heavy codes a visible exchange region. Fractions sum
// to 1.
func regionsFor(a *apps.App) []regionShare {
	comm := 0.04 + a.Sig.CommFrac*0.3
	init := 0.05
	fin := 0.02
	solve := 1 - init - fin - comm
	return []regionShare{
		{name: "initialize", frac: init},
		{name: "solve", frac: solve},
		{name: "exchange_halo", frac: comm},
		{name: "finalize+io", frac: fin, io: true},
	}
}

// rankImbalanceSigma is the log-normal spread of counter totals across
// ranks from load imbalance.
const rankImbalanceSigma = 0.04

// magnitudeNoiseSigma is the extra log-normal attribution noise on
// magnitude-class counters (cache misses, I/O bytes, page-table size,
// stall cycles). Sampling-based profilers reconstruct these totals
// from periodic samples, so their absolute values are far less
// reliable than instruction counts; the multiplier amplifies each
// profiling stack's own base noise on top.
const (
	magnitudeNoiseSigma      = 0.12
	magnitudeNoiseMultiplier = 1.5
)

// isMagnitudeQuantity reports whether a quantity is a magnitude-class
// counter (exactly the ones the dataset z-scores rather than turning
// into instruction ratios).
func isMagnitudeQuantity(q Quantity) bool {
	switch q {
	case L1LoadMiss, L1StoreMiss, L2LoadMiss, L2StoreMiss,
		IOReadBytes, IOWriteBytes, EPTBytes, MemStallCycles:
		return true
	default:
		return false
	}
}

// Profiler simulates HPCToolkit (with CUPTI on NVIDIA and rocprofiler
// on AMD): it produces per-rank CCT profiles with noisy counters.
type Profiler struct {
	Model perfmodel.Model
}

// Run profiles one (app, input, machine, scale) execution. The supplied
// RNG drives runtime variability, measurement noise, and rank
// imbalance; the same seed reproduces the profile exactly.
func (p *Profiler) Run(a *apps.App, in apps.Input, m *arch.Machine, s perfmodel.Scale, rng *stats.RNG) (*Profile, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	res := perfmodel.ResourcesFor(a, m, s)
	schema, err := SchemaFor(m.Name, res.UsesGPU)
	if err != nil {
		return nil, err
	}
	b := p.Model.NoisyRuntime(a, in, m, s, rng)
	counts := p.Model.CountsFor(a, in, m, s)

	noiseSigma := m.CounterNoiseSigma
	if res.UsesGPU {
		noiseSigma = m.GPU.CounterNoiseSigma
	}

	prof := &Profile{
		App:        a.Name,
		Input:      in.Args,
		System:     m.Name,
		Scale:      s.String(),
		Nodes:      res.Nodes,
		Cores:      res.Cores,
		GPUs:       res.GPUs,
		NumRanks:   res.Ranks,
		UsesGPU:    res.UsesGPU,
		RuntimeSec: b.TotalSec,
		Schema:     schema,
	}

	regions := regionsFor(a)
	for rank := 0; rank < res.Ranks; rank++ {
		imbalance := rng.NoiseFactor(rankImbalanceSigma)
		root := &CCTNode{Name: "main", Counters: map[string]float64{}}
		for _, region := range regions {
			node := &CCTNode{
				Name:     region.name,
				Counters: p.regionCounters(schema, counts, region, imbalance, noiseSigma, rng),
			}
			root.Children = append(root.Children, node)
		}
		prof.Ranks = append(prof.Ranks, RankProfile{Rank: rank, Root: root})
	}
	return prof, nil
}

// regionCounters materializes the noisy counter map of one region for
// one rank.
func (p *Profiler) regionCounters(schema *Schema, c perfmodel.Counts, region regionShare, imbalance, sigma float64, rng *stats.RNG) map[string]float64 {
	truth := map[Quantity]float64{
		TotalInstr:     c.TotalInstructions,
		BranchInstr:    c.Branch,
		LoadInstr:      c.Load,
		StoreInstr:     c.Store,
		FP32Instr:      c.FP32,
		FP64Instr:      c.FP64,
		IntInstr:       c.Int,
		L1LoadMiss:     c.L1LoadMiss,
		L1StoreMiss:    c.L1StoreMiss,
		L2LoadMiss:     c.L2LoadMiss,
		L2StoreMiss:    c.L2StoreMiss,
		MemStallCycles: c.MemStallCycles,
	}
	out := make(map[string]float64, len(schema.Counters)+3)
	// Iterate quantities in canonical order (not map order) so RNG
	// consumption — and therefore the whole profile — is deterministic
	// for a given seed.
	for _, q := range Quantities() {
		name, ok := schema.Counters[q]
		if !ok {
			continue
		}
		qSigma := sigma
		if isMagnitudeQuantity(q) {
			qSigma = magnitudeNoiseSigma + magnitudeNoiseMultiplier*sigma
		}
		switch q {
		case IOReadBytes:
			if region.io {
				out[name] = c.IOReadBytes * imbalance * rng.NoiseFactor(qSigma)
			} else {
				out[name] = 0
			}
		case IOWriteBytes:
			if region.io {
				out[name] = c.IOWriteBytes * imbalance * rng.NoiseFactor(qSigma)
			} else {
				out[name] = 0
			}
		case EPTBytes:
			// Page-table size is a gauge, not a flow: every region
			// observes the same footprint (no regional split).
			out[name] = c.EPTBytes * rng.NoiseFactor(qSigma)
		default:
			out[name] = truth[q] * region.frac * imbalance * rng.NoiseFactor(qSigma)
		}
	}
	if schema.L1ViaHitRate {
		// CUPTI idiom: requests plus a hit rate instead of direct miss
		// counters. The hit rate is shared by loads and stores.
		loadReq := c.Load * region.frac * imbalance * rng.NoiseFactor(sigma)
		storeReq := c.Store * region.frac * imbalance * rng.NoiseFactor(sigma)
		missRate := 0.0
		if c.Load+c.Store > 0 {
			missRate = (c.L1LoadMiss + c.L1StoreMiss) / (c.Load + c.Store)
		}
		hitRate := 1 - missRate*rng.NoiseFactor(sigma)
		if hitRate < 0 {
			hitRate = 0
		}
		if hitRate > 1 {
			hitRate = 1
		}
		out[CounterLocalLoadRequests] = loadReq
		out[CounterLocalStoreRequests] = storeReq
		out[CounterLocalHitRate] = hitRate
	}
	return out
}

// Validate checks profile invariants: rank count, non-negative
// counters, and schema consistency across all CCT nodes.
func (prof *Profile) Validate() error {
	if len(prof.Ranks) != prof.NumRanks {
		return fmt.Errorf("profiler: profile advertises %d ranks but has %d", prof.NumRanks, len(prof.Ranks))
	}
	if prof.RuntimeSec <= 0 {
		return fmt.Errorf("profiler: non-positive runtime %v", prof.RuntimeSec)
	}
	var walk func(n *CCTNode) error
	walk = func(n *CCTNode) error {
		for name, v := range n.Counters {
			if v < 0 {
				return fmt.Errorf("profiler: negative counter %s=%v in %s", name, v, n.Name)
			}
		}
		for _, c := range n.Children {
			if err := walk(c); err != nil {
				return err
			}
		}
		return nil
	}
	for _, r := range prof.Ranks {
		if err := walk(r.Root); err != nil {
			return err
		}
	}
	return nil
}
