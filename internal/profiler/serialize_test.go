package profiler

import (
	"bytes"
	"path/filepath"
	"strings"
	"testing"

	"crossarch/internal/perfmodel"
)

func TestProfileSerializationRoundTrip(t *testing.T) {
	prof := profileOnce(t, "SW4lite", "Lassen", perfmodel.OneNode, 21)
	var buf bytes.Buffer
	if err := prof.Write(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProfile(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.App != prof.App || back.System != prof.System || back.Scale != prof.Scale {
		t.Fatalf("metadata changed: %+v", back)
	}
	if back.Schema.Name != "Lassen/GPU" {
		t.Errorf("schema resolved to %s", back.Schema.Name)
	}
	if back.NumRanks != prof.NumRanks || len(back.Ranks) != len(prof.Ranks) {
		t.Fatalf("ranks changed: %d vs %d", len(back.Ranks), len(prof.Ranks))
	}
	// Counter values must survive exactly.
	a := prof.Ranks[0].Root.Children[1].Counters
	b := back.Ranks[0].Root.Children[1].Counters
	if len(a) != len(b) {
		t.Fatalf("counter maps differ in size")
	}
	for name, v := range a {
		if b[name] != v {
			t.Fatalf("counter %s changed: %v vs %v", name, b[name], v)
		}
	}
}

func TestProfileFileRoundTrip(t *testing.T) {
	prof := profileOnce(t, "CoMD", "Quartz", perfmodel.OneCore, 22)
	path := filepath.Join(t.TempDir(), "run.profile.json.gz")
	if err := prof.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	back, err := ReadProfileFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if back.RuntimeSec != prof.RuntimeSec {
		t.Errorf("runtime changed")
	}
	if _, err := ReadProfileFile(filepath.Join(t.TempDir(), "missing")); err == nil {
		t.Error("missing file should error")
	}
}

func TestReadProfileRejectsGarbage(t *testing.T) {
	if _, err := ReadProfile(strings.NewReader("not gzip")); err == nil {
		t.Error("non-gzip input should error")
	}
}

func TestReadProfileRejectsForeignCounters(t *testing.T) {
	prof := profileOnce(t, "CoMD", "Quartz", perfmodel.OneCore, 23)
	// Inject a counter from the wrong vocabulary.
	prof.Ranks[0].Root.Children[0].Counters["SQ_INSTS"] = 1
	var buf bytes.Buffer
	if err := prof.Write(&buf); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadProfile(&buf); err == nil {
		t.Error("foreign counter should be rejected on load")
	}
}

func TestWriteRejectsInvalidProfile(t *testing.T) {
	prof := profileOnce(t, "CoMD", "Quartz", perfmodel.OneCore, 24)
	prof.NumRanks = 99
	var buf bytes.Buffer
	if err := prof.Write(&buf); err == nil {
		t.Error("invalid profile should not serialize")
	}
}
