package profiler

import (
	"math"
	"testing"

	"crossarch/internal/apps"
	"crossarch/internal/arch"
	"crossarch/internal/perfmodel"
	"crossarch/internal/stats"
)

func TestSchemaFor(t *testing.T) {
	cases := []struct {
		system  string
		gpu     bool
		wantErr bool
		name    string
	}{
		{"Quartz", false, false, "Quartz/CPU"},
		{"Ruby", false, false, "Ruby/CPU"},
		{"Lassen", false, false, "Lassen/CPU"},
		{"Corona", false, false, "Corona/CPU"},
		{"Lassen", true, false, "Lassen/GPU"},
		{"Corona", true, false, "Corona/GPU"},
		{"Quartz", true, true, ""},
		{"Ruby", true, true, ""},
		{"Sierra", false, true, ""},
	}
	for _, c := range cases {
		s, err := SchemaFor(c.system, c.gpu)
		if c.wantErr {
			if err == nil {
				t.Errorf("SchemaFor(%s,%v): expected error", c.system, c.gpu)
			}
			continue
		}
		if err != nil {
			t.Fatalf("SchemaFor(%s,%v): %v", c.system, c.gpu, err)
		}
		if s.Name != c.name {
			t.Errorf("schema name = %s, want %s", s.Name, c.name)
		}
	}
}

func TestPAPISchemaCompleteness(t *testing.T) {
	s, _ := SchemaFor("Quartz", false)
	for _, q := range Quantities() {
		if _, ok := s.Counters[q]; !ok {
			t.Errorf("PAPI schema missing %v", q)
		}
	}
	if s.Counters[BranchInstr] != "PAPI_BR_INS" {
		t.Errorf("branch counter = %s", s.Counters[BranchInstr])
	}
}

func TestCoronaGPUSchemaHasTableIIIGaps(t *testing.T) {
	s, _ := SchemaFor("Corona", true)
	// Table III marks these rows "–" for the AMD GPU.
	for _, q := range []Quantity{BranchInstr, LoadInstr, StoreInstr, FP32Instr, FP64Instr, L1LoadMiss, L1StoreMiss} {
		if _, ok := s.Counters[q]; ok {
			t.Errorf("Corona GPU schema should not measure %v", q)
		}
	}
	for _, q := range []Quantity{TotalInstr, L2LoadMiss, MemStallCycles} {
		if _, ok := s.Counters[q]; !ok {
			t.Errorf("Corona GPU schema should measure %v", q)
		}
	}
}

func TestLassenGPUUsesHitRateIdiom(t *testing.T) {
	s, _ := SchemaFor("Lassen", true)
	if !s.L1ViaHitRate {
		t.Error("Lassen GPU schema should derive L1 via hit rate")
	}
	if _, ok := s.Counters[L1LoadMiss]; ok {
		t.Error("Lassen GPU should not have a direct L1 miss counter")
	}
}

func profileOnce(t *testing.T, appName, sysName string, scale perfmodel.Scale, seed uint64) *Profile {
	t.Helper()
	a, err := apps.ByName(appName)
	if err != nil {
		t.Fatal(err)
	}
	m, err := arch.ByName(sysName)
	if err != nil {
		t.Fatal(err)
	}
	var p Profiler
	prof, err := p.Run(a, a.Inputs[1], m, scale, stats.NewRNG(seed))
	if err != nil {
		t.Fatal(err)
	}
	return prof
}

func TestProfileStructure(t *testing.T) {
	prof := profileOnce(t, "AMG", "Quartz", perfmodel.OneNode, 1)
	if err := prof.Validate(); err != nil {
		t.Fatal(err)
	}
	if prof.NumRanks != 36 || len(prof.Ranks) != 36 {
		t.Errorf("ranks = %d/%d, want 36", prof.NumRanks, len(prof.Ranks))
	}
	if prof.UsesGPU {
		t.Error("AMG on Quartz should not use a GPU")
	}
	if prof.RuntimeSec <= 0 {
		t.Error("non-positive runtime")
	}
	root := prof.Ranks[0].Root
	if root.Name != "main" || len(root.Children) != 4 {
		t.Errorf("CCT shape: root %s with %d children", root.Name, len(root.Children))
	}
}

func TestGPUProfileUsesDeviceSchema(t *testing.T) {
	prof := profileOnce(t, "AMG", "Lassen", perfmodel.OneNode, 2)
	if !prof.UsesGPU || prof.GPUs != 4 {
		t.Fatalf("AMG on Lassen: UsesGPU=%v GPUs=%d", prof.UsesGPU, prof.GPUs)
	}
	if prof.Schema.Name != "Lassen/GPU" {
		t.Errorf("schema = %s", prof.Schema.Name)
	}
	// The hit-rate idiom counters must be present in solve region.
	solve := prof.Ranks[0].Root.Children[1]
	if _, ok := solve.Counters[CounterLocalHitRate]; !ok {
		t.Error("missing local_hit_rate counter")
	}
	hr := solve.Counters[CounterLocalHitRate]
	if hr < 0 || hr > 1 {
		t.Errorf("hit rate %v outside [0,1]", hr)
	}
}

func TestCPUOnlyAppOnGPUMachineUsesCPUCounters(t *testing.T) {
	prof := profileOnce(t, "CoMD", "Corona", perfmodel.OneNode, 3)
	if prof.UsesGPU {
		t.Fatal("CoMD cannot use GPUs")
	}
	if prof.Schema.Name != "Corona/CPU" {
		t.Errorf("schema = %s", prof.Schema.Name)
	}
	if prof.NumRanks != 48 {
		t.Errorf("ranks = %d, want 48 (Corona cores)", prof.NumRanks)
	}
}

func TestCounterTotalsNearTruth(t *testing.T) {
	a, _ := apps.ByName("CoMD")
	m, _ := arch.ByName("Quartz")
	var mod perfmodel.Model
	truth := mod.CountsFor(a, a.Inputs[1], m, perfmodel.OneNode)
	prof := profileOnce(t, "CoMD", "Quartz", perfmodel.OneNode, 4)

	// Sum the branch counter over regions of rank 0 and compare with
	// the ground truth within noise tolerance.
	sum := 0.0
	for _, child := range prof.Ranks[0].Root.Children {
		sum += child.Counters["PAPI_BR_INS"]
	}
	if rel := math.Abs(sum-truth.Branch) / truth.Branch; rel > 0.25 {
		t.Errorf("profiled branch count off by %.0f%%", rel*100)
	}
}

func TestIOAttributedToIORegion(t *testing.T) {
	prof := profileOnce(t, "DeepCam", "Quartz", perfmodel.OneNode, 5)
	var ioRegion, solveRegion *CCTNode
	for _, c := range prof.Ranks[0].Root.Children {
		switch c.Name {
		case "finalize+io":
			ioRegion = c
		case "solve":
			solveRegion = c
		}
	}
	if ioRegion == nil || solveRegion == nil {
		t.Fatal("expected regions missing")
	}
	if ioRegion.Counters["IO_BYTES_READ"] <= 0 {
		t.Error("io region has no read bytes")
	}
	if solveRegion.Counters["IO_BYTES_READ"] != 0 {
		t.Error("solve region should have zero I/O")
	}
}

func TestProfilerDeterminism(t *testing.T) {
	a := profileOnce(t, "miniFE", "Ruby", perfmodel.OneNode, 42)
	b := profileOnce(t, "miniFE", "Ruby", perfmodel.OneNode, 42)
	if a.RuntimeSec != b.RuntimeSec {
		t.Error("same seed, different runtime")
	}
	for name, v := range a.Ranks[0].Root.Children[1].Counters {
		if b.Ranks[0].Root.Children[1].Counters[name] != v {
			t.Fatalf("same seed, different counter %s", name)
		}
	}
	c := profileOnce(t, "miniFE", "Ruby", perfmodel.OneNode, 43)
	if c.RuntimeSec == a.RuntimeSec {
		t.Error("different seed produced identical runtime")
	}
}

func TestGPUCountersNoisierThanCPU(t *testing.T) {
	// Repeated profiles of the same run: the relative spread of a GPU
	// counter (Corona) must exceed that of the matching CPU counter
	// (Quartz), implementing the paper's Fig. 3 mechanism.
	a, _ := apps.ByName("XSBench")
	quartz, _ := arch.ByName("Quartz")
	corona, _ := arch.ByName("Corona")
	var p Profiler
	spread := func(m *arch.Machine, counter string) float64 {
		rng := stats.NewRNG(7)
		vals := make([]float64, 200)
		for i := range vals {
			prof, err := p.Run(a, a.Inputs[1], m, perfmodel.OneCore, rng)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0.0
			for _, c := range prof.Ranks[0].Root.Children {
				sum += c.Counters[counter]
			}
			vals[i] = sum
		}
		return stats.StdDev(vals) / stats.Mean(vals)
	}
	cpuSpread := spread(quartz, "PAPI_TOT_INS")
	gpuSpread := spread(corona, "SQ_INSTS")
	if gpuSpread <= cpuSpread {
		t.Errorf("GPU counter cv %v <= CPU cv %v; GPU counters must be noisier", gpuSpread, cpuSpread)
	}
}

func TestValidateCatchesNegativeCounter(t *testing.T) {
	prof := profileOnce(t, "AMG", "Quartz", perfmodel.OneCore, 9)
	prof.Ranks[0].Root.Children[0].Counters["PAPI_BR_INS"] = -1
	if err := prof.Validate(); err == nil {
		t.Error("negative counter should fail validation")
	}
}

func TestValidateCatchesRankMismatch(t *testing.T) {
	prof := profileOnce(t, "AMG", "Quartz", perfmodel.OneCore, 10)
	prof.NumRanks = 99
	if err := prof.Validate(); err == nil {
		t.Error("rank mismatch should fail validation")
	}
}

func TestQuantityString(t *testing.T) {
	if BranchInstr.String() != "BranchInstr" {
		t.Errorf("BranchInstr.String = %s", BranchInstr)
	}
	if Quantity(99).String() == "" {
		t.Error("unknown quantity should still render")
	}
	if len(Quantities()) != int(numQuantities) {
		t.Error("Quantities length wrong")
	}
}

func BenchmarkProfileRun(b *testing.B) {
	a, _ := apps.ByName("AMG")
	m, _ := arch.ByName("Quartz")
	var p Profiler
	rng := stats.NewRNG(1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Run(a, a.Inputs[1], m, perfmodel.OneNode, rng); err != nil {
			b.Fatal(err)
		}
	}
}

func TestMagnitudeCountersNoisierThanInstructionCounters(t *testing.T) {
	// Sampled magnitude counters (cache misses) carry extra attribution
	// noise relative to instruction counts — the mechanism that keeps
	// the learned models anchored on the scale-free intensity ratios.
	a, _ := apps.ByName("CoMD")
	m, _ := arch.ByName("Quartz")
	var p Profiler
	rng := stats.NewRNG(71)
	spread := func(counter string) float64 {
		vals := make([]float64, 300)
		for i := range vals {
			prof, err := p.Run(a, a.Inputs[0], m, perfmodel.OneCore, rng)
			if err != nil {
				t.Fatal(err)
			}
			sum := 0.0
			for _, c := range prof.Ranks[0].Root.Children {
				sum += c.Counters[counter]
			}
			vals[i] = sum
		}
		return stats.StdDev(vals) / stats.Mean(vals)
	}
	instr := spread("PAPI_BR_INS")
	misses := spread("PAPI_L1_LDM")
	if misses <= 2*instr {
		t.Errorf("miss-counter cv %v should far exceed instruction-counter cv %v", misses, instr)
	}
}
