// Package profiler simulates the paper's profiling toolchain: it runs
// an (application, input, machine, scale) tuple through the analytic
// runtime model and produces an HPCToolkit-style profile — a small
// calling-context tree per MPI rank whose nodes carry architecture-
// specific hardware counters with realistic measurement noise. The
// counter names and their per-architecture availability follow the
// paper's Table III, including the AMD (Corona) GPU column's missing
// counters, which HPCToolkit's then-new rocprofiler support could not
// record.
package profiler

import "fmt"

// Quantity is a canonical measurable, independent of architecture.
// Table III's rows are these quantities; its columns map them to the
// per-architecture counter names below.
type Quantity int

const (
	TotalInstr Quantity = iota
	BranchInstr
	LoadInstr
	StoreInstr
	FP32Instr
	FP64Instr
	IntInstr
	L1LoadMiss
	L1StoreMiss
	L2LoadMiss
	L2StoreMiss
	IOReadBytes
	IOWriteBytes
	EPTBytes
	MemStallCycles
	numQuantities
)

// String names the quantity for diagnostics.
func (q Quantity) String() string {
	names := [...]string{
		"TotalInstr", "BranchInstr", "LoadInstr", "StoreInstr", "FP32Instr",
		"FP64Instr", "IntInstr", "L1LoadMiss", "L1StoreMiss", "L2LoadMiss",
		"L2StoreMiss", "IOReadBytes", "IOWriteBytes", "EPTBytes", "MemStallCycles",
	}
	if int(q) < len(names) {
		return names[q]
	}
	return fmt.Sprintf("Quantity(%d)", int(q))
}

// Quantities lists all canonical quantities in order.
func Quantities() []Quantity {
	qs := make([]Quantity, numQuantities)
	for i := range qs {
		qs[i] = Quantity(i)
	}
	return qs
}

// Schema is one profiling context's counter vocabulary: which counter
// name records each canonical quantity. Quantities absent from the map
// cannot be measured in that context (Table III's "–" cells).
type Schema struct {
	// Name identifies the context, e.g. "Lassen/GPU".
	Name string
	// Counters maps quantity -> architecture counter name.
	Counters map[Quantity]string
	// L1ViaHitRate marks the NVIDIA CUPTI idiom where L1 misses are not
	// a direct counter: the profiler emits *_requests plus a hit-rate
	// counter and the analysis layer multiplies them out (the paper's
	// local_load_requests x local_hit_rate derivation).
	L1ViaHitRate bool
}

// papiSchema is the mature CPU counter set shared by Quartz, Ruby, and
// the Power9/Rome host sides.
func papiSchema(system string) *Schema {
	return &Schema{
		Name: system + "/CPU",
		Counters: map[Quantity]string{
			TotalInstr:     "PAPI_TOT_INS",
			BranchInstr:    "PAPI_BR_INS",
			LoadInstr:      "PAPI_LD_INS",
			StoreInstr:     "PAPI_SR_INS",
			FP32Instr:      "PAPI_SP_OPS",
			FP64Instr:      "PAPI_DP_OPS",
			IntInstr:       "ARITH",
			L1LoadMiss:     "PAPI_L1_LDM",
			L1StoreMiss:    "PAPI_L1_STM",
			L2LoadMiss:     "PAPI_L2_LDM",
			L2StoreMiss:    "PAPI_L2_STM",
			IOReadBytes:    "IO_BYTES_READ",
			IOWriteBytes:   "IO_BYTES_WRITTEN",
			EPTBytes:       "EPT_SIZE",
			MemStallCycles: "PAPI_MEM_SCY",
		},
	}
}

// lassenGPUSchema is the CUPTI counter set. L1 misses are derived from
// request counts and a hit rate rather than read directly.
func lassenGPUSchema() *Schema {
	return &Schema{
		Name:         "Lassen/GPU",
		L1ViaHitRate: true,
		Counters: map[Quantity]string{
			TotalInstr:  "inst_executed",
			BranchInstr: "cf_executed",
			LoadInstr:   "inst_executed_global_loads",
			StoreInstr:  "inst_executed_global_stores",
			FP32Instr:   "flop_count_sp",
			FP64Instr:   "flop_count_dp",
			IntInstr:    "inst_integer",
			// L1LoadMiss / L1StoreMiss intentionally absent as direct
			// counters; see the request/hit-rate pair below.
			L2LoadMiss:     "l2_read_misses",
			L2StoreMiss:    "l2_write_misses",
			IOReadBytes:    "IO_BYTES_READ",
			IOWriteBytes:   "IO_BYTES_WRITTEN",
			EPTBytes:       "EPT_SIZE",
			MemStallCycles: "GINST_STL_ANY",
		},
	}
}

// CUPTI request/hit-rate counter names used when L1ViaHitRate is set.
const (
	CounterLocalLoadRequests  = "local_load_requests"
	CounterLocalStoreRequests = "local_store_requests"
	CounterLocalHitRate       = "local_hit_rate"
)

// coronaGPUSchema is the rocprofiler counter set. Table III marks most
// instruction-mix rows "–" for the AMD GPU: only total issue, integer
// VALU work, L2 traffic, and the memory-unit stall are recordable,
// which is a large part of why Corona-sourced counters predict worst in
// the paper's Fig. 3.
func coronaGPUSchema() *Schema {
	return &Schema{
		Name: "Corona/GPU",
		Counters: map[Quantity]string{
			TotalInstr:     "SQ_INSTS",
			IntInstr:       "SQ_INSTS_VALU",
			L2LoadMiss:     "TCC_MISS_RD", // TCC_MISS_sum x TCC_EA_RDREQ share
			L2StoreMiss:    "TCC_MISS_WR", // TCC_MISS_sum x TCC_EA_WRREQ share
			IOReadBytes:    "IO_BYTES_READ",
			IOWriteBytes:   "IO_BYTES_WRITTEN",
			EPTBytes:       "EPT_SIZE",
			MemStallCycles: "MemUnitStalled",
		},
	}
}

// SchemaFor returns the counter schema for a system name and execution
// side. CPU-side profiling on any system uses the PAPI vocabulary; the
// two GPU systems have their own device vocabularies.
func SchemaFor(system string, usesGPU bool) (*Schema, error) {
	switch {
	case !usesGPU:
		switch system {
		case "Quartz", "Ruby", "Lassen", "Corona":
			return papiSchema(system), nil
		}
	case system == "Lassen":
		return lassenGPUSchema(), nil
	case system == "Corona":
		return coronaGPUSchema(), nil
	case system == "Quartz" || system == "Ruby":
		return nil, fmt.Errorf("profiler: %s has no GPUs", system)
	}
	return nil, fmt.Errorf("profiler: unknown system %q", system)
}
