package profiler

import (
	"compress/gzip"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"
)

// Profiles serialize as gzip-compressed JSON "measurement files",
// standing in for HPCToolkit's measurement directories: a profiling
// run can be recorded once and analysed (or fed to a predictor) later
// without re-simulating. Schemas are stored by name and resolved back
// through SchemaFor on load, so files stay small and the counter
// vocabulary stays canonical.

// profileEnvelope is the on-disk form; Schema is flattened to its name.
type profileEnvelope struct {
	App        string        `json:"app"`
	Input      string        `json:"input"`
	System     string        `json:"system"`
	Scale      string        `json:"scale"`
	Nodes      int           `json:"nodes"`
	Cores      int           `json:"cores"`
	GPUs       int           `json:"gpus"`
	NumRanks   int           `json:"num_ranks"`
	UsesGPU    bool          `json:"uses_gpu"`
	RuntimeSec float64       `json:"runtime_sec"`
	Ranks      []RankProfile `json:"ranks"`
}

// Write serializes the profile to w as gzipped JSON.
func (prof *Profile) Write(w io.Writer) error {
	if err := prof.Validate(); err != nil {
		return err
	}
	zw := gzip.NewWriter(w)
	env := profileEnvelope{
		App: prof.App, Input: prof.Input, System: prof.System, Scale: prof.Scale,
		Nodes: prof.Nodes, Cores: prof.Cores, GPUs: prof.GPUs,
		NumRanks: prof.NumRanks, UsesGPU: prof.UsesGPU,
		RuntimeSec: prof.RuntimeSec, Ranks: prof.Ranks,
	}
	if err := json.NewEncoder(zw).Encode(env); err != nil {
		return fmt.Errorf("profiler: encoding profile: %w", err)
	}
	return zw.Close()
}

// WriteFile writes the profile to the named file. By convention the
// extension is ".profile.json.gz".
func (prof *Profile) WriteFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := prof.Write(f); err != nil {
		return err
	}
	return f.Close()
}

// ReadProfile deserializes a profile written by Write, re-resolving
// its counter schema from the system name and execution side.
func ReadProfile(r io.Reader) (*Profile, error) {
	zr, err := gzip.NewReader(r)
	if err != nil {
		return nil, fmt.Errorf("profiler: opening gzip stream: %w", err)
	}
	defer zr.Close()
	var env profileEnvelope
	if err := json.NewDecoder(zr).Decode(&env); err != nil {
		return nil, fmt.Errorf("profiler: decoding profile: %w", err)
	}
	schema, err := SchemaFor(env.System, env.UsesGPU)
	if err != nil {
		return nil, err
	}
	prof := &Profile{
		App: env.App, Input: env.Input, System: env.System, Scale: env.Scale,
		Nodes: env.Nodes, Cores: env.Cores, GPUs: env.GPUs,
		NumRanks: env.NumRanks, UsesGPU: env.UsesGPU,
		RuntimeSec: env.RuntimeSec, Schema: schema, Ranks: env.Ranks,
	}
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	// Sanity-check counter names against the resolved schema so a file
	// edited to mix vocabularies is rejected early.
	known := map[string]bool{
		CounterLocalLoadRequests:  true,
		CounterLocalStoreRequests: true,
		CounterLocalHitRate:       true,
	}
	for _, name := range schema.Counters {
		known[name] = true
	}
	if len(prof.Ranks) > 0 {
		var check func(n *CCTNode) error
		check = func(n *CCTNode) error {
			for name := range n.Counters {
				if !known[name] {
					return fmt.Errorf("profiler: counter %q not in schema %s (valid: %s...)",
						name, schema.Name, strings.Join(someKeys(known, 3), ", "))
				}
			}
			for _, c := range n.Children {
				if err := check(c); err != nil {
					return err
				}
			}
			return nil
		}
		if err := check(prof.Ranks[0].Root); err != nil {
			return nil, err
		}
	}
	return prof, nil
}

// ReadProfileFile reads a profile from the named file.
func ReadProfileFile(path string) (*Profile, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadProfile(f)
}

func someKeys(m map[string]bool, n int) []string {
	out := make([]string, 0, n)
	for k := range m {
		out = append(out, k)
		if len(out) == n {
			break
		}
	}
	return out
}
