package apps

import (
	"strings"
	"testing"
)

func TestCatalogSize(t *testing.T) {
	all := All()
	if len(all) != 20 {
		t.Fatalf("catalog has %d applications, Table II lists 20", len(all))
	}
	gpu := 0
	ml := 0
	seen := map[string]bool{}
	for _, a := range all {
		if seen[a.Name] {
			t.Errorf("duplicate application %s", a.Name)
		}
		seen[a.Name] = true
		if a.GPUSupport {
			gpu++
		}
		if a.MLStack {
			ml++
		}
	}
	if gpu != 11 {
		t.Errorf("%d GPU-capable applications, paper says eleven", gpu)
	}
	if ml != 4 {
		t.Errorf("%d ML-stack applications, want 4 (CANDLE, CosmoFlow, miniGAN, DeepCam)", ml)
	}
}

func TestAllValidate(t *testing.T) {
	for _, a := range All() {
		if err := a.Validate(); err != nil {
			t.Errorf("%s: %v", a.Name, err)
		}
	}
}

func TestMLAppsHaveStackNoise(t *testing.T) {
	for _, a := range All() {
		if a.MLStack && a.Sig.StackNoiseSigma < 0.1 {
			t.Errorf("%s is ML-stack but StackNoiseSigma=%v; Fig. 5 needs noisy ML apps", a.Name, a.Sig.StackNoiseSigma)
		}
		if !a.MLStack && a.Sig.StackNoiseSigma > 0.05 {
			t.Errorf("%s is not ML-stack but has large stack noise %v", a.Name, a.Sig.StackNoiseSigma)
		}
	}
}

func TestMLAppsAreFP32Heavy(t *testing.T) {
	for _, a := range All() {
		if a.MLStack && a.Sig.FP32Frac < a.Sig.FP64Frac {
			t.Errorf("%s: ML app should be FP32-dominant", a.Name)
		}
	}
}

func TestSignatureCharacters(t *testing.T) {
	// Spot-check that signatures encode the documented application
	// characters the feature-importance analysis depends on.
	xs, _ := ByName("XSBench")
	comd, _ := ByName("CoMD")
	if xs.Sig.BranchFrac <= comd.Sig.BranchFrac {
		t.Error("XSBench should be branchier than CoMD")
	}
	if xs.Sig.L1MissRate <= comd.Sig.L1MissRate {
		t.Error("XSBench should be cache-hostile relative to CoMD")
	}
	ember, _ := ByName("Ember")
	if ember.Sig.CommFrac <= comd.Sig.CommFrac {
		t.Error("Ember is a communication benchmark; CommFrac should dominate")
	}
	deepcam, _ := ByName("DeepCam")
	if deepcam.Sig.IOReadBytes <= comd.Sig.IOReadBytes {
		t.Error("DeepCam's input pipeline should dwarf CoMD's I/O")
	}
}

func TestByName(t *testing.T) {
	a, err := ByName("miniFE")
	if err != nil || a.Name != "miniFE" {
		t.Fatalf("ByName(miniFE) = %v, %v", a, err)
	}
	if _, err := ByName("LINPACK"); err == nil {
		t.Error("unknown app should error")
	}
}

func TestNames(t *testing.T) {
	names := Names()
	if len(names) != 20 || names[0] != "AMG" || names[19] != "XSBench" {
		t.Errorf("Names() = %v", names)
	}
}

func TestInputsHaveDistinctScales(t *testing.T) {
	for _, a := range All() {
		seen := map[float64]bool{}
		for _, in := range a.Inputs {
			if seen[in.Scale] {
				t.Errorf("%s: duplicate input scale %v", a.Name, in.Scale)
			}
			seen[in.Scale] = true
			if !strings.Contains(in.Args, " ") {
				t.Errorf("%s: input %q does not look like a flag", a.Name, in.Args)
			}
		}
	}
}

func TestSignatureValidateRejects(t *testing.T) {
	bad := Signature{BranchFrac: 0.9, LoadFrac: 0.9, BaseInstructions: 1}
	if err := bad.Validate(); err == nil {
		t.Error("over-unity mix should fail")
	}
	bad2 := Signature{BranchFrac: -0.1, BaseInstructions: 1}
	if err := bad2.Validate(); err == nil {
		t.Error("negative fraction should fail")
	}
	bad3 := Signature{BaseInstructions: 0}
	if err := bad3.Validate(); err == nil {
		t.Error("zero work should fail")
	}
	bad4 := Signature{BaseInstructions: 1, IOReadBytes: -5}
	if err := bad4.Validate(); err == nil {
		t.Error("negative IO should fail")
	}
}

func TestAppValidateRejects(t *testing.T) {
	a := &App{Name: "", Sig: Signature{BaseInstructions: 1}}
	if err := a.Validate(); err == nil {
		t.Error("empty name should fail")
	}
	b := &App{Name: "x", Sig: Signature{BaseInstructions: 1}}
	if err := b.Validate(); err == nil {
		t.Error("no inputs should fail")
	}
	c := &App{Name: "x", Sig: Signature{BaseInstructions: 1}, Inputs: []Input{{Args: "-s 0", Scale: 0}}}
	if err := c.Validate(); err == nil {
		t.Error("zero-scale input should fail")
	}
	d := &App{Name: "x", GPUSupport: true, Sig: Signature{BaseInstructions: 1},
		Inputs: []Input{{Args: "-s 1", Scale: 1}}}
	if err := d.Validate(); err == nil {
		t.Error("GPU support without offload fraction should fail")
	}
}

func TestFreshInstances(t *testing.T) {
	a := AMG()
	a.Sig.BranchFrac = 0.99
	if AMG().Sig.BranchFrac == 0.99 {
		t.Error("AMG() shares state between calls")
	}
}

func TestTableIIDescriptions(t *testing.T) {
	descs := map[string]string{
		"AMG":      "Algebraic multigrid solver",
		"XSBench":  "Monte Carlo neutronics simulations",
		"SWFFT":    "Distributed-memory parallel 3D FFT",
		"miniVite": "Graph community detection",
	}
	for name, want := range descs {
		a, err := ByName(name)
		if err != nil {
			t.Fatal(err)
		}
		if a.Description != want {
			t.Errorf("%s description = %q, want %q", name, a.Description, want)
		}
	}
}
