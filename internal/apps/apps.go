// Package apps models the twenty scientific applications of the paper's
// Table II (ECP Proxy Applications Suite and E4S Test Suite members).
// Each application carries a latent behaviour signature — instruction
// mix, cache locality, memory and I/O volumes, strong-scaling behaviour,
// and GPU suitability — from which the runtime model derives execution
// times and the profiler derives hardware counters. Signatures are
// hand-tuned to reflect each code's published character (e.g. XSBench is
// a branchy, cache-hostile table-lookup kernel; CoMD is a compute-dense
// FP64 force loop; the ML codes are FP32-heavy with noisy Python
// software stacks).
package apps

import "fmt"

// Signature is the latent behaviour description of one application. All
// instruction-mix fields are fractions of total instructions and must
// sum to at most 1 (the remainder is address arithmetic and other
// uncounted work).
type Signature struct {
	// Instruction mix.
	BranchFrac float64 // control-flow instructions
	LoadFrac   float64 // memory loads
	StoreFrac  float64 // memory stores
	FP32Frac   float64 // single-precision floating point
	FP64Frac   float64 // double-precision floating point
	IntFrac    float64 // integer arithmetic

	// Cache behaviour: miss probabilities per load/store at each level.
	L1MissRate float64
	L2MissRate float64 // conditioned on an L1 miss

	// BranchMissRate is the fraction of branches mispredicted, a proxy
	// for control-flow irregularity.
	BranchMissRate float64

	// Work: total dynamic instructions for the unit-scale input.
	BaseInstructions float64

	// Strong scaling: serial fraction (Amdahl) and communication
	// intensity (fraction of compute time spent communicating per
	// doubling of ranks).
	SerialFrac float64
	CommFrac   float64

	// GPU offload: fraction of the work that is data-parallel enough to
	// run on an accelerator, and how efficiently it uses one.
	GPUParallelFrac float64
	GPUEfficiency   float64

	// I/O bytes for the unit-scale input.
	IOReadBytes  float64
	IOWriteBytes float64

	// MemFootprintMB for the unit-scale input (drives the extended page
	// table size counter).
	MemFootprintMB float64

	// StackNoiseSigma is extra run-to-run runtime variability from the
	// software stack; the ML/Python applications carry large values,
	// which is the mechanism behind the paper's Fig. 5 observation that
	// those applications are hardest to predict.
	StackNoiseSigma float64
}

// Validate checks that the signature is internally consistent.
func (s *Signature) Validate() error {
	mix := s.BranchFrac + s.LoadFrac + s.StoreFrac + s.FP32Frac + s.FP64Frac + s.IntFrac
	if mix > 1.0001 {
		return fmt.Errorf("apps: instruction mix sums to %v > 1", mix)
	}
	for name, v := range map[string]float64{
		"BranchFrac": s.BranchFrac, "LoadFrac": s.LoadFrac, "StoreFrac": s.StoreFrac,
		"FP32Frac": s.FP32Frac, "FP64Frac": s.FP64Frac, "IntFrac": s.IntFrac,
		"L1MissRate": s.L1MissRate, "L2MissRate": s.L2MissRate,
		"BranchMissRate": s.BranchMissRate, "SerialFrac": s.SerialFrac,
		"CommFrac": s.CommFrac, "GPUParallelFrac": s.GPUParallelFrac,
		"GPUEfficiency": s.GPUEfficiency,
	} {
		if v < 0 || v > 1 {
			return fmt.Errorf("apps: %s = %v outside [0,1]", name, v)
		}
	}
	if s.BaseInstructions <= 0 {
		return fmt.Errorf("apps: BaseInstructions = %v must be positive", s.BaseInstructions)
	}
	if s.IOReadBytes < 0 || s.IOWriteBytes < 0 || s.MemFootprintMB < 0 || s.StackNoiseSigma < 0 {
		return fmt.Errorf("apps: negative volume field")
	}
	return nil
}

// Input is one problem configuration an application is run with.
type Input struct {
	// Args is the notional command line, used as the input identifier
	// in the dataset ("-s 5" style).
	Args string
	// Scale multiplies the signature's base work, I/O, and footprint.
	Scale float64
}

// App is one Table II application.
type App struct {
	// Name and Description match Table II.
	Name        string
	Description string
	// GPUSupport marks the eleven applications that can offload.
	GPUSupport bool
	// MLStack marks the deep-learning / Python-stack applications
	// (CANDLE, CosmoFlow, miniGAN, DeepCam).
	MLStack bool
	// Sig is the latent behaviour signature.
	Sig Signature
	// Inputs are the problem configurations used for dataset runs.
	Inputs []Input
}

// Validate checks the application definition.
func (a *App) Validate() error {
	if a.Name == "" {
		return fmt.Errorf("apps: empty name")
	}
	if err := a.Sig.Validate(); err != nil {
		return fmt.Errorf("apps: %s: %w", a.Name, err)
	}
	if len(a.Inputs) == 0 {
		return fmt.Errorf("apps: %s has no inputs", a.Name)
	}
	for _, in := range a.Inputs {
		if in.Scale <= 0 {
			return fmt.Errorf("apps: %s input %q has scale %v", a.Name, in.Args, in.Scale)
		}
	}
	if a.GPUSupport && a.Sig.GPUParallelFrac == 0 {
		return fmt.Errorf("apps: %s claims GPU support with zero offload fraction", a.Name)
	}
	return nil
}

// scaledInputs builds a standard input sweep around the given scales.
func scaledInputs(flag string, scales ...float64) []Input {
	ins := make([]Input, len(scales))
	for i, s := range scales {
		ins[i] = Input{Args: fmt.Sprintf("%s %g", flag, s), Scale: s}
	}
	return ins
}
