package apps

import "crossarch/internal/stats"

// Jittered returns a copy of the application whose behaviour signature
// is perturbed by multiplicative log-normal noise with the given
// log-space sigma. Each dataset trial runs a jittered instance: real
// campaigns never execute the exact same dynamic instruction mix twice
// (different random seeds, mesh partitions, and iteration counts shift
// the branch, memory, and floating-point profile run to run). The
// jitter flows through both the runtime model and the counter
// simulation, so the perturbed behaviour stays self-consistent — and
// the intensity features carry unique causal signal about each run
// rather than merely identifying the application.
func (a *App) Jittered(rng *stats.RNG, sigma float64) *App {
	out := *a
	sig := a.Sig

	perturb := func(v float64) float64 {
		if v == 0 {
			return 0
		}
		p := v * rng.NoiseFactor(sigma)
		if p > 1 {
			p = 1
		}
		return p
	}

	// Only counter-observable behaviour is jittered: the instruction
	// mix and the cache miss rates leave direct traces in the profiled
	// counters, so the model can account for their run-to-run movement.
	// Unobservable knobs (offload fraction, communication intensity,
	// branch predictability) stay fixed — perturbing them would inject
	// irreducible target noise with no corresponding feature signal.
	sig.BranchFrac = perturb(sig.BranchFrac)
	sig.LoadFrac = perturb(sig.LoadFrac)
	sig.StoreFrac = perturb(sig.StoreFrac)
	sig.FP32Frac = perturb(sig.FP32Frac)
	sig.FP64Frac = perturb(sig.FP64Frac)
	sig.IntFrac = perturb(sig.IntFrac)
	sig.L1MissRate = perturb(sig.L1MissRate)
	sig.L2MissRate = perturb(sig.L2MissRate)

	// Keep the instruction mix a valid distribution: renormalize if the
	// perturbation pushed the total past 1.
	mix := sig.BranchFrac + sig.LoadFrac + sig.StoreFrac + sig.FP32Frac + sig.FP64Frac + sig.IntFrac
	if mix > 1 {
		inv := 1 / mix
		sig.BranchFrac *= inv
		sig.LoadFrac *= inv
		sig.StoreFrac *= inv
		sig.FP32Frac *= inv
		sig.FP64Frac *= inv
		sig.IntFrac *= inv
	}

	out.Sig = sig
	return &out
}
