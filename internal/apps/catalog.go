package apps

import "fmt"

// The catalog below is the paper's Table II. Signature values are
// hand-tuned to match each code's published computational character;
// DESIGN.md documents this substitution. The paper states eleven of the
// twenty applications have GPU support without an unambiguous list; the
// eleven chosen here follow each project's documented GPU backends.

// AMG is the algebraic multigrid solver proxy (hypre): memory-bound
// sparse kernels with irregular access and moderate control flow.
func AMG() *App {
	return &App{
		Name: "AMG", Description: "Algebraic multigrid solver", GPUSupport: true,
		Sig: Signature{
			BranchFrac: 0.11, LoadFrac: 0.34, StoreFrac: 0.10,
			FP32Frac: 0.00, FP64Frac: 0.22, IntFrac: 0.14,
			L1MissRate: 0.14, L2MissRate: 0.45, BranchMissRate: 0.06,
			BaseInstructions: 2.4e11, SerialFrac: 0.04, CommFrac: 0.06,
			GPUParallelFrac: 0.80, GPUEfficiency: 0.45,
			IOReadBytes: 2e8, IOWriteBytes: 5e8, MemFootprintMB: 4200,
		},
		Inputs: scaledInputs("-problem", 0.5, 1, 2, 4, 8),
	}
}

// CANDLE is the cancer deep-learning benchmark suite: FP32 dense
// kernels under a heavyweight Python stack.
func CANDLE() *App {
	return &App{
		Name: "CANDLE", Description: "Deep learning models for cancer studies",
		GPUSupport: true, MLStack: true,
		Sig: Signature{
			BranchFrac: 0.05, LoadFrac: 0.28, StoreFrac: 0.12,
			FP32Frac: 0.38, FP64Frac: 0.00, IntFrac: 0.10,
			L1MissRate: 0.05, L2MissRate: 0.25, BranchMissRate: 0.02,
			BaseInstructions: 6.5e11, SerialFrac: 0.08, CommFrac: 0.05,
			GPUParallelFrac: 0.93, GPUEfficiency: 0.70,
			IOReadBytes: 6e9, IOWriteBytes: 1e9, MemFootprintMB: 9000,
			StackNoiseSigma: 0.11,
		},
		Inputs: scaledInputs("--epochs", 0.5, 1, 2, 4),
	}
}

// CoMD is the classical molecular-dynamics proxy: compute-dense FP64
// force loops with excellent locality. CPU-only in this study.
func CoMD() *App {
	return &App{
		Name: "CoMD", Description: "Molecular dynamics and materials science algorithms",
		Sig: Signature{
			BranchFrac: 0.07, LoadFrac: 0.26, StoreFrac: 0.07,
			FP32Frac: 0.00, FP64Frac: 0.38, IntFrac: 0.12,
			L1MissRate: 0.03, L2MissRate: 0.20, BranchMissRate: 0.03,
			BaseInstructions: 3.2e11, SerialFrac: 0.02, CommFrac: 0.04,
			IOReadBytes: 1e7, IOWriteBytes: 2e8, MemFootprintMB: 1800,
		},
		Inputs: scaledInputs("-N", 0.5, 1, 2, 4, 8),
	}
}

// CosmoFlow is the 3D CNN for cosmology: FP32 convolutions, large I/O
// input pipeline, Python/TensorFlow stack.
func CosmoFlow() *App {
	return &App{
		Name: "CosmoFlow", Description: "3D convolutional neural network for astrophysical studies",
		GPUSupport: true, MLStack: true,
		Sig: Signature{
			BranchFrac: 0.04, LoadFrac: 0.30, StoreFrac: 0.13,
			FP32Frac: 0.36, FP64Frac: 0.00, IntFrac: 0.09,
			L1MissRate: 0.06, L2MissRate: 0.30, BranchMissRate: 0.02,
			BaseInstructions: 8.0e11, SerialFrac: 0.10, CommFrac: 0.07,
			GPUParallelFrac: 0.92, GPUEfficiency: 0.65,
			IOReadBytes: 2.5e10, IOWriteBytes: 8e8, MemFootprintMB: 12000,
			StackNoiseSigma: 0.12,
		},
		Inputs: scaledInputs("--samples", 0.5, 1, 2, 4),
	}
}

// CRADL is the multiphysics ALE hydrodynamics proxy: mixed FP64 stencil
// and remap phases with significant branching.
func CRADL() *App {
	return &App{
		Name: "CRADL", Description: "Multiphysics and ALE hydrodynamics", GPUSupport: true,
		Sig: Signature{
			BranchFrac: 0.13, LoadFrac: 0.30, StoreFrac: 0.11,
			FP32Frac: 0.02, FP64Frac: 0.24, IntFrac: 0.11,
			L1MissRate: 0.09, L2MissRate: 0.38, BranchMissRate: 0.07,
			BaseInstructions: 4.5e11, SerialFrac: 0.05, CommFrac: 0.08,
			GPUParallelFrac: 0.72, GPUEfficiency: 0.40,
			IOReadBytes: 1e9, IOWriteBytes: 4e9, MemFootprintMB: 6000,
		},
		Inputs: scaledInputs("--zones", 0.5, 1, 2, 4),
	}
}

// Ember captures communication patterns (halo/sweep motifs): almost all
// time in MPI, minimal math. CPU-only.
func Ember() *App {
	return &App{
		Name: "Ember", Description: "Communication patterns",
		Sig: Signature{
			BranchFrac: 0.15, LoadFrac: 0.25, StoreFrac: 0.10,
			FP32Frac: 0.00, FP64Frac: 0.04, IntFrac: 0.26,
			L1MissRate: 0.07, L2MissRate: 0.30, BranchMissRate: 0.05,
			BaseInstructions: 6.0e10, SerialFrac: 0.03, CommFrac: 0.30,
			IOReadBytes: 1e6, IOWriteBytes: 1e7, MemFootprintMB: 600,
		},
		Inputs: scaledInputs("-iters", 0.5, 1, 2, 4, 8),
	}
}

// ExaMiniMD is the Kokkos molecular-dynamics miniapp: CoMD-like kernels
// with a portable GPU backend.
func ExaMiniMD() *App {
	return &App{
		Name: "ExaMiniMD", Description: "Molecular dynamics simulations", GPUSupport: true,
		Sig: Signature{
			BranchFrac: 0.08, LoadFrac: 0.27, StoreFrac: 0.08,
			FP32Frac: 0.00, FP64Frac: 0.35, IntFrac: 0.12,
			L1MissRate: 0.04, L2MissRate: 0.22, BranchMissRate: 0.03,
			BaseInstructions: 3.6e11, SerialFrac: 0.02, CommFrac: 0.05,
			GPUParallelFrac: 0.88, GPUEfficiency: 0.62,
			IOReadBytes: 1e7, IOWriteBytes: 2e8, MemFootprintMB: 2200,
		},
		Inputs: scaledInputs("-n", 0.5, 1, 2, 4, 8),
	}
}

// Laghos is the high-order FEM compressible-gas-dynamics proxy: dense
// small-matrix FP64 kernels, RAJA/CUDA backends.
func Laghos() *App {
	return &App{
		Name: "Laghos", Description: "FEM for compressible gas dynamics", GPUSupport: true,
		Sig: Signature{
			BranchFrac: 0.09, LoadFrac: 0.29, StoreFrac: 0.09,
			FP32Frac: 0.00, FP64Frac: 0.30, IntFrac: 0.11,
			L1MissRate: 0.06, L2MissRate: 0.28, BranchMissRate: 0.04,
			BaseInstructions: 5.2e11, SerialFrac: 0.03, CommFrac: 0.06,
			GPUParallelFrac: 0.84, GPUEfficiency: 0.55,
			IOReadBytes: 3e8, IOWriteBytes: 1e9, MemFootprintMB: 3800,
		},
		Inputs: scaledInputs("-rs", 0.5, 1, 2, 4),
	}
}

// MiniFE is the unstructured implicit FEM proxy: sparse CG solve,
// memory-bandwidth bound.
func MiniFE() *App {
	return &App{
		Name: "miniFE", Description: "Unstructured implicit FEM codes", GPUSupport: true,
		Sig: Signature{
			BranchFrac: 0.08, LoadFrac: 0.36, StoreFrac: 0.10,
			FP32Frac: 0.00, FP64Frac: 0.24, IntFrac: 0.12,
			L1MissRate: 0.16, L2MissRate: 0.50, BranchMissRate: 0.04,
			BaseInstructions: 2.8e11, SerialFrac: 0.03, CommFrac: 0.07,
			GPUParallelFrac: 0.86, GPUEfficiency: 0.50,
			IOReadBytes: 1e7, IOWriteBytes: 3e8, MemFootprintMB: 5200,
		},
		Inputs: scaledInputs("-nx", 0.5, 1, 2, 4, 8),
	}
}

// MiniGAN is the generative-adversarial-network training proxy: FP32
// dense kernels, PyTorch stack.
func MiniGAN() *App {
	return &App{
		Name: "miniGAN", Description: "Generative Adversarial Neural Network training",
		GPUSupport: true, MLStack: true,
		Sig: Signature{
			BranchFrac: 0.05, LoadFrac: 0.29, StoreFrac: 0.13,
			FP32Frac: 0.35, FP64Frac: 0.00, IntFrac: 0.10,
			L1MissRate: 0.05, L2MissRate: 0.26, BranchMissRate: 0.02,
			BaseInstructions: 5.5e11, SerialFrac: 0.09, CommFrac: 0.06,
			GPUParallelFrac: 0.91, GPUEfficiency: 0.68,
			IOReadBytes: 4e9, IOWriteBytes: 1.5e9, MemFootprintMB: 8000,
			StackNoiseSigma: 0.10,
		},
		Inputs: scaledInputs("--epochs", 0.5, 1, 2, 4),
	}
}

// MiniQMC is the real-space quantum Monte Carlo proxy: B-spline
// evaluation with random access, mixed precision. CPU-only here.
func MiniQMC() *App {
	return &App{
		Name: "miniQMC", Description: "Real space quantum Monte Carlo",
		Sig: Signature{
			BranchFrac: 0.10, LoadFrac: 0.31, StoreFrac: 0.08,
			FP32Frac: 0.12, FP64Frac: 0.18, IntFrac: 0.12,
			L1MissRate: 0.11, L2MissRate: 0.42, BranchMissRate: 0.08,
			BaseInstructions: 3.0e11, SerialFrac: 0.04, CommFrac: 0.03,
			IOReadBytes: 5e8, IOWriteBytes: 2e8, MemFootprintMB: 3500,
		},
		Inputs: scaledInputs("-w", 0.5, 1, 2, 4),
	}
}

// MiniTri is the triangle-counting / Monte Carlo graph proxy: integer
// and branch heavy, cache hostile. CPU-only.
func MiniTri() *App {
	return &App{
		Name: "miniTri", Description: "Monte Carlo algorithms",
		Sig: Signature{
			BranchFrac: 0.19, LoadFrac: 0.33, StoreFrac: 0.06,
			FP32Frac: 0.00, FP64Frac: 0.02, IntFrac: 0.26,
			L1MissRate: 0.22, L2MissRate: 0.60, BranchMissRate: 0.13,
			BaseInstructions: 1.8e11, SerialFrac: 0.06, CommFrac: 0.05,
			IOReadBytes: 2e9, IOWriteBytes: 1e8, MemFootprintMB: 4800,
		},
		Inputs: scaledInputs("--graph", 0.5, 1, 2, 4),
	}
}

// MiniVite is the Louvain community-detection proxy: irregular graph
// traversal, branch heavy. CPU-only.
func MiniVite() *App {
	return &App{
		Name: "miniVite", Description: "Graph community detection",
		Sig: Signature{
			BranchFrac: 0.18, LoadFrac: 0.34, StoreFrac: 0.07,
			FP32Frac: 0.00, FP64Frac: 0.06, IntFrac: 0.22,
			L1MissRate: 0.20, L2MissRate: 0.58, BranchMissRate: 0.12,
			BaseInstructions: 2.2e11, SerialFrac: 0.07, CommFrac: 0.09,
			IOReadBytes: 3e9, IOWriteBytes: 2e8, MemFootprintMB: 5600,
		},
		Inputs: scaledInputs("-n", 0.5, 1, 2, 4),
	}
}

// DeepCam is the climate-segmentation deep-learning benchmark: FP32
// convolutions with a huge input pipeline and Python stack.
func DeepCam() *App {
	return &App{
		Name: "DeepCam", Description: "Climate segmentation benchmark",
		GPUSupport: true, MLStack: true,
		Sig: Signature{
			BranchFrac: 0.04, LoadFrac: 0.31, StoreFrac: 0.13,
			FP32Frac: 0.37, FP64Frac: 0.00, IntFrac: 0.08,
			L1MissRate: 0.06, L2MissRate: 0.28, BranchMissRate: 0.02,
			BaseInstructions: 9.0e11, SerialFrac: 0.11, CommFrac: 0.08,
			GPUParallelFrac: 0.94, GPUEfficiency: 0.72,
			IOReadBytes: 4e10, IOWriteBytes: 1e9, MemFootprintMB: 14000,
			StackNoiseSigma: 0.13,
		},
		Inputs: scaledInputs("--batches", 0.5, 1, 2),
	}
}

// Nekbone is the spectral-element Navier-Stokes proxy: dense
// small-tensor FP64 contractions, CG solve. CPU-only here.
func Nekbone() *App {
	return &App{
		Name: "Nekbone", Description: "Navier-Stokes solver",
		Sig: Signature{
			BranchFrac: 0.06, LoadFrac: 0.30, StoreFrac: 0.08,
			FP32Frac: 0.00, FP64Frac: 0.34, IntFrac: 0.10,
			L1MissRate: 0.05, L2MissRate: 0.24, BranchMissRate: 0.03,
			BaseInstructions: 4.0e11, SerialFrac: 0.02, CommFrac: 0.07,
			IOReadBytes: 1e7, IOWriteBytes: 1e8, MemFootprintMB: 2600,
		},
		Inputs: scaledInputs("-elems", 0.5, 1, 2, 4, 8),
	}
}

// PICSARLite is the particle-in-cell proxy: particle push (compute) plus
// scatter/gather (memory, branchy). CPU-only here.
func PICSARLite() *App {
	return &App{
		Name: "PICSARLite", Description: "Particle-in-Cell simulation",
		Sig: Signature{
			BranchFrac: 0.12, LoadFrac: 0.31, StoreFrac: 0.12,
			FP32Frac: 0.00, FP64Frac: 0.22, IntFrac: 0.12,
			L1MissRate: 0.12, L2MissRate: 0.40, BranchMissRate: 0.07,
			BaseInstructions: 3.8e11, SerialFrac: 0.04, CommFrac: 0.08,
			IOReadBytes: 2e8, IOWriteBytes: 2e9, MemFootprintMB: 5000,
		},
		Inputs: scaledInputs("--particles", 0.5, 1, 2, 4),
	}
}

// SW4lite is the seismic-wave stencil proxy: regular FP64 stencils,
// bandwidth bound, RAJA/CUDA backends.
func SW4lite() *App {
	return &App{
		Name: "SW4lite", Description: "Seismic wave simulation", GPUSupport: true,
		Sig: Signature{
			BranchFrac: 0.06, LoadFrac: 0.33, StoreFrac: 0.11,
			FP32Frac: 0.00, FP64Frac: 0.28, IntFrac: 0.10,
			L1MissRate: 0.10, L2MissRate: 0.35, BranchMissRate: 0.02,
			BaseInstructions: 5.0e11, SerialFrac: 0.02, CommFrac: 0.06,
			GPUParallelFrac: 0.90, GPUEfficiency: 0.60,
			IOReadBytes: 5e8, IOWriteBytes: 3e9, MemFootprintMB: 7000,
		},
		Inputs: scaledInputs("-grid", 0.5, 1, 2, 4),
	}
}

// SWFFT is the distributed 3D FFT proxy: all-to-all dominated with
// compute-light butterflies. CPU-only here.
func SWFFT() *App {
	return &App{
		Name: "SWFFT", Description: "Distributed-memory parallel 3D FFT",
		Sig: Signature{
			BranchFrac: 0.07, LoadFrac: 0.32, StoreFrac: 0.13,
			FP32Frac: 0.00, FP64Frac: 0.20, IntFrac: 0.14,
			L1MissRate: 0.13, L2MissRate: 0.44, BranchMissRate: 0.04,
			BaseInstructions: 2.6e11, SerialFrac: 0.03, CommFrac: 0.22,
			IOReadBytes: 1e7, IOWriteBytes: 1e8, MemFootprintMB: 6500,
		},
		Inputs: scaledInputs("-ngx", 0.5, 1, 2, 4),
	}
}

// ThornadoMini is the radiative-transfer moment solver: dense FP64
// linear algebra per zone. CPU-only here.
func ThornadoMini() *App {
	return &App{
		Name: "Thornado-mini", Description: "Radiative transfer solver in multi-group, two-moment estimations",
		Sig: Signature{
			BranchFrac: 0.07, LoadFrac: 0.28, StoreFrac: 0.09,
			FP32Frac: 0.00, FP64Frac: 0.33, IntFrac: 0.11,
			L1MissRate: 0.06, L2MissRate: 0.26, BranchMissRate: 0.03,
			BaseInstructions: 4.4e11, SerialFrac: 0.05, CommFrac: 0.05,
			IOReadBytes: 4e8, IOWriteBytes: 2e9, MemFootprintMB: 4400,
		},
		Inputs: scaledInputs("--zones", 0.5, 1, 2, 4),
	}
}

// XSBench is the Monte Carlo neutronics macroscopic-cross-section
// lookup kernel: random table lookups, branch and cache hostile, but
// embarrassingly parallel (it has an OpenMP-offload GPU port).
func XSBench() *App {
	return &App{
		Name: "XSBench", Description: "Monte Carlo neutronics simulations", GPUSupport: true,
		Sig: Signature{
			BranchFrac: 0.17, LoadFrac: 0.36, StoreFrac: 0.04,
			FP32Frac: 0.00, FP64Frac: 0.10, IntFrac: 0.22,
			L1MissRate: 0.30, L2MissRate: 0.70, BranchMissRate: 0.11,
			BaseInstructions: 2.0e11, SerialFrac: 0.01, CommFrac: 0.02,
			GPUParallelFrac: 0.95, GPUEfficiency: 0.30,
			IOReadBytes: 8e8, IOWriteBytes: 5e7, MemFootprintMB: 5800,
		},
		Inputs: scaledInputs("-l", 0.5, 1, 2, 4, 8),
	}
}

// All returns the twenty Table II applications in table order.
func All() []*App {
	return []*App{
		AMG(), CANDLE(), CoMD(), CosmoFlow(), CRADL(),
		Ember(), ExaMiniMD(), Laghos(), MiniFE(), MiniGAN(),
		MiniQMC(), MiniTri(), MiniVite(), DeepCam(), Nekbone(),
		PICSARLite(), SW4lite(), SWFFT(), ThornadoMini(), XSBench(),
	}
}

// ByName returns the named application or an error.
func ByName(name string) (*App, error) {
	for _, a := range All() {
		if a.Name == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("apps: unknown application %q", name)
}

// Names returns all application names in table order.
func Names() []string {
	as := All()
	names := make([]string, len(as))
	for i, a := range as {
		names[i] = a.Name
	}
	return names
}
