package dataframe

import (
	"math"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"crossarch/internal/stats"
)

func sampleFrame() *Frame {
	f := New()
	f.AddFloat("x", []float64{1, 2, 3, 4})
	f.AddFloat("y", []float64{10, 20, 30, 40})
	f.AddString("app", []string{"AMG", "CoMD", "AMG", "SW4lite"})
	return f
}

func TestShape(t *testing.T) {
	f := sampleFrame()
	if f.NumRows() != 4 || f.NumCols() != 3 {
		t.Fatalf("shape = %dx%d, want 4x3", f.NumRows(), f.NumCols())
	}
	want := []string{"x", "y", "app"}
	if got := f.Columns(); !reflect.DeepEqual(got, want) {
		t.Errorf("Columns = %v", got)
	}
	if !f.Has("x") || f.Has("missing") {
		t.Error("Has is wrong")
	}
	if f.KindOf("x") != Float || f.KindOf("app") != String {
		t.Error("KindOf is wrong")
	}
}

func TestEmptyFrame(t *testing.T) {
	f := New()
	if f.NumRows() != 0 || f.NumCols() != 0 {
		t.Error("empty frame should be 0x0")
	}
}

func TestAddPanics(t *testing.T) {
	f := sampleFrame()
	mustPanic(t, "length mismatch", func() { f.AddFloat("z", []float64{1}) })
	mustPanic(t, "duplicate name", func() { f.AddFloat("x", []float64{1, 2, 3, 4}) })
	mustPanic(t, "missing column", func() { f.Floats("nope") })
	mustPanic(t, "wrong kind", func() { f.Floats("app") })
	mustPanic(t, "wrong kind strings", func() { f.Strings("x") })
}

func mustPanic(t *testing.T, label string, fn func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s: expected panic", label)
		}
	}()
	fn()
}

func TestFloatsAliases(t *testing.T) {
	f := sampleFrame()
	f.Floats("x")[0] = 99
	if f.Floats("x")[0] != 99 {
		t.Error("Floats should alias backing storage")
	}
}

func TestCloneIsDeep(t *testing.T) {
	f := sampleFrame()
	g := f.Clone()
	g.Floats("x")[0] = 99
	g.Strings("app")[0] = "other"
	if f.Floats("x")[0] == 99 || f.Strings("app")[0] == "other" {
		t.Error("Clone must not share storage")
	}
}

func TestSelectAndDrop(t *testing.T) {
	f := sampleFrame()
	s := f.Select("y", "app")
	if got := s.Columns(); !reflect.DeepEqual(got, []string{"y", "app"}) {
		t.Errorf("Select columns = %v", got)
	}
	s.Floats("y")[0] = -1
	if f.Floats("y")[0] == -1 {
		t.Error("Select must copy")
	}
	d := f.Drop("y", "never-existed")
	if got := d.Columns(); !reflect.DeepEqual(got, []string{"x", "app"}) {
		t.Errorf("Drop columns = %v", got)
	}
}

func TestRename(t *testing.T) {
	f := sampleFrame()
	f.Rename("x", "branch")
	if !f.Has("branch") || f.Has("x") {
		t.Error("Rename failed")
	}
	if f.Floats("branch")[1] != 2 {
		t.Error("Rename lost data")
	}
	mustPanic(t, "rename missing", func() { f.Rename("zzz", "w") })
	mustPanic(t, "rename collision", func() { f.Rename("branch", "y") })
}

func TestTakeRows(t *testing.T) {
	f := sampleFrame()
	g := f.TakeRows([]int{3, 0, 0})
	if g.NumRows() != 3 {
		t.Fatalf("rows = %d", g.NumRows())
	}
	if got := g.Floats("x"); !reflect.DeepEqual(got, []float64{4, 1, 1}) {
		t.Errorf("TakeRows x = %v", got)
	}
	if got := g.Strings("app"); !reflect.DeepEqual(got, []string{"SW4lite", "AMG", "AMG"}) {
		t.Errorf("TakeRows app = %v", got)
	}
	mustPanic(t, "oob index", func() { f.TakeRows([]int{4}) })
	mustPanic(t, "negative index", func() { f.TakeRows([]int{-1}) })
}

func TestFilter(t *testing.T) {
	f := sampleFrame()
	g := f.FilterEq("app", "AMG")
	if g.NumRows() != 2 {
		t.Errorf("FilterEq rows = %d", g.NumRows())
	}
	h := f.FilterNeq("app", "AMG")
	if h.NumRows() != 2 {
		t.Errorf("FilterNeq rows = %d", h.NumRows())
	}
	x := f.Floats("x")
	big := f.Filter(func(i int) bool { return x[i] > 2 })
	if big.NumRows() != 2 {
		t.Errorf("Filter rows = %d", big.NumRows())
	}
}

func TestAppend(t *testing.T) {
	f := sampleFrame()
	g := sampleFrame()
	f.Append(g)
	if f.NumRows() != 8 {
		t.Fatalf("Append rows = %d", f.NumRows())
	}
	if f.Floats("x")[4] != 1 {
		t.Error("Append data wrong")
	}
	empty := New()
	empty.Append(sampleFrame())
	if empty.NumRows() != 4 || empty.NumCols() != 3 {
		t.Error("Append into empty frame failed")
	}
	mismatched := New().AddFloat("x", []float64{1})
	mustPanic(t, "append mismatch", func() { sampleFrame().Append(mismatched) })
}

func TestUnique(t *testing.T) {
	f := sampleFrame()
	got := f.Unique("app")
	want := []string{"AMG", "CoMD", "SW4lite"}
	if !reflect.DeepEqual(got, want) {
		t.Errorf("Unique = %v", got)
	}
}

func TestMatrix(t *testing.T) {
	f := sampleFrame()
	m := f.Matrix([]string{"y", "x"})
	if len(m) != 4 || len(m[0]) != 2 {
		t.Fatalf("matrix shape %dx%d", len(m), len(m[0]))
	}
	if m[2][0] != 30 || m[2][1] != 3 {
		t.Errorf("matrix row 2 = %v", m[2])
	}
	// The matrix must be a copy: mutating it must not touch the frame.
	m[0][0] = -5
	if f.Floats("y")[0] == -5 {
		t.Error("Matrix must copy data")
	}
}

func TestHead(t *testing.T) {
	f := sampleFrame()
	h := f.Head(2)
	if !strings.Contains(h, "app") || !strings.Contains(h, "CoMD") {
		t.Errorf("Head output missing content:\n%s", h)
	}
	if strings.Contains(h, "SW4lite") {
		t.Error("Head(2) should not include row 3")
	}
	// n larger than the frame is fine.
	_ = f.Head(100)
}

func TestZScore(t *testing.T) {
	f := New().AddFloat("v", []float64{2, 4, 4, 4, 5, 5, 7, 9})
	s := f.ZScore("v")
	if math.Abs(s.Mean-5) > 1e-12 || math.Abs(s.Std-2) > 1e-12 {
		t.Fatalf("fitted stats = %+v", s)
	}
	vs := f.Floats("v")
	if math.Abs(stats.Mean(vs)) > 1e-12 {
		t.Errorf("z-scored mean = %v", stats.Mean(vs))
	}
	if math.Abs(stats.StdDev(vs)-1) > 1e-12 {
		t.Errorf("z-scored std = %v", stats.StdDev(vs))
	}
}

func TestZScoreConstantColumn(t *testing.T) {
	f := New().AddFloat("v", []float64{3, 3, 3})
	f.ZScore("v")
	for _, v := range f.Floats("v") {
		if v != 0 {
			t.Errorf("constant column z-score = %v, want 0", v)
		}
	}
}

func TestApplyZScoreReplaysFit(t *testing.T) {
	train := New().AddFloat("v", []float64{1, 2, 3, 4, 5})
	test := New().AddFloat("v", []float64{3})
	s := train.ZScore("v")
	test.ApplyZScore("v", s)
	// Train mean is 3, so the test value must map to 0.
	if got := test.Floats("v")[0]; math.Abs(got) > 1e-12 {
		t.Errorf("replayed z-score = %v, want 0", got)
	}
}

func TestOneHot(t *testing.T) {
	f := sampleFrame()
	g := f.OneHot("app", []string{"AMG", "CoMD", "SW4lite", "XSBench"})
	if g.Has("app") {
		t.Error("OneHot should drop the source column")
	}
	for _, c := range []string{"app=AMG", "app=CoMD", "app=SW4lite", "app=XSBench"} {
		if !g.Has(c) {
			t.Fatalf("missing one-hot column %s", c)
		}
	}
	if got := g.Floats("app=AMG"); !reflect.DeepEqual(got, []float64{1, 0, 1, 0}) {
		t.Errorf("app=AMG = %v", got)
	}
	if got := g.Floats("app=XSBench"); !reflect.DeepEqual(got, []float64{0, 0, 0, 0}) {
		t.Errorf("unseen category should be all zeros, got %v", got)
	}
	// Each row has at most one 1 across the encoded columns.
	for i := 0; i < g.NumRows(); i++ {
		sum := g.Floats("app=AMG")[i] + g.Floats("app=CoMD")[i] + g.Floats("app=SW4lite")[i] + g.Floats("app=XSBench")[i]
		if sum != 1 {
			t.Errorf("row %d one-hot sum = %v", i, sum)
		}
	}
}

func TestKindString(t *testing.T) {
	if Float.String() != "float" || String.String() != "string" {
		t.Error("Kind.String wrong")
	}
	if !strings.Contains(Kind(7).String(), "7") {
		t.Error("unknown Kind.String wrong")
	}
}

// Property: TakeRows(Perm(n)) preserves the multiset of every column.
func TestTakeRowsPermutationProperty(t *testing.T) {
	rng := stats.NewRNG(123)
	err := quick.Check(func(seed uint64) bool {
		r := stats.NewRNG(seed)
		n := 1 + r.Intn(50)
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.Float64()
		}
		f := New().AddFloat("v", append([]float64(nil), vals...))
		g := f.TakeRows(rng.Perm(n))
		a := append([]float64(nil), vals...)
		b := append([]float64(nil), g.Floats("v")...)
		return stats.Sum(a) == stats.Sum(b) && len(a) == len(b)
	}, &quick.Config{MaxCount: 50})
	if err != nil {
		t.Fatal(err)
	}
}
