package dataframe

import (
	"fmt"
	"strings"

	"crossarch/internal/stats"
)

// Describe summarizes every float column of the frame (count, mean,
// std, min, quartiles, max) as an aligned text table, the pandas
// `describe()` convenience used by the examples and exploratory tools.
func (f *Frame) Describe() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%-24s %8s %12s %12s %12s %12s %12s\n",
		"column", "count", "mean", "std", "min", "median", "max")
	for _, c := range f.cols {
		if c.kind != Float {
			continue
		}
		s := stats.Describe(c.floats)
		fmt.Fprintf(&b, "%-24s %8d %12.4g %12.4g %12.4g %12.4g %12.4g\n",
			c.name, s.Count, s.Mean, s.Std, s.Min, s.Median, s.Max)
	}
	return b.String()
}

// DescribeColumn returns the summary statistics of one float column.
func (f *Frame) DescribeColumn(name string) stats.Summary {
	return stats.Describe(f.Floats(name))
}
