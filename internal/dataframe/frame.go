// Package dataframe implements a small column-oriented data table used as
// the in-memory representation of the MP-HPC dataset. It plays the role
// that pandas plays in the paper's pipeline: holding profiled counter
// rows, deriving features, normalizing, one-hot encoding, and producing
// train/test splits and cross-validation folds for the ML layer.
//
// A Frame owns float64 and string columns of equal length. Columns are
// stored contiguously, so feature-matrix extraction for model training is
// a cheap copy per column rather than per cell.
package dataframe

import (
	"fmt"
	"math"
	"sort"
	"strings"
)

// Kind discriminates column storage types.
type Kind int

const (
	// Float columns store float64 values and are the only kind usable
	// as model features or targets.
	Float Kind = iota
	// String columns store labels such as application or system names.
	String
)

func (k Kind) String() string {
	switch k {
	case Float:
		return "float"
	case String:
		return "string"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

type column struct {
	name    string
	kind    Kind
	floats  []float64
	strings []string
}

func (c *column) length() int {
	if c.kind == Float {
		return len(c.floats)
	}
	return len(c.strings)
}

// Frame is a table of named, equally-sized columns. The zero value is an
// empty frame ready for AddFloat/AddString.
type Frame struct {
	cols  []*column
	index map[string]int
}

// New returns an empty Frame.
func New() *Frame {
	return &Frame{index: make(map[string]int)}
}

// NumRows returns the number of rows (0 for an empty frame).
func (f *Frame) NumRows() int {
	if len(f.cols) == 0 {
		return 0
	}
	return f.cols[0].length()
}

// NumCols returns the number of columns.
func (f *Frame) NumCols() int { return len(f.cols) }

// Columns returns the column names in insertion order.
func (f *Frame) Columns() []string {
	names := make([]string, len(f.cols))
	for i, c := range f.cols {
		names[i] = c.name
	}
	return names
}

// Has reports whether a column with the given name exists.
func (f *Frame) Has(name string) bool {
	_, ok := f.index[name]
	return ok
}

// KindOf returns the storage kind of the named column. It panics if the
// column does not exist.
func (f *Frame) KindOf(name string) Kind {
	return f.col(name).kind
}

func (f *Frame) col(name string) *column {
	i, ok := f.index[name]
	if !ok {
		panic(fmt.Sprintf("dataframe: no column %q", name))
	}
	return f.cols[i]
}

func (f *Frame) checkLen(name string, n int) {
	if rows := f.NumRows(); len(f.cols) > 0 && n != rows {
		panic(fmt.Sprintf("dataframe: column %q has %d rows, frame has %d", name, n, rows))
	}
	if _, dup := f.index[name]; dup {
		panic(fmt.Sprintf("dataframe: duplicate column %q", name))
	}
}

// AddFloat appends a float column. The frame takes ownership of data. It
// panics on a length mismatch or duplicate name.
func (f *Frame) AddFloat(name string, data []float64) *Frame {
	f.checkLen(name, len(data))
	if f.index == nil {
		f.index = make(map[string]int)
	}
	f.index[name] = len(f.cols)
	f.cols = append(f.cols, &column{name: name, kind: Float, floats: data})
	return f
}

// AddString appends a string column with the same rules as AddFloat.
func (f *Frame) AddString(name string, data []string) *Frame {
	f.checkLen(name, len(data))
	if f.index == nil {
		f.index = make(map[string]int)
	}
	f.index[name] = len(f.cols)
	f.cols = append(f.cols, &column{name: name, kind: String, strings: data})
	return f
}

// Floats returns the backing slice of a float column. Mutating the
// returned slice mutates the frame. It panics if the column is missing or
// not a float column.
func (f *Frame) Floats(name string) []float64 {
	c := f.col(name)
	if c.kind != Float {
		panic(fmt.Sprintf("dataframe: column %q is %v, not float", name, c.kind))
	}
	return c.floats
}

// Strings returns the backing slice of a string column, with the same
// aliasing caveat as Floats.
func (f *Frame) Strings(name string) []string {
	c := f.col(name)
	if c.kind != String {
		panic(fmt.Sprintf("dataframe: column %q is %v, not string", name, c.kind))
	}
	return c.strings
}

// Clone returns a deep copy of the frame.
func (f *Frame) Clone() *Frame {
	out := New()
	for _, c := range f.cols {
		switch c.kind {
		case Float:
			out.AddFloat(c.name, append([]float64(nil), c.floats...))
		case String:
			out.AddString(c.name, append([]string(nil), c.strings...))
		}
	}
	return out
}

// Select returns a deep copy containing only the named columns, in the
// given order. It panics if any column is missing.
func (f *Frame) Select(names ...string) *Frame {
	out := New()
	for _, name := range names {
		c := f.col(name)
		switch c.kind {
		case Float:
			out.AddFloat(c.name, append([]float64(nil), c.floats...))
		case String:
			out.AddString(c.name, append([]string(nil), c.strings...))
		}
	}
	return out
}

// Drop returns a deep copy without the named columns. Unknown names are
// ignored so callers can drop optional metadata unconditionally.
func (f *Frame) Drop(names ...string) *Frame {
	dropped := make(map[string]bool, len(names))
	for _, n := range names {
		dropped[n] = true
	}
	keep := make([]string, 0, len(f.cols))
	for _, c := range f.cols {
		if !dropped[c.name] {
			keep = append(keep, c.name)
		}
	}
	return f.Select(keep...)
}

// Rename returns the frame with the column renamed in place. It panics if
// from is missing or to already exists.
func (f *Frame) Rename(from, to string) *Frame {
	if from == to {
		return f
	}
	i, ok := f.index[from]
	if !ok {
		panic(fmt.Sprintf("dataframe: no column %q", from))
	}
	if _, dup := f.index[to]; dup {
		panic(fmt.Sprintf("dataframe: duplicate column %q", to))
	}
	delete(f.index, from)
	f.index[to] = i
	f.cols[i].name = to
	return f
}

// TakeRows returns a new frame containing the rows at the given indices,
// in order. Indices may repeat (bootstrap sampling). It panics on an
// out-of-range index.
func (f *Frame) TakeRows(idx []int) *Frame {
	rows := f.NumRows()
	out := New()
	for _, c := range f.cols {
		switch c.kind {
		case Float:
			data := make([]float64, len(idx))
			for j, i := range idx {
				if i < 0 || i >= rows {
					panic(fmt.Sprintf("dataframe: row index %d out of range [0,%d)", i, rows))
				}
				data[j] = c.floats[i]
			}
			out.AddFloat(c.name, data)
		case String:
			data := make([]string, len(idx))
			for j, i := range idx {
				if i < 0 || i >= rows {
					panic(fmt.Sprintf("dataframe: row index %d out of range [0,%d)", i, rows))
				}
				data[j] = c.strings[i]
			}
			out.AddString(c.name, data)
		}
	}
	return out
}

// Filter returns the rows for which pred returns true. pred receives the
// row index into the original frame.
func (f *Frame) Filter(pred func(row int) bool) *Frame {
	var idx []int
	for i := 0; i < f.NumRows(); i++ {
		if pred(i) {
			idx = append(idx, i)
		}
	}
	return f.TakeRows(idx)
}

// FilterEq returns the rows whose string column equals value.
func (f *Frame) FilterEq(col, value string) *Frame {
	s := f.Strings(col)
	return f.Filter(func(i int) bool { return s[i] == value })
}

// FilterNeq returns the rows whose string column differs from value.
func (f *Frame) FilterNeq(col, value string) *Frame {
	s := f.Strings(col)
	return f.Filter(func(i int) bool { return s[i] != value })
}

// Append concatenates other below f. Both frames must have identical
// column names, kinds, and order.
func (f *Frame) Append(other *Frame) *Frame {
	if len(f.cols) == 0 {
		// Appending to an empty frame adopts the other frame's schema.
		clone := other.Clone()
		f.cols = clone.cols
		f.index = clone.index
		return f
	}
	if len(f.cols) != len(other.cols) {
		panic("dataframe: Append with mismatched column count")
	}
	for i, c := range f.cols {
		oc := other.cols[i]
		if c.name != oc.name || c.kind != oc.kind {
			panic(fmt.Sprintf("dataframe: Append column mismatch at %d: %s/%v vs %s/%v",
				i, c.name, c.kind, oc.name, oc.kind))
		}
		switch c.kind {
		case Float:
			c.floats = append(c.floats, oc.floats...)
		case String:
			c.strings = append(c.strings, oc.strings...)
		}
	}
	return f
}

// Unique returns the sorted distinct values of a string column.
func (f *Frame) Unique(col string) []string {
	seen := make(map[string]bool)
	for _, v := range f.Strings(col) {
		seen[v] = true
	}
	out := make([]string, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Strings(out)
	return out
}

// Matrix extracts the named float columns as a dense row-major matrix
// suitable for model training: result[i][j] is row i of column names[j].
func (f *Frame) Matrix(names []string) [][]float64 {
	cols := make([][]float64, len(names))
	for j, n := range names {
		cols[j] = f.Floats(n)
	}
	rows := f.NumRows()
	out := make([][]float64, rows)
	flat := make([]float64, rows*len(names))
	for i := 0; i < rows; i++ {
		row := flat[i*len(names) : (i+1)*len(names)]
		for j := range names {
			row[j] = cols[j][i]
		}
		out[i] = row
	}
	return out
}

// Head renders the first n rows as an aligned text table for debugging
// and example output.
func (f *Frame) Head(n int) string {
	if n > f.NumRows() {
		n = f.NumRows()
	}
	var b strings.Builder
	for i, c := range f.cols {
		if i > 0 {
			b.WriteByte('\t')
		}
		b.WriteString(c.name)
	}
	b.WriteByte('\n')
	for r := 0; r < n; r++ {
		for i, c := range f.cols {
			if i > 0 {
				b.WriteByte('\t')
			}
			switch c.kind {
			case Float:
				fmt.Fprintf(&b, "%.6g", c.floats[r])
			case String:
				b.WriteString(c.strings[r])
			}
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// Stats holds the fitted normalization parameters of one column so the
// identical transform can be replayed on held-out data.
type Stats struct {
	Mean float64
	Std  float64
}

// FitZScore computes the mean and standard deviation of a float column
// without modifying it.
func (f *Frame) FitZScore(col string) Stats {
	xs := f.Floats(col)
	n := float64(len(xs))
	if n == 0 {
		return Stats{}
	}
	mean := 0.0
	for _, x := range xs {
		mean += x
	}
	mean /= n
	variance := 0.0
	for _, x := range xs {
		d := x - mean
		variance += d * d
	}
	variance /= n
	return Stats{Mean: mean, Std: math.Sqrt(variance)}
}

// ApplyZScore standardizes a float column in place using previously
// fitted statistics. A zero standard deviation leaves values centered
// but unscaled, matching scikit-learn's StandardScaler behaviour.
func (f *Frame) ApplyZScore(col string, s Stats) {
	xs := f.Floats(col)
	std := s.Std
	if std == 0 {
		std = 1
	}
	for i := range xs {
		xs[i] = (xs[i] - s.Mean) / std
	}
}

// ZScore fits and applies standardization to a column, returning the
// fitted statistics.
func (f *Frame) ZScore(col string) Stats {
	s := f.FitZScore(col)
	f.ApplyZScore(col, s)
	return s
}

// OneHot replaces a string column with one float column per category
// listed in categories (1.0 where equal, else 0.0). New columns are named
// "<col>=<category>". Values outside categories encode as all zeros,
// which is how a fitted encoder treats unseen labels. The original column
// is removed. It returns the resulting frame (a new frame).
func (f *Frame) OneHot(col string, categories []string) *Frame {
	values := f.Strings(col)
	out := f.Drop(col)
	for _, cat := range categories {
		data := make([]float64, len(values))
		for i, v := range values {
			if v == cat {
				data[i] = 1
			}
		}
		out.AddFloat(col+"="+cat, data)
	}
	return out
}
