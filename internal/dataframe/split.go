package dataframe

import (
	"fmt"

	"crossarch/internal/stats"
)

// TrainTestSplit partitions the frame's rows into a training and a test
// frame. testFrac is the fraction of rows assigned to the test set
// (the paper uses 0.10). Rows are shuffled with rng before splitting, so
// the split is random but reproducible. It panics on a fraction outside
// (0, 1).
func (f *Frame) TrainTestSplit(rng *stats.RNG, testFrac float64) (train, test *Frame) {
	if testFrac <= 0 || testFrac >= 1 {
		panic(fmt.Sprintf("dataframe: testFrac %v outside (0,1)", testFrac))
	}
	n := f.NumRows()
	perm := rng.Perm(n)
	nTest := int(float64(n) * testFrac)
	if nTest == 0 && n > 1 {
		nTest = 1
	}
	return f.TakeRows(perm[nTest:]), f.TakeRows(perm[:nTest])
}

// Fold is one cross-validation fold: the row indices (into the original
// frame) used for training and validation.
type Fold struct {
	Train []int
	Val   []int
}

// KFold returns k cross-validation folds over the frame's rows, shuffled
// with rng. Every row appears in exactly one validation set and the fold
// sizes differ by at most one. It panics unless 2 <= k <= NumRows.
func (f *Frame) KFold(rng *stats.RNG, k int) []Fold {
	n := f.NumRows()
	if k < 2 || k > n {
		panic(fmt.Sprintf("dataframe: k=%d invalid for %d rows", k, n))
	}
	perm := rng.Perm(n)
	folds := make([]Fold, k)
	// Distribute the remainder one row at a time so sizes differ by <= 1.
	base, rem := n/k, n%k
	start := 0
	for i := range folds {
		size := base
		if i < rem {
			size++
		}
		val := perm[start : start+size]
		train := make([]int, 0, n-size)
		train = append(train, perm[:start]...)
		train = append(train, perm[start+size:]...)
		folds[i] = Fold{Train: train, Val: val}
		start += size
	}
	return folds
}

// GroupKFold returns one fold per distinct value of the string column:
// fold i validates on all rows whose group equals the i-th distinct value
// and trains on everything else. This implements the paper's
// leave-one-application-out ablation (Fig. 5).
func (f *Frame) GroupKFold(col string) (groups []string, folds []Fold) {
	groups = f.Unique(col)
	values := f.Strings(col)
	folds = make([]Fold, len(groups))
	for gi, g := range groups {
		var train, val []int
		for i, v := range values {
			if v == g {
				val = append(val, i)
			} else {
				train = append(train, i)
			}
		}
		folds[gi] = Fold{Train: train, Val: val}
	}
	return groups, folds
}

// Bootstrap returns a frame of n rows sampled uniformly with replacement,
// as used by the decision-forest learner and the scheduler's workload
// resampling.
func (f *Frame) Bootstrap(rng *stats.RNG, n int) *Frame {
	return f.TakeRows(rng.SampleWithReplacement(f.NumRows(), n))
}
