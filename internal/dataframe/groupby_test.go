package dataframe

import (
	"math"
	"reflect"
	"strings"
	"testing"
)

func groupFrame() *Frame {
	f := New()
	f.AddString("app", []string{"a", "b", "a", "b", "a"})
	f.AddFloat("t", []float64{10, 100, 20, 200, 30})
	return f
}

func TestGroupByMeanAndCount(t *testing.T) {
	g := groupFrame().GroupBy("app", map[string]Aggregation{"t": AggMean})
	if got := g.Strings("app"); !reflect.DeepEqual(got, []string{"a", "b"}) {
		t.Fatalf("groups = %v", got)
	}
	want := []float64{20, 150}
	if got := g.Floats("t_mean"); !reflect.DeepEqual(got, want) {
		t.Errorf("means = %v, want %v", got, want)
	}

	c := groupFrame().GroupBy("app", map[string]Aggregation{"t": AggCount})
	if got := c.Floats("t_count"); !reflect.DeepEqual(got, []float64{3, 2}) {
		t.Errorf("counts = %v", got)
	}
}

func TestGroupBySumMinMaxStd(t *testing.T) {
	g := groupFrame().GroupBy("app", map[string]Aggregation{"t": AggSum})
	if got := g.Floats("t_sum"); !reflect.DeepEqual(got, []float64{60, 300}) {
		t.Errorf("sums = %v", got)
	}
	g = groupFrame().GroupBy("app", map[string]Aggregation{"t": AggMin})
	if got := g.Floats("t_min"); !reflect.DeepEqual(got, []float64{10, 100}) {
		t.Errorf("mins = %v", got)
	}
	g = groupFrame().GroupBy("app", map[string]Aggregation{"t": AggMax})
	if got := g.Floats("t_max"); !reflect.DeepEqual(got, []float64{30, 200}) {
		t.Errorf("maxs = %v", got)
	}
	g = groupFrame().GroupBy("app", map[string]Aggregation{"t": AggStd})
	// Group a: values 10,20,30 -> population std = sqrt(200/3).
	want := math.Sqrt(200.0 / 3.0)
	if got := g.Floats("t_std")[0]; math.Abs(got-want) > 1e-9 {
		t.Errorf("std = %v, want %v", got, want)
	}
}

func TestGroupByMultipleColumns(t *testing.T) {
	f := groupFrame()
	f.AddFloat("u", []float64{1, 2, 3, 4, 5})
	g := f.GroupBy("app", map[string]Aggregation{"t": AggMean, "u": AggSum})
	if !g.Has("t_mean") || !g.Has("u_sum") {
		t.Fatalf("columns = %v", g.Columns())
	}
	if got := g.Floats("u_sum"); !reflect.DeepEqual(got, []float64{9, 6}) {
		t.Errorf("u sums = %v", got)
	}
}

func TestGroupByPanics(t *testing.T) {
	mustPanic(t, "missing key", func() {
		groupFrame().GroupBy("nope", map[string]Aggregation{"t": AggMean})
	})
	mustPanic(t, "bad agg", func() {
		groupFrame().GroupBy("app", map[string]Aggregation{"t": "median"})
	})
	mustPanic(t, "string column agg", func() {
		f := groupFrame()
		f.AddString("s", []string{"x", "x", "x", "x", "x"})
		f.GroupBy("app", map[string]Aggregation{"s": AggMean})
	})
}

func TestDescribe(t *testing.T) {
	f := groupFrame()
	out := f.Describe()
	if !strings.Contains(out, "t") || !strings.Contains(out, "mean") {
		t.Errorf("Describe output malformed:\n%s", out)
	}
	// String columns are excluded.
	if strings.Contains(out, "app ") && strings.Count(out, "\n") != 2 {
		t.Errorf("Describe should list only float columns:\n%s", out)
	}
	s := f.DescribeColumn("t")
	if s.Count != 5 || s.Mean != 72 {
		t.Errorf("DescribeColumn = %+v", s)
	}
}
