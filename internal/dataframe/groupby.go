package dataframe

import (
	"fmt"
	"math"
	"sort"
)

// Aggregation names a reduction applied to each group's values.
type Aggregation string

const (
	// AggMean averages each group's values.
	AggMean Aggregation = "mean"
	// AggSum totals each group's values.
	AggSum Aggregation = "sum"
	// AggMin and AggMax take group extrema.
	AggMin Aggregation = "min"
	AggMax Aggregation = "max"
	// AggCount counts group members (the column's values are ignored).
	AggCount Aggregation = "count"
	// AggStd is the population standard deviation within the group.
	AggStd Aggregation = "std"
)

// GroupBy aggregates float columns within groups of a string key
// column, returning a new frame with one row per distinct key (sorted)
// and one column per (column, aggregation) pair named
// "<col>_<agg>". It panics if the key is missing, a column is not a
// float column, or an aggregation is unknown — programmer errors, as
// elsewhere in this package.
func (f *Frame) GroupBy(key string, aggs map[string]Aggregation) *Frame {
	keys := f.Strings(key)
	groups := f.Unique(key)
	index := make(map[string]int, len(groups))
	for i, g := range groups {
		index[g] = i
	}

	// Deterministic column order.
	cols := make([]string, 0, len(aggs))
	for c := range aggs {
		cols = append(cols, c)
	}
	sort.Strings(cols)

	out := New()
	out.AddString(key, append([]string(nil), groups...))
	for _, col := range cols {
		agg := aggs[col]
		var values []float64
		if agg != AggCount {
			values = f.Floats(col)
		}
		result := make([]float64, len(groups))
		switch agg {
		case AggCount:
			for _, k := range keys {
				result[index[k]]++
			}
		case AggSum, AggMean, AggStd:
			sums := make([]float64, len(groups))
			sqs := make([]float64, len(groups))
			counts := make([]float64, len(groups))
			for i, k := range keys {
				g := index[k]
				sums[g] += values[i]
				sqs[g] += values[i] * values[i]
				counts[g]++
			}
			for g := range result {
				switch agg {
				case AggSum:
					result[g] = sums[g]
				case AggMean:
					result[g] = sums[g] / counts[g]
				case AggStd:
					mean := sums[g] / counts[g]
					result[g] = math.Sqrt(sqs[g]/counts[g] - mean*mean)
				}
			}
		case AggMin, AggMax:
			for g := range result {
				if agg == AggMin {
					result[g] = math.Inf(1)
				} else {
					result[g] = math.Inf(-1)
				}
			}
			for i, k := range keys {
				g := index[k]
				if agg == AggMin && values[i] < result[g] {
					result[g] = values[i]
				}
				if agg == AggMax && values[i] > result[g] {
					result[g] = values[i]
				}
			}
		default:
			panic(fmt.Sprintf("dataframe: unknown aggregation %q", agg))
		}
		out.AddFloat(fmt.Sprintf("%s_%s", col, agg), result)
	}
	return out
}
