package dataframe

import (
	"sort"
	"testing"
	"testing/quick"

	"crossarch/internal/stats"
)

func rangeFrame(n int) *Frame {
	xs := make([]float64, n)
	labels := make([]string, n)
	for i := range xs {
		xs[i] = float64(i)
		labels[i] = string(rune('a' + i%4))
	}
	return New().AddFloat("x", xs).AddString("g", labels)
}

func TestTrainTestSplitSizes(t *testing.T) {
	f := rangeFrame(100)
	train, test := f.TrainTestSplit(stats.NewRNG(1), 0.1)
	if train.NumRows() != 90 || test.NumRows() != 10 {
		t.Fatalf("split = %d/%d, want 90/10", train.NumRows(), test.NumRows())
	}
}

func TestTrainTestSplitPartition(t *testing.T) {
	f := rangeFrame(53)
	train, test := f.TrainTestSplit(stats.NewRNG(2), 0.25)
	seen := map[float64]int{}
	for _, v := range train.Floats("x") {
		seen[v]++
	}
	for _, v := range test.Floats("x") {
		seen[v]++
	}
	if len(seen) != 53 {
		t.Fatalf("union has %d distinct rows, want 53", len(seen))
	}
	for v, c := range seen {
		if c != 1 {
			t.Fatalf("row %v appears %d times", v, c)
		}
	}
}

func TestTrainTestSplitSmall(t *testing.T) {
	f := rangeFrame(2)
	train, test := f.TrainTestSplit(stats.NewRNG(3), 0.01)
	// Even with a tiny fraction, at least one test row is produced.
	if test.NumRows() != 1 || train.NumRows() != 1 {
		t.Errorf("tiny split = %d/%d", train.NumRows(), test.NumRows())
	}
}

func TestTrainTestSplitPanics(t *testing.T) {
	f := rangeFrame(10)
	for _, frac := range []float64{0, 1, -0.5, 1.5} {
		frac := frac
		mustPanic(t, "bad frac", func() { f.TrainTestSplit(stats.NewRNG(1), frac) })
	}
}

func TestKFoldPartition(t *testing.T) {
	f := rangeFrame(23)
	folds := f.KFold(stats.NewRNG(5), 5)
	if len(folds) != 5 {
		t.Fatalf("folds = %d", len(folds))
	}
	valSeen := map[int]int{}
	for _, fold := range folds {
		if len(fold.Train)+len(fold.Val) != 23 {
			t.Fatalf("fold sizes %d+%d != 23", len(fold.Train), len(fold.Val))
		}
		for _, i := range fold.Val {
			valSeen[i]++
		}
		// A row must never appear in both halves of a fold.
		inVal := map[int]bool{}
		for _, i := range fold.Val {
			inVal[i] = true
		}
		for _, i := range fold.Train {
			if inVal[i] {
				t.Fatalf("row %d in both train and val", i)
			}
		}
	}
	if len(valSeen) != 23 {
		t.Fatalf("validation union covers %d rows, want 23", len(valSeen))
	}
	for i, c := range valSeen {
		if c != 1 {
			t.Fatalf("row %d validated %d times", i, c)
		}
	}
	// Fold sizes differ by at most one.
	sizes := make([]int, len(folds))
	for i, fold := range folds {
		sizes[i] = len(fold.Val)
	}
	sort.Ints(sizes)
	if sizes[len(sizes)-1]-sizes[0] > 1 {
		t.Errorf("fold sizes unbalanced: %v", sizes)
	}
}

func TestKFoldPanics(t *testing.T) {
	f := rangeFrame(5)
	mustPanic(t, "k too small", func() { f.KFold(stats.NewRNG(1), 1) })
	mustPanic(t, "k too large", func() { f.KFold(stats.NewRNG(1), 6) })
}

func TestKFoldProperty(t *testing.T) {
	err := quick.Check(func(seed uint64, nRaw, kRaw uint8) bool {
		n := int(nRaw%100) + 4
		k := int(kRaw%uint8(n-2)) + 2
		f := rangeFrame(n)
		folds := f.KFold(stats.NewRNG(seed), k)
		count := map[int]int{}
		for _, fold := range folds {
			for _, i := range fold.Val {
				count[i]++
			}
		}
		if len(count) != n {
			return false
		}
		for _, c := range count {
			if c != 1 {
				return false
			}
		}
		return true
	}, &quick.Config{MaxCount: 40})
	if err != nil {
		t.Fatal(err)
	}
}

func TestGroupKFold(t *testing.T) {
	f := rangeFrame(16) // groups a,b,c,d repeating
	groups, folds := f.GroupKFold("g")
	if len(groups) != 4 || len(folds) != 4 {
		t.Fatalf("groups = %v", groups)
	}
	labels := f.Strings("g")
	for gi, fold := range folds {
		for _, i := range fold.Val {
			if labels[i] != groups[gi] {
				t.Fatalf("val row %d has group %s, want %s", i, labels[i], groups[gi])
			}
		}
		for _, i := range fold.Train {
			if labels[i] == groups[gi] {
				t.Fatalf("train row %d leaks group %s", i, groups[gi])
			}
		}
		if len(fold.Train)+len(fold.Val) != 16 {
			t.Fatal("group fold does not partition")
		}
	}
}

func TestBootstrap(t *testing.T) {
	f := rangeFrame(10)
	b := f.Bootstrap(stats.NewRNG(7), 100)
	if b.NumRows() != 100 {
		t.Fatalf("bootstrap rows = %d", b.NumRows())
	}
	for _, v := range b.Floats("x") {
		if v < 0 || v > 9 {
			t.Fatalf("bootstrap value %v outside source range", v)
		}
	}
}
