package dataframe

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"testing/quick"

	"crossarch/internal/stats"
)

func TestCSVRoundTrip(t *testing.T) {
	f := sampleFrame()
	var buf bytes.Buffer
	if err := f.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	g, err := ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f.Columns(), g.Columns()) {
		t.Fatalf("columns changed: %v vs %v", f.Columns(), g.Columns())
	}
	if !reflect.DeepEqual(f.Floats("x"), g.Floats("x")) {
		t.Errorf("x changed: %v", g.Floats("x"))
	}
	if !reflect.DeepEqual(f.Strings("app"), g.Strings("app")) {
		t.Errorf("app changed: %v", g.Strings("app"))
	}
}

func TestCSVRoundTripPrecisionProperty(t *testing.T) {
	// Property: float columns survive a CSV round trip bit-exactly.
	err := quick.Check(func(seed uint64) bool {
		r := stats.NewRNG(seed)
		vals := make([]float64, 20)
		for i := range vals {
			vals[i] = r.Normal(0, 1) * math.Pow(10, float64(r.Intn(20)-10))
		}
		f := New().AddFloat("v", vals)
		var buf bytes.Buffer
		if err := f.WriteCSV(&buf); err != nil {
			return false
		}
		g, err := ReadCSV(&buf)
		if err != nil {
			return false
		}
		return reflect.DeepEqual(f.Floats("v"), g.Floats("v"))
	}, &quick.Config{MaxCount: 30})
	if err != nil {
		t.Fatal(err)
	}
}

func TestReadCSVTypeInference(t *testing.T) {
	in := "a,b,c\n1,x,1.5\n2,y,2.5\n"
	f, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.KindOf("a") != Float || f.KindOf("b") != String || f.KindOf("c") != Float {
		t.Errorf("kinds = %v %v %v", f.KindOf("a"), f.KindOf("b"), f.KindOf("c"))
	}
}

func TestReadCSVMixedColumnFallsBackToString(t *testing.T) {
	in := "a\n1\nnot-a-number\n"
	f, err := ReadCSV(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if f.KindOf("a") != String {
		t.Error("mixed column should be string")
	}
}

func TestReadCSVEmpty(t *testing.T) {
	if _, err := ReadCSV(strings.NewReader("")); err == nil {
		t.Error("empty csv should error")
	}
	// Header only: zero rows, columns inferred as float (vacuously).
	f, err := ReadCSV(strings.NewReader("a,b\n"))
	if err != nil {
		t.Fatal(err)
	}
	if f.NumRows() != 0 || f.NumCols() != 2 {
		t.Errorf("header-only frame = %dx%d", f.NumRows(), f.NumCols())
	}
}

func TestCSVFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "data.csv")
	f := sampleFrame()
	if err := f.WriteCSVFile(path); err != nil {
		t.Fatal(err)
	}
	g, err := ReadCSVFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if g.NumRows() != f.NumRows() {
		t.Errorf("rows = %d", g.NumRows())
	}
}

func TestReadCSVFileMissing(t *testing.T) {
	if _, err := ReadCSVFile(filepath.Join(t.TempDir(), "missing.csv")); err == nil {
		t.Error("missing file should error")
	}
}
