package dataframe

import (
	"encoding/csv"
	"fmt"
	"io"
	"os"
	"strconv"
)

// WriteCSV serializes the frame with a header row. Float values are
// written with full round-trip precision so a write/read cycle is
// lossless.
func (f *Frame) WriteCSV(w io.Writer) error {
	cw := csv.NewWriter(w)
	if err := cw.Write(f.Columns()); err != nil {
		return fmt.Errorf("dataframe: writing header: %w", err)
	}
	rows := f.NumRows()
	record := make([]string, len(f.cols))
	for r := 0; r < rows; r++ {
		for i, c := range f.cols {
			switch c.kind {
			case Float:
				record[i] = strconv.FormatFloat(c.floats[r], 'g', -1, 64)
			case String:
				record[i] = c.strings[r]
			}
		}
		if err := cw.Write(record); err != nil {
			return fmt.Errorf("dataframe: writing row %d: %w", r, err)
		}
	}
	cw.Flush()
	return cw.Error()
}

// WriteCSVFile writes the frame to the named file, creating or
// truncating it.
func (f *Frame) WriteCSVFile(path string) error {
	file, err := os.Create(path)
	if err != nil {
		return err
	}
	defer file.Close()
	if err := f.WriteCSV(file); err != nil {
		return err
	}
	return file.Close()
}

// ReadCSV parses a headed CSV stream into a frame. A column becomes a
// float column iff every one of its values parses as a float64 (empty
// strings do not); otherwise it is kept as strings. This mirrors pandas'
// type inference closely enough for the dataset files in this project.
func ReadCSV(r io.Reader) (*Frame, error) {
	cr := csv.NewReader(r)
	records, err := cr.ReadAll()
	if err != nil {
		return nil, fmt.Errorf("dataframe: reading csv: %w", err)
	}
	if len(records) == 0 {
		return nil, fmt.Errorf("dataframe: csv has no header row")
	}
	header := records[0]
	body := records[1:]
	out := New()
	for j, name := range header {
		numeric := true
		vals := make([]float64, len(body))
		for i, rec := range body {
			v, err := strconv.ParseFloat(rec[j], 64)
			if err != nil {
				numeric = false
				break
			}
			vals[i] = v
		}
		if numeric {
			out.AddFloat(name, vals)
			continue
		}
		strs := make([]string, len(body))
		for i, rec := range body {
			strs[i] = rec[j]
		}
		out.AddString(name, strs)
	}
	return out, nil
}

// ReadCSVFile reads a frame from the named CSV file.
func ReadCSVFile(path string) (*Frame, error) {
	file, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer file.Close()
	return ReadCSV(file)
}
