package stats

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func almost(a, b, tol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	return math.Abs(a-b) <= tol
}

func TestMeanBasics(t *testing.T) {
	if !math.IsNaN(Mean(nil)) {
		t.Error("Mean(nil) should be NaN")
	}
	if got := Mean([]float64{2}); got != 2 {
		t.Errorf("Mean single = %v", got)
	}
	if got := Mean([]float64{1, 2, 3, 4}); got != 2.5 {
		t.Errorf("Mean = %v, want 2.5", got)
	}
}

func TestVarianceKnown(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Variance(xs); !almost(got, 4, 1e-12) {
		t.Errorf("Variance = %v, want 4", got)
	}
	if got := StdDev(xs); !almost(got, 2, 1e-12) {
		t.Errorf("StdDev = %v, want 2", got)
	}
	if got := Variance([]float64{7}); got != 0 {
		t.Errorf("Variance single = %v, want 0", got)
	}
	if !math.IsNaN(Variance(nil)) {
		t.Error("Variance(nil) should be NaN")
	}
}

func TestVarianceShiftInvariance(t *testing.T) {
	// Welford should be stable under large offsets where the naive
	// two-pass sum-of-squares formula loses precision.
	xs := []float64{1e9 + 4, 1e9 + 7, 1e9 + 13, 1e9 + 16}
	shifted := []float64{4, 7, 13, 16}
	if got, want := Variance(xs), Variance(shifted); !almost(got, want, 1e-6) {
		t.Errorf("Variance with offset = %v, want %v", got, want)
	}
}

func TestMinMaxSum(t *testing.T) {
	xs := []float64{3, -1, 7, 0}
	if got := Min(xs); got != -1 {
		t.Errorf("Min = %v", got)
	}
	if got := Max(xs); got != 7 {
		t.Errorf("Max = %v", got)
	}
	if got := Sum(xs); got != 9 {
		t.Errorf("Sum = %v", got)
	}
	if !math.IsInf(Min(nil), 1) || !math.IsInf(Max(nil), -1) {
		t.Error("empty Min/Max should be +/-Inf")
	}
}

func TestKahanSumPrecision(t *testing.T) {
	// 1 + 1e-16 added 1e6 times: naive summation loses the tail.
	xs := make([]float64, 1000001)
	xs[0] = 1
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-16
	}
	got := Sum(xs)
	want := 1 + 1e-10
	if math.Abs(got-want) > 1e-14 {
		t.Errorf("Kahan Sum = %.18f, want %.18f", got, want)
	}
}

func TestQuantile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		if got := Quantile(xs, c.q); !almost(got, c.want, 1e-12) {
			t.Errorf("Quantile(%v) = %v, want %v", c.q, got, c.want)
		}
	}
	if !math.IsNaN(Quantile(nil, 0.5)) || !math.IsNaN(Quantile(xs, -0.1)) || !math.IsNaN(Quantile(xs, 1.1)) {
		t.Error("invalid quantile arguments should return NaN")
	}
	// Quantile must not mutate its input.
	ys := []float64{5, 1, 3}
	Quantile(ys, 0.5)
	if ys[0] != 5 || ys[1] != 1 || ys[2] != 3 {
		t.Error("Quantile mutated its input")
	}
}

func TestMedianEvenOdd(t *testing.T) {
	if got := Median([]float64{3, 1, 2}); got != 2 {
		t.Errorf("odd median = %v", got)
	}
	if got := Median([]float64{4, 1, 3, 2}); got != 2.5 {
		t.Errorf("even median = %v", got)
	}
}

func TestCovarianceAndPearson(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	ys := []float64{2, 4, 6, 8}
	if got := Pearson(xs, ys); !almost(got, 1, 1e-12) {
		t.Errorf("perfect correlation = %v", got)
	}
	neg := []float64{8, 6, 4, 2}
	if got := Pearson(xs, neg); !almost(got, -1, 1e-12) {
		t.Errorf("perfect anticorrelation = %v", got)
	}
	flat := []float64{5, 5, 5, 5}
	if !math.IsNaN(Pearson(xs, flat)) {
		t.Error("correlation with constant should be NaN")
	}
}

func TestCovariancePanicsOnMismatch(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("no panic on length mismatch")
		}
	}()
	Covariance([]float64{1}, []float64{1, 2})
}

func TestDescribe(t *testing.T) {
	s := Describe([]float64{1, 2, 3, 4, 5})
	if s.Count != 5 || s.Mean != 3 || s.Median != 3 || s.Min != 1 || s.Max != 5 {
		t.Errorf("Describe = %+v", s)
	}
	if !strings.Contains(s.String(), "n=5") {
		t.Errorf("Summary.String missing count: %s", s.String())
	}
}

func TestOnlineMatchesBatch(t *testing.T) {
	r := NewRNG(1)
	xs := make([]float64, 1000)
	var acc Online
	for i := range xs {
		xs[i] = r.Normal(3, 2)
		acc.Add(xs[i])
	}
	if !almost(acc.Mean(), Mean(xs), 1e-9) {
		t.Errorf("online mean %v != batch %v", acc.Mean(), Mean(xs))
	}
	if !almost(acc.Variance(), Variance(xs), 1e-9) {
		t.Errorf("online variance %v != batch %v", acc.Variance(), Variance(xs))
	}
	if acc.Min() != Min(xs) || acc.Max() != Max(xs) {
		t.Error("online min/max mismatch")
	}
}

func TestOnlineMergeProperty(t *testing.T) {
	// Property: merging partitions equals accumulating the whole stream.
	err := quick.Check(func(seed uint64, splitRaw uint8) bool {
		r := NewRNG(seed)
		n := 100
		split := int(splitRaw) % n
		var whole, left, right Online
		for i := 0; i < n; i++ {
			x := r.Normal(0, 10)
			whole.Add(x)
			if i < split {
				left.Add(x)
			} else {
				right.Add(x)
			}
		}
		left.Merge(right)
		return almost(left.Mean(), whole.Mean(), 1e-8) &&
			almost(left.Variance(), whole.Variance(), 1e-6) &&
			left.Count() == whole.Count() &&
			left.Min() == whole.Min() && left.Max() == whole.Max()
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestOnlineEmpty(t *testing.T) {
	var o Online
	if !math.IsNaN(o.Mean()) || !math.IsNaN(o.Variance()) || !math.IsNaN(o.Std()) {
		t.Error("empty Online should return NaN moments")
	}
	var other Online
	other.Add(5)
	o.Merge(other)
	if o.Mean() != 5 || o.Count() != 1 {
		t.Error("merge into empty accumulator failed")
	}
	var empty Online
	o.Merge(empty)
	if o.Count() != 1 {
		t.Error("merging an empty accumulator changed the count")
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, v := range []float64{0.5, 1, 3, 5, 7, 9.9, -1, 11} {
		h.Add(v)
	}
	if h.Total != 8 {
		t.Errorf("Total = %d", h.Total)
	}
	if h.Clamped() != 2 {
		t.Errorf("Clamped = %d, want 2", h.Clamped())
	}
	sum := 0
	for _, c := range h.Counts {
		sum += c
	}
	if sum != h.Total {
		t.Error("histogram counts do not sum to total")
	}
	if got := h.BinCenter(0); got != 1 {
		t.Errorf("BinCenter(0) = %v, want 1", got)
	}
}

func TestHistogramPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("invalid histogram did not panic")
		}
	}()
	NewHistogram(1, 1, 5)
}
