package stats

import (
	"strings"
	"testing"
)

func TestBootstrapCICoversTrueMean(t *testing.T) {
	rng := NewRNG(1)
	// Repeated experiments: a 95% CI should cover the true mean in
	// roughly 95% of draws; assert well above chance.
	covered := 0
	const trials = 100
	for trial := 0; trial < trials; trial++ {
		xs := make([]float64, 40)
		for i := range xs {
			xs[i] = rng.Normal(7, 2)
		}
		ci := BootstrapMeanCI(xs, 0.95, 400, rng)
		if ci.Contains(7) {
			covered++
		}
		if ci.Lo > ci.Mean || ci.Hi < ci.Mean {
			t.Fatalf("interval %v does not bracket its point estimate", ci)
		}
	}
	if covered < 85 {
		t.Errorf("95%% CI covered the truth only %d/%d times", covered, trials)
	}
}

func TestBootstrapCIDegenerate(t *testing.T) {
	rng := NewRNG(2)
	ci := BootstrapMeanCI([]float64{5}, 0.95, 100, rng)
	if ci.Mean != 5 || ci.Lo != 5 || ci.Hi != 5 {
		t.Errorf("single-sample CI = %v", ci)
	}
	constant := []float64{3, 3, 3, 3}
	ci = BootstrapMeanCI(constant, 0.9, 100, rng)
	if ci.Lo != 3 || ci.Hi != 3 {
		t.Errorf("constant-sample CI = %v", ci)
	}
	if !strings.Contains(ci.String(), "3") {
		t.Error("CI.String malformed")
	}
}

func TestBootstrapPanics(t *testing.T) {
	rng := NewRNG(3)
	for name, fn := range map[string]func(){
		"empty":     func() { BootstrapMeanCI(nil, 0.9, 10, rng) },
		"conf":      func() { BootstrapMeanCI([]float64{1}, 1.5, 10, rng) },
		"iters":     func() { BootstrapMeanCI([]float64{1}, 0.9, 0, rng) },
		"perm-len":  func() { PairedPermutationPValue([]float64{1}, []float64{1, 2}, 10, rng) },
		"perm-iter": func() { PairedPermutationPValue([]float64{1}, []float64{2}, 0, rng) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestPermutationTestDetectsDifference(t *testing.T) {
	rng := NewRNG(4)
	n := 30
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		base := rng.Normal(10, 1)
		a[i] = base
		b[i] = base + 2 // systematic offset
	}
	p := PairedPermutationPValue(a, b, 2000, rng)
	if p > 0.01 {
		t.Errorf("clear difference got p = %v", p)
	}
}

func TestPermutationTestNullIsUniformish(t *testing.T) {
	rng := NewRNG(5)
	n := 25
	a := make([]float64, n)
	b := make([]float64, n)
	for i := range a {
		a[i] = rng.Normal(0, 1)
		b[i] = rng.Normal(0, 1)
	}
	p := PairedPermutationPValue(a, b, 2000, rng)
	if p < 0.001 {
		t.Errorf("null hypothesis rejected with p = %v on pure noise", p)
	}
}
