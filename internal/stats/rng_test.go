package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 1000; i++ {
		if av, bv := a.Uint64(), b.Uint64(); av != bv {
			t.Fatalf("streams diverged at %d: %d != %d", i, av, bv)
		}
	}
}

func TestRNGSeedSensitivity(t *testing.T) {
	a := NewRNG(1)
	b := NewRNG(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d/100 identical values", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := NewRNG(7)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestFloat64Uniformity(t *testing.T) {
	r := NewRNG(11)
	const n = 200000
	var acc Online
	for i := 0; i < n; i++ {
		acc.Add(r.Float64())
	}
	if m := acc.Mean(); math.Abs(m-0.5) > 0.01 {
		t.Errorf("uniform mean = %v, want ~0.5", m)
	}
	// Var(U[0,1)) = 1/12.
	if v := acc.Variance(); math.Abs(v-1.0/12) > 0.005 {
		t.Errorf("uniform variance = %v, want ~%v", v, 1.0/12)
	}
}

func TestIntnBounds(t *testing.T) {
	r := NewRNG(3)
	for n := 1; n <= 17; n++ {
		seen := make([]bool, n)
		for i := 0; i < 200*n; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
			seen[v] = true
		}
		for v, ok := range seen {
			if !ok {
				t.Errorf("Intn(%d) never produced %d", n, v)
			}
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestIntnUnbiased(t *testing.T) {
	// A crude chi-square style check on Intn(3).
	r := NewRNG(5)
	counts := [3]int{}
	const n = 300000
	for i := 0; i < n; i++ {
		counts[r.Intn(3)]++
	}
	for i, c := range counts {
		frac := float64(c) / n
		if math.Abs(frac-1.0/3) > 0.01 {
			t.Errorf("Intn(3) bucket %d frequency %v, want ~1/3", i, frac)
		}
	}
}

func TestNormFloat64Moments(t *testing.T) {
	r := NewRNG(13)
	var acc Online
	for i := 0; i < 200000; i++ {
		acc.Add(r.NormFloat64())
	}
	if m := acc.Mean(); math.Abs(m) > 0.02 {
		t.Errorf("normal mean = %v, want ~0", m)
	}
	if s := acc.Std(); math.Abs(s-1) > 0.02 {
		t.Errorf("normal std = %v, want ~1", s)
	}
}

func TestNormalScaling(t *testing.T) {
	r := NewRNG(17)
	var acc Online
	for i := 0; i < 100000; i++ {
		acc.Add(r.Normal(10, 2))
	}
	if m := acc.Mean(); math.Abs(m-10) > 0.05 {
		t.Errorf("mean = %v, want ~10", m)
	}
	if s := acc.Std(); math.Abs(s-2) > 0.05 {
		t.Errorf("std = %v, want ~2", s)
	}
	if got := r.Normal(5, 0); got != 5 {
		t.Errorf("Normal with sigma=0 = %v, want 5", got)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := NewRNG(19)
	vals := make([]float64, 100001)
	for i := range vals {
		vals[i] = r.LogNormal(0, 0.5)
	}
	// Median of LogNormal(0, sigma) is exp(0) = 1.
	if med := Median(vals); math.Abs(med-1) > 0.03 {
		t.Errorf("lognormal median = %v, want ~1", med)
	}
	for _, v := range vals {
		if v <= 0 {
			t.Fatal("lognormal produced non-positive value")
		}
	}
}

func TestNoiseFactor(t *testing.T) {
	r := NewRNG(23)
	if got := r.NoiseFactor(0); got != 1 {
		t.Errorf("NoiseFactor(0) = %v, want 1", got)
	}
	if got := r.NoiseFactor(-1); got != 1 {
		t.Errorf("NoiseFactor(-1) = %v, want 1", got)
	}
	for i := 0; i < 1000; i++ {
		if f := r.NoiseFactor(0.3); f <= 0 {
			t.Fatal("noise factor must be positive")
		}
	}
}

func TestExponentialMean(t *testing.T) {
	r := NewRNG(29)
	var acc Online
	for i := 0; i < 200000; i++ {
		acc.Add(r.Exponential(2))
	}
	if m := acc.Mean(); math.Abs(m-0.5) > 0.01 {
		t.Errorf("Exp(2) mean = %v, want ~0.5", m)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := NewRNG(31)
	err := quick.Check(func(nRaw uint8) bool {
		n := int(nRaw%64) + 1
		p := r.Perm(n)
		if len(p) != n {
			return false
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}, nil)
	if err != nil {
		t.Fatal(err)
	}
}

func TestSampleWithoutReplacementDistinct(t *testing.T) {
	r := NewRNG(37)
	idx := r.SampleWithoutReplacement(50, 20)
	if len(idx) != 20 {
		t.Fatalf("got %d samples, want 20", len(idx))
	}
	seen := map[int]bool{}
	for _, v := range idx {
		if v < 0 || v >= 50 || seen[v] {
			t.Fatalf("invalid or duplicate sample %d", v)
		}
		seen[v] = true
	}
}

func TestSampleWithReplacementRange(t *testing.T) {
	r := NewRNG(41)
	idx := r.SampleWithReplacement(10, 1000)
	for _, v := range idx {
		if v < 0 || v >= 10 {
			t.Fatalf("sample %d out of range", v)
		}
	}
}

func TestChoiceWeighted(t *testing.T) {
	r := NewRNG(43)
	counts := [3]int{}
	weights := []float64{1, 2, 7}
	const n = 100000
	for i := 0; i < n; i++ {
		counts[r.Choice(weights)]++
	}
	for i, w := range weights {
		want := w / 10
		got := float64(counts[i]) / n
		if math.Abs(got-want) > 0.01 {
			t.Errorf("choice %d frequency %v, want ~%v", i, got, want)
		}
	}
}

func TestChoicePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Choice with zero weights did not panic")
		}
	}()
	NewRNG(1).Choice([]float64{0, 0})
}

func TestSplitIndependence(t *testing.T) {
	parent := NewRNG(99)
	child := parent.Split()
	// The child's stream should not simply replay the parent's.
	same := 0
	for i := 0; i < 100; i++ {
		if parent.Uint64() == child.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("split stream repeats parent stream (%d/100 matches)", same)
	}
}

func TestBernoulliEdges(t *testing.T) {
	r := NewRNG(53)
	for i := 0; i < 100; i++ {
		if r.Bernoulli(0) {
			t.Fatal("Bernoulli(0) returned true")
		}
		if !r.Bernoulli(1) {
			t.Fatal("Bernoulli(1) returned false")
		}
	}
	hits := 0
	const n = 100000
	for i := 0; i < n; i++ {
		if r.Bernoulli(0.25) {
			hits++
		}
	}
	if frac := float64(hits) / n; math.Abs(frac-0.25) > 0.01 {
		t.Errorf("Bernoulli(0.25) frequency %v", frac)
	}
}

func TestShuffleSwapCount(t *testing.T) {
	r := NewRNG(59)
	xs := []string{"a", "b", "c", "d", "e"}
	orig := append([]string(nil), xs...)
	r.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] })
	// Multiset must be preserved.
	seen := map[string]int{}
	for _, s := range xs {
		seen[s]++
	}
	for _, s := range orig {
		seen[s]--
	}
	for k, v := range seen {
		if v != 0 {
			t.Fatalf("shuffle changed multiset at %q", k)
		}
	}
}

func TestRangePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Range(hi<lo) did not panic")
		}
	}()
	NewRNG(1).Range(2, 1)
}

func BenchmarkRNGUint64(b *testing.B) {
	r := NewRNG(1)
	var sink uint64
	for i := 0; i < b.N; i++ {
		sink ^= r.Uint64()
	}
	_ = sink
}

func BenchmarkRNGNormal(b *testing.B) {
	r := NewRNG(1)
	var sink float64
	for i := 0; i < b.N; i++ {
		sink += r.NormFloat64()
	}
	_ = sink
}
