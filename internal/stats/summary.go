package stats

import (
	"fmt"
	"math"
	"sort"
)

// Mean returns the arithmetic mean of xs, or NaN for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs))
}

// Variance returns the population variance of xs computed with Welford's
// numerically stable single-pass algorithm. It returns NaN for an empty
// slice and 0 for a single element.
func Variance(xs []float64) float64 {
	if len(xs) == 0 {
		return math.NaN()
	}
	var acc Online
	for _, x := range xs {
		acc.Add(x)
	}
	return acc.Variance()
}

// StdDev returns the population standard deviation of xs.
func StdDev(xs []float64) float64 {
	v := Variance(xs)
	if math.IsNaN(v) {
		return v
	}
	return math.Sqrt(v)
}

// Min returns the minimum of xs, or +Inf for an empty slice.
func Min(xs []float64) float64 {
	m := math.Inf(1)
	for _, x := range xs {
		if x < m {
			m = x
		}
	}
	return m
}

// Max returns the maximum of xs, or -Inf for an empty slice.
func Max(xs []float64) float64 {
	m := math.Inf(-1)
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}

// Sum returns the sum of xs using Kahan compensated summation so that
// long, noisy counter streams accumulate without drift.
func Sum(xs []float64) float64 {
	sum, comp := 0.0, 0.0
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Median returns the median of xs without modifying it.
func Median(xs []float64) float64 {
	return Quantile(xs, 0.5)
}

// Quantile returns the q-quantile (0 <= q <= 1) of xs using linear
// interpolation between closest ranks. It copies xs and returns NaN for an
// empty input or out-of-range q.
func Quantile(xs []float64, q float64) float64 {
	if len(xs) == 0 || q < 0 || q > 1 || math.IsNaN(q) {
		return math.NaN()
	}
	s := append([]float64(nil), xs...)
	sort.Float64s(s)
	if len(s) == 1 {
		return s[0]
	}
	pos := q * float64(len(s)-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo == hi {
		return s[lo]
	}
	frac := pos - float64(lo)
	return s[lo]*(1-frac) + s[hi]*frac
}

// Covariance returns the population covariance of the paired samples. It
// panics if the slices differ in length and returns NaN when empty.
func Covariance(xs, ys []float64) float64 {
	if len(xs) != len(ys) {
		panic("stats: Covariance requires equal-length slices")
	}
	if len(xs) == 0 {
		return math.NaN()
	}
	mx, my := Mean(xs), Mean(ys)
	sum := 0.0
	for i := range xs {
		sum += (xs[i] - mx) * (ys[i] - my)
	}
	return sum / float64(len(xs))
}

// Pearson returns the Pearson correlation coefficient of the paired
// samples, or NaN if either sample has zero variance.
func Pearson(xs, ys []float64) float64 {
	sx, sy := StdDev(xs), StdDev(ys)
	if sx == 0 || sy == 0 {
		return math.NaN()
	}
	return Covariance(xs, ys) / (sx * sy)
}

// Summary holds descriptive statistics for one sample.
type Summary struct {
	Count  int
	Mean   float64
	Std    float64
	Min    float64
	P25    float64
	Median float64
	P75    float64
	Max    float64
}

// Describe computes a Summary of xs.
func Describe(xs []float64) Summary {
	return Summary{
		Count:  len(xs),
		Mean:   Mean(xs),
		Std:    StdDev(xs),
		Min:    Min(xs),
		P25:    Quantile(xs, 0.25),
		Median: Median(xs),
		P75:    Quantile(xs, 0.75),
		Max:    Max(xs),
	}
}

// String renders the summary on one line, suitable for experiment logs.
func (s Summary) String() string {
	return fmt.Sprintf("n=%d mean=%.4g std=%.4g min=%.4g p25=%.4g med=%.4g p75=%.4g max=%.4g",
		s.Count, s.Mean, s.Std, s.Min, s.P25, s.Median, s.P75, s.Max)
}

// Online is a Welford accumulator for streaming mean and variance. The
// zero value is ready to use. Accumulators can be combined with Merge,
// which makes them suitable for parallel reductions.
type Online struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (o *Online) Add(x float64) {
	if o.n == 0 {
		o.min, o.max = x, x
	} else {
		if x < o.min {
			o.min = x
		}
		if x > o.max {
			o.max = x
		}
	}
	o.n++
	delta := x - o.mean
	o.mean += delta / float64(o.n)
	o.m2 += delta * (x - o.mean)
}

// Merge combines another accumulator into o using Chan et al.'s parallel
// update, so that Add-ing a stream sequentially and merging partitions of
// the same stream agree.
func (o *Online) Merge(other Online) {
	if other.n == 0 {
		return
	}
	if o.n == 0 {
		*o = other
		return
	}
	n := o.n + other.n
	delta := other.mean - o.mean
	o.m2 += other.m2 + delta*delta*float64(o.n)*float64(other.n)/float64(n)
	o.mean += delta * float64(other.n) / float64(n)
	if other.min < o.min {
		o.min = other.min
	}
	if other.max > o.max {
		o.max = other.max
	}
	o.n = n
}

// Count returns the number of observations.
func (o *Online) Count() int { return o.n }

// Mean returns the running mean, or NaN when empty.
func (o *Online) Mean() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.mean
}

// Variance returns the running population variance, or NaN when empty.
func (o *Online) Variance() float64 {
	if o.n == 0 {
		return math.NaN()
	}
	return o.m2 / float64(o.n)
}

// Std returns the running population standard deviation.
func (o *Online) Std() float64 {
	v := o.Variance()
	if math.IsNaN(v) {
		return v
	}
	return math.Sqrt(v)
}

// Min returns the smallest observation, or +Inf when empty.
func (o *Online) Min() float64 {
	if o.n == 0 {
		return math.Inf(1)
	}
	return o.min
}

// Max returns the largest observation, or -Inf when empty.
func (o *Online) Max() float64 {
	if o.n == 0 {
		return math.Inf(-1)
	}
	return o.max
}

// Histogram bins values into equal-width buckets over [lo, hi]. Values
// outside the range are clamped into the first or last bucket, which is
// the behaviour wanted for visualising heavy-tailed runtime ratios.
type Histogram struct {
	Lo, Hi  float64
	Counts  []int
	Total   int
	clamped int
}

// NewHistogram creates a histogram with n bins over [lo, hi]. It panics on
// a non-positive bin count or an empty range.
func NewHistogram(lo, hi float64, n int) *Histogram {
	if n <= 0 || hi <= lo {
		panic("stats: invalid histogram parameters")
	}
	return &Histogram{Lo: lo, Hi: hi, Counts: make([]int, n)}
}

// Add records one observation.
func (h *Histogram) Add(x float64) {
	if x < h.Lo || x > h.Hi {
		h.clamped++
	}
	idx := int(float64(len(h.Counts)) * (x - h.Lo) / (h.Hi - h.Lo))
	if idx < 0 || x < h.Lo {
		idx = 0
	}
	if idx >= len(h.Counts) {
		idx = len(h.Counts) - 1
	}
	h.Counts[idx]++
	h.Total++
}

// Clamped reports how many observations fell outside [Lo, Hi].
func (h *Histogram) Clamped() int { return h.clamped }

// BinCenter returns the midpoint of bucket i.
func (h *Histogram) BinCenter(i int) float64 {
	w := (h.Hi - h.Lo) / float64(len(h.Counts))
	return h.Lo + w*(float64(i)+0.5)
}
