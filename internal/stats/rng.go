// Package stats provides deterministic pseudo-random number generation,
// probability distributions, and summary statistics used throughout the
// crossarch simulation and modelling pipeline.
//
// All stochastic components of the repository (application behaviour
// signatures, counter measurement noise, dataset shuffling, bootstrap
// sampling in the decision forest, workload resampling in the scheduler)
// draw from the RNG defined here rather than math/rand so that every
// experiment is exactly reproducible from a single integer seed across
// platforms and Go releases.
package stats

import "math"

// RNG is a deterministic pseudo-random number generator based on
// xoshiro256** by Blackman and Vigna, seeded through SplitMix64. It is not
// safe for concurrent use; callers that need parallel streams should
// derive independent generators with Split.
type RNG struct {
	s [4]uint64
	// cached spare normal variate for the Box-Muller transform
	hasSpare bool
	spare    float64
}

// splitMix64 advances the SplitMix64 state and returns the next value. It
// is used only to expand a user seed into the 256-bit xoshiro state, as
// recommended by the xoshiro authors.
func splitMix64(state *uint64) uint64 {
	*state += 0x9e3779b97f4a7c15
	z := *state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// NewRNG returns a generator deterministically seeded from seed. Two
// generators created with the same seed produce identical streams.
func NewRNG(seed uint64) *RNG {
	r := &RNG{}
	sm := seed
	for i := range r.s {
		r.s[i] = splitMix64(&sm)
	}
	// xoshiro must not start from the all-zero state; SplitMix64 cannot
	// produce four consecutive zeros, but guard anyway.
	if r.s[0]|r.s[1]|r.s[2]|r.s[3] == 0 {
		r.s[0] = 0x9e3779b97f4a7c15
	}
	return r
}

func rotl(x uint64, k uint) uint64 { return x<<k | x>>(64-k) }

// Uint64 returns the next 64 uniformly distributed bits.
func (r *RNG) Uint64() uint64 {
	result := rotl(r.s[1]*5, 7) * 9
	t := r.s[1] << 17
	r.s[2] ^= r.s[0]
	r.s[3] ^= r.s[1]
	r.s[1] ^= r.s[2]
	r.s[0] ^= r.s[3]
	r.s[2] ^= t
	r.s[3] = rotl(r.s[3], 45)
	return result
}

// Split derives a new generator whose stream is statistically independent
// of the parent's subsequent output. It consumes one value from the parent.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Float64 returns a uniform float64 in [0, 1) with 53 bits of precision.
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0. The
// implementation uses Lemire's nearly-divisionless bounded rejection
// method, which is unbiased.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("stats: Intn called with non-positive n")
	}
	bound := uint64(n)
	for {
		v := r.Uint64()
		hi, lo := mul64(v, bound)
		if lo >= bound || lo >= -bound%bound {
			return int(hi)
		}
	}
}

// mul64 computes the 128-bit product of a and b, returning the high and
// low 64-bit halves. Equivalent to math/bits.Mul64, restated here to keep
// the arithmetic explicit.
func mul64(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	aLo, aHi := a&mask, a>>32
	bLo, bHi := b&mask, b>>32
	t := aHi*bLo + (aLo*bLo)>>32
	lo = a * b
	hi = aHi*bHi + t>>32 + (t&mask+aLo*bHi)>>32
	return hi, lo
}

// Int63 returns a non-negative uniform int64.
func (r *RNG) Int63() int64 { return int64(r.Uint64() >> 1) }

// Range returns a uniform float64 in [lo, hi). It panics if hi < lo.
func (r *RNG) Range(lo, hi float64) float64 {
	if hi < lo {
		panic("stats: Range called with hi < lo")
	}
	return lo + (hi-lo)*r.Float64()
}

// Bernoulli returns true with probability p (clamped to [0, 1]).
func (r *RNG) Bernoulli(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return r.Float64() < p
}

// NormFloat64 returns a standard normal variate using the Box-Muller
// transform with caching of the second generated value.
func (r *RNG) NormFloat64() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	f := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * f
	r.hasSpare = true
	return u * f
}

// Normal returns a normal variate with the given mean and standard
// deviation. A non-positive sigma yields the mean exactly.
func (r *RNG) Normal(mean, sigma float64) float64 {
	if sigma <= 0 {
		return mean
	}
	return mean + sigma*r.NormFloat64()
}

// LogNormal returns a log-normal variate: exp(N(mu, sigma)). It is the
// canonical multiplicative-noise model for simulated performance-counter
// measurements in this repository.
func (r *RNG) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// NoiseFactor returns a multiplicative noise term with median 1.0 and
// log-space standard deviation sigma. sigma = 0 returns exactly 1.
func (r *RNG) NoiseFactor(sigma float64) float64 {
	if sigma <= 0 {
		return 1
	}
	return r.LogNormal(0, sigma)
}

// Exponential returns an exponential variate with the given rate
// parameter lambda (> 0).
func (r *RNG) Exponential(lambda float64) float64 {
	if lambda <= 0 {
		panic("stats: Exponential requires lambda > 0")
	}
	// 1 - Float64() is in (0, 1], so the log is finite.
	return -math.Log(1-r.Float64()) / lambda
}

// Perm returns a uniformly random permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	r.ShuffleInts(p)
	return p
}

// ShuffleInts shuffles s in place using Fisher-Yates.
func (r *RNG) ShuffleInts(s []int) {
	for i := len(s) - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		s[i], s[j] = s[j], s[i]
	}
}

// Shuffle performs a Fisher-Yates shuffle of n elements using the
// caller-provided swap function, mirroring math/rand.Shuffle.
func (r *RNG) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// SampleWithoutReplacement returns k distinct indices drawn uniformly from
// [0, n). It panics if k > n or either argument is negative.
func (r *RNG) SampleWithoutReplacement(n, k int) []int {
	if k < 0 || n < 0 || k > n {
		panic("stats: invalid SampleWithoutReplacement arguments")
	}
	// Partial Fisher-Yates: only the first k positions are materialized.
	p := r.Perm(n)
	return p[:k]
}

// SampleWithReplacement returns k indices drawn uniformly and
// independently from [0, n).
func (r *RNG) SampleWithReplacement(n, k int) []int {
	if n <= 0 || k < 0 {
		panic("stats: invalid SampleWithReplacement arguments")
	}
	out := make([]int, k)
	for i := range out {
		out[i] = r.Intn(n)
	}
	return out
}

// Choice returns one index in [0, n) with probability proportional to the
// non-negative weights. It panics if the weights are empty or sum to zero.
func (r *RNG) Choice(weights []float64) int {
	total := 0.0
	for _, w := range weights {
		if w < 0 {
			panic("stats: Choice weight is negative")
		}
		total += w
	}
	if len(weights) == 0 || total == 0 {
		panic("stats: Choice requires positive total weight")
	}
	target := r.Float64() * total
	acc := 0.0
	for i, w := range weights {
		acc += w
		if target < acc {
			return i
		}
	}
	return len(weights) - 1
}
