package stats

import (
	"fmt"
	"sort"
)

// CI is a two-sided confidence interval around a point estimate.
type CI struct {
	Mean float64
	Lo   float64
	Hi   float64
}

// String renders the interval compactly.
func (c CI) String() string {
	return fmt.Sprintf("%.4g [%.4g, %.4g]", c.Mean, c.Lo, c.Hi)
}

// Contains reports whether v lies inside the interval.
func (c CI) Contains(v float64) bool { return v >= c.Lo && v <= c.Hi }

// BootstrapMeanCI estimates a confidence interval for the mean of xs by
// the percentile bootstrap: iters resamples with replacement,
// interval at the (1-conf)/2 and 1-(1-conf)/2 percentiles. It panics
// on an empty sample, conf outside (0,1), or non-positive iters.
func BootstrapMeanCI(xs []float64, conf float64, iters int, rng *RNG) CI {
	if len(xs) == 0 {
		panic("stats: bootstrap of empty sample")
	}
	if conf <= 0 || conf >= 1 {
		panic(fmt.Sprintf("stats: confidence %v outside (0,1)", conf))
	}
	if iters <= 0 {
		panic("stats: bootstrap needs positive iterations")
	}
	point := Mean(xs)
	if len(xs) == 1 {
		return CI{Mean: point, Lo: point, Hi: point}
	}
	means := make([]float64, iters)
	for b := range means {
		sum := 0.0
		for i := 0; i < len(xs); i++ {
			sum += xs[rng.Intn(len(xs))]
		}
		means[b] = sum / float64(len(xs))
	}
	sort.Float64s(means)
	alpha := (1 - conf) / 2
	return CI{
		Mean: point,
		Lo:   Quantile(means, alpha),
		Hi:   Quantile(means, 1-alpha),
	}
}

// PairedPermutationPValue tests whether the paired samples a and b have
// the same mean via a sign-flip permutation test on the differences:
// the returned p-value is the two-sided probability of seeing a mean
// difference at least as extreme under random sign flips. It panics on
// mismatched or empty inputs.
func PairedPermutationPValue(a, b []float64, iters int, rng *RNG) float64 {
	if len(a) != len(b) || len(a) == 0 {
		panic("stats: permutation test needs equal non-empty samples")
	}
	if iters <= 0 {
		panic("stats: permutation test needs positive iterations")
	}
	diffs := make([]float64, len(a))
	for i := range a {
		diffs[i] = a[i] - b[i]
	}
	observed := Mean(diffs)
	abs := observed
	if abs < 0 {
		abs = -abs
	}
	extreme := 0
	for it := 0; it < iters; it++ {
		sum := 0.0
		for _, d := range diffs {
			if rng.Bernoulli(0.5) {
				sum += d
			} else {
				sum -= d
			}
		}
		m := sum / float64(len(diffs))
		if m >= abs || m <= -abs {
			extreme++
		}
	}
	// Add-one smoothing keeps the p-value away from an impossible 0.
	return (float64(extreme) + 1) / (float64(iters) + 1)
}
