// Rollout driver tests: the maintenance park, the per-replica canary
// gate, and the automatic fleet rollback — with live traffic routed
// through the fleet while a rollout runs, asserting the contract the
// registry drill depends on: served responses stay bitwise identical
// to the incumbent until a candidate generation has passed its probe,
// and after a rollback they simply stay that way.
package cluster_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crossarch/internal/cluster"
	"crossarch/internal/ml"
	"crossarch/internal/serve"
)

// probeTargets applies the synthetic truth trainModel fits to the
// probe rows, so probe MAE measures real fit quality.
func probeTargets(rows [][]float64) [][]float64 {
	targets := make([][]float64, len(rows))
	for i, x := range rows {
		y := make([]float64, testOutputs)
		for k := range y {
			y[k] = x[k%testFeatures] * float64(k+1)
			if x[(k+1)%testFeatures] > 0 {
				y[k] += 2
			}
		}
		targets[i] = y
	}
	return targets
}

// newManagedFleet stands up n in-process serve.Servers with the
// incumbent installed, wrapped as managed replicas, plus the fleet
// over them. Replica names follow the replica-a, replica-b... pattern.
func newManagedFleet(t testing.TB, incumbent ml.Regressor, n int) ([]*cluster.ManagedReplica, *cluster.Fleet) {
	t.Helper()
	managed := make([]*cluster.ManagedReplica, n)
	specs := make([]cluster.Spec, n)
	for i := range managed {
		srv, err := serve.New(serve.Config{Features: testFeatures, Outputs: testOutputs})
		if err != nil {
			t.Fatal(err)
		}
		if err := srv.Install(incumbent, ml.ModelInfo{}); err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() {
			srv.BeginDrain()
			srv.Close()
		})
		managed[i] = cluster.NewManagedReplica("replica-"+string(rune('a'+i)), srv)
		specs[i] = cluster.Spec{Replica: managed[i].Replica(), Arch: i % testOutputs}
	}
	fleet, err := cluster.NewFleet(specs)
	if err != nil {
		t.Fatal(err)
	}
	return managed, fleet
}

// directPredict answers rows on a standalone server running m — the
// bitwise reference the routed answers are compared against.
func directPredict(t testing.TB, m ml.Regressor, rows [][]float64) [][]float64 {
	t.Helper()
	ref := newServeReplica(t, "reference", m, serve.Config{}, false)
	preds, err := ref.PredictBatch(context.Background(), rows)
	if err != nil {
		t.Fatal(err)
	}
	return preds
}

// constModel predicts a fixed value everywhere: a deliberately awful
// candidate the MAE ratio gate must refuse.
type constModel struct{ v float64 }

func (c *constModel) Fit([][]float64, [][]float64) error { return nil }
func (c *constModel) Name() string                       { return "const-candidate" }
func (c *constModel) Predict(x []float64) []float64 {
	y := make([]float64, testOutputs)
	for i := range y {
		y[i] = c.v
	}
	return y
}

// sentinelValue marks probe canary rows for flakyModel: live traffic
// rows are drawn from an RNG and never hit it exactly.
const sentinelValue = 2.25

// flakyModel wraps the incumbent and answers identically — until it
// has seen the probe sentinel row `after` times, after which sentinel
// rows panic forever. Keying the failure on the canary sentinel makes
// the regression fire at an exact replica mid-rollout (each replica's
// gate sends the sentinel ProbePasses times) while live traffic, which
// never carries the sentinel, keeps getting bitwise-incumbent answers
// from any replica the candidate already converted.
type flakyModel struct {
	inner     ml.Regressor
	after     int64
	sentinels atomic.Int64
}

func (f *flakyModel) Fit([][]float64, [][]float64) error { return nil }
func (f *flakyModel) Name() string                       { return "flaky-candidate" }
func (f *flakyModel) Predict(x []float64) []float64 {
	isSentinel := len(x) > 0
	for _, v := range x {
		if v != sentinelValue {
			isSentinel = false
			break
		}
	}
	if isSentinel && f.sentinels.Add(1) > f.after {
		panic("flaky candidate: sentinel regression")
	}
	return f.inner.Predict(x)
}

// TestMaintenanceParking pins the park semantics the rollout driver
// builds on: a parked replica is unroutable and invisible to health
// sweeps, but keeps its eviction state and returns on unpark.
func TestMaintenanceParking(t *testing.T) {
	model := trainModel(t, 11)
	managed, fleet := newManagedFleet(t, model, 2)
	_ = managed
	router := cluster.NewRouter(fleet, cluster.Config{})
	ctx := context.Background()

	if fleet.SetMaintenance("no-such-replica", true) {
		t.Fatal("SetMaintenance accepted an unknown name")
	}
	if !fleet.SetMaintenance("replica-a", true) {
		t.Fatal("SetMaintenance rejected replica-a")
	}
	if !fleet.InMaintenance("replica-a") {
		t.Fatal("replica-a not reported in maintenance")
	}
	if fleet.Healthy(0) {
		t.Fatal("parked replica still routable")
	}
	if got := router.CheckHealth(ctx); got != 1 {
		t.Fatalf("CheckHealth counted %d healthy, want 1 (parked replica skipped)", got)
	}
	if !fleet.InMaintenance("replica-a") {
		t.Fatal("health sweep cleared the maintenance park")
	}
	// Traffic still flows through the remaining replica.
	rows := testRows(4, 21)
	for k := 0; k < 6; k++ {
		if _, err := router.Do(ctx, &cluster.Request{Rows: rows}); err != nil {
			t.Fatalf("request %d with one parked replica: %v", k, err)
		}
	}
	if !fleet.SetMaintenance("replica-a", false) {
		t.Fatal("unpark rejected replica-a")
	}
	if !fleet.Healthy(0) {
		t.Fatal("unparked replica not routable")
	}
	if got := router.CheckHealth(ctx); got != 2 {
		t.Fatalf("CheckHealth counted %d healthy after unpark, want 2", got)
	}
	checkAccounting(t, router, 6)
}

// TestRolloutConvertsFleet drives a healthy candidate through the full
// rolling update: every replica probes, passes, and returns to
// rotation serving the candidate, after which routed answers are
// bitwise identical to a direct single-server run of the candidate.
func TestRolloutConvertsFleet(t *testing.T) {
	incumbent := trainModel(t, 1)
	candidate := trainModel(t, 2)
	managed, fleet := newManagedFleet(t, incumbent, 3)
	router := cluster.NewRouter(fleet, cluster.Config{})

	probeRows := testRows(16, 31)
	cfg := cluster.RolloutConfig{
		ProbeRows:    probeRows,
		ProbeTargets: probeTargets(probeRows),
		// Both models fit the same truth; the gate here checks "not
		// wildly worse", not "strictly better" — seed-to-seed fit noise
		// must not fail a healthy rollout.
		MaxMAERatio: 50,
	}
	res, err := cluster.RunRollout(context.Background(), fleet, managed, candidate, ml.ModelInfo{}, incumbent, ml.ModelInfo{}, cfg)
	if err != nil {
		t.Fatalf("rollout: %v", err)
	}
	if res.RolledBack {
		t.Fatalf("healthy rollout rolled back: %s", res.Reason)
	}
	if len(res.Updated) != 3 {
		t.Fatalf("updated %v, want all 3 replicas", res.Updated)
	}
	for _, rec := range res.Replicas {
		if !rec.Updated || rec.Reason != "" {
			t.Fatalf("replica %s: updated=%v reason=%q", rec.Name, rec.Updated, rec.Reason)
		}
		if rec.LadderLevel != ml.LevelPrimary {
			t.Fatalf("replica %s probe degraded to level %d", rec.Name, rec.LadderLevel)
		}
	}
	for _, m := range managed {
		if fleet.InMaintenance(m.Name()) {
			t.Fatalf("replica %s still parked after rollout", m.Name())
		}
	}

	rows := testRows(8, 41)
	want := directPredict(t, candidate, rows)
	const reqs = 12
	for k := 0; k < reqs; k++ {
		got, err := router.Do(context.Background(), &cluster.Request{Rows: rows})
		if err != nil {
			t.Fatalf("routed request %d after rollout: %v", k, err)
		}
		mustEqualBitwise(t, got, want, "post-rollout routed vs direct candidate")
	}
	checkAccounting(t, router, reqs)
}

// TestRolloutRejectsWorseCandidate feeds the rollout a candidate whose
// canary MAE is far past the ratio gate: the first replica's probe
// must trip, the fleet must roll back to the incumbent, and no served
// answer may ever differ from it.
func TestRolloutRejectsWorseCandidate(t *testing.T) {
	incumbent := trainModel(t, 3)
	managed, fleet := newManagedFleet(t, incumbent, 3)
	router := cluster.NewRouter(fleet, cluster.Config{})

	probeRows := testRows(16, 51)
	cfg := cluster.RolloutConfig{
		ProbeRows:    probeRows,
		ProbeTargets: probeTargets(probeRows),
	}
	res, err := cluster.RunRollout(context.Background(), fleet, managed, &constModel{v: 1e3}, ml.ModelInfo{}, incumbent, ml.ModelInfo{}, cfg)
	if !errors.Is(err, cluster.ErrRollback) {
		t.Fatalf("rollout error = %v, want ErrRollback", err)
	}
	if !res.RolledBack || res.FailedReplica != "replica-a" {
		t.Fatalf("rolled_back=%v failed=%q, want rollback at replica-a", res.RolledBack, res.FailedReplica)
	}
	if len(res.Updated) != 0 {
		t.Fatalf("updated %v after rollback, want none", res.Updated)
	}
	if !strings.Contains(res.Reason, "MAE") {
		t.Fatalf("rollback reason %q does not name the MAE gate", res.Reason)
	}
	for _, m := range managed {
		if fleet.InMaintenance(m.Name()) {
			t.Fatalf("replica %s left parked after rollback", m.Name())
		}
	}

	rows := testRows(8, 61)
	want := directPredict(t, incumbent, rows)
	const reqs = 9
	for k := 0; k < reqs; k++ {
		got, err := router.Do(context.Background(), &cluster.Request{Rows: rows})
		if err != nil {
			t.Fatalf("routed request %d after rollback: %v", k, err)
		}
		mustEqualBitwise(t, got, want, "post-rollback routed vs incumbent")
	}
	checkAccounting(t, router, reqs)
}

// TestRolloutMidFleetRegressionUnderTraffic is the poisoned-model
// drill's cluster leg: a candidate that behaves until the third
// replica's canary probe, where its sentinel regression fires — while
// live traffic hammers the router the whole time. The rollout must
// roll the already-converted replicas back to the incumbent, every
// served response during and after the rollout must be bitwise
// identical to the incumbent, and the router's conservation invariant
// must survive the churn.
func TestRolloutMidFleetRegressionUnderTraffic(t *testing.T) {
	incumbent := trainModel(t, 5)
	// The candidate answers with the incumbent's own predictions, so a
	// converted replica stays bitwise-incumbent for traffic; only the
	// probe sentinel regresses, and only from the third replica's gate
	// on (2 replicas x 3 probe passes = 6 sentinel draws pass first).
	candidate := &flakyModel{inner: incumbent, after: 6}
	managed, fleet := newManagedFleet(t, incumbent, 3)
	router := cluster.NewRouter(fleet, cluster.Config{})

	probeRows := testRows(15, 71)
	sentinel := make([]float64, testFeatures)
	for i := range sentinel {
		sentinel[i] = sentinelValue
	}
	probeRows = append(probeRows, sentinel)
	cfg := cluster.RolloutConfig{
		ProbeRows:    probeRows,
		ProbeTargets: probeTargets(probeRows),
		MaxMAERatio:  50,
	}

	trafficRows := testRows(4, 81)
	want := directPredict(t, incumbent, trafficRows)
	var (
		wg    sync.WaitGroup
		stop  = make(chan struct{})
		total atomic.Int64
	)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				got, err := router.Do(context.Background(), &cluster.Request{Rows: trafficRows})
				total.Add(1)
				if err != nil {
					t.Errorf("traffic during rollout: %v", err)
					return
				}
				mustEqualBitwise(t, got, want, "traffic during rollout vs incumbent")
			}
		}()
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	res, err := cluster.RunRollout(ctx, fleet, managed, candidate, ml.ModelInfo{}, incumbent, ml.ModelInfo{}, cfg)
	close(stop)
	wg.Wait()
	if t.Failed() {
		t.FailNow()
	}

	if !errors.Is(err, cluster.ErrRollback) {
		t.Fatalf("rollout error = %v, want ErrRollback", err)
	}
	if !res.RolledBack || res.FailedReplica != "replica-c" {
		t.Fatalf("rolled_back=%v failed=%q, want mid-fleet rollback at replica-c", res.RolledBack, res.FailedReplica)
	}
	if len(res.Updated) != 0 {
		t.Fatalf("updated %v after rollback, want none", res.Updated)
	}
	if !strings.Contains(res.Reason, "ladder") {
		t.Fatalf("rollback reason %q does not name the degradation ladder gate", res.Reason)
	}
	if len(res.Replicas) != 3 {
		t.Fatalf("recorded %d replica gates, want 3", len(res.Replicas))
	}
	for _, rec := range res.Replicas {
		if rec.Updated {
			t.Fatalf("replica %s still marked updated after rollback", rec.Name)
		}
	}
	for _, m := range managed {
		if fleet.InMaintenance(m.Name()) {
			t.Fatalf("replica %s left parked after rollback", m.Name())
		}
	}

	// Every replica answers bitwise-incumbent again, directly and routed.
	for _, m := range managed {
		got, err := m.Replica().PredictBatch(context.Background(), trafficRows)
		if err != nil {
			t.Fatalf("direct predict on %s after rollback: %v", m.Name(), err)
		}
		mustEqualBitwise(t, got, want, "post-rollback "+m.Name())
	}
	const tail = 9
	for k := 0; k < tail; k++ {
		got, err := router.Do(context.Background(), &cluster.Request{Rows: trafficRows})
		if err != nil {
			t.Fatalf("routed request %d after rollback: %v", k, err)
		}
		mustEqualBitwise(t, got, want, "post-rollback routed")
	}
	checkAccounting(t, router, int(total.Load())+tail)
}
