// Package smoke is the cluster smoke gate (`mphpc-cluster -smoke`,
// `make cluster-smoke`): a self-contained end-to-end drill of the
// fleet-routing invariants. Run hard-asserts, in order:
//
//  1. under every routing strategy, routed responses are bitwise
//     identical to the offline ml.PredictBatch on the shared model,
//     and the router accounting balances (accepted == completed,
//     nothing dropped or rejected);
//  2. the router's own HTTP face on a real listener serves the same
//     bitwise contract and reports its fleet over /v1/fleetz;
//  3. killing replicas one by one degrades service, never denies it:
//     every request is still answered bitwise-correct (via failover),
//     nothing is dropped, dead replicas are evicted, and a revived
//     replica is re-admitted by the health probe;
//  4. the virtual-time strategy sweep's invariants hold: RPV-aware
//     routing beats the load-only baselines, and the degradation
//     ladder's throughput falls roughly linearly with capacity,
//     never to zero (experiments.CheckInvariants).
//
// The package lives inside the nondeterminism lint scope with the rest
// of the cluster layer: no wall-clock reads, no unseeded randomness —
// a failed run reproduces exactly.
package smoke

import (
	"context"
	"fmt"
	"net"
	"net/http"

	"crossarch/internal/cluster"
	"crossarch/internal/experiments"
	"crossarch/internal/fault"
	"crossarch/internal/floats"
	"crossarch/internal/ml"
	"crossarch/internal/ml/xgboost"
	"crossarch/internal/rpv"
	"crossarch/internal/serve"
	"crossarch/internal/stats"
)

const (
	smokeFeatures = 6
	smokeOutputs  = 4
	smokeReplicas = 4
)

// smokeModel fits the shared small XGBoost model; every replica serves
// the same weights so bitwise identity is well-defined fleet-wide.
func smokeModel(seed uint64) (*xgboost.Model, error) {
	rng := stats.NewRNG(seed)
	const n = 200
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		x := make([]float64, smokeFeatures)
		for j := range x {
			x[j] = rng.Range(-3, 3)
		}
		y := make([]float64, smokeOutputs)
		for k := range y {
			y[k] = x[k%smokeFeatures] * float64(k+1)
			if x[(k+1)%smokeFeatures] > 0 {
				y[k] += 2
			}
		}
		X[i], Y[i] = x, y
	}
	m := xgboost.New(xgboost.Params{Rounds: 10, MaxDepth: 3, LearningRate: 0.3, Seed: seed})
	if err := m.Fit(X, Y); err != nil {
		return nil, err
	}
	return m, nil
}

// smokeRequests is the deterministic request mix: varying batch
// shapes, stable per-app signatures, and synthetic prediction vectors
// so the RPV-aware strategy exercises its ranking.
func smokeRequests(n int, seed uint64) []*cluster.Request {
	rng := stats.NewRNG(seed)
	reqs := make([]*cluster.Request, n)
	for k := range reqs {
		rows := make([][]float64, 1+k%5)
		for i := range rows {
			r := make([]float64, smokeFeatures)
			for j := range r {
				r[j] = rng.Range(-3, 3)
			}
			rows[i] = r
		}
		v := make(rpv.RPV, smokeOutputs)
		for i := range v {
			v[i] = rng.Range(1, 8)
		}
		reqs[k] = &cluster.Request{
			Rows:      rows,
			Signature: fmt.Sprintf("app-%d", k%7),
			Predicted: v,
		}
	}
	return reqs
}

// bitwiseEqual compares prediction matrices exactly.
func bitwiseEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			// Exact comparison is the contract under test.
			if !floats.Eq(a[i][j], b[i][j]) {
				return false
			}
		}
	}
	return true
}

// buildFleet stands up the in-process replica fleet, each replica a
// full serve.Server behind the local adapter, wrapped for fault
// injection. close tears the servers down.
func buildFleet(model ml.Regressor) (fleet *cluster.Fleet, wrapped []*cluster.FaultyReplica, close func(), err error) {
	var servers []*serve.Server
	closeAll := func() {
		for _, s := range servers {
			s.BeginDrain()
			s.Close()
		}
	}
	specs := make([]cluster.Spec, smokeReplicas)
	wrapped = make([]*cluster.FaultyReplica, smokeReplicas)
	for i := range specs {
		srv, serr := serve.New(serve.Config{Outputs: smokeOutputs, Features: smokeFeatures})
		if serr != nil {
			closeAll()
			return nil, nil, nil, serr
		}
		if serr := srv.Install(model, ml.ModelInfo{}); serr != nil {
			closeAll()
			return nil, nil, nil, serr
		}
		servers = append(servers, srv)
		name := fmt.Sprintf("replica-%d", i)
		wrapped[i] = cluster.NewFaultyReplica(cluster.NewLocalReplica(name, srv), nil)
		specs[i] = cluster.Spec{Replica: wrapped[i], Arch: i % smokeOutputs}
	}
	fleet, err = cluster.NewFleet(specs)
	if err != nil {
		closeAll()
		return nil, nil, nil, err
	}
	return fleet, wrapped, closeAll, nil
}

// stageStrategies drills invariant 1: bitwise identity and balanced
// accounting under every strategy.
func stageStrategies(ctx context.Context, model ml.Regressor, fleet *cluster.Fleet) error {
	reqs := smokeRequests(50, 7)
	for _, strat := range cluster.Strategies(fleet.Names()) {
		router := cluster.NewRouter(fleet, cluster.Config{Strategy: strat})
		for k, req := range reqs {
			got, err := router.Do(ctx, req)
			if err != nil {
				return fmt.Errorf("strategy %s request %d: %w", strat.Name(), k, err)
			}
			if !bitwiseEqual(got, ml.PredictBatch(model, req.Rows)) {
				return fmt.Errorf("strategy %s request %d: routed response differs from offline", strat.Name(), k)
			}
		}
		st := router.Stats()
		if st.Accepted != int64(len(reqs)) || st.Completed != st.Accepted || st.Degraded != 0 || st.Dropped != 0 || st.Rejected != 0 {
			return fmt.Errorf("strategy %s accounting unbalanced on a healthy fleet: %+v", strat.Name(), st)
		}
	}
	return nil
}

// stageHTTP drills invariant 2: the router's HTTP face on a real
// listener.
func stageHTTP(ctx context.Context, model ml.Regressor, fleet *cluster.Fleet) error {
	router := cluster.NewRouter(fleet, cluster.Config{Strategy: cluster.NewConsistentHash(fleet.Names())})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	hs := &http.Server{Handler: router}
	go func() { _ = hs.Serve(ln) }()
	defer func() { _ = hs.Close() }()
	base := "http://" + ln.Addr().String()
	client := &serve.Client{BaseURL: base}

	for k, req := range smokeRequests(20, 9) {
		got, err := client.PredictBatch(ctx, req.Rows)
		if err != nil {
			return fmt.Errorf("HTTP request %d: %w", k, err)
		}
		if !bitwiseEqual(got, ml.PredictBatch(model, req.Rows)) {
			return fmt.Errorf("HTTP request %d: routed response differs from offline", k)
		}
	}
	if !client.Healthy(ctx) {
		return fmt.Errorf("router healthz probe failed with a healthy fleet")
	}
	resp, err := http.Get(base + "/v1/fleetz")
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("fleetz answered %d", resp.StatusCode)
	}
	return nil
}

// stageDegradation drills invariant 3: kills degrade, never deny;
// eviction and re-admission close the loop.
func stageDegradation(ctx context.Context, model ml.Regressor, fleet *cluster.Fleet, wrapped []*cluster.FaultyReplica) error {
	router := cluster.NewRouter(fleet, cluster.Config{
		Strategy:   cluster.NewLeastLoaded(),
		Retry:      fault.Backoff{Retries: smokeReplicas + 2},
		EvictAfter: 2,
	})
	for kills := 1; kills <= smokeReplicas/2; kills++ {
		wrapped[kills-1].Kill()
		reqs := smokeRequests(30, 11+uint64(kills))
		for k, req := range reqs {
			got, err := router.Do(ctx, req)
			if err != nil {
				return fmt.Errorf("%d kills, request %d: %w", kills, k, err)
			}
			if !bitwiseEqual(got, ml.PredictBatch(model, req.Rows)) {
				return fmt.Errorf("%d kills, request %d: response differs from offline", kills, k)
			}
		}
		st := router.Stats()
		if st.Dropped != 0 {
			return fmt.Errorf("%d kills dropped %d requests the fleet could serve", kills, st.Dropped)
		}
		if st.Accepted != st.Completed+st.Degraded {
			return fmt.Errorf("%d kills: accounting unbalanced: %+v", kills, st)
		}
	}
	// The dead replicas must have been evicted by their failures.
	if healthy := router.CheckHealth(ctx); healthy != smokeReplicas-smokeReplicas/2 {
		return fmt.Errorf("health probe counts %d healthy replicas, want %d", healthy, smokeReplicas-smokeReplicas/2)
	}
	// Revival re-admits.
	for i := 0; i < smokeReplicas/2; i++ {
		wrapped[i].Revive()
	}
	if healthy := router.CheckHealth(ctx); healthy != smokeReplicas {
		return fmt.Errorf("revived fleet probes %d healthy, want %d", healthy, smokeReplicas)
	}
	before := router.Stats()
	for k, req := range smokeRequests(20, 17) {
		if _, err := router.Do(ctx, req); err != nil {
			return fmt.Errorf("post-revival request %d: %w", k, err)
		}
	}
	after := router.Stats()
	if after.Degraded != before.Degraded {
		return fmt.Errorf("post-revival traffic still degrading: %+v -> %+v", before, after)
	}
	return nil
}

// stageSweep drills invariant 4: the virtual-time strategy comparison
// and degradation ladder.
func stageSweep() error {
	res, err := experiments.RunClusterSweep(experiments.ClusterConfig{Seed: 42})
	if err != nil {
		return err
	}
	return res.CheckInvariants()
}

// Run executes every smoke stage in order and returns the first
// violated invariant (nil when all hold). The context flows through
// every routed request and health probe, so the caller's deadline
// bounds the whole drill.
func Run(ctx context.Context) error {
	model, err := smokeModel(11)
	if err != nil {
		return fmt.Errorf("training the smoke model: %w", err)
	}
	fleet, wrapped, closeFleet, err := buildFleet(model)
	if err != nil {
		return fmt.Errorf("building the fleet: %w", err)
	}
	defer closeFleet()
	if err := stageStrategies(ctx, model, fleet); err != nil {
		return fmt.Errorf("stage 1 (strategy equivalence): %w", err)
	}
	if err := stageHTTP(ctx, model, fleet); err != nil {
		return fmt.Errorf("stage 2 (HTTP face): %w", err)
	}
	if err := stageDegradation(ctx, model, fleet, wrapped); err != nil {
		return fmt.Errorf("stage 3 (degradation): %w", err)
	}
	if err := stageSweep(); err != nil {
		return fmt.Errorf("stage 4 (virtual-time sweep): %w", err)
	}
	return nil
}
