package smoke_test

import (
	"context"
	"testing"

	"crossarch/internal/cluster/smoke"
)

// TestRun executes the full cluster smoke gate in-process: the same
// drill `mphpc-cluster -smoke` (and `make cluster-smoke`) runs, so a
// regression in any fleet-routing invariant fails plain
// `go test ./...` too.
func TestRun(t *testing.T) {
	if err := smoke.Run(context.Background()); err != nil {
		t.Fatalf("SMOKE FAIL: %v", err)
	}
}
