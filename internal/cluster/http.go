package cluster

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"

	"crossarch/internal/ml"
	"crossarch/internal/obs"
	"crossarch/internal/serve"
)

// FleetzResponse is the GET /v1/fleetz body: the router's per-replica
// view plus its accounting, the cluster-level sibling of /v1/loadz.
type FleetzResponse struct {
	Strategy string          `json:"strategy"`
	Replicas []ReplicaStatus `json:"replicas"`
	Stats    Stats           `json:"stats"`
}

// ReplicaStatus is one replica's row in /v1/fleetz.
type ReplicaStatus struct {
	Name     string `json:"name"`
	Arch     int    `json:"arch"`
	Healthy  bool   `json:"healthy"`
	InFlight int    `json:"in_flight"`
	Served   int64  `json:"served_total"`
	Fails    int64  `json:"consecutive_fails"`
}

// ServeHTTP implements http.Handler: the router is itself a prediction
// service, speaking the same /v1/predict dialect as one replica, so a
// serve.Client pointed at a router cannot tell it from a single server
// except through /v1/fleetz.
func (r *Router) ServeHTTP(w http.ResponseWriter, req *http.Request) { r.mux.ServeHTTP(w, req) }

func writeJSONStatus(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(v)
}

func (r *Router) handlePredict(w http.ResponseWriter, req *http.Request) {
	if req.Method != http.MethodPost {
		writeJSONStatus(w, http.StatusMethodNotAllowed, serve.ErrorResponse{Error: "POST only"})
		return
	}
	var pr serve.PredictRequest
	if err := json.NewDecoder(req.Body).Decode(&pr); err != nil {
		writeJSONStatus(w, http.StatusBadRequest, serve.ErrorResponse{Error: "decoding request: " + err.Error()})
		return
	}
	if len(pr.Rows) == 0 {
		writeJSONStatus(w, http.StatusBadRequest, serve.ErrorResponse{Error: "request has no rows"})
		return
	}
	if err := ml.ValidateMatrix(pr.Rows, 0); err != nil {
		writeJSONStatus(w, http.StatusBadRequest, serve.ErrorResponse{Error: "invalid rows: " + err.Error()})
		return
	}
	// The HTTP dialect carries no prediction vector, so HTTP-fronted
	// routing uses the signature-and-load strategies; RPV-aware routing
	// needs the in-process Do API, where the scheduler attaches each
	// job's predicted vector.
	preds, err := r.Do(req.Context(), &Request{Rows: pr.Rows})
	if err != nil {
		var se *serve.StatusError
		switch {
		case errors.As(err, &se):
			if se.RetryAfterSec > 0 {
				w.Header().Set("Retry-After", strconv.Itoa(int(se.RetryAfterSec+0.5)))
			}
			writeJSONStatus(w, se.Code, serve.ErrorResponse{Error: se.Message})
		case errors.Is(err, ErrNoReplicas):
			writeJSONStatus(w, http.StatusServiceUnavailable, serve.ErrorResponse{Error: err.Error()})
		default:
			writeJSONStatus(w, http.StatusBadGateway, serve.ErrorResponse{Error: err.Error()})
		}
		return
	}
	writeJSONStatus(w, http.StatusOK, serve.PredictResponse{Model: "cluster/" + r.cfg.Strategy.Name(), Predictions: preds})
}

func (r *Router) handleHealthz(w http.ResponseWriter, _ *http.Request) {
	healthy := 0
	for i := 0; i < r.fleet.NumReplicas(); i++ {
		if r.fleet.Healthy(i) {
			healthy++
		}
	}
	if healthy == 0 {
		writeJSONStatus(w, http.StatusServiceUnavailable, serve.HealthzResponse{Status: "no-replicas"})
		return
	}
	writeJSONStatus(w, http.StatusOK, serve.HealthzResponse{Status: "ok"})
}

func (r *Router) handleFleetz(w http.ResponseWriter, _ *http.Request) {
	resp := FleetzResponse{Strategy: r.cfg.Strategy.Name(), Stats: r.Stats()}
	for i, st := range r.fleet.states {
		resp.Replicas = append(resp.Replicas, ReplicaStatus{
			Name:     r.fleet.names[i],
			Arch:     st.arch,
			Healthy:  !st.evicted.Load(),
			InFlight: int(st.inflight.Load()),
			Served:   st.served.Load(),
			Fails:    st.fails.Load(),
		})
	}
	writeJSONStatus(w, http.StatusOK, resp)
}

func (r *Router) handleMetrics(w http.ResponseWriter, _ *http.Request) {
	data, err := obs.TakeSnapshot().WriteJSON()
	if err != nil {
		writeJSONStatus(w, http.StatusInternalServerError, serve.ErrorResponse{Error: err.Error()})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(data, '\n'))
}
