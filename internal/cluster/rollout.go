package cluster

import (
	"context"
	"errors"
	"fmt"
	"runtime"

	"crossarch/internal/ml"
	"crossarch/internal/obs"
	"crossarch/internal/serve"
)

// Rolling rollout: replicas are updated to a candidate model one at a
// time, each behind a maintenance park and a canary probe, with
// automatic fleet-wide rollback to the incumbent the moment any
// replica's probe regresses. The driver's contract is the one the
// registry drill asserts end to end: live traffic routed through the
// fleet during a rollout only ever reaches replicas serving a
// generation that passed its probe, so served responses stay bitwise
// identical to the incumbent until the whole fleet has converted — and
// if the rollout aborts, they simply stay that way.

// ErrRollback is the typed cause of an aborted rollout: wraps the
// per-replica gate failure that triggered it.
var ErrRollback = errors.New("cluster: rollout rolled back")

// ManagedReplica pairs an in-process serve.Server with its fleet-side
// Replica adapter, giving the rollout driver the two handles it needs:
// the wire path live traffic uses, and the management path that swaps
// models and reads the degradation ladder.
type ManagedReplica struct {
	name string
	srv  *serve.Server
	rep  *HTTPReplica
}

// NewManagedReplica wraps srv; the returned value's Replica side goes
// into the fleet spec and the whole value goes to RunRollout.
func NewManagedReplica(name string, srv *serve.Server) *ManagedReplica {
	return &ManagedReplica{name: name, srv: srv, rep: NewLocalReplica(name, srv)}
}

// Name returns the fleet name.
func (m *ManagedReplica) Name() string { return m.name }

// Replica returns the routable side for the fleet spec.
func (m *ManagedReplica) Replica() Replica { return m.rep }

// Server returns the managed server.
func (m *ManagedReplica) Server() *serve.Server { return m.srv }

// RolloutConfig tunes the per-replica canary gate.
type RolloutConfig struct {
	// ProbeRows are the canary feature rows sent to each replica while
	// it is parked; ProbeTargets are their true outputs. Both are
	// required — a rollout with no probe evidence is a blind swap.
	ProbeRows    [][]float64
	ProbeTargets [][]float64

	// ProbePasses is how many times the probe batch is sent per gate
	// (default 3): repeated passes catch flaky generations, and they
	// drive the degradation ladder enough for its high-water mark to
	// mean something.
	ProbePasses int

	// MaxMAERatio caps candidate probe MAE relative to the incumbent's
	// own probe MAE on the same replica (default 1.05): the candidate
	// may be up to 5% worse on the canary before the gate trips.
	MaxMAERatio float64

	// MaxFailures is the probe-call failure budget per replica
	// (default 0: any failed or erroring probe call trips the gate).
	MaxFailures int

	// MaxLadderLevel is the deepest degradation rung the candidate may
	// touch during its probe (default ml.LevelPrimary: any degradation
	// at all trips the gate).
	MaxLadderLevel int
}

func (c *RolloutConfig) setDefaults() {
	if c.ProbePasses <= 0 {
		c.ProbePasses = 3
	}
	if c.MaxMAERatio <= 0 {
		c.MaxMAERatio = 1.05
	}
	// MaxFailures and MaxLadderLevel default to zero (= ml.LevelPrimary)
	// deliberately: the strictest gate is the default.
}

// ReplicaRollout is the per-replica record in a RolloutResult.
type ReplicaRollout struct {
	Name string `json:"name"`
	// IncumbentMAE / CandidateMAE are the canary MAEs measured on this
	// replica, incumbent first (before the swap), candidate after.
	IncumbentMAE float64 `json:"incumbent_mae"`
	CandidateMAE float64 `json:"candidate_mae"`
	// Failures counts probe calls that errored; LadderLevel is the
	// candidate's degradation high-water during the probe.
	Failures    int  `json:"failures"`
	LadderLevel int  `json:"ladder_level"`
	Updated     bool `json:"updated"`
	// Reason explains a gate trip ("" when the replica passed).
	Reason string `json:"reason,omitempty"`
}

// RolloutResult is what RunRollout did.
type RolloutResult struct {
	// Updated names the replicas serving the candidate when the
	// rollout finished (all of them on success, none after rollback).
	Updated []string `json:"updated"`
	// RolledBack reports the automatic fleet rollback; FailedReplica
	// and Reason identify the gate trip that triggered it.
	RolledBack    bool             `json:"rolled_back"`
	FailedReplica string           `json:"failed_replica,omitempty"`
	Reason        string           `json:"reason,omitempty"`
	Replicas      []ReplicaRollout `json:"replicas"`
}

// park takes the named replica out of rotation and waits for its
// router-tracked in-flight count to drain to zero. Pairing the park
// with the router's post-pick maintenance re-check makes the barrier
// airtight: once this returns, no live request can land on the replica
// until it is unparked, so the model swap happens against dead air.
func park(ctx context.Context, fleet *Fleet, idx int) error {
	fleet.states[idx].maintenance.Store(true)
	obs.Inc("cluster.maintenance.begin.total")
	for fleet.InFlight(idx) > 0 {
		if err := ctx.Err(); err != nil {
			return fmt.Errorf("cluster: draining %s for rollout: %w", fleet.names[idx], err)
		}
		runtime.Gosched()
	}
	return nil
}

// unpark returns the replica to rotation.
func unpark(fleet *Fleet, idx int) {
	fleet.states[idx].maintenance.Store(false)
	obs.Inc("cluster.maintenance.end.total")
}

// probe sends the canary batch ProbePasses times straight at a parked
// replica and returns its mean absolute error over the targets plus
// the failure count. Probing out of rotation is the point: the model
// under test answers only the probe, never live traffic.
func probe(ctx context.Context, m *ManagedReplica, cfg *RolloutConfig) (mae float64, failures int) {
	var absSum float64
	var rows int
	for pass := 0; pass < cfg.ProbePasses; pass++ {
		preds, err := m.rep.PredictBatch(ctx, cfg.ProbeRows)
		if err != nil || len(preds) != len(cfg.ProbeTargets) {
			failures++
			continue
		}
		for i := range preds {
			for j := range cfg.ProbeTargets[i] {
				d := preds[i][j] - cfg.ProbeTargets[i][j]
				if d < 0 {
					d = -d
				}
				absSum += d
			}
			rows++
		}
	}
	if rows > 0 {
		mae = absSum / float64(rows)
	}
	return mae, failures
}

// RunRollout converts the fleet to the candidate model one replica at
// a time. For each replica: park it (maintenance, out of rotation),
// measure the incumbent's canary MAE, install the candidate, reset the
// degradation high-water, probe, and gate on failures, ladder depth,
// and MAE ratio. A replica that passes returns to rotation serving the
// candidate; a replica that fails triggers automatic rollback — the
// incumbent is reinstalled on it and on every replica already
// converted, everything returns to rotation, and the error wraps
// ErrRollback. Either way the fleet ends with no replica parked and
// every replica serving a probed generation.
//
// The incumbent arguments are the rollback target — last-known-good,
// exactly as the registry records it.
func RunRollout(ctx context.Context, fleet *Fleet, managed []*ManagedReplica, candidate ml.Regressor, candInfo ml.ModelInfo, incumbent ml.Regressor, incInfo ml.ModelInfo, cfg RolloutConfig) (*RolloutResult, error) {
	cfg.setDefaults()
	if len(cfg.ProbeRows) == 0 || len(cfg.ProbeTargets) != len(cfg.ProbeRows) {
		return nil, fmt.Errorf("cluster: rollout needs probe rows with matching targets")
	}
	if candidate == nil || incumbent == nil {
		return nil, fmt.Errorf("cluster: rollout needs both candidate and incumbent models")
	}
	idxOf := make(map[string]int, len(fleet.names))
	for i, n := range fleet.names {
		idxOf[n] = i
	}
	for _, m := range managed {
		if _, ok := idxOf[m.name]; !ok {
			return nil, fmt.Errorf("cluster: rollout replica %q is not in the fleet", m.name)
		}
	}
	obs.Inc("cluster.rollout.total")
	res := &RolloutResult{}

	rollback := func(failed *ManagedReplica, reason string) (*RolloutResult, error) {
		obs.Inc("cluster.rollout.rollback.total")
		res.RolledBack = true
		res.FailedReplica = failed.name
		res.Reason = reason
		// Reinstall last-known-good everywhere the candidate landed —
		// including the replica that just failed its gate — then return
		// everything to rotation. Reinstalling a model that was serving
		// the whole time is deliberate waste: the uniform end state is
		// worth more than the skipped work. The drain context drops the
		// caller's cancellation: rollback must complete even when the
		// rollout's own context is what aborted it.
		rbctx := context.WithoutCancel(ctx)
		for _, m := range managed {
			if err := park(rbctx, fleet, idxOf[m.name]); err != nil {
				obs.Inc("cluster.rollout.rollback_fail.total")
				return res, fmt.Errorf("%w: %s failed gate (%s) and %s failed drain: %v", ErrRollback, failed.name, reason, m.name, err)
			}
			if err := m.srv.Install(incumbent, incInfo); err != nil {
				// A replica that cannot even take the incumbent back is
				// left parked — unroutable is the only safe state for it.
				obs.Inc("cluster.rollout.rollback_fail.total")
				return res, fmt.Errorf("%w: %s failed gate (%s) and %s failed reinstall: %v", ErrRollback, failed.name, reason, m.name, err)
			}
			unpark(fleet, idxOf[m.name])
		}
		// After rollback no replica serves the candidate, whatever its
		// probe said mid-flight.
		for i := range res.Replicas {
			res.Replicas[i].Updated = false
		}
		res.Updated = nil
		return res, fmt.Errorf("%w: replica %s: %s", ErrRollback, failed.name, reason)
	}

	for _, m := range managed {
		if err := ctx.Err(); err != nil {
			return rollback(m, fmt.Sprintf("rollout context cancelled: %v", err))
		}
		if err := park(ctx, fleet, idxOf[m.name]); err != nil {
			return rollback(m, err.Error())
		}
		rec := ReplicaRollout{Name: m.name}

		// Baseline: the incumbent's own canary numbers on this replica.
		incMAE, incFails := probe(ctx, m, &cfg)
		rec.IncumbentMAE = incMAE
		if incFails > cfg.MaxFailures {
			// The replica cannot even answer for the incumbent — this is
			// a sick replica, not a bad candidate. Converting it blind
			// would hide that, so the rollout aborts.
			rec.Reason = fmt.Sprintf("incumbent baseline probe failed %d/%d calls", incFails, cfg.ProbePasses)
			res.Replicas = append(res.Replicas, rec)
			return rollback(m, rec.Reason)
		}

		if err := m.srv.Install(candidate, candInfo); err != nil {
			rec.Reason = fmt.Sprintf("candidate install: %v", err)
			res.Replicas = append(res.Replicas, rec)
			return rollback(m, rec.Reason)
		}
		m.srv.ResetLadderMaxLevel()
		candMAE, candFails := probe(ctx, m, &cfg)
		rec.CandidateMAE = candMAE
		rec.Failures = candFails
		rec.LadderLevel = m.srv.LadderMaxLevel()

		switch {
		case candFails > cfg.MaxFailures:
			rec.Reason = fmt.Sprintf("probe failures %d exceed budget %d", candFails, cfg.MaxFailures)
		case rec.LadderLevel > cfg.MaxLadderLevel:
			rec.Reason = fmt.Sprintf("degradation ladder reached level %d during probe (budget %d)", rec.LadderLevel, cfg.MaxLadderLevel)
		case candMAE > incMAE*cfg.MaxMAERatio:
			rec.Reason = fmt.Sprintf("candidate canary MAE %.6g exceeds incumbent %.6g x %.2f", candMAE, incMAE, cfg.MaxMAERatio)
		}
		if rec.Reason != "" {
			res.Replicas = append(res.Replicas, rec)
			return rollback(m, rec.Reason)
		}

		rec.Updated = true
		res.Replicas = append(res.Replicas, rec)
		res.Updated = append(res.Updated, m.name)
		unpark(fleet, idxOf[m.name])
		obs.Inc("cluster.rollout.replica.updated.total")
	}
	return res, nil
}
