// BenchmarkClusterRoute measures the routed hot path end to end —
// strategy pick, dispatch through an in-process replica's full serving
// stack, accounting — per strategy. It feeds the BENCH_predict.json
// regression gate, so routing overhead regressions fail `make check`.
package cluster_test

import (
	"context"
	"testing"
	"time"

	"crossarch/internal/cluster"
	"crossarch/internal/serve"
)

func BenchmarkClusterRoute(b *testing.B) {
	model := trainModel(b, 90)
	const nrows = 16
	for _, stratName := range []string{"round-robin", "least-loaded", "consistent-hash", "rpv-aware"} {
		b.Run(stratName, func(b *testing.B) {
			specs := make([]cluster.Spec, 4)
			for i := range specs {
				name := "replica-" + string(rune('a'+i))
				specs[i] = cluster.Spec{
					Replica: newServeReplica(b, name, model, serve.Config{
						MaxBatch: 64,
						MaxWait:  200 * time.Microsecond,
						QueueCap: 4096,
					}, false),
					Arch: i % testOutputs,
				}
			}
			fleet, err := cluster.NewFleet(specs)
			if err != nil {
				b.Fatal(err)
			}
			var strat cluster.Strategy
			for _, cand := range cluster.Strategies(fleet.Names()) {
				if cand.Name() == stratName {
					strat = cand
				}
			}
			router := cluster.NewRouter(fleet, cluster.Config{Strategy: strat})
			reqs := loadRequests(64, 90)
			for i := range reqs {
				reqs[i].Rows = testRows(nrows, uint64(i))
			}
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				k := 0
				for pb.Next() {
					if _, err := router.Do(context.Background(), reqs[k%len(reqs)]); err != nil {
						b.Fatal(err)
					}
					k++
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(nrows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
