package cluster

import (
	"bytes"
	"context"
	"io"
	"net/http"
	"sync/atomic"

	"crossarch/internal/fault"
	"crossarch/internal/serve"
)

// HTTPReplica adapts a serve.Client into a Replica: a remote (or
// httptest-backed) mphpc-serve instance addressed by base URL. The
// client is single-shot — failover and retry are the router's job, so
// the replica-level client never retries on its own.
type HTTPReplica struct {
	name   string
	client *serve.Client
}

// NewHTTPReplica builds the adapter. hc is the transport (nil uses the
// pooled default client).
func NewHTTPReplica(name, baseURL string, hc *http.Client) *HTTPReplica {
	return &HTTPReplica{name: name, client: &serve.Client{BaseURL: baseURL, HTTP: hc}}
}

// Name implements Replica.
func (r *HTTPReplica) Name() string { return r.name }

// PredictBatch implements Replica.
func (r *HTTPReplica) PredictBatch(ctx context.Context, rows [][]float64) ([][]float64, error) {
	return r.client.PredictBatch(ctx, rows)
}

// Healthy implements Replica via the /v1/healthz probe.
func (r *HTTPReplica) Healthy(ctx context.Context) bool { return r.client.Healthy(ctx) }

// Loadz exposes the replica's own load introspection endpoint. The
// router maintains its own in-flight counts for routing decisions,
// but those only see traffic this router originated — Loadz is the
// ground truth when several routers (or outside callers) share one
// replica, and it is what fleet dashboards read.
func (r *HTTPReplica) Loadz(ctx context.Context) (serve.LoadzResponse, error) {
	return r.client.Loadz(ctx)
}

// NewLocalReplica wraps an in-process serve.Server as a Replica
// without opening a listener: requests run through the server's real
// ServeHTTP path (admission, coalescing, codec — everything but TCP),
// so a simulated fleet exercises exactly the code a remote one does.
func NewLocalReplica(name string, srv *serve.Server) *HTTPReplica {
	return NewHTTPReplica(name, "http://"+name, &http.Client{Transport: handlerTransport{h: srv}})
}

// handlerTransport dispatches an HTTP round trip straight into a
// handler, recording the response in memory.
type handlerTransport struct {
	h http.Handler
}

// RoundTrip implements http.RoundTripper.
func (t handlerTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	rec := &responseRecorder{header: make(http.Header), code: http.StatusOK}
	t.h.ServeHTTP(rec, req)
	return &http.Response{
		Status:     http.StatusText(rec.code),
		StatusCode: rec.code,
		Proto:      req.Proto,
		ProtoMajor: req.ProtoMajor,
		ProtoMinor: req.ProtoMinor,
		Header:     rec.header,
		Body:       io.NopCloser(bytes.NewReader(rec.body.Bytes())),
		Request:    req,
	}, nil
}

// responseRecorder is the minimal in-memory http.ResponseWriter the
// transport needs (net/http/httptest stays a test-only dependency).
type responseRecorder struct {
	header      http.Header
	body        bytes.Buffer
	code        int
	wroteHeader bool
}

func (r *responseRecorder) Header() http.Header { return r.header }

func (r *responseRecorder) WriteHeader(code int) {
	if !r.wroteHeader {
		r.code = code
		r.wroteHeader = true
	}
}

func (r *responseRecorder) Write(p []byte) (int, error) {
	r.WriteHeader(http.StatusOK)
	return r.body.Write(p)
}

// FaultyReplica wraps a Replica with deterministic fault injection:
// the PredictError class fails calls (keyed on the replica's own call
// counter, so two wrapped replicas with the same injector fault
// independently), and a kill switch drops the replica entirely —
// PredictBatch errors and the health probe goes dark — until Revive.
// Chaos tests and the smoke gate drive eviction, failover, and
// re-admission through it.
type FaultyReplica struct {
	inner Replica
	inj   *fault.Injector
	calls atomic.Uint64
	dead  atomic.Bool
}

// NewFaultyReplica wraps inner; inj may be nil (kill switch only).
func NewFaultyReplica(inner Replica, inj *fault.Injector) *FaultyReplica {
	return &FaultyReplica{inner: inner, inj: inj}
}

// Name implements Replica.
func (f *FaultyReplica) Name() string { return f.inner.Name() }

// Kill drops the replica; Revive restores it.
func (f *FaultyReplica) Kill()   { f.dead.Store(true) }
func (f *FaultyReplica) Revive() { f.dead.Store(false) }

// Dead reports the kill switch.
func (f *FaultyReplica) Dead() bool { return f.dead.Load() }

// PredictBatch implements Replica.
func (f *FaultyReplica) PredictBatch(ctx context.Context, rows [][]float64) ([][]float64, error) {
	if f.dead.Load() {
		return nil, errReplicaDown{name: f.inner.Name()}
	}
	key := f.calls.Add(1) - 1
	if f.inj.Hit(fault.PredictError, key) {
		return nil, errReplicaTransient{name: f.inner.Name(), key: key}
	}
	return f.inner.PredictBatch(ctx, rows)
}

// Healthy implements Replica: dead replicas fail the probe.
func (f *FaultyReplica) Healthy(ctx context.Context) bool {
	return !f.dead.Load() && f.inner.Healthy(ctx)
}

type errReplicaDown struct{ name string }

func (e errReplicaDown) Error() string { return "cluster: replica " + e.name + " is down" }

type errReplicaTransient struct {
	name string
	key  uint64
}

func (e errReplicaTransient) Error() string {
	return "cluster: injected transient failure on replica " + e.name
}
