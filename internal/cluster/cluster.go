// Package cluster promotes the single-process prediction service to a
// fleet: a deterministic router fronting N mphpc-serve replicas behind
// one Replica interface — in-process serve.Server instances and real
// HTTP listeners look identical to the router — with pluggable routing
// strategies mirroring the paper's Algorithm 2 placement policies one
// level up. Where the scheduler places jobs on machines by predicted
// relative performance, the router places requests on replicas:
// round-robin, least-loaded (live in-flight counts), consistent-hash
// by application signature (warm per-architecture caches stay warm),
// and RPV-aware placement that reuses the exact sched.PickRanked scan
// the Model-based strategy runs.
//
// The routing contract extends the serving contract (DESIGN.md §10):
// for the same feature rows, a routed prediction is bitwise identical
// to a direct single-server prediction, no matter which strategy chose
// the replica — routing only ever changes *where* a batch runs, never
// what it computes. The fleet also carries the degradation story up a
// level: replicas that fail are evicted after a bounded number of
// consecutive errors and re-admitted when their health probe recovers,
// 429 overload answers fail over to the next replica on the strategy's
// order, and killing replicas degrades throughput roughly linearly —
// never to zero — while every accepted request still gets a response.
//
// Everything is deterministic by construction: the router never reads
// the wall clock (backoff sleeps go on a simulated fault.Clock unless
// the caller supplies a wall sleeper), strategies are pure functions of
// the request, the admission sequence number, and the fleet view, and
// the consistent-hash ring is a fixed FNV-1a vnode ring over replica
// names.
package cluster

import (
	"context"
	"fmt"
	"hash/fnv"
	"math"
	"strconv"
	"sync/atomic"

	"crossarch/internal/obs"
	"crossarch/internal/rpv"
)

// MaxReplicas bounds a fleet. Failover tracks attempted replicas in a
// 64-bit set, and a prediction-serving tier past 64 replicas per
// router cell should shard routers instead.
const MaxReplicas = 64

// Replica is the router's view of one backend: a named prediction
// server that can answer a batch and a health probe. Both the HTTP
// adapter (NewHTTPReplica) and the in-process adapter (NewLocalReplica)
// implement it, as do the simulated replicas in the experiments sweep.
// Both calls take the caller's context so a deadline set at the edge
// (the cluster HTTP front end, the process entrypoint) bounds every
// hop down to the replica's wire call.
type Replica interface {
	// Name identifies the replica; names must be unique within a fleet
	// and stable across restarts (the consistent-hash ring is built
	// from them).
	Name() string
	// PredictBatch answers one request's rows, bitwise identical to
	// ml.PredictBatch on the replica's model. A *serve.StatusError with
	// code 429 marks a retryable overload; any other error is a replica
	// failure.
	PredictBatch(ctx context.Context, rows [][]float64) ([][]float64, error)
	// Healthy is the router's probe for eviction and re-admission.
	Healthy(ctx context.Context) bool
}

// Spec binds a replica to its architecture affinity: the index into
// the canonical architecture order whose requests this replica serves
// fastest (its accelerator type, its warm per-arch cache). RPV-aware
// routing ranks replicas through it; the other strategies ignore it.
type Spec struct {
	Replica Replica
	Arch    int
}

// replicaState is the router-side record for one replica: the live
// in-flight count (maintained by the router around every dispatch),
// eviction state, and accounting.
type replicaState struct {
	replica Replica
	arch    int

	inflight atomic.Int64
	evicted  atomic.Bool
	// maintenance takes the replica out of rotation without touching
	// its eviction state: the rollout driver parks a replica here while
	// swapping its model, so live traffic never reaches a generation
	// that has not passed its canary probe. Maintenance is operator
	// intent, eviction is observed failure — CheckHealth reconciles the
	// latter and must never clear the former.
	maintenance atomic.Bool
	// fails counts consecutive non-overload failures; EvictAfter of
	// them evicts the replica until a health probe re-admits it.
	fails  atomic.Int64
	served atomic.Int64
}

// Fleet is an immutable set of replicas plus the router's live view of
// them. Construct with NewFleet; membership never changes after that
// (eviction toggles health, it does not remove the replica — the
// consistent-hash ring stays stable).
type Fleet struct {
	states []*replicaState
	names  []string
}

// NewFleet validates and assembles a fleet: 1..MaxReplicas replicas,
// unique non-empty names, non-negative arch affinities.
func NewFleet(specs []Spec) (*Fleet, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("cluster: empty fleet")
	}
	if len(specs) > MaxReplicas {
		return nil, fmt.Errorf("cluster: %d replicas exceed the %d-replica fleet cap", len(specs), MaxReplicas)
	}
	f := &Fleet{}
	seen := map[string]bool{}
	for i, sp := range specs {
		if sp.Replica == nil {
			return nil, fmt.Errorf("cluster: replica %d is nil", i)
		}
		name := sp.Replica.Name()
		if name == "" {
			return nil, fmt.Errorf("cluster: replica %d has an empty name", i)
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: duplicate replica name %q", name)
		}
		if sp.Arch < 0 {
			return nil, fmt.Errorf("cluster: replica %q arch %d is negative", name, sp.Arch)
		}
		seen[name] = true
		f.states = append(f.states, &replicaState{replica: sp.Replica, arch: sp.Arch})
		f.names = append(f.names, name)
	}
	return f, nil
}

// NumReplicas implements View.
func (f *Fleet) NumReplicas() int { return len(f.states) }

// Healthy implements View: a replica is routable unless evicted or
// parked in maintenance.
func (f *Fleet) Healthy(i int) bool {
	return !f.states[i].evicted.Load() && !f.states[i].maintenance.Load()
}

// SetMaintenance parks (or returns) the named replica; a parked
// replica is unroutable but keeps its eviction state. Reports whether
// the name exists in the fleet.
func (f *Fleet) SetMaintenance(name string, on bool) bool {
	for i, n := range f.names {
		if n == name {
			f.states[i].maintenance.Store(on)
			if on {
				obs.Inc("cluster.maintenance.begin.total")
			} else {
				obs.Inc("cluster.maintenance.end.total")
			}
			return true
		}
	}
	return false
}

// InMaintenance reports whether the named replica is parked.
func (f *Fleet) InMaintenance(name string) bool {
	for i, n := range f.names {
		if n == name {
			return f.states[i].maintenance.Load()
		}
	}
	return false
}

// InFlight implements View: requests the router has dispatched to
// replica i and not yet seen answered.
func (f *Fleet) InFlight(i int) int { return int(f.states[i].inflight.Load()) }

// Arch implements View.
func (f *Fleet) Arch(i int) int { return f.states[i].arch }

// Names returns the replica names in index order (the consistent-hash
// ring's construction input).
func (f *Fleet) Names() []string { return append([]string(nil), f.names...) }

// View is the read-only fleet state a routing strategy may consult.
// The router's Fleet implements it for live traffic; the experiments
// sweep implements it over a virtual-time simulation, so the same
// strategy code is measured in both worlds.
type View interface {
	NumReplicas() int
	Healthy(i int) bool
	InFlight(i int) int
	Arch(i int) int
}

// Request is one routable prediction request.
type Request struct {
	// Rows are the feature rows, exactly as POST /v1/predict takes them.
	Rows [][]float64
	// Signature identifies the application behind the rows for
	// cache-affinity routing; empty derives a deterministic signature
	// from the first row's bits.
	Signature string
	// Predicted is the application's relative-performance vector over
	// architectures (lower is faster, as in package rpv). RPV-aware
	// routing ranks replicas by it; nil falls back to least-loaded.
	Predicted rpv.RPV
}

// signature returns the request's routing signature, deriving one from
// the rows when the caller supplied none.
func (r *Request) signature() string {
	if r.Signature != "" {
		return r.Signature
	}
	return SignatureOf(r.Rows)
}

// SignatureOf derives a deterministic application signature from
// feature rows: FNV-1a over the bit patterns of the first row. Two
// requests carrying the same leading feature row always route to the
// same replica under consistent hashing, which is what keeps that
// replica's per-application caches warm.
func SignatureOf(rows [][]float64) string {
	h := fnv.New64a()
	if len(rows) > 0 {
		var buf [8]byte
		for _, x := range rows[0] {
			bits := math.Float64bits(x)
			for b := 0; b < 8; b++ {
				buf[b] = byte(bits >> (8 * b))
			}
			_, _ = h.Write(buf[:])
		}
	}
	return "sig-" + strconv.FormatUint(h.Sum64(), 16)
}
