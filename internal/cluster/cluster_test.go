// The cluster harness's verification spine: an e2e equivalence suite
// proving that routed predictions are bitwise identical to direct
// single-server predictions under every routing strategy, with the
// router's accounting invariant (accepted == completed + degraded,
// zero dropped) checked after every run. Fleet fixtures mix in-process
// replicas with real httptest listeners so both Replica adapters face
// the same contract. Strategy unit tables live in strategy_test.go,
// failure injection in chaos_test.go.
package cluster_test

import (
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"crossarch/internal/cluster"
	"crossarch/internal/ml"
	"crossarch/internal/ml/xgboost"
	"crossarch/internal/rpv"
	"crossarch/internal/serve"
	"crossarch/internal/stats"
)

const (
	testFeatures = 6
	testOutputs  = 4
)

// trainModel fits the shared small XGBoost model. Every replica in a
// test fleet installs the same fitted model, so bitwise equality of
// routed and direct answers is well-defined regardless of which
// replica a strategy picks.
func trainModel(t testing.TB, seed uint64) *xgboost.Model {
	t.Helper()
	rng := stats.NewRNG(seed)
	const n = 120
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		x := make([]float64, testFeatures)
		for j := range x {
			x[j] = rng.Range(-3, 3)
		}
		y := make([]float64, testOutputs)
		for k := range y {
			y[k] = x[k%testFeatures] * float64(k+1)
			if x[(k+1)%testFeatures] > 0 {
				y[k] += 2
			}
		}
		X[i], Y[i] = x, y
	}
	m := xgboost.New(xgboost.Params{Rounds: 8, MaxDepth: 3, LearningRate: 0.3, Seed: seed})
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	return m
}

// testRows draws n valid feature rows.
func testRows(n int, seed uint64) [][]float64 {
	rng := stats.NewRNG(seed)
	rows := make([][]float64, n)
	for i := range rows {
		r := make([]float64, testFeatures)
		for j := range r {
			r[j] = rng.Range(-3, 3)
		}
		rows[i] = r
	}
	return rows
}

// mustEqualBitwise fails unless two prediction matrices are exactly
// equal, bit for bit.
func mustEqualBitwise(t testing.TB, got, want [][]float64, msg string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", msg, len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: row %d width %d, want %d", msg, i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			// Exact float comparison is the contract under test.
			//lint:ignore floateq bitwise identity is the routing contract being asserted
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: row %d col %d: %v != %v", msg, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// newServeReplica stands up one serve.Server with the model installed
// and wraps it as a Replica — in-process when overHTTP is false, behind
// a real httptest listener when true.
func newServeReplica(t testing.TB, name string, m ml.Regressor, cfg serve.Config, overHTTP bool) cluster.Replica {
	t.Helper()
	if cfg.Outputs == 0 {
		cfg.Outputs = testOutputs
	}
	if cfg.Features == 0 {
		cfg.Features = testFeatures
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		if err := srv.Install(m, ml.ModelInfo{}); err != nil {
			t.Fatal(err)
		}
	}
	if !overHTTP {
		t.Cleanup(func() {
			srv.BeginDrain()
			srv.Close()
		})
		return cluster.NewLocalReplica(name, srv)
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		srv.BeginDrain()
		ts.Close()
		srv.Close()
	})
	return cluster.NewHTTPReplica(name, ts.URL, ts.Client())
}

// newTestFleet builds an n-replica fleet over one shared model,
// alternating in-process and httptest-backed replicas, with
// architecture affinities i % testOutputs.
func newTestFleet(t testing.TB, m ml.Regressor, n int) *cluster.Fleet {
	t.Helper()
	specs := make([]cluster.Spec, n)
	for i := range specs {
		name := "replica-" + string(rune('a'+i))
		specs[i] = cluster.Spec{
			Replica: newServeReplica(t, name, m, serve.Config{}, i%2 == 1),
			Arch:    i % testOutputs,
		}
	}
	f, err := cluster.NewFleet(specs)
	if err != nil {
		t.Fatal(err)
	}
	return f
}

// loadRequests is the deterministic request stream every equivalence
// test replays: varying batch sizes, per-request signatures, and a
// synthetic prediction vector so the RPV-aware strategy exercises its
// ranking path.
func loadRequests(n int, seed uint64) []*cluster.Request {
	rng := stats.NewRNG(seed)
	reqs := make([]*cluster.Request, n)
	for k := range reqs {
		rows := testRows(1+k%5, seed+uint64(k))
		v := make(rpv.RPV, testOutputs)
		for i := range v {
			v[i] = rng.Range(1, 8)
		}
		reqs[k] = &cluster.Request{
			Rows:      rows,
			Signature: "app-" + string(rune('a'+k%7)),
			Predicted: v,
		}
	}
	return reqs
}

// checkAccounting asserts the router invariant after a run where the
// fleet could serve everything.
func checkAccounting(t testing.TB, r *cluster.Router, want int) {
	t.Helper()
	st := r.Stats()
	if st.Accepted != int64(want) {
		t.Fatalf("accepted %d, want %d", st.Accepted, want)
	}
	if st.Accepted != st.Completed+st.Degraded+st.Dropped {
		t.Fatalf("accounting broken: accepted %d != completed %d + degraded %d + dropped %d",
			st.Accepted, st.Completed, st.Degraded, st.Dropped)
	}
	if st.Dropped != 0 {
		t.Fatalf("dropped %d requests a healthy fleet could serve", st.Dropped)
	}
	if st.Rejected != 0 {
		t.Fatalf("rejected %d requests with healthy replicas present", st.Rejected)
	}
}

// TestRoutedBitwiseIdenticalPerStrategy is the tentpole equivalence:
// for every routing strategy, every routed response equals the offline
// ml.PredictBatch answer exactly — routing changes where a batch runs,
// never what it computes.
func TestRoutedBitwiseIdenticalPerStrategy(t *testing.T) {
	model := trainModel(t, 1)
	fleet := newTestFleet(t, model, 4)
	reqs := loadRequests(60, 7)
	for _, strat := range cluster.Strategies(fleet.Names()) {
		t.Run(strat.Name(), func(t *testing.T) {
			router := cluster.NewRouter(fleet, cluster.Config{Strategy: strat})
			for k, req := range reqs {
				got, err := router.Do(context.Background(), req)
				if err != nil {
					t.Fatalf("request %d: %v", k, err)
				}
				mustEqualBitwise(t, got, ml.PredictBatch(model, req.Rows), "routed vs offline")
			}
			checkAccounting(t, router, len(reqs))
			st := router.Stats()
			if st.Degraded != 0 {
				t.Fatalf("healthy fleet degraded %d requests", st.Degraded)
			}
		})
	}
}

// TestRouterHTTPEquivalence drives the router through its own HTTP
// face: a serve.Client pointed at a router must get bitwise-offline
// answers, and the fleet introspection endpoints must agree with the
// router's accounting.
func TestRouterHTTPEquivalence(t *testing.T) {
	model := trainModel(t, 2)
	fleet := newTestFleet(t, model, 3)
	router := cluster.NewRouter(fleet, cluster.Config{Strategy: cluster.NewConsistentHash(fleet.Names())})
	ts := httptest.NewServer(router)
	defer ts.Close()
	client := &serve.Client{BaseURL: ts.URL, HTTP: ts.Client()}

	const n = 20
	for k := 0; k < n; k++ {
		rows := testRows(1+k%4, 50+uint64(k))
		got, err := client.PredictBatch(context.Background(), rows)
		if err != nil {
			t.Fatalf("request %d: %v", k, err)
		}
		mustEqualBitwise(t, got, ml.PredictBatch(model, rows), "HTTP routed vs offline")
	}
	checkAccounting(t, router, n)

	resp, err := ts.Client().Get(ts.URL + "/v1/fleetz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var fz cluster.FleetzResponse
	if err := json.NewDecoder(resp.Body).Decode(&fz); err != nil {
		t.Fatal(err)
	}
	if fz.Strategy != "consistent-hash" {
		t.Fatalf("fleetz strategy %q", fz.Strategy)
	}
	if len(fz.Replicas) != 3 {
		t.Fatalf("fleetz lists %d replicas", len(fz.Replicas))
	}
	served := int64(0)
	for _, rs := range fz.Replicas {
		if !rs.Healthy {
			t.Fatalf("replica %s unhealthy in a clean run", rs.Name)
		}
		served += rs.Served
	}
	if served != n {
		t.Fatalf("fleetz served total %d, want %d", served, n)
	}
	if !client.Healthy(context.Background()) {
		t.Fatal("router healthz probe failed with healthy replicas")
	}
}

// TestRouterHTTPValidation drives the router's own admission boundary.
func TestRouterHTTPValidation(t *testing.T) {
	model := trainModel(t, 3)
	fleet := newTestFleet(t, model, 2)
	router := cluster.NewRouter(fleet, cluster.Config{})
	ts := httptest.NewServer(router)
	defer ts.Close()

	post := func(body string) int {
		resp, err := ts.Client().Post(ts.URL+"/v1/predict", "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		return resp.StatusCode
	}
	if code := post("{not json"); code != http.StatusBadRequest {
		t.Fatalf("malformed body: %d", code)
	}
	if code := post(`{"rows": []}`); code != http.StatusBadRequest {
		t.Fatalf("empty rows: %d", code)
	}
	if code := post(`{"rows": [[1, "x"]]}`); code != http.StatusBadRequest {
		t.Fatalf("non-numeric row: %d", code)
	}
	resp, err := ts.Client().Get(ts.URL + "/v1/predict")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET predict: %d", resp.StatusCode)
	}
	var buf bytes.Buffer
	buf.WriteString(`{"rows": [[0, 0, 0, 0, 0, 0]]}`)
	resp, err = ts.Client().Post(ts.URL+"/v1/predict", "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("valid request: %d", resp.StatusCode)
	}
}

// TestFleetValidation covers NewFleet's rejection paths.
func TestFleetValidation(t *testing.T) {
	model := trainModel(t, 4)
	good := newServeReplica(t, "ok", model, serve.Config{}, false)
	cases := []struct {
		name  string
		specs []cluster.Spec
		want  string
	}{
		{"empty", nil, "empty fleet"},
		{"nil replica", []cluster.Spec{{}}, "is nil"},
		{"negative arch", []cluster.Spec{{Replica: good, Arch: -1}}, "negative"},
		{"duplicate names", []cluster.Spec{{Replica: good}, {Replica: good}}, "duplicate"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := cluster.NewFleet(tc.specs)
			if err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("got %v, want %q", err, tc.want)
			}
		})
	}
	over := make([]cluster.Spec, cluster.MaxReplicas+1)
	for i := range over {
		over[i] = cluster.Spec{Replica: newNamedStub("s" + string(rune('0'+i%10)) + "-" + string(rune('a'+i/10)))}
	}
	if _, err := cluster.NewFleet(over); err == nil || !strings.Contains(err.Error(), "fleet cap") {
		t.Fatalf("oversized fleet: %v", err)
	}
}

// newNamedStub is a minimal Replica for validation tests.
type namedStub struct{ name string }

func newNamedStub(name string) *namedStub { return &namedStub{name: name} }

func (s *namedStub) Name() string { return s.name }
func (s *namedStub) PredictBatch(_ context.Context, rows [][]float64) ([][]float64, error) {
	return make([][]float64, len(rows)), nil
}
func (s *namedStub) Healthy(context.Context) bool { return true }

// TestSignatureOf pins the derived-signature determinism the
// consistent-hash strategy depends on.
func TestSignatureOf(t *testing.T) {
	rows := testRows(3, 9)
	a := cluster.SignatureOf(rows)
	b := cluster.SignatureOf(rows)
	if a != b {
		t.Fatalf("signature not deterministic: %q vs %q", a, b)
	}
	other := cluster.SignatureOf(testRows(3, 10))
	if a == other {
		t.Fatal("distinct leading rows produced the same signature")
	}
	if cluster.SignatureOf(nil) == "" {
		t.Fatal("empty rows must still produce a signature")
	}
}
