package cluster

import (
	"hash/fnv"
	"sort"
	"strconv"

	"crossarch/internal/sched"
)

// Strategy picks the replica for a request. Pick is a pure function of
// the request, the router's admission sequence number seq, the fleet
// view, and the set of replicas already tried for this request, so the
// same inputs always route identically — placement sequences are
// golden-testable. Pick returns -1 when no eligible replica exists
// (every replica evicted or already tried).
type Strategy interface {
	Name() string
	Pick(req *Request, seq uint64, v View, tried func(int) bool) int
}

// eligible reports whether replica i may serve this attempt.
func eligible(i int, v View, tried func(int) bool) bool {
	return v.Healthy(i) && !tried(i)
}

// --- Round-robin -----------------------------------------------------

// RoundRobin rotates consecutive admissions across replicas, keyed on
// the admission sequence number (not internal state) exactly as the
// scheduler's Round-Robin keys on the job's submission index — so a
// retried request resumes the rotation where its sequence number says,
// and unhealthy replicas are skipped in rotation order.
type RoundRobin struct{}

// NewRoundRobin returns the round-robin routing strategy.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Strategy.
func (*RoundRobin) Name() string { return "round-robin" }

// Pick implements Strategy.
func (*RoundRobin) Pick(req *Request, seq uint64, v View, tried func(int) bool) int {
	n := v.NumReplicas()
	if n == 0 {
		return -1
	}
	start := int(seq % uint64(n))
	for k := 0; k < n; k++ {
		i := (start + k) % n
		if eligible(i, v, tried) {
			return i
		}
	}
	return -1
}

// --- Least-loaded ----------------------------------------------------

// LeastLoaded routes to the replica with the fewest in-flight
// requests, breaking ties deterministically by the lowest replica
// index — the load-only heuristic the paper's Algorithm 2 (and the
// RPV-aware strategy below) is measured against.
type LeastLoaded struct{}

// NewLeastLoaded returns the least-loaded routing strategy.
func NewLeastLoaded() *LeastLoaded { return &LeastLoaded{} }

// Name implements Strategy.
func (*LeastLoaded) Name() string { return "least-loaded" }

// Pick implements Strategy.
func (*LeastLoaded) Pick(req *Request, seq uint64, v View, tried func(int) bool) int {
	best := -1
	for i := 0; i < v.NumReplicas(); i++ {
		if !eligible(i, v, tried) {
			continue
		}
		if best < 0 || v.InFlight(i) < v.InFlight(best) {
			best = i
		}
	}
	return best
}

// --- Consistent hash -------------------------------------------------

// ringVnodes is the number of virtual nodes per replica on the hash
// ring. 64 vnodes keep the per-replica share of signature space within
// a few percent of uniform for fleets up to MaxReplicas.
const ringVnodes = 64

// ringPoint is one vnode: a hash position owned by a replica index.
type ringPoint struct {
	hash uint64
	idx  int
}

// ConsistentHash routes each application signature to a fixed replica
// via an FNV-1a vnode ring over replica names, so one application's
// requests keep landing on one replica and its per-application caches
// (compiled model residency, feature-layout warmth) stay hot. The ring
// is built once from the full membership: evicting a replica only
// remaps the signatures it owned (each falls to its ring successor),
// and re-admission restores the original map — the bounded-disruption
// property the strategy unit tests and FuzzConsistentHash pin.
type ConsistentHash struct {
	ring []ringPoint
	n    int
}

// NewConsistentHash builds the ring from the fleet's replica names in
// index order (Fleet.Names).
func NewConsistentHash(names []string) *ConsistentHash {
	ch := &ConsistentHash{n: len(names)}
	ch.ring = make([]ringPoint, 0, len(names)*ringVnodes)
	for idx, name := range names {
		for vn := 0; vn < ringVnodes; vn++ {
			ch.ring = append(ch.ring, ringPoint{hash: hashString(name + "#" + strconv.Itoa(vn)), idx: idx})
		}
	}
	sort.Slice(ch.ring, func(a, b int) bool {
		if ch.ring[a].hash != ch.ring[b].hash {
			return ch.ring[a].hash < ch.ring[b].hash
		}
		return ch.ring[a].idx < ch.ring[b].idx
	})
	return ch
}

// Name implements Strategy.
func (*ConsistentHash) Name() string { return "consistent-hash" }

// Pick implements Strategy: walk the ring clockwise from the
// signature's hash and take the first eligible owner.
func (ch *ConsistentHash) Pick(req *Request, seq uint64, v View, tried func(int) bool) int {
	if len(ch.ring) == 0 || v.NumReplicas() != ch.n {
		// A ring built for a different membership cannot answer; the
		// router constructs strategy and fleet together so this only
		// guards misuse.
		return -1
	}
	h := hashString(req.signature())
	start := sort.Search(len(ch.ring), func(i int) bool { return ch.ring[i].hash >= h })
	for k := 0; k < len(ch.ring); k++ {
		p := ch.ring[(start+k)%len(ch.ring)]
		if eligible(p.idx, v, tried) {
			return p.idx
		}
	}
	return -1
}

// hashString is FNV-1a over the bytes of s, finished with a
// splitmix64-style avalanche. Raw FNV-1a of near-identical short
// strings ("replica-0#1", "replica-0#2", ...) yields near-sequential
// values, which would collapse each replica's vnodes into one giant
// contiguous arc and defeat the ring entirely; the finalizer spreads
// them uniformly.
func hashString(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	z := h.Sum64()
	z ^= z >> 30
	z *= 0xbf58476d1ce4e5b9
	z ^= z >> 27
	z *= 0x94d049bb133111eb
	z ^= z >> 31
	return z
}

// --- RPV-aware -------------------------------------------------------

// RPVAware is Algorithm 2 promoted to routing: rank architectures by
// the request's predicted relative performance, expand the ranking to
// the replicas serving each architecture, and run the scheduler's own
// sched.PickRanked scan — the predicted-fastest replica that is not
// saturated wins; if every candidate is saturated, the predicted-
// fastest one takes the request anyway (it queues there, exactly as a
// job waits for its predicted-fastest machine). Requests with no
// prediction fall back to least-loaded, mirroring the degradation
// ladder's identity rung: no model, load-only placement.
type RPVAware struct {
	// Saturation is the in-flight count at which a replica is treated
	// as "full" for the PickRanked scan (default 4).
	Saturation int
	fallback   LeastLoaded
}

// NewRPVAware returns the prediction-aware routing strategy.
func NewRPVAware(saturation int) *RPVAware {
	if saturation <= 0 {
		saturation = 4
	}
	return &RPVAware{Saturation: saturation}
}

// Name implements Strategy.
func (*RPVAware) Name() string { return "rpv-aware" }

// Pick implements Strategy.
func (s *RPVAware) Pick(req *Request, seq uint64, v View, tried func(int) bool) int {
	if len(req.Predicted) == 0 {
		return s.fallback.Pick(req, seq, v, tried)
	}
	// Expand the architecture ranking to eligible replicas: for each
	// architecture fastest-first, its replicas in index order; replicas
	// whose arch the prediction does not cover go last, slowest of all.
	ranked := req.Predicted.RankedByPerformance()
	cand := make([]int, 0, v.NumReplicas())
	for _, a := range ranked {
		for i := 0; i < v.NumReplicas(); i++ {
			if v.Arch(i) == a && eligible(i, v, tried) {
				cand = append(cand, i)
			}
		}
	}
	for i := 0; i < v.NumReplicas(); i++ {
		if v.Arch(i) >= len(req.Predicted) && eligible(i, v, tried) {
			cand = append(cand, i)
		}
	}
	// The avoid set is already folded into candidacy, so the scan's
	// avoid predicate is empty; fullness is in-flight saturation.
	return sched.PickRanked(cand,
		func(int) bool { return false },
		func(i int) bool { return v.InFlight(i) >= s.Saturation })
}

// Strategies returns one instance of every routing strategy for a
// fleet with the given replica names — the comparison set the
// experiments sweep and the smoke gate iterate.
func Strategies(names []string) []Strategy {
	return []Strategy{
		NewRoundRobin(),
		NewLeastLoaded(),
		NewConsistentHash(names),
		NewRPVAware(0),
	}
}
