// Routing-strategy unit tables: golden placement sequences from a
// fixed workload (any change to routing order is a reviewable diff),
// the consistent-hash bounded-disruption properties under replica
// eviction and fleet growth, least-loaded tie-breaking, and the
// FuzzConsistentHash property harness.
package cluster_test

import (
	"fmt"
	"testing"

	"crossarch/internal/cluster"
	"crossarch/internal/rpv"
)

// fakeView is a hand-set fleet view for strategy unit tests.
type fakeView struct {
	archs    []int
	inflight []int
	healthy  []bool
}

func newFakeView(archs []int) *fakeView {
	v := &fakeView{archs: archs}
	v.inflight = make([]int, len(archs))
	v.healthy = make([]bool, len(archs))
	for i := range v.healthy {
		v.healthy[i] = true
	}
	return v
}

func (v *fakeView) NumReplicas() int   { return len(v.archs) }
func (v *fakeView) Healthy(i int) bool { return v.healthy[i] }
func (v *fakeView) InFlight(i int) int { return v.inflight[i] }
func (v *fakeView) Arch(i int) int     { return v.archs[i] }

func noTried(int) bool { return false }

// goldenNames is the fixed fleet behind the placement goldens: six
// replicas over four architectures.
func goldenNames() []string {
	return []string{"replica-0", "replica-1", "replica-2", "replica-3", "replica-4", "replica-5"}
}

// goldenRequests is the fixed request stream: eight requests from four
// applications, each with a distinct prediction vector (lower is
// faster, arch order 0..3).
func goldenRequests() []*cluster.Request {
	vectors := []rpv.RPV{
		{1, 2, 3, 4}, // app-0: arch 0 fastest
		{4, 3, 2, 1}, // app-1: arch 3 fastest
		{2, 1, 4, 3}, // app-2: arch 1 fastest
		{3, 4, 1, 2}, // app-3: arch 2 fastest
	}
	reqs := make([]*cluster.Request, 8)
	for k := range reqs {
		reqs[k] = &cluster.Request{
			Signature: fmt.Sprintf("app-%d", k%4),
			Predicted: vectors[k%4],
		}
	}
	return reqs
}

// runPlacement replays the golden workload through one strategy,
// charging each pick to the view's in-flight count so load-sensitive
// strategies see their own routing (each request "stays in flight" for
// the rest of the run — the worst-case pileup view).
func runPlacement(strat cluster.Strategy, v *fakeView) []int {
	var seq []int
	for k, req := range goldenRequests() {
		idx := strat.Pick(req, uint64(k), v, noTried)
		seq = append(seq, idx)
		if idx >= 0 {
			v.inflight[idx]++
		}
	}
	return seq
}

// TestGoldenPlacementSequences pins each strategy's placement of the
// fixed workload on the six-replica fleet, all replicas healthy.
func TestGoldenPlacementSequences(t *testing.T) {
	archs := []int{0, 1, 2, 3, 0, 1}
	golden := map[string][]int{
		"round-robin":     {0, 1, 2, 3, 4, 5, 0, 1},
		"least-loaded":    {0, 1, 2, 3, 4, 5, 0, 1},
		"consistent-hash": {1, 5, 2, 1, 1, 5, 2, 1},
		"rpv-aware":       {0, 3, 1, 2, 0, 3, 1, 2},
	}
	for _, strat := range cluster.Strategies(goldenNames()) {
		t.Run(strat.Name(), func(t *testing.T) {
			got := runPlacement(strat, newFakeView(archs))
			want, ok := golden[strat.Name()]
			if !ok {
				t.Fatalf("no golden for strategy %s (got %v)", strat.Name(), got)
			}
			if fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("placement %v, golden %v", got, want)
			}
		})
	}
}

// TestGoldenPlacementWithEviction pins the same workload with replica
// 0 evicted: every strategy must keep serving, never pick 0, and the
// consistent-hash picks for signatures replica 0 did not own must not
// move.
func TestGoldenPlacementWithEviction(t *testing.T) {
	archs := []int{0, 1, 2, 3, 0, 1}
	golden := map[string][]int{
		"round-robin":     {1, 1, 2, 3, 4, 5, 1, 1},
		"least-loaded":    {1, 2, 3, 4, 5, 1, 2, 3},
		"consistent-hash": {1, 5, 2, 1, 1, 5, 2, 1}, // none owned by replica 0
		"rpv-aware":       {4, 3, 1, 2, 4, 3, 1, 2},
	}
	for _, strat := range cluster.Strategies(goldenNames()) {
		t.Run(strat.Name(), func(t *testing.T) {
			v := newFakeView(archs)
			v.healthy[0] = false
			got := runPlacement(strat, v)
			for k, idx := range got {
				if idx == 0 {
					t.Fatalf("request %d placed on the evicted replica", k)
				}
				if idx < 0 {
					t.Fatalf("request %d unroutable with five healthy replicas", k)
				}
			}
			if want := golden[strat.Name()]; fmt.Sprint(got) != fmt.Sprint(want) {
				t.Fatalf("placement %v, golden %v", got, want)
			}
		})
	}
}

// TestConsistentHashEvictionDisruption pins the bounded-disruption
// property directly: evicting one replica only remaps the signatures
// it owned; everything else stays put.
func TestConsistentHashEvictionDisruption(t *testing.T) {
	names := goldenNames()
	strat := cluster.NewConsistentHash(names)
	v := newFakeView(make([]int, len(names)))
	const sigs = 200
	before := make([]int, sigs)
	for s := 0; s < sigs; s++ {
		before[s] = strat.Pick(&cluster.Request{Signature: fmt.Sprintf("sig-%03d", s)}, 0, v, noTried)
	}
	for victim := 0; victim < len(names); victim++ {
		v2 := newFakeView(make([]int, len(names)))
		v2.healthy[victim] = false
		moved := 0
		for s := 0; s < sigs; s++ {
			after := strat.Pick(&cluster.Request{Signature: fmt.Sprintf("sig-%03d", s)}, 0, v2, noTried)
			if before[s] != victim {
				if after != before[s] {
					t.Fatalf("victim %d: sig %d moved %d -> %d though its owner stayed healthy",
						victim, s, before[s], after)
				}
				continue
			}
			if after == victim {
				t.Fatalf("victim %d: sig %d still routed to the evicted replica", victim, s)
			}
			moved++
		}
		if moved == 0 {
			t.Fatalf("victim %d owned no signatures out of %d — ring badly unbalanced", victim, sigs)
		}
	}
}

// TestConsistentHashGrowthDisruption pins the add-a-replica property:
// growing the fleet from n to n+1 replicas only moves signatures onto
// the new replica — no signature moves between old replicas.
func TestConsistentHashGrowthDisruption(t *testing.T) {
	names := goldenNames()
	small := cluster.NewConsistentHash(names[:5])
	big := cluster.NewConsistentHash(names)
	vSmall := newFakeView(make([]int, 5))
	vBig := newFakeView(make([]int, 6))
	moved := 0
	const sigs = 200
	for s := 0; s < sigs; s++ {
		req := &cluster.Request{Signature: fmt.Sprintf("sig-%03d", s)}
		before := small.Pick(req, 0, vSmall, noTried)
		after := big.Pick(req, 0, vBig, noTried)
		if after != before {
			if after != 5 {
				t.Fatalf("sig %d moved %d -> %d instead of onto the new replica", s, before, after)
			}
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("new replica took no signatures — ring not redistributing")
	}
	if moved > sigs/2 {
		t.Fatalf("new replica took %d of %d signatures — disruption not bounded", moved, sigs)
	}
}

// TestConsistentHashMembershipGuard pins the misuse guard: a ring
// built for a different fleet size refuses to route.
func TestConsistentHashMembershipGuard(t *testing.T) {
	strat := cluster.NewConsistentHash(goldenNames())
	v := newFakeView(make([]int, 4))
	if idx := strat.Pick(&cluster.Request{Signature: "x"}, 0, v, noTried); idx != -1 {
		t.Fatalf("mismatched membership routed to %d, want -1", idx)
	}
}

// TestLeastLoadedTieBreak pins deterministic tie-breaking: equal
// in-flight counts resolve to the lowest replica index, and a strictly
// lighter replica always wins.
func TestLeastLoadedTieBreak(t *testing.T) {
	strat := cluster.NewLeastLoaded()
	v := newFakeView([]int{0, 0, 0, 0})
	if idx := strat.Pick(&cluster.Request{}, 3, v, noTried); idx != 0 {
		t.Fatalf("all-tied pick %d, want lowest index 0", idx)
	}
	v.inflight = []int{5, 2, 2, 7}
	if idx := strat.Pick(&cluster.Request{}, 0, v, noTried); idx != 1 {
		t.Fatalf("tied-minimum pick %d, want 1", idx)
	}
	v.inflight = []int{5, 2, 1, 7}
	if idx := strat.Pick(&cluster.Request{}, 0, v, noTried); idx != 2 {
		t.Fatalf("strict-minimum pick %d, want 2", idx)
	}
	v.healthy[2] = false
	if idx := strat.Pick(&cluster.Request{}, 0, v, noTried); idx != 1 {
		t.Fatalf("minimum evicted: pick %d, want 1", idx)
	}
}

// TestRoundRobinSkipsTriedAndUnhealthy pins rotation semantics: the
// start slot is seq mod n, tried and unhealthy replicas are skipped in
// rotation order, and exhaustion returns -1.
func TestRoundRobinSkipsTriedAndUnhealthy(t *testing.T) {
	strat := cluster.NewRoundRobin()
	v := newFakeView([]int{0, 0, 0})
	if idx := strat.Pick(&cluster.Request{}, 7, v, noTried); idx != 1 {
		t.Fatalf("seq 7 on 3 replicas picked %d, want 1", idx)
	}
	v.healthy[1] = false
	if idx := strat.Pick(&cluster.Request{}, 7, v, noTried); idx != 2 {
		t.Fatalf("unhealthy start slot: picked %d, want 2", idx)
	}
	tried := func(i int) bool { return i == 2 }
	if idx := strat.Pick(&cluster.Request{}, 7, v, tried); idx != 0 {
		t.Fatalf("tried next slot: picked %d, want 0", idx)
	}
	allTried := func(int) bool { return true }
	if idx := strat.Pick(&cluster.Request{}, 7, v, allTried); idx != -1 {
		t.Fatalf("everything tried: picked %d, want -1", idx)
	}
}

// TestRPVAwarePlacement pins the prediction-ranked scan: fastest
// predicted architecture wins, saturation spills to the next-fastest,
// total saturation falls back to the predicted-fastest anyway, and a
// missing prediction falls back to least-loaded.
func TestRPVAwarePlacement(t *testing.T) {
	strat := cluster.NewRPVAware(2)
	v := newFakeView([]int{0, 1, 2, 3})
	req := &cluster.Request{Predicted: rpv.RPV{3, 1, 2, 4}} // arch 1 fastest
	if idx := strat.Pick(req, 0, v, noTried); idx != 1 {
		t.Fatalf("fastest-arch pick %d, want 1", idx)
	}
	v.inflight[1] = 2 // saturate the fastest replica
	if idx := strat.Pick(req, 0, v, noTried); idx != 2 {
		t.Fatalf("saturated spill pick %d, want next-fastest 2", idx)
	}
	v.inflight = []int{9, 9, 9, 9} // everything saturated
	if idx := strat.Pick(req, 0, v, noTried); idx != 1 {
		t.Fatalf("all-saturated pick %d, want predicted-fastest 1", idx)
	}
	v.inflight = []int{3, 1, 2, 4}
	noPred := &cluster.Request{}
	if idx := strat.Pick(noPred, 0, v, noTried); idx != 1 {
		t.Fatalf("no-prediction fallback pick %d, want least-loaded 1", idx)
	}
	// Archs past the prediction's width rank last but stay routable.
	short := &cluster.Request{Predicted: rpv.RPV{2, 1}}
	v.inflight = []int{0, 0, 0, 0}
	v.healthy = []bool{false, false, true, true}
	if idx := strat.Pick(short, 0, v, noTried); idx != 2 {
		t.Fatalf("uncovered-arch pick %d, want 2", idx)
	}
}

// FuzzConsistentHash fuzzes the bounded-disruption property: for any
// signature and any single evicted replica, the pick must be a healthy
// replica, and evicting a replica that was NOT the original owner must
// not change the pick.
func FuzzConsistentHash(f *testing.F) {
	f.Add("app-0", uint8(0))
	f.Add("", uint8(3))
	f.Add("sig-deadbeef", uint8(5))
	names := goldenNames()
	strat := cluster.NewConsistentHash(names)
	f.Fuzz(func(t *testing.T, sig string, victim uint8) {
		v := newFakeView(make([]int, len(names)))
		req := &cluster.Request{Signature: sig}
		before := strat.Pick(req, 0, v, noTried)
		if before < 0 || before >= len(names) {
			t.Fatalf("healthy fleet pick %d out of range", before)
		}
		vi := int(victim) % len(names)
		v.healthy[vi] = false
		after := strat.Pick(req, 0, v, noTried)
		if after == vi {
			t.Fatalf("picked the evicted replica %d for %q", vi, sig)
		}
		if vi != before && after != before {
			t.Fatalf("evicting non-owner %d moved %q from %d to %d", vi, sig, before, after)
		}
	})
}
