// Failure-injection suite: table-driven replica-kill and transient-
// failure scenarios through FaultyReplica and fault.Injector, the
// eviction / re-admission lifecycle, overload failover, and the
// 32-goroutine race hammer. Every scenario re-checks the accounting
// invariant and the bitwise contract on whatever was served.
package cluster_test

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"crossarch/internal/cluster"
	"crossarch/internal/fault"
	"crossarch/internal/ml"
	"crossarch/internal/serve"
)

// newFaultyFleet builds n replicas over the model, each wrapped in a
// FaultyReplica, and returns both the fleet and the wrappers for kill
// control.
func newFaultyFleet(t testing.TB, m ml.Regressor, n int, inj *fault.Injector) (*cluster.Fleet, []*cluster.FaultyReplica) {
	t.Helper()
	specs := make([]cluster.Spec, n)
	wrapped := make([]*cluster.FaultyReplica, n)
	for i := range specs {
		inner := newServeReplica(t, "replica-"+string(rune('a'+i)), m, serve.Config{}, false)
		wrapped[i] = cluster.NewFaultyReplica(inner, inj)
		specs[i] = cluster.Spec{Replica: wrapped[i], Arch: i % testOutputs}
	}
	f, err := cluster.NewFleet(specs)
	if err != nil {
		t.Fatal(err)
	}
	return f, wrapped
}

// TestFailoverServesThroughKills is the kill table: with k of 4
// replicas dead, every request must still be answered bitwise-correct
// (degraded when the strategy's first choice was dead), with zero
// drops — the fleet-level degradation contract.
func TestFailoverServesThroughKills(t *testing.T) {
	model := trainModel(t, 11)
	for _, kills := range []int{0, 1, 2, 3} {
		for _, strat := range []string{"round-robin", "least-loaded", "consistent-hash"} {
			t.Run(strat+"/kills="+string(rune('0'+kills)), func(t *testing.T) {
				fleet, wrapped := newFaultyFleet(t, model, 4, nil)
				var s cluster.Strategy
				for _, cand := range cluster.Strategies(fleet.Names()) {
					if cand.Name() == strat {
						s = cand
					}
				}
				router := cluster.NewRouter(fleet, cluster.Config{
					Strategy: s,
					Retry:    fault.Backoff{Retries: 5},
				})
				for i := 0; i < kills; i++ {
					wrapped[i].Kill()
				}
				reqs := loadRequests(30, 23)
				for k, req := range reqs {
					got, err := router.Do(context.Background(), req)
					if err != nil {
						t.Fatalf("request %d with %d kills: %v", k, kills, err)
					}
					mustEqualBitwise(t, got, ml.PredictBatch(model, req.Rows), "failover vs offline")
				}
				st := router.Stats()
				if st.Accepted != int64(len(reqs)) || st.Dropped != 0 {
					t.Fatalf("accounting: %+v", st)
				}
				if st.Accepted != st.Completed+st.Degraded {
					t.Fatalf("accepted %d != completed %d + degraded %d", st.Accepted, st.Completed, st.Degraded)
				}
			})
		}
	}
}

// TestInjectedTransientFailures drives a fleet whose replicas fail
// sporadically under a deterministic injector: everything is still
// served, and the per-seed failure pattern is reproducible.
func TestInjectedTransientFailures(t *testing.T) {
	model := trainModel(t, 12)
	run := func(seed uint64) cluster.Stats {
		inj, err := fault.NewInjector(seed, fault.Plan{PredictError: 0.3})
		if err != nil {
			t.Fatal(err)
		}
		fleet, _ := newFaultyFleet(t, model, 3, inj)
		router := cluster.NewRouter(fleet, cluster.Config{
			Retry:      fault.Backoff{Retries: 6},
			EvictAfter: 100, // keep transient failures from evicting here
		})
		for k, req := range loadRequests(40, 31) {
			got, err := router.Do(context.Background(), req)
			if err != nil {
				t.Fatalf("request %d: %v", k, err)
			}
			mustEqualBitwise(t, got, ml.PredictBatch(model, req.Rows), "transient-fault vs offline")
		}
		return router.Stats()
	}
	a := run(7)
	if a.Degraded == 0 {
		t.Fatal("0.3 failure rate never forced a failover — injector not wired through")
	}
	if a.Dropped != 0 || a.Accepted != a.Completed+a.Degraded {
		t.Fatalf("accounting: %+v", a)
	}
	if b := run(7); a != b {
		t.Fatalf("same injector seed gave different accounting: %+v vs %+v", a, b)
	}
}

// TestEvictionAndReadmission walks the replica lifecycle: consecutive
// failures evict, the health probe keeps the replica out while dead,
// and recovery re-admits it with its failure count cleared.
func TestEvictionAndReadmission(t *testing.T) {
	model := trainModel(t, 13)
	fleet, wrapped := newFaultyFleet(t, model, 2, nil)
	router := cluster.NewRouter(fleet, cluster.Config{
		Strategy:   cluster.NewRoundRobin(),
		Retry:      fault.Backoff{Retries: 4},
		EvictAfter: 3,
	})
	wrapped[0].Kill()
	for k, req := range loadRequests(8, 41) {
		if _, err := router.Do(context.Background(), req); err != nil {
			t.Fatalf("request %d: %v", k, err)
		}
	}
	if fleet.Healthy(0) {
		t.Fatal("replica 0 not evicted after repeated failures")
	}
	if !fleet.Healthy(1) {
		t.Fatal("healthy replica 1 wrongly evicted")
	}
	if n := router.CheckHealth(context.Background()); n != 1 {
		t.Fatalf("CheckHealth on a half-dead fleet = %d, want 1", n)
	}
	wrapped[0].Revive()
	if n := router.CheckHealth(context.Background()); n != 2 {
		t.Fatalf("CheckHealth after revival = %d, want 2", n)
	}
	if !fleet.Healthy(0) {
		t.Fatal("revived replica 0 not re-admitted")
	}
	// The re-admitted replica serves again.
	st := router.Stats()
	for k, req := range loadRequests(8, 43) {
		if _, err := router.Do(context.Background(), req); err != nil {
			t.Fatalf("post-revival request %d: %v", k, err)
		}
	}
	st2 := router.Stats()
	if st2.Degraded != st.Degraded {
		t.Fatalf("post-revival traffic degraded: %+v -> %+v", st, st2)
	}
}

// TestWholeFleetDownRejects pins the rejection path: with every
// replica dead and evicted, Do refuses with ErrNoReplicas and counts
// the request as rejected, never accepted.
func TestWholeFleetDownRejects(t *testing.T) {
	model := trainModel(t, 14)
	fleet, wrapped := newFaultyFleet(t, model, 2, nil)
	router := cluster.NewRouter(fleet, cluster.Config{Retry: fault.Backoff{Retries: 3}})
	for _, w := range wrapped {
		w.Kill()
	}
	router.CheckHealth(context.Background()) // evict both
	req := loadRequests(1, 51)[0]
	_, err := router.Do(context.Background(), req)
	if !errors.Is(err, cluster.ErrNoReplicas) {
		t.Fatalf("whole fleet down: %v", err)
	}
	st := router.Stats()
	if st.Rejected != 1 || st.Accepted != 0 {
		t.Fatalf("accounting after rejection: %+v", st)
	}
}

// TestOverloadFailsOverWithoutEviction pins the 429 path: a replica
// whose queue is full answers 429, the router fails over to the next
// replica, and the overloaded replica is never evicted (overloaded is
// healthy, just busy).
func TestOverloadFailsOverWithoutEviction(t *testing.T) {
	model := trainModel(t, 15)
	// Replica a: an always-overloaded stub. Replica b: a real server.
	overloaded := &overloadStub{name: "replica-a"}
	specs := []cluster.Spec{
		{Replica: overloaded, Arch: 0},
		{Replica: newServeReplica(t, "replica-b", model, serve.Config{}, false), Arch: 1},
	}
	fleet, err := cluster.NewFleet(specs)
	if err != nil {
		t.Fatal(err)
	}
	router := cluster.NewRouter(fleet, cluster.Config{
		Strategy: cluster.NewRoundRobin(),
		Retry:    fault.Backoff{Retries: 4},
	})
	reqs := loadRequests(10, 61)
	for k, req := range reqs {
		got, err := router.Do(context.Background(), req)
		if err != nil {
			t.Fatalf("request %d: %v", k, err)
		}
		mustEqualBitwise(t, got, ml.PredictBatch(model, req.Rows), "overload failover vs offline")
	}
	if !fleet.Healthy(0) {
		t.Fatal("overloaded replica was evicted — 429 must never count toward eviction")
	}
	st := router.Stats()
	if st.Dropped != 0 || st.Accepted != int64(len(reqs)) {
		t.Fatalf("accounting: %+v", st)
	}
	if st.Degraded == 0 {
		t.Fatal("round-robin across an overloaded replica never failed over")
	}
	if overloaded.calls == 0 {
		t.Fatal("overloaded replica was never tried")
	}
}

// overloadStub always answers 429 with a Retry-After hint.
type overloadStub struct {
	name  string
	calls int
}

func (s *overloadStub) Name() string { return s.name }
func (s *overloadStub) PredictBatch(_ context.Context, rows [][]float64) ([][]float64, error) {
	s.calls++
	return nil, &serve.StatusError{Code: 429, Message: "queue full", RetryAfterSec: 0.01}
}
func (s *overloadStub) Healthy(context.Context) bool { return true }

// TestConcurrentHammerWithKill is the race hammer: 32 goroutines
// stream requests through one router while a replica dies and later
// revives mid-flight. Run under -race. At the end the accounting
// invariant must hold exactly and every successful response must have
// been bitwise-correct.
func TestConcurrentHammerWithKill(t *testing.T) {
	model := trainModel(t, 16)
	fleet, wrapped := newFaultyFleet(t, model, 4, nil)
	router := cluster.NewRouter(fleet, cluster.Config{
		Strategy: cluster.NewLeastLoaded(),
		Retry:    fault.Backoff{Retries: 6},
	})
	const (
		workers = 32
		perG    = 12
	)
	var wg sync.WaitGroup
	errs := make(chan error, workers*perG)
	for g := 0; g < workers; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			reqs := loadRequests(perG, 100+uint64(g))
			for k, req := range reqs {
				if g == 0 && k == perG/2 {
					wrapped[1].Kill()
				}
				if g == workers-1 && k == perG-1 {
					wrapped[1].Revive()
				}
				got, err := router.Do(context.Background(), req)
				if err != nil {
					errs <- err
					continue
				}
				want := ml.PredictBatch(model, req.Rows)
				for i := range got {
					for j := range got[i] {
						//lint:ignore floateq bitwise identity is the routing contract being asserted
						if got[i][j] != want[i][j] {
							errs <- errors.New("bitwise mismatch under concurrency")
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		if err != nil && !strings.Contains(err.Error(), "attempts exhausted") {
			t.Fatalf("hammer: %v", err)
		}
	}
	st := router.Stats()
	if st.Accepted != st.Completed+st.Degraded+st.Dropped {
		t.Fatalf("accounting after hammer: %+v", st)
	}
	if st.Completed == 0 {
		t.Fatal("hammer completed nothing")
	}
}
