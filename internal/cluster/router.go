package cluster

import (
	"context"
	"errors"
	"fmt"
	"net/http"
	"sync/atomic"

	"crossarch/internal/fault"
	"crossarch/internal/obs"
	"crossarch/internal/serve"
)

// ErrNoReplicas is returned when no healthy replica is available to
// even attempt a request (the whole fleet evicted). The request was
// never accepted — it does not count against the accounting invariant.
var ErrNoReplicas = errors.New("cluster: no healthy replica available")

// Config tunes the router. The zero value routes round-robin with the
// default failover budget.
type Config struct {
	// Strategy picks replicas (nil = round-robin).
	Strategy Strategy

	// Retry bounds failover: how many replicas (and backoff-spaced
	// re-attempts) one request may burn before the router gives up. The
	// zero value takes the fault.Backoff defaults (3 attempts total).
	Retry fault.Backoff

	// Clock is the simulated clock failover backoff sleeps on when
	// Sleep is nil. Nil is valid: delays are counted in obs and no
	// wall time passes — the deterministic default.
	Clock *fault.Clock

	// Sleep, when set, is called with each backoff delay in seconds
	// instead of Clock — wall-clock deployments pass a real sleep.
	Sleep func(seconds float64)

	// EvictAfter is the consecutive non-overload failure count that
	// evicts a replica until a health probe re-admits it (default 3).
	// 429 overload answers never count toward eviction: an overloaded
	// replica is healthy, just busy.
	EvictAfter int
}

func (c *Config) setDefaults() {
	if c.Strategy == nil {
		c.Strategy = NewRoundRobin()
	}
	if c.EvictAfter <= 0 {
		c.EvictAfter = 3
	}
}

// Stats is a snapshot of the router's accounting. The invariant the
// cluster tests and smoke gate enforce: Accepted == Completed +
// Degraded + Dropped, with Dropped == 0 whenever the fleet could have
// served the request.
type Stats struct {
	// Accepted counts requests the router dispatched at least once.
	Accepted int64 `json:"accepted"`
	// Completed counts requests answered by their first-choice replica.
	Completed int64 `json:"completed"`
	// Degraded counts requests answered only after failover — served,
	// but not where the strategy first wanted them.
	Degraded int64 `json:"degraded"`
	// Dropped counts accepted requests that exhausted the failover
	// budget without an answer.
	Dropped int64 `json:"dropped"`
	// Rejected counts requests refused outright because no healthy
	// replica existed to try.
	Rejected int64 `json:"rejected"`
}

// Router fronts a fleet: every Do picks a replica through the
// configured strategy, dispatches, and — on overload or failure —
// fails over along the strategy's order under a bounded backoff
// budget. The router is safe for concurrent use.
type Router struct {
	cfg   Config
	fleet *Fleet
	mux   *http.ServeMux
	seq   atomic.Uint64

	accepted  atomic.Int64
	completed atomic.Int64
	degraded  atomic.Int64
	dropped   atomic.Int64
	rejected  atomic.Int64
}

// NewRouter builds a router over the fleet.
func NewRouter(f *Fleet, cfg Config) *Router {
	cfg.setDefaults()
	r := &Router{cfg: cfg, fleet: f}
	r.mux = http.NewServeMux()
	r.mux.HandleFunc("/v1/predict", r.handlePredict)
	r.mux.HandleFunc("/v1/healthz", r.handleHealthz)
	r.mux.HandleFunc("/v1/fleetz", r.handleFleetz)
	r.mux.HandleFunc("/v1/metrics", r.handleMetrics)
	return r
}

// Fleet returns the routed fleet (its View side).
func (r *Router) Fleet() *Fleet { return r.fleet }

// Strategy returns the configured routing strategy.
func (r *Router) Strategy() Strategy { return r.cfg.Strategy }

// Stats snapshots the router accounting.
func (r *Router) Stats() Stats {
	return Stats{
		Accepted:  r.accepted.Load(),
		Completed: r.completed.Load(),
		Degraded:  r.degraded.Load(),
		Dropped:   r.dropped.Load(),
		Rejected:  r.rejected.Load(),
	}
}

// sleep spends one backoff delay.
func (r *Router) sleep(seconds float64) {
	if r.cfg.Sleep != nil {
		//lint:ignore hotpathalloc backoff only runs on failover after a replica already failed; the success path never reaches it
		r.cfg.Sleep(seconds)
		return
	}
	r.cfg.Clock.Sleep(seconds)
}

// Do routes one request: pick, dispatch, and on failure retry on the
// next replica in the strategy's order (overloaded replicas are
// revisited once every already-tried replica has been exhausted — by
// then the backoff has given their queues time to turn over). The
// context flows through to the chosen replica's wire call and bounds
// the failover loop: once the caller's deadline expires, no further
// replicas are attempted on its behalf. The returned predictions are
// bitwise identical to a direct single-server call on whichever
// replica answered.
//
//lint:hotpath
func (r *Router) Do(ctx context.Context, req *Request) ([][]float64, error) {
	seq := r.seq.Add(1) - 1
	var triedMask uint64
	//lint:ignore hotpathalloc routing bookkeeping: one closure per request, escaping into Pick; dwarfed by the replica round-trip it fronts (pinned by BenchmarkClusterRoute)
	tried := func(i int) bool { return triedMask&(1<<uint(i)) != 0 }
	attempts := r.cfg.Retry.Attempts()
	admitted := false
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		if err := ctx.Err(); err != nil {
			// Caller gone: stop failing over on its behalf. A request
			// cancelled after admission counts as dropped so the
			// conservation invariant (accepted == completed +
			// degraded + dropped) still holds.
			if !admitted {
				r.rejected.Add(1)
				obs.Inc("cluster.rejected.total")
				return nil, err
			}
			r.dropped.Add(1)
			obs.Inc("cluster.dropped.total")
			return nil, err
		}
		//lint:ignore hotpathalloc strategy implementations are shared with the virtual-time sweep; their allocation behavior is pinned by BenchmarkClusterRoute
		idx := r.cfg.Strategy.Pick(req, seq, r.fleet, tried)
		if idx < 0 && triedMask != 0 {
			// Every replica tried: clear the set so the backoff-spaced
			// next attempt can revisit replicas that answered 429.
			triedMask = 0
			//lint:ignore hotpathalloc strategy implementations are shared with the virtual-time sweep; their allocation behavior is pinned by BenchmarkClusterRoute
			idx = r.cfg.Strategy.Pick(req, seq, r.fleet, tried)
		}
		if idx < 0 {
			break
		}
		if !admitted {
			admitted = true
			r.accepted.Add(1)
			obs.Inc("cluster.accepted.total")
		}
		st := r.fleet.states[idx]
		st.inflight.Add(1)
		if st.maintenance.Load() {
			// Parked between Pick and dispatch: the rollout driver is
			// swapping this replica's model. The driver parks first and
			// then waits for in-flight to hit zero, so re-checking after
			// our own inflight increment (both seq-cst atomics) guarantees
			// either the driver sees us and waits, or we see the park and
			// back out here — a request can never land on a mid-swap
			// generation. Fail over without charging the replica a fault.
			st.inflight.Add(-1)
			triedMask |= 1 << uint(idx)
			continue
		}
		start := obs.Now()
		//lint:ignore hotpathalloc replica transport owns its allocations (HTTP encode/decode); the router itself stays allocation-lean
		preds, err := st.replica.PredictBatch(ctx, req.Rows)
		st.inflight.Add(-1)
		obs.Observe("cluster.dispatch.seconds", obs.SinceSeconds(start))
		if err == nil {
			st.fails.Store(0)
			st.served.Add(1)
			if attempt == 0 {
				r.completed.Add(1)
				obs.Inc("cluster.completed.total")
			} else {
				r.degraded.Add(1)
				obs.Inc("cluster.degraded.total")
			}
			return preds, nil
		}
		lastErr = err
		triedMask |= 1 << uint(idx)
		delay := r.cfg.Retry.Delay(attempt + 1)
		var se *serve.StatusError
		if errors.As(err, &se) && se.Retryable() {
			// Overload: healthy replica, full queue. Honor its
			// Retry-After hint but never count it toward eviction.
			obs.Inc("cluster.retry.overload.total")
			if se.RetryAfterSec > delay {
				delay = se.RetryAfterSec
			}
		} else {
			obs.Inc("cluster.replica.error.total")
			if st.fails.Add(1) >= int64(r.cfg.EvictAfter) && !st.evicted.Swap(true) {
				obs.Inc("cluster.evict.total")
			}
		}
		if attempt+1 < attempts {
			r.sleep(delay)
		}
	}
	if !admitted {
		r.rejected.Add(1)
		obs.Inc("cluster.rejected.total")
		return nil, ErrNoReplicas
	}
	r.dropped.Add(1)
	obs.Inc("cluster.dropped.total")
	//lint:ignore hotpathalloc give-up path after the whole failover budget burned; formatting one error here is noise against the attempts behind it
	return nil, fmt.Errorf("cluster: %d attempts exhausted: %w", attempts, lastErr)
}

// CheckHealth probes every replica and reconciles eviction state:
// unhealthy replicas are evicted, evicted replicas whose probe
// recovered are re-admitted with their failure count cleared. The
// context bounds every probe, so one wedged replica cannot stall the
// sweep past the caller's deadline. It returns the number of healthy
// replicas. Call it on whatever cadence the deployment wants (the
// mphpc-cluster binary probes between request waves; tests call it at
// exact points).
func (r *Router) CheckHealth(ctx context.Context) int {
	healthy := 0
	for _, st := range r.fleet.states {
		if st.maintenance.Load() {
			// Parked by the rollout driver: neither probed, counted, nor
			// re-admitted — maintenance is operator intent, and a healthy
			// probe mid-model-swap must not put the replica back in
			// rotation early.
			continue
		}
		if st.replica.Healthy(ctx) {
			healthy++
			if st.evicted.Swap(false) {
				st.fails.Store(0)
				obs.Inc("cluster.readmit.total")
			}
		} else if !st.evicted.Swap(true) {
			obs.Inc("cluster.evict.total")
		}
	}
	obs.Set("cluster.replicas.healthy", float64(healthy))
	return healthy
}
