// Package fault is the pipeline's deterministic fault-injection
// substrate. Production profiling stacks lose counters, corrupt model
// files, time out predictions, and lose nodes mid-job; this package
// simulates those failures reproducibly so every degradation path in
// the repository can be exercised under `go test` exactly as it would
// fire in the field.
//
// An Injector is seeded like every other stochastic component in the
// repository (a single integer seed through the stats generator), but
// its draws are keyed rather than streamed: whether fault class c fires
// for logical event key k depends only on (seed, c, k), never on how
// many draws happened before or on which goroutine asks. That makes
// injection bitwise-reproducible under the parallel prediction pool and
// lets independent layers (the ml ladder, the scheduler) share one
// injector without coupling their draw orders.
package fault

import (
	"fmt"
	"math"

	"crossarch/internal/obs"
	"crossarch/internal/stats"
)

// Class enumerates the injectable fault classes, one per real-world
// failure mode the pipeline must survive.
type Class int

const (
	// CounterDropout simulates a hardware counter sample that never
	// arrived: the feature is missing and must be imputed.
	CounterDropout Class = iota
	// FeatureCorrupt simulates NaN/Inf corruption of a feature row, the
	// kind produced by torn reads or unit bugs in collection agents.
	FeatureCorrupt
	// PredictError simulates a transient prediction failure (timeout,
	// RPC error); retry may succeed.
	PredictError
	// ModelCorrupt simulates a truncated or bit-flipped model artifact
	// that fails to load.
	ModelCorrupt
	// NodeFailure simulates a compute node dying at a simulated time,
	// killing the job running on it.
	NodeFailure

	// NumClasses is the number of fault classes.
	NumClasses
)

// String names the class in tables and error messages.
func (c Class) String() string {
	switch c {
	case CounterDropout:
		return "counter_dropout"
	case FeatureCorrupt:
		return "feature_corrupt"
	case PredictError:
		return "predict_error"
	case ModelCorrupt:
		return "model_corrupt"
	case NodeFailure:
		return "node_failure"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Plan holds the per-class injection rates, each the probability in
// [0, 1] that the class fires for one keyed event. The zero value
// injects nothing.
type Plan struct {
	CounterDropout float64 `json:"counter_dropout"`
	FeatureCorrupt float64 `json:"feature_corrupt"`
	PredictError   float64 `json:"predict_error"`
	ModelCorrupt   float64 `json:"model_corrupt"`
	NodeFailure    float64 `json:"node_failure"`
}

// Uniform returns a plan injecting every class at the same rate.
func Uniform(rate float64) Plan {
	return Plan{
		CounterDropout: rate,
		FeatureCorrupt: rate,
		PredictError:   rate,
		ModelCorrupt:   rate,
		NodeFailure:    rate,
	}
}

// Rate returns the rate for class c (0 for unknown classes).
func (p Plan) Rate(c Class) float64 {
	switch c {
	case CounterDropout:
		return p.CounterDropout
	case FeatureCorrupt:
		return p.FeatureCorrupt
	case PredictError:
		return p.PredictError
	case ModelCorrupt:
		return p.ModelCorrupt
	case NodeFailure:
		return p.NodeFailure
	default:
		return 0
	}
}

// Validate rejects rates outside [0, 1] (including NaN): an
// out-of-range rate is always a caller bug — a percentage passed as a
// fraction, or a sign slip — and clamping it would silently change the
// experiment.
func (p Plan) Validate() error {
	for c := Class(0); c < NumClasses; c++ {
		r := p.Rate(c)
		if math.IsNaN(r) || r < 0 || r > 1 {
			return fmt.Errorf("fault: %s rate %v outside [0,1]", c, r)
		}
	}
	return nil
}

// Zero reports whether the plan injects nothing.
func (p Plan) Zero() bool {
	for c := Class(0); c < NumClasses; c++ {
		if p.Rate(c) != 0 {
			return false
		}
	}
	return true
}

// Injector decides deterministically which keyed events fault. The
// fields are exported so validation layers (sched.Params) can inspect
// a plan they did not construct; use NewInjector to get a validated
// instance. A nil *Injector is valid and injects nothing, so
// fault-free paths pay no branches beyond one nil check.
type Injector struct {
	// Seed is the substrate seed all draws derive from.
	Seed uint64
	// Plan holds the per-class rates.
	Plan Plan
}

// NewInjector returns an injector for the seed and plan, rejecting
// invalid rates.
func NewInjector(seed uint64, plan Plan) (*Injector, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &Injector{Seed: seed, Plan: plan}, nil
}

// Key2 mixes two 64-bit components into one draw key, so layers can
// key draws on composite identities like (row, attempt) or
// (job, attempt) without colliding with single-component keys.
func Key2(a, b uint64) uint64 {
	// SplitMix64-style finalize over a linear combination; the odd
	// multipliers keep (a,b) and (b,a) distinct.
	z := a*0x9e3779b97f4a7c15 + b*0xbf58476d1ce4e5b9 + 0x94d049bb133111eb
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// draw returns the stream-th uniform variate for (class, key). Each
// (seed, class, key, stream) tuple seeds its own generator, so draws
// are independent of call order and safe from any goroutine.
func (in *Injector) draw(c Class, key, stream uint64) float64 {
	mixed := Key2(in.Seed, Key2(uint64(c)+1, Key2(key, stream)))
	return stats.NewRNG(mixed).Float64()
}

// Hit reports whether fault class c fires for event key, and counts
// the injection in obs when it does. The same (seed, plan, class, key)
// always returns the same answer. Nil injectors never fire.
func (in *Injector) Hit(c Class, key uint64) bool {
	if in == nil {
		return false
	}
	rate := in.Plan.Rate(c)
	if rate <= 0 {
		return false
	}
	if rate < 1 && in.draw(c, key, 0) >= rate {
		return false
	}
	// obsnames requires constant metric names, so each class records
	// into its own literal-named counter.
	switch c {
	case CounterDropout:
		obs.Inc("fault.counter_dropout.total")
	case FeatureCorrupt:
		obs.Inc("fault.feature_corrupt.total")
	case PredictError:
		obs.Inc("fault.predict_error.total")
	case ModelCorrupt:
		obs.Inc("fault.model_corrupt.total")
	case NodeFailure:
		obs.Inc("fault.node_failure.total")
	}
	return true
}

// U returns a deterministic uniform variate in [0, 1) for event key of
// class c, independent of the Hit draw — the "where/when" companion to
// Hit's "whether" (which feature dropped, how far into the run the
// node died). Nil injectors return 0.
func (in *Injector) U(c Class, key uint64) float64 {
	if in == nil {
		return 0
	}
	return in.draw(c, key, 1)
}
