package fault

import (
	"errors"
	"math"
	"sync"
	"testing"

	"crossarch/internal/obs"
)

func TestPlanValidate(t *testing.T) {
	cases := []struct {
		name string
		plan Plan
		ok   bool
	}{
		{"zero plan", Plan{}, true},
		{"uniform half", Uniform(0.5), true},
		{"rate one", Uniform(1), true},
		{"negative rate", Plan{NodeFailure: -0.1}, false},
		{"rate above one", Plan{PredictError: 1.5}, false},
		{"NaN rate", Plan{FeatureCorrupt: math.NaN()}, false},
	}
	for _, c := range cases {
		err := c.plan.Validate()
		if (err == nil) != c.ok {
			t.Errorf("%s: Validate() = %v, want ok=%v", c.name, err, c.ok)
		}
		if _, err := NewInjector(1, c.plan); (err == nil) != c.ok {
			t.Errorf("%s: NewInjector = %v, want ok=%v", c.name, err, c.ok)
		}
	}
}

func TestPlanZero(t *testing.T) {
	if !(Plan{}).Zero() {
		t.Error("zero plan should report Zero")
	}
	if (Plan{ModelCorrupt: 0.01}).Zero() {
		t.Error("non-zero plan should not report Zero")
	}
	if Uniform(0.2).Zero() {
		t.Error("uniform plan should not report Zero")
	}
}

func TestClassString(t *testing.T) {
	want := []string{"counter_dropout", "feature_corrupt", "predict_error", "model_corrupt", "node_failure"}
	for c := Class(0); c < NumClasses; c++ {
		if c.String() != want[c] {
			t.Errorf("Class(%d).String() = %q, want %q", c, c, want[c])
		}
	}
}

// TestHitDeterminismAndOrderIndependence pins the substrate's core
// contract: a draw depends only on (seed, class, key), never on how
// many draws preceded it or their order.
func TestHitDeterminismAndOrderIndependence(t *testing.T) {
	a, err := NewInjector(42, Uniform(0.3))
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewInjector(42, Uniform(0.3))
	if err != nil {
		t.Fatal(err)
	}
	const n = 2000
	forward := make([]bool, n)
	for k := 0; k < n; k++ {
		forward[k] = a.Hit(PredictError, uint64(k))
	}
	for k := n - 1; k >= 0; k-- {
		if got := b.Hit(PredictError, uint64(k)); got != forward[k] {
			t.Fatalf("key %d: reverse-order draw %v != forward-order %v", k, got, forward[k])
		}
	}
	// A different seed must give a different hit set.
	c, err := NewInjector(43, Uniform(0.3))
	if err != nil {
		t.Fatal(err)
	}
	same := 0
	for k := 0; k < n; k++ {
		if c.Hit(PredictError, uint64(k)) == forward[k] {
			same++
		}
	}
	if same == n {
		t.Error("seed 43 produced the identical hit set as seed 42")
	}
}

func TestHitRates(t *testing.T) {
	const n = 5000
	for _, rate := range []float64{0, 0.05, 0.5, 1} {
		in, err := NewInjector(7, Uniform(rate))
		if err != nil {
			t.Fatal(err)
		}
		hits := 0
		for k := 0; k < n; k++ {
			if in.Hit(NodeFailure, uint64(k)) {
				hits++
			}
		}
		got := float64(hits) / n
		if math.Abs(got-rate) > 0.03 {
			t.Errorf("rate %v: empirical hit rate %v", rate, got)
		}
	}
}

func TestHitClassesIndependent(t *testing.T) {
	in, err := NewInjector(9, Uniform(0.5))
	if err != nil {
		t.Fatal(err)
	}
	diff := 0
	for k := 0; k < 500; k++ {
		if in.Hit(CounterDropout, uint64(k)) != in.Hit(FeatureCorrupt, uint64(k)) {
			diff++
		}
	}
	if diff == 0 {
		t.Error("classes share a draw stream: every key agreed across classes")
	}
}

func TestNilInjector(t *testing.T) {
	var in *Injector
	if in.Hit(NodeFailure, 1) {
		t.Error("nil injector fired")
	}
	if u := in.U(NodeFailure, 1); u != 0 {
		t.Errorf("nil injector U = %v", u)
	}
}

func TestUDeterministicAndDistinctFromHit(t *testing.T) {
	in, err := NewInjector(11, Uniform(1))
	if err != nil {
		t.Fatal(err)
	}
	u1, u2 := in.U(NodeFailure, 33), in.U(NodeFailure, 33)
	if u1 != u2 {
		t.Errorf("U not deterministic: %v vs %v", u1, u2)
	}
	if u1 < 0 || u1 >= 1 {
		t.Errorf("U out of [0,1): %v", u1)
	}
	// The U stream must differ from the Hit stream for most keys.
	same := 0
	for k := 0; k < 200; k++ {
		if in.draw(NodeFailure, uint64(k), 0) == in.draw(NodeFailure, uint64(k), 1) {
			same++
		}
	}
	if same > 0 {
		t.Errorf("%d keys drew identical values on both streams", same)
	}
}

func TestHitCountsInObs(t *testing.T) {
	in, err := NewInjector(3, Plan{NodeFailure: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := obs.Default().Counter("fault.node_failure.total")
	before := c.Value()
	for k := 0; k < 10; k++ {
		in.Hit(NodeFailure, uint64(k))
	}
	if got := c.Value() - before; got != 10 {
		t.Errorf("fault.node_failure.total delta = %v, want 10", got)
	}
}

// TestHitConcurrent exercises the injector from many goroutines under
// -race: draws are stateless, so concurrent use must be safe and agree
// with sequential evaluation.
func TestHitConcurrent(t *testing.T) {
	in, err := NewInjector(21, Uniform(0.4))
	if err != nil {
		t.Fatal(err)
	}
	const n = 1000
	want := make([]bool, n)
	for k := range want {
		want[k] = in.Hit(FeatureCorrupt, uint64(k))
	}
	var wg sync.WaitGroup
	errs := make(chan int, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for k := 0; k < n; k++ {
				if in.Hit(FeatureCorrupt, uint64(k)) != want[k] {
					select {
					case errs <- k:
					default:
					}
					return
				}
			}
		}()
	}
	wg.Wait()
	select {
	case k := <-errs:
		t.Fatalf("concurrent draw diverged at key %d", k)
	default:
	}
}

func TestKey2Mixes(t *testing.T) {
	if Key2(1, 2) == Key2(2, 1) {
		t.Error("Key2 is symmetric; composite keys would collide")
	}
	if Key2(0, 0) == Key2(0, 1) || Key2(0, 0) == Key2(1, 0) {
		t.Error("Key2 collides on small inputs")
	}
}

func TestClock(t *testing.T) {
	var c Clock
	if c.Now() != 0 {
		t.Errorf("zero clock Now = %v", c.Now())
	}
	c.Sleep(1.5)
	c.Sleep(-2)         // ignored
	c.Sleep(math.NaN()) // ignored
	if c.Now() != 1.5 {
		t.Errorf("clock after sleeps = %v, want 1.5", c.Now())
	}
	var nilClock *Clock
	nilClock.Sleep(1) // must not panic
	if nilClock.Now() != 0 {
		t.Errorf("nil clock Now = %v", nilClock.Now())
	}
}

func TestBackoffDelaySchedule(t *testing.T) {
	b := Backoff{Retries: 4, Base: 0.1, Factor: 2, Max: 0.35}
	want := []float64{0.1, 0.2, 0.35, 0.35}
	for i, w := range want {
		if got := b.Delay(i + 1); math.Abs(got-w) > 1e-12 {
			t.Errorf("Delay(%d) = %v, want %v", i+1, got, w)
		}
	}
	if got := (Backoff{}).Attempts(); got != 3 {
		t.Errorf("default Attempts = %d, want 3", got)
	}
	if got := (Backoff{Retries: -1}).Attempts(); got != 1 {
		t.Errorf("Retries -1 Attempts = %d, want 1", got)
	}
}

func TestRetrySucceedsAfterTransientFailures(t *testing.T) {
	clock := &Clock{}
	calls := 0
	err := Retry(clock, Backoff{Retries: 3, Base: 0.1, Factor: 2, Max: 10}, func(attempt int) error {
		if attempt != calls {
			t.Errorf("attempt %d on call %d", attempt, calls)
		}
		calls++
		if attempt < 2 {
			return errors.New("transient")
		}
		return nil
	})
	if err != nil {
		t.Fatalf("Retry = %v", err)
	}
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	// Two backoffs: 0.1 + 0.2 simulated seconds, no wall time.
	if got := clock.Now(); math.Abs(got-0.3) > 1e-12 {
		t.Errorf("simulated clock = %v, want 0.3", got)
	}
}

func TestRetryExhaustsBudget(t *testing.T) {
	sentinel := errors.New("still down")
	calls := 0
	err := Retry(nil, Backoff{Retries: 2}, func(int) error {
		calls++
		return sentinel
	})
	if calls != 3 {
		t.Errorf("calls = %d, want 3", calls)
	}
	if !errors.Is(err, sentinel) {
		t.Errorf("exhausted Retry error %v does not wrap the last failure", err)
	}
}
