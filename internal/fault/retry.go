package fault

import (
	"fmt"

	"crossarch/internal/obs"
)

// Clock is a simulated clock: a monotonically advancing virtual time in
// seconds. Retry backoff sleeps on it instead of the wall clock, so
// tests of transient-fault handling run instantly and the backoff
// schedule is part of the deterministic record. The zero value starts
// at time zero; a nil *Clock still accepts sleeps (they are counted in
// obs but the elapsed time is discarded).
type Clock struct {
	sec float64
}

// Now returns the current simulated time in seconds.
func (c *Clock) Now() float64 {
	if c == nil {
		return 0
	}
	return c.sec
}

// Sleep advances the simulated clock by d seconds (negative or NaN
// durations are ignored, mirroring obs counter semantics).
func (c *Clock) Sleep(d float64) {
	if !(d > 0) {
		return
	}
	obs.Add("fault.backoff.seconds.total", d)
	if c != nil {
		c.sec += d
	}
}

// Backoff bounds a retry loop: up to Retries re-attempts after the
// first failure, sleeping Base * Factor^attempt simulated seconds
// (capped at Max) between attempts. Zero fields take the documented
// defaults.
type Backoff struct {
	// Retries is the number of re-attempts after the first failure
	// (0 = 2; use a negative value for "no retries").
	Retries int
	// Base is the first backoff delay in simulated seconds (0 = 0.05).
	Base float64
	// Factor multiplies the delay each attempt (0 = 2).
	Factor float64
	// Max caps one delay (0 = 1.0).
	Max float64
}

// withDefaults returns the backoff with zero fields defaulted.
func (b Backoff) withDefaults() Backoff {
	if b.Retries == 0 {
		b.Retries = 2
	}
	if b.Retries < 0 {
		b.Retries = 0
	}
	if b.Base == 0 {
		b.Base = 0.05
	}
	if b.Factor == 0 {
		b.Factor = 2
	}
	if b.Max == 0 {
		b.Max = 1
	}
	return b
}

// Attempts returns the total attempt budget (first try + retries).
func (b Backoff) Attempts() int { return b.withDefaults().Retries + 1 }

// Delay returns the simulated backoff before re-attempt number
// attempt (1-based: the delay slept after the attempt-th failure).
func (b Backoff) Delay(attempt int) float64 {
	b = b.withDefaults()
	d := b.Base
	for i := 1; i < attempt; i++ {
		d *= b.Factor
		if d >= b.Max {
			return b.Max
		}
	}
	if d > b.Max {
		d = b.Max
	}
	return d
}

// Retry runs op until it succeeds or the attempt budget is exhausted,
// sleeping the backoff schedule on the simulated clock between
// attempts. op receives the 0-based attempt number; the returned error
// is nil on success or the last attempt's error. Every re-attempt is
// counted in obs.
func Retry(clock *Clock, b Backoff, op func(attempt int) error) error {
	b = b.withDefaults()
	var err error
	for attempt := 0; ; attempt++ {
		if err = op(attempt); err == nil {
			return nil
		}
		if attempt >= b.Retries {
			return fmt.Errorf("fault: %d attempts exhausted: %w", attempt+1, err)
		}
		obs.Inc("fault.retries.total")
		clock.Sleep(b.Delay(attempt + 1))
	}
}
