package core

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"

	"crossarch/internal/dataframe"
	"crossarch/internal/ml"
)

// predictorEnvelope is the on-disk predictor format: the model envelope
// from internal/ml plus the feature schema and normalization.
type predictorEnvelope struct {
	Features []string                   `json:"features"`
	Norms    map[string]dataframe.Stats `json:"norms"`
	Model    json.RawMessage            `json:"model"`
}

// Save serializes the predictor (model, schema, normalization) to w.
func (p *Predictor) Save(w io.Writer) error {
	var modelBuf bytes.Buffer
	if err := ml.SaveModel(&modelBuf, p.Model); err != nil {
		return err
	}
	return json.NewEncoder(w).Encode(predictorEnvelope{
		Features: p.Features,
		Norms:    p.Norms,
		Model:    modelBuf.Bytes(),
	})
}

// SaveFile writes the predictor to the named file.
func (p *Predictor) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if err := p.Save(f); err != nil {
		return err
	}
	return f.Close()
}

// LoadPredictor reads a predictor from r. The model's learner package
// must be imported (importing core imports all four standard learners).
func LoadPredictor(r io.Reader) (*Predictor, error) {
	var env predictorEnvelope
	if err := json.NewDecoder(r).Decode(&env); err != nil {
		return nil, fmt.Errorf("core: decoding predictor: %w", err)
	}
	if len(env.Features) == 0 {
		return nil, fmt.Errorf("core: predictor has no feature schema")
	}
	model, err := ml.LoadModel(bytes.NewReader(env.Model))
	if err != nil {
		return nil, err
	}
	norms := env.Norms
	if norms == nil {
		norms = map[string]dataframe.Stats{}
	}
	return &Predictor{Model: model, Features: env.Features, Norms: norms}, nil
}

// LoadPredictorFile reads a predictor from the named file.
func LoadPredictorFile(path string) (*Predictor, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return LoadPredictor(f)
}
