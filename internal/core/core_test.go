package core

import (
	"bytes"
	"math"
	"testing"

	"crossarch/internal/apps"
	"crossarch/internal/arch"
	"crossarch/internal/dataset"
	"crossarch/internal/perfmodel"
	"crossarch/internal/profiler"
	"crossarch/internal/rpv"
	"crossarch/internal/stats"
)

// testDataset builds a reduced but learnable dataset once per test run.
var cachedDS *dataset.Dataset

func testDataset(t *testing.T) *dataset.Dataset {
	t.Helper()
	if cachedDS != nil {
		return cachedDS
	}
	ds, err := dataset.Build(dataset.Params{
		Apps: []*apps.App{
			apps.CoMD(), apps.SW4lite(), apps.XSBench(), apps.CANDLE(), apps.MiniFE(),
		},
		Trials: 4,
		Seed:   11,
	})
	if err != nil {
		t.Fatal(err)
	}
	cachedDS = ds
	return ds
}

func TestStandardModels(t *testing.T) {
	models := StandardModels(1)
	if len(models) != 4 {
		t.Fatalf("StandardModels = %d models", len(models))
	}
	names := map[string]bool{}
	for _, m := range models {
		names[m.Name()] = true
	}
	for _, want := range ModelOrder {
		if !names[want] {
			t.Errorf("missing model %s", want)
		}
	}
	if len(StandardFactories(1)) != 4 {
		t.Error("StandardFactories should have 4 entries")
	}
}

func TestTrainEvalShape(t *testing.T) {
	ds := testDataset(t)
	ev, err := TrainEval(ds, DefaultMean(), 0.2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if ev.N != ds.NumRows()/5 {
		t.Errorf("test rows = %d, want %d", ev.N, ds.NumRows()/5)
	}
	if ev.MAE <= 0 {
		t.Error("mean model should have positive MAE")
	}
}

func TestCompareModelsOrdering(t *testing.T) {
	ds := testDataset(t)
	evals, err := CompareModels(ds, StandardFactories(5), DefaultTestFraction, 7)
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Figure 2 shape: xgboost and forest far better than
	// mean; linear in between; xgboost at least 3x better than mean.
	xgb, mean, lin, forest := evals["xgboost"], evals["mean"], evals["linear"], evals["decision forest"]
	if xgb.MAE >= mean.MAE/3 {
		t.Errorf("xgboost MAE %v not >> mean %v", xgb.MAE, mean.MAE)
	}
	if lin.MAE >= mean.MAE {
		t.Errorf("linear MAE %v >= mean %v", lin.MAE, mean.MAE)
	}
	if xgb.MAE >= lin.MAE {
		t.Errorf("xgboost MAE %v >= linear %v", xgb.MAE, lin.MAE)
	}
	if forest.MAE >= lin.MAE {
		t.Errorf("forest MAE %v >= linear %v", forest.MAE, lin.MAE)
	}
	if xgb.SOS <= mean.SOS {
		t.Errorf("xgboost SOS %v <= mean %v", xgb.SOS, mean.SOS)
	}
}

func TestTrainPredictorAndPredictProfile(t *testing.T) {
	ds := testDataset(t)
	pred, ev, err := TrainPredictor(ds, DefaultXGBoost(9), 13)
	if err != nil {
		t.Fatal(err)
	}
	if ev.MAE > 0.5 {
		t.Errorf("predictor eval MAE = %v, model not learning", ev.MAE)
	}

	// Predict for a profile of a known app and compare against the
	// analytic ground truth.
	a := apps.SW4lite()
	m, _ := arch.ByName("Quartz")
	var p profiler.Profiler
	prof, err := p.Run(a, a.Inputs[1], m, perfmodel.OneNode, stats.NewRNG(17))
	if err != nil {
		t.Fatal(err)
	}
	got, err := pred.PredictProfile(prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != arch.NumSystems {
		t.Fatalf("prediction length = %d", len(got))
	}

	var mod perfmodel.Model
	times := make([]float64, arch.NumSystems)
	for i, machine := range arch.All() {
		times[i] = mod.Runtime(a, a.Inputs[1], machine, perfmodel.OneNode).TotalSec
	}
	truth, err := rpv.FromTimes(times, arch.Index("Quartz"))
	if err != nil {
		t.Fatal(err)
	}
	for k := range truth {
		if math.Abs(got[k]-truth[k]) > 0.5*truth[k]+0.2 {
			t.Errorf("component %d: predicted %v, truth %v", k, got[k], truth[k])
		}
	}
	// The GPU systems must be predicted faster than Quartz for this
	// GPU-friendly stencil code.
	if got[arch.Index("Lassen")] >= 1 || got[arch.Index("Corona")] >= 1 {
		t.Errorf("GPU systems should beat Quartz for SW4lite: %v", got)
	}
}

func TestPredictFeaturesMissingFeature(t *testing.T) {
	ds := testDataset(t)
	pred, _, err := TrainPredictor(ds, DefaultMean(), 3)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pred.PredictFeatures(map[string]float64{"branch_intensity": 0.1}); err == nil {
		t.Error("incomplete feature map should error")
	}
}

func TestPredictorPersistence(t *testing.T) {
	ds := testDataset(t)
	pred, _, err := TrainPredictor(ds, DefaultXGBoost(21), 23)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := pred.Save(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := LoadPredictor(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Model.Name() != "xgboost" {
		t.Fatalf("loaded model = %s", back.Model.Name())
	}

	a := apps.CoMD()
	m, _ := arch.ByName("Ruby")
	var p profiler.Profiler
	prof, err := p.Run(a, a.Inputs[0], m, perfmodel.OneCore, stats.NewRNG(29))
	if err != nil {
		t.Fatal(err)
	}
	v1, err := pred.PredictProfile(prof)
	if err != nil {
		t.Fatal(err)
	}
	v2, err := back.PredictProfile(prof)
	if err != nil {
		t.Fatal(err)
	}
	for k := range v1 {
		if v1[k] != v2[k] {
			t.Fatalf("persisted predictor diverges: %v vs %v", v1, v2)
		}
	}
}

func TestLoadPredictorErrors(t *testing.T) {
	if _, err := LoadPredictor(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage should error")
	}
	if _, err := LoadPredictor(bytes.NewReader([]byte(`{"features":[],"model":{}}`))); err == nil {
		t.Error("empty schema should error")
	}
}

func TestNormalizationReplay(t *testing.T) {
	// The predictor must apply the dataset's z-score parameters to raw
	// profile features: a raw feature equal to the fitted mean must map
	// to 0 in the model input.
	ds := testDataset(t)
	pred, _, err := TrainPredictor(ds, DefaultMean(), 31)
	if err != nil {
		t.Fatal(err)
	}
	feats := map[string]float64{}
	for _, name := range pred.Features {
		feats[name] = 0
	}
	col := dataset.ColL1LoadMisses
	feats[col] = pred.Norms[col].Mean
	x, err := pred.vectorFromFeatures(feats)
	if err != nil {
		t.Fatal(err)
	}
	for i, name := range pred.Features {
		if name == col && math.Abs(x[i]) > 1e-12 {
			t.Errorf("normalized mean value = %v, want 0", x[i])
		}
	}
}

func BenchmarkPredictProfile(b *testing.B) {
	ds, err := dataset.Build(dataset.Params{
		Apps:   []*apps.App{apps.CoMD(), apps.SW4lite()},
		Trials: 2, Seed: 3,
	})
	if err != nil {
		b.Fatal(err)
	}
	pred, _, err := TrainPredictor(ds, DefaultXGBoost(1), 3)
	if err != nil {
		b.Fatal(err)
	}
	a := apps.CoMD()
	m, _ := arch.ByName("Quartz")
	var p profiler.Profiler
	prof, err := p.Run(a, a.Inputs[0], m, perfmodel.OneCore, stats.NewRNG(1))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := pred.PredictProfile(prof); err != nil {
			b.Fatal(err)
		}
	}
}
