package core

import (
	"fmt"
	"sort"
	"strings"

	"crossarch/internal/arch"
	"crossarch/internal/dataset"
	"crossarch/internal/ml"
	"crossarch/internal/stats"
)

// ModelCard is a release-style report of a trained predictor: what it
// was trained on, how it scores, and what drives it — the artifact a
// team would publish next to the serialized model.
type ModelCard struct {
	ModelName    string
	DatasetRows  int
	Features     []string
	Targets      []string
	Applications []string
	Systems      []string
	Evaluation   ml.Evaluation
	// TopImportances pairs feature names with normalized importances,
	// descending; nil for models without importances.
	TopImportances []struct {
		Feature    string
		Importance float64
	}
	// PerSystemMAE evaluates the model separately on test rows from
	// each counter-source architecture (the Figure 3 view of this
	// specific trained model).
	PerSystemMAE map[string]float64
}

// BuildModelCard trains nothing: it evaluates an already-trained
// predictor against a dataset split and assembles the card.
func BuildModelCard(ds *dataset.Dataset, pred *Predictor, splitSeed uint64) (*ModelCard, error) {
	X, Y := ds.Features(), ds.Targets()
	_, _, teX, teY, err := ml.TrainTestSplit(X, Y, DefaultTestFraction, stats.NewRNG(splitSeed))
	if err != nil {
		return nil, err
	}
	card := &ModelCard{
		ModelName:    pred.Model.Name(),
		DatasetRows:  ds.NumRows(),
		Features:     append([]string(nil), pred.Features...),
		Targets:      dataset.TargetColumns(),
		Applications: ds.Frame.Unique(dataset.ColApp),
		Systems:      ds.Frame.Unique(dataset.ColSystem),
		Evaluation:   ml.Evaluate(pred.Model, teX, teY),
		PerSystemMAE: map[string]float64{},
	}

	if fi, ok := pred.Model.(ml.FeatureImporter); ok {
		imp := fi.FeatureImportances()
		for i, f := range pred.Features {
			if i < len(imp) {
				card.TopImportances = append(card.TopImportances, struct {
					Feature    string
					Importance float64
				}{f, imp[i]})
			}
		}
		sort.SliceStable(card.TopImportances, func(a, b int) bool {
			return card.TopImportances[a].Importance > card.TopImportances[b].Importance
		})
	}

	// Per-source-system evaluation over the whole dataset's rows of
	// that system (the model never trains here, so this is in-sample
	// for some rows; it is a descriptive slice, labelled as such).
	for _, sys := range arch.Names() {
		slice := ds.Frame.FilterEq(dataset.ColSystem, sys)
		if slice.NumRows() == 0 {
			continue
		}
		sub := &dataset.Dataset{Frame: slice, Norms: ds.Norms}
		preds := ml.PredictBatch(pred.Model, sub.Features())
		card.PerSystemMAE[sys] = ml.MAE(preds, sub.Targets())
	}
	return card, nil
}

// String renders the card as a markdown-ish text document.
func (c *ModelCard) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "# Model card: %s relative-performance predictor\n\n", c.ModelName)
	fmt.Fprintf(&b, "Trained on the MP-HPC dataset: %d rows, %d applications, %d systems.\n",
		c.DatasetRows, len(c.Applications), len(c.Systems))
	fmt.Fprintf(&b, "Inputs: %d features (%s, ...)\n", len(c.Features), strings.Join(c.Features[:min(4, len(c.Features))], ", "))
	fmt.Fprintf(&b, "Outputs: %s\n\n", strings.Join(c.Targets, ", "))
	fmt.Fprintf(&b, "Held-out evaluation: MAE=%.4f SOS=%.4f RMSE=%.4f R2=%.4f (n=%d)\n\n",
		c.Evaluation.MAE, c.Evaluation.SOS, c.Evaluation.RMSE, c.Evaluation.R2, c.Evaluation.N)
	if len(c.TopImportances) > 0 {
		fmt.Fprintf(&b, "Top features by gain importance:\n")
		for i, fi := range c.TopImportances {
			if i == 6 {
				break
			}
			fmt.Fprintf(&b, "  %-20s %.4f\n", fi.Feature, fi.Importance)
		}
		b.WriteByte('\n')
	}
	if len(c.PerSystemMAE) > 0 {
		fmt.Fprintf(&b, "Descriptive MAE by counter-source system (full dataset slice):\n")
		for _, sys := range arch.Names() {
			if v, ok := c.PerSystemMAE[sys]; ok {
				fmt.Fprintf(&b, "  %-8s %.4f\n", sys, v)
			}
		}
	}
	return b.String()
}
