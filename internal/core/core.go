// Package core is the public face of the crossarch library: it ties the
// substrates together into the paper's end-to-end pipeline — build (or
// load) the MP-HPC dataset, train the regression models of Figure 2,
// evaluate them with the paper's metrics, and export a Predictor that
// maps a profile from one architecture to a relative performance vector
// across all four, ready for the multi-resource scheduler.
package core

import (
	"fmt"
	"sort"

	"crossarch/internal/dataframe"
	"crossarch/internal/dataset"
	"crossarch/internal/ml"
	"crossarch/internal/ml/baseline"
	"crossarch/internal/ml/forest"
	"crossarch/internal/ml/linear"
	"crossarch/internal/ml/xgboost"
	"crossarch/internal/obs"
	"crossarch/internal/profiler"
	"crossarch/internal/rpv"
	"crossarch/internal/stats"
)

// DefaultTestFraction is the paper's 90/10 train/test split.
const DefaultTestFraction = 0.10

// DefaultCVFolds is the paper's 5-fold cross-validation.
const DefaultCVFolds = 5

// DefaultXGBoost returns the tuned headline model: gradient boosting
// with vector-leaf trees. The paper tunes its XGBoost while running the
// scikit-learn baselines at library defaults; these hyperparameters are
// the grid winner on the synthetic MP-HPC dataset.
func DefaultXGBoost(seed uint64) *xgboost.Model {
	return xgboost.New(xgboost.Params{
		Rounds:       300,
		MaxDepth:     12,
		LearningRate: 0.1,
		Subsample:    0.8,
		Seed:         seed,
	})
}

// DefaultForest returns the decision-forest baseline at its package
// defaults (100 trees, depth 12, features/3 per split), mirroring an
// untuned library baseline.
func DefaultForest(seed uint64) *forest.Forest {
	return forest.New(forest.Params{Seed: seed})
}

// DefaultLinear returns the ordinary-least-squares baseline.
func DefaultLinear() *linear.Ridge { return linear.New(0) }

// DefaultMean returns the mean-prediction floor.
func DefaultMean() *baseline.Mean { return baseline.New() }

// StandardModels returns the four Figure 2 models in the paper's
// presentation order: mean, linear, decision forest, xgboost.
func StandardModels(seed uint64) []ml.Regressor {
	return []ml.Regressor{
		DefaultMean(),
		DefaultLinear(),
		DefaultForest(seed),
		DefaultXGBoost(seed),
	}
}

// StandardFactories returns fresh-model factories for the four models,
// used by cross-validation and the ablation experiments.
func StandardFactories(seed uint64) map[string]ml.Factory {
	return map[string]ml.Factory{
		"mean":            func() ml.Regressor { return DefaultMean() },
		"linear":          func() ml.Regressor { return DefaultLinear() },
		"decision forest": func() ml.Regressor { return DefaultForest(seed) },
		"xgboost":         func() ml.Regressor { return DefaultXGBoost(seed) },
	}
}

// ModelOrder is the canonical presentation order for experiment tables.
var ModelOrder = []string{"mean", "linear", "decision forest", "xgboost"}

// TrainEval fits a model on a shuffled train split of the dataset and
// returns the model's evaluation on the held-out fraction.
func TrainEval(ds *dataset.Dataset, model ml.Regressor, testFrac float64, splitSeed uint64) (ml.Evaluation, error) {
	X, Y := ds.Features(), ds.Targets()
	trX, trY, teX, teY, err := ml.TrainTestSplit(X, Y, testFrac, stats.NewRNG(splitSeed))
	if err != nil {
		return ml.Evaluation{}, err
	}
	if err := model.Fit(trX, trY); err != nil {
		return ml.Evaluation{}, err
	}
	return ml.Evaluate(model, teX, teY), nil
}

// CompareModels runs TrainEval for every factory and returns the
// evaluations keyed by model name.
func CompareModels(ds *dataset.Dataset, factories map[string]ml.Factory, testFrac float64, splitSeed uint64) (map[string]ml.Evaluation, error) {
	out := make(map[string]ml.Evaluation, len(factories))
	names := make([]string, 0, len(factories))
	for name := range factories {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		ev, err := TrainEval(ds, factories[name](), testFrac, splitSeed)
		if err != nil {
			return nil, fmt.Errorf("core: training %s: %w", name, err)
		}
		out[name] = ev
	}
	return out, nil
}

// Predictor is the deployable artifact: a trained model plus the
// feature schema and normalization statistics needed to turn a raw
// profile into a model input. It is what the model-based scheduler
// strategy and the prediction examples consume.
type Predictor struct {
	// Model is the trained regressor.
	Model ml.Regressor
	// Features is the input column order the model was trained with.
	Features []string
	// Norms replays the dataset's z-score normalization on new rows.
	Norms map[string]dataframe.Stats
}

// TrainPredictor trains a predictor on the full dataset pipeline: 90/10
// split, fit, evaluate, then wrap with the dataset's normalization so
// new profiles are transformed identically.
func TrainPredictor(ds *dataset.Dataset, model ml.Regressor, splitSeed uint64) (*Predictor, ml.Evaluation, error) {
	ev, err := TrainEval(ds, model, DefaultTestFraction, splitSeed)
	if err != nil {
		return nil, ml.Evaluation{}, err
	}
	return &Predictor{
		Model:    model,
		Features: dataset.FeatureColumns(),
		Norms:    ds.Norms,
	}, ev, nil
}

// vectorFromFeatures assembles the model input in schema order,
// applying the stored normalization.
func (p *Predictor) vectorFromFeatures(features map[string]float64) ([]float64, error) {
	x := make([]float64, len(p.Features))
	for i, name := range p.Features {
		v, ok := features[name]
		if !ok {
			return nil, fmt.Errorf("core: feature %q missing from input", name)
		}
		if s, norm := p.Norms[name]; norm {
			std := s.Std
			if std == 0 {
				std = 1
			}
			v = (v - s.Mean) / std
		}
		x[i] = v
	}
	return x, nil
}

// PredictFeatures predicts the relative performance vector from an
// already-derived feature map (dataset.FeaturesFromProfile output).
func (p *Predictor) PredictFeatures(features map[string]float64) (rpv.RPV, error) {
	start := obs.Now()
	x, err := p.vectorFromFeatures(features)
	if err != nil {
		return nil, err
	}
	// A non-finite feature (bad profile arithmetic upstream) must fail
	// here as a typed error, not propagate NaN into the RPV.
	if err := ml.ValidateRow(x, len(p.Features)); err != nil {
		return nil, err
	}
	out := rpv.RPV(p.Model.Predict(x))
	obs.Inc("core.predictions.total")
	obs.Observe("core.prediction.seconds", obs.SinceSeconds(start))
	return out, nil
}

// PredictProfile predicts the relative performance vector for a raw
// profile from any of the four systems: the runtimes on every
// architecture relative to the architecture the profile was recorded
// on.
func (p *Predictor) PredictProfile(prof *profiler.Profile) (rpv.RPV, error) {
	features, err := dataset.FeaturesFromProfile(prof)
	if err != nil {
		return nil, err
	}
	return p.PredictFeatures(features)
}
