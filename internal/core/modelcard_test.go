package core

import (
	"strings"
	"testing"
)

func TestModelCard(t *testing.T) {
	ds := testDataset(t)
	pred, _, err := TrainPredictor(ds, DefaultXGBoost(7), 13)
	if err != nil {
		t.Fatal(err)
	}
	card, err := BuildModelCard(ds, pred, 13)
	if err != nil {
		t.Fatal(err)
	}
	if card.ModelName != "xgboost" {
		t.Errorf("model name = %s", card.ModelName)
	}
	if card.DatasetRows != ds.NumRows() {
		t.Errorf("rows = %d", card.DatasetRows)
	}
	if len(card.Features) != 21 || len(card.Targets) != 4 {
		t.Errorf("schema: %d features, %d targets", len(card.Features), len(card.Targets))
	}
	if len(card.TopImportances) != 21 {
		t.Fatalf("importances = %d", len(card.TopImportances))
	}
	for i := 1; i < len(card.TopImportances); i++ {
		if card.TopImportances[i-1].Importance < card.TopImportances[i].Importance {
			t.Fatal("importances not sorted")
		}
	}
	if len(card.PerSystemMAE) != 4 {
		t.Errorf("per-system MAE entries = %d", len(card.PerSystemMAE))
	}
	out := card.String()
	for _, want := range []string{"Model card", "MAE=", "Top features", "Quartz"} {
		if !strings.Contains(out, want) {
			t.Errorf("card missing %q", want)
		}
	}
}

func TestModelCardMeanModelHasNoImportances(t *testing.T) {
	ds := testDataset(t)
	pred, _, err := TrainPredictor(ds, DefaultMean(), 13)
	if err != nil {
		t.Fatal(err)
	}
	card, err := BuildModelCard(ds, pred, 13)
	if err != nil {
		t.Fatal(err)
	}
	if len(card.TopImportances) != 0 {
		t.Error("mean model should have no importances")
	}
	if !strings.Contains(card.String(), "mean") {
		t.Error("card missing model name")
	}
}
