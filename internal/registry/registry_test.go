package registry_test

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"crossarch/internal/ml"
	"crossarch/internal/registry"
)

// regModel is a minimal registered learner whose serialized payload is
// fully determined by Bias — handy for producing distinct, verifiable
// envelopes without training anything.
type regModel struct {
	Bias float64 `json:"bias"`
	Out  int     `json:"out"`
}

func (m *regModel) Fit(X, Y [][]float64) error { return nil }
func (m *regModel) Name() string               { return "registry-test" }
func (m *regModel) Predict(x []float64) []float64 {
	out := make([]float64, m.Out)
	for i := range out {
		out[i] = m.Bias + float64(i)
	}
	return out
}

var registerOnce sync.Once

func newModel(bias float64) *regModel {
	registerOnce.Do(func() {
		ml.RegisterModel("registry-test", func() ml.Regressor { return &regModel{} })
	})
	return &regModel{Bias: bias, Out: 2}
}

func mustOpen(t *testing.T, dir string) (*registry.Registry, *registry.RecoveryReport) {
	t.Helper()
	r, rep, err := registry.Open(dir, registry.Options{})
	if err != nil {
		t.Fatalf("Open(%s): %v", dir, err)
	}
	return r, rep
}

func TestAddPromoteLifecycle(t *testing.T) {
	dir := t.TempDir()
	r, rep := mustOpen(t, dir)
	if !rep.Clean() {
		t.Fatalf("fresh dir recovery not clean: %+v", rep.Actions)
	}

	v1, err := r.Add(newModel(1), registry.Meta{Note: "first", Metrics: map[string]float64{"mae": 0.5}})
	if err != nil {
		t.Fatalf("Add: %v", err)
	}
	if v1.ID != "v0001" || v1.Status != registry.StatusCandidate {
		t.Fatalf("v1 = %+v", v1)
	}
	if len(v1.Checksum) != 16 {
		t.Fatalf("checksum %q not content-address shaped", v1.Checksum)
	}
	if _, ok := r.Active(); ok {
		t.Fatal("active before any promotion")
	}

	if _, err := r.Promote(v1.ID, map[string]float64{"shadow_mae": 0.4}); err != nil {
		t.Fatalf("Promote v1: %v", err)
	}
	act, ok := r.Active()
	if !ok || act.ID != v1.ID || act.Status != registry.StatusActive {
		t.Fatalf("active after promote = %+v ok=%v", act, ok)
	}
	if act.Metrics["shadow_mae"] != 0.4 || act.Metrics["mae"] != 0.5 {
		t.Fatalf("promotion metrics not merged: %+v", act.Metrics)
	}

	// Second version: lineage parent defaults to the current active.
	v2, err := r.Add(newModel(2), registry.Meta{})
	if err != nil {
		t.Fatalf("Add v2: %v", err)
	}
	if v2.Parent != v1.ID {
		t.Fatalf("v2.Parent = %q, want %q", v2.Parent, v1.ID)
	}
	if _, err := r.Promote(v2.ID, nil); err != nil {
		t.Fatalf("Promote v2: %v", err)
	}
	lkg, ok := r.LastKnownGood()
	if !ok || lkg.ID != v1.ID || lkg.Status != registry.StatusRetired {
		t.Fatalf("last-known-good after v2 promote = %+v ok=%v", lkg, ok)
	}

	// Rollback returns to v1 and marks v2 rolled back.
	back, err := r.Rollback("error rate regressed")
	if err != nil {
		t.Fatalf("Rollback: %v", err)
	}
	if back.ID != v1.ID {
		t.Fatalf("rollback landed on %s, want %s", back.ID, v1.ID)
	}
	got2, _ := r.Get(v2.ID)
	if got2.Status != registry.StatusRolledBack || !strings.Contains(got2.Note, "error rate regressed") {
		t.Fatalf("v2 after rollback = %+v", got2)
	}

	// The full lifecycle must survive a reopen bit-for-bit.
	r2, rep2 := mustOpen(t, dir)
	if !rep2.Clean() {
		t.Fatalf("reopen after healthy lifecycle not clean: %+v", rep2.Actions)
	}
	act2, ok := r2.Active()
	if !ok || act2.ID != v1.ID {
		t.Fatalf("active after reopen = %+v ok=%v", act2, ok)
	}
	if got := len(r2.List()); got != 2 {
		t.Fatalf("reopened entry count = %d, want 2", got)
	}
}

func TestLoadVersionRoundTrips(t *testing.T) {
	r, _ := mustOpen(t, t.TempDir())
	v, err := r.Add(newModel(7.5), registry.Meta{})
	if err != nil {
		t.Fatal(err)
	}
	m, info, err := r.LoadVersion(v.ID)
	if err != nil {
		t.Fatalf("LoadVersion: %v", err)
	}
	if info.Checksum != v.Checksum {
		t.Fatalf("loaded checksum %s, manifest says %s", info.Checksum, v.Checksum)
	}
	if got := m.Predict(nil)[0]; got != 7.5 {
		t.Fatalf("round-tripped Bias predicts %v, want 7.5", got)
	}
}

func TestRejectAndGates(t *testing.T) {
	r, _ := mustOpen(t, t.TempDir())
	v1, _ := r.Add(newModel(1), registry.Meta{})
	if _, err := r.Reject(v1.ID, "shadow window worse than incumbent"); err != nil {
		t.Fatalf("Reject: %v", err)
	}
	if _, err := r.Promote(v1.ID, nil); !errors.Is(err, registry.ErrGate) {
		t.Fatalf("promoting a rejected version: err = %v, want ErrGate", err)
	}
	if _, err := r.Rollback("nothing to roll back to"); !errors.Is(err, registry.ErrGate) {
		t.Fatalf("rollback with no last-known-good: err = %v, want ErrGate", err)
	}
	if _, err := r.Get("v9999"); !errors.Is(err, registry.ErrNotFound) {
		t.Fatalf("Get missing: err = %v, want ErrNotFound", err)
	}
	if _, err := r.Add(newModel(2), registry.Meta{Parent: "v9999"}); !errors.Is(err, registry.ErrNotFound) {
		t.Fatalf("Add with missing parent: err = %v, want ErrNotFound", err)
	}
}

func TestAddRefusesBadEnvelopes(t *testing.T) {
	r, _ := mustOpen(t, t.TempDir())
	dir := t.TempDir()

	garbage := filepath.Join(dir, "garbage.json")
	if err := os.WriteFile(garbage, []byte("not an envelope"), 0o666); err != nil {
		t.Fatal(err)
	}
	if _, err := r.AddFile(garbage, registry.Meta{}); !errors.Is(err, ml.ErrBadInput) {
		t.Fatalf("AddFile(garbage): err = %v, want ErrBadInput", err)
	}

	legacy := filepath.Join(dir, "legacy.json")
	if err := os.WriteFile(legacy, []byte(`{"name":"registry-test","payload":{"bias":1,"out":1}}`), 0o666); err != nil {
		t.Fatal(err)
	}
	prev := ml.LegacyWarn
	ml.LegacyWarn = nil
	t.Cleanup(func() { ml.LegacyWarn = prev })
	if _, err := r.AddFile(legacy, registry.Meta{}); !errors.Is(err, ml.ErrBadInput) {
		t.Fatalf("AddFile(legacy, checksum-less): err = %v, want ErrBadInput", err)
	}
	if got := len(r.List()); got != 0 {
		t.Fatalf("refused envelopes left %d entries", got)
	}
}

func TestContentAddressing(t *testing.T) {
	r, _ := mustOpen(t, t.TempDir())
	v1, err := r.Add(newModel(3), registry.Meta{})
	if err != nil {
		t.Fatal(err)
	}
	// Same weights → same checksum → same blob; a second Add is a new
	// lineage entry sharing the content address.
	v2, err := r.Add(newModel(3), registry.Meta{Note: "re-added"})
	if err != nil {
		t.Fatal(err)
	}
	if v1.Checksum != v2.Checksum {
		t.Fatalf("identical payloads got different addresses %s / %s", v1.Checksum, v2.Checksum)
	}
	if v1.ID == v2.ID {
		t.Fatal("distinct commits share a version ID")
	}
	p1, _ := r.BlobPath(v1.ID)
	p2, _ := r.BlobPath(v2.ID)
	if p1 != p2 {
		t.Fatalf("same content maps to two blobs: %s / %s", p1, p2)
	}
}

func TestVerifyReportsCorruption(t *testing.T) {
	r, _ := mustOpen(t, t.TempDir())
	v, _ := r.Add(newModel(4), registry.Meta{})
	if problems := r.Verify(); len(problems) != 0 {
		t.Fatalf("healthy registry Verify = %+v", problems)
	}
	path, _ := r.BlobPath(v.ID)
	data, _ := os.ReadFile(path)
	data[len(data)/2] ^= 0x20
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}
	problems := r.Verify()
	if len(problems) != 1 || problems[0].Subject != v.ID {
		t.Fatalf("Verify after bit flip = %+v", problems)
	}
}

func TestConcurrentAddsAreSerializable(t *testing.T) {
	r, _ := mustOpen(t, t.TempDir())
	const n = 8
	var wg sync.WaitGroup
	errs := make([]error, n)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			_, errs[i] = r.Add(newModel(float64(i)), registry.Meta{Note: fmt.Sprintf("worker %d", i)})
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("concurrent Add %d: %v", i, err)
		}
	}
	seen := map[string]bool{}
	for _, v := range r.List() {
		if seen[v.ID] {
			t.Fatalf("duplicate version ID %s", v.ID)
		}
		seen[v.ID] = true
	}
	if len(seen) != n {
		t.Fatalf("committed %d versions, want %d", len(seen), n)
	}
}
