package registry_test

import (
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"crossarch/internal/fault"
	"crossarch/internal/registry"
)

// tearAll returns an injector that tears every registry write: the
// deterministic stand-in for "the machine lost power mid-write".
func tearAll(t *testing.T, seed uint64) *fault.Injector {
	t.Helper()
	inj, err := fault.NewInjector(seed, fault.Plan{ModelCorrupt: 1})
	if err != nil {
		t.Fatal(err)
	}
	return inj
}

// findSeed scans injector seeds for one whose keyed draws match the
// wanted fire pattern over the first writes — how a test selects "the
// blob write lands, the manifest write tears" without any
// order-dependent mutation of the injector. Deterministic: the same
// pattern always resolves to the same seed.
func findSeed(t *testing.T, rate float64, want []bool) *fault.Injector {
	t.Helper()
	for seed := uint64(0); seed < 10_000; seed++ {
		inj, err := fault.NewInjector(seed, fault.Plan{ModelCorrupt: rate})
		if err != nil {
			t.Fatal(err)
		}
		ok := true
		for k, w := range want {
			if inj.Hit(fault.ModelCorrupt, uint64(k)) != w {
				ok = false
				break
			}
		}
		if ok {
			return inj
		}
	}
	t.Fatalf("no seed under 10000 matches fire pattern %v at rate %v", want, rate)
	return nil
}

// openWith opens the registry with a fault injector armed.
func openWith(t *testing.T, dir string, inj *fault.Injector) *registry.Registry {
	t.Helper()
	r, _, err := registry.Open(dir, registry.Options{Injector: inj})
	if err != nil {
		t.Fatalf("Open with injector: %v", err)
	}
	return r
}

// TestCrashTornBlobWrite tears the very first write of an Add (the
// blob). The manifest must never gain the entry, and recovery must
// quarantine the truncated blob so the store holds only verified
// envelopes.
func TestCrashTornBlobWrite(t *testing.T) {
	dir := t.TempDir()
	r := openWith(t, dir, tearAll(t, 11))
	_, err := r.Add(newModel(1), registry.Meta{})
	if !errors.Is(err, registry.ErrTornWrite) {
		t.Fatalf("Add under torn blob write: err = %v, want ErrTornWrite", err)
	}
	if got := len(r.List()); got != 0 {
		t.Fatalf("torn Add left %d in-memory entries", got)
	}

	r2, rep := mustOpen(t, dir)
	if got := len(r2.List()); got != 0 {
		t.Fatalf("torn Add left %d on-disk entries", got)
	}
	if !hasAction(rep, "blob-quarantined") {
		t.Fatalf("recovery did not quarantine the torn blob: %+v", rep.Actions)
	}
	assertQuarantineNonEmpty(t, dir)
	// And the repaired directory opens clean from here on.
	_, rep2 := mustOpen(t, dir)
	if !rep2.Clean() {
		t.Fatalf("second reopen not clean: %+v", rep2.Actions)
	}
}

// TestCrashTornManifestWrite lets the blob write land, then tears the
// manifest commit — the crash window unique to two-file commits. The
// entry must not exist after recovery (the manifest is truth), the
// intact blob survives as a reported orphan, and the previous manifest
// state is fully preserved.
func TestCrashTornManifestWrite(t *testing.T) {
	dir := t.TempDir()
	// Committed baseline version, no faults.
	r0, _ := mustOpen(t, dir)
	v1, err := r0.Add(newModel(1), registry.Meta{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r0.Promote(v1.ID, nil); err != nil {
		t.Fatal(err)
	}

	// Next Add's writes: key0 = blob, key1 = manifest.prev backup,
	// key2 = manifest. Tear the final manifest write only.
	inj := findSeed(t, 0.5, []bool{false, false, true})
	r := openWith(t, dir, inj)
	if _, err := r.Add(newModel(2), registry.Meta{}); !errors.Is(err, registry.ErrTornWrite) {
		t.Fatalf("Add under torn manifest write: err = %v, want ErrTornWrite", err)
	}

	r2, rep := mustOpen(t, dir)
	if got := len(r2.List()); got != 1 {
		t.Fatalf("entries after torn manifest commit = %d, want 1", got)
	}
	act, ok := r2.Active()
	if !ok || act.ID != v1.ID {
		t.Fatalf("active after recovery = %+v ok=%v, want %s", act, ok, v1.ID)
	}
	// The torn manifest.json was quarantined and the A/B previous copy
	// restored; the well-formed orphan blob is reported, not deleted.
	if !hasAction(rep, "manifest-fallback") {
		t.Fatalf("recovery did not fall back to manifest.prev: %+v", rep.Actions)
	}
	if len(rep.Orphans) != 1 {
		t.Fatalf("recovery did not report the stranded blob: %+v", rep.Orphans)
	}
}

// TestCrashTornPromote tears the manifest write inside Promote. The
// promotion must not take effect: after recovery the old active still
// serves.
func TestCrashTornPromote(t *testing.T) {
	dir := t.TempDir()
	r0, _ := mustOpen(t, dir)
	v1, _ := r0.Add(newModel(1), registry.Meta{})
	if _, err := r0.Promote(v1.ID, nil); err != nil {
		t.Fatal(err)
	}
	v2, err := r0.Add(newModel(2), registry.Meta{})
	if err != nil {
		t.Fatal(err)
	}

	// Promote writes: key0 = manifest.prev backup, key1 = manifest.
	inj := findSeed(t, 0.5, []bool{false, true})
	r := openWith(t, dir, inj)
	if _, err := r.Promote(v2.ID, nil); !errors.Is(err, registry.ErrTornWrite) {
		t.Fatalf("Promote under torn manifest write: err = %v, want ErrTornWrite", err)
	}
	// In-memory state rolled back: v2 still a candidate.
	got, _ := r.Get(v2.ID)
	if got.Status != registry.StatusCandidate {
		t.Fatalf("v2 status after failed promote = %s, want candidate", got.Status)
	}

	r2, rep := mustOpen(t, dir)
	act, ok := r2.Active()
	if !ok || act.ID != v1.ID {
		t.Fatalf("active after torn promote = %+v ok=%v, want %s", act, ok, v1.ID)
	}
	got2, _ := r2.Get(v2.ID)
	if got2.Status != registry.StatusCandidate {
		t.Fatalf("recovered v2 status = %s, want candidate", got2.Status)
	}
	if !hasAction(rep, "manifest-fallback") && !rep.Clean() {
		t.Fatalf("unexpected recovery actions: %+v", rep.Actions)
	}
}

// TestCrashActiveBlobCorrupt corrupts the active version's blob on
// disk (a poisoned artifact, not a torn write). Recovery must
// quarantine the entry and fall back to the last-known-good version.
func TestCrashActiveBlobCorrupt(t *testing.T) {
	dir := t.TempDir()
	r0, _ := mustOpen(t, dir)
	v1, _ := r0.Add(newModel(1), registry.Meta{})
	if _, err := r0.Promote(v1.ID, nil); err != nil {
		t.Fatal(err)
	}
	v2, _ := r0.Add(newModel(2), registry.Meta{})
	if _, err := r0.Promote(v2.ID, nil); err != nil {
		t.Fatal(err)
	}

	// Poison v2's blob: flip a byte inside the payload.
	path, _ := r0.BlobPath(v2.ID)
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-10] ^= 0x08
	if err := os.WriteFile(path, data, 0o666); err != nil {
		t.Fatal(err)
	}

	r2, rep := mustOpen(t, dir)
	q, _ := r2.Get(v2.ID)
	if q.Status != registry.StatusQuarantined || q.Quarantine == "" {
		t.Fatalf("poisoned active entry = %+v, want quarantined with a recorded cause", q)
	}
	act, ok := r2.Active()
	if !ok || act.ID != v1.ID {
		t.Fatalf("active after quarantine = %+v ok=%v, want fallback to %s", act, ok, v1.ID)
	}
	if !hasAction(rep, "active-fallback") || !hasAction(rep, "entry-quarantined") {
		t.Fatalf("recovery actions = %+v", rep.Actions)
	}
	assertQuarantineNonEmpty(t, dir)
	// The fallback must still load end to end.
	m, _, err := r2.LoadVersion(v1.ID)
	if err != nil {
		t.Fatalf("loading fallback: %v", err)
	}
	if m.Predict(nil)[0] != 1 {
		t.Fatal("fallback model predicts wrong weights")
	}
}

// TestCrashBothManifestsTorn destroys both manifest copies; recovery
// must rebuild the index from the blob store (lineage lost, content
// kept) rather than refuse to open.
func TestCrashBothManifestsTorn(t *testing.T) {
	dir := t.TempDir()
	r0, _ := mustOpen(t, dir)
	v1, _ := r0.Add(newModel(1), registry.Meta{})
	if _, err := r0.Promote(v1.ID, nil); err != nil {
		t.Fatal(err)
	}
	if _, err := r0.Add(newModel(2), registry.Meta{}); err != nil {
		t.Fatal(err)
	}
	for _, name := range []string{"manifest.json", "manifest.prev.json"} {
		path := filepath.Join(dir, name)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, data[:len(data)/3], 0o666); err != nil {
			t.Fatal(err)
		}
	}

	r2, rep := mustOpen(t, dir)
	if !hasAction(rep, "manifest-rebuilt") {
		t.Fatalf("recovery did not rebuild from blobs: %+v", rep.Actions)
	}
	list := r2.List()
	if len(list) != 2 {
		t.Fatalf("rebuilt %d entries from blobs, want 2", len(list))
	}
	for _, v := range list {
		if v.Status != registry.StatusCandidate {
			t.Fatalf("rebuilt entry %s has status %s, want candidate (lineage lost)", v.ID, v.Status)
		}
		if _, _, err := r2.LoadVersion(v.ID); err != nil {
			t.Fatalf("rebuilt entry %s does not load: %v", v.ID, err)
		}
	}
	if _, rep2 := mustOpen(t, dir); !rep2.Clean() {
		t.Fatalf("reopen after rebuild not clean: %+v", rep2.Actions)
	}
}

// TestCrashSweep hammers the whole lifecycle under every tear point:
// for each seed, run add→promote→add→promote→rollback with a
// half-rate injector, then reopen fault-free and require a usable,
// internally consistent registry regardless of where the simulated
// crashes landed. This is the registry equivalent of the scheduler's
// fault sweeps: no specific scenario, just "no on-disk state recovery
// cannot live with".
func TestCrashSweep(t *testing.T) {
	for seed := uint64(1); seed <= 25; seed++ {
		dir := t.TempDir()
		inj, err := fault.NewInjector(seed, fault.Plan{ModelCorrupt: 0.5})
		if err != nil {
			t.Fatal(err)
		}
		r := openWith(t, dir, inj)
		// Each step may fail with a torn write; keep going — a real
		// operator retries after a crash too.
		v1, err1 := r.Add(newModel(1), registry.Meta{})
		if err1 == nil {
			_, _ = r.Promote(v1.ID, nil)
		}
		v2, err2 := r.Add(newModel(2), registry.Meta{})
		if err2 == nil {
			_, _ = r.Promote(v2.ID, nil)
		}
		_, _ = r.Rollback("sweep")

		r2, _, err := registry.Open(dir, registry.Options{})
		if err != nil {
			t.Fatalf("seed %d: recovery open failed: %v", seed, err)
		}
		// Whatever survived must be loadable and self-consistent.
		for _, v := range r2.List() {
			if v.Status == registry.StatusQuarantined {
				continue
			}
			if _, _, err := r2.LoadVersion(v.ID); err != nil {
				t.Fatalf("seed %d: surviving version %s does not load: %v", seed, v.ID, err)
			}
		}
		if act, ok := r2.Active(); ok {
			if _, _, err := r2.LoadVersion(act.ID); err != nil {
				t.Fatalf("seed %d: active %s does not load: %v", seed, act.ID, err)
			}
		}
		if problems := r2.Verify(); len(problems) != 0 {
			t.Fatalf("seed %d: Verify after recovery = %+v", seed, problems)
		}
		// A second fault-free reopen must be a no-op.
		if _, rep := mustOpen(t, dir); !rep.Clean() {
			t.Fatalf("seed %d: reopen after recovery not clean: %+v", seed, rep.Actions)
		}
	}
}

func hasAction(rep *registry.RecoveryReport, kind string) bool {
	for _, a := range rep.Actions {
		if a.Kind == kind {
			return true
		}
	}
	return false
}

func assertQuarantineNonEmpty(t *testing.T, dir string) {
	t.Helper()
	entries, err := os.ReadDir(filepath.Join(dir, "quarantine"))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) == 0 {
		t.Fatal("quarantine directory empty after corruption recovery")
	}
	for _, e := range entries {
		if strings.Contains(e.Name(), ".tmp-") {
			t.Fatalf("quarantine holds a temp dropping %s", e.Name())
		}
	}
}
