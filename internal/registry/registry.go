// Package registry is the crash-safe, versioned model registry behind
// the serving stack's release path (DESIGN.md §14). A bad, corrupt, or
// drifted model envelope must never be one SIGHUP away from
// production, so every model that can reach a replica first passes
// through here: envelopes are stored as content-addressed blobs keyed
// by the same FNV-1a payload checksum the ml load path verifies, a
// versioned manifest records lineage (parent version, metrics, status)
// for every entry, and the active/last-known-good pointers give the
// rollout driver something safe to fall back to.
//
// Crash safety is structural, not best-effort. Every write — blob and
// manifest alike — goes through ml.WriteFileAtomic (temp file, fsync,
// rename, directory sync), the manifest carries its own checksum and
// keeps an A/B pair (manifest.json plus the previous good copy at
// manifest.prev.json), and blob commits are ordered blob-first so a
// crash between the two writes strands an orphan blob, never a
// manifest entry pointing at nothing. Open runs a recovery pass that
// re-verifies everything: a torn manifest falls back to the previous
// copy (or is rebuilt from the blob store), entries whose blobs are
// missing or checksum-mismatched are quarantined — the artifact moved
// aside into quarantine/, the entry marked, never silently dropped —
// and an active version that turns out corrupt falls back to the
// last-known-good lineage ancestor that still verifies.
//
// Torn writes cannot be produced by the package's own write path (that
// is the point), so crash coverage is fault-injected: an Options
// injector with the fault.ModelCorrupt class tears writes at every
// commit site deterministically, simulating the post-crash on-disk
// state the recovery pass must survive.
package registry

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"

	"crossarch/internal/fault"
	"crossarch/internal/ml"
	"crossarch/internal/obs"
)

// SchemaVersion is the manifest schema; Open refuses other versions
// rather than guessing at field semantics.
const SchemaVersion = 1

// Version statuses, the registry's rollout state machine. Transitions:
//
//	candidate → active     (Promote: passed the shadow gate)
//	candidate → rejected   (Reject: failed the shadow gate)
//	active    → retired    (superseded by a promoted candidate)
//	active    → rolledback (Rollback: regressed live metrics)
//	any       → quarantined (recovery: blob torn, corrupt, or missing)
const (
	StatusCandidate   = "candidate"
	StatusActive      = "active"
	StatusRetired     = "retired"
	StatusRejected    = "rejected"
	StatusRolledBack  = "rolledback"
	StatusQuarantined = "quarantined"
)

// ErrTornWrite is the typed cause of every fault-injected torn write:
// the simulated crash left a truncated artifact on disk and the
// in-process operation failed. Crash tests errors.Is on it, then
// reopen the directory to drive the recovery pass.
var ErrTornWrite = errors.New("registry: simulated crash tore the write")

// ErrNotFound marks lookups of version IDs the manifest does not hold.
var ErrNotFound = errors.New("registry: no such version")

// ErrGate marks Promote/Rollback refusals: the state machine forbids
// the transition (promoting a quarantined version, rolling back with
// no last-known-good).
var ErrGate = errors.New("registry: transition refused")

// Version is one manifest entry: a model envelope's identity, lineage,
// and rollout state.
type Version struct {
	// ID is the registry-assigned version identifier ("v0001", ...),
	// monotone in commit order.
	ID string `json:"id"`
	// Checksum is the FNV-1a 64 payload digest — the content address
	// of the blob under blobs/.
	Checksum string `json:"checksum"`
	// Model is the learner name from the envelope (e.g. "xgboost").
	Model string `json:"model"`
	// Parent is the lineage parent's version ID ("" for a root).
	Parent string `json:"parent,omitempty"`
	// Status is the rollout state (see the Status constants).
	Status string `json:"status"`
	// Note is a free-form operator annotation.
	Note string `json:"note,omitempty"`
	// Metrics carries evaluation metadata (MAE, shadow-window error)
	// recorded at commit or promotion time.
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// PayloadBytes is the envelope payload size.
	PayloadBytes int `json:"payload_bytes"`
	// CreatedUnixMs is the commit wall time (telemetry clock).
	CreatedUnixMs int64 `json:"created_unix_ms"`
	// Quarantine records why recovery quarantined the entry ("" while
	// healthy).
	Quarantine string `json:"quarantine,omitempty"`
}

// manifest is the on-disk registry index. Checksum covers the
// canonical JSON of everything after it (see manifestBody), so a torn
// or bit-flipped manifest is detected before any field is trusted.
type manifest struct {
	SchemaVersion int    `json:"schema_version"`
	Checksum      string `json:"checksum"`
	manifestBody
}

// manifestBody is the checksummed portion of the manifest.
type manifestBody struct {
	// Seq is the number of versions ever committed; IDs derive from it.
	Seq int `json:"seq"`
	// Active is the version currently released to serving ("" = none).
	Active string `json:"active,omitempty"`
	// LastKnownGood is the rollback target: the most recent version
	// that served healthily before the current active ("" = none).
	LastKnownGood string `json:"last_known_good,omitempty"`
	// Entries holds every version in commit order.
	Entries []Version `json:"entries"`
}

// Meta is the caller-supplied metadata for a commit.
type Meta struct {
	// Parent is the lineage parent version ID; empty means "the
	// current active version" (or a root when none is active).
	Parent string
	// Note is a free-form annotation.
	Note string
	// Metrics carries evaluation numbers to record with the entry.
	Metrics map[string]float64
}

// Options tunes Open.
type Options struct {
	// Injector, when non-nil, tears writes deterministically via the
	// fault.ModelCorrupt class — the crash-simulation hook. Draws are
	// keyed on a per-registry write-operation counter, so "tear the
	// third write" is an expressible, reproducible scenario.
	Injector *fault.Injector
}

// RecoveryAction is one thing the Open recovery pass did.
type RecoveryAction struct {
	// Kind classifies the action: "manifest-fallback",
	// "manifest-rebuilt", "blob-quarantined", "entry-quarantined",
	// "active-fallback", "orphan-blob", "tmp-removed".
	Kind string `json:"kind"`
	// Subject names what was acted on (version ID, file name).
	Subject string `json:"subject"`
	// Detail is the human-readable cause.
	Detail string `json:"detail"`
}

// RecoveryReport is what Open found and repaired.
type RecoveryReport struct {
	Actions []RecoveryAction `json:"actions,omitempty"`
	// Orphans lists intact blobs no manifest entry references — kept,
	// not repaired, so they are informational and do not make the open
	// unclean (an orphan persists across reopens by design).
	Orphans []string `json:"orphans,omitempty"`
}

// Clean reports whether recovery had nothing to repair — the
// healthy-path invariant the crash tests assert after every
// fault-free reopen. Standing orphan blobs do not count.
func (r *RecoveryReport) Clean() bool { return len(r.Actions) == 0 }

func (r *RecoveryReport) add(kind, subject, detail string) {
	r.Actions = append(r.Actions, RecoveryAction{Kind: kind, Subject: subject, Detail: detail})
}

// Registry is the filesystem-backed store. All methods are safe for
// concurrent use; mutations serialize on an internal mutex and each
// one commits the manifest atomically before returning.
type Registry struct {
	dir string
	inj *fault.Injector

	mu   sync.Mutex
	man  manifest
	wseq uint64 // write-operation counter, the fault-draw key
}

const (
	manifestName = "manifest.json"
	manifestPrev = "manifest.prev.json"
	blobsDir     = "blobs"
	quarDir      = "quarantine"
)

// Open loads (or initializes) a registry rooted at dir, running the
// recovery pass: manifest verification with A/B fallback, blob
// re-verification with quarantine, and active-pointer repair. The
// returned report lists every recovery action; a healthy directory
// yields a clean report.
func Open(dir string, opts Options) (*Registry, *RecoveryReport, error) {
	for _, sub := range []string{"", blobsDir, quarDir} {
		if err := os.MkdirAll(filepath.Join(dir, sub), 0o777); err != nil {
			return nil, nil, fmt.Errorf("registry: init %s: %w", dir, err)
		}
	}
	r := &Registry{dir: dir, inj: opts.Injector}
	rep := &RecoveryReport{}
	if err := r.recover(rep); err != nil {
		return nil, nil, err
	}
	obs.Inc("registry.open.total")
	if !rep.Clean() {
		obs.Add("registry.recovery.actions.total", float64(len(rep.Actions)))
	}
	return r, rep, nil
}

// Dir returns the registry root.
func (r *Registry) Dir() string { return r.dir }

// bodyChecksum is the manifest self-checksum: FNV-1a 64 over the
// canonical JSON of the body, matching the envelope payload digest
// format so every integrity check in the repository reads the same.
func bodyChecksum(b manifestBody) (string, error) {
	raw, err := json.Marshal(b)
	if err != nil {
		return "", fmt.Errorf("registry: marshaling manifest: %w", err)
	}
	return ml.PayloadChecksum(raw), nil
}

// loadManifest reads and verifies one manifest file.
func loadManifest(path string) (manifest, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return manifest{}, err
	}
	var m manifest
	if err := json.Unmarshal(data, &m); err != nil {
		return manifest{}, fmt.Errorf("registry: manifest %s does not parse: %w", filepath.Base(path), err)
	}
	if m.SchemaVersion != SchemaVersion {
		return manifest{}, fmt.Errorf("registry: manifest %s has schema %d, want %d", filepath.Base(path), m.SchemaVersion, SchemaVersion)
	}
	sum, err := bodyChecksum(m.manifestBody)
	if err != nil {
		return manifest{}, err
	}
	if sum != m.Checksum {
		return manifest{}, fmt.Errorf("registry: manifest %s checksum %s, recorded %s: torn or corrupt", filepath.Base(path), sum, m.Checksum)
	}
	return m, nil
}

// recover is the Open pass. It must tolerate every on-disk state a
// crash (or a fault-injected torn write) can leave behind.
func (r *Registry) recover(rep *RecoveryReport) error {
	r.removeTmp(rep)

	mainPath := filepath.Join(r.dir, manifestName)
	prevPath := filepath.Join(r.dir, manifestPrev)
	man, mainErr := loadManifest(mainPath)
	switch {
	case mainErr == nil:
		// Healthy main manifest.
	case errors.Is(mainErr, os.ErrNotExist):
		// Fresh directory — or a crash before the very first manifest
		// commit. Either way, rebuild from whatever blobs exist.
		if prev, err := loadManifest(prevPath); err == nil {
			man = prev
			rep.add("manifest-fallback", manifestPrev, "manifest.json missing; previous copy restored")
		} else {
			man = manifest{SchemaVersion: SchemaVersion}
			if r.rebuildFromBlobs(&man, rep) {
				rep.add("manifest-rebuilt", manifestName, "no readable manifest; index rebuilt from blob store")
			}
		}
	default:
		// Torn or corrupt main manifest: quarantine the artifact, then
		// fall back to the A/B pair's previous copy.
		r.quarantineFile(mainPath, rep, "manifest", mainErr.Error())
		if prev, err := loadManifest(prevPath); err == nil {
			man = prev
			rep.add("manifest-fallback", manifestPrev, "manifest.json torn; previous copy restored")
		} else {
			if err != nil && !errors.Is(err, os.ErrNotExist) {
				r.quarantineFile(prevPath, rep, "manifest", err.Error())
			}
			man = manifest{SchemaVersion: SchemaVersion}
			if r.rebuildFromBlobs(&man, rep) {
				rep.add("manifest-rebuilt", manifestName, "both manifest copies unreadable; index rebuilt from blob store")
			}
		}
	}

	// Re-verify every entry's blob: missing or corrupt blobs quarantine
	// the entry (and move the bad artifact aside).
	for i := range man.Entries {
		e := &man.Entries[i]
		if e.Status == StatusQuarantined {
			continue
		}
		if detail, ok := r.verifyBlob(e.Checksum); !ok {
			if _, err := os.Stat(r.blobPath(e.Checksum)); err == nil {
				r.quarantineFile(r.blobPath(e.Checksum), rep, "blob", detail)
			}
			e.Quarantine = detail
			e.Status = StatusQuarantined
			rep.add("entry-quarantined", e.ID, detail)
			obs.Inc("registry.quarantine.total")
		}
	}

	// Repair the active pointer: if the active version was quarantined,
	// fall back along last-known-good, then lineage, to the newest
	// healthy ancestor.
	if man.Active != "" {
		if e, ok := findEntry(man.Entries, man.Active); !ok || e.Status == StatusQuarantined {
			fallback := r.pickFallback(&man)
			detail := fmt.Sprintf("active %s unusable; fell back to %q", man.Active, fallback)
			if fb, ok := findEntry(man.Entries, fallback); ok {
				fb.Status = StatusActive
			}
			man.Active = fallback
			rep.add("active-fallback", fallback, detail)
		}
	}

	// Surface (but keep) content-addressed blobs no entry references —
	// the residue of a crash between blob and manifest commit.
	r.reportOrphans(&man, rep)

	r.man = man
	// Persist repairs so the next open is clean. A healthy directory
	// (and a fresh, empty one) skips the write: recovery that found
	// nothing must not touch disk.
	if !rep.Clean() {
		if err := r.commitManifestLocked(); err != nil {
			return err
		}
	}
	return nil
}

// removeTmp clears temp droppings a crash left in the root or blob
// dirs (ml.WriteFileAtomic temp files are never valid artifacts).
func (r *Registry) removeTmp(rep *RecoveryReport) {
	for _, sub := range []string{"", blobsDir} {
		entries, err := os.ReadDir(filepath.Join(r.dir, sub))
		if err != nil {
			continue
		}
		for _, e := range entries {
			if strings.Contains(e.Name(), ".tmp-") {
				_ = os.Remove(filepath.Join(r.dir, sub, e.Name()))
				rep.add("tmp-removed", filepath.Join(sub, e.Name()), "crash-interrupted temp file removed")
			}
		}
	}
}

// rebuildFromBlobs reconstructs a minimal manifest from the blob
// store: every verifiable envelope becomes a recovered candidate entry
// (lineage is gone — that is what the manifest was for). Returns
// whether anything was recovered.
func (r *Registry) rebuildFromBlobs(man *manifest, rep *RecoveryReport) bool {
	entries, err := os.ReadDir(filepath.Join(r.dir, blobsDir))
	if err != nil {
		return false
	}
	names := make([]string, 0, len(entries))
	for _, e := range entries {
		if n, ok := strings.CutSuffix(e.Name(), ".json"); ok {
			names = append(names, n)
		}
	}
	sort.Strings(names)
	recovered := false
	for _, sum := range names {
		if detail, ok := r.verifyBlob(sum); !ok {
			r.quarantineFile(r.blobPath(sum), rep, "blob", detail)
			continue
		}
		info, err := ml.VerifyEnvelopeFile(r.blobPath(sum))
		if err != nil {
			r.quarantineFile(r.blobPath(sum), rep, "blob", err.Error())
			continue
		}
		man.Seq++
		man.Entries = append(man.Entries, Version{
			ID:            versionID(man.Seq),
			Checksum:      sum,
			Model:         info.Name,
			Status:        StatusCandidate,
			Note:          "recovered from blob store; lineage lost",
			PayloadBytes:  info.PayloadBytes,
			CreatedUnixMs: obs.Now().UnixMilli(),
		})
		recovered = true
	}
	return recovered
}

// verifyBlob checks that the content-addressed blob exists, is a
// well-formed envelope, and that its payload digest matches both the
// envelope's recorded checksum and its own file name. Verification is
// checksum-only (no learner reconstruction), so it works in processes
// that never imported the learner's package.
func (r *Registry) verifyBlob(sum string) (detail string, ok bool) {
	info, err := ml.VerifyEnvelopeFile(r.blobPath(sum))
	switch {
	case errors.Is(err, os.ErrNotExist):
		return "blob missing", false
	case err != nil:
		return fmt.Sprintf("blob unreadable: %v", err), false
	case info.Checksum != sum:
		return fmt.Sprintf("blob content %s does not match address %s", info.Checksum, sum), false
	}
	return "", true
}

// quarantineFile moves a bad artifact into quarantine/ under a
// collision-free name derived from its original one.
func (r *Registry) quarantineFile(path string, rep *RecoveryReport, kind, detail string) {
	base := filepath.Base(path)
	dst := filepath.Join(r.dir, quarDir, base)
	for n := 1; ; n++ {
		if _, err := os.Stat(dst); errors.Is(err, os.ErrNotExist) {
			break
		}
		dst = filepath.Join(r.dir, quarDir, fmt.Sprintf("%s.%d", base, n))
	}
	if err := os.Rename(path, dst); err != nil {
		// The artifact would not move (permissions, races). Removing it
		// is wrong — it is evidence — so record the failure and leave it.
		rep.add("blob-quarantined", base, fmt.Sprintf("%s: quarantine move failed: %v", detail, err))
		return
	}
	rep.add("blob-quarantined", base, fmt.Sprintf("%s (%s moved to %s)", detail, kind, filepath.Join(quarDir, filepath.Base(dst))))
}

// pickFallback chooses the replacement active version after the
// current one was quarantined: last-known-good if healthy, else the
// newest non-quarantined entry on the active version's parent chain,
// else the newest healthy entry of any lineage, else none.
func (r *Registry) pickFallback(man *manifest) string {
	healthy := func(id string) bool {
		e, ok := findEntry(man.Entries, id)
		return ok && e.Status != StatusQuarantined && e.Status != StatusRejected
	}
	if man.LastKnownGood != "" && healthy(man.LastKnownGood) {
		return man.LastKnownGood
	}
	if active, ok := findEntry(man.Entries, man.Active); ok {
		for parent := active.Parent; parent != ""; {
			if healthy(parent) {
				return parent
			}
			e, ok := findEntry(man.Entries, parent)
			if !ok {
				break
			}
			parent = e.Parent
		}
	}
	for i := len(man.Entries) - 1; i >= 0; i-- {
		if e := man.Entries[i]; e.Status != StatusQuarantined && e.Status != StatusRejected {
			return e.ID
		}
	}
	return ""
}

// reportOrphans surfaces unreferenced blobs. Intact orphans are kept —
// pre-manifest crash residue or an operator's manual drop, not ours to
// delete — while corrupt ones (a torn blob write whose manifest entry
// never landed) move to quarantine so the blob store holds only
// verified envelopes.
func (r *Registry) reportOrphans(man *manifest, rep *RecoveryReport) {
	referenced := map[string]bool{}
	for _, e := range man.Entries {
		referenced[e.Checksum] = true
	}
	entries, err := os.ReadDir(filepath.Join(r.dir, blobsDir))
	if err != nil {
		return
	}
	for _, e := range entries {
		sum, ok := strings.CutSuffix(e.Name(), ".json")
		if !ok || referenced[sum] {
			continue
		}
		if detail, ok := r.verifyBlob(sum); !ok {
			r.quarantineFile(r.blobPath(sum), rep, "blob", detail)
			continue
		}
		rep.Orphans = append(rep.Orphans, e.Name())
	}
}

func versionID(seq int) string { return fmt.Sprintf("v%04d", seq) }

func findEntry(entries []Version, id string) (*Version, bool) {
	for i := range entries {
		if entries[i].ID == id {
			return &entries[i], true
		}
	}
	return nil, false
}

func (r *Registry) blobPath(sum string) string {
	return filepath.Join(r.dir, blobsDir, sum+".json")
}

// BlobPath returns the on-disk path of a version's envelope blob —
// what a serve replica's ModelPath points at when it serves from the
// registry.
func (r *Registry) BlobPath(id string) (string, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := findEntry(r.man.Entries, id)
	if !ok {
		return "", fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return r.blobPath(e.Checksum), nil
}

// writeAtomic is ml.WriteFileAtomic with the registry's fault hook: a
// ModelCorrupt hit on this write's sequence number tears the write —
// the destination is left holding a deterministic prefix of the bytes
// (the post-crash state of a non-atomic or fsync-less writer) and the
// operation fails with ErrTornWrite.
func (r *Registry) writeAtomic(path string, data []byte) error {
	key := r.wseq
	r.wseq++
	if r.inj.Hit(fault.ModelCorrupt, key) {
		cut := int(r.inj.U(fault.ModelCorrupt, key) * float64(len(data)))
		if cut >= len(data) {
			cut = len(data) - 1
		}
		if cut < 0 {
			cut = 0
		}
		if err := os.WriteFile(path, data[:cut], 0o666); err != nil {
			return err
		}
		return fmt.Errorf("%w: %s at %d/%d bytes", ErrTornWrite, filepath.Base(path), cut, len(data))
	}
	return ml.WriteFileAtomic(path, func(w io.Writer) error {
		_, err := w.Write(data)
		return err
	})
}

// commitManifestLocked persists the manifest under the A/B protocol:
// the current good copy is preserved as manifest.prev.json, then the
// new manifest replaces manifest.json atomically. Caller holds r.mu.
func (r *Registry) commitManifestLocked() error {
	sum, err := bodyChecksum(r.man.manifestBody)
	if err != nil {
		return err
	}
	r.man.SchemaVersion = SchemaVersion
	r.man.Checksum = sum
	data, err := json.MarshalIndent(r.man, "", "  ")
	if err != nil {
		return fmt.Errorf("registry: marshaling manifest: %w", err)
	}
	mainPath := filepath.Join(r.dir, manifestName)
	if cur, err := os.ReadFile(mainPath); err == nil {
		// Preserve the previous good copy before touching the main
		// file. Its own write is atomic too, so a crash here leaves
		// either the old prev or the new prev — both valid manifests.
		if _, perr := loadManifest(mainPath); perr == nil {
			if werr := r.writeAtomic(filepath.Join(r.dir, manifestPrev), cur); werr != nil {
				return werr
			}
		}
	}
	if err := r.writeAtomic(mainPath, data); err != nil {
		return err
	}
	obs.Inc("registry.manifest.commit.total")
	return nil
}

// Add commits a fitted model: the envelope is serialized, its blob
// written content-addressed (blob first, manifest second — the crash
// ordering that can only strand an orphan blob), and a new candidate
// version appended to the manifest with the given lineage metadata.
func (r *Registry) Add(m ml.Regressor, meta Meta) (Version, error) {
	var buf bytes.Buffer
	if err := ml.SaveModel(&buf, m); err != nil {
		return Version{}, err
	}
	return r.addEnvelope(buf.Bytes(), meta)
}

// AddFile commits an existing envelope file (e.g. mphpc-train
// -save-model output) after verifying it loads cleanly.
func (r *Registry) AddFile(path string, meta Meta) (Version, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Version{}, err
	}
	return r.addEnvelope(data, meta)
}

func (r *Registry) addEnvelope(data []byte, meta Meta) (Version, error) {
	// Envelope must verify before anything touches disk: the registry
	// refuses artifacts the serving load path would refuse.
	_, info, err := ml.LoadModelInfo(bytes.NewReader(data))
	if err != nil {
		return Version{}, fmt.Errorf("registry: refusing unloadable envelope: %w", err)
	}
	if info.Legacy {
		return Version{}, fmt.Errorf("registry: refusing checksum-less legacy envelope %q: corruption would be undetectable: %w", info.Name, ml.ErrBadInput)
	}

	r.mu.Lock()
	defer r.mu.Unlock()
	parent := meta.Parent
	if parent == "" {
		parent = r.man.Active
	} else if _, ok := findEntry(r.man.Entries, parent); !ok {
		return Version{}, fmt.Errorf("%w: parent %s", ErrNotFound, parent)
	}
	if err := r.writeAtomic(r.blobPath(info.Checksum), data); err != nil {
		return Version{}, err
	}
	r.man.Seq++
	v := Version{
		ID:            versionID(r.man.Seq),
		Checksum:      info.Checksum,
		Model:         info.Name,
		Parent:        parent,
		Status:        StatusCandidate,
		Note:          meta.Note,
		Metrics:       copyMetrics(meta.Metrics),
		PayloadBytes:  info.PayloadBytes,
		CreatedUnixMs: obs.Now().UnixMilli(),
	}
	r.man.Entries = append(r.man.Entries, v)
	if err := r.commitManifestLocked(); err != nil {
		// The manifest write failed (or was torn): drop the in-memory
		// entry so the Registry never claims a version the disk does
		// not hold. The blob stays — an orphan recovery will report.
		r.man.Entries = r.man.Entries[:len(r.man.Entries)-1]
		r.man.Seq--
		return Version{}, err
	}
	obs.Inc("registry.add.total")
	return v, nil
}

func copyMetrics(m map[string]float64) map[string]float64 {
	if len(m) == 0 {
		return nil
	}
	out := make(map[string]float64, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

// Get returns a version by ID.
func (r *Registry) Get(id string) (Version, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := findEntry(r.man.Entries, id)
	if !ok {
		return Version{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	return *e, nil
}

// List returns every version in commit order.
func (r *Registry) List() []Version {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]Version(nil), r.man.Entries...)
}

// Active returns the released version, if any.
func (r *Registry) Active() (Version, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := findEntry(r.man.Entries, r.man.Active); ok {
		return *e, true
	}
	return Version{}, false
}

// LastKnownGood returns the rollback target, if any.
func (r *Registry) LastKnownGood() (Version, bool) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if e, ok := findEntry(r.man.Entries, r.man.LastKnownGood); ok {
		return *e, true
	}
	return Version{}, false
}

// Promote releases a candidate: it becomes active, the previous
// active retires and becomes the last-known-good rollback target.
// metrics (may be nil) is merged into the entry — the shadow window
// numbers that justified the promotion belong in the lineage record.
func (r *Registry) Promote(id string, metrics map[string]float64) (Version, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := findEntry(r.man.Entries, id)
	if !ok {
		return Version{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	switch e.Status {
	case StatusCandidate, StatusRetired, StatusRolledBack:
		// Promotable: fresh candidates, and previously-released
		// versions being re-released (a rollback's re-promote).
	case StatusActive:
		return *e, nil // idempotent
	default:
		return Version{}, fmt.Errorf("%w: cannot promote %s version %s", ErrGate, e.Status, id)
	}
	saved := r.man
	savedEntries := append([]Version(nil), r.man.Entries...)
	if prev, ok := findEntry(r.man.Entries, r.man.Active); ok && prev.ID != id {
		prev.Status = StatusRetired
		r.man.LastKnownGood = prev.ID
	}
	e.Status = StatusActive
	for k, v := range metrics {
		if e.Metrics == nil {
			e.Metrics = map[string]float64{}
		}
		e.Metrics[k] = v
	}
	r.man.Active = id
	if err := r.commitManifestLocked(); err != nil {
		r.man = saved
		r.man.Entries = savedEntries
		return Version{}, err
	}
	obs.Inc("registry.promote.total")
	return *e, nil
}

// Reject marks a candidate as failed (the shadow gate said no). A
// rejected version is never considered for fallback.
func (r *Registry) Reject(id, reason string) (Version, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	e, ok := findEntry(r.man.Entries, id)
	if !ok {
		return Version{}, fmt.Errorf("%w: %s", ErrNotFound, id)
	}
	if e.Status != StatusCandidate {
		return Version{}, fmt.Errorf("%w: cannot reject %s version %s", ErrGate, e.Status, id)
	}
	saved := append([]Version(nil), r.man.Entries...)
	e.Status = StatusRejected
	if reason != "" {
		e.Note = strings.TrimSpace(e.Note + "; rejected: " + reason)
	}
	if err := r.commitManifestLocked(); err != nil {
		r.man.Entries = saved
		return Version{}, err
	}
	obs.Inc("registry.reject.total")
	return *e, nil
}

// Rollback reverts to the last-known-good version: the current active
// is marked rolled-back (it keeps its lineage entry — rollbacks are
// history, not deletion) and last-known-good becomes active again.
func (r *Registry) Rollback(reason string) (Version, error) {
	r.mu.Lock()
	defer r.mu.Unlock()
	lkg, ok := findEntry(r.man.Entries, r.man.LastKnownGood)
	if !ok || lkg.Status == StatusQuarantined {
		return Version{}, fmt.Errorf("%w: no healthy last-known-good to roll back to", ErrGate)
	}
	saved := r.man
	savedEntries := append([]Version(nil), r.man.Entries...)
	if cur, ok := findEntry(r.man.Entries, r.man.Active); ok && cur.ID != lkg.ID {
		cur.Status = StatusRolledBack
		if reason != "" {
			cur.Note = strings.TrimSpace(cur.Note + "; rolled back: " + reason)
		}
	}
	lkg.Status = StatusActive
	r.man.Active = lkg.ID
	r.man.LastKnownGood = lkg.Parent
	if _, ok := findEntry(r.man.Entries, lkg.Parent); !ok {
		r.man.LastKnownGood = ""
	}
	if err := r.commitManifestLocked(); err != nil {
		r.man = saved
		r.man.Entries = savedEntries
		return Version{}, err
	}
	obs.Inc("registry.rollback.total")
	return *lkg, nil
}

// LoadVersion reads and reconstructs a version's model through the
// checksum-verified ml load path.
func (r *Registry) LoadVersion(id string) (ml.Regressor, ml.ModelInfo, error) {
	path, err := r.BlobPath(id)
	if err != nil {
		return nil, ml.ModelInfo{}, err
	}
	return ml.LoadModelFileInfo(path)
}

// Verify re-checks every non-quarantined entry's blob on demand (the
// mphpc-registry -verify subcommand). It reports problems without
// mutating state — Open is where quarantine happens, so that repair
// always runs under the full recovery pass.
func (r *Registry) Verify() []RecoveryAction {
	r.mu.Lock()
	defer r.mu.Unlock()
	var problems []RecoveryAction
	for i := range r.man.Entries {
		e := &r.man.Entries[i]
		if e.Status == StatusQuarantined {
			continue
		}
		if detail, ok := r.verifyBlob(e.Checksum); !ok {
			problems = append(problems, RecoveryAction{Kind: "corrupt", Subject: e.ID, Detail: detail})
		}
	}
	return problems
}
