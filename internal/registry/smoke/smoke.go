// Package smoke is the registry smoke gate (`mphpc-registry -smoke`,
// `make registry-smoke`): a self-contained end-to-end drill of the
// release-path invariants. Run hard-asserts, in order:
//
//  1. crash safety: a fault-injected torn write during a commit leaves
//     the registry recoverable — reopening quarantines the damage,
//     repairs the active pointer, and a second reopen is clean; the
//     full candidate→active→retired→rollback lifecycle round-trips
//     with lineage and last-known-good intact;
//  2. the HTTP release path: a candidate installed over POST
//     /v1/shadow straight from its registry blob shadows labeled
//     traffic with served responses bitwise incumbent, /v1/registryz
//     reports the evidence window, and POST /v1/promote swaps the
//     candidate in only once the gate's margin is earned;
//  3. the poisoned-model sweep (experiments.RunRegistryDrill): a
//     corrupt blob is quarantined at open, a worse model is refused by
//     the shadow gate, a regressing model triggers automatic fleet
//     rollback — and a genuinely better model is promoted, so the
//     gates are proven selective, not just closed.
//
// The drill runs on scratch directories and in-process servers only; a
// failed run reproduces exactly from its seeds.
package smoke

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"net/http"
	"os"

	"crossarch/internal/experiments"
	"crossarch/internal/fault"
	"crossarch/internal/floats"
	"crossarch/internal/ml"
	"crossarch/internal/ml/xgboost"
	"crossarch/internal/registry"
	"crossarch/internal/serve"
	"crossarch/internal/stats"
)

const (
	smokeFeatures = 6
	smokeOutputs  = 4
)

// smokeData draws the synthetic truth the smoke models train on.
func smokeData(seed uint64, n int) (X, Y [][]float64) {
	rng := stats.NewRNG(seed)
	X = make([][]float64, n)
	Y = make([][]float64, n)
	for i := range X {
		x := make([]float64, smokeFeatures)
		for j := range x {
			x[j] = rng.Range(-3, 3)
		}
		y := make([]float64, smokeOutputs)
		for k := range y {
			y[k] = x[k%smokeFeatures] * float64(k+1)
			if x[(k+1)%smokeFeatures] > 0 {
				y[k] += 2
			}
		}
		X[i], Y[i] = x, y
	}
	return X, Y
}

// smokeModel fits a model at the given strength.
func smokeModel(seed uint64, rounds int) (*xgboost.Model, error) {
	X, Y := smokeData(seed, 200)
	m := xgboost.New(xgboost.Params{Rounds: rounds, MaxDepth: 3, LearningRate: 0.3, Seed: seed})
	if err := m.Fit(X, Y); err != nil {
		return nil, err
	}
	return m, nil
}

// stageCrashSafety drills invariant 1: torn writes recover, the
// lifecycle round-trips. seed drives the fault injector, threaded from
// Run so a failed stage reproduces exactly.
func stageCrashSafety(seed uint64) error {
	// A registry whose every write tears mid-commit: the Add must fail
	// with the typed crash error and a recovery open must restore a
	// clean, usable registry.
	dir, err := os.MkdirTemp("", "mphpc-registry-smoke-")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()

	inj, err := fault.NewInjector(seed, fault.Plan{ModelCorrupt: 1})
	if err != nil {
		return err
	}
	torn, _, err := registry.Open(dir, registry.Options{Injector: inj})
	if err != nil {
		return fmt.Errorf("opening the torn-write registry: %w", err)
	}
	m, err := smokeModel(13, 10)
	if err != nil {
		return err
	}
	if _, err := torn.Add(m, registry.Meta{Note: "doomed"}); !errors.Is(err, registry.ErrTornWrite) {
		return fmt.Errorf("fault-rate-1 Add returned %v, want ErrTornWrite", err)
	}
	reopened, rep, err := registry.Open(dir, registry.Options{})
	if err != nil {
		return fmt.Errorf("recovery open after torn write: %w", err)
	}
	if rep.Clean() && len(rep.Orphans) == 0 {
		return fmt.Errorf("recovery open after a torn write reported nothing to repair")
	}
	if _, rep2, err := registry.Open(dir, registry.Options{}); err != nil || !rep2.Clean() {
		return fmt.Errorf("second reopen not clean: err=%v actions=%v", err, rep2)
	}

	// Lifecycle on the recovered registry: candidate → active → retired
	// by a successor → rolled back to last-known-good.
	v1m, err := smokeModel(17, 10)
	if err != nil {
		return err
	}
	v1, err := reopened.Add(v1m, registry.Meta{Note: "first"})
	if err != nil {
		return fmt.Errorf("add after recovery: %w", err)
	}
	if _, err := reopened.Promote(v1.ID, map[string]float64{"mae": 1.0}); err != nil {
		return err
	}
	v2m, err := smokeModel(19, 10)
	if err != nil {
		return err
	}
	v2, err := reopened.Add(v2m, registry.Meta{})
	if err != nil {
		return err
	}
	if v2.Parent != v1.ID {
		return fmt.Errorf("lineage: v2 parent %q, want %s", v2.Parent, v1.ID)
	}
	if _, err := reopened.Promote(v2.ID, nil); err != nil {
		return err
	}
	lkg, ok := reopened.LastKnownGood()
	if !ok || lkg.ID != v1.ID {
		return fmt.Errorf("last-known-good %+v, want %s", lkg, v1.ID)
	}
	back, err := reopened.Rollback("smoke rollback")
	if err != nil {
		return err
	}
	if back.ID != v1.ID {
		return fmt.Errorf("rollback restored %s, want %s", back.ID, v1.ID)
	}
	if actions := reopened.Verify(); len(actions) != 0 {
		return fmt.Errorf("Verify on a healthy registry reported %v", actions)
	}
	if _, rep3, err := registry.Open(dir, registry.Options{}); err != nil || !rep3.Clean() {
		return fmt.Errorf("reopen after lifecycle not clean: err=%v actions=%v", err, rep3)
	}
	return nil
}

// postJSON posts a JSON payload and decodes the reply into out.
func postJSON(ctx context.Context, url string, in, out any) (int, error) {
	body, err := json.Marshal(in)
	if err != nil {
		return 0, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			return resp.StatusCode, err
		}
	}
	return resp.StatusCode, nil
}

// bitwiseEqual compares prediction matrices exactly.
func bitwiseEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			// Exact comparison is the contract under test.
			if !floats.Eq(a[i][j], b[i][j]) {
				return false
			}
		}
	}
	return true
}

// stageHTTPReleasePath drills invariant 2: the shadow/promote endpoint
// lifecycle, candidate loaded straight from its registry blob.
func stageHTTPReleasePath(ctx context.Context) error {
	dir, err := os.MkdirTemp("", "mphpc-registry-smoke-")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	reg, _, err := registry.Open(dir, registry.Options{})
	if err != nil {
		return err
	}

	// Weak incumbent, strong candidate: the gate has something real to
	// measure and the candidate can earn promotion.
	incumbent, err := smokeModel(23, 1)
	if err != nil {
		return err
	}
	strong, err := smokeModel(23, 10)
	if err != nil {
		return err
	}
	cand, err := reg.Add(strong, registry.Meta{Note: "smoke candidate"})
	if err != nil {
		return err
	}
	blob, err := reg.BlobPath(cand.ID)
	if err != nil {
		return err
	}

	srv, err := serve.New(serve.Config{Features: smokeFeatures, Outputs: smokeOutputs})
	if err != nil {
		return err
	}
	if err := srv.Install(incumbent, ml.ModelInfo{}); err != nil {
		srv.Close()
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		srv.Close()
		return err
	}
	hs := &http.Server{Handler: srv}
	go func() { _ = hs.Serve(ln) }()
	defer func() {
		_ = hs.Close()
		srv.BeginDrain()
		srv.Close()
	}()
	base := "http://" + ln.Addr().String()
	client := &serve.Client{BaseURL: base}

	var shadowStatus serve.ShadowStatus
	code, err := postJSON(ctx, base+"/v1/shadow", serve.ShadowRequest{Path: blob, Version: cand.ID}, &shadowStatus)
	if err != nil || code != http.StatusOK {
		return fmt.Errorf("installing the shadow candidate over HTTP: code=%d err=%v", code, err)
	}

	// Promotion without evidence must be refused.
	var refused serve.PromoteResponse
	code, err = postJSON(ctx, base+"/v1/promote", struct{}{}, &refused)
	if err != nil || code != http.StatusConflict {
		return fmt.Errorf("evidence-free promote answered code=%d err=%v, want 409", code, err)
	}

	// Labeled traffic builds the window; served answers stay bitwise
	// incumbent the whole time.
	for batch := 0; batch < 8; batch++ {
		rows, targets := smokeData(uint64(100+batch), 16)
		preds, perr := client.PredictLabeled(ctx, rows, targets)
		if perr != nil {
			return perr
		}
		if !bitwiseEqual(preds, ml.PredictBatch(incumbent, rows)) {
			return fmt.Errorf("served response deviated from the incumbent during shadow evaluation")
		}
	}

	// registryz reports the full release-path state.
	resp, err := http.Get(base + "/v1/registryz")
	if err != nil {
		return err
	}
	var rz serve.RegistryzResponse
	derr := json.NewDecoder(resp.Body).Decode(&rz)
	_ = resp.Body.Close()
	if derr != nil {
		return derr
	}
	if rz.Shadow == nil || rz.Shadow.VersionID != cand.ID {
		return fmt.Errorf("registryz shadow = %+v, want candidate %s", rz.Shadow, cand.ID)
	}
	if !rz.Shadow.Promotable {
		return fmt.Errorf("candidate not promotable after labeled evidence: %s", rz.Shadow.Reason)
	}

	var promoted serve.PromoteResponse
	code, err = postJSON(ctx, base+"/v1/promote", struct{}{}, &promoted)
	if err != nil || code != http.StatusOK || !promoted.Promoted {
		return fmt.Errorf("earned promote answered code=%d promoted=%v err=%v", code, promoted.Promoted, err)
	}
	if _, err := reg.Promote(cand.ID, map[string]float64{
		"shadow_mae": promoted.Shadow.CandidateMAE,
	}); err != nil {
		return fmt.Errorf("recording the promotion in the registry: %w", err)
	}
	rows, _ := smokeData(500, 8)
	preds, err := client.PredictBatch(ctx, rows)
	if err != nil {
		return err
	}
	if !bitwiseEqual(preds, ml.PredictBatch(strong, rows)) {
		return fmt.Errorf("served response after promotion is not the candidate's")
	}
	active, ok := reg.Active()
	if !ok || active.ID != cand.ID {
		return fmt.Errorf("registry active %+v after promotion, want %s", active, cand.ID)
	}
	return nil
}

// stageDrill drills invariant 3: the seeded poisoned-model sweep.
func stageDrill() error {
	res, err := experiments.RunRegistryDrill(experiments.RegistryDrillConfig{})
	if err != nil {
		return err
	}
	return res.CheckInvariants()
}

// crashSeed is the canonical fault-injector seed for stage 1; the
// smoke is a fixed drill, so the seed is part of its definition.
const crashSeed = 7

// Run executes every smoke stage in order and returns the first
// violated invariant (nil when all hold).
func Run(ctx context.Context) error {
	if err := stageCrashSafety(crashSeed); err != nil {
		return fmt.Errorf("stage 1 (crash safety): %w", err)
	}
	if err := stageHTTPReleasePath(ctx); err != nil {
		return fmt.Errorf("stage 2 (HTTP release path): %w", err)
	}
	if err := stageDrill(); err != nil {
		return fmt.Errorf("stage 3 (poisoned-model drill): %w", err)
	}
	return nil
}
