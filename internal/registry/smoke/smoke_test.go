package smoke_test

import (
	"context"
	"testing"

	"crossarch/internal/registry/smoke"
)

// TestRun executes the full registry smoke gate in-process: the same
// drill `mphpc-registry -smoke` (and `make registry-smoke`) runs, so a
// regression in any release-path invariant fails plain
// `go test ./...` too.
func TestRun(t *testing.T) {
	if err := smoke.Run(context.Background()); err != nil {
		t.Fatalf("SMOKE FAIL: %v", err)
	}
}
