// Fast-path JSON codec for the two hot wire shapes — the predict
// request `{"rows":[[...]]}` and the predict response
// `{"model":"...","predictions":[[...]]}`. The serving profile is
// dominated by encoding/json's reflection machinery, not by model
// arithmetic, so both handler and client first try a strict
// hand-rolled scanner over the canonical shape and fall back to
// encoding/json on ANY deviation: unknown keys, reordered keys,
// escapes, malformed numbers, anything. The fallback keeps error
// messages and acceptance semantics bit-for-bit with the stdlib path;
// the fast path accepts only payloads the stdlib would decode to the
// same values (numbers go through strconv.ParseFloat exactly as
// encoding/json's float64 decoding does).
package serve

import (
	"math"
	"strconv"
	"sync"
	"unsafe"
)

// jsonBufPool recycles scratch byte buffers for request bodies and
// encoded responses across requests.
var jsonBufPool = sync.Pool{New: func() any { return new([]byte) }}

func getJSONBuf() *[]byte  { return jsonBufPool.Get().(*[]byte) }
func putJSONBuf(b *[]byte) { jsonBufPool.Put(b) }

// floatScanner is a strict cursor over a JSON payload.
type floatScanner struct {
	data []byte
	pos  int
}

func (s *floatScanner) ws() {
	for s.pos < len(s.data) {
		switch s.data[s.pos] {
		case ' ', '\t', '\n', '\r':
			s.pos++
		default:
			return
		}
	}
}

// lit consumes exactly b, reporting whether it was there.
func (s *floatScanner) lit(b byte) bool {
	if s.pos < len(s.data) && s.data[s.pos] == b {
		s.pos++
		return true
	}
	return false
}

func (s *floatScanner) peek() byte {
	if s.pos < len(s.data) {
		return s.data[s.pos]
	}
	return 0
}

// key consumes `"name"` exactly (no escapes — the canonical shapes
// never need them).
func (s *floatScanner) key(name string) bool {
	if !s.lit('"') {
		return false
	}
	if s.pos+len(name) > len(s.data) || string(s.data[s.pos:s.pos+len(name)]) != name {
		return false
	}
	s.pos += len(name)
	return s.lit('"')
}

// number consumes one strict JSON number (RFC 8259 grammar — no hex,
// no leading '+', no Inf/NaN) and converts it with the same
// strconv.ParseFloat call encoding/json uses, so the fast path never
// accepts a token or produces a bit pattern the stdlib would not.
func (s *floatScanner) number() (float64, bool) {
	start := s.pos
	d := s.data
	if s.pos < len(d) && d[s.pos] == '-' {
		s.pos++
	}
	switch {
	case s.pos < len(d) && d[s.pos] == '0':
		s.pos++
	case s.pos < len(d) && d[s.pos] >= '1' && d[s.pos] <= '9':
		s.pos++
		for s.pos < len(d) && d[s.pos] >= '0' && d[s.pos] <= '9' {
			s.pos++
		}
	default:
		return 0, false
	}
	if s.pos < len(d) && d[s.pos] == '.' {
		s.pos++
		if s.pos >= len(d) || d[s.pos] < '0' || d[s.pos] > '9' {
			return 0, false
		}
		for s.pos < len(d) && d[s.pos] >= '0' && d[s.pos] <= '9' {
			s.pos++
		}
	}
	if s.pos < len(d) && (d[s.pos] == 'e' || d[s.pos] == 'E') {
		s.pos++
		if s.pos < len(d) && (d[s.pos] == '+' || d[s.pos] == '-') {
			s.pos++
		}
		if s.pos >= len(d) || d[s.pos] < '0' || d[s.pos] > '9' {
			return 0, false
		}
		for s.pos < len(d) && d[s.pos] >= '0' && d[s.pos] <= '9' {
			s.pos++
		}
	}
	tok := d[start:s.pos]
	// The token is not retained past the call, so the no-copy string
	// view is safe and avoids one allocation per number.
	v, err := strconv.ParseFloat(unsafe.String(unsafe.SliceData(tok), len(tok)), 64)
	if err != nil {
		// Out-of-range exponents et al: let the stdlib path produce its
		// canonical error.
		return 0, false
	}
	return v, true
}

// rows consumes `[[...],[...]]`. All floats land in one backing slice
// so a decoded batch costs three allocations regardless of row count.
func (s *floatScanner) rows() ([][]float64, bool) {
	if !s.lit('[') {
		return nil, false
	}
	var vals []float64
	var lens []int
	s.ws()
	if s.lit(']') {
		return [][]float64{}, true
	}
	for {
		s.ws()
		if !s.lit('[') {
			return nil, false
		}
		n0 := len(vals)
		s.ws()
		if !s.lit(']') {
			for {
				s.ws()
				v, ok := s.number()
				if !ok {
					return nil, false
				}
				vals = append(vals, v)
				s.ws()
				if s.lit(']') {
					break
				}
				if !s.lit(',') {
					return nil, false
				}
			}
		}
		lens = append(lens, len(vals)-n0)
		s.ws()
		if s.lit(']') {
			break
		}
		if !s.lit(',') {
			return nil, false
		}
	}
	rows := make([][]float64, len(lens))
	off := 0
	for i, n := range lens {
		rows[i] = vals[off : off+n : off+n]
		off += n
	}
	return rows, true
}

// eof reports whether only whitespace remains. The stdlib request
// path uses a json.Decoder, which ignores trailing bytes after the
// first value; payloads with trailing content simply take the
// fallback, so behavior is unchanged.
func (s *floatScanner) eof() bool {
	s.ws()
	return s.pos == len(s.data)
}

// fastDecodePredictRequest parses the canonical predict request.
// ok=false means "use encoding/json", not "invalid".
func fastDecodePredictRequest(data []byte) (rows [][]float64, ok bool) {
	s := floatScanner{data: data}
	s.ws()
	if !s.lit('{') {
		return nil, false
	}
	s.ws()
	if !s.key("rows") {
		return nil, false
	}
	s.ws()
	if !s.lit(':') {
		return nil, false
	}
	s.ws()
	rows, ok = s.rows()
	if !ok {
		return nil, false
	}
	s.ws()
	if !s.lit('}') || !s.eof() {
		return nil, false
	}
	return rows, true
}

// fastDecodePredictResponse parses the response shape the server's
// fast encoder emits (model first, then predictions).
func fastDecodePredictResponse(data []byte) (model string, preds [][]float64, ok bool) {
	s := floatScanner{data: data}
	s.ws()
	if !s.lit('{') {
		return "", nil, false
	}
	s.ws()
	if !s.key("model") {
		return "", nil, false
	}
	s.ws()
	if !s.lit(':') {
		return "", nil, false
	}
	s.ws()
	if !s.lit('"') {
		return "", nil, false
	}
	nameStart := s.pos
	for s.pos < len(s.data) && plainStringByte(s.data[s.pos]) {
		s.pos++
	}
	model = string(s.data[nameStart:s.pos])
	if !s.lit('"') {
		return "", nil, false
	}
	s.ws()
	if !s.lit(',') {
		return "", nil, false
	}
	s.ws()
	if !s.key("predictions") {
		return "", nil, false
	}
	s.ws()
	if !s.lit(':') {
		return "", nil, false
	}
	s.ws()
	preds, ok = s.rows()
	if !ok {
		return "", nil, false
	}
	s.ws()
	if !s.lit('}') || !s.eof() {
		return "", nil, false
	}
	return model, preds, true
}

// plainStringByte reports whether b can sit in a JSON string with no
// escaping on either side (printable ASCII minus quote and backslash).
func plainStringByte(b byte) bool {
	return b >= 0x20 && b < 0x7f && b != '"' && b != '\\'
}

func plainString(s string) bool {
	for i := 0; i < len(s); i++ {
		if !plainStringByte(s[i]) {
			return false
		}
	}
	return true
}

// appendJSONFloat formats v exactly as encoding/json does (ES6-style
// shortest representation, 'e' form outside [1e-6, 1e21) with the
// exponent's leading zero trimmed), so fast-path response bytes are
// identical to the stdlib encoder's.
func appendJSONFloat(b []byte, v float64) []byte {
	abs := math.Abs(v)
	format := byte('f')
	if abs != 0 && (abs < 1e-6 || abs >= 1e21) {
		format = 'e'
	}
	b = strconv.AppendFloat(b, v, format, -1, 64)
	if format == 'e' {
		if n := len(b); n >= 4 && b[n-4] == 'e' && b[n-3] == '-' && b[n-2] == '0' {
			b[n-2] = b[n-1]
			b = b[:n-1]
		}
	}
	return b
}

// appendRows appends `[[...],[...]]`. Nil matrices and nil rows take
// the fallback: encoding/json spells those "null".
func appendRows(b []byte, rows [][]float64) ([]byte, bool) {
	if rows == nil {
		return b, false
	}
	b = append(b, '[')
	for i, row := range rows {
		if row == nil {
			return b, false
		}
		if i > 0 {
			b = append(b, ',')
		}
		b = append(b, '[')
		for j, v := range row {
			if j > 0 {
				b = append(b, ',')
			}
			if math.IsNaN(v) || math.IsInf(v, 0) {
				// Not representable in JSON; the stdlib path owns the error.
				return b, false
			}
			b = appendJSONFloat(b, v)
		}
		b = append(b, ']')
	}
	return append(b, ']'), true
}

// appendPredictRequest encodes the predict request; ok=false (a
// non-finite value) means "use encoding/json for its error".
func appendPredictRequest(b []byte, rows [][]float64) ([]byte, bool) {
	b = append(b, `{"rows":`...)
	b, ok := appendRows(b, rows)
	if !ok {
		return b, false
	}
	return append(b, '}'), true
}

// appendPredictResponse encodes the predict response, including the
// trailing newline json.Encoder emits, so fast and fallback bodies
// are byte-identical.
func appendPredictResponse(b []byte, model string, preds [][]float64) ([]byte, bool) {
	if !plainString(model) {
		return b, false
	}
	b = append(b, `{"model":"`...)
	b = append(b, model...)
	b = append(b, `","predictions":`...)
	b, ok := appendRows(b, preds)
	if !ok {
		return b, false
	}
	return append(b, '}', '\n'), true
}
