// Fast-codec agreement tests (ISSUE PR 6): the hand-rolled scanner and
// encoder are only allowed to exist because they are observationally
// identical to encoding/json on every payload they accept — wherever
// the fast path reports ok, its values must match the stdlib bit for
// bit, and everything else must be declined so the stdlib fallback
// keeps its error semantics.
package serve

import (
	"bytes"
	"encoding/json"
	"math"
	"strings"
	"testing"

	"crossarch/internal/stats"
)

// stdlibRows decodes data the way handlePredict's fallback does and
// reports whether the stdlib accepts it.
func stdlibRows(t *testing.T, data []byte) ([][]float64, bool) {
	t.Helper()
	var req struct {
		Rows [][]float64 `json:"rows"`
	}
	if err := json.NewDecoder(bytes.NewReader(data)).Decode(&req); err != nil {
		return nil, false
	}
	return req.Rows, true
}

func bitwiseEqualRows(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			if math.Float64bits(a[i][j]) != math.Float64bits(b[i][j]) {
				return false
			}
		}
	}
	return true
}

// TestFastDecodeAgreesWithStdlib drives canonical and near-canonical
// request payloads through both decoders. Three legal outcomes per
// payload: fast accepts with bitwise-identical values, or fast declines
// and the stdlib accepts (fallback), or both reject. Fast accepting
// anything the stdlib rejects — or disagreeing on a value — is a bug.
func TestFastDecodeAgreesWithStdlib(t *testing.T) {
	cases := []struct {
		name     string
		payload  string
		wantFast bool // fast path must accept (canonical shapes)
	}{
		{"canonical", `{"rows":[[1,2.5,-3],[4,5,6]]}`, true},
		{"whitespace", " \t\n{ \"rows\" : [ [ 1 , 2 ] , [ 3 , 4 ] ] }\r\n", true},
		{"scientific", `{"rows":[[1e3,-2.5E-4,6.02e23,1E+2]]}`, true},
		{"zero-forms", `{"rows":[[0,-0,0.0,-0.0,0e0]]}`, true},
		{"empty-rows", `{"rows":[]}`, true},
		{"empty-row", `{"rows":[[]]}`, true},
		{"ragged", `{"rows":[[1],[2,3]]}`, true},
		{"subnormal", `{"rows":[[5e-324,2.2250738585072014e-308]]}`, true},
		{"huge", `{"rows":[[1.7976931348623157e308]]}`, true},
		{"long-mantissa", `{"rows":[[0.1234567890123456789012345678901234567890]]}`, true},

		// Payloads the stdlib accepts but the fast path must decline
		// (fallback territory, never wrong answers).
		{"trailing-garbage", `{"rows":[[1]]} extra`, false},
		{"unknown-key", `{"rows":[[1]],"other":2}`, false},
		{"reordered-keys", `{"other":2,"rows":[[1]]}`, false},
		{"overflow-1e400", `{"rows":[[1e400]]}`, false},
		{"null-rows", `{"rows":null}`, false},
		{"escaped-key", `{"\u0072ows":[[1]]}`, false},
		{"int-row", `{"rows":[1,2]}`, false},

		// Payloads both must reject (fast declines, stdlib errors).
		{"hex-float", `{"rows":[[0x1p3]]}`, false},
		{"leading-plus", `{"rows":[[+5]]}`, false},
		{"inf-literal", `{"rows":[[Inf]]}`, false},
		{"nan-literal", `{"rows":[[NaN]]}`, false},
		{"trailing-dot", `{"rows":[[1.]]}`, false},
		{"leading-dot", `{"rows":[[.5]]}`, false},
		{"leading-zero", `{"rows":[[01]]}`, false},
		{"bare-exponent", `{"rows":[[1e]]}`, false},
		{"trailing-comma", `{"rows":[[1,]]}`, false},
		{"unclosed", `{"rows":[[1`, false},
		{"not-object", `[[1]]`, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := []byte(tc.payload)
			fast, fastOK := fastDecodePredictRequest(data)
			std, stdOK := stdlibRows(t, data)
			if fastOK != tc.wantFast {
				t.Fatalf("fast ok = %v, want %v", fastOK, tc.wantFast)
			}
			if fastOK && !stdOK {
				t.Fatalf("fast path accepted a payload the stdlib rejects")
			}
			if fastOK && !bitwiseEqualRows(fast, std) {
				t.Fatalf("fast = %v, stdlib = %v", fast, std)
			}
		})
	}
}

// TestFastDecodeRandomAgreement cross-checks the decoders on random
// matrices round-tripped through the stdlib encoder, including values
// near every formatting boundary the encoder can emit.
func TestFastDecodeRandomAgreement(t *testing.T) {
	rng := stats.NewRNG(1234)
	for trial := 0; trial < 200; trial++ {
		rows := randomMatrix(rng, 1+rng.Intn(5), 1+rng.Intn(8))
		data, err := json.Marshal(struct {
			Rows [][]float64 `json:"rows"`
		}{rows})
		if err != nil {
			t.Fatal(err)
		}
		fast, ok := fastDecodePredictRequest(data)
		if !ok {
			t.Fatalf("trial %d: fast path declined canonical payload %s", trial, data)
		}
		std, ok := stdlibRows(t, data)
		if !ok {
			t.Fatalf("trial %d: stdlib declined its own output", trial)
		}
		if !bitwiseEqualRows(fast, std) {
			t.Fatalf("trial %d: fast %v != stdlib %v for %s", trial, fast, std, data)
		}
	}
}

// randomMatrix mixes ordinary magnitudes with the encoder's edge cases:
// negative zero, values straddling the 'f'/'e' format boundaries,
// subnormals, and exact integers.
func randomMatrix(rng *stats.RNG, n, m int) [][]float64 {
	specials := []float64{
		0, math.Copysign(0, -1), 1e21, 9.999999e20, 1e-6, 9.9e-7, 1e-7,
		5e-324, 2.2250738585072014e-308, 1.7976931348623157e308,
		-1e21, -1e-7, 42, -13, 0.1, 1.0 / 3.0,
	}
	rows := make([][]float64, n)
	for i := range rows {
		row := make([]float64, m)
		for j := range row {
			if rng.Intn(3) == 0 {
				row[j] = specials[rng.Intn(len(specials))]
			} else {
				row[j] = rng.Range(-1e6, 1e6) * math.Pow(10, float64(rng.Intn(30)-15))
			}
		}
		rows[i] = row
	}
	return rows
}

// TestAppendRowsMatchesMarshal: wherever the fast encoder reports ok,
// its bytes must equal json.Marshal's exactly — same float formatting,
// same separators — because clients and tests compare served bodies
// byte-for-byte against stdlib-encoded goldens.
func TestAppendRowsMatchesMarshal(t *testing.T) {
	rng := stats.NewRNG(777)
	for trial := 0; trial < 200; trial++ {
		rows := randomMatrix(rng, rng.Intn(4), rng.Intn(6))
		for i := range rows {
			if len(rows[i]) == 0 {
				rows[i] = []float64{} // nil row forces fallback; empty is canonical
			}
		}
		got, ok := appendRows(nil, rows)
		if !ok {
			t.Fatalf("trial %d: fast encoder declined finite matrix %v", trial, rows)
		}
		want, err := json.Marshal(rows)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("trial %d:\nfast   %s\nstdlib %s", trial, got, want)
		}
	}
}

// TestAppendRowsDeclines: nil matrices, nil rows, and non-finite
// values are the stdlib's business ("null" spelling, canonical error),
// so the fast encoder must hand them over rather than improvise.
func TestAppendRowsDeclines(t *testing.T) {
	for name, rows := range map[string][][]float64{
		"nil-matrix": nil,
		"nil-row":    {nil},
		"nan":        {{math.NaN()}},
		"pos-inf":    {{math.Inf(1)}},
		"neg-inf":    {{1, math.Inf(-1)}},
	} {
		if _, ok := appendRows(nil, rows); ok {
			t.Fatalf("%s: fast encoder accepted, want fallback", name)
		}
	}
}

// TestAppendPredictResponseMatchesEncoder pins the full response body
// — keys, model string, predictions, trailing newline — against
// json.Encoder, which is what writeJSON uses on the fallback path.
func TestAppendPredictResponseMatchesEncoder(t *testing.T) {
	rng := stats.NewRNG(99)
	for trial := 0; trial < 50; trial++ {
		preds := randomMatrix(rng, 1+rng.Intn(4), 1+rng.Intn(5))
		got, ok := appendPredictResponse(nil, "xgboost", preds)
		if !ok {
			t.Fatalf("trial %d: fast encoder declined", trial)
		}
		var buf bytes.Buffer
		if err := json.NewEncoder(&buf).Encode(PredictResponse{
			Model:       "xgboost",
			Predictions: preds,
		}); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, buf.Bytes()) {
			t.Fatalf("trial %d:\nfast   %q\nstdlib %q", trial, got, buf.Bytes())
		}
	}
	// Non-plain model strings (escapes needed) must take the fallback.
	if _, ok := appendPredictResponse(nil, "a\"b", nil); ok {
		t.Fatal(`model with '"' accepted, want fallback`)
	}
	if _, ok := appendPredictResponse(nil, "tab\there", nil); ok {
		t.Fatal("model with control byte accepted, want fallback")
	}
}

// TestResponseRoundTrip: the client's fast decoder must recover
// exactly what the server's fast encoder produced.
func TestResponseRoundTrip(t *testing.T) {
	rng := stats.NewRNG(31)
	for trial := 0; trial < 100; trial++ {
		preds := randomMatrix(rng, 1+rng.Intn(4), 1+rng.Intn(5))
		body, ok := appendPredictResponse(nil, "forest", preds)
		if !ok {
			t.Fatalf("trial %d: encoder declined", trial)
		}
		model, got, ok := fastDecodePredictResponse(body)
		if !ok {
			t.Fatalf("trial %d: decoder declined encoder output %s", trial, body)
		}
		if model != "forest" {
			t.Fatalf("trial %d: model = %q", trial, model)
		}
		if !bitwiseEqualRows(got, preds) {
			t.Fatalf("trial %d: round trip %v != %v", trial, got, preds)
		}
	}
	// And it must decline shapes it does not own.
	for name, body := range map[string]string{
		"reordered":    `{"predictions":[[1]],"model":"m"}`,
		"escaped-name": `{"model":"a\"b","predictions":[[1]]}`,
		"trailing":     "{\"model\":\"m\",\"predictions\":[[1]]}\nx",
	} {
		if _, _, ok := fastDecodePredictResponse([]byte(body)); ok {
			t.Fatalf("%s: fast decoder accepted %q, want fallback", name, body)
		}
	}
}

// TestAppendJSONFloatMatchesStdlib sweeps the float formatter across
// the format-switch boundaries and random magnitudes; every output
// must match how encoding/json renders the same value.
func TestAppendJSONFloatMatchesStdlib(t *testing.T) {
	vals := []float64{
		0, math.Copysign(0, -1), 1, -1, 0.5, 1e-6, 9.999999999999999e-7,
		1e-7, 1e21, 9.999999999999999e20, -1e21, 1e-305, 5e-324,
		1.7976931348623157e308, 123456789.123456789, 1e100, -2.5e-100,
	}
	rng := stats.NewRNG(8)
	for i := 0; i < 500; i++ {
		v := rng.Range(-1, 1) * math.Pow(10, float64(rng.Intn(620)-310))
		if math.IsInf(v, 0) { // overflow: not JSON-encodable, fallback territory
			continue
		}
		vals = append(vals, v)
	}
	for _, v := range vals {
		got := string(appendJSONFloat(nil, v))
		want, err := json.Marshal(v)
		if err != nil {
			t.Fatal(err)
		}
		if got != string(want) {
			t.Fatalf("%g (bits %x): fast %q, stdlib %q", v, math.Float64bits(v), got, want)
		}
	}
}

// TestReadAll exercises the pooled body reader against chunked input
// larger than one internal read.
func TestReadAll(t *testing.T) {
	payload := strings.Repeat("abc123", 4096)
	got, err := readAll(nil, strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != payload {
		t.Fatalf("readAll lost data: %d bytes, want %d", len(got), len(payload))
	}
}
