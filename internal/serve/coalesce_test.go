// White-box coalescer regression tests (ISSUE PR 6): the MaxBatch
// overshoot fix (an overflowing request is carried into the next batch,
// never appended past the cap), the oversize-single-request exception,
// the carry-drain guarantee on shutdown, the fan-back ownership
// protocol (responses never alias the reused output arena), and the
// idle-queue single-row fast path. These drive serveBatch/run directly
// on a bare Server so batch composition is deterministic instead of
// scheduler-dependent.
package serve

import (
	"math"
	"sync"
	"testing"
	"time"

	"crossarch/internal/ml"
	"crossarch/internal/stats"
)

// recordingModel is a deterministic BatchRegressor that records the row
// count of every batch it is asked to predict. Row i's prediction is a
// pure function of its first feature, so fan-back slicing errors are
// visible as value mismatches, not just length mismatches.
type recordingModel struct {
	mu      sync.Mutex
	batches []int
	outputs int
}

func (r *recordingModel) Name() string               { return "recording" }
func (r *recordingModel) Fit(X, Y [][]float64) error { return nil }
func (r *recordingModel) NumOutputs() int            { return r.outputs }

func (r *recordingModel) fill(x, out []float64) {
	for k := range out {
		out[k] = x[0]*10 + float64(k)
	}
}

func (r *recordingModel) Predict(x []float64) []float64 {
	out := make([]float64, r.outputs)
	r.fill(x, out)
	return out
}

func (r *recordingModel) PredictBatch(X, out [][]float64) {
	r.mu.Lock()
	r.batches = append(r.batches, len(X))
	r.mu.Unlock()
	for i := range X {
		r.fill(X[i], out[i])
	}
}

func (r *recordingModel) recorded() []int {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append([]int(nil), r.batches...)
}

// newDispatcher builds a Server exactly as New does — defaults, queue,
// disarmed timer, installed model — but without starting the run
// goroutine, so tests drive serveBatch and the carry state directly.
func newDispatcher(t testing.TB, cfg Config, m ml.Regressor) *Server {
	t.Helper()
	cfg.setDefaults()
	s := &Server{
		cfg:   cfg,
		queue: make(chan *pending, cfg.QueueCap),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	s.timer = time.NewTimer(time.Hour)
	if !s.timer.Stop() {
		select {
		case <-s.timer.C:
		default:
		}
	}
	if err := s.Install(m, ml.ModelInfo{}); err != nil {
		t.Fatalf("Install: %v", err)
	}
	return s
}

// mkPending builds an admitted request of n rows whose first features
// encode (tag, row index) so every response row is attributable.
func mkPending(tag, n int) *pending {
	rows := make([][]float64, n)
	for i := range rows {
		rows[i] = []float64{float64(tag*1000 + i), 0, 0}
	}
	return &pending{rows: rows, resp: make(chan result, 1)}
}

// checkResult asserts p's response has one prediction per row, each
// matching the recording model's pure function of that row.
func checkResult(t *testing.T, p *pending, outputs int) {
	t.Helper()
	select {
	case res := <-p.resp:
		if len(res.preds) != len(p.rows) {
			t.Fatalf("fan-back rows = %d, want %d", len(res.preds), len(p.rows))
		}
		for i, pred := range res.preds {
			if len(pred) != outputs {
				t.Fatalf("row %d width = %d, want %d", i, len(pred), outputs)
			}
			for k := range pred {
				want := p.rows[i][0]*10 + float64(k)
				if pred[k] != want {
					t.Fatalf("row %d out %d = %v, want %v", i, k, pred[k], want)
				}
			}
		}
	default:
		t.Fatal("no response fanned back")
	}
}

// TestServeBatchCarriesOverflow is the MaxBatch-overshoot regression
// test: a pulled request whose rows would push the batch past MaxBatch
// must be carried into the next batch, so no multi-request batch ever
// exceeds MaxBatch rows. (The seed behavior appended it anyway,
// overshooting the cap the admission layer promises the model.)
func TestServeBatchCarriesOverflow(t *testing.T) {
	rec := &recordingModel{outputs: 2}
	s := newDispatcher(t, Config{MaxBatch: 8, MaxWait: time.Millisecond, Outputs: 2}, rec)

	first := mkPending(1, 3)
	second := mkPending(2, 3)
	overflow := mkPending(3, 3)
	s.queue <- second
	s.queue <- overflow

	s.serveBatch(first)
	if s.carry != overflow {
		t.Fatalf("overflowing request not carried: carry = %v", s.carry)
	}
	checkResult(t, first, 2)
	checkResult(t, second, 2)
	select {
	case <-overflow.resp:
		t.Fatal("carried request answered in the overshooting batch")
	default:
	}

	// The next cycle starts from the carry, exactly as run() does.
	p := s.carry
	s.carry = nil
	s.serveBatch(p)
	checkResult(t, overflow, 2)

	if got := rec.recorded(); len(got) != 2 || got[0] != 6 || got[1] != 3 {
		t.Fatalf("batch sizes = %v, want [6 3]", got)
	}
}

// TestServeBatchOversizeSingleRequest preserves the documented
// exception: one request larger than MaxBatch forms a batch of its own
// rather than being rejected or split.
func TestServeBatchOversizeSingleRequest(t *testing.T) {
	rec := &recordingModel{outputs: 2}
	s := newDispatcher(t, Config{MaxBatch: 8, MaxWait: time.Millisecond, Outputs: 2}, rec)

	big := mkPending(1, 20)
	s.serveBatch(big)
	checkResult(t, big, 2)
	if got := rec.recorded(); len(got) != 1 || got[0] != 20 {
		t.Fatalf("batch sizes = %v, want [20]", got)
	}
	if s.carry != nil {
		t.Fatalf("oversize single request left a carry: %v", s.carry)
	}
}

// TestServeBatchNeverExceedsMaxBatch sweeps randomized request sizes
// through the dispatch loop and asserts the invariant directly: since
// every request here is at most MaxBatch rows, every batch handed to
// the model must be too — only an oversize single request may exceed
// the cap, and none exist in this sweep.
func TestServeBatchNeverExceedsMaxBatch(t *testing.T) {
	const maxBatch = 8
	rec := &recordingModel{outputs: 2}
	s := newDispatcher(t, Config{MaxBatch: maxBatch, MaxWait: time.Millisecond, Outputs: 2, QueueCap: 256}, rec)

	rng := stats.NewRNG(66)
	var reqs []*pending
	for i := 0; i < 60; i++ {
		reqs = append(reqs, mkPending(i, 1+rng.Intn(maxBatch)))
	}
	for _, p := range reqs {
		s.queue <- p
	}
	// Drive the run loop's dispatch cycle synchronously until the queue
	// and carry are exhausted.
	for s.carry != nil || len(s.queue) > 0 {
		var p *pending
		if s.carry != nil {
			p, s.carry = s.carry, nil
		} else {
			p = <-s.queue
		}
		s.serveBatch(p)
	}
	for _, p := range reqs {
		checkResult(t, p, 2)
	}
	total := 0
	for _, n := range rec.recorded() {
		if n > maxBatch {
			t.Fatalf("multi-request batch of %d rows exceeds MaxBatch %d", n, maxBatch)
		}
		total += n
	}
	want := 0
	for _, p := range reqs {
		want += len(p.rows)
	}
	if total != want {
		t.Fatalf("batches covered %d rows, want %d", total, want)
	}
}

// TestDrainAnswersCarryAndQueue: after quit closes, the run loop must
// answer the carried request and everything still queued before it
// exits — a drain never strands an admitted request.
func TestDrainAnswersCarryAndQueue(t *testing.T) {
	rec := &recordingModel{outputs: 2}
	s := newDispatcher(t, Config{MaxBatch: 8, MaxWait: time.Millisecond, Outputs: 2, QueueCap: 64}, rec)

	// Seed the dispatcher state a drain must flush: a carried request
	// plus queued requests, with quit already closed before run starts.
	carried := mkPending(0, 5)
	s.carry = carried
	var queued []*pending
	for i := 1; i <= 4; i++ {
		p := mkPending(i, 5)
		queued = append(queued, p)
		s.queue <- p
	}
	close(s.quit)
	s.run() // returns once carry and queue are drained

	select {
	case <-s.done:
	default:
		t.Fatal("run returned without closing done")
	}
	checkResult(t, carried, 2)
	for _, p := range queued {
		checkResult(t, p, 2)
	}
	if s.carry != nil {
		t.Fatalf("drain exited with a live carry: %v", s.carry)
	}
}

// TestFanBackDoesNotAliasArena is the ownership-protocol test: results
// must be copies, so reusing the output arena for the next batch (or
// scribbling over it outright) cannot retroactively change a response a
// handler already holds. Run under -race this also proves no write to
// dispatcher scratch races a reader of a delivered result.
func TestFanBackDoesNotAliasArena(t *testing.T) {
	rec := &recordingModel{outputs: 3}
	s := newDispatcher(t, Config{MaxBatch: 4, MaxWait: time.Millisecond, Outputs: 3}, rec)

	p1 := mkPending(1, 2)
	s.serveBatch(p1)
	res1 := <-p1.resp
	want := make([][]float64, len(res1.preds))
	for i, row := range res1.preds {
		want[i] = append([]float64(nil), row...)
	}

	// Reader goroutine continuously consuming the delivered result while
	// the dispatcher reuses its arena: any aliasing is a data race.
	stop := make(chan struct{})
	readerDone := make(chan struct{})
	go func() {
		defer close(readerDone)
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, row := range res1.preds {
				for _, v := range row {
					_ = v
				}
			}
		}
	}()

	// Serve more batches through the same arena, then scribble directly
	// over every arena row the way a hostile next batch would.
	for i := 0; i < 8; i++ {
		p := mkPending(10+i, 2)
		s.serveBatch(p)
		<-p.resp
	}
	scr := s.arena.Rows(2, 3)
	for _, row := range scr {
		for j := range row {
			row[j] = math.NaN()
		}
	}
	close(stop)
	<-readerDone

	for i, row := range res1.preds {
		for k, v := range row {
			if math.Float64bits(v) != math.Float64bits(want[i][k]) {
				t.Fatalf("held response mutated: row %d out %d = %v, want %v", i, k, v, want[i][k])
			}
		}
	}
}

// TestSingleRowFastPath: a lone single-row request with an idle queue
// must dispatch immediately instead of waiting out MaxWait. The huge
// MaxWait makes a regression unmissable: if the fast path is lost, the
// gather timer stalls this test for minutes.
func TestSingleRowFastPath(t *testing.T) {
	rec := &recordingModel{outputs: 2}
	s := newDispatcher(t, Config{MaxBatch: 64, MaxWait: 5 * time.Minute, Outputs: 2}, rec)

	p := mkPending(1, 1)
	done := make(chan struct{})
	go func() {
		s.serveBatch(p)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("single-row request with idle queue waited on the gather timer")
	}
	checkResult(t, p, 2)
	if got := rec.recorded(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("batch sizes = %v, want [1]", got)
	}
}
