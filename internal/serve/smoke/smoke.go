// Package smoke is the serving smoke gate (`mphpc-serve -smoke`,
// `make serve-smoke`): a self-contained end-to-end drill of the
// serving invariants against a real listener on a random port. Run
// hard-asserts, in order:
//
//  1. a valid request answers 200 with predictions bitwise identical
//     to the offline ml.PredictBatch on the same model file;
//  2. malformed JSON answers 400, an oversized body 413, a row-count
//     overflow 413, and a wrong-width row 400;
//  3. with the dispatcher pinned inside an inference batch and the
//     bounded queue full, the next request answers 429 with
//     Retry-After — and every admitted request still completes with
//     bitwise-correct results once the batch unblocks;
//  4. a hot reload under in-flight load swaps the model atomically:
//     the in-flight request finishes on the old weights, the next
//     request uses the new ones, and /v1/modelz reports the new
//     checksum and generation;
//  5. draining answers 503 (with Retry-After) to new work while
//     everything accepted drains cleanly, and the closed listener
//     refuses connections.
//
// The package lives inside the nondeterminism lint scope with the rest
// of the serving layer, so it never reads the wall clock: waits are
// bounded selects and attempt-counted sleeps.
package smoke

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"time"

	"crossarch/internal/floats"
	"crossarch/internal/ml"
	"crossarch/internal/ml/xgboost"
	"crossarch/internal/obs"
	"crossarch/internal/serve"
	"crossarch/internal/stats"
)

const (
	smokeFeatures = 6
	smokeOutputs  = 4
	smokeWait     = 10 * time.Second
)

// smokeModel fits a small XGBoost model on a synthetic piecewise
// response — the weights are irrelevant to the invariants, only that
// they form a real BatchRegressor with a checksummed envelope.
func smokeModel(seed uint64) (*xgboost.Model, error) {
	rng := stats.NewRNG(seed)
	const n = 200
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		x := make([]float64, smokeFeatures)
		for j := range x {
			x[j] = rng.Range(-3, 3)
		}
		y := make([]float64, smokeOutputs)
		for k := range y {
			y[k] = x[k%smokeFeatures] * float64(k+1)
			if x[(k+1)%smokeFeatures] > 0 {
				y[k] += 2
			}
		}
		X[i], Y[i] = x, y
	}
	m := xgboost.New(xgboost.Params{Rounds: 10, MaxDepth: 3, LearningRate: 0.3, Seed: seed})
	if err := m.Fit(X, Y); err != nil {
		return nil, err
	}
	return m, nil
}

// gatedModel wraps a fitted model so every Predict blocks until the
// gate channel closes, pinning the coalescer inside a batch at a known
// point — the only way to drive the 429 overflow and reload-under-load
// stages deterministically. entered signals the first blocked row.
type gatedModel struct {
	inner   ml.Regressor
	gate    chan struct{}
	entered chan struct{}
}

func newGated(inner ml.Regressor) *gatedModel {
	return &gatedModel{inner: inner, gate: make(chan struct{}), entered: make(chan struct{}, 1)}
}

//lint:ignore ctxflow test instrument: Fit mirrors the ml.Regressor interface, which is context-free by design (training is offline)
func (g *gatedModel) Fit(X, Y [][]float64) error { return g.inner.Fit(X, Y) }
func (g *gatedModel) Name() string               { return g.inner.Name() }

//lint:ignore ctxflow test instrument: Predict must block unconditionally until the gate opens — a context escape hatch would defeat the pin
func (g *gatedModel) Predict(x []float64) []float64 {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.gate
	return g.inner.Predict(x)
}

// smokeRows returns a deterministic batch of valid feature rows.
func smokeRows(n int, seed uint64) [][]float64 {
	rng := stats.NewRNG(seed)
	rows := make([][]float64, n)
	for i := range rows {
		r := make([]float64, smokeFeatures)
		for j := range r {
			r[j] = rng.Range(-3, 3)
		}
		rows[i] = r
	}
	return rows
}

// postRaw posts raw bytes to the predict endpoint and returns the
// status code and the Retry-After header.
func postRaw(base string, body []byte) (code int, retryAfter string, err error) {
	resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		return 0, "", err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, resp.Header.Get("Retry-After"), nil
}

// queueDepth reads the serve.queue.depth gauge off /v1/metrics.
func queueDepth(base string) (float64, error) {
	resp, err := http.Get(base + "/v1/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(resp.Body).Decode(&snap); err != nil {
		return 0, fmt.Errorf("decoding metrics snapshot: %w", err)
	}
	return snap.Gauges["serve.queue.depth"], nil
}

// bitwiseEqual compares two prediction matrices exactly: serving must
// not change a single bit relative to the offline path.
func bitwiseEqual(a, b [][]float64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if len(a[i]) != len(b[i]) {
			return false
		}
		for j := range a[i] {
			// Exact comparison is the contract under test; NaN never
			// appears (finite inputs, finite trees).
			if !floats.Eq(a[i][j], b[i][j]) {
				return false
			}
		}
	}
	return true
}

type reply struct {
	preds [][]float64
	err   error
}

// Run executes every smoke stage in order and returns the first
// violated invariant (nil when all hold). The context bounds every
// typed-client call the drill issues.
func Run(ctx context.Context) error {
	dir, err := os.MkdirTemp("", "mphpc-serve-smoke")
	if err != nil {
		return err
	}
	defer func() { _ = os.RemoveAll(dir) }()
	modelPath := filepath.Join(dir, "model.json")

	modelA, err := smokeModel(11)
	if err != nil {
		return fmt.Errorf("training model A: %w", err)
	}
	modelB, err := smokeModel(22)
	if err != nil {
		return fmt.Errorf("training model B: %w", err)
	}
	if err := ml.SaveModelFile(modelPath, modelA); err != nil {
		return err
	}

	srv, err := serve.New(serve.Config{
		ModelPath:         modelPath,
		Outputs:           smokeOutputs,
		Features:          smokeFeatures,
		MaxBatch:          8,
		MaxWait:           time.Millisecond,
		QueueCap:          1,
		MaxRowsPerRequest: 32,
		MaxBodyBytes:      1 << 16,
		RequestTimeout:    smokeWait,
	})
	if err != nil {
		return err
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return err
	}
	httpSrv := &http.Server{Handler: srv}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	base := "http://" + ln.Addr().String()
	client := &serve.Client{BaseURL: base}

	// Stage 1: served == offline, bitwise.
	rows := smokeRows(12, 7)
	got, err := client.PredictBatch(ctx, rows)
	if err != nil {
		return fmt.Errorf("valid request: %w", err)
	}
	if want := ml.PredictBatch(modelA, rows); !bitwiseEqual(got, want) {
		return errors.New("served predictions differ from offline PredictBatch")
	}
	// The file-loaded xgboost envelope must be serving its compiled
	// arena (and, per the check above, bitwise identically to it).
	mz, err := client.Modelz(ctx)
	if err != nil {
		return err
	}
	if !mz.Compiled {
		return errors.New("file-loaded tree ensemble is not serving compiled")
	}

	// Stage 2: malformed, oversized, and invalid payloads.
	if code, _, err := postRaw(base, []byte(`{"rows": [[1,`)); err != nil || code != http.StatusBadRequest {
		return fmt.Errorf("malformed JSON: code %d, err %v (want 400)", code, err)
	}
	if code, _, err := postRaw(base, make([]byte, 1<<17)); err != nil || code != http.StatusRequestEntityTooLarge {
		return fmt.Errorf("oversized body: code %d, err %v (want 413)", code, err)
	}
	capBody, err := json.Marshal(serve.PredictRequest{Rows: smokeRows(33, 8)})
	if err != nil {
		return err
	}
	if code, _, err := postRaw(base, capBody); err != nil || code != http.StatusRequestEntityTooLarge {
		return fmt.Errorf("row-cap overflow: code %d, err %v (want 413)", code, err)
	}
	if code, _, err := postRaw(base, []byte(`{"rows": [[1,2,3]]}`)); err != nil || code != http.StatusBadRequest {
		return fmt.Errorf("wrong-width row: code %d, err %v (want 400)", code, err)
	}

	// Stage 3: 429 overflow while the dispatcher is pinned in a batch.
	// Pin request A inside the gated model, park request B in the
	// 1-slot queue (confirmed via the queue-depth gauge), then probe:
	// the probe must bounce with 429 + Retry-After.
	gated := newGated(modelA)
	if err := srv.Install(gated, ml.ModelInfo{}); err != nil {
		return err
	}
	inflightRows := smokeRows(2, 9)
	inflight := make(chan reply, 1)
	go func() {
		p, perr := client.PredictBatch(ctx, inflightRows)
		inflight <- reply{p, perr}
	}()
	select {
	case <-gated.entered:
	case <-time.After(smokeWait):
		return errors.New("dispatcher never entered the gated batch")
	}
	queuedRows := smokeRows(1, 10)
	queued := make(chan reply, 1)
	go func() {
		p, perr := client.PredictBatch(ctx, queuedRows)
		queued <- reply{p, perr}
	}()
	// Attempt-counted poll (5ms × 2000 = the same 10s budget as
	// smokeWait) instead of a wall-clock deadline: the serving layer's
	// lint scope bans time.Now.
	reached := false
	for attempt := 0; attempt < 2000; attempt++ {
		depth, derr := queueDepth(base)
		if derr != nil {
			return derr
		}
		if depth >= 1 {
			reached = true
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if !reached {
		return errors.New("request B never reached the admission queue")
	}
	probeBody, err := json.Marshal(serve.PredictRequest{Rows: smokeRows(1, 12)})
	if err != nil {
		return err
	}
	code, retryAfter, err := postRaw(base, probeBody)
	if err != nil {
		return err
	}
	if code != http.StatusTooManyRequests || retryAfter == "" {
		return fmt.Errorf("overflow probe: code %d, Retry-After %q (want 429 with Retry-After)", code, retryAfter)
	}
	close(gated.gate)
	in := <-inflight
	if in.err != nil {
		return fmt.Errorf("in-flight request failed after gate release: %w", in.err)
	}
	if want := ml.PredictBatch(modelA, inflightRows); !bitwiseEqual(in.preds, want) {
		return errors.New("in-flight gated request: served != offline")
	}
	q := <-queued
	if q.err != nil {
		return fmt.Errorf("queued request dropped: %w", q.err)
	}
	if want := ml.PredictBatch(modelA, queuedRows); !bitwiseEqual(q.preds, want) {
		return errors.New("queued request: served != offline")
	}

	// Stage 4: hot reload under load. Pin a batch on the old weights,
	// swap the file to model B, reload, then release: the pinned
	// request must answer with A's predictions, the next with B's.
	before, err := client.Modelz(ctx)
	if err != nil {
		return err
	}
	gated = newGated(modelA)
	if err := srv.Install(gated, ml.ModelInfo{}); err != nil {
		return err
	}
	go func() {
		p, perr := client.PredictBatch(ctx, inflightRows)
		inflight <- reply{p, perr}
	}()
	select {
	case <-gated.entered:
	case <-time.After(smokeWait):
		return errors.New("dispatcher never entered the reload-stage batch")
	}
	if err := ml.SaveModelFile(modelPath, modelB); err != nil {
		return err
	}
	resp, err := http.Post(base+"/v1/reload", "application/json", nil)
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	if cerr := resp.Body.Close(); cerr != nil {
		return cerr
	}
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("reload: status %d, want 200", resp.StatusCode)
	}
	close(gated.gate)
	in = <-inflight
	if in.err != nil {
		return fmt.Errorf("request in flight across reload failed: %w", in.err)
	}
	if want := ml.PredictBatch(modelA, inflightRows); !bitwiseEqual(in.preds, want) {
		return errors.New("request in flight across reload must finish on the old weights")
	}
	after, err := client.Modelz(ctx)
	if err != nil {
		return err
	}
	if after.Model.Checksum == before.Model.Checksum || after.Generation <= before.Generation {
		return fmt.Errorf("reload did not swap the model (checksum %q -> %q, generation %d -> %d)",
			before.Model.Checksum, after.Model.Checksum, before.Generation, after.Generation)
	}
	got, err = client.PredictBatch(ctx, rows)
	if err != nil {
		return fmt.Errorf("post-reload request: %w", err)
	}
	if want := ml.PredictBatch(modelB, rows); !bitwiseEqual(got, want) {
		return errors.New("post-reload predictions are not model B's")
	}

	// Stage 5: graceful drain. New work gets 503 + Retry-After, health
	// reports draining, then the listener closes cleanly.
	srv.BeginDrain()
	code, retryAfter, err = postRaw(base, probeBody)
	if err != nil {
		return err
	}
	if code != http.StatusServiceUnavailable || retryAfter == "" {
		return fmt.Errorf("post-drain predict: code %d, Retry-After %q (want 503 with Retry-After)", code, retryAfter)
	}
	hresp, err := http.Get(base + "/v1/healthz")
	if err != nil {
		return err
	}
	_, _ = io.Copy(io.Discard, hresp.Body)
	if cerr := hresp.Body.Close(); cerr != nil {
		return cerr
	}
	if hresp.StatusCode != http.StatusServiceUnavailable {
		return fmt.Errorf("draining healthz: status %d, want 503", hresp.StatusCode)
	}
	if err := httpSrv.Close(); err != nil {
		return err
	}
	if serr := <-serveErr; serr != nil && !errors.Is(serr, http.ErrServerClosed) {
		return serr
	}
	srv.Close()
	if _, err := http.Get(base + "/v1/healthz"); err == nil {
		return errors.New("listener still accepting after shutdown")
	}
	return nil
}
