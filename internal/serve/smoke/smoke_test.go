package smoke_test

import (
	"context"
	"testing"

	"crossarch/internal/serve/smoke"
)

// TestRun executes the full smoke gate in-process: the same drill
// `mphpc-serve -smoke` (and `make serve-smoke`) runs, so a regression
// in any serving invariant fails plain `go test ./...` too.
func TestRun(t *testing.T) {
	if err := smoke.Run(context.Background()); err != nil {
		t.Fatalf("SMOKE FAIL: %v", err)
	}
}
