// Package serve is the online face of the prediction pipeline: a
// zero-dependency net/http service that loads a persisted model
// (internal/ml envelope, checksum-verified), coalesces concurrent
// POST /v1/predict requests into micro-batches for the vectorized
// ml.BatchRegressor path, and routes every batch through the
// ml.DegradingPredictor ladder so faults degrade predictions instead
// of failing requests.
//
// The serving contract mirrors the offline path exactly: for the same
// feature rows, a served prediction is bitwise identical to
// ml.PredictBatch on the same fitted model, no matter how requests are
// interleaved or coalesced — per-row tree traversal is independent of
// batch composition (DESIGN.md §6), and the coalescer only ever
// changes the composition, never the rows.
//
// Admission control is explicit: a bounded queue rejects overflow with
// 429 + Retry-After, request bodies and row counts are capped, and
// every request carries a deadline. Shutdown is graceful — draining
// refuses new work with 503 while every accepted request still gets
// its prediction — and the model can be atomically hot-reloaded from
// disk (endpoint- or SIGHUP-triggered) without dropping a request.
package serve

import (
	"errors"
	"fmt"
	"io/fs"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"crossarch/internal/arch"
	"crossarch/internal/ml"
	"crossarch/internal/obs"
)

// Config tunes the service. The zero value serves with the documented
// defaults; ModelPath (or a later Install) supplies the model.
type Config struct {
	// ModelPath is the ml envelope file to load at startup and on every
	// Reload. Empty means the caller must Install a model before the
	// server is ready.
	ModelPath string

	// Outputs is the prediction width. 0 means the canonical RPV width,
	// one entry per architecture.
	Outputs int

	// Features, when positive, is the exact feature width every request
	// row must have; 0 only enforces that rows are rectangular & finite.
	Features int

	// MaxBatch caps the rows coalesced into one PredictBatch call
	// (default 64). A single request larger than MaxBatch still forms
	// one batch of its own.
	MaxBatch int

	// MaxWait bounds how long an open batch waits for more rows before
	// dispatching (default 2ms). Larger values trade tail latency for
	// batch occupancy.
	MaxWait time.Duration

	// QueueCap bounds the admission queue in requests (default 256);
	// an enqueue past the cap is rejected with 429.
	QueueCap int

	// MaxRowsPerRequest caps the rows in one request (default 4096);
	// larger payloads are rejected with 413.
	MaxRowsPerRequest int

	// MaxBodyBytes caps the request body (default 8 MiB).
	MaxBodyBytes int64

	// RequestTimeout is the per-request deadline measured from the
	// moment the handler admits the request (default 10s).
	RequestTimeout time.Duration

	// Degrade configures the degradation ladder wrapped around the
	// loaded model (fault injection, breaker tuning). The zero value is
	// the fault-free ladder, whose output is bitwise identical to the
	// primary model.
	Degrade ml.DegradeOpts

	// ShadowSampleEvery evaluates the shadow candidate on one in every
	// N unlabeled batches (default 8); labeled batches always evaluate.
	// Sampling is what amortizes the candidate's compute to a bounded
	// fraction of the incumbent's.
	ShadowSampleEvery int

	// ShadowWindow is the sliding window of evaluated rows the
	// promotion gate judges over (default 512).
	ShadowWindow int

	// PromoteMargin is the fraction by which the candidate's windowed
	// MAE must beat the incumbent's before promotion (default 0.05):
	// a candidate that is merely "not worse" is not promoted.
	PromoteMargin float64

	// MinShadowLabeled is the labeled-row evidence floor in the window
	// before the gate will consider promotion at all (default 64).
	MinShadowLabeled int
}

func (c *Config) setDefaults() {
	if c.Outputs <= 0 {
		c.Outputs = len(arch.Names())
	}
	if c.MaxBatch <= 0 {
		c.MaxBatch = 64
	}
	if c.MaxWait <= 0 {
		c.MaxWait = 2 * time.Millisecond
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 256
	}
	if c.MaxRowsPerRequest <= 0 {
		c.MaxRowsPerRequest = 4096
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 8 << 20
	}
	if c.RequestTimeout <= 0 {
		c.RequestTimeout = 10 * time.Second
	}
	if c.ShadowSampleEvery <= 0 {
		c.ShadowSampleEvery = 8
	}
	if c.ShadowWindow <= 0 {
		c.ShadowWindow = 512
	}
	if c.PromoteMargin <= 0 {
		c.PromoteMargin = 0.05
	}
	if c.MinShadowLabeled <= 0 {
		c.MinShadowLabeled = 64
	}
}

// modelState is one immutable generation of the served model. Reload
// builds a fresh state and swaps the pointer; batches capture the
// pointer once at dispatch, so an in-flight batch finishes on the
// model it started with.
type modelState struct {
	ladder       *ml.DegradingPredictor
	info         ml.ModelInfo
	outputs      int
	generation   uint64
	loadedUnixMs int64
	// compiled records whether the ladder's primary is the flattened
	// ml.CompiledEnsemble arena rather than the source envelope
	// (surfaced in /v1/modelz). Either way predictions are bitwise
	// identical; compilation only changes speed.
	compiled bool
}

// Server is the batched prediction service. Construct with New, serve
// it via any http.Server (it implements http.Handler), then BeginDrain
// + http.Server.Shutdown + Close to stop without dropping an accepted
// request.
type Server struct {
	cfg   Config
	mux   *http.ServeMux
	queue chan *pending

	model      atomic.Pointer[modelState]
	generation atomic.Uint64
	draining   atomic.Bool

	// shadow is the candidate under evaluation, nil when none: the
	// dispatcher's only cost on the no-shadow path is this one load.
	shadow atomic.Pointer[shadowState]

	// lastReloadErr records the most recent failed Reload (nil after a
	// success), so /v1/modelz can surface "the reload you triggered
	// did not take; the previous generation is still serving".
	lastReloadErr atomic.Pointer[ReloadFailure]

	// Per-server load accounting for the /v1/loadz introspection
	// endpoint. The obs gauges are process-global, so a multi-replica
	// process (internal/cluster fleets) needs these to tell replicas
	// apart: inflight counts requests admitted to the queue whose
	// handler has not yet written a response, accepted counts every
	// admission since startup.
	inflight atomic.Int64
	accepted atomic.Int64

	reloadMu  sync.Mutex // serializes Reload/Install swaps
	quit      chan struct{}
	done      chan struct{}
	closeOnce sync.Once

	// Dispatcher-owned steady-state scratch, touched only by the run
	// goroutine: the reused gather timer, a request carried over when it
	// would overflow the batch, the gather slices, and the arena backing
	// every batch's output matrix (see coalesce.go for the ownership
	// protocol that makes arena reuse safe).
	timer   *time.Timer
	carry   *pending
	batch   []*pending
	gatherX [][]float64
	arena   ml.MatrixArena

	// Shadow-evaluation scratch, also dispatcher-owned: the candidate's
	// output arena and the batch counter that drives 1-in-N sampling.
	shadowArena ml.MatrixArena
	shadowSeq   uint64
}

// New builds the server and starts its coalescer. When cfg.ModelPath
// is set the model is loaded (and checksum-verified) before New
// returns, so a misconfigured path fails fast instead of 503ing
// forever.
func New(cfg Config) (*Server, error) {
	cfg.setDefaults()
	s := &Server{
		cfg:   cfg,
		queue: make(chan *pending, cfg.QueueCap),
		quit:  make(chan struct{}),
		done:  make(chan struct{}),
	}
	// The dispatcher timer starts disarmed; serveBatch Stop+drains
	// before every Reset, so the initial state just needs an allocated
	// timer that is not running.
	s.timer = time.NewTimer(time.Hour)
	if !s.timer.Stop() {
		select {
		case <-s.timer.C:
		default:
		}
	}
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("/v1/predict", s.handlePredict)
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/loadz", s.handleLoadz)
	s.mux.HandleFunc("/v1/metrics", s.handleMetrics)
	s.mux.HandleFunc("/v1/modelz", s.handleModelz)
	s.mux.HandleFunc("/v1/reload", s.handleReload)
	s.mux.HandleFunc("/v1/shadow", s.handleShadow)
	s.mux.HandleFunc("/v1/promote", s.handlePromote)
	s.mux.HandleFunc("/v1/registryz", s.handleRegistryz)
	if cfg.ModelPath != "" {
		if err := s.Reload(); err != nil {
			return nil, err
		}
	}
	go s.run()
	return s, nil
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) { s.mux.ServeHTTP(w, r) }

// Install wraps a fitted model in the degradation ladder and swaps it
// in as the served generation — the programmatic sibling of Reload,
// used by tests and the smoke harness. info describes the model for
// /v1/modelz (zero value is fine for unsaved models).
func (s *Server) Install(m ml.Regressor, info ml.ModelInfo) error {
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	return s.install(m, info)
}

// install builds and swaps a model state. Caller holds reloadMu.
// Tree-ensemble learners are flattened into the compiled arena here,
// once per generation, so every batch runs the cache-resident kernel;
// learners with no compiled form (baseline, linear, test doubles)
// serve their envelope unchanged.
func (s *Server) install(m ml.Regressor, info ml.ModelInfo) error {
	primary := m
	compiled := false
	if ce, ok := ml.Compile(m); ok {
		primary, compiled = ce, true
	}
	ladder, err := ml.NewDegradingPredictor(primary, nil, s.cfg.Outputs, s.cfg.Degrade)
	if err != nil {
		return err
	}
	if info.Name == "" {
		info.Name = m.Name()
	}
	st := &modelState{
		ladder:       ladder,
		info:         info,
		outputs:      s.cfg.Outputs,
		generation:   s.generation.Add(1),
		loadedUnixMs: obs.Now().UnixMilli(),
		compiled:     compiled,
	}
	s.model.Store(st)
	obs.Set("serve.model.generation", float64(st.generation))
	return nil
}

// ReloadFailure describes the most recent failed Reload for the
// introspection endpoints: when a reload does not take, the previous
// generation keeps serving and operators need to see both facts.
type ReloadFailure struct {
	Error string `json:"error"`
	// Kind classifies the failure ("corrupt", "missing", "other").
	Kind string `json:"kind"`
	// AtUnixMs is when the failed reload was attempted.
	AtUnixMs int64 `json:"at_unix_ms"`
	// Generation is the generation that kept serving through the
	// failure (0 before any load).
	Generation uint64 `json:"generation"`
}

// Reload atomically replaces the served model from cfg.ModelPath. On
// any failure — missing file, corrupt payload (ml.ErrChecksum),
// unknown learner — the previous generation keeps serving untouched
// and the failure is recorded for /v1/modelz until a reload succeeds.
func (s *Server) Reload() error {
	if s.cfg.ModelPath == "" {
		return errors.New("serve: no ModelPath configured; use Install")
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	m, info, err := ml.LoadModelFileInfo(s.cfg.ModelPath)
	if err != nil {
		err = fmt.Errorf("serve: reload %s: %w", s.cfg.ModelPath, err)
		s.recordReloadFailure(err)
		return err
	}
	if err := s.install(m, info); err != nil {
		s.recordReloadFailure(err)
		return err
	}
	s.lastReloadErr.Store(nil)
	obs.Inc("serve.reload.total")
	return nil
}

func (s *Server) recordReloadFailure(err error) {
	obs.Inc("serve.reload.fail.total")
	var gen uint64
	if st := s.state(); st != nil {
		gen = st.generation
	}
	s.lastReloadErr.Store(&ReloadFailure{
		Error:      err.Error(),
		Kind:       ErrKind(err),
		AtUnixMs:   obs.Now().UnixMilli(),
		Generation: gen,
	})
}

// LastReloadFailure returns the most recent failed Reload, or nil if
// the last reload succeeded (or none was attempted).
func (s *Server) LastReloadFailure() *ReloadFailure { return s.lastReloadErr.Load() }

// ErrKind classifies a load/reload error for operators: "corrupt"
// (checksum mismatch), "missing" (no such file), or "other".
func ErrKind(err error) string {
	switch {
	case err == nil:
		return ""
	case errors.Is(err, ml.ErrChecksum):
		return "corrupt"
	case errors.Is(err, fs.ErrNotExist):
		return "missing"
	default:
		return "other"
	}
}

// BeginDrain puts the server into draining mode: every subsequent
// /v1/predict is refused with 503 while already-admitted requests run
// to completion. Idempotent. The caller then shuts the http.Server
// down (which waits for in-flight handlers) and finally calls Close.
func (s *Server) BeginDrain() {
	if !s.draining.Swap(true) {
		obs.Inc("serve.drain.total")
	}
}

// Draining reports whether BeginDrain has been called.
func (s *Server) Draining() bool { return s.draining.Load() }

// Close stops the coalescer after it has answered everything still in
// the queue, and waits for it to exit. Call after the HTTP server has
// drained (all handlers returned); Close is idempotent.
func (s *Server) Close() {
	s.closeOnce.Do(func() { close(s.quit) })
	<-s.done
}

// state returns the current model generation, or nil before the first
// successful load.
func (s *Server) state() *modelState { return s.model.Load() }

// LadderMaxLevel reports the deepest degradation rung the served
// generation has reached since its last reset (ml.LevelPrimary when
// all traffic ran the primary, or before any model is loaded). The
// rollout driver's health gate reads it after a canary probe: a
// candidate that degrades where the incumbent did not fails the gate.
func (s *Server) LadderMaxLevel() int {
	if st := s.state(); st != nil {
		return st.ladder.MaxLevel()
	}
	return ml.LevelPrimary
}

// ResetLadderMaxLevel clears the degradation high-water mark, starting
// a fresh observation window on the current generation.
func (s *Server) ResetLadderMaxLevel() {
	if st := s.state(); st != nil {
		st.ladder.ResetMaxLevel()
	}
}

// Generation returns the served model generation (0 before a load).
func (s *Server) Generation() uint64 {
	if st := s.state(); st != nil {
		return st.generation
	}
	return 0
}
