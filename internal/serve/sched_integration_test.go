// Satellite integration test: the scheduler's Model-based placement
// (Algorithm 2) driven by predictions fetched from an in-process
// serving endpoint must make exactly the decisions it makes with
// direct in-memory predictions. Because the service is bitwise
// identical to the offline batch path, every job's RPV — and therefore
// every ranking, every placement, and every simulation metric — is
// byte-for-byte the same.
package serve_test

import (
	"context"
	"reflect"
	"testing"

	"crossarch/internal/arch"
	"crossarch/internal/ml"
	"crossarch/internal/rpv"
	"crossarch/internal/sched"
	"crossarch/internal/serve"
	"crossarch/internal/stats"
)

// buildWorkload synthesizes a schedulable job stream: positive
// per-machine runtimes, staggered arrivals, modest node counts. The
// Predicted field is left nil for the caller to fill from either
// prediction path.
func buildWorkload(n int, seed uint64) ([]*sched.Job, [][]float64) {
	rng := stats.NewRNG(seed)
	machines := len(arch.Names())
	jobs := make([]*sched.Job, n)
	features := make([][]float64, n)
	for i := range jobs {
		rts := make([]float64, machines)
		for k := range rts {
			rts[k] = rng.Range(30, 3000)
		}
		jobs[i] = &sched.Job{
			ID:       i,
			App:      "app",
			Arrival:  float64(i) * rng.Range(1, 20),
			Nodes:    1 + int(rng.Range(0, 8)),
			Runtimes: rts,
		}
		row := make([]float64, testFeatures)
		for j := range row {
			row[j] = rng.Range(-3, 3)
		}
		features[i] = row
	}
	return jobs, features
}

// attach copies predictions onto a fresh clone of the workload (Run
// mutates jobs, so each path needs its own).
func attach(jobs []*sched.Job, preds [][]float64) []*sched.Job {
	out := make([]*sched.Job, len(jobs))
	for i, j := range jobs {
		cp := *j
		cp.Predicted = rpv.RPV(preds[i])
		out[i] = &cp
	}
	return out
}

func TestModelBasedSchedulingViaService(t *testing.T) {
	model := trainModel(t, 60)
	_, client := newTestServer(t, model, serve.Config{})

	const numJobs = 120
	jobs, features := buildWorkload(numJobs, 61)

	direct := ml.PredictBatch(model, features)
	served, err := client.PredictBatch(context.Background(), features)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualBitwise(t, served, direct, "served workload predictions")

	run := func(preds [][]float64) (sched.Result, []int) {
		t.Helper()
		cluster := sched.NewCluster(arch.All())
		jj := attach(jobs, preds)
		res, err := sched.Run(jj, cluster, sched.NewModelBased(), sched.Params{})
		if err != nil {
			t.Fatal(err)
		}
		placements := make([]int, len(jj))
		for i, j := range jj {
			placements[i] = j.Machine
		}
		return res, placements
	}

	directRes, directPlace := run(direct)
	servedRes, servedPlace := run(served)

	if !reflect.DeepEqual(directPlace, servedPlace) {
		for i := range directPlace {
			if directPlace[i] != servedPlace[i] {
				t.Fatalf("job %d placed on machine %d via service, %d direct",
					jobs[i].ID, servedPlace[i], directPlace[i])
			}
		}
	}
	if !reflect.DeepEqual(directRes, servedRes) {
		t.Fatalf("simulation results diverge:\n service: %+v\n direct:  %+v", servedRes, directRes)
	}
	if directRes.CompletedJobs != numJobs {
		t.Fatalf("completed %d of %d jobs", directRes.CompletedJobs, numJobs)
	}

	// The placements must reflect the model, not a degenerate ranking:
	// at least two machines receive jobs in a 120-job stream.
	used := 0
	for _, n := range directRes.JobsPerMachine {
		if n > 0 {
			used++
		}
	}
	if used < 2 {
		t.Fatalf("model-based placement used %d machines: %v", used, directRes.JobsPerMachine)
	}
}
