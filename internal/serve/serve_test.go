// The tentpole's verification spine (ISSUE 5): an httptest-based e2e
// harness proving the batched service answers bitwise identically to
// the offline ml.PredictBatch path, request-validation and endpoint
// tables, and the reload error-kind contract. The concurrency hammer
// and drain/overflow load generator live in race_test.go.
package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"crossarch/internal/ml"
	"crossarch/internal/ml/xgboost"
	"crossarch/internal/obs"
	"crossarch/internal/serve"
	"crossarch/internal/stats"
)

const (
	testFeatures = 6
	testOutputs  = 4
)

// trainModel fits a small XGBoost model on a synthetic nonlinear
// response; all serving tests share its shape constants.
func trainModel(t testing.TB, seed uint64) *xgboost.Model {
	t.Helper()
	rng := stats.NewRNG(seed)
	const n = 150
	X := make([][]float64, n)
	Y := make([][]float64, n)
	for i := range X {
		x := make([]float64, testFeatures)
		for j := range x {
			x[j] = rng.Range(-3, 3)
		}
		y := make([]float64, testOutputs)
		for k := range y {
			y[k] = x[k%testFeatures] * float64(k+1)
			if x[(k+1)%testFeatures] > 0 {
				y[k] += 2
			}
		}
		X[i], Y[i] = x, y
	}
	m := xgboost.New(xgboost.Params{Rounds: 8, MaxDepth: 3, LearningRate: 0.3, Seed: seed})
	if err := m.Fit(X, Y); err != nil {
		t.Fatal(err)
	}
	return m
}

// testRows draws n valid feature rows.
func testRows(n int, seed uint64) [][]float64 {
	rng := stats.NewRNG(seed)
	rows := make([][]float64, n)
	for i := range rows {
		r := make([]float64, testFeatures)
		for j := range r {
			r[j] = rng.Range(-3, 3)
		}
		rows[i] = r
	}
	return rows
}

// newTestServer builds a serve.Server with the model installed, wraps
// it in httptest, and registers teardown in the right order (HTTP
// drain before coalescer close).
func newTestServer(t testing.TB, m ml.Regressor, cfg serve.Config) (*serve.Server, *serve.Client) {
	t.Helper()
	if cfg.Outputs == 0 {
		cfg.Outputs = testOutputs
	}
	if cfg.Features == 0 {
		cfg.Features = testFeatures
	}
	srv, err := serve.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if m != nil {
		if err := srv.Install(m, ml.ModelInfo{}); err != nil {
			t.Fatal(err)
		}
	}
	ts := httptest.NewServer(srv)
	t.Cleanup(func() {
		srv.BeginDrain()
		ts.Close()
		srv.Close()
	})
	return srv, &serve.Client{BaseURL: ts.URL, HTTP: ts.Client()}
}

// mustEqualBitwise fails unless two prediction matrices are exactly
// equal, bit for bit.
func mustEqualBitwise(t testing.TB, got, want [][]float64, msg string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: %d rows, want %d", msg, len(got), len(want))
	}
	for i := range got {
		if len(got[i]) != len(want[i]) {
			t.Fatalf("%s: row %d width %d, want %d", msg, i, len(got[i]), len(want[i]))
		}
		for j := range got[i] {
			// Exact float comparison is the contract under test.
			//lint:ignore floateq bitwise identity is the serving contract being asserted
			if got[i][j] != want[i][j] {
				t.Fatalf("%s: row %d col %d: %v != %v", msg, i, j, got[i][j], want[i][j])
			}
		}
	}
}

// TestServedBitwiseIdenticalToOffline is the core e2e equivalence: for
// any request shape, served predictions equal ml.PredictBatch on the
// same fitted model exactly.
func TestServedBitwiseIdenticalToOffline(t *testing.T) {
	model := trainModel(t, 1)
	_, client := newTestServer(t, model, serve.Config{})
	for _, n := range []int{1, 2, 7, 64, 200} {
		rows := testRows(n, uint64(n)+100)
		got, err := client.PredictBatch(context.Background(), rows)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		mustEqualBitwise(t, got, ml.PredictBatch(model, rows), "served vs offline")
	}
}

// TestRequestValidation drives the admission boundary: every malformed
// or oversized payload maps to its documented status code and no
// prediction work happens.
func TestRequestValidation(t *testing.T) {
	model := trainModel(t, 2)
	_, client := newTestServer(t, model, serve.Config{
		MaxRowsPerRequest: 8,
		MaxBodyBytes:      1 << 14,
	})
	base := client.BaseURL

	bigRows, err := json.Marshal(serve.PredictRequest{Rows: testRows(9, 3)})
	if err != nil {
		t.Fatal(err)
	}
	tests := []struct {
		name string
		body []byte
		want int
	}{
		{"malformed json", []byte(`{"rows": [[1,`), http.StatusBadRequest},
		{"empty rows", []byte(`{"rows": []}`), http.StatusBadRequest},
		{"no rows field", []byte(`{}`), http.StatusBadRequest},
		{"ragged rows", []byte(`{"rows": [[1,2,3,4,5,6],[1,2]]}`), http.StatusBadRequest},
		{"wrong width", []byte(`{"rows": [[1,2,3]]}`), http.StatusBadRequest},
		{"non-finite row", []byte(`{"rows": [[1,2,3,4,5,"NaN"]]}`), http.StatusBadRequest},
		{"row cap", bigRows, http.StatusRequestEntityTooLarge},
		{"oversized body", make([]byte, 1<<15), http.StatusRequestEntityTooLarge},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(base+"/v1/predict", "application/json", bytes.NewReader(tc.body))
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			if resp.StatusCode != tc.want {
				body, _ := io.ReadAll(resp.Body)
				t.Fatalf("status %d, want %d (body: %s)", resp.StatusCode, tc.want, body)
			}
			var er serve.ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil || er.Error == "" {
				t.Fatalf("error body not JSON with an error field: %v", err)
			}
		})
	}

	t.Run("method not allowed", func(t *testing.T) {
		resp, err := http.Get(base + "/v1/predict")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		if resp.StatusCode != http.StatusMethodNotAllowed {
			t.Fatalf("GET /v1/predict = %d, want 405", resp.StatusCode)
		}
	})
}

// TestHealthzModelzMetrics exercises the observability endpoints: the
// health states, the model metadata (name + checksum of the envelope
// on disk), and a well-formed obs snapshot containing the serving
// metrics.
func TestHealthzModelzMetrics(t *testing.T) {
	model := trainModel(t, 3)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := ml.SaveModelFile(path, model); err != nil {
		t.Fatal(err)
	}
	_, info, err := ml.LoadModelFileInfo(path)
	if err != nil {
		t.Fatal(err)
	}
	srv, client := newTestServer(t, nil, serve.Config{ModelPath: path})

	resp, err := http.Get(client.BaseURL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var hz serve.HealthzResponse
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK || hz.Status != "ok" || hz.Model != "xgboost" {
		t.Fatalf("healthz = %d %+v, want 200 ok/xgboost", resp.StatusCode, hz)
	}

	mz, err := client.Modelz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if mz.Model.Name != "xgboost" || mz.Model.Checksum != info.Checksum || mz.Model.Legacy {
		t.Fatalf("modelz model = %+v, want checksummed xgboost envelope %+v", mz.Model, info)
	}
	if mz.Outputs != testOutputs || mz.Generation == 0 || mz.LoadedUnixMs == 0 || mz.Path != path {
		t.Fatalf("modelz = %+v", mz)
	}
	if !strings.Contains(mz.Ladder, "degrading(xgboost->") {
		t.Fatalf("modelz ladder = %q", mz.Ladder)
	}
	if !mz.Compiled {
		t.Fatal("modelz reports the xgboost envelope uncompiled; tree ensembles must serve the compiled arena")
	}

	// One request so the serving metrics exist, then snapshot.
	if _, err := client.PredictBatch(context.Background(), testRows(3, 4)); err != nil {
		t.Fatal(err)
	}
	mresp, err := http.Get(client.BaseURL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer mresp.Body.Close()
	var snap obs.Snapshot
	if err := json.NewDecoder(mresp.Body).Decode(&snap); err != nil {
		t.Fatalf("metrics endpoint is not a parsable snapshot: %v", err)
	}
	if snap.SchemaVersion != obs.SnapshotSchemaVersion {
		t.Fatalf("snapshot schema %d, want %d", snap.SchemaVersion, obs.SnapshotSchemaVersion)
	}
	if snap.Counters["serve.requests.total"] < 1 || snap.Counters["serve.rows.total"] < 3 {
		t.Fatalf("serving counters missing from snapshot: %v", snap.Counters)
	}
	if _, ok := snap.Histograms["serve.batch.rows"]; !ok {
		t.Fatalf("serve.batch.rows histogram missing: %v", snap.Histograms)
	}
	_ = srv
}

// TestReloadErrorKinds pins the reload contract: a corrupt model file
// is refused (kind "corrupt", errors.Is ml.ErrChecksum), a missing
// file likewise ("missing"), and in both cases the previous generation
// keeps serving bitwise-unchanged.
func TestReloadErrorKinds(t *testing.T) {
	model := trainModel(t, 5)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := ml.SaveModelFile(path, model); err != nil {
		t.Fatal(err)
	}
	srv, client := newTestServer(t, nil, serve.Config{ModelPath: path})
	rows := testRows(5, 6)
	want := ml.PredictBatch(model, rows)

	intact, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	corrupt := bytes.Replace(intact, []byte(`"payload":{`), []byte(`"payload":{ `), 1)
	if bytes.Equal(corrupt, intact) {
		t.Fatal("corruption produced identical bytes")
	}

	tests := []struct {
		name     string
		prep     func() error
		wantKind string
		checksum bool
	}{
		{"corrupt file", func() error { return os.WriteFile(path, corrupt, 0o644) }, "corrupt", true},
		{"missing file", func() error { return os.Remove(path) }, "missing", false},
	}
	for _, tc := range tests {
		t.Run(tc.name, func(t *testing.T) {
			if err := tc.prep(); err != nil {
				t.Fatal(err)
			}
			err := srv.Reload()
			if err == nil {
				t.Fatal("reload of a bad file succeeded")
			}
			if got := serve.ErrKind(err); got != tc.wantKind {
				t.Fatalf("ErrKind = %q, want %q (err: %v)", got, tc.wantKind, err)
			}
			if errors.Is(err, ml.ErrChecksum) != tc.checksum {
				t.Fatalf("errors.Is(ErrChecksum) = %v, want %v", !tc.checksum, tc.checksum)
			}

			// The reload endpoint reports the same classification.
			resp, err := http.Post(client.BaseURL+"/v1/reload", "application/json", nil)
			if err != nil {
				t.Fatal(err)
			}
			defer resp.Body.Close()
			var er serve.ErrorResponse
			if err := json.NewDecoder(resp.Body).Decode(&er); err != nil {
				t.Fatal(err)
			}
			if resp.StatusCode != http.StatusInternalServerError || er.Kind != tc.wantKind {
				t.Fatalf("reload endpoint = %d kind %q, want 500 %q", resp.StatusCode, er.Kind, tc.wantKind)
			}

			// The old generation keeps serving, bitwise unchanged.
			got, err := client.PredictBatch(context.Background(), rows)
			if err != nil {
				t.Fatal(err)
			}
			mustEqualBitwise(t, got, want, "serving after failed reload")
		})
	}
}

// TestHotReloadSwapsAtomically overwrites the model file and reloads:
// the next responses are the new model's, bitwise — and the generation
// counter records the swap.
func TestHotReloadSwapsAtomically(t *testing.T) {
	modelA := trainModel(t, 7)
	modelB := trainModel(t, 8)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := ml.SaveModelFile(path, modelA); err != nil {
		t.Fatal(err)
	}
	srv, client := newTestServer(t, nil, serve.Config{ModelPath: path})
	rows := testRows(9, 9)

	got, err := client.PredictBatch(context.Background(), rows)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualBitwise(t, got, ml.PredictBatch(modelA, rows), "pre-reload")
	before, err := client.Modelz(context.Background())
	if err != nil {
		t.Fatal(err)
	}

	if err := ml.SaveModelFile(path, modelB); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	got, err = client.PredictBatch(context.Background(), rows)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualBitwise(t, got, ml.PredictBatch(modelB, rows), "post-reload")
	after, err := client.Modelz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if after.Generation != before.Generation+1 || after.Model.Checksum == before.Model.Checksum {
		t.Fatalf("generations %d -> %d, checksums %q -> %q", before.Generation, after.Generation,
			before.Model.Checksum, after.Model.Checksum)
	}
}

// panicModel's Predict always panics — the organic fault the ladder
// must absorb.
type panicModel struct{}

func (panicModel) Fit(X, Y [][]float64) error { return nil }
func (panicModel) Predict(x []float64) []float64 {
	panic("serve_test: model exploded")
}
func (panicModel) Name() string { return "panic-model" }

// TestPanickingModelDegradesInsteadOf500 proves the ladder routing: a
// model that panics on every row still answers 200, with the identity
// RPV (all ones) — faults degrade, they do not fail requests.
func TestPanickingModelDegradesInsteadOf500(t *testing.T) {
	_, client := newTestServer(t, panicModel{}, serve.Config{})
	rows := testRows(4, 10)
	got, err := client.PredictBatch(context.Background(), rows)
	if err != nil {
		t.Fatalf("panicking model must still answer: %v", err)
	}
	for i, row := range got {
		for j, v := range row {
			//lint:ignore floateq identity floor is exactly 1.0 by construction
			if v != 1.0 {
				t.Fatalf("row %d col %d = %v, want identity 1.0", i, j, v)
			}
		}
	}
}

// TestRequestDeadline arms a tiny per-request timeout against a model
// that blocks: the handler must answer 503 instead of hanging.
func TestRequestDeadline(t *testing.T) {
	gate := make(chan struct{})
	defer close(gate)
	_, client := newTestServer(t, &blockingModel{gate: gate}, serve.Config{
		RequestTimeout: 50 * time.Millisecond,
	})
	_, err := client.PredictBatch(context.Background(), testRows(1, 11))
	var se *serve.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("deadline request err = %v, want 503 StatusError", err)
	}
}

// blockingModel blocks every Predict until its gate closes.
type blockingModel struct{ gate chan struct{} }

func (b *blockingModel) Fit(X, Y [][]float64) error { return nil }
func (b *blockingModel) Name() string               { return "blocking-model" }
func (b *blockingModel) Predict(x []float64) []float64 {
	<-b.gate
	out := make([]float64, testOutputs)
	for i := range out {
		out[i] = 1
	}
	return out
}

// TestNoModel503 covers the not-yet-ready states.
func TestNoModel503(t *testing.T) {
	_, client := newTestServer(t, nil, serve.Config{})
	_, err := client.PredictBatch(context.Background(), testRows(1, 12))
	var se *serve.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("no-model predict err = %v, want 503", err)
	}
	if _, err := client.Modelz(context.Background()); err == nil {
		t.Fatal("no-model modelz should 503")
	}
}
