// Client-side overload handling (the PR's bugfix satellite): bounded
// 429 retry honoring Retry-After, the single-shot default, and the
// /v1/loadz per-replica introspection endpoint the cluster router's
// fleet dashboards read.
package serve_test

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"

	"crossarch/internal/fault"
	"crossarch/internal/ml"
	"crossarch/internal/serve"
)

// flakyOverloadHandler answers 429 (with a Retry-After hint) until
// `fail` requests have been seen, then delegates to ok.
type flakyOverloadHandler struct {
	fail  int64
	seen  atomic.Int64
	after string
	ok    http.Handler
}

func (h *flakyOverloadHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if h.seen.Add(1) <= h.fail {
		if h.after != "" {
			w.Header().Set("Retry-After", h.after)
		}
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		_ = json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "queue full"})
		return
	}
	h.ok.ServeHTTP(w, r)
}

// TestClientRetriesOverload is the regression test for the client's
// historic behaviour of failing outright on a 429 a later attempt
// would have served: two overload answers followed by a real server
// must succeed within the retry budget, sleeping the server's
// Retry-After hint (not the shorter backoff step) between attempts.
func TestClientRetriesOverload(t *testing.T) {
	model := trainModel(t, 21)
	// The flaky front answers 429 twice, then delegates straight into
	// the real server's handler — the success path is the full serving
	// stack, so the retried answer is held to the bitwise contract.
	srv, _ := newTestServer(t, model, serve.Config{})
	flaky := &flakyOverloadHandler{fail: 2, after: "2", ok: srv}
	proxy := httptest.NewServer(flaky)
	defer proxy.Close()

	var slept []float64
	client := &serve.Client{
		BaseURL:    proxy.URL,
		HTTP:       proxy.Client(),
		Retry:      &fault.Backoff{Retries: 4, Base: 0.01, Factor: 2, Max: 1},
		RetrySleep: func(s float64) { slept = append(slept, s) },
	}
	rows := testRows(5, 77)
	got, err := client.PredictBatch(context.Background(), rows)
	if err != nil {
		t.Fatalf("retrying client failed: %v", err)
	}
	mustEqualBitwise(t, got, ml.PredictBatch(model, rows), "retried vs offline")
	if len(slept) != 2 {
		t.Fatalf("slept %d times, want 2 (one per 429)", len(slept))
	}
	for i, s := range slept {
		//lint:ignore floateq Retry-After of exactly 2s must win over the sub-second backoff step
		if s != 2 {
			t.Fatalf("sleep %d = %v, want the 2s Retry-After hint", i, s)
		}
	}
}

// TestClientRetryExhaustion pins the bounded budget: a permanently
// overloaded server exhausts the attempts and the final error keeps
// the 429 visible via errors.As.
func TestClientRetryExhaustion(t *testing.T) {
	always := &flakyOverloadHandler{fail: 1 << 30}
	ts := httptest.NewServer(always)
	defer ts.Close()
	clock := &fault.Clock{}
	client := &serve.Client{
		BaseURL:    ts.URL,
		HTTP:       ts.Client(),
		Retry:      &fault.Backoff{Retries: 3, Base: 0.01, Factor: 2, Max: 1},
		RetryClock: clock,
	}
	_, err := client.PredictBatch(context.Background(), testRows(1, 78))
	if err == nil {
		t.Fatal("permanently overloaded server must exhaust the budget")
	}
	if !strings.Contains(err.Error(), "attempts exhausted") {
		t.Fatalf("exhaustion error: %v", err)
	}
	var se *serve.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusTooManyRequests {
		t.Fatalf("final error must unwrap to the 429: %v", err)
	}
	if got := always.seen.Load(); got != 4 {
		t.Fatalf("server saw %d attempts, want 4 (Retries 3 + the first)", got)
	}
}

// TestClientDoesNotRetryNonOverload pins the guard: a 400 is returned
// immediately even with retry configured — only the explicitly
// retryable overload answer is re-attempted.
func TestClientDoesNotRetryNonOverload(t *testing.T) {
	var seen atomic.Int64
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		seen.Add(1)
		w.WriteHeader(http.StatusBadRequest)
		_ = json.NewEncoder(w).Encode(serve.ErrorResponse{Error: "bad rows"})
	}))
	defer ts.Close()
	client := &serve.Client{
		BaseURL: ts.URL,
		HTTP:    ts.Client(),
		Retry:   &fault.Backoff{Retries: 5},
	}
	_, err := client.PredictBatch(context.Background(), testRows(1, 79))
	var se *serve.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusBadRequest {
		t.Fatalf("want immediate 400, got %v", err)
	}
	if got := seen.Load(); got != 1 {
		t.Fatalf("server saw %d attempts for a 400, want 1", got)
	}
}

// TestRetryAfterParsing pins the header plumbing: readStatusError must
// surface the server's numeric Retry-After on the typed error.
func TestRetryAfterParsing(t *testing.T) {
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Retry-After", "1.5")
		w.WriteHeader(http.StatusTooManyRequests)
	}))
	defer ts.Close()
	client := &serve.Client{BaseURL: ts.URL, HTTP: ts.Client()}
	_, err := client.PredictBatch(context.Background(), testRows(1, 80))
	var se *serve.StatusError
	if !errors.As(err, &se) {
		t.Fatalf("want StatusError, got %v", err)
	}
	//lint:ignore floateq header value decodes exactly
	if se.RetryAfterSec != 1.5 || !se.Retryable() {
		t.Fatalf("parsed %+v", se)
	}
}

// TestLoadzEndpoint pins the per-replica introspection contract: queue
// capacity is reported, accepted counts accumulate, and an in-flight
// request is visible while it is pinned inside the model.
func TestLoadzEndpoint(t *testing.T) {
	inner := trainModel(t, 22)
	gm := &gatedModel{inner: inner, gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	_, client := newTestServer(t, gm, serve.Config{QueueCap: 17})

	lz, err := client.Loadz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if lz.QueueCap != 17 || lz.InFlight != 0 || lz.Accepted != 0 || lz.Draining {
		t.Fatalf("idle loadz: %+v", lz)
	}
	if lz.Generation == 0 {
		t.Fatal("loadz must report the installed model generation")
	}

	done := make(chan error, 1)
	go func() {
		_, err := client.PredictBatch(context.Background(), testRows(1, 81))
		done <- err
	}()
	<-gm.entered // the request is now pinned inside Predict
	lz, err = client.Loadz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if lz.InFlight != 1 || lz.Accepted != 1 {
		t.Fatalf("pinned loadz: %+v", lz)
	}
	close(gm.gate)
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	lz, err = client.Loadz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if lz.InFlight != 0 || lz.Accepted != 1 {
		t.Fatalf("drained loadz: %+v", lz)
	}
}
