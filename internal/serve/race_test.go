// The tentpole's concurrency spine: a -race hammer that drives the
// coalescer from dozens of goroutines with every caller asserting
// bitwise correctness of its own rows, plus the deterministic
// load-generator tests for the 429 / drain / reload invariants. The
// gated model pins the dispatcher inside a batch so queue overflow
// and in-flight-during-reload states are reached by construction, not
// by timing luck.
package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"crossarch/internal/ml"
	"crossarch/internal/obs"
	"crossarch/internal/serve"
)

// gatedModel wraps a fitted model: every Predict announces itself on
// entered (non-blocking) and then parks until the gate closes. It lets
// a test hold the dispatcher mid-batch deterministically.
type gatedModel struct {
	inner   ml.Regressor
	gate    chan struct{}
	entered chan struct{}
}

func (g *gatedModel) Fit(X, Y [][]float64) error { return g.inner.Fit(X, Y) }
func (g *gatedModel) Name() string               { return g.inner.Name() }
func (g *gatedModel) Predict(x []float64) []float64 {
	select {
	case g.entered <- struct{}{}:
	default:
	}
	<-g.gate
	return g.inner.Predict(x)
}

// queueDepth reads the serve.queue.depth gauge from the process-global
// registry. Only this package's server writes it, and tests here do
// not run in parallel, so the reading is unambiguous.
func queueDepth() float64 {
	return obs.TakeSnapshot().Gauges["serve.queue.depth"]
}

// waitQueueDepth polls the gauge until it reaches want.
func waitQueueDepth(t *testing.T, want float64) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if queueDepth() == want {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("queue depth never reached %v (now %v)", want, queueDepth())
}

// TestConcurrentHammerBitwise floods the coalescer from 32 goroutines,
// each firing a stream of differently-shaped requests and asserting
// its own rows come back bitwise identical to the offline path —
// micro-batching with strangers must never perturb anyone's floats.
// Run under -race this is also the coalescer's data-race gate.
func TestConcurrentHammerBitwise(t *testing.T) {
	model := trainModel(t, 20)
	_, client := newTestServer(t, model, serve.Config{
		MaxBatch: 32,
		MaxWait:  500 * time.Microsecond,
	})

	const goroutines = 32
	const perG = 12
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				n := 1 + (g+i)%9
				rows := testRows(n, uint64(1000+g*perG+i))
				want := ml.PredictBatch(model, rows)
				got, err := client.PredictBatch(context.Background(), rows)
				if err != nil {
					errCh <- err
					return
				}
				for r := range got {
					for c := range got[r] {
						if got[r][c] != want[r][c] {
							errCh <- errors.New("served row diverged from offline prediction under concurrency")
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
}

// TestQueueOverflow429 reaches the overflow state by construction: the
// gate pins the dispatcher inside request A's batch, request B fills
// the one-slot queue, so a probe MUST be rejected with 429 and a
// Retry-After hint. Both admitted requests still complete bitwise
// correct after release.
func TestQueueOverflow429(t *testing.T) {
	inner := trainModel(t, 21)
	gm := &gatedModel{inner: inner, gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	_, client := newTestServer(t, gm, serve.Config{
		MaxBatch: 1,
		QueueCap: 1,
		MaxWait:  100 * time.Microsecond,
	})

	rowsA, rowsB := testRows(1, 30), testRows(1, 31)
	type answer struct {
		preds [][]float64
		err   error
	}
	fire := func(rows [][]float64) chan answer {
		ch := make(chan answer, 1)
		go func() {
			preds, err := client.PredictBatch(context.Background(), rows)
			ch <- answer{preds, err}
		}()
		return ch
	}

	chA := fire(rowsA)
	select {
	case <-gm.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("dispatcher never entered the gated batch")
	}
	// Dispatcher is parked inside A's batch and has already published
	// depth 0; the only remaining gauge writer is B's handler.
	chB := fire(rowsB)
	waitQueueDepth(t, 1)

	// Queue full, dispatcher pinned: the probe must bounce.
	body, err := json.Marshal(serve.PredictRequest{Rows: testRows(1, 32)})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(client.BaseURL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow probe = %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without a Retry-After hint")
	}

	close(gm.gate)
	for _, tc := range []struct {
		ch   chan answer
		rows [][]float64
		name string
	}{{chA, rowsA, "pinned request"}, {chB, rowsB, "queued request"}} {
		select {
		case a := <-tc.ch:
			if a.err != nil {
				t.Fatalf("%s failed after release: %v", tc.name, a.err)
			}
			mustEqualBitwise(t, a.preds, ml.PredictBatch(inner, tc.rows), tc.name)
		case <-time.After(5 * time.Second):
			t.Fatalf("%s never completed after release", tc.name)
		}
	}
}

// TestDrainUnderLoad asserts the drain contract: once BeginDrain is
// called, new requests bounce with 503 + Retry-After and healthz turns
// unhealthy, while the pinned in-flight request and the already-queued
// request BOTH finish with bitwise-correct answers — an accepted
// request is never dropped by a drain.
func TestDrainUnderLoad(t *testing.T) {
	inner := trainModel(t, 22)
	gm := &gatedModel{inner: inner, gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	srv, client := newTestServer(t, gm, serve.Config{
		MaxBatch: 1,
		QueueCap: 4,
		MaxWait:  100 * time.Microsecond,
	})

	rowsA, rowsB := testRows(2, 40), testRows(3, 41)
	type answer struct {
		preds [][]float64
		err   error
	}
	fire := func(rows [][]float64) chan answer {
		ch := make(chan answer, 1)
		go func() {
			preds, err := client.PredictBatch(context.Background(), rows)
			ch <- answer{preds, err}
		}()
		return ch
	}

	chA := fire(rowsA)
	select {
	case <-gm.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("dispatcher never entered the gated batch")
	}
	chB := fire(rowsB)
	waitQueueDepth(t, 1)

	srv.BeginDrain()

	_, err := client.PredictBatch(context.Background(), testRows(1, 42))
	var se *serve.StatusError
	if !errors.As(err, &se) || se.Code != http.StatusServiceUnavailable {
		t.Fatalf("post-drain request err = %v, want 503", err)
	}
	hresp, err := http.Get(client.BaseURL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hresp.Body.Close()
	var hz serve.HealthzResponse
	if err := json.NewDecoder(hresp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	if hresp.StatusCode != http.StatusServiceUnavailable || hz.Status != "draining" {
		t.Fatalf("draining healthz = %d %+v, want 503 draining", hresp.StatusCode, hz)
	}

	close(gm.gate)
	for _, tc := range []struct {
		ch   chan answer
		rows [][]float64
		name string
	}{{chA, rowsA, "in-flight request"}, {chB, rowsB, "queued request"}} {
		select {
		case a := <-tc.ch:
			if a.err != nil {
				t.Fatalf("%s dropped by drain: %v", tc.name, a.err)
			}
			mustEqualBitwise(t, a.preds, ml.PredictBatch(inner, tc.rows), tc.name+" during drain")
		case <-time.After(5 * time.Second):
			t.Fatalf("%s never completed during drain", tc.name)
		}
	}
	// Close must return promptly now that the queue is empty.
	srv.Close()
}

// TestReloadUnderLoad pins a batch on the old model, hot-reloads to a
// new envelope mid-flight, and asserts the generation capture: the
// pinned batch finishes on the OLD weights while the next request is
// served by the new ones, both bitwise.
func TestReloadUnderLoad(t *testing.T) {
	modelOld := trainModel(t, 23)
	modelNew := trainModel(t, 24)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := ml.SaveModelFile(path, modelOld); err != nil {
		t.Fatal(err)
	}
	gm := &gatedModel{inner: modelOld, gate: make(chan struct{}), entered: make(chan struct{}, 1)}
	srv, client := newTestServer(t, nil, serve.Config{
		ModelPath: path,
		MaxBatch:  1,
		MaxWait:   100 * time.Microsecond,
	})
	// Replace the file-loaded model with the gated wrapper around the
	// same weights so the in-flight batch can be held open.
	if err := srv.Install(gm, ml.ModelInfo{Name: gm.Name()}); err != nil {
		t.Fatal(err)
	}

	rowsA := testRows(2, 50)
	type answer struct {
		preds [][]float64
		err   error
	}
	ch := make(chan answer, 1)
	go func() {
		preds, err := client.PredictBatch(context.Background(), rowsA)
		ch <- answer{preds, err}
	}()
	select {
	case <-gm.entered:
	case <-time.After(5 * time.Second):
		t.Fatal("dispatcher never entered the gated batch")
	}

	// Swap the envelope on disk and reload while the batch is pinned.
	if err := ml.SaveModelFile(path, modelNew); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}

	close(gm.gate)
	select {
	case a := <-ch:
		if a.err != nil {
			t.Fatal(a.err)
		}
		mustEqualBitwise(t, a.preds, ml.PredictBatch(modelOld, rowsA), "in-flight batch on old weights")
	case <-time.After(5 * time.Second):
		t.Fatal("pinned request never completed after reload")
	}

	rowsB := testRows(3, 51)
	got, err := client.PredictBatch(context.Background(), rowsB)
	if err != nil {
		t.Fatal(err)
	}
	mustEqualBitwise(t, got, ml.PredictBatch(modelNew, rowsB), "post-reload request on new weights")
}

// TestLoadGeneratorAccounting runs a mixed open-loop load against a
// deliberately tiny queue and checks the global invariant: every
// request is answered exactly once — 200 with bitwise-correct rows, or
// 429 with Retry-After — and the two tallies sum to the offered load.
func TestLoadGeneratorAccounting(t *testing.T) {
	model := trainModel(t, 25)
	_, client := newTestServer(t, model, serve.Config{
		MaxBatch: 4,
		QueueCap: 2,
		MaxWait:  200 * time.Microsecond,
	})

	const goroutines = 16
	const perG = 10
	var ok, rejected atomic.Int64
	var wg sync.WaitGroup
	errCh := make(chan error, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < perG; i++ {
				rows := testRows(1+(g+i)%4, uint64(2000+g*perG+i))
				got, err := client.PredictBatch(context.Background(), rows)
				if err != nil {
					var se *serve.StatusError
					if errors.As(err, &se) && se.Code == http.StatusTooManyRequests {
						rejected.Add(1)
						continue
					}
					errCh <- err
					return
				}
				ok.Add(1)
				want := ml.PredictBatch(model, rows)
				for r := range got {
					for c := range got[r] {
						if got[r][c] != want[r][c] {
							errCh <- errors.New("accepted request returned non-bitwise rows under load")
							return
						}
					}
				}
			}
		}(g)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}
	if total := ok.Load() + rejected.Load(); total != goroutines*perG {
		t.Fatalf("answered %d of %d offered requests", total, goroutines*perG)
	}
	if ok.Load() == 0 {
		t.Fatal("load generator saw zero accepted requests")
	}
	t.Logf("offered %d: %d served, %d rejected 429", goroutines*perG, ok.Load(), rejected.Load())
}
