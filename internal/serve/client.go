package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// Client is a minimal typed client for the prediction service, used by
// the scheduler integration path (predictions fetched over HTTP
// instead of an in-process model call) and the smoke harness.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport; nil means http.DefaultClient.
	HTTP *http.Client
}

// StatusError is a non-2xx server answer, preserving the code so
// callers can branch on 429 vs 400 vs 503.
type StatusError struct {
	Code    int
	Message string
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: %d %s: %s", e.Code, http.StatusText(e.Code), e.Message)
}

// pooledClient is the default transport: http.DefaultTransport keeps
// only two idle connections per host, which forces a reconnect storm
// the moment more than two callers hammer one server. The scheduler
// integration path is exactly that shape, so the default client gets
// a deeper idle pool.
var pooledClient = func() *http.Client {
	tr, ok := http.DefaultTransport.(*http.Transport)
	if !ok {
		return http.DefaultClient
	}
	t := tr.Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 256
	return &http.Client{Transport: t}
}()

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return pooledClient
}

// PredictBatch posts rows to /v1/predict and returns the predictions
// in row order — the remote twin of ml.PredictBatch. Request encoding
// and response decoding run through the same fast codec as the
// server, with the stdlib fallback preserving semantics for anything
// off the canonical shape.
func (c *Client) PredictBatch(rows [][]float64) ([][]float64, error) {
	reqBuf := getJSONBuf()
	body, ok := appendPredictRequest((*reqBuf)[:0], rows)
	*reqBuf = body[:0]
	if !ok {
		putJSONBuf(reqBuf)
		var err error
		if body, err = json.Marshal(PredictRequest{Rows: rows}); err != nil {
			return nil, fmt.Errorf("serve: encoding request: %w", err)
		}
		reqBuf = nil
	}
	resp, err := c.httpClient().Post(c.BaseURL+"/v1/predict", "application/json", bytes.NewReader(body))
	if reqBuf != nil {
		// Post has fully consumed (or abandoned) the body by now.
		putJSONBuf(reqBuf)
	}
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readStatusError(resp)
	}
	respBuf := getJSONBuf()
	data, err := readAll((*respBuf)[:0], resp.Body)
	*respBuf = data[:0]
	if err != nil {
		putJSONBuf(respBuf)
		return nil, fmt.Errorf("serve: decoding response: %w", err)
	}
	var preds [][]float64
	if _, p, ok := fastDecodePredictResponse(data); ok {
		preds = p
	} else {
		var pr PredictResponse
		if err := json.NewDecoder(bytes.NewReader(data)).Decode(&pr); err != nil {
			putJSONBuf(respBuf)
			return nil, fmt.Errorf("serve: decoding response: %w", err)
		}
		preds = pr.Predictions
	}
	putJSONBuf(respBuf)
	if len(preds) != len(rows) {
		return nil, fmt.Errorf("serve: got %d predictions for %d rows", len(preds), len(rows))
	}
	return preds, nil
}

// Modelz fetches the served model's metadata.
func (c *Client) Modelz() (ModelzResponse, error) {
	resp, err := c.httpClient().Get(c.BaseURL + "/v1/modelz")
	if err != nil {
		return ModelzResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ModelzResponse{}, readStatusError(resp)
	}
	var mz ModelzResponse
	if err := json.NewDecoder(resp.Body).Decode(&mz); err != nil {
		return ModelzResponse{}, fmt.Errorf("serve: decoding modelz: %w", err)
	}
	return mz, nil
}

// readStatusError turns a non-2xx response into a StatusError, using
// the JSON error body when the server sent one.
func readStatusError(resp *http.Response) error {
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var er ErrorResponse
	if json.Unmarshal(data, &er) == nil && er.Error != "" {
		return &StatusError{Code: resp.StatusCode, Message: er.Error}
	}
	return &StatusError{Code: resp.StatusCode, Message: string(bytes.TrimSpace(data))}
}
