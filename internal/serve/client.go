package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"crossarch/internal/fault"
	"crossarch/internal/obs"
)

// Client is a minimal typed client for the prediction service, used by
// the scheduler integration path (predictions fetched over HTTP
// instead of an in-process model call), the cluster router's replica
// adapters, and the smoke harness.
type Client struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// HTTP is the transport; nil means a pooled default client.
	HTTP *http.Client

	// Retry, when non-nil, transparently re-attempts a request the
	// server answered with 429, up to the backoff's attempt budget. The
	// delay before each re-attempt is the larger of the backoff schedule
	// and the server's Retry-After hint, so a client behind an
	// overloaded replica waits the server-advertised turnover window
	// instead of hammering a full queue. Any other failure (4xx, 5xx,
	// transport error) is returned immediately — only the explicitly
	// retryable overload answer is retried. Nil preserves the historic
	// single-shot behaviour.
	Retry *fault.Backoff
	// RetryClock is the simulated clock retry delays are recorded on
	// when RetrySleep is nil (nil-safe: delays are counted in obs and no
	// wall time passes — the deterministic default for tests and the
	// in-process fleets).
	RetryClock *fault.Clock
	// RetrySleep, when set, is called with each retry delay in seconds
	// instead of RetryClock; a wall-clock deployment passes a real
	// sleep here.
	RetrySleep func(seconds float64)
}

// StatusError is a non-2xx server answer, preserving the code so
// callers can branch on 429 vs 400 vs 503.
type StatusError struct {
	Code    int
	Message string
	// RetryAfterSec is the server's Retry-After hint in seconds
	// (0 when the response carried none).
	RetryAfterSec float64
}

func (e *StatusError) Error() string {
	return fmt.Sprintf("serve: %d %s: %s", e.Code, http.StatusText(e.Code), e.Message)
}

// Retryable reports whether the error is a 429 overload answer — the
// one status a client may safely re-attempt without changing semantics
// (the request was never admitted).
func (e *StatusError) Retryable() bool { return e.Code == http.StatusTooManyRequests }

// pooledClient is the default transport: http.DefaultTransport keeps
// only two idle connections per host, which forces a reconnect storm
// the moment more than two callers hammer one server. The scheduler
// integration path is exactly that shape, so the default client gets
// a deeper idle pool.
var pooledClient = func() *http.Client {
	tr, ok := http.DefaultTransport.(*http.Transport)
	if !ok {
		return http.DefaultClient
	}
	t := tr.Clone()
	t.MaxIdleConns = 256
	t.MaxIdleConnsPerHost = 256
	return &http.Client{Transport: t}
}()

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return pooledClient
}

// PredictBatch posts rows to /v1/predict and returns the predictions
// in row order — the remote twin of ml.PredictBatch. The context
// bounds the whole call including retries: cancellation or deadline
// expiry aborts the in-flight request and stops the backoff loop, so a
// caller that hung up is never retried on behalf of. Request encoding
// and response decoding run through the same fast codec as the server,
// with the stdlib fallback preserving semantics for anything off the
// canonical shape. With Retry configured, 429 answers are re-attempted
// on the backoff schedule (honoring Retry-After); every other outcome
// is single-shot.
func (c *Client) PredictBatch(ctx context.Context, rows [][]float64) ([][]float64, error) {
	if c.Retry == nil {
		return c.predictOnce(ctx, rows)
	}
	b := *c.Retry
	attempts := b.Attempts()
	var lastErr error
	for attempt := 0; attempt < attempts; attempt++ {
		preds, err := c.predictOnce(ctx, rows)
		if err == nil {
			return preds, nil
		}
		var se *StatusError
		if !errors.As(err, &se) || !se.Retryable() {
			return nil, err
		}
		lastErr = err
		if attempt+1 >= attempts {
			break
		}
		if ctx.Err() != nil {
			return nil, fmt.Errorf("serve: retry abandoned: %w", ctx.Err())
		}
		delay := b.Delay(attempt + 1)
		if se.RetryAfterSec > delay {
			delay = se.RetryAfterSec
		}
		obs.Inc("serve.client.retry.total")
		if c.RetrySleep != nil {
			c.RetrySleep(delay)
		} else {
			c.RetryClock.Sleep(delay)
		}
	}
	return nil, fmt.Errorf("serve: %d attempts exhausted: %w", attempts, lastErr)
}

// predictOnce is the single-shot request/response cycle behind
// PredictBatch.
func (c *Client) predictOnce(ctx context.Context, rows [][]float64) ([][]float64, error) {
	reqBuf := getJSONBuf()
	body, ok := appendPredictRequest((*reqBuf)[:0], rows)
	*reqBuf = body[:0]
	if !ok {
		putJSONBuf(reqBuf)
		var err error
		if body, err = json.Marshal(PredictRequest{Rows: rows}); err != nil {
			return nil, fmt.Errorf("serve: encoding request: %w", err)
		}
		reqBuf = nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		if reqBuf != nil {
			putJSONBuf(reqBuf)
		}
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if reqBuf != nil {
		// Do has fully consumed (or abandoned) the body by now.
		putJSONBuf(reqBuf)
	}
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readStatusError(resp)
	}
	respBuf := getJSONBuf()
	data, err := readAll((*respBuf)[:0], resp.Body)
	*respBuf = data[:0]
	if err != nil {
		putJSONBuf(respBuf)
		return nil, fmt.Errorf("serve: decoding response: %w", err)
	}
	var preds [][]float64
	if _, p, ok := fastDecodePredictResponse(data); ok {
		preds = p
	} else {
		var pr PredictResponse
		if err := json.NewDecoder(bytes.NewReader(data)).Decode(&pr); err != nil {
			putJSONBuf(respBuf)
			return nil, fmt.Errorf("serve: decoding response: %w", err)
		}
		preds = pr.Predictions
	}
	putJSONBuf(respBuf)
	if len(preds) != len(rows) {
		return nil, fmt.Errorf("serve: got %d predictions for %d rows", len(preds), len(rows))
	}
	return preds, nil
}

// PredictLabeled posts rows together with their true targets, feeding
// the server's shadow evaluation window while returning the incumbent's
// predictions exactly as PredictBatch would. Labeled requests take the
// stdlib codec deliberately — they are shadow-evidence traffic, not the
// hot path — and are never retried: a replayed labeled batch would
// count its rows into the shadow window twice.
func (c *Client) PredictLabeled(ctx context.Context, rows, targets [][]float64) ([][]float64, error) {
	body, err := json.Marshal(PredictRequest{Rows: rows, Targets: targets})
	if err != nil {
		return nil, fmt.Errorf("serve: encoding labeled request: %w", err)
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/predict", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, readStatusError(resp)
	}
	var pr PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		return nil, fmt.Errorf("serve: decoding response: %w", err)
	}
	if len(pr.Predictions) != len(rows) {
		return nil, fmt.Errorf("serve: got %d predictions for %d rows", len(pr.Predictions), len(rows))
	}
	return pr.Predictions, nil
}

// get issues a context-bound GET against a server endpoint.
func (c *Client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+path, nil)
	if err != nil {
		return nil, err
	}
	return c.httpClient().Do(req)
}

// Modelz fetches the served model's metadata.
func (c *Client) Modelz(ctx context.Context) (ModelzResponse, error) {
	resp, err := c.get(ctx, "/v1/modelz")
	if err != nil {
		return ModelzResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return ModelzResponse{}, readStatusError(resp)
	}
	var mz ModelzResponse
	if err := json.NewDecoder(resp.Body).Decode(&mz); err != nil {
		return ModelzResponse{}, fmt.Errorf("serve: decoding modelz: %w", err)
	}
	return mz, nil
}

// Loadz fetches the replica's own load state — in-flight count, queue
// occupancy, drain flag — used by cluster routers and fleet dashboards
// to tell replicas apart where the process-global metrics cannot.
func (c *Client) Loadz(ctx context.Context) (LoadzResponse, error) {
	resp, err := c.get(ctx, "/v1/loadz")
	if err != nil {
		return LoadzResponse{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return LoadzResponse{}, readStatusError(resp)
	}
	var lz LoadzResponse
	if err := json.NewDecoder(resp.Body).Decode(&lz); err != nil {
		return LoadzResponse{}, fmt.Errorf("serve: decoding loadz: %w", err)
	}
	return lz, nil
}

// Healthy reports whether the server answers /v1/healthz with 200 —
// the health probe cluster routers use for eviction and re-admission.
func (c *Client) Healthy(ctx context.Context) bool {
	resp, err := c.get(ctx, "/v1/healthz")
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode == http.StatusOK
}

// readStatusError turns a non-2xx response into a StatusError, using
// the JSON error body when the server sent one and preserving the
// Retry-After hint for retry policies.
func readStatusError(resp *http.Response) error {
	retryAfter := 0.0
	if ra := resp.Header.Get("Retry-After"); ra != "" {
		if sec, err := strconv.ParseFloat(ra, 64); err == nil && sec > 0 {
			retryAfter = sec
		}
	}
	data, _ := io.ReadAll(io.LimitReader(resp.Body, 4096))
	var er ErrorResponse
	if json.Unmarshal(data, &er) == nil && er.Error != "" {
		return &StatusError{Code: resp.StatusCode, Message: er.Error, RetryAfterSec: retryAfter}
	}
	return &StatusError{Code: resp.StatusCode, Message: string(bytes.TrimSpace(data)), RetryAfterSec: retryAfter}
}
