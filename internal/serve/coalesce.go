package serve

import (
	"time"

	"crossarch/internal/ml"
	"crossarch/internal/obs"
)

// pending is one admitted request waiting for its slice of a batch.
// resp is buffered so the coalescer never blocks on a caller that gave
// up (deadline, disconnect); the abandoned result is simply collected.
type pending struct {
	rows [][]float64
	resp chan result
}

// result is the fan-back payload for one request: the request's rows
// of the batch output matrix, in request order.
type result struct {
	preds [][]float64
	model string
}

// run is the coalescer loop, one goroutine per server: pull the first
// pending request, top the batch up until MaxBatch rows or MaxWait
// elapse, resolve it through the ladder, fan the rows back. After quit
// closes, whatever is still queued is answered before the loop exits,
// so a drain never strands an admitted request.
func (s *Server) run() {
	defer close(s.done)
	for {
		select {
		case p := <-s.queue:
			s.serveBatch(p)
		case <-s.quit:
			for {
				select {
				case p := <-s.queue:
					s.serveBatch(p)
				default:
					return
				}
			}
		}
	}
}

// serveBatch coalesces one micro-batch starting from first and
// resolves it. Gathering stops at MaxBatch rows, after MaxWait, or as
// soon as the queue is empty during a drain.
func (s *Server) serveBatch(first *pending) {
	batch := []*pending{first}
	rows := len(first.rows)
	if rows < s.cfg.MaxBatch {
		timer := time.NewTimer(s.cfg.MaxWait)
	gather:
		for rows < s.cfg.MaxBatch {
			select {
			case p := <-s.queue:
				batch = append(batch, p)
				rows += len(p.rows)
			case <-timer.C:
				break gather
			case <-s.quit:
				// Draining: flush immediately with whatever is here; the
				// run loop empties the rest of the queue afterwards.
				break gather
			}
		}
		timer.Stop()
	}
	obs.Set("serve.queue.depth", float64(len(s.queue)))

	st := s.state()
	X := make([][]float64, 0, rows)
	for _, p := range batch {
		X = append(X, p.rows...)
	}
	out := ml.NewMatrix(len(X), st.outputs)
	start := obs.Now()
	st.ladder.PredictBatch(X, out)
	obs.Observe("serve.batch.seconds", obs.SinceSeconds(start))
	obs.Observe("serve.batch.rows", float64(len(X)))
	obs.Observe("serve.batch.requests", float64(len(batch)))
	obs.Add("serve.batch.total", 1)
	obs.Add("serve.rows.total", float64(len(X)))

	lo := 0
	for _, p := range batch {
		hi := lo + len(p.rows)
		p.resp <- result{preds: out[lo:hi], model: st.info.Name}
		lo = hi
	}
}
