package serve

import (
	"crossarch/internal/ml"
	"crossarch/internal/obs"
)

// pending is one admitted request waiting for its slice of a batch.
// resp is buffered so the coalescer never blocks on a caller that gave
// up (deadline, disconnect); the abandoned result is simply collected.
type pending struct {
	rows [][]float64
	// targets, when non-nil, are the true outputs for rows (validated
	// same shape at admission). They feed the shadow window only; the
	// response is computed before they are ever read.
	targets [][]float64
	resp    chan result
}

// result is the fan-back payload for one request.
//
// Ownership protocol: preds is freshly allocated per request — the
// coalescer copies the request's rows OUT of the shared batch matrix
// before sending, because that matrix is arena memory reused by the
// very next batch. A handler may therefore hold its result for as
// long as it likes; nothing it received aliases dispatcher state.
type result struct {
	preds [][]float64
	model string
}

// run is the coalescer loop, one goroutine per server: pull the first
// pending request (preferring a request carried over from the previous
// batch), top the batch up until MaxBatch rows or MaxWait elapse,
// resolve it through the ladder, fan the rows back. After quit closes,
// whatever was carried or queued is answered before the loop exits, so
// a drain never strands an admitted request.
func (s *Server) run() {
	defer close(s.done)
	for {
		var p *pending
		if s.carry != nil {
			p, s.carry = s.carry, nil
		} else {
			select {
			case p = <-s.queue:
			case <-s.quit:
				for {
					if s.carry != nil {
						p, s.carry = s.carry, nil
						s.serveBatch(p)
						continue
					}
					select {
					case p := <-s.queue:
						s.serveBatch(p)
					default:
						return
					}
				}
			}
		}
		s.serveBatch(p)
	}
}

// serveBatch coalesces one micro-batch starting from first and
// resolves it. Gathering stops at MaxBatch rows, after MaxWait, or as
// soon as the queue is empty during a drain; a pulled request that
// would push the batch past MaxBatch is carried into the next batch
// instead, so a multi-request batch never exceeds MaxBatch rows. (A
// single request larger than MaxBatch still forms one batch of its
// own: it arrives as first and the gather loop is skipped.)
//
//lint:hotpath
func (s *Server) serveBatch(first *pending) {
	batch := append(s.batch[:0], first)
	rows := len(first.rows)
	// Fast path: a lone single-row request with an idle queue dispatches
	// immediately. Nothing can join the batch except a request that has
	// not arrived yet, so waiting out MaxWait would buy occupancy only
	// by taxing exactly the latency-sensitive caller; concurrent bursts
	// still coalesce because they make the queue non-empty.
	if !(rows == 1 && len(s.queue) == 0) && rows < s.cfg.MaxBatch {
		// One dispatcher-owned timer serves every batch. Stop+drain
		// before Reset clears any fire left over from a previous gather
		// (Go's pre-1.23 timers deliver asynchronously, so a Stop that
		// lost the race leaves the value in C until collected here).
		if !s.timer.Stop() {
			select {
			case <-s.timer.C:
			default:
			}
		}
		s.timer.Reset(s.cfg.MaxWait)
		fired := false
	gather:
		for rows < s.cfg.MaxBatch {
			select {
			case p := <-s.queue:
				if rows+len(p.rows) > s.cfg.MaxBatch {
					s.carry = p
					break gather
				}
				batch = append(batch, p)
				rows += len(p.rows)
			case <-s.timer.C:
				fired = true
				break gather
			case <-s.quit:
				// Draining: flush immediately with whatever is here; the
				// run loop empties the rest of the queue afterwards.
				break gather
			}
		}
		if !fired && !s.timer.Stop() {
			select {
			case <-s.timer.C:
			default:
			}
		}
	}
	obs.Set("serve.queue.depth", float64(len(s.queue)))

	st := s.state()
	X := s.gatherX[:0]
	for _, p := range batch {
		X = append(X, p.rows...)
	}
	// out is arena memory: valid only until the next batch, fully
	// overwritten below (every ladder level writes every row).
	out := s.arena.Rows(len(X), st.outputs)
	start := obs.Now()
	//lint:ignore hotpathalloc the ladder owns degradation bookkeeping (panic shields, level scratch); its inner compiled kernel is its own //lint:hotpath root and the whole dispatch is pinned by the serve AllocsPerRun gate
	st.ladder.PredictBatch(X, out)
	obs.Observe("serve.batch.seconds", obs.SinceSeconds(start))
	obs.Observe("serve.batch.rows", float64(len(X)))
	obs.Observe("serve.batch.requests", float64(len(batch)))
	obs.Add("serve.batch.total", 1)
	obs.Add("serve.rows.total", float64(len(X)))

	// Fan-back: copy each request's slice of the batch output into a
	// matrix the request owns (see result). The copy is what makes the
	// arena reusable — and it is cheap next to the traversal work.
	lo := 0
	for _, p := range batch {
		hi := lo + len(p.rows)
		//lint:ignore hotpathalloc fan-back matrix is the response the request owns (see result's ownership protocol); the copy out of arena memory is the allocation, one per request
		preds := ml.NewMatrix(hi-lo, st.outputs)
		for i := range preds {
			copy(preds[i], out[lo+i])
		}
		p.resp <- result{preds: preds, model: st.info.Name}
		lo = hi
	}

	// Shadow evaluation rides the same gathered batch after every
	// response is on its way: X and the arena output stay valid until
	// the next batch, so the candidate compares against exactly what
	// was served. With no candidate installed this is one atomic load.
	if sh := s.shadow.Load(); sh != nil {
		//lint:ignore hotpathalloc shadow evaluation is sampled cold-path work (1-in-ShadowSampleEvery batches) behind a nil check; its dispatch cost is pinned by BenchmarkShadowDispatch in the bench gate
		s.shadowEval(sh, st, X, out, batch)
	}

	// Recycle the gather scratch, dropping pointers to request data so
	// the reused headers don't pin finished requests in memory.
	for i := range X {
		X[i] = nil
	}
	s.gatherX = X[:0]
	for i := range batch {
		batch[i] = nil
	}
	s.batch = batch[:0]
}
