package serve_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"crossarch/internal/ml"
	"crossarch/internal/serve"
)

// BenchmarkServePredict measures end-to-end served prediction latency
// through the full stack — HTTP transport, JSON codec, admission,
// micro-batch coalescing, ladder inference, fan-back — for the two
// canonical shapes: the interactive 1-row request and the scheduler's
// 64-row workload batch, against the production MaxBatch default (64).
// Both shapes dispatch without arming the gather timer — rows=1 takes
// the idle-queue fast path and rows=64 fills the batch — so the
// benchmark tracks the hot serving path (codec, admission, compiled
// inference, fan-back), not the deliberate MaxWait wait, whose floor
// is the netpoller's ~1ms timer granularity on an idle box anyway.
// Baselines live in EXPERIMENTS.md; make bench records the trajectory
// in BENCH_predict.json and make bench-gate enforces it.
func BenchmarkServePredict(b *testing.B) {
	model := trainModel(b, 90)
	for _, nrows := range []int{1, 64} {
		b.Run(fmt.Sprintf("rows=%d", nrows), func(b *testing.B) {
			_, client := newTestServer(b, model, serve.Config{
				MaxBatch: 64,
				MaxWait:  200 * time.Microsecond,
				QueueCap: 4096,
			})
			rows := testRows(nrows, uint64(nrows))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := client.PredictBatch(context.Background(), rows); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(nrows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}

// BenchmarkShadowDispatch measures the served request path with a
// shadow candidate installed and evaluating at the default 1-in-8
// batch sampling — the configuration the rollout story runs in
// production. Compared against BenchmarkServePredict (the same path
// with no candidate), it pins the claim that shadow mode costs under
// 10% on the hot path: the candidate's compute amortizes across the
// sampling interval and the unsampled dispatch adds only an atomic
// load and a modulo. Gated alongside the other serving benchmarks in
// make bench-gate.
func BenchmarkShadowDispatch(b *testing.B) {
	model := trainModel(b, 90)
	candidate := trainModel(b, 91)
	for _, nrows := range []int{1, 64} {
		b.Run(fmt.Sprintf("rows=%d", nrows), func(b *testing.B) {
			srv, client := newTestServer(b, model, serve.Config{
				MaxBatch: 64,
				MaxWait:  200 * time.Microsecond,
				QueueCap: 4096,
			})
			if err := srv.InstallShadow(candidate, ml.ModelInfo{}, "v-bench"); err != nil {
				b.Fatal(err)
			}
			rows := testRows(nrows, uint64(nrows))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := client.PredictBatch(context.Background(), rows); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(nrows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
