package serve_test

import (
	"fmt"
	"testing"
	"time"

	"crossarch/internal/serve"
)

// BenchmarkServePredict measures end-to-end served prediction latency
// through the full stack — HTTP transport, JSON codec, admission,
// micro-batch coalescing, ladder inference, fan-back — for the two
// canonical shapes: the interactive 1-row request and the scheduler's
// 64-row workload batch. b.RunParallel supplies the concurrency the
// coalescer exists for; single-row requests amortize best (they share
// batches with other clients), so rows/s at 1 row is the coalescing
// win and rows/s at 64 is the transport+codec overhead on top of the
// offline batch path. Baselines live in EXPERIMENTS.md.
func BenchmarkServePredict(b *testing.B) {
	model := trainModel(b, 90)
	for _, nrows := range []int{1, 64} {
		b.Run(fmt.Sprintf("rows=%d", nrows), func(b *testing.B) {
			_, client := newTestServer(b, model, serve.Config{
				MaxBatch: 256,
				MaxWait:  200 * time.Microsecond,
				QueueCap: 4096,
			})
			rows := testRows(nrows, uint64(nrows))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := client.PredictBatch(rows); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(nrows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
