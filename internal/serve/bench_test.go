package serve_test

import (
	"context"
	"fmt"
	"testing"
	"time"

	"crossarch/internal/serve"
)

// BenchmarkServePredict measures end-to-end served prediction latency
// through the full stack — HTTP transport, JSON codec, admission,
// micro-batch coalescing, ladder inference, fan-back — for the two
// canonical shapes: the interactive 1-row request and the scheduler's
// 64-row workload batch, against the production MaxBatch default (64).
// Both shapes dispatch without arming the gather timer — rows=1 takes
// the idle-queue fast path and rows=64 fills the batch — so the
// benchmark tracks the hot serving path (codec, admission, compiled
// inference, fan-back), not the deliberate MaxWait wait, whose floor
// is the netpoller's ~1ms timer granularity on an idle box anyway.
// Baselines live in EXPERIMENTS.md; make bench records the trajectory
// in BENCH_predict.json and make bench-gate enforces it.
func BenchmarkServePredict(b *testing.B) {
	model := trainModel(b, 90)
	for _, nrows := range []int{1, 64} {
		b.Run(fmt.Sprintf("rows=%d", nrows), func(b *testing.B) {
			_, client := newTestServer(b, model, serve.Config{
				MaxBatch: 64,
				MaxWait:  200 * time.Microsecond,
				QueueCap: 4096,
			})
			rows := testRows(nrows, uint64(nrows))
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, err := client.PredictBatch(context.Background(), rows); err != nil {
						b.Fatal(err)
					}
				}
			})
			b.StopTimer()
			b.ReportMetric(float64(nrows)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
		})
	}
}
