package serve

import (
	"errors"
	"fmt"
	"sync"

	"crossarch/internal/ml"
	"crossarch/internal/obs"
)

// Shadow mode: a candidate model rides along on the incumbent's
// coalesced batches. After each sampled batch is answered, the
// dispatcher runs the candidate over the same gathered rows and folds
// the comparison into a sliding window — disagreement against the
// incumbent on every sampled row, and absolute error for both models
// on rows whose request carried targets. Served responses are computed
// before the shadow ever runs and only from the incumbent, so a
// candidate can be arbitrarily wrong (or slow, or crash-prone) with
// zero impact on what callers receive. Promotion is gated on the
// window: the candidate must have seen enough labeled rows and beat
// the incumbent's error by a configured margin before PromoteShadow
// will swap it in.

// ErrNoShadow is returned by shadow operations when no candidate is
// installed.
var ErrNoShadow = errors.New("serve: no shadow candidate installed")

// ErrPromoteGate is the typed cause of a refused promotion: the
// candidate has not earned it yet (insufficient labeled evidence, or
// an error window no better than the incumbent's).
var ErrPromoteGate = errors.New("serve: promotion gate refused")

// shadowSample is one evaluated row in the sliding window.
type shadowSample struct {
	// disagree is the mean |candidate − incumbent| across outputs.
	disagree float64
	// incErr / candErr are the mean absolute errors against the
	// request's target row; valid only when labeled.
	incErr  float64
	candErr float64
	labeled bool
}

// shadowState is one candidate generation under evaluation. The
// predictor fields are immutable after install; the window is guarded
// by mu and only touched on sampled batches, so the common
// no-shadow/unsampled dispatch path never takes the lock.
type shadowState struct {
	model         ml.Regressor      // original, installed on promotion
	batch         ml.BatchRegressor // evaluation path (compiled when possible)
	info          ml.ModelInfo
	versionID     string // registry version under evaluation ("" if ad hoc)
	startedUnixMs int64

	mu      sync.Mutex
	win     []shadowSample // ring of the last len(win) evaluated rows
	next    int
	filled  int
	batches int64 // sampled batches evaluated
	failed  string
}

// ShadowStatus is the externally visible evaluation state, served on
// /v1/registryz and returned by promotion attempts.
type ShadowStatus struct {
	Model          ml.ModelInfo `json:"model"`
	VersionID      string       `json:"version_id,omitempty"`
	StartedUnixMs  int64        `json:"started_unix_ms"`
	SampledBatches int64        `json:"sampled_batches"`
	WindowRows     int          `json:"window_rows"`
	LabeledRows    int          `json:"labeled_rows"`
	// Disagreement is the mean |candidate − incumbent| over the window
	// — a drift alarm that needs no labels.
	Disagreement float64 `json:"disagreement"`
	// IncumbentMAE / CandidateMAE are windowed mean absolute errors over
	// the labeled rows.
	IncumbentMAE float64 `json:"incumbent_mae"`
	CandidateMAE float64 `json:"candidate_mae"`
	// Promotable reports whether the gate would allow promotion right
	// now; Reason explains a false value (and a failure, if the
	// candidate panicked during evaluation).
	Promotable bool   `json:"promotable"`
	Reason     string `json:"reason,omitempty"`
}

// rowBatcher adapts a plain Regressor to the batch interface for
// learners with no vectorized or compiled path.
type rowBatcher struct{ ml.Regressor }

//lint:ignore ctxflow PredictBatch mirrors ml.BatchRegressor, which is context-free by design: it is pure compute on in-memory rows, and the dispatcher that calls it already holds the request's deadline
func (r rowBatcher) PredictBatch(X, out [][]float64) {
	for i := range X {
		copy(out[i], r.Predict(X[i]))
	}
}

// InstallShadow starts evaluating m as the shadow candidate, replacing
// any previous candidate (and its window — evidence does not carry
// over between candidates). versionID ties the evaluation to a
// registry version for /v1/registryz and promotion bookkeeping.
func (s *Server) InstallShadow(m ml.Regressor, info ml.ModelInfo, versionID string) error {
	if s.state() == nil {
		return errors.New("serve: no incumbent loaded; nothing to shadow against")
	}
	var b ml.BatchRegressor
	if ce, ok := ml.Compile(m); ok {
		b = ce
	} else if br, ok := m.(ml.BatchRegressor); ok {
		b = br
	} else {
		b = rowBatcher{m}
	}
	if info.Name == "" {
		info.Name = m.Name()
	}
	sh := &shadowState{
		model:         m,
		batch:         b,
		info:          info,
		versionID:     versionID,
		startedUnixMs: obs.Now().UnixMilli(),
		win:           make([]shadowSample, s.cfg.ShadowWindow),
	}
	s.shadow.Store(sh)
	obs.Inc("serve.shadow.install.total")
	return nil
}

// LoadShadow loads a model envelope from path (checksum-verified, like
// Reload) and installs it as the shadow candidate.
func (s *Server) LoadShadow(path, versionID string) error {
	m, info, err := ml.LoadModelFileInfo(path)
	if err != nil {
		obs.Inc("serve.shadow.load_fail.total")
		return fmt.Errorf("serve: shadow load %s: %w", path, err)
	}
	return s.InstallShadow(m, info, versionID)
}

// ClearShadow drops the candidate and its window. Idempotent.
func (s *Server) ClearShadow() {
	if s.shadow.Swap(nil) != nil {
		obs.Inc("serve.shadow.clear.total")
	}
}

// ShadowDecision returns the current candidate's evaluation state;
// ok is false when no candidate is installed.
func (s *Server) ShadowDecision() (ShadowStatus, bool) {
	sh := s.shadow.Load()
	if sh == nil {
		return ShadowStatus{}, false
	}
	return sh.status(&s.cfg), true
}

// PromoteShadow swaps the candidate in as the served generation iff
// the gate passes: enough labeled rows in the window, candidate MAE at
// least PromoteMargin better than the incumbent's, and no evaluation
// failure. On refusal the returned status carries the reason and the
// incumbent keeps serving, untouched.
func (s *Server) PromoteShadow() (ShadowStatus, error) {
	sh := s.shadow.Load()
	if sh == nil {
		return ShadowStatus{}, ErrNoShadow
	}
	st := sh.status(&s.cfg)
	if !st.Promotable {
		obs.Inc("serve.shadow.promote_refused.total")
		return st, fmt.Errorf("%w: %s", ErrPromoteGate, st.Reason)
	}
	s.reloadMu.Lock()
	defer s.reloadMu.Unlock()
	if err := s.install(sh.model, sh.info); err != nil {
		return st, err
	}
	// Only clear the candidate we just promoted; a racing InstallShadow
	// of a newer candidate keeps its fresh window.
	s.shadow.CompareAndSwap(sh, nil)
	obs.Inc("serve.shadow.promote.total")
	return st, nil
}

// status computes the windowed decision under the state's lock.
func (sh *shadowState) status(cfg *Config) ShadowStatus {
	sh.mu.Lock()
	defer sh.mu.Unlock()
	st := ShadowStatus{
		Model:          sh.info,
		VersionID:      sh.versionID,
		StartedUnixMs:  sh.startedUnixMs,
		SampledBatches: sh.batches,
		WindowRows:     sh.filled,
	}
	var disagree, incErr, candErr float64
	for i := 0; i < sh.filled; i++ {
		w := sh.win[i]
		disagree += w.disagree
		if w.labeled {
			st.LabeledRows++
			incErr += w.incErr
			candErr += w.candErr
		}
	}
	if sh.filled > 0 {
		st.Disagreement = disagree / float64(sh.filled)
	}
	if st.LabeledRows > 0 {
		st.IncumbentMAE = incErr / float64(st.LabeledRows)
		st.CandidateMAE = candErr / float64(st.LabeledRows)
	}
	switch {
	case sh.failed != "":
		st.Reason = sh.failed
	case st.LabeledRows < cfg.MinShadowLabeled:
		st.Reason = fmt.Sprintf("insufficient labeled evidence: %d rows in window, need %d", st.LabeledRows, cfg.MinShadowLabeled)
	case st.CandidateMAE > st.IncumbentMAE*(1-cfg.PromoteMargin):
		st.Reason = fmt.Sprintf("candidate MAE %.6g does not beat incumbent %.6g by the %.0f%% margin", st.CandidateMAE, st.IncumbentMAE, cfg.PromoteMargin*100)
	default:
		st.Promotable = true
	}
	return st
}

// shadowEval runs the candidate over one gathered batch and folds the
// comparison into the window. Called by the dispatcher after fan-back,
// while the arena output and gathered rows are still valid; the served
// responses are already on their way, so nothing here can affect them.
// Unlabeled batches are sampled 1-in-ShadowSampleEvery; labeled
// batches always evaluate (they carry the evidence the gate needs, and
// deterministic drills depend on every label landing in the window).
func (s *Server) shadowEval(sh *shadowState, st *modelState, X, out [][]float64, batch []*pending) {
	s.shadowSeq++
	labeled := false
	for _, p := range batch {
		if p.targets != nil {
			labeled = true
			break
		}
	}
	if !labeled && (s.cfg.ShadowSampleEvery > 1 && s.shadowSeq%uint64(s.cfg.ShadowSampleEvery) != 0) {
		return
	}
	defer func() {
		if r := recover(); r != nil {
			// A candidate that panics on real traffic disqualifies
			// itself; the incumbent (whose responses already went out)
			// is untouched.
			sh.mu.Lock()
			sh.failed = fmt.Sprintf("candidate panicked during shadow evaluation: %v", r)
			sh.mu.Unlock()
			obs.Inc("serve.shadow.panic.total")
		}
	}()

	start := obs.Now()
	cout := s.shadowArena.Rows(len(X), st.outputs)
	sh.batch.PredictBatch(X, cout)

	sh.mu.Lock()
	defer sh.mu.Unlock()
	if sh.failed != "" {
		return
	}
	sh.batches++
	lo := 0
	for _, p := range batch {
		for i := range p.rows {
			row := lo + i
			var d float64
			for j := range out[row] {
				d += abs(cout[row][j] - out[row][j])
			}
			smp := shadowSample{disagree: d / float64(st.outputs)}
			if p.targets != nil {
				var ie, ce float64
				for j := range p.targets[i] {
					ie += abs(out[row][j] - p.targets[i][j])
					ce += abs(cout[row][j] - p.targets[i][j])
				}
				smp.incErr = ie / float64(st.outputs)
				smp.candErr = ce / float64(st.outputs)
				smp.labeled = true
			}
			sh.win[sh.next] = smp
			sh.next = (sh.next + 1) % len(sh.win)
			if sh.filled < len(sh.win) {
				sh.filled++
			}
		}
		lo += len(p.rows)
	}
	obs.Observe("serve.shadow.batch.seconds", obs.SinceSeconds(start))
	obs.Add("serve.shadow.rows.total", float64(len(X)))
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
