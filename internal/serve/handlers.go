package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"

	"crossarch/internal/ml"
	"crossarch/internal/obs"
)

// PredictRequest is the POST /v1/predict payload: feature rows in the
// model's training column order (already normalized, as in the offline
// batch path).
type PredictRequest struct {
	Rows [][]float64 `json:"rows"`
	// Targets optionally carries the true output row for each feature
	// row (same length as Rows, each row the model's output width).
	// Targets never change the response; they feed the shadow
	// candidate's labeled error window, which is what the promotion
	// gate judges on. Requests with targets bypass the fast decoder by
	// construction (it accepts only bare {"rows": ...} bodies).
	Targets [][]float64 `json:"targets,omitempty"`
}

// PredictResponse is the /v1/predict result: one prediction row per
// request row, in order, plus the name of the model generation that
// served the batch.
type PredictResponse struct {
	Model       string      `json:"model"`
	Predictions [][]float64 `json:"predictions"`
}

// ErrorResponse is the JSON body of every non-2xx answer.
type ErrorResponse struct {
	Error string `json:"error"`
	// Kind classifies reload failures ("corrupt", "missing", "other").
	Kind string `json:"kind,omitempty"`
}

// ModelzResponse is the GET /v1/modelz body: the served model's
// envelope metadata, the ladder wrapped around it, and the generation
// counter that hot reloads bump.
type ModelzResponse struct {
	Model        ml.ModelInfo `json:"model"`
	Ladder       string       `json:"ladder"`
	Outputs      int          `json:"outputs"`
	Generation   uint64       `json:"generation"`
	LoadedUnixMs int64        `json:"loaded_unix_ms"`
	Path         string       `json:"path,omitempty"`
	// Compiled reports whether the served generation runs the flattened
	// ml.CompiledEnsemble arena instead of the source envelope.
	Compiled bool `json:"compiled"`
	// LastReloadError surfaces the most recent failed reload (nil when
	// the last reload succeeded): the served generation above is still
	// the old one, and this says why.
	LastReloadError *ReloadFailure `json:"last_reload_error,omitempty"`
}

// HealthzResponse is the GET /v1/healthz body.
type HealthzResponse struct {
	Status string `json:"status"` // "ok", "draining", or "no-model"
	Model  string `json:"model,omitempty"`
}

// LoadzResponse is the GET /v1/loadz body: this replica's own load
// state, distinct from the process-global /v1/metrics snapshot so a
// router fronting several in-process replicas can tell them apart.
type LoadzResponse struct {
	// InFlight counts requests admitted to the queue whose handler has
	// not yet written a response.
	InFlight int64 `json:"in_flight"`
	// QueueDepth and QueueCap describe the admission queue right now.
	QueueDepth int `json:"queue_depth"`
	QueueCap   int `json:"queue_cap"`
	// Accepted counts every admission since startup.
	Accepted int64 `json:"accepted_total"`
	// Draining reports whether BeginDrain has been called.
	Draining bool `json:"draining"`
	// Generation is the served model generation (0 before a load).
	Generation uint64 `json:"generation"`
}

// retryAfterSeconds is the Retry-After hint on 429/503 responses: by
// the time it elapses the queue has turned over several MaxWait
// windows, so an immediate retry storm is spread out instead of
// re-hitting a full queue.
const retryAfterSeconds = 1

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	// An encode failure here means the client is gone; there is no
	// channel left to report it on.
	_ = json.NewEncoder(w).Encode(v)
}

// writePredictResponse writes the 200 predict body through the fast
// encoder (pooled buffer, explicit Content-Length, no reflection),
// falling back to writeJSON for anything it cannot represent. The
// bodies are byte-identical either way.
func writePredictResponse(w http.ResponseWriter, model string, preds [][]float64) {
	buf := getJSONBuf()
	b, ok := appendPredictResponse((*buf)[:0], model, preds)
	*buf = b[:0]
	if !ok {
		putJSONBuf(buf)
		writeJSON(w, http.StatusOK, PredictResponse{Model: model, Predictions: preds})
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set("Content-Length", strconv.Itoa(len(b)))
	w.WriteHeader(http.StatusOK)
	_, _ = w.Write(b)
	putJSONBuf(buf)
}

// readAll reads r to EOF into buf's spare capacity — io.ReadAll with
// a caller-pooled buffer.
func readAll(buf []byte, r io.Reader) ([]byte, error) {
	for {
		if len(buf) == cap(buf) {
			buf = append(buf, 0)[:len(buf)]
		}
		n, err := r.Read(buf[len(buf):cap(buf)])
		buf = buf[:len(buf)+n]
		if err == io.EOF {
			return buf, nil
		}
		if err != nil {
			return buf, err
		}
	}
}

func writeError(w http.ResponseWriter, code int, format string, args ...any) {
	writeJSON(w, code, ErrorResponse{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handlePredict(w http.ResponseWriter, r *http.Request) {
	start := obs.Now()
	obs.Inc("serve.requests.total")
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if s.Draining() {
		obs.Inc("serve.reject.draining.total")
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeError(w, http.StatusServiceUnavailable, "server is draining")
		return
	}
	if s.state() == nil {
		obs.Inc("serve.reject.no_model.total")
		writeError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}

	if r.ContentLength > s.cfg.MaxBodyBytes {
		obs.Inc("serve.reject.too_large.total")
		writeError(w, http.StatusRequestEntityTooLarge, "body of %d bytes exceeds the %d-byte cap", r.ContentLength, s.cfg.MaxBodyBytes)
		return
	}
	// Chunked bodies carry no Content-Length; the reader enforces the
	// same cap mid-stream.
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	bodyBuf := getJSONBuf()
	body, err := readAll((*bodyBuf)[:0], r.Body)
	*bodyBuf = body[:0]
	if err != nil {
		putJSONBuf(bodyBuf)
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			obs.Inc("serve.reject.too_large.total")
			writeError(w, http.StatusRequestEntityTooLarge, "body exceeds %d bytes", tooBig.Limit)
			return
		}
		obs.Inc("serve.reject.bad_request.total")
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	var req PredictRequest
	if rows, ok := fastDecodePredictRequest(body); ok {
		req.Rows = rows
	} else if err := json.NewDecoder(bytes.NewReader(body)).Decode(&req); err != nil {
		putJSONBuf(bodyBuf)
		obs.Inc("serve.reject.bad_request.total")
		writeError(w, http.StatusBadRequest, "decoding request: %v", err)
		return
	}
	putJSONBuf(bodyBuf)
	if len(req.Rows) == 0 {
		obs.Inc("serve.reject.bad_request.total")
		writeError(w, http.StatusBadRequest, "request has no rows")
		return
	}
	if len(req.Rows) > s.cfg.MaxRowsPerRequest {
		obs.Inc("serve.reject.too_large.total")
		writeError(w, http.StatusRequestEntityTooLarge, "%d rows exceed the %d-row request cap", len(req.Rows), s.cfg.MaxRowsPerRequest)
		return
	}
	if err := ml.ValidateMatrix(req.Rows, s.cfg.Features); err != nil {
		obs.Inc("serve.reject.bad_request.total")
		writeError(w, http.StatusBadRequest, "invalid rows: %v", err)
		return
	}
	if req.Targets != nil {
		if len(req.Targets) != len(req.Rows) {
			obs.Inc("serve.reject.bad_request.total")
			writeError(w, http.StatusBadRequest, "%d targets for %d rows", len(req.Targets), len(req.Rows))
			return
		}
		if err := ml.ValidateMatrix(req.Targets, s.cfg.Outputs); err != nil {
			obs.Inc("serve.reject.bad_request.total")
			writeError(w, http.StatusBadRequest, "invalid targets: %v", err)
			return
		}
	}

	p := &pending{rows: req.Rows, targets: req.Targets, resp: make(chan result, 1)}
	select {
	case s.queue <- p:
		s.accepted.Add(1)
		s.inflight.Add(1)
		defer s.inflight.Add(-1)
		depth := float64(len(s.queue))
		obs.Set("serve.queue.depth", depth)
		obs.SetMax("serve.queue.peak", depth)
	default:
		obs.Inc("serve.reject.queue_full.total")
		w.Header().Set("Retry-After", strconv.Itoa(retryAfterSeconds))
		writeError(w, http.StatusTooManyRequests, "admission queue full (%d requests)", s.cfg.QueueCap)
		return
	}

	ctx, cancel := context.WithTimeout(r.Context(), s.cfg.RequestTimeout)
	defer cancel()
	select {
	case res := <-p.resp:
		writePredictResponse(w, res.model, res.preds)
		obs.Observe("serve.request.seconds", obs.SinceSeconds(start))
	case <-ctx.Done():
		// The request stays in its batch — the coalescer computes it and
		// parks the result in the buffered channel — but nobody is left
		// to read the answer.
		obs.Inc("serve.reject.deadline.total")
		writeError(w, http.StatusServiceUnavailable, "request deadline exceeded: %v", ctx.Err())
	}
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	st := s.state()
	switch {
	case s.Draining():
		writeJSON(w, http.StatusServiceUnavailable, HealthzResponse{Status: "draining"})
	case st == nil:
		writeJSON(w, http.StatusServiceUnavailable, HealthzResponse{Status: "no-model"})
	default:
		writeJSON(w, http.StatusOK, HealthzResponse{Status: "ok", Model: st.info.Name})
	}
}

func (s *Server) handleLoadz(w http.ResponseWriter, r *http.Request) {
	var gen uint64
	if st := s.state(); st != nil {
		gen = st.generation
	}
	writeJSON(w, http.StatusOK, LoadzResponse{
		InFlight:   s.inflight.Load(),
		QueueDepth: len(s.queue),
		QueueCap:   s.cfg.QueueCap,
		Accepted:   s.accepted.Load(),
		Draining:   s.Draining(),
		Generation: gen,
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	data, err := obs.TakeSnapshot().WriteJSON()
	if err != nil {
		writeError(w, http.StatusInternalServerError, "snapshot: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(data, '\n'))
}

func (s *Server) handleModelz(w http.ResponseWriter, r *http.Request) {
	st := s.state()
	if st == nil {
		writeError(w, http.StatusServiceUnavailable, "no model loaded")
		return
	}
	writeJSON(w, http.StatusOK, ModelzResponse{
		Model:           st.info,
		Ladder:          st.ladder.Name(),
		Outputs:         st.outputs,
		Generation:      st.generation,
		LoadedUnixMs:    st.loadedUnixMs,
		Path:            s.cfg.ModelPath,
		Compiled:        st.compiled,
		LastReloadError: s.LastReloadFailure(),
	})
}

// ShadowRequest is the POST /v1/shadow payload: install a candidate
// from an envelope file, or clear the current one.
type ShadowRequest struct {
	// Path is the model envelope to load as the candidate.
	Path string `json:"path,omitempty"`
	// Version ties the candidate to a registry version ID.
	Version string `json:"version,omitempty"`
	// Clear, when true, drops the current candidate instead.
	Clear bool `json:"clear,omitempty"`
}

// handleShadow manages the candidate: GET reports its evaluation
// window, POST installs (from a path) or clears it.
func (s *Server) handleShadow(w http.ResponseWriter, r *http.Request) {
	switch r.Method {
	case http.MethodGet:
		st, ok := s.ShadowDecision()
		if !ok {
			writeError(w, http.StatusNotFound, "no shadow candidate installed")
			return
		}
		writeJSON(w, http.StatusOK, st)
	case http.MethodPost:
		var req ShadowRequest
		if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
			writeError(w, http.StatusBadRequest, "decoding request: %v", err)
			return
		}
		if req.Clear {
			s.ClearShadow()
			writeJSON(w, http.StatusOK, map[string]string{"status": "cleared"})
			return
		}
		if req.Path == "" {
			writeError(w, http.StatusBadRequest, "path required (or clear: true)")
			return
		}
		if err := s.LoadShadow(req.Path, req.Version); err != nil {
			writeJSON(w, http.StatusUnprocessableEntity, ErrorResponse{Error: err.Error(), Kind: ErrKind(err)})
			return
		}
		st, _ := s.ShadowDecision()
		writeJSON(w, http.StatusOK, st)
	default:
		writeError(w, http.StatusMethodNotAllowed, "GET or POST only")
	}
}

// PromoteResponse is the POST /v1/promote body: the gate's verdict,
// and the generation now serving.
type PromoteResponse struct {
	Promoted   bool         `json:"promoted"`
	Generation uint64       `json:"generation"`
	Shadow     ShadowStatus `json:"shadow"`
	Error      string       `json:"error,omitempty"`
}

// handlePromote attempts to promote the shadow candidate. A gate
// refusal is 409 with the windowed evidence attached — the caller can
// see exactly how far the candidate is from earning promotion.
func (s *Server) handlePromote(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	st, err := s.PromoteShadow()
	var gen uint64
	if ms := s.state(); ms != nil {
		gen = ms.generation
	}
	switch {
	case errors.Is(err, ErrNoShadow):
		writeError(w, http.StatusNotFound, "no shadow candidate installed")
	case errors.Is(err, ErrPromoteGate):
		writeJSON(w, http.StatusConflict, PromoteResponse{Generation: gen, Shadow: st, Error: err.Error()})
	case err != nil:
		writeJSON(w, http.StatusInternalServerError, PromoteResponse{Generation: gen, Shadow: st, Error: err.Error()})
	default:
		writeJSON(w, http.StatusOK, PromoteResponse{Promoted: true, Generation: gen, Shadow: st})
	}
}

// RegistryzResponse is the GET /v1/registryz body: this replica's
// whole release-path state in one read — what is serving, what is
// shadowing, and whether the last reload took.
type RegistryzResponse struct {
	Model           *ModelzResponse `json:"model,omitempty"`
	Shadow          *ShadowStatus   `json:"shadow,omitempty"`
	LastReloadError *ReloadFailure  `json:"last_reload_error,omitempty"`
}

func (s *Server) handleRegistryz(w http.ResponseWriter, r *http.Request) {
	var resp RegistryzResponse
	if st := s.state(); st != nil {
		resp.Model = &ModelzResponse{
			Model:        st.info,
			Ladder:       st.ladder.Name(),
			Outputs:      st.outputs,
			Generation:   st.generation,
			LoadedUnixMs: st.loadedUnixMs,
			Path:         s.cfg.ModelPath,
			Compiled:     st.compiled,
		}
	}
	if sh, ok := s.ShadowDecision(); ok {
		resp.Shadow = &sh
	}
	resp.LastReloadError = s.LastReloadFailure()
	writeJSON(w, http.StatusOK, resp)
}

func (s *Server) handleReload(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		writeError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if err := s.Reload(); err != nil {
		writeJSON(w, http.StatusInternalServerError, ErrorResponse{Error: err.Error(), Kind: ErrKind(err)})
		return
	}
	s.handleModelz(w, r)
}
