// Shadow-mode and release-path tests: candidate evaluation must never
// touch served responses, the promotion gate must hold worse models
// out and let better ones through on labeled evidence, and a failed
// reload must keep the old generation serving while saying so.
package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"crossarch/internal/ml"
	"crossarch/internal/serve"
)

// targetsFor reproduces trainModel's synthetic response for rows, so
// labeled traffic carries the true outputs the models were fit to.
func targetsFor(rows [][]float64) [][]float64 {
	Y := make([][]float64, len(rows))
	for i, x := range rows {
		y := make([]float64, testOutputs)
		for k := range y {
			y[k] = x[k%testFeatures] * float64(k+1)
			if x[(k+1)%testFeatures] > 0 {
				y[k] += 2
			}
		}
		Y[i] = y
	}
	return Y
}

// zeroModel predicts all zeros: a deliberately terrible candidate.
type zeroModel struct{}

func (zeroModel) Fit(X, Y [][]float64) error { return nil }
func (zeroModel) Name() string               { return "zero-test" }
func (zeroModel) Predict(x []float64) []float64 {
	return make([]float64, testOutputs)
}

// postPredict sends a predict request with optional targets through
// the plain JSON path and returns the predictions.
func postPredict(t testing.TB, c *serve.Client, rows, targets [][]float64) [][]float64 {
	t.Helper()
	body, err := json.Marshal(serve.PredictRequest{Rows: rows, Targets: targets})
	if err != nil {
		t.Fatal(err)
	}
	resp, err := c.HTTP.Post(c.BaseURL+"/v1/predict", "application/json", bytes.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var e serve.ErrorResponse
		_ = json.NewDecoder(resp.Body).Decode(&e)
		t.Fatalf("predict: %d %s", resp.StatusCode, e.Error)
	}
	var pr serve.PredictResponse
	if err := json.NewDecoder(resp.Body).Decode(&pr); err != nil {
		t.Fatal(err)
	}
	return pr.Predictions
}

// TestShadowZeroImpactOnResponses is the shadow contract: with a
// maximally wrong candidate evaluating on every labeled batch, every
// served prediction stays bitwise identical to the incumbent's offline
// path.
func TestShadowZeroImpactOnResponses(t *testing.T) {
	model := trainModel(t, 1)
	srv, client := newTestServer(t, model, serve.Config{ShadowSampleEvery: 1})
	if err := srv.InstallShadow(zeroModel{}, ml.ModelInfo{}, "v-bad"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		rows := testRows(16, uint64(i)+500)
		var targets [][]float64
		if i%2 == 0 {
			targets = targetsFor(rows)
		}
		got := postPredict(t, client, rows, targets)
		mustEqualBitwise(t, got, ml.PredictBatch(model, rows), "served with shadow active")
	}
	st, ok := srv.ShadowDecision()
	if !ok {
		t.Fatal("shadow dropped without being cleared")
	}
	if st.WindowRows == 0 || st.LabeledRows == 0 {
		t.Fatalf("shadow window empty after labeled traffic: %+v", st)
	}
	if st.CandidateMAE <= st.IncumbentMAE {
		t.Fatalf("zero candidate should be worse: cand %v vs inc %v", st.CandidateMAE, st.IncumbentMAE)
	}
}

// TestPromotionGate drives the full gate: a worse candidate is refused
// with evidence, a better one is promoted and takes over serving.
func TestPromotionGate(t *testing.T) {
	// Incumbent: the useless zero model. Candidate: properly trained.
	// Labeled traffic carries the synthetic truth both are judged on.
	strong := trainModel(t, 1)
	srv, client := newTestServer(t, zeroModel{}, serve.Config{
		ShadowSampleEvery: 1,
		MinShadowLabeled:  32,
		PromoteMargin:     0.05,
	})

	// Gate 1: no candidate at all.
	if _, err := srv.PromoteShadow(); !errors.Is(err, serve.ErrNoShadow) {
		t.Fatalf("promote without candidate: %v, want ErrNoShadow", err)
	}

	// Gate 2: candidate with no labeled evidence yet.
	if err := srv.InstallShadow(strong, ml.ModelInfo{}, "v-strong"); err != nil {
		t.Fatal(err)
	}
	if _, err := srv.PromoteShadow(); !errors.Is(err, serve.ErrPromoteGate) {
		t.Fatalf("promote without evidence: %v, want ErrPromoteGate", err)
	}

	// Feed labeled traffic; the strong candidate crushes the zero
	// incumbent, so the gate opens.
	for i := 0; i < 4; i++ {
		rows := testRows(16, uint64(i)+900)
		postPredict(t, client, rows, targetsFor(rows))
	}
	st, err := srv.PromoteShadow()
	if err != nil {
		t.Fatalf("promote after evidence: %v (status %+v)", err, st)
	}
	if !st.Promotable || st.CandidateMAE >= st.IncumbentMAE {
		t.Fatalf("promoted on weak evidence: %+v", st)
	}
	if _, ok := srv.ShadowDecision(); ok {
		t.Fatal("candidate still installed after promotion")
	}
	// The promoted model now serves, bitwise.
	rows := testRows(8, 1234)
	got := postPredict(t, client, rows, nil)
	mustEqualBitwise(t, got, ml.PredictBatch(strong, rows), "served after promotion")

	// Gate 3: a worse candidate (zero model) against the now-strong
	// incumbent is refused no matter how much evidence it gathers.
	if err := srv.InstallShadow(zeroModel{}, ml.ModelInfo{}, "v-zero"); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		r := testRows(16, uint64(i)+2000)
		postPredict(t, client, r, targetsFor(r))
	}
	st2, err := srv.PromoteShadow()
	if !errors.Is(err, serve.ErrPromoteGate) {
		t.Fatalf("worse candidate promoted: err=%v status=%+v", err, st2)
	}
	got2 := postPredict(t, client, rows, nil)
	mustEqualBitwise(t, got2, ml.PredictBatch(strong, rows), "served after refused promotion")
}

// TestShadowPanicDisqualifies proves a candidate that panics on real
// traffic is disqualified in place while the incumbent serves on.
func TestShadowPanicDisqualifies(t *testing.T) {
	model := trainModel(t, 1)
	srv, client := newTestServer(t, model, serve.Config{ShadowSampleEvery: 1, MinShadowLabeled: 1})
	if err := srv.InstallShadow(panicModel{}, ml.ModelInfo{}, "v-panic"); err != nil {
		t.Fatal(err)
	}
	rows := testRows(8, 77)
	got := postPredict(t, client, rows, targetsFor(rows))
	mustEqualBitwise(t, got, ml.PredictBatch(model, rows), "served while candidate panics")
	st, ok := srv.ShadowDecision()
	if !ok {
		t.Fatal("candidate gone")
	}
	if st.Promotable || st.Reason == "" {
		t.Fatalf("panicking candidate still promotable: %+v", st)
	}
	if _, err := srv.PromoteShadow(); !errors.Is(err, serve.ErrPromoteGate) {
		t.Fatalf("promote after panic: %v, want ErrPromoteGate", err)
	}
}

// TestShadowEndpoints exercises the HTTP release-path surface:
// /v1/shadow install + status, /v1/promote refusal with evidence, and
// /v1/registryz aggregation.
func TestShadowEndpoints(t *testing.T) {
	model := trainModel(t, 1)
	dir := t.TempDir()
	candPath := filepath.Join(dir, "cand.json")
	if err := ml.SaveModelFile(candPath, trainModel(t, 2)); err != nil {
		t.Fatal(err)
	}
	_, client := newTestServer(t, model, serve.Config{ShadowSampleEvery: 1})

	post := func(path string, body any) (*http.Response, []byte) {
		t.Helper()
		raw, err := json.Marshal(body)
		if err != nil {
			t.Fatal(err)
		}
		resp, err := client.HTTP.Post(client.BaseURL+path, "application/json", bytes.NewReader(raw))
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		data := new(bytes.Buffer)
		_, _ = data.ReadFrom(resp.Body)
		return resp, data.Bytes()
	}

	// Install a candidate over HTTP.
	resp, body := post("/v1/shadow", serve.ShadowRequest{Path: candPath, Version: "v0002"})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("POST /v1/shadow: %d %s", resp.StatusCode, body)
	}
	// A bad path is a 422 with the error kind, and leaves no candidate
	// surprises behind.
	resp, _ = post("/v1/shadow", serve.ShadowRequest{Path: filepath.Join(dir, "missing.json")})
	if resp.StatusCode != http.StatusUnprocessableEntity {
		t.Fatalf("POST /v1/shadow with missing file: %d", resp.StatusCode)
	}

	// Promote with zero evidence: 409 carrying the window.
	resp, body = post("/v1/promote", struct{}{})
	if resp.StatusCode != http.StatusConflict {
		t.Fatalf("POST /v1/promote without evidence: %d %s", resp.StatusCode, body)
	}
	var pr serve.PromoteResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Promoted || pr.Error == "" {
		t.Fatalf("refusal body: %+v", pr)
	}

	// registryz aggregates model + shadow.
	rz, err := client.HTTP.Get(client.BaseURL + "/v1/registryz")
	if err != nil {
		t.Fatal(err)
	}
	defer rz.Body.Close()
	var reg serve.RegistryzResponse
	if err := json.NewDecoder(rz.Body).Decode(&reg); err != nil {
		t.Fatal(err)
	}
	if reg.Model == nil || reg.Shadow == nil {
		t.Fatalf("registryz missing sections: %+v", reg)
	}
	if reg.Shadow.VersionID != "v0002" {
		t.Fatalf("registryz shadow version = %q", reg.Shadow.VersionID)
	}

	// Clearing over HTTP removes it.
	resp, _ = post("/v1/shadow", serve.ShadowRequest{Clear: true})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("clear: %d", resp.StatusCode)
	}
	sresp, err := client.HTTP.Get(client.BaseURL + "/v1/shadow")
	if err != nil {
		t.Fatal(err)
	}
	sresp.Body.Close()
	if sresp.StatusCode != http.StatusNotFound {
		t.Fatalf("GET /v1/shadow after clear: %d", sresp.StatusCode)
	}
}

// TestReloadFailureUnderLoad is the satellite regression test: reload
// failures while traffic is in flight must keep the old generation
// serving every request bitwise-correctly, and the failure must be
// visible on /v1/modelz until a reload succeeds.
func TestReloadFailureUnderLoad(t *testing.T) {
	model := trainModel(t, 1)
	dir := t.TempDir()
	path := filepath.Join(dir, "model.json")
	if err := ml.SaveModelFile(path, model); err != nil {
		t.Fatal(err)
	}
	srv, client := newTestServer(t, nil, serve.Config{ModelPath: path})

	want := ml.PredictBatch(model, testRows(4, 42))

	// Traffic hammers while reloads fail.
	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 8)
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				rows := testRows(4, 42)
				got, err := client.PredictBatch(context.Background(), rows)
				if err != nil {
					errCh <- err
					return
				}
				for i := range got {
					for j := range got[i] {
						//lint:ignore floateq bitwise identity is the contract under test
						if got[i][j] != want[i][j] {
							errCh <- fmt.Errorf("worker %d: row %d col %d drifted during reload failures", w, i, j)
							return
						}
					}
				}
			}
		}(w)
	}

	// Corrupt the file on disk (not atomically — this simulates an
	// external writer breaking the artifact) and reload repeatedly.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	bad := append([]byte(nil), data...)
	bad[len(bad)/2] ^= 0x01
	if err := os.WriteFile(path, bad, 0o666); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if err := srv.Reload(); err == nil {
			t.Fatal("reload of corrupt artifact succeeded")
		} else if serve.ErrKind(err) != "corrupt" {
			t.Fatalf("reload error kind = %q, want corrupt", serve.ErrKind(err))
		}
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}

	// The failure is surfaced with its kind and the surviving
	// generation...
	mz, err := client.Modelz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if mz.LastReloadError == nil || mz.LastReloadError.Kind != "corrupt" {
		t.Fatalf("modelz.LastReloadError = %+v, want kind corrupt", mz.LastReloadError)
	}
	if mz.LastReloadError.Generation != mz.Generation {
		t.Fatalf("failure generation %d != serving generation %d", mz.LastReloadError.Generation, mz.Generation)
	}

	// ...and cleared by the next good reload.
	if err := ml.SaveModelFile(path, model); err != nil {
		t.Fatal(err)
	}
	if err := srv.Reload(); err != nil {
		t.Fatal(err)
	}
	mz, err = client.Modelz(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if mz.LastReloadError != nil {
		t.Fatalf("LastReloadError survives a successful reload: %+v", mz.LastReloadError)
	}
}

// TestShadowDispatchRace is the -race hammer on concurrent shadow
// churn: predict traffic (labeled and not) races against candidate
// install/clear/status/promote cycles. The assertions are the race
// detector itself plus bitwise-correct responses throughout.
func TestShadowDispatchRace(t *testing.T) {
	model := trainModel(t, 1)
	strong := trainModel(t, 2)
	srv, client := newTestServer(t, model, serve.Config{ShadowSampleEvery: 2, MinShadowLabeled: 8})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	errCh := make(chan error, 16)

	for w := 0; w < 6; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				rows := testRows(3+w, uint64(w*1000+i))
				var targets [][]float64
				if i%3 == 0 {
					targets = targetsFor(rows)
				}
				body, _ := json.Marshal(serve.PredictRequest{Rows: rows, Targets: targets})
				resp, err := client.HTTP.Post(client.BaseURL+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					errCh <- err
					return
				}
				var pr serve.PredictResponse
				err = json.NewDecoder(resp.Body).Decode(&pr)
				resp.Body.Close()
				if err != nil || resp.StatusCode != http.StatusOK {
					errCh <- fmt.Errorf("worker %d: status %d err %v", w, resp.StatusCode, err)
					return
				}
			}
		}(w)
	}

	for cycle := 0; cycle < 30; cycle++ {
		if err := srv.InstallShadow(strong, ml.ModelInfo{}, "v-race"); err != nil {
			t.Fatal(err)
		}
		_, _ = srv.ShadowDecision()
		if cycle%3 == 0 {
			// Promotion may or may not pass the gate depending on what the
			// window holds; both outcomes must be race-free.
			_, _ = srv.PromoteShadow()
		}
		srv.ClearShadow()
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errCh:
		t.Fatal(err)
	default:
	}
}
