package obs

import (
	"math"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. Adds are lock-free.
type Counter struct {
	bits atomic.Uint64 // float64 bits
}

// Add increases the counter by delta. Negative or NaN deltas are
// ignored: a counter only moves forward, and silently corrupting the
// total with a NaN would poison every later read.
func (c *Counter) Add(delta float64) {
	if !(delta > 0) {
		return
	}
	for {
		old := c.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if c.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc adds one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current total.
func (c *Counter) Value() float64 { return math.Float64frombits(c.bits.Load()) }

// Gauge is a last-value metric (queue depth, best round, makespan so
// far). Sets are lock-free.
type Gauge struct {
	bits atomic.Uint64 // float64 bits
}

// Set stores v.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add shifts the gauge by delta.
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// SetMax raises the gauge to v if v exceeds the current value — the
// high-watermark primitive (peak queue depth).
func (g *Gauge) SetMax(v float64) {
	for {
		old := g.bits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if g.bits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram accumulates a value distribution into fixed exponential
// buckets. Bucket i counts observations v <= bounds[i] (and greater
// than the previous bound); values above the last bound land in the
// overflow bucket. The fixed layout keeps observation O(log buckets)
// with no allocation and makes snapshots mergeable across processes.
type Histogram struct {
	mu       sync.Mutex
	bounds   []float64 // ascending upper bounds
	counts   []uint64  // len(bounds)+1; last entry is overflow
	count    uint64
	sum      float64
	min, max float64
	nans     uint64
}

// DefaultBuckets is the registry's default histogram layout: 48
// exponential buckets doubling from 1e-6, covering microsecond-scale
// durations up to ~2.8e8 — wide enough for both second-denominated
// stage timings and row counts.
func DefaultBuckets() []float64 { return ExpBuckets(1e-6, 2, 48) }

// ExpBuckets returns n ascending upper bounds starting at base and
// multiplying by growth: base, base*growth, base*growth^2, ...
// It panics on a non-positive base, growth <= 1, or n < 1.
func ExpBuckets(base, growth float64, n int) []float64 {
	if !(base > 0) || !(growth > 1) || n < 1 {
		panic("obs: ExpBuckets requires base > 0, growth > 1, n >= 1")
	}
	bounds := make([]float64, n)
	b := base
	for i := range bounds {
		bounds[i] = b
		b *= growth
	}
	return bounds
}

func newHistogram(bounds []float64) *Histogram {
	return &Histogram{
		bounds: append([]float64(nil), bounds...),
		counts: make([]uint64, len(bounds)+1),
		min:    math.Inf(1),
		max:    math.Inf(-1),
	}
}

// Observe records one value. NaN observations are counted separately
// rather than being dropped silently or poisoning the sum.
func (h *Histogram) Observe(v float64) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if math.IsNaN(v) {
		h.nans++
		return
	}
	// Binary search for the first bound >= v.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if h.bounds[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.counts[lo]++
	h.count++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Registry holds named metrics and the span recorder. The zero value
// is not usable; call NewRegistry.
type Registry struct {
	mu       sync.Mutex
	counters map[string]*Counter
	gauges   map[string]*Gauge
	hists    map[string]*Histogram

	created time.Time

	spanMu      sync.Mutex
	spans       []spanRecord
	spanDropped uint64
	nextSpanID  uint64
}

// maxSpans bounds the completed-span buffer; spans ended past the cap
// are dropped (and counted) rather than growing memory without bound
// in long-lived processes.
const maxSpans = 8192

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{
		counters: map[string]*Counter{},
		gauges:   map[string]*Gauge{},
		hists:    map[string]*Histogram{},
		created:  time.Now(),
	}
}

// Counter returns the named counter, creating it on first use. The
// same name always returns the same counter.
func (r *Registry) Counter(name string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c, ok := r.counters[name]
	if !ok {
		c = &Counter{}
		r.counters[name] = c
	}
	return c
}

// Gauge returns the named gauge, creating it on first use.
func (r *Registry) Gauge(name string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g, ok := r.gauges[name]
	if !ok {
		g = &Gauge{}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns the named histogram with the default exponential
// buckets, creating it on first use.
func (r *Registry) Histogram(name string) *Histogram {
	return r.HistogramBuckets(name, nil)
}

// HistogramBuckets returns the named histogram, creating it with the
// given ascending upper bounds on first use (nil means DefaultBuckets).
// An existing histogram keeps its original layout.
func (r *Registry) HistogramBuckets(name string, bounds []float64) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h, ok := r.hists[name]
	if !ok {
		if bounds == nil {
			bounds = DefaultBuckets()
		}
		h = newHistogram(bounds)
		r.hists[name] = h
	}
	return h
}

// Reset drops every metric and recorded span, returning the registry
// to its initial state. Metric handles obtained before Reset keep
// recording into the old, now-unreachable metrics.
func (r *Registry) Reset() {
	r.mu.Lock()
	r.counters = map[string]*Counter{}
	r.gauges = map[string]*Gauge{}
	r.hists = map[string]*Histogram{}
	r.created = time.Now()
	r.mu.Unlock()
	r.spanMu.Lock()
	r.spans = nil
	r.spanDropped = 0
	r.spanMu.Unlock()
}
