package obs

import (
	"encoding/json"
	"math"
	"sync"
	"sync/atomic"
	"testing"
)

// TestSnapshotUnderConcurrentLoad is the snapshot-concurrency gate
// (run under -race by `make race`): snapshots taken WHILE writers are
// hammering the registry must each serialize to well-formed JSON, and
// a single reader's successive snapshots must observe monotone
// counters and histogram totals — a snapshot may be stale, never
// inconsistent or torn.
func TestSnapshotUnderConcurrentLoad(t *testing.T) {
	r := NewRegistry()
	const writers = 8
	const iters = 2000
	var stop atomic.Bool
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("load.requests.total").Inc()
				r.Counter("load.rows.total").Add(float64(1 + i%7))
				r.Gauge("load.depth").Set(float64(i % 13))
				r.Gauge("load.peak").SetMax(float64(i))
				r.Histogram("load.seconds").Observe(float64(i%97) / 100)
			}
		}(w)
	}

	// Several concurrent readers, each checking its own monotone view.
	const readers = 4
	const snapsPerReader = 60
	readerErrs := make(chan error, readers)
	var rwg sync.WaitGroup
	for rd := 0; rd < readers; rd++ {
		rwg.Add(1)
		go func() {
			defer rwg.Done()
			var prevReq, prevRows float64
			var prevHistCount uint64
			var prevHistSum float64
			for i := 0; i < snapsPerReader && !stop.Load(); i++ {
				snap := r.Snapshot()

				// Well-formed JSON that round-trips.
				data, err := snap.WriteJSON()
				if err != nil {
					readerErrs <- err
					return
				}
				var back Snapshot
				if err := json.Unmarshal(data, &back); err != nil {
					readerErrs <- err
					return
				}
				if back.SchemaVersion != SnapshotSchemaVersion {
					t.Errorf("schema version %d after round-trip", back.SchemaVersion)
				}

				// Counters and histogram totals never run backwards.
				if c := snap.Counters["load.requests.total"]; c < prevReq {
					t.Errorf("counter ran backwards: %v -> %v", prevReq, c)
				} else {
					prevReq = c
				}
				if c := snap.Counters["load.rows.total"]; c < prevRows {
					t.Errorf("row counter ran backwards: %v -> %v", prevRows, c)
				} else {
					prevRows = c
				}
				h := snap.Histograms["load.seconds"]
				if h.Count < prevHistCount || h.Sum < prevHistSum {
					t.Errorf("histogram totals ran backwards: count %d->%d sum %v->%v",
						prevHistCount, h.Count, prevHistSum, h.Sum)
				}
				prevHistCount, prevHistSum = h.Count, h.Sum

				// Internal consistency of each snapshot.
				if h.Count > 0 {
					if h.Min > h.Max || math.IsNaN(h.Mean) {
						t.Errorf("histogram min/max/mean inconsistent: %+v", h)
					}
					if h.P50 > h.P95 || h.P95 > h.P99 {
						t.Errorf("quantiles out of order: p50=%v p95=%v p99=%v", h.P50, h.P95, h.P99)
					}
					var bucketed uint64
					for _, b := range h.Buckets {
						bucketed += b.Count
					}
					if bucketed+h.Overflow+h.NaNs < h.Count {
						t.Errorf("buckets under-count: %d+%d+%d < %d", bucketed, h.Overflow, h.NaNs, h.Count)
					}
				}
			}
			readerErrs <- nil
		}()
	}

	wg.Wait()
	rwg.Wait()
	stop.Store(true)
	close(readerErrs)
	for err := range readerErrs {
		if err != nil {
			t.Fatal(err)
		}
	}

	// Quiescent totals are exact.
	final := r.Snapshot()
	if got := final.Counters["load.requests.total"]; got != writers*iters {
		t.Fatalf("final counter = %v, want %d", got, writers*iters)
	}
	if got := final.Histograms["load.seconds"].Count; got != writers*iters {
		t.Fatalf("final histogram count = %d, want %d", got, writers*iters)
	}
	if got := final.Gauges["load.peak"]; got != iters-1 {
		t.Fatalf("final peak gauge = %v, want %d", got, iters-1)
	}
}
