package obs

import "strings"

// This file adds the one-dimensional label primitive: a labeled counter
// is an ordinary counter whose full name is the constant metric name
// plus a sanitized runtime label segment (e.g.
// "sched.tenant.jobs.total" + "prod" → "sched.tenant.jobs.total.prod").
// Labels let per-tenant and per-deadline-class scheduling metrics keep
// the registry's flat-name model — snapshots, the summary table, and
// the obsnames analyzer all keep working — while the metric name itself
// stays a compile-time constant the analyzer can verify.

// SanitizeLabel maps an arbitrary runtime label value onto the metric
// name charset: lowercased, every byte outside [a-z0-9_] replaced with
// '_', and the empty label spelled "none" so a missing tenant still
// produces a valid metric name.
func SanitizeLabel(v string) string {
	if v == "" {
		return "none"
	}
	var b strings.Builder
	b.Grow(len(v))
	for i := 0; i < len(v); i++ {
		c := v[i]
		switch {
		case c >= 'a' && c <= 'z', c >= '0' && c <= '9', c == '_':
			b.WriteByte(c)
		case c >= 'A' && c <= 'Z':
			b.WriteByte(c - 'A' + 'a')
		default:
			b.WriteByte('_')
		}
	}
	return b.String()
}

// LabeledCounter returns the counter registered under the constant
// metric name extended with one sanitized label segment. The name must
// be a compile-time constant (the obsnames analyzer checks it); the
// label may be any runtime string.
func (r *Registry) LabeledCounter(name, label string) *Counter {
	return r.Counter(name + "." + SanitizeLabel(label))
}

// AddLabeled adds delta to the labeled counter in the default registry.
func AddLabeled(name, label string, delta float64) {
	defaultRegistry.LabeledCounter(name, label).Add(delta)
}
