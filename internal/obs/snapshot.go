package obs

import (
	"encoding/json"
	"fmt"
	"math"
	"os"
	"sort"
	"strings"
	"time"
)

// SnapshotSchemaVersion identifies the JSON layout written by
// Snapshot; bump it on breaking changes so downstream dashboards can
// dispatch.
const SnapshotSchemaVersion = 1

// Snapshot is a point-in-time copy of a registry, ready for JSON
// serialization. All maps are plain values — mutating a snapshot never
// touches the live registry.
type Snapshot struct {
	SchemaVersion int                          `json:"schema_version"`
	TakenUnixMs   int64                        `json:"taken_unix_ms"`
	UptimeSec     float64                      `json:"uptime_sec"`
	Counters      map[string]float64           `json:"counters"`
	Gauges        map[string]float64           `json:"gauges"`
	Histograms    map[string]HistogramSnapshot `json:"histograms"`
	Spans         []SpanSnapshot               `json:"spans"`
	SpansDropped  uint64                       `json:"spans_dropped,omitempty"`
}

// HistogramSnapshot summarizes one histogram: exact count/sum/min/max
// plus the non-empty buckets and bucket-interpolated quantiles.
type HistogramSnapshot struct {
	Count    uint64        `json:"count"`
	Sum      float64       `json:"sum"`
	Min      float64       `json:"min"`
	Max      float64       `json:"max"`
	Mean     float64       `json:"mean"`
	P50      float64       `json:"p50"`
	P95      float64       `json:"p95"`
	P99      float64       `json:"p99"`
	NaNs     uint64        `json:"nans,omitempty"`
	Overflow uint64        `json:"overflow,omitempty"`
	Buckets  []BucketCount `json:"buckets,omitempty"`
}

// BucketCount is one non-empty histogram bucket: the count of
// observations at or below Le (and above the previous bound).
type BucketCount struct {
	Le    float64 `json:"le"`
	Count uint64  `json:"count"`
}

// SpanSnapshot is one completed span with its completed children
// nested beneath it. Start is the offset from registry creation.
type SpanSnapshot struct {
	Name        string         `json:"name"`
	StartSec    float64        `json:"start_sec"`
	DurationSec float64        `json:"duration_sec"`
	Rows        int64          `json:"rows,omitempty"`
	Children    []SpanSnapshot `json:"children,omitempty"`
}

// Snapshot captures the registry's current state.
func (r *Registry) Snapshot() Snapshot {
	snap := Snapshot{
		SchemaVersion: SnapshotSchemaVersion,
		TakenUnixMs:   time.Now().UnixMilli(),
		Counters:      map[string]float64{},
		Gauges:        map[string]float64{},
		Histograms:    map[string]HistogramSnapshot{},
	}
	r.mu.Lock()
	snap.UptimeSec = time.Since(r.created).Seconds()
	counters := make(map[string]*Counter, len(r.counters))
	for k, v := range r.counters {
		counters[k] = v
	}
	gauges := make(map[string]*Gauge, len(r.gauges))
	for k, v := range r.gauges {
		gauges[k] = v
	}
	hists := make(map[string]*Histogram, len(r.hists))
	for k, v := range r.hists {
		hists[k] = v
	}
	r.mu.Unlock()

	for name, c := range counters {
		snap.Counters[name] = c.Value()
	}
	for name, g := range gauges {
		snap.Gauges[name] = g.Value()
	}
	for name, h := range hists {
		snap.Histograms[name] = h.snapshot()
	}

	r.spanMu.Lock()
	records := append([]spanRecord(nil), r.spans...)
	snap.SpansDropped = r.spanDropped
	r.spanMu.Unlock()
	snap.Spans = buildSpanTree(records)
	return snap
}

// snapshot copies the histogram state under its lock.
func (h *Histogram) snapshot() HistogramSnapshot {
	h.mu.Lock()
	defer h.mu.Unlock()
	s := HistogramSnapshot{
		Count:    h.count,
		Sum:      h.sum,
		NaNs:     h.nans,
		Overflow: h.counts[len(h.counts)-1],
	}
	if h.count == 0 {
		return s
	}
	s.Min, s.Max = h.min, h.max
	s.Mean = h.sum / float64(h.count)
	for i, c := range h.counts[:len(h.bounds)] {
		if c > 0 {
			s.Buckets = append(s.Buckets, BucketCount{Le: h.bounds[i], Count: c})
		}
	}
	s.P50 = h.quantileLocked(0.50)
	s.P95 = h.quantileLocked(0.95)
	s.P99 = h.quantileLocked(0.99)
	return s
}

// quantileLocked estimates quantile q as the upper bound of the bucket
// containing the q-th observation, clamped to the observed min/max.
// Callers must hold h.mu.
func (h *Histogram) quantileLocked(q float64) float64 {
	if h.count == 0 {
		return math.NaN()
	}
	target := uint64(math.Ceil(q * float64(h.count)))
	if target < 1 {
		target = 1
	}
	var cum uint64
	for i, c := range h.counts[:len(h.bounds)] {
		cum += c
		if cum >= target {
			est := h.bounds[i]
			if est > h.max {
				est = h.max
			}
			if est < h.min {
				est = h.min
			}
			return est
		}
	}
	return h.max
}

// buildSpanTree nests completed spans under their completed parents.
// A span whose parent has not ended (or was dropped) is promoted to a
// root, so snapshots taken mid-stage still show the finished work.
// Siblings sort by start time.
func buildSpanTree(records []spanRecord) []SpanSnapshot {
	if len(records) == 0 {
		return nil
	}
	byID := make(map[uint64]int, len(records))
	for i, rec := range records {
		byID[rec.id] = i
	}
	nodes := make([]SpanSnapshot, len(records))
	for i, rec := range records {
		nodes[i] = SpanSnapshot{
			Name:        rec.name,
			StartSec:    rec.startSec,
			DurationSec: rec.durSec,
			Rows:        rec.rows,
		}
	}
	children := make(map[int][]int, len(records))
	var rootIdx []int
	for i, rec := range records {
		if pi, ok := byID[rec.parent]; ok && rec.parent != 0 {
			children[pi] = append(children[pi], i)
		} else {
			rootIdx = append(rootIdx, i)
		}
	}
	var build func(i int) SpanSnapshot
	build = func(i int) SpanSnapshot {
		n := nodes[i]
		kids := children[i]
		sort.Slice(kids, func(a, b int) bool { return nodes[kids[a]].StartSec < nodes[kids[b]].StartSec })
		for _, k := range kids {
			n.Children = append(n.Children, build(k))
		}
		return n
	}
	sort.Slice(rootIdx, func(a, b int) bool { return nodes[rootIdx[a]].StartSec < nodes[rootIdx[b]].StartSec })
	out := make([]SpanSnapshot, 0, len(rootIdx))
	for _, i := range rootIdx {
		out = append(out, build(i))
	}
	return out
}

// MetricKeys returns every counter, gauge, and histogram name in the
// snapshot, sorted, each prefixed with its kind ("counter:...") — the
// stable identity the golden regression test pins.
func (s Snapshot) MetricKeys() []string {
	var keys []string
	for k := range s.Counters {
		keys = append(keys, "counter:"+k)
	}
	for k := range s.Gauges {
		keys = append(keys, "gauge:"+k)
	}
	for k := range s.Histograms {
		keys = append(keys, "histogram:"+k)
	}
	sort.Strings(keys)
	return keys
}

// WriteJSON writes the snapshot as indented JSON.
func (s Snapshot) WriteJSON() ([]byte, error) {
	return json.MarshalIndent(s, "", "  ")
}

// WriteFile writes the snapshot as indented JSON to path.
func (s Snapshot) WriteFile(path string) error {
	data, err := s.WriteJSON()
	if err != nil {
		return fmt.Errorf("obs: marshal snapshot: %w", err)
	}
	if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
		return fmt.Errorf("obs: write snapshot: %w", err)
	}
	return nil
}

// Summary renders the snapshot as a fixed-width table for stderr: the
// counters and gauges sorted by name, one line per histogram with its
// headline statistics, and the span tree indented by nesting depth.
func (s Snapshot) Summary() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== metrics snapshot (uptime %.2fs) ==\n", s.UptimeSec)
	if len(s.Counters) > 0 {
		fmt.Fprintf(&b, "counters:\n")
		for _, k := range sortedKeys(s.Counters) {
			fmt.Fprintf(&b, "  %-36s %16.6g\n", k, s.Counters[k])
		}
	}
	if len(s.Gauges) > 0 {
		fmt.Fprintf(&b, "gauges:\n")
		for _, k := range sortedKeys(s.Gauges) {
			fmt.Fprintf(&b, "  %-36s %16.6g\n", k, s.Gauges[k])
		}
	}
	if len(s.Histograms) > 0 {
		fmt.Fprintf(&b, "histograms:\n")
		names := make([]string, 0, len(s.Histograms))
		for k := range s.Histograms {
			names = append(names, k)
		}
		sort.Strings(names)
		for _, k := range names {
			h := s.Histograms[k]
			fmt.Fprintf(&b, "  %-36s n=%-8d mean=%-12.6g p50=%-12.6g p95=%-12.6g max=%-12.6g\n",
				k, h.Count, h.Mean, h.P50, h.P95, h.Max)
		}
	}
	if len(s.Spans) > 0 {
		fmt.Fprintf(&b, "spans:\n")
		var walk func(sp SpanSnapshot, depth int)
		walk = func(sp SpanSnapshot, depth int) {
			pad := strings.Repeat("  ", depth+1)
			line := fmt.Sprintf("%s%s", pad, sp.Name)
			fmt.Fprintf(&b, "%-38s %12.4fs", line, sp.DurationSec)
			if sp.Rows > 0 {
				rate := float64(sp.Rows) / sp.DurationSec
				if sp.DurationSec <= 0 || math.IsInf(rate, 0) {
					fmt.Fprintf(&b, "  rows=%d", sp.Rows)
				} else {
					fmt.Fprintf(&b, "  rows=%d (%.0f rows/s)", sp.Rows, rate)
				}
			}
			fmt.Fprintf(&b, "\n")
			for _, c := range sp.Children {
				walk(c, depth+1)
			}
		}
		for _, sp := range s.Spans {
			walk(sp, 0)
		}
	}
	if s.SpansDropped > 0 {
		fmt.Fprintf(&b, "spans dropped: %d\n", s.SpansDropped)
	}
	return b.String()
}

func sortedKeys(m map[string]float64) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
