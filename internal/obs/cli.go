package obs

import (
	"fmt"
	"io"
)

// DumpCLI is the -metrics exit path shared by the command-line tools:
// it snapshots the default registry, writes the JSON document to path,
// and prints the human-readable summary table to w (the commands pass
// stderr, keeping stdout clean for the experiment tables).
func DumpCLI(path string, w io.Writer) error {
	snap := Default().Snapshot()
	if err := snap.WriteFile(path); err != nil {
		return err
	}
	if w != nil {
		fmt.Fprint(w, snap.Summary())
	}
	return nil
}
