package obs

import "testing"

func TestSanitizeLabel(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", "none"},
		{"prod", "prod"},
		{"Prod", "prod"},
		{"team-a/batch", "team_a_batch"},
		{"Tenant 7", "tenant_7"},
		{"_ok_9", "_ok_9"},
		{"π", "__"}, // two UTF-8 bytes, both sanitized
	}
	for _, tc := range cases {
		if got := SanitizeLabel(tc.in); got != tc.want {
			t.Errorf("SanitizeLabel(%q) = %q, want %q", tc.in, got, tc.want)
		}
	}
}

func TestLabeledCounter(t *testing.T) {
	r := NewRegistry()
	r.LabeledCounter("sched.tenant.jobs.total", "prod").Add(3)
	r.LabeledCounter("sched.tenant.jobs.total", "Prod").Inc()
	r.LabeledCounter("sched.tenant.jobs.total", "batch").Inc()
	r.LabeledCounter("sched.tenant.jobs.total", "").Inc()

	// Labels sharing a sanitized form share the counter; distinct
	// labels get distinct counters under the same constant name.
	if got := r.Counter("sched.tenant.jobs.total.prod").Value(); got != 4 {
		t.Errorf("prod counter = %v, want 4", got)
	}
	if got := r.Counter("sched.tenant.jobs.total.batch").Value(); got != 1 {
		t.Errorf("batch counter = %v, want 1", got)
	}
	if got := r.Counter("sched.tenant.jobs.total.none").Value(); got != 1 {
		t.Errorf("empty-label counter = %v, want 1", got)
	}

	// The default-registry helper records into Default().
	Reset()
	defer Reset()
	AddLabeled("sched.tenant.missed.total", "team-a", 2)
	if got := Default().Counter("sched.tenant.missed.total.team_a").Value(); got != 2 {
		t.Errorf("AddLabeled = %v, want 2", got)
	}
}
