// Package obs is the pipeline's zero-dependency observability layer: a
// process-wide metrics registry (monotonic counters, last-value gauges,
// fixed exponential-bucket histograms) plus lightweight span-based
// stage tracing. The hot layers of the prediction pipeline — dataset
// generation, XGBoost training rounds, batched inference, and the
// scheduling simulation — record into the default registry; the
// command-line tools snapshot it on exit (the -metrics flag) as a
// structured JSON document and a human-readable summary table.
//
// Everything is safe for concurrent use: counters and gauges are
// lock-free atomics, histograms take a short mutex per observation, and
// spans may be started, annotated, and ended from any goroutine. The
// recording primitives are cheap enough to leave enabled
// unconditionally (an atomic add per counter bump, one mutex'd bucket
// increment per histogram observation at per-chunk — not per-row —
// granularity).
package obs

import "time"

// defaultRegistry is the process-wide registry the package-level
// helpers and the instrumented pipeline layers record into.
var defaultRegistry = NewRegistry()

// Now returns the current wall-clock time for telemetry timing. The
// deterministic pipeline packages (internal/ml, dataset, sched, ...)
// are forbidden from calling time.Now directly — the nondeterminism
// analyzer enforces it — so that a clock read in those packages is
// visibly telemetry-only: obs values never feed back into model or
// scheduling computation.
func Now() time.Time { return time.Now() }

// SinceSeconds returns the wall-clock seconds elapsed since start, the
// unit every obs duration metric records.
func SinceSeconds(start time.Time) float64 { return time.Since(start).Seconds() }

// Default returns the process-wide registry.
func Default() *Registry { return defaultRegistry }

// Add adds delta to the named counter in the default registry.
func Add(name string, delta float64) { defaultRegistry.Counter(name).Add(delta) }

// Inc increments the named counter in the default registry by one.
func Inc(name string) { defaultRegistry.Counter(name).Add(1) }

// Set sets the named gauge in the default registry.
func Set(name string, v float64) { defaultRegistry.Gauge(name).Set(v) }

// SetMax raises the named gauge in the default registry to v if v
// exceeds its current value.
func SetMax(name string, v float64) { defaultRegistry.Gauge(name).SetMax(v) }

// Observe records v into the named histogram in the default registry.
func Observe(name string, v float64) { defaultRegistry.Histogram(name).Observe(v) }

// StartSpan begins a root span on the default registry.
func StartSpan(name string) *Span { return defaultRegistry.StartSpan(name) }

// TakeSnapshot captures the default registry's current state.
func TakeSnapshot() Snapshot { return defaultRegistry.Snapshot() }

// Reset clears the default registry (tests and long-lived servers that
// want per-window snapshots).
func Reset() { defaultRegistry.Reset() }
