package obs

import (
	"encoding/json"
	"math"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterAdd(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("c")
	c.Add(2)
	c.Inc()
	if got := c.Value(); got != 3 {
		t.Fatalf("counter = %v, want 3", got)
	}
	// Counters only move forward; negative and NaN adds are ignored.
	c.Add(-5)
	c.Add(math.NaN())
	if got := c.Value(); got != 3 {
		t.Fatalf("counter after invalid adds = %v, want 3", got)
	}
	if r.Counter("c") != c {
		t.Fatal("same name returned a different counter")
	}
}

func TestGaugeSetAddMax(t *testing.T) {
	r := NewRegistry()
	g := r.Gauge("g")
	g.Set(4)
	g.Add(-1.5)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("gauge = %v, want 2.5", got)
	}
	g.SetMax(2)
	if got := g.Value(); got != 2.5 {
		t.Fatalf("SetMax lowered the gauge to %v", got)
	}
	g.SetMax(10)
	if got := g.Value(); got != 10 {
		t.Fatalf("SetMax = %v, want 10", got)
	}
}

func TestExpBuckets(t *testing.T) {
	b := ExpBuckets(1, 2, 4)
	want := []float64{1, 2, 4, 8}
	for i := range want {
		if b[i] != want[i] {
			t.Fatalf("bucket %d = %v, want %v", i, b[i], want[i])
		}
	}
	for _, bad := range []func(){
		func() { ExpBuckets(0, 2, 4) },
		func() { ExpBuckets(1, 1, 4) },
		func() { ExpBuckets(1, 2, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("invalid ExpBuckets did not panic")
				}
			}()
			bad()
		}()
	}
}

func TestHistogramObserve(t *testing.T) {
	r := NewRegistry()
	h := r.HistogramBuckets("h", ExpBuckets(1, 2, 4)) // bounds 1 2 4 8
	for _, v := range []float64{0.5, 1, 1.5, 3, 100} {
		h.Observe(v)
	}
	h.Observe(math.NaN())
	s := h.snapshot()
	if s.Count != 5 {
		t.Fatalf("count = %d, want 5", s.Count)
	}
	if s.NaNs != 1 {
		t.Fatalf("nans = %d, want 1", s.NaNs)
	}
	if s.Overflow != 1 {
		t.Fatalf("overflow = %d, want 1 (the 100)", s.Overflow)
	}
	if s.Min != 0.5 || s.Max != 100 {
		t.Fatalf("min/max = %v/%v, want 0.5/100", s.Min, s.Max)
	}
	if got := s.Sum; got != 106 {
		t.Fatalf("sum = %v, want 106", got)
	}
	// Buckets: le=1 holds {0.5, 1}, le=2 holds {1.5}, le=4 holds {3}.
	wantBuckets := map[float64]uint64{1: 2, 2: 1, 4: 1}
	for _, bc := range s.Buckets {
		if wantBuckets[bc.Le] != bc.Count {
			t.Fatalf("bucket le=%v count=%d, want %d", bc.Le, bc.Count, wantBuckets[bc.Le])
		}
		delete(wantBuckets, bc.Le)
	}
	if len(wantBuckets) != 0 {
		t.Fatalf("missing buckets: %v", wantBuckets)
	}
	// Quantiles are bucket upper bounds clamped to the observed range.
	if s.P50 != 2 {
		t.Fatalf("p50 = %v, want 2 (3rd of 5 obs is in le=2)", s.P50)
	}
	if s.P99 != 100 {
		t.Fatalf("p99 = %v, want max 100", s.P99)
	}
}

func TestHistogramEmptySnapshot(t *testing.T) {
	r := NewRegistry()
	s := r.Histogram("empty").snapshot()
	if s.Count != 0 || s.Min != 0 || s.Max != 0 || len(s.Buckets) != 0 {
		t.Fatalf("empty histogram snapshot = %+v", s)
	}
}

func TestSpanTreeNesting(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("root")
	child := root.StartSpan("child")
	grand := child.StartSpan("grand")
	grand.AddRows(7)
	grand.End()
	child.End()
	sibling := root.StartSpan("sibling")
	sibling.End()
	root.AddRows(100)
	root.End()

	snap := r.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("got %d roots, want 1: %+v", len(snap.Spans), snap.Spans)
	}
	rootSnap := snap.Spans[0]
	if rootSnap.Name != "root" || rootSnap.Rows != 100 {
		t.Fatalf("root = %+v", rootSnap)
	}
	if len(rootSnap.Children) != 2 {
		t.Fatalf("root has %d children, want 2", len(rootSnap.Children))
	}
	if rootSnap.Children[0].Name != "child" || rootSnap.Children[1].Name != "sibling" {
		t.Fatalf("children out of start order: %+v", rootSnap.Children)
	}
	if len(rootSnap.Children[0].Children) != 1 || rootSnap.Children[0].Children[0].Rows != 7 {
		t.Fatalf("grandchild wrong: %+v", rootSnap.Children[0].Children)
	}
	// Every ended span also lands in a duration histogram.
	for _, name := range []string{"root", "child", "grand", "sibling"} {
		h, ok := snap.Histograms["span."+name+".seconds"]
		if !ok || h.Count != 1 {
			t.Fatalf("span histogram for %q missing or empty", name)
		}
	}
}

func TestSpanOrphanPromotedToRoot(t *testing.T) {
	r := NewRegistry()
	parent := r.StartSpan("parent")
	child := parent.StartSpan("child")
	child.End()
	// Parent never ends: the child must still appear, as a root.
	snap := r.Snapshot()
	if len(snap.Spans) != 1 || snap.Spans[0].Name != "child" {
		t.Fatalf("orphan child not promoted: %+v", snap.Spans)
	}
}

func TestSpanEndIdempotent(t *testing.T) {
	r := NewRegistry()
	sp := r.StartSpan("once")
	sp.End()
	sp.End()
	snap := r.Snapshot()
	if len(snap.Spans) != 1 {
		t.Fatalf("double End recorded %d spans", len(snap.Spans))
	}
	if h := snap.Histograms["span.once.seconds"]; h.Count != 1 {
		t.Fatalf("double End observed %d durations", h.Count)
	}
}

func TestNilSpanIsNoOp(t *testing.T) {
	var sp *Span
	sp.AddRows(5)
	if sp.Rows() != 0 {
		t.Fatal("nil span has rows")
	}
	if sp.End() != 0 {
		t.Fatal("nil span End returned nonzero")
	}
	// A nil parent starts a root span on the default registry.
	child := sp.StartSpan("from-nil")
	if child == nil {
		t.Fatal("StartSpan on nil parent returned nil")
	}
	child.End()
}

func TestSpanBufferCap(t *testing.T) {
	r := NewRegistry()
	for i := 0; i < maxSpans+10; i++ {
		r.StartSpan("s").End()
	}
	snap := r.Snapshot()
	if snap.SpansDropped != 10 {
		t.Fatalf("dropped = %d, want 10", snap.SpansDropped)
	}
}

func TestTimed(t *testing.T) {
	r := NewRegistry()
	ran := false
	d := r.Timed("stage", func() { ran = true; time.Sleep(time.Millisecond) })
	if !ran || d <= 0 {
		t.Fatalf("Timed ran=%v d=%v", ran, d)
	}
	if len(r.Snapshot().Spans) != 1 {
		t.Fatal("Timed did not record a span")
	}
}

func TestSnapshotJSONRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter("rows.total").Add(42)
	r.Gauge("depth").Set(3)
	r.Histogram("lat").Observe(0.25)
	sp := r.StartSpan("stage")
	sp.AddRows(42)
	sp.End()

	snap := r.Snapshot()
	path := filepath.Join(t.TempDir(), "m.json")
	if err := snap.WriteFile(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var back Snapshot
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatalf("snapshot JSON does not parse: %v", err)
	}
	if back.SchemaVersion != SnapshotSchemaVersion {
		t.Fatalf("schema version = %d", back.SchemaVersion)
	}
	if back.Counters["rows.total"] != 42 || back.Gauges["depth"] != 3 {
		t.Fatalf("round trip lost metrics: %+v", back)
	}
	if back.Histograms["lat"].Count != 1 {
		t.Fatalf("round trip lost histogram: %+v", back.Histograms)
	}
	if len(back.Spans) != 1 || back.Spans[0].Rows != 42 {
		t.Fatalf("round trip lost spans: %+v", back.Spans)
	}
}

func TestMetricKeys(t *testing.T) {
	r := NewRegistry()
	r.Counter("b").Inc()
	r.Gauge("a").Set(1)
	r.Histogram("c").Observe(1)
	keys := r.Snapshot().MetricKeys()
	want := []string{"counter:b", "gauge:a", "histogram:c"}
	if len(keys) != len(want) {
		t.Fatalf("keys = %v", keys)
	}
	for i := range want {
		if keys[i] != want[i] {
			t.Fatalf("keys = %v, want %v", keys, want)
		}
	}
}

func TestSummaryMentionsEverything(t *testing.T) {
	r := NewRegistry()
	r.Counter("jobs.total").Add(5)
	r.Gauge("queue.depth").Set(2)
	r.Histogram("wait.seconds").Observe(1.5)
	sp := r.StartSpan("run")
	sp.AddRows(5)
	sp.End()
	out := r.Snapshot().Summary()
	for _, want := range []string{"jobs.total", "queue.depth", "wait.seconds", "run", "rows=5"} {
		if !strings.Contains(out, want) {
			t.Fatalf("summary missing %q:\n%s", want, out)
		}
	}
}

func TestReset(t *testing.T) {
	r := NewRegistry()
	r.Counter("x").Inc()
	r.StartSpan("s").End()
	r.Reset()
	snap := r.Snapshot()
	if len(snap.Counters) != 0 || len(snap.Spans) != 0 || len(snap.Histograms) != 0 {
		t.Fatalf("Reset left state: %+v", snap)
	}
}

// TestConcurrentRecording exercises every primitive from many
// goroutines at once; run under -race this is the package's
// thread-safety proof.
func TestConcurrentRecording(t *testing.T) {
	r := NewRegistry()
	root := r.StartSpan("root")
	const workers = 8
	const iters = 500
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				r.Counter("c").Inc()
				r.Gauge("g").SetMax(float64(i))
				r.Histogram("h").Observe(float64(i))
				root.AddRows(1)
				if i%100 == 0 {
					sp := root.StartSpan("child")
					sp.AddRows(1)
					sp.End()
				}
			}
		}(w)
	}
	// Snapshots race with recording by design; they must be consistent,
	// not quiescent.
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 50; i++ {
			_ = r.Snapshot()
		}
	}()
	wg.Wait()
	<-done
	root.End()
	snap := r.Snapshot()
	if got := snap.Counters["c"]; got != workers*iters {
		t.Fatalf("counter = %v, want %d", got, workers*iters)
	}
	if got := snap.Histograms["h"].Count; got != workers*iters {
		t.Fatalf("histogram count = %d, want %d", got, workers*iters)
	}
	if got := snap.Gauges["g"]; got != iters-1 {
		t.Fatalf("gauge max = %v, want %d", got, iters-1)
	}
	if got := snap.Spans[len(snap.Spans)-1]; got.Rows != workers*iters {
		t.Fatalf("root rows = %d, want %d", got.Rows, workers*iters)
	}
}

func TestDefaultRegistryHelpers(t *testing.T) {
	Reset()
	defer Reset()
	Add("pkg.counter", 2)
	Inc("pkg.counter")
	Set("pkg.gauge", 7)
	SetMax("pkg.gauge", 9)
	Observe("pkg.hist", 0.5)
	sp := StartSpan("pkg.span")
	sp.End()
	snap := TakeSnapshot()
	if snap.Counters["pkg.counter"] != 3 || snap.Gauges["pkg.gauge"] != 9 {
		t.Fatalf("helpers lost data: %+v", snap)
	}
	if snap.Histograms["pkg.hist"].Count != 1 {
		t.Fatal("Observe helper lost data")
	}
	if Default() == nil {
		t.Fatal("Default returned nil")
	}
}
