package obs

import (
	"sync/atomic"
	"time"
)

// Span is one timed stage of the pipeline. A span records wall time
// from StartSpan to End, an optional row count (AddRows), and its
// parent, so snapshots can render the stage tree. Spans are cheap —
// two time.Now calls and one buffered record — and safe to start,
// annotate, and end from any goroutine.
type Span struct {
	reg    *Registry
	name   string
	id     uint64
	parent uint64 // 0 means root
	start  time.Time
	rows   atomic.Int64
	ended  atomic.Bool
}

// spanRecord is the completed-span entry buffered in the registry.
type spanRecord struct {
	id, parent uint64
	name       string
	startSec   float64 // offset from registry creation
	durSec     float64
	rows       int64
}

// StartSpan begins a root span.
func (r *Registry) StartSpan(name string) *Span {
	return r.newSpan(name, 0)
}

func (r *Registry) newSpan(name string, parent uint64) *Span {
	r.spanMu.Lock()
	r.nextSpanID++
	id := r.nextSpanID
	r.spanMu.Unlock()
	return &Span{reg: r, name: name, id: id, parent: parent, start: time.Now()}
}

// StartSpan begins a child span of s. A nil receiver starts a root
// span on the default registry, so call sites can thread an optional
// parent without guarding.
func (s *Span) StartSpan(name string) *Span {
	if s == nil {
		return defaultRegistry.StartSpan(name)
	}
	return s.reg.newSpan(name, s.id)
}

// AddRows adds n to the span's processed-row count.
func (s *Span) AddRows(n int) {
	if s == nil {
		return
	}
	s.rows.Add(int64(n))
}

// Rows returns the row count recorded so far.
func (s *Span) Rows() int64 {
	if s == nil {
		return 0
	}
	return s.rows.Load()
}

// End completes the span, records it in the registry, and observes its
// duration into the histogram "span.<name>.seconds". End is
// idempotent: only the first call records; later calls return the
// duration measured then-current but change nothing. It returns the
// wall time since StartSpan. A nil span is a no-op.
func (s *Span) End() time.Duration {
	if s == nil {
		return 0
	}
	d := time.Since(s.start)
	if !s.ended.CompareAndSwap(false, true) {
		return d
	}
	s.reg.Histogram("span." + s.name + ".seconds").Observe(d.Seconds())
	rec := spanRecord{
		id:       s.id,
		parent:   s.parent,
		name:     s.name,
		startSec: s.start.Sub(s.reg.created).Seconds(),
		durSec:   d.Seconds(),
		rows:     s.rows.Load(),
	}
	s.reg.spanMu.Lock()
	if len(s.reg.spans) < maxSpans {
		s.reg.spans = append(s.reg.spans, rec)
	} else {
		s.reg.spanDropped++
	}
	s.reg.spanMu.Unlock()
	return d
}

// Timed runs fn under a root span and returns its wall time — the
// one-liner for instrumenting a whole stage.
func (r *Registry) Timed(name string, fn func()) time.Duration {
	sp := r.StartSpan(name)
	fn()
	return sp.End()
}
