package floats

import (
	"math"
	"testing"
)

func TestEq(t *testing.T) {
	nan := math.NaN()
	for _, tc := range []struct {
		a, b float64
		want bool
	}{
		{1.5, 1.5, true},
		{1.5, 1.5000001, false},
		{0.0, math.Copysign(0, -1), true}, // +0 == -0 under IEEE ==
		{nan, nan, false},                 // NaN equals nothing
		{nan, 1.0, false},
	} {
		if got := Eq(tc.a, tc.b); got != tc.want {
			t.Errorf("Eq(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestBitEqual(t *testing.T) {
	nan := math.NaN()
	negZero := math.Copysign(0, -1)
	for _, tc := range []struct {
		a, b float64
		want bool
	}{
		{1.5, 1.5, true},
		{nan, nan, true},      // same payload
		{0.0, negZero, false}, // distinct bit patterns
		{negZero, negZero, true},
	} {
		if got := BitEqual(tc.a, tc.b); got != tc.want {
			t.Errorf("BitEqual(%v, %v) = %v, want %v", tc.a, tc.b, got, tc.want)
		}
	}
}

func TestEqualWithin(t *testing.T) {
	nan := math.NaN()
	inf := math.Inf(1)
	for _, tc := range []struct {
		a, b, tol float64
		want      bool
	}{
		{1.0, 1.0 + 1e-10, 1e-9, true},
		{1.0, 1.1, 1e-9, false},
		{nan, nan, 1.0, true}, // two NaNs are equal under tolerance
		{nan, 1.0, 1.0, false},
		{inf, inf, 0, true},     // same-signed infinities
		{inf, -inf, inf, false}, // opposite signs never within tol
		{inf, 1.0, inf, false},  // finite vs infinite
		{2.0, 2.0, 0, true},     // tol zero degenerates to Eq
	} {
		if got := EqualWithin(tc.a, tc.b, tc.tol); got != tc.want {
			t.Errorf("EqualWithin(%v, %v, %v) = %v, want %v", tc.a, tc.b, tc.tol, got, tc.want)
		}
	}
}

func TestEqualWithinNegativeTolPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("EqualWithin with negative tol did not panic")
		}
	}()
	EqualWithin(1, 1, -1)
}
