// Package floats centralizes the repository's float-comparison
// semantics. The floateq analyzer (internal/lint) forbids raw == / !=
// between computed float operands everywhere outside tests, because a
// bitwise comparison is almost never the intended predicate in
// modelling code; the intentional exact comparisons that remain —
// deduplicating adjacent sorted feature values in split finding, exact
// cache-key matching — route through this package, where the IEEE-754
// semantics are documented once and audited once.
package floats

import "math"

// Eq reports whether a and b are equal under IEEE-754 == semantics:
// NaN equals nothing (including itself) and +0 equals -0. This is the
// predicate split finding wants when deduplicating adjacent sorted
// values: two runs that sorted identical inputs see identical
// adjacency, so the comparison is exact by construction, and the
// -0/+0 identification keeps thresholds stable for signed zeros.
//
//lint:ignore floateq the repository's single audited exact float comparison
func Eq(a, b float64) bool { return a == b }

// BitEqual reports whether a and b have identical bit patterns: NaN
// equals NaN (payload-sensitive) and +0 differs from -0. This is the
// predicate golden tests and persistence round-trips want.
func BitEqual(a, b float64) bool {
	return math.Float64bits(a) == math.Float64bits(b)
}

// EqualWithin reports whether a and b differ by at most tol, treating
// two NaNs as equal and requiring equal signs on infinities. A
// negative tol panics; tol zero degenerates to Eq plus the NaN rule.
func EqualWithin(a, b, tol float64) bool {
	if tol < 0 {
		panic("floats: negative tolerance")
	}
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b //lint:ignore floateq infinities compare exactly by definition
	}
	return math.Abs(a-b) <= tol
}
