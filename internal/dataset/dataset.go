// Package dataset builds the MP-HPC dataset: the paper's Section V
// pipeline from application runs to a 21-feature learning table. Every
// application-input pair is profiled at the three run scales on all
// four systems; each profile becomes one dataset row whose features are
// the Table III derivations (instruction-intensity ratios, z-scored
// counter magnitudes, run configuration, one-hot architecture) and
// whose target is the relative performance vector of that run's
// runtimes, relative to the architecture the counters came from.
//
// With the default 11 trials per configuration the dataset has
// 86 inputs x 3 scales x 11 trials x 4 source systems = 11,352 rows,
// matching the paper's 11,312-row scale.
package dataset

import (
	"fmt"
	"runtime"
	"sync"

	"crossarch/internal/apps"
	"crossarch/internal/arch"
	"crossarch/internal/dataframe"
	"crossarch/internal/hatchet"
	"crossarch/internal/obs"
	"crossarch/internal/perfmodel"
	"crossarch/internal/profiler"
	"crossarch/internal/rpv"
	"crossarch/internal/stats"
)

// Metadata column names.
const (
	ColApp    = "app"
	ColInput  = "input"
	ColScale  = "scale"
	ColSystem = "system"
	ColTrial  = "trial"
)

// Feature column names (the paper's 21 final columns).
const (
	ColBranchIntensity = "branch_intensity"
	ColStoreIntensity  = "store_intensity"
	ColLoadIntensity   = "load_intensity"
	ColFP32Intensity   = "fp32_intensity"
	ColFP64Intensity   = "fp64_intensity"
	ColIntIntensity    = "int_intensity"
	ColL1LoadMisses    = "l1_load_misses"
	ColL1StoreMisses   = "l1_store_misses"
	ColL2LoadMisses    = "l2_load_misses"
	ColL2StoreMisses   = "l2_store_misses"
	ColIOBytesRead     = "io_bytes_read"
	ColIOBytesWritten  = "io_bytes_written"
	ColEPTSize         = "ept_size"
	ColMemStalls       = "mem_stalls"
	ColNodes           = "nodes"
	ColCores           = "cores"
	ColUsesGPU         = "uses_gpu"
)

// FeatureColumns returns the 21 model-input columns in canonical order:
// six intensity ratios, eight z-scored magnitudes, three run-config
// columns, and the four-way architecture one-hot.
func FeatureColumns() []string {
	cols := []string{
		ColBranchIntensity, ColStoreIntensity, ColLoadIntensity,
		ColFP32Intensity, ColFP64Intensity, ColIntIntensity,
		ColL1LoadMisses, ColL1StoreMisses, ColL2LoadMisses, ColL2StoreMisses,
		ColIOBytesRead, ColIOBytesWritten, ColEPTSize, ColMemStalls,
		ColNodes, ColCores, ColUsesGPU,
	}
	for _, name := range arch.Names() {
		cols = append(cols, "arch="+name)
	}
	return cols
}

// ZScoredColumns returns the eight magnitude features the paper
// standardizes (Section V-D).
func ZScoredColumns() []string {
	return []string{
		ColL1LoadMisses, ColL1StoreMisses, ColL2LoadMisses, ColL2StoreMisses,
		ColIOBytesRead, ColIOBytesWritten, ColEPTSize, ColMemStalls,
	}
}

// TargetColumns returns the four RPV component columns in canonical
// architecture order.
func TargetColumns() []string {
	names := arch.Names()
	cols := make([]string, len(names))
	for i, n := range names {
		cols[i] = "rpv_" + n
	}
	return cols
}

// TimeColumns returns the observed-runtime metadata columns (seconds on
// each system for the row's trial), used by the scheduling simulation.
func TimeColumns() []string {
	names := arch.Names()
	cols := make([]string, len(names))
	for i, n := range names {
		cols[i] = "time_" + n
	}
	return cols
}

// trialScaleJitterSigma is the log-normal spread of the per-trial
// effective input size around the nominal input deck, and
// trialSigJitterSigma the spread of the per-trial behaviour signature
// (see apps.Jittered).
const (
	trialScaleJitterSigma = 0.10
	trialSigJitterSigma   = 0.12
)

// Params configures dataset generation.
type Params struct {
	// Apps to include; nil means the full Table II catalog.
	Apps []*apps.App
	// Trials is the number of repeated runs per (app, input, scale);
	// 0 means 11, which yields the paper-scale 11,352-row dataset.
	Trials int
	// Seed makes the whole dataset reproducible.
	Seed uint64
	// Workers bounds generation parallelism; 0 means GOMAXPROCS.
	Workers int
	// SkipNormalize leaves the eight magnitude columns raw (used by
	// tests that need ground-truth values).
	SkipNormalize bool
}

// Dataset is the generated MP-HPC table plus its fitted normalization.
type Dataset struct {
	// Frame holds metadata, feature, target, and time columns.
	Frame *dataframe.Frame
	// Norms are the fitted z-score statistics per normalized column.
	Norms map[string]dataframe.Stats
}

// Build generates the dataset. Generation is deterministic for a given
// Params.Seed regardless of Workers.
func Build(p Params) (*Dataset, error) {
	span := obs.StartSpan("dataset.build")
	defer span.End()
	appList := p.Apps
	if appList == nil {
		appList = apps.All()
	}
	if len(appList) == 0 {
		return nil, fmt.Errorf("dataset: no applications")
	}
	trials := p.Trials
	if trials == 0 {
		trials = 11
	}
	if trials < 0 {
		return nil, fmt.Errorf("dataset: negative trials %d", trials)
	}
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}

	// A combo is one (app, input, scale); each combo produces
	// trials x 4 rows. Combos get pre-split RNGs so scheduling order
	// cannot change the data.
	type combo struct {
		app   *apps.App
		input apps.Input
		scale perfmodel.Scale
		rng   *stats.RNG
	}
	master := stats.NewRNG(p.Seed)
	var combos []combo
	for _, a := range appList {
		if err := a.Validate(); err != nil {
			return nil, err
		}
		for _, in := range a.Inputs {
			for _, s := range perfmodel.Scales {
				combos = append(combos, combo{app: a, input: in, scale: s, rng: master.Split()})
			}
		}
	}

	machines := arch.All()
	obs.Add("dataset.combos.total", float64(len(combos)))
	results := make([][]row, len(combos))
	errs := make([]error, len(combos))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for ci := range combos {
		wg.Add(1)
		sem <- struct{}{}
		go func(ci int) {
			defer wg.Done()
			defer func() { <-sem }()
			c := combos[ci]
			comboStart := obs.Now()
			rows, err := buildCombo(c.app, c.input, c.scale, machines, trials, c.rng)
			obs.Observe("dataset.combo.seconds", obs.SinceSeconds(comboStart))
			if err == nil {
				// Every trial profiles the combo on every machine.
				obs.Add("dataset.profiles.total", float64(trials*len(machines)))
			}
			results[ci], errs[ci] = rows, err
		}(ci)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}

	var rows []row
	for _, rs := range results {
		rows = append(rows, rs...)
	}
	span.AddRows(len(rows))
	obs.Add("dataset.rows.total", float64(len(rows)))
	obs.Set("dataset.rows.last", float64(len(rows)))
	frame := rowsToFrame(rows)
	ds := &Dataset{Frame: frame, Norms: map[string]dataframe.Stats{}}
	if !p.SkipNormalize {
		for _, col := range ZScoredColumns() {
			ds.Norms[col] = frame.ZScore(col)
		}
	}
	return ds, nil
}

// row is one dataset record before frame assembly.
type row struct {
	app, input, scale, system string
	trial                     float64
	features                  map[string]float64
	targets                   rpv.RPV
	times                     []float64
}

// buildCombo profiles one (app, input, scale) on all machines for all
// trials and derives one row per (trial, source machine).
func buildCombo(a *apps.App, in apps.Input, s perfmodel.Scale, machines []*arch.Machine, trials int, rng *stats.RNG) ([]row, error) {
	var prof profiler.Profiler
	var rows []row
	for trial := 0; trial < trials; trial++ {
		// Each trial is a fresh problem instance: the effective input
		// size and the behaviour signature jitter around the nominal
		// application (real campaigns vary particle counts, mesh seeds,
		// and iteration counts run to run), so features and targets
		// vary continuously rather than collapsing onto a small set of
		// discrete configuration cells, and intensity features carry
		// per-run causal signal.
		trialApp := a.Jittered(rng, trialSigJitterSigma)
		trialInput := in
		trialInput.Scale *= rng.NoiseFactor(trialScaleJitterSigma)
		profiles := make([]*profiler.Profile, len(machines))
		times := make([]float64, len(machines))
		for mi, m := range machines {
			pr, err := prof.Run(trialApp, trialInput, m, s, rng)
			if err != nil {
				return nil, fmt.Errorf("dataset: profiling %s %q on %s: %w", a.Name, in.Args, m.Name, err)
			}
			profiles[mi] = pr
			times[mi] = pr.RuntimeSec
		}
		for mi, m := range machines {
			target, err := rpv.FromTimes(times, mi)
			if err != nil {
				return nil, fmt.Errorf("dataset: rpv for %s on %s: %w", a.Name, m.Name, err)
			}
			feats, err := FeaturesFromProfile(profiles[mi])
			if err != nil {
				return nil, err
			}
			rows = append(rows, row{
				app: a.Name, input: in.Args, scale: s.String(), system: m.Name,
				trial:    float64(trial),
				features: feats,
				targets:  target,
				times:    append([]float64(nil), times...),
			})
		}
	}
	return rows, nil
}

// FeaturesFromProfile derives the 21 feature values of one profile
// (Section V-D): instruction counters become ratios of total
// instructions; magnitude counters stay raw here (z-scored at dataset
// level); run configuration and the architecture one-hot complete the
// vector.
func FeaturesFromProfile(p *profiler.Profile) (map[string]float64, error) {
	g, err := hatchet.FromProfile(p)
	if err != nil {
		return nil, err
	}
	canon, _ := g.Canonical()
	total := canon[profiler.TotalInstr]
	ratio := func(q profiler.Quantity) float64 {
		if total <= 0 {
			return 0
		}
		return canon[q] / total
	}
	f := map[string]float64{
		ColBranchIntensity: ratio(profiler.BranchInstr),
		ColStoreIntensity:  ratio(profiler.StoreInstr),
		ColLoadIntensity:   ratio(profiler.LoadInstr),
		ColFP32Intensity:   ratio(profiler.FP32Instr),
		ColFP64Intensity:   ratio(profiler.FP64Instr),
		ColIntIntensity:    ratio(profiler.IntInstr),
		ColL1LoadMisses:    canon[profiler.L1LoadMiss],
		ColL1StoreMisses:   canon[profiler.L1StoreMiss],
		ColL2LoadMisses:    canon[profiler.L2LoadMiss],
		ColL2StoreMisses:   canon[profiler.L2StoreMiss],
		ColIOBytesRead:     canon[profiler.IOReadBytes],
		ColIOBytesWritten:  canon[profiler.IOWriteBytes],
		ColEPTSize:         canon[profiler.EPTBytes],
		ColMemStalls:       canon[profiler.MemStallCycles],
		ColNodes:           float64(p.Nodes),
		ColCores:           float64(p.Cores),
	}
	f[ColUsesGPU] = 0
	if p.UsesGPU {
		f[ColUsesGPU] = 1
	}
	for _, name := range arch.Names() {
		v := 0.0
		if name == p.System {
			v = 1
		}
		f["arch="+name] = v
	}
	return f, nil
}

// rowsToFrame assembles the dataframe with a fixed column order:
// metadata, features, targets, times.
func rowsToFrame(rows []row) *dataframe.Frame {
	n := len(rows)
	f := dataframe.New()
	appCol := make([]string, n)
	inputCol := make([]string, n)
	scaleCol := make([]string, n)
	systemCol := make([]string, n)
	trialCol := make([]float64, n)
	for i, r := range rows {
		appCol[i] = r.app
		inputCol[i] = r.input
		scaleCol[i] = r.scale
		systemCol[i] = r.system
		trialCol[i] = r.trial
	}
	f.AddString(ColApp, appCol)
	f.AddString(ColInput, inputCol)
	f.AddString(ColScale, scaleCol)
	f.AddString(ColSystem, systemCol)
	f.AddFloat(ColTrial, trialCol)

	for _, col := range FeatureColumns() {
		data := make([]float64, n)
		for i, r := range rows {
			data[i] = r.features[col]
		}
		f.AddFloat(col, data)
	}
	for k, col := range TargetColumns() {
		data := make([]float64, n)
		for i, r := range rows {
			data[i] = r.targets[k]
		}
		f.AddFloat(col, data)
	}
	for k, col := range TimeColumns() {
		data := make([]float64, n)
		for i, r := range rows {
			data[i] = r.times[k]
		}
		f.AddFloat(col, data)
	}
	return f
}

// Features extracts the model input matrix in FeatureColumns order.
func (d *Dataset) Features() [][]float64 {
	return d.Frame.Matrix(FeatureColumns())
}

// Targets extracts the RPV target matrix in TargetColumns order.
func (d *Dataset) Targets() [][]float64 {
	return d.Frame.Matrix(TargetColumns())
}

// NumRows returns the dataset size.
func (d *Dataset) NumRows() int { return d.Frame.NumRows() }

// FromFrame wraps an existing frame (e.g. read back from CSV) as a
// Dataset, verifying the required columns exist.
func FromFrame(f *dataframe.Frame) (*Dataset, error) {
	var missing []string
	for _, col := range append(append(FeatureColumns(), TargetColumns()...), ColApp, ColSystem, ColScale) {
		if !f.Has(col) {
			missing = append(missing, col)
		}
	}
	if len(missing) > 0 {
		return nil, fmt.Errorf("dataset: frame missing columns %v", missing)
	}
	return &Dataset{Frame: f, Norms: map[string]dataframe.Stats{}}, nil
}
