package dataset

import (
	"bytes"
	"math"
	"sync"
	"testing"

	"crossarch/internal/apps"
	"crossarch/internal/arch"
	"crossarch/internal/dataframe"
	"crossarch/internal/perfmodel"
	"crossarch/internal/profiler"
	"crossarch/internal/stats"
)

// smallParams builds a quick dataset: two apps, one trial.
func smallParams() Params {
	return Params{
		Apps:   []*apps.App{apps.CoMD(), apps.SW4lite()},
		Trials: 1,
		Seed:   7,
	}
}

func TestColumnSchemas(t *testing.T) {
	if got := len(FeatureColumns()); got != 21 {
		t.Fatalf("FeatureColumns = %d, paper says 21", got)
	}
	if got := len(TargetColumns()); got != arch.NumSystems {
		t.Fatalf("TargetColumns = %d", got)
	}
	if got := len(ZScoredColumns()); got != 8 {
		t.Fatalf("ZScoredColumns = %d, paper standardizes eight", got)
	}
	// Every z-scored column must be a feature column.
	features := map[string]bool{}
	for _, c := range FeatureColumns() {
		features[c] = true
	}
	for _, c := range ZScoredColumns() {
		if !features[c] {
			t.Errorf("z-scored column %s is not a feature", c)
		}
	}
}

func TestBuildSmall(t *testing.T) {
	ds, err := Build(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	// 2 apps x (5+4 inputs) x 3 scales x 1 trial x 4 systems.
	want := (5 + 4) * 3 * 1 * 4
	if ds.NumRows() != want {
		t.Fatalf("rows = %d, want %d", ds.NumRows(), want)
	}
	for _, col := range append(FeatureColumns(), TargetColumns()...) {
		if !ds.Frame.Has(col) {
			t.Fatalf("missing column %s", col)
		}
	}
}

func TestDefaultIsPaperScale(t *testing.T) {
	if testing.Short() {
		t.Skip("full dataset build in -short mode")
	}
	// Count combos without building: 86 inputs x 3 scales x 11 trials x
	// 4 systems = 11,352 — the paper reports 11,312 rows.
	inputs := 0
	for _, a := range apps.All() {
		inputs += len(a.Inputs)
	}
	rows := inputs * 3 * 11 * 4
	if rows < 11000 || rows > 12000 {
		t.Errorf("default dataset would have %d rows; want paper scale ~11,312", rows)
	}
}

func TestRPVTargetsValid(t *testing.T) {
	ds, err := Build(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	targets := ds.Targets()
	systems := ds.Frame.Strings(ColSystem)
	for i, row := range targets {
		ref := arch.Index(systems[i])
		if ref < 0 {
			t.Fatalf("row %d has unknown system %s", i, systems[i])
		}
		if math.Abs(row[ref]-1) > 1e-9 {
			t.Fatalf("row %d: reference component = %v, want 1", i, row[ref])
		}
		for k, v := range row {
			if !(v > 0) {
				t.Fatalf("row %d target %d = %v", i, k, v)
			}
		}
	}
}

func TestTimesConsistentWithTargets(t *testing.T) {
	ds, err := Build(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	times := ds.Frame.Matrix(TimeColumns())
	targets := ds.Targets()
	systems := ds.Frame.Strings(ColSystem)
	for i := range targets {
		ref := arch.Index(systems[i])
		for k := range targets[i] {
			want := times[i][k] / times[i][ref]
			if math.Abs(targets[i][k]-want) > 1e-9*want {
				t.Fatalf("row %d: rpv[%d]=%v, times give %v", i, k, targets[i][k], want)
			}
		}
	}
}

func TestZScoreNormalization(t *testing.T) {
	ds, err := Build(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range ZScoredColumns() {
		vals := ds.Frame.Floats(col)
		if m := stats.Mean(vals); math.Abs(m) > 1e-9 {
			t.Errorf("%s mean = %v after z-score", col, m)
		}
		if s := stats.StdDev(vals); math.Abs(s-1) > 1e-9 {
			t.Errorf("%s std = %v after z-score", col, s)
		}
		if _, ok := ds.Norms[col]; !ok {
			t.Errorf("missing fitted stats for %s", col)
		}
	}
}

func TestSkipNormalizeKeepsRaw(t *testing.T) {
	p := smallParams()
	p.SkipNormalize = true
	ds, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	// Raw L1 miss counts should be large positive numbers, not z-scores.
	vals := ds.Frame.Floats(ColL1LoadMisses)
	if stats.Max(vals) < 1e3 {
		t.Errorf("raw miss counts look normalized: max = %v", stats.Max(vals))
	}
}

func TestIntensitiesAreRatios(t *testing.T) {
	ds, err := Build(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	for _, col := range []string{ColBranchIntensity, ColLoadIntensity, ColStoreIntensity,
		ColFP32Intensity, ColFP64Intensity, ColIntIntensity} {
		for _, v := range ds.Frame.Floats(col) {
			if v < 0 || v > 1.2 {
				t.Fatalf("%s = %v is not a plausible instruction ratio", col, v)
			}
		}
	}
}

func TestOneHotArchConsistent(t *testing.T) {
	ds, err := Build(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	systems := ds.Frame.Strings(ColSystem)
	for i := range systems {
		sum := 0.0
		for _, name := range arch.Names() {
			v := ds.Frame.Floats("arch=" + name)[i]
			sum += v
			if name == systems[i] && v != 1 {
				t.Fatalf("row %d: arch=%s should be 1", i, name)
			}
		}
		if sum != 1 {
			t.Fatalf("row %d: one-hot sum = %v", i, sum)
		}
	}
}

// TestConcurrentBuildsRace runs several worker-pooled Builds at once so
// the race detector can watch the per-combo goroutines fill the shared
// results slices; every build must still agree with a serial reference.
func TestConcurrentBuildsRace(t *testing.T) {
	p := smallParams()
	p.Workers = 1
	ref, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	refCol := ref.Frame.Floats(ColBranchIntensity)
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q := smallParams()
			q.Workers = 8
			ds, err := Build(q)
			if err != nil {
				t.Error(err)
				return
			}
			col := ds.Frame.Floats(ColBranchIntensity)
			if len(col) != len(refCol) {
				t.Errorf("concurrent build has %d rows, want %d", len(col), len(refCol))
				return
			}
			for i := range col {
				if col[i] != refCol[i] {
					t.Errorf("row %d differs from serial reference", i)
					return
				}
			}
		}()
	}
	wg.Wait()
}

func TestDeterministicAcrossWorkerCounts(t *testing.T) {
	p := smallParams()
	p.Workers = 1
	a, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	p.Workers = 8
	b, err := Build(p)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumRows() != b.NumRows() {
		t.Fatal("row count differs across worker counts")
	}
	av := a.Frame.Floats(ColBranchIntensity)
	bv := b.Frame.Floats(ColBranchIntensity)
	for i := range av {
		if av[i] != bv[i] {
			t.Fatalf("row %d differs across worker counts", i)
		}
	}
}

func TestGPURowsHaveGPUFlag(t *testing.T) {
	ds, err := Build(Params{Apps: []*apps.App{apps.SW4lite()}, Trials: 1, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	systems := ds.Frame.Strings(ColSystem)
	gpu := ds.Frame.Floats(ColUsesGPU)
	for i, sys := range systems {
		wantGPU := sys == "Lassen" || sys == "Corona"
		if (gpu[i] == 1) != wantGPU {
			t.Fatalf("row %d on %s: uses_gpu = %v", i, sys, gpu[i])
		}
	}
}

func TestCoronaGPURowsHaveZeroBranchIntensity(t *testing.T) {
	// Table III: the AMD GPU cannot measure branch instructions; those
	// features must be zero for Corona GPU rows.
	ds, err := Build(Params{Apps: []*apps.App{apps.XSBench()}, Trials: 1, Seed: 4})
	if err != nil {
		t.Fatal(err)
	}
	systems := ds.Frame.Strings(ColSystem)
	branch := ds.Frame.Floats(ColBranchIntensity)
	for i, sys := range systems {
		if sys == "Corona" && branch[i] != 0 {
			t.Fatalf("Corona GPU row has branch intensity %v", branch[i])
		}
		if sys == "Quartz" && branch[i] == 0 {
			t.Fatal("Quartz row lost its branch intensity")
		}
	}
}

func TestCSVRoundTripThroughFromFrame(t *testing.T) {
	ds, err := Build(smallParams())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := ds.Frame.WriteCSV(&buf); err != nil {
		t.Fatal(err)
	}
	frame, err := dataframe.ReadCSV(&buf)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromFrame(frame)
	if err != nil {
		t.Fatal(err)
	}
	if back.NumRows() != ds.NumRows() {
		t.Fatalf("rows = %d, want %d", back.NumRows(), ds.NumRows())
	}
	a, b := ds.Features(), back.Features()
	for i := range a {
		for j := range a[i] {
			if a[i][j] != b[i][j] {
				t.Fatalf("feature (%d,%d) changed in CSV round trip", i, j)
			}
		}
	}
}

func TestFromFrameRejectsMissingColumns(t *testing.T) {
	f := dataframe.New().AddFloat("x", []float64{1})
	if _, err := FromFrame(f); err == nil {
		t.Error("incomplete frame should be rejected")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Params{Apps: []*apps.App{}}); err == nil {
		t.Error("empty app list should error")
	}
	if _, err := Build(Params{Trials: -1}); err == nil {
		t.Error("negative trials should error")
	}
	bad := apps.CoMD()
	bad.Inputs = nil
	if _, err := Build(Params{Apps: []*apps.App{bad}, Trials: 1}); err == nil {
		t.Error("invalid app should error")
	}
}

func TestFeaturesFromProfileDirect(t *testing.T) {
	a := apps.CoMD()
	m, _ := arch.ByName("Ruby")
	var p profiler.Profiler
	prof, err := p.Run(a, a.Inputs[0], m, perfmodel.OneNode, stats.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	feats, err := FeaturesFromProfile(prof)
	if err != nil {
		t.Fatal(err)
	}
	if len(feats) != 21 {
		t.Fatalf("feature map has %d entries", len(feats))
	}
	if feats["arch=Ruby"] != 1 || feats["arch=Quartz"] != 0 {
		t.Error("one-hot wrong")
	}
	if feats[ColCores] != 56 || feats[ColNodes] != 1 {
		t.Errorf("run config features wrong: cores=%v nodes=%v", feats[ColCores], feats[ColNodes])
	}
	if math.Abs(feats[ColBranchIntensity]-a.Sig.BranchFrac) > 0.03 {
		t.Errorf("branch intensity %v, want ~%v", feats[ColBranchIntensity], a.Sig.BranchFrac)
	}
}
