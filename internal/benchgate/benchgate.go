// Package benchgate turns `go test -bench` output into a checked-in,
// schema-versioned performance trajectory (BENCH_predict.json) and
// enforces it: a change that slows a gated benchmark past the allowed
// slowdown, or that makes a zero-alloc steady state allocate, fails
// `make check` the same way a broken test would.
//
// Robustness on noisy boxes is structural, not statistical: callers
// run the benchmarks with a fixed iteration count and -count repeats,
// and Parse keeps the minimum per metric across repeats — the minimum
// of several runs filters scheduler stalls and cache-cold first
// iterations, while a genuine regression shifts every repeat.
package benchgate

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// SchemaVersion is bumped whenever the trajectory JSON shape changes;
// Load refuses other versions so the gate never silently compares
// incompatible records.
const SchemaVersion = 1

// Result is one benchmark's recorded metrics. NsPerOp and AllocsPerOp
// are the gated metrics; BytesPerOp and RowsPerSec ride along for the
// experiment tables.
type Result struct {
	Name        string  `json:"name"`
	NsPerOp     float64 `json:"ns_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	RowsPerSec  float64 `json:"rows_per_sec,omitempty"`
}

// Trajectory is the checked-in benchmark record for one commit.
type Trajectory struct {
	SchemaVersion int      `json:"schema_version"`
	Commit        string   `json:"commit"`
	Benchmarks    []Result `json:"benchmarks"`
}

// Violation is one gate failure: a benchmark missing from the current
// run, a slowdown past the threshold, or an allocation regression.
type Violation struct {
	Benchmark string
	Metric    string
	Base      float64
	Cur       float64
	Reason    string
}

func (v Violation) String() string {
	if v.Metric == "" {
		return fmt.Sprintf("%s: %s", v.Benchmark, v.Reason)
	}
	return fmt.Sprintf("%s: %s %.6g -> %.6g (%s)", v.Benchmark, v.Metric, v.Base, v.Cur, v.Reason)
}

// Parse reads `go test -bench` output and returns one Result per
// benchmark name, taking the per-metric minimum across -count repeats.
// Benchmark lines look like
//
//	BenchmarkCompiledPredict/row-4  1000  907.9 ns/op  239523 rows/s  0 B/op  0 allocs/op
//
// where the trailing -4 is GOMAXPROCS, stripped so trajectories
// compare across machines. Non-benchmark lines (goos, pkg, ok, PASS)
// are ignored. Parse fails on a malformed benchmark line rather than
// skipping it: a gate that silently drops its subject is no gate.
func Parse(r io.Reader) ([]Result, error) {
	byName := map[string]*Result{}
	var order []string
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if !strings.HasPrefix(line, "Benchmark") {
			continue
		}
		fields := strings.Fields(line)
		// A benchmark result line is name, iteration count, then
		// value/unit pairs; "Benchmark" alone or a RUN header is not.
		if len(fields) < 4 || len(fields)%2 != 0 {
			if len(fields) == 1 || (len(fields) > 1 && !isNumber(fields[1])) {
				continue // e.g. "BenchmarkFoo" naming line with no metrics
			}
			return nil, fmt.Errorf("benchgate: malformed benchmark line %q", line)
		}
		if !isNumber(fields[1]) {
			continue
		}
		name := stripProcs(fields[0])
		res, seen := byName[name]
		if !seen {
			res = &Result{Name: name}
			byName[name] = res
			order = append(order, name)
		}
		for i := 2; i+1 < len(fields); i += 2 {
			v, err := strconv.ParseFloat(fields[i], 64)
			if err != nil {
				return nil, fmt.Errorf("benchgate: bad value in %q: %w", line, err)
			}
			switch fields[i+1] {
			case "ns/op":
				minInto(&res.NsPerOp, v, seen)
			case "allocs/op":
				minInto(&res.AllocsPerOp, v, seen)
			case "B/op":
				minInto(&res.BytesPerOp, v, seen)
			case "rows/s":
				// Throughput: best repeat is the max, mirroring min ns/op.
				if !seen || v > res.RowsPerSec {
					res.RowsPerSec = v
				}
			}
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	out := make([]Result, 0, len(order))
	for _, n := range order {
		out = append(out, *byName[n])
	}
	return out, nil
}

func isNumber(s string) bool {
	_, err := strconv.ParseFloat(s, 64)
	return err == nil
}

// minInto folds v into *dst as a running minimum; the first repeat
// initializes it.
func minInto(dst *float64, v float64, seen bool) {
	if !seen || v < *dst {
		*dst = v
	}
}

// stripProcs removes the trailing -N GOMAXPROCS suffix go test appends
// to every benchmark name.
func stripProcs(name string) string {
	i := strings.LastIndexByte(name, '-')
	if i < 0 {
		return name
	}
	for _, c := range name[i+1:] {
		if c < '0' || c > '9' {
			return name
		}
	}
	if i+1 == len(name) {
		return name
	}
	return name[:i]
}

// Load reads and schema-checks a trajectory.
func Load(r io.Reader) (Trajectory, error) {
	var t Trajectory
	if err := json.NewDecoder(r).Decode(&t); err != nil {
		return t, fmt.Errorf("benchgate: decoding trajectory: %w", err)
	}
	if t.SchemaVersion != SchemaVersion {
		return t, fmt.Errorf("benchgate: trajectory schema version %d, want %d", t.SchemaVersion, SchemaVersion)
	}
	return t, nil
}

// Write emits a trajectory with stable ordering, so checked-in records
// diff cleanly across commits.
func Write(w io.Writer, t Trajectory) error {
	t.SchemaVersion = SchemaVersion
	sort.Slice(t.Benchmarks, func(i, j int) bool { return t.Benchmarks[i].Name < t.Benchmarks[j].Name })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// Compare gates the current results against a baseline trajectory.
// Rules, per baseline benchmark:
//
//   - missing from the current run: violation (a gate whose subject
//     disappeared must fail loudly, not pass vacuously);
//   - ns/op more than maxSlowdownPct above baseline: violation;
//   - allocs/op: a zero-alloc baseline must stay exactly zero — the
//     steady-state contract is categorical, one alloc per op on the
//     hot path is a regression regardless of percentage — while a
//     nonzero baseline gets the same percentage slack as latency.
//
// Benchmarks present only in the current run pass free: adding
// coverage must never be punished.
func Compare(base Trajectory, cur []Result, maxSlowdownPct float64) []Violation {
	curBy := map[string]Result{}
	for _, r := range cur {
		curBy[r.Name] = r
	}
	var out []Violation
	slack := 1 + maxSlowdownPct/100
	for _, b := range base.Benchmarks {
		c, ok := curBy[b.Name]
		if !ok {
			out = append(out, Violation{Benchmark: b.Name, Reason: "benchmark missing from current run"})
			continue
		}
		if b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*slack {
			out = append(out, Violation{
				Benchmark: b.Name, Metric: "ns/op", Base: b.NsPerOp, Cur: c.NsPerOp,
				Reason: fmt.Sprintf("slowdown %.1f%% exceeds %.0f%%", (c.NsPerOp/b.NsPerOp-1)*100, maxSlowdownPct),
			})
		}
		switch {
		case b.AllocsPerOp == 0 && c.AllocsPerOp > 0:
			out = append(out, Violation{
				Benchmark: b.Name, Metric: "allocs/op", Base: 0, Cur: c.AllocsPerOp,
				Reason: "zero-alloc steady state now allocates",
			})
		case b.AllocsPerOp > 0 && c.AllocsPerOp > b.AllocsPerOp*slack:
			out = append(out, Violation{
				Benchmark: b.Name, Metric: "allocs/op", Base: b.AllocsPerOp, Cur: c.AllocsPerOp,
				Reason: fmt.Sprintf("allocation growth exceeds %.0f%%", maxSlowdownPct),
			})
		}
	}
	return out
}
