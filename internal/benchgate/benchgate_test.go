package benchgate

import (
	"bytes"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: crossarch/internal/ml
cpu: Intel(R) Xeon(R) CPU @ 2.10GHz
BenchmarkCompiledPredict/row-4         	    1000	       950.0 ns/op	   1052631 rows/s	       0 B/op	       0 allocs/op
BenchmarkCompiledPredict/row-4         	    1000	       907.9 ns/op	   1101443 rows/s	       0 B/op	       0 allocs/op
BenchmarkCompiledPredict/row-4         	    1000	      1400.0 ns/op	    714285 rows/s	       0 B/op	       0 allocs/op
BenchmarkCompiledPredict/batch64-4     	    1000	    178000 ns/op	    359550 rows/s	       0 B/op	       0 allocs/op
BenchmarkServePredict/rows=64-4        	    1000	    267000 ns/op	    239523 rows/s	   21000 B/op	     143 allocs/op
PASS
ok  	crossarch/internal/ml	12.3s
`

// TestParseMinOfRepeats: -count repeats collapse to one Result per
// name, keeping the minimum latency (and maximum throughput) so a
// single scheduler stall cannot fake a regression.
func TestParseMinOfRepeats(t *testing.T) {
	res, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != 3 {
		t.Fatalf("parsed %d results, want 3: %+v", len(res), res)
	}
	row := res[0]
	if row.Name != "BenchmarkCompiledPredict/row" {
		t.Fatalf("name = %q (GOMAXPROCS suffix must be stripped)", row.Name)
	}
	if row.NsPerOp != 907.9 {
		t.Fatalf("ns/op = %v, want min across repeats 907.9", row.NsPerOp)
	}
	if row.RowsPerSec != 1101443 {
		t.Fatalf("rows/s = %v, want max across repeats 1101443", row.RowsPerSec)
	}
	if row.AllocsPerOp != 0 || row.BytesPerOp != 0 {
		t.Fatalf("allocs = %v bytes = %v, want 0", row.AllocsPerOp, row.BytesPerOp)
	}
	srv := res[2]
	if srv.Name != "BenchmarkServePredict/rows=64" || srv.AllocsPerOp != 143 || srv.BytesPerOp != 21000 {
		t.Fatalf("serve result = %+v", srv)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := Parse(strings.NewReader("BenchmarkX-4 1000 abc ns/op\n")); err == nil {
		t.Fatal("malformed value parsed without error")
	}
}

func trajectoryOf(results ...Result) Trajectory {
	return Trajectory{SchemaVersion: SchemaVersion, Commit: "abc1234", Benchmarks: results}
}

// TestGateFailsInjectedSlowdown is the acceptance criterion for the
// regression gate: a 20% ns/op slowdown against the recorded baseline
// must produce a violation at the default 15% threshold, while a 10%
// wobble must pass.
func TestGateFailsInjectedSlowdown(t *testing.T) {
	base := trajectoryOf(Result{Name: "BenchmarkCompiledPredict/row", NsPerOp: 1000, AllocsPerOp: 0})

	slow := []Result{{Name: "BenchmarkCompiledPredict/row", NsPerOp: 1200, AllocsPerOp: 0}}
	v := Compare(base, slow, 15)
	if len(v) != 1 || v[0].Metric != "ns/op" {
		t.Fatalf("20%% slowdown: violations = %v, want one ns/op violation", v)
	}
	if !strings.Contains(v[0].String(), "ns/op") {
		t.Fatalf("violation text %q does not name the metric", v[0].String())
	}

	wobble := []Result{{Name: "BenchmarkCompiledPredict/row", NsPerOp: 1100, AllocsPerOp: 0}}
	if v := Compare(base, wobble, 15); len(v) != 0 {
		t.Fatalf("10%% wobble: violations = %v, want none", v)
	}
}

// TestGateAllocRules: zero-alloc baselines are categorical (any alloc
// fails); nonzero baselines get percentage slack.
func TestGateAllocRules(t *testing.T) {
	base := trajectoryOf(
		Result{Name: "zero", NsPerOp: 100, AllocsPerOp: 0},
		Result{Name: "some", NsPerOp: 100, AllocsPerOp: 100},
	)
	cur := []Result{
		{Name: "zero", NsPerOp: 100, AllocsPerOp: 1},
		{Name: "some", NsPerOp: 100, AllocsPerOp: 110},
	}
	v := Compare(base, cur, 15)
	if len(v) != 1 || v[0].Benchmark != "zero" || v[0].Metric != "allocs/op" {
		t.Fatalf("violations = %v, want exactly the zero-alloc regression", v)
	}
	cur[1].AllocsPerOp = 120
	if v := Compare(base, cur, 15); len(v) != 2 {
		t.Fatalf("20%% alloc growth on nonzero baseline: violations = %v, want 2", v)
	}
}

// TestGateMissingBenchmark: a baseline benchmark absent from the
// current run fails the gate — deleting the benchmark cannot be a way
// past it.
func TestGateMissingBenchmark(t *testing.T) {
	base := trajectoryOf(Result{Name: "gone", NsPerOp: 100})
	v := Compare(base, nil, 15)
	if len(v) != 1 || !strings.Contains(v[0].String(), "missing") {
		t.Fatalf("violations = %v, want missing-benchmark", v)
	}
	// The reverse — new benchmarks with no baseline — passes free.
	if v := Compare(trajectoryOf(), []Result{{Name: "new", NsPerOp: 5}}, 15); len(v) != 0 {
		t.Fatalf("new benchmark penalized: %v", v)
	}
}

// TestTrajectoryRoundTrip: Write→Load preserves the record, orders
// benchmarks stably, and Load refuses other schema versions.
func TestTrajectoryRoundTrip(t *testing.T) {
	traj := trajectoryOf(
		Result{Name: "b", NsPerOp: 2, RowsPerSec: 10},
		Result{Name: "a", NsPerOp: 1, AllocsPerOp: 3, BytesPerOp: 4},
	)
	var buf bytes.Buffer
	if err := Write(&buf, traj); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Commit != "abc1234" || len(got.Benchmarks) != 2 {
		t.Fatalf("round trip = %+v", got)
	}
	if got.Benchmarks[0].Name != "a" || got.Benchmarks[1].Name != "b" {
		t.Fatalf("benchmarks not sorted: %+v", got.Benchmarks)
	}
	if got.Benchmarks[0].AllocsPerOp != 3 || got.Benchmarks[1].RowsPerSec != 10 {
		t.Fatalf("metrics lost: %+v", got.Benchmarks)
	}

	if _, err := Load(strings.NewReader(`{"schema_version": 99}`)); err == nil {
		t.Fatal("schema version 99 accepted")
	}
	if _, err := Load(strings.NewReader(`not json`)); err == nil {
		t.Fatal("garbage accepted")
	}
}

// TestStripProcs covers the GOMAXPROCS-suffix normalization edge
// cases, including names whose last segment is itself numeric-ish.
func TestStripProcs(t *testing.T) {
	for in, want := range map[string]string{
		"BenchmarkX-4":                  "BenchmarkX",
		"BenchmarkX-16":                 "BenchmarkX",
		"BenchmarkX":                    "BenchmarkX",
		"BenchmarkServe/rows=64-4":      "BenchmarkServe/rows=64",
		"BenchmarkX-":                   "BenchmarkX-",
		"BenchmarkX-4a":                 "BenchmarkX-4a",
		"BenchmarkCompiled/batch64-128": "BenchmarkCompiled/batch64",
	} {
		if got := stripProcs(in); got != want {
			t.Fatalf("stripProcs(%q) = %q, want %q", in, got, want)
		}
	}
}
