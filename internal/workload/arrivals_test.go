package workload

import (
	"math"
	"testing"

	"crossarch/internal/stats"
)

// allProcesses is the test cross-section: one instance of every arrival
// process family, including both composition operators.
func allProcesses() []ArrivalProcess {
	return []ArrivalProcess{
		Poisson{Rate: 0.8},
		MultiPeriod{Periods: []Period{
			{DurationSec: 300, Rate: 1.2},
			{DurationSec: 200, Rate: 0},
			{DurationSec: 100, Rate: 0.3},
		}},
		Burst{Every: 120, Size: 7, Width: 15, Offset: 30},
		Burst{Every: 60, Size: 4, Width: 90}, // overlapping bursts
		Superpose{Components: []ArrivalProcess{
			Poisson{Rate: 0.3},
			Burst{Every: 200, Size: 5, Width: 40},
		}},
		Modulate{
			P:            Poisson{Rate: 1.5},
			Envelope:     func(t float64) float64 { return 0.5 + 0.5*math.Sin(t/200) },
			EnvelopeName: "sin",
		},
	}
}

// TestArrivalDeterminism: the same seed yields a bitwise-identical
// stream for every process; a different seed yields a different one.
func TestArrivalDeterminism(t *testing.T) {
	const horizon = 2000.0
	for _, p := range allProcesses() {
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: Validate: %v", p.Name(), err)
		}
		a := p.Generate(stats.NewRNG(42), horizon)
		b := p.Generate(stats.NewRNG(42), horizon)
		if len(a) != len(b) {
			t.Fatalf("%s: seed 42 twice: %d vs %d arrivals", p.Name(), len(a), len(b))
		}
		for i := range a {
			if math.Float64bits(a[i]) != math.Float64bits(b[i]) {
				t.Fatalf("%s: arrival %d differs across identical seeds: %v vs %v", p.Name(), i, a[i], b[i])
			}
		}
		c := p.Generate(stats.NewRNG(43), horizon)
		same := len(a) == len(c)
		if same {
			for i := range a {
				if math.Float64bits(a[i]) != math.Float64bits(c[i]) {
					same = false
					break
				}
			}
		}
		if same && len(a) > 0 {
			t.Errorf("%s: seeds 42 and 43 produced identical non-empty streams", p.Name())
		}
	}
}

// TestArrivalOrderedInRange: every process emits a non-decreasing
// stream confined to [0, horizon).
func TestArrivalOrderedInRange(t *testing.T) {
	const horizon = 3000.0
	for _, p := range allProcesses() {
		for seed := uint64(1); seed <= 5; seed++ {
			out := p.Generate(stats.NewRNG(seed), horizon)
			prev := 0.0
			for i, v := range out {
				if math.IsNaN(v) || v < 0 || v >= horizon {
					t.Fatalf("%s seed %d: arrival %d = %v outside [0, %v)", p.Name(), seed, i, v, horizon)
				}
				if v < prev {
					t.Fatalf("%s seed %d: arrival %d = %v before predecessor %v", p.Name(), seed, i, v, prev)
				}
				prev = v
			}
		}
	}
}

// TestPoissonMean: the empirical inter-arrival mean converges to
// 1/Rate within tolerance, aggregated over seeds.
func TestPoissonMean(t *testing.T) {
	const (
		rate    = 2.0
		horizon = 3000.0
	)
	total, count := 0.0, 0
	for seed := uint64(1); seed <= 8; seed++ {
		out := Poisson{Rate: rate}.Generate(stats.NewRNG(seed), horizon)
		if len(out) < 2 {
			t.Fatalf("seed %d: only %d arrivals", seed, len(out))
		}
		prev := 0.0
		for _, v := range out {
			total += v - prev
			prev = v
			count++
		}
	}
	mean := total / float64(count)
	want := 1 / rate
	if math.Abs(mean-want) > 0.05*want {
		t.Fatalf("mean inter-arrival %v, want %v +- 5%% over %d gaps", mean, want, count)
	}
}

// TestMultiPeriodEnvelopeCounts: the inversion generator integrates the
// envelope exactly — per-window arrival counts match Rate x Duration
// within sampling tolerance, and quiet windows stay empty.
func TestMultiPeriodEnvelopeCounts(t *testing.T) {
	day := Period{DurationSec: 600, Rate: 1.0}
	night := Period{DurationSec: 400, Rate: 0.2}
	quiet := Period{DurationSec: 200, Rate: 0}
	mp := MultiPeriod{Periods: []Period{day, night, quiet}}
	cycle := day.DurationSec + night.DurationSec + quiet.DurationSec
	const cycles = 10
	horizon := cycle * cycles

	var dayN, nightN, quietN int
	const seeds = 6
	for seed := uint64(1); seed <= seeds; seed++ {
		for _, v := range mp.Generate(stats.NewRNG(seed), horizon) {
			switch phase := math.Mod(v, cycle); {
			case phase < day.DurationSec:
				dayN++
			case phase < day.DurationSec+night.DurationSec:
				nightN++
			default:
				quietN++
			}
		}
	}
	if quietN != 0 {
		t.Fatalf("quiet window received %d arrivals", quietN)
	}
	wantDay := day.Rate * day.DurationSec * cycles * seeds
	wantNight := night.Rate * night.DurationSec * cycles * seeds
	if math.Abs(float64(dayN)-wantDay) > 0.05*wantDay {
		t.Errorf("day window: %d arrivals, want %v +- 5%%", dayN, wantDay)
	}
	if math.Abs(float64(nightN)-wantNight) > 0.10*wantNight {
		t.Errorf("night window: %d arrivals, want %v +- 10%%", nightN, wantNight)
	}
}

// TestBurstCounts: burst trains land exactly Size arrivals per burst
// inside the horizon, and stay ordered even when Width > Every makes
// consecutive bursts overlap.
func TestBurstCounts(t *testing.T) {
	b := Burst{Every: 100, Size: 5, Width: 10, Offset: 20}
	out := b.Generate(stats.NewRNG(9), 1000)
	// Bursts start at 20, 120, ..., 920: ten bursts, none clipped
	// (920 + 10 < 1000).
	if got, want := len(out), 50; got != want {
		t.Fatalf("burst train emitted %d arrivals, want %d", got, want)
	}
	for i, v := range out {
		burst := (v - 20) / 100
		if burst < 0 || v-(20+math.Floor(burst)*100) > 10 {
			t.Fatalf("arrival %d = %v outside any burst window", i, v)
		}
	}

	overlap := Burst{Every: 50, Size: 3, Width: 120}
	out = overlap.Generate(stats.NewRNG(3), 500)
	for i := 1; i < len(out); i++ {
		if out[i] < out[i-1] {
			t.Fatalf("overlapping bursts emitted out-of-order arrivals at %d: %v < %v", i, out[i], out[i-1])
		}
	}
}

// TestModulateEnvelope: a unit envelope passes the inner stream through
// untouched (and draws no extra randomness); a zero envelope drops
// everything.
func TestModulateEnvelope(t *testing.T) {
	inner := Poisson{Rate: 1.0}
	const horizon = 500.0

	pass := Modulate{P: inner, Envelope: func(float64) float64 { return 1 }, EnvelopeName: "one"}
	got := pass.Generate(stats.NewRNG(7), horizon)
	rng := stats.NewRNG(7)
	want := inner.Generate(rng.Split(), horizon)
	if len(got) != len(want) {
		t.Fatalf("unit envelope changed the stream: %d vs %d arrivals", len(got), len(want))
	}
	for i := range got {
		if math.Float64bits(got[i]) != math.Float64bits(want[i]) {
			t.Fatalf("unit envelope perturbed arrival %d: %v vs %v", i, got[i], want[i])
		}
	}

	drop := Modulate{P: inner, Envelope: func(float64) float64 { return 0 }, EnvelopeName: "zero"}
	if out := drop.Generate(stats.NewRNG(7), horizon); len(out) != 0 {
		t.Fatalf("zero envelope passed %d arrivals", len(out))
	}

	half := Modulate{P: inner, Envelope: func(float64) float64 { return 0.5 }, EnvelopeName: "half"}
	thinned := half.Generate(stats.NewRNG(7), horizon)
	if len(thinned) == 0 || len(thinned) >= len(want) {
		t.Fatalf("half envelope kept %d of %d arrivals", len(thinned), len(want))
	}
}

// TestArrivalValidate: every invalid parameterization is rejected
// before a single draw.
func TestArrivalValidate(t *testing.T) {
	bad := []ArrivalProcess{
		Poisson{Rate: 0},
		Poisson{Rate: -1},
		Poisson{Rate: math.NaN()},
		Poisson{Rate: math.Inf(1)},
		MultiPeriod{},
		MultiPeriod{Periods: []Period{{DurationSec: 0, Rate: 1}}},
		MultiPeriod{Periods: []Period{{DurationSec: 100, Rate: -1}}},
		MultiPeriod{Periods: []Period{{DurationSec: 100, Rate: 0}}}, // no positive window
		Burst{Every: 0, Size: 1},
		Burst{Every: 10, Size: 0},
		Burst{Every: 10, Size: 1, Width: -1},
		Burst{Every: 10, Size: 1, Offset: math.NaN()},
		Superpose{},
		Superpose{Components: []ArrivalProcess{Poisson{Rate: -1}}},
		Modulate{},
		Modulate{P: Poisson{Rate: 1}},
	}
	for _, p := range bad {
		if err := p.Validate(); err == nil {
			t.Errorf("%T %+v: Validate accepted invalid parameters", p, p)
		}
	}
}

// TestMarksFinitePositive: every mark distribution, including extreme
// heavy-tail parameterizations, only ever emits finite strictly
// positive samples bounded by its cap.
func TestMarksFinitePositive(t *testing.T) {
	dists := []struct {
		d   MarkDist
		max float64
	}{
		{ConstMark{V: 3}, 3},
		{UniformMark{Lo: 1, Hi: 64}, 64},
		{LogNormalMark{Mu: 0, Sigma: 0.5}, 1e9},
		{LogNormalMark{Mu: 5, Sigma: 5, Max: 1e6}, 1e6}, // violent tail, tight cap
		{ParetoMark{Xm: 1, Alpha: 1.5}, 1e9},
		{ParetoMark{Xm: 2, Alpha: 0.5, Max: 1e4}, 1e4}, // infinite-mean tail
	}
	for _, tc := range dists {
		if err := tc.d.Validate(); err != nil {
			t.Fatalf("%s: Validate: %v", tc.d.Name(), err)
		}
		rng := stats.NewRNG(1234)
		for i := 0; i < 20000; i++ {
			v := tc.d.Sample(rng)
			if math.IsNaN(v) || math.IsInf(v, 0) || v <= 0 || v > tc.max {
				t.Fatalf("%s: sample %d = %v, want 0 < v <= %v", tc.d.Name(), i, v, tc.max)
			}
		}
	}
}

// TestMarkValidate rejects invalid mark parameters.
func TestMarkValidate(t *testing.T) {
	bad := []MarkDist{
		ConstMark{},
		ConstMark{V: -1},
		ConstMark{V: math.Inf(1)},
		UniformMark{Lo: 0, Hi: 1},
		UniformMark{Lo: 2, Hi: 1},
		UniformMark{Lo: 1, Hi: math.Inf(1)},
		LogNormalMark{Mu: math.NaN()},
		LogNormalMark{Sigma: -1},
		LogNormalMark{Max: math.Inf(1)},
		ParetoMark{Xm: 0, Alpha: 1},
		ParetoMark{Xm: 1, Alpha: 0},
		ParetoMark{Xm: 1, Alpha: 1, Max: -1},
	}
	for _, d := range bad {
		if err := d.Validate(); err == nil {
			t.Errorf("%T %+v: Validate accepted invalid parameters", d, d)
		}
	}
}
