package workload

import "testing"

// BenchmarkGenerateArrivals tracks generator cost in the bench gate:
// one full bursty-profile trace (superposed Poisson + burst train,
// two-tenant marks) per iteration, reported as jobs/s so a regression
// in the inversion or thinning loops is caught by make bench-gate.
func BenchmarkGenerateArrivals(b *testing.B) {
	spec := Profiles()[0].Build(7, 4*3600, 1.0) // "bursty" (sorted first)
	jobs := 0
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr, err := Generate(spec)
		if err != nil {
			b.Fatal(err)
		}
		jobs = len(tr.Jobs)
	}
	b.ReportMetric(float64(jobs)*float64(b.N)/b.Elapsed().Seconds(), "rows/s")
}
