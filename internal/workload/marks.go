package workload

import (
	"fmt"
	"math"

	"crossarch/internal/floats"
	"crossarch/internal/stats"
)

// MarkDist is a distribution over per-job marks (node demand, runtime
// scale, deadline slack). Samples are always finite and strictly
// positive — heavy-tailed families are capped so a single draw can
// never produce an unsimulatable job.
type MarkDist interface {
	Name() string
	Sample(rng *stats.RNG) float64
	Validate() error
}

// ConstMark always returns V.
type ConstMark struct{ V float64 }

// Name implements MarkDist.
func (c ConstMark) Name() string { return fmt.Sprintf("const(%g)", c.V) }

// Validate implements MarkDist.
func (c ConstMark) Validate() error {
	if !(c.V > 0) || math.IsInf(c.V, 1) {
		return fmt.Errorf("workload: const mark %v, want finite > 0", c.V)
	}
	return nil
}

// Sample implements MarkDist.
func (c ConstMark) Sample(*stats.RNG) float64 { return c.V }

// UniformMark draws uniformly from [Lo, Hi).
type UniformMark struct{ Lo, Hi float64 }

// Name implements MarkDist.
func (u UniformMark) Name() string { return fmt.Sprintf("uniform[%g,%g)", u.Lo, u.Hi) }

// Validate implements MarkDist.
func (u UniformMark) Validate() error {
	if !(u.Lo > 0) || !(u.Hi >= u.Lo) || math.IsInf(u.Hi, 1) {
		return fmt.Errorf("workload: uniform mark [%v,%v), want finite 0 < lo <= hi", u.Lo, u.Hi)
	}
	return nil
}

// Sample implements MarkDist.
func (u UniformMark) Sample(rng *stats.RNG) float64 {
	if floats.Eq(u.Hi, u.Lo) {
		return u.Lo
	}
	return rng.Range(u.Lo, u.Hi)
}

// LogNormalMark draws exp(N(Mu, Sigma)) capped at Max — the canonical
// right-skewed job-size / runtime model (most jobs small, a long tail
// of large ones).
type LogNormalMark struct {
	// Mu and Sigma parameterize the underlying normal; the median of
	// the mark is exp(Mu).
	Mu, Sigma float64
	// Max caps the tail (0 = default 1e9) so every sample stays finite
	// and simulatable.
	Max float64
}

// Name implements MarkDist.
func (l LogNormalMark) Name() string { return fmt.Sprintf("lognormal(mu=%g,sigma=%g)", l.Mu, l.Sigma) }

// Validate implements MarkDist.
func (l LogNormalMark) Validate() error {
	if math.IsNaN(l.Mu) || math.IsInf(l.Mu, 0) {
		return fmt.Errorf("workload: lognormal mu %v, want finite", l.Mu)
	}
	if math.IsNaN(l.Sigma) || l.Sigma < 0 || math.IsInf(l.Sigma, 1) {
		return fmt.Errorf("workload: lognormal sigma %v, want finite >= 0", l.Sigma)
	}
	if math.IsNaN(l.Max) || l.Max < 0 || math.IsInf(l.Max, 1) {
		return fmt.Errorf("workload: lognormal max %v, want finite >= 0", l.Max)
	}
	return nil
}

// Sample implements MarkDist.
func (l LogNormalMark) Sample(rng *stats.RNG) float64 {
	cap := l.Max
	if cap == 0 {
		cap = 1e9
	}
	v := rng.LogNormal(l.Mu, l.Sigma)
	if v > cap {
		return cap
	}
	if v <= 0 {
		// exp never underflows to zero for the validated parameter
		// range, but guard the contract anyway.
		return math.SmallestNonzeroFloat64
	}
	return v
}

// ParetoMark draws from a bounded Pareto distribution with scale Xm
// and shape Alpha, capped at Max — the classic heavy-tail model for
// HPC job sizes (Pareto via inversion: Xm / U^(1/Alpha)).
type ParetoMark struct {
	// Xm is the minimum value (> 0).
	Xm float64
	// Alpha is the tail index (> 0); smaller means heavier tail.
	Alpha float64
	// Max caps the tail (0 = default 1e9).
	Max float64
}

// Name implements MarkDist.
func (p ParetoMark) Name() string { return fmt.Sprintf("pareto(xm=%g,alpha=%g)", p.Xm, p.Alpha) }

// Validate implements MarkDist.
func (p ParetoMark) Validate() error {
	if !(p.Xm > 0) || math.IsInf(p.Xm, 1) {
		return fmt.Errorf("workload: pareto xm %v, want finite > 0", p.Xm)
	}
	if !(p.Alpha > 0) || math.IsInf(p.Alpha, 1) {
		return fmt.Errorf("workload: pareto alpha %v, want finite > 0", p.Alpha)
	}
	if math.IsNaN(p.Max) || p.Max < 0 || math.IsInf(p.Max, 1) {
		return fmt.Errorf("workload: pareto max %v, want finite >= 0", p.Max)
	}
	return nil
}

// Sample implements MarkDist.
func (p ParetoMark) Sample(rng *stats.RNG) float64 {
	cap := p.Max
	if cap == 0 {
		cap = 1e9
	}
	// 1 - Float64() is in (0, 1], so the power stays finite and the
	// sample stays >= Xm.
	u := 1 - rng.Float64()
	v := p.Xm / math.Pow(u, 1/p.Alpha)
	if v > cap {
		return cap
	}
	return v
}
