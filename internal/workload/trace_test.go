package workload

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"strings"
	"testing"

	"crossarch/internal/sched"
)

func testTrace() *Trace {
	return &Trace{
		SchemaVersion: TraceSchemaVersion,
		Seed:          99,
		Comment:       "fixture",
		Jobs: []TraceJob{
			{ID: 0, ArrivalSec: 0, Tenant: "prod", Nodes: 2, RuntimeScale: 1, DeadlineSec: 600},
			{ID: 1, ArrivalSec: 1.5, Tenant: "batch", Nodes: 8, RuntimeScale: 2.25},
			{ID: 2, ArrivalSec: 1.5, Nodes: 1, RuntimeScale: 0.5, RuntimeSec: 120},
		},
	}
}

// TestTraceRoundTrip: write → read reproduces the trace exactly and
// stamps a stable checksum.
func TestTraceRoundTrip(t *testing.T) {
	tr := testTrace()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	if tr.Checksum == "" {
		t.Fatal("WriteTrace left no checksum")
	}
	got, err := ReadTrace(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("round trip mismatch:\n got %+v\nwant %+v", got, tr)
	}

	var buf2 bytes.Buffer
	if err := WriteTrace(&buf2, testTrace()); err != nil {
		t.Fatalf("WriteTrace again: %v", err)
	}
	if !bytes.Equal(buf.Bytes(), buf2.Bytes()) {
		t.Fatal("writing the same trace twice produced different bytes")
	}
}

// TestTraceChecksum: corruption of the job payload after writing is
// detected as ErrTraceChecksum.
func TestTraceChecksum(t *testing.T) {
	tr := testTrace()
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	corrupted := strings.Replace(buf.String(), `"nodes": 8`, `"nodes": 9`, 1)
	if corrupted == buf.String() {
		t.Fatal("corruption did not apply")
	}
	_, err := ReadTrace(strings.NewReader(corrupted))
	if !errors.Is(err, ErrTraceChecksum) {
		t.Fatalf("ReadTrace(corrupted) = %v, want ErrTraceChecksum", err)
	}
}

// TestTraceSchemaErrors: structurally invalid traces are rejected with
// ErrTraceSchema before any job is interpreted.
func TestTraceSchemaErrors(t *testing.T) {
	cases := []struct {
		name string
		mut  func(*Trace)
	}{
		{"unknown version", func(tr *Trace) { tr.SchemaVersion = 2 }},
		{"zero version", func(tr *Trace) { tr.SchemaVersion = 0 }},
		{"negative arrival", func(tr *Trace) { tr.Jobs[0].ArrivalSec = -1 }},
		{"NaN arrival", func(tr *Trace) { tr.Jobs[0].ArrivalSec = math.NaN() }},
		{"out of order", func(tr *Trace) { tr.Jobs[2].ArrivalSec = 0.5 }},
		{"zero nodes", func(tr *Trace) { tr.Jobs[1].Nodes = 0 }},
		{"negative scale", func(tr *Trace) { tr.Jobs[1].RuntimeScale = -2 }},
		{"negative deadline", func(tr *Trace) { tr.Jobs[0].DeadlineSec = -600 }},
		{"infinite runtime", func(tr *Trace) { tr.Jobs[2].RuntimeSec = math.Inf(1) }},
	}
	for _, tc := range cases {
		tr := testTrace()
		tc.mut(tr)
		if err := tr.Validate(); !errors.Is(err, ErrTraceSchema) {
			t.Errorf("%s: Validate = %v, want ErrTraceSchema", tc.name, err)
		}
	}

	// A v1 file without a checksum is rejected too.
	if _, err := ReadTrace(strings.NewReader(`{"schema_version":1,"jobs":[]}`)); !errors.Is(err, ErrTraceSchema) {
		t.Errorf("checksum-less trace: ReadTrace = %v, want ErrTraceSchema", err)
	}
	if _, err := ReadTrace(strings.NewReader("not json")); !errors.Is(err, ErrTraceSchema) {
		t.Errorf("garbage: ReadTrace = %v, want ErrTraceSchema", err)
	}
}

// TestTraceSWFRoundTrip: SWF records convert to a trace and back
// preserving submit time, node demand, and runtime.
func TestTraceSWFRoundTrip(t *testing.T) {
	swf := `; fixture
1 0.00 5.00 100.00 4 -1 -1 4 100.00 -1 -1 -1 -1 -1 2 -1 -1 -1
2 30.00 0.00 250.00 16 -1 -1 16 250.00 -1 -1 -1 -1 -1 1 -1 -1 -1
3 60.00 1.00 80.00 1 -1 -1 1 80.00 -1 -1 -1 -1 -1 3 -1 -1 -1
`
	records, skipped, err := sched.ReadSWF(strings.NewReader(swf))
	if err != nil || skipped != 0 {
		t.Fatalf("ReadSWF: err=%v skipped=%d", err, skipped)
	}
	tr, err := TraceFromSWF(records, "converted")
	if err != nil {
		t.Fatalf("TraceFromSWF: %v", err)
	}
	if len(tr.Jobs) != len(records) {
		t.Fatalf("trace has %d jobs for %d records", len(tr.Jobs), len(records))
	}
	back := tr.SWFRecords()
	for i, r := range records {
		if back[i].Submit != r.Submit || back[i].Run != r.Run || back[i].Procs != r.Procs {
			t.Errorf("record %d: round trip %+v, want submit/run/procs of %+v", i, back[i], r)
		}
	}
	// The conversion survives a write/read cycle too.
	var buf bytes.Buffer
	if err := WriteTrace(&buf, tr); err != nil {
		t.Fatalf("WriteTrace: %v", err)
	}
	got, err := ReadTrace(&buf)
	if err != nil {
		t.Fatalf("ReadTrace: %v", err)
	}
	if !reflect.DeepEqual(got.Jobs, tr.Jobs) {
		t.Fatal("SWF-derived trace changed across write/read")
	}
}

// TestGenerateDeterminism: the same spec generates byte-identical
// traces; truncation and tenant attribution behave as documented.
func TestGenerateDeterminism(t *testing.T) {
	for _, p := range Profiles() {
		spec := p.Build(77, 1800, 0.5)
		a, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: Generate: %v", p.Name, err)
		}
		b, err := Generate(spec)
		if err != nil {
			t.Fatalf("%s: Generate again: %v", p.Name, err)
		}
		if !reflect.DeepEqual(a, b) {
			t.Fatalf("%s: same spec generated different traces", p.Name)
		}
		if err := a.Validate(); err != nil {
			t.Fatalf("%s: generated trace invalid: %v", p.Name, err)
		}
		if len(a.Jobs) == 0 {
			t.Fatalf("%s: generated empty trace", p.Name)
		}
		st := Summarize(a)
		if st.TenantJobs["prod"] == 0 || st.TenantJobs["batch"] == 0 {
			t.Fatalf("%s: tenant mix missing: %+v", p.Name, st.TenantJobs)
		}
		if st.DeadlineJobs == 0 || st.DeadlineJobs != st.TenantJobs["prod"] {
			t.Fatalf("%s: %d deadline jobs for %d prod jobs", p.Name, st.DeadlineJobs, st.TenantJobs["prod"])
		}
		if st.MaxNodes > 64 {
			t.Fatalf("%s: job wants %d nodes, cap is 64", p.Name, st.MaxNodes)
		}

		capped := spec
		capped.MaxJobs = 5
		c, err := Generate(capped)
		if err != nil {
			t.Fatalf("%s: Generate capped: %v", p.Name, err)
		}
		if len(c.Jobs) != 5 {
			t.Fatalf("%s: MaxJobs=5 produced %d jobs", p.Name, len(c.Jobs))
		}
	}
}

// TestSpecValidate rejects unusable specs with descriptive errors.
func TestSpecValidate(t *testing.T) {
	ok := Spec{HorizonSec: 100, Arrivals: Poisson{Rate: 1}}
	if err := ok.Validate(); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	cases := []struct {
		name string
		mut  func(*Spec)
	}{
		{"zero horizon", func(s *Spec) { s.HorizonSec = 0 }},
		{"no arrivals", func(s *Spec) { s.Arrivals = nil }},
		{"bad arrivals", func(s *Spec) { s.Arrivals = Poisson{Rate: -1} }},
		{"bad sizes", func(s *Spec) { s.Sizes = ConstMark{} }},
		{"bad runtime scale", func(s *Spec) { s.RuntimeScale = UniformMark{Lo: 2, Hi: 1} }},
		{"negative max nodes", func(s *Spec) { s.MaxNodes = -1 }},
		{"negative max jobs", func(s *Spec) { s.MaxJobs = -1 }},
		{"anonymous tenant", func(s *Spec) { s.Tenants = []TenantSpec{{}} }},
		{"duplicate tenant", func(s *Spec) {
			s.Tenants = []TenantSpec{{Name: "a"}, {Name: "a"}}
		}},
		{"negative weight", func(s *Spec) { s.Tenants = []TenantSpec{{Name: "a", Weight: -1}} }},
		{"negative share", func(s *Spec) { s.Tenants = []TenantSpec{{Name: "a", Share: -1}} }},
		{"bad deadline frac", func(s *Spec) { s.Tenants = []TenantSpec{{Name: "a", DeadlineFrac: 2}} }},
		{"deadlines without slack", func(s *Spec) {
			s.Tenants = []TenantSpec{{Name: "a", DeadlineFrac: 0.5}}
		}},
	}
	for _, tc := range cases {
		s := ok
		tc.mut(&s)
		if err := s.Validate(); err == nil {
			t.Errorf("%s: Validate accepted invalid spec", tc.name)
		}
	}
}

// TestProfiles: every named profile builds a valid spec and resolves by
// name; unknown names error.
func TestProfiles(t *testing.T) {
	for _, p := range Profiles() {
		spec := p.Build(1, 600, 1)
		if err := spec.Validate(); err != nil {
			t.Errorf("profile %s: invalid spec: %v", p.Name, err)
		}
		got, err := ProfileByName(p.Name)
		if err != nil || got.Name != p.Name {
			t.Errorf("ProfileByName(%s) = %v, %v", p.Name, got.Name, err)
		}
	}
	if _, err := ProfileByName("nope"); err == nil {
		t.Error("ProfileByName accepted an unknown profile")
	}
	shares := ShareMap(sloTenants())
	if shares["prod"] <= shares["batch"] {
		t.Errorf("prod share %v should exceed batch share %v", shares["prod"], shares["batch"])
	}
	if ShareMap(nil) != nil {
		t.Error("ShareMap(nil) should be nil")
	}
}

// FuzzTraceRead: arbitrary bytes must never panic the reader, and any
// trace that reads successfully must re-encode and re-read to the same
// value (the parse → print → parse fixpoint).
func FuzzTraceRead(f *testing.F) {
	var buf bytes.Buffer
	if err := WriteTrace(&buf, testTrace()); err != nil {
		f.Fatal(err)
	}
	f.Add(buf.Bytes())
	f.Add([]byte(`{"schema_version":1,"checksum":"x","jobs":[]}`))
	f.Add([]byte(`{"schema_version":7}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{"schema_version":1,"jobs":[{"id":0,"arrival_sec":-5,"nodes":1}]}`))
	f.Fuzz(func(t *testing.T, data []byte) {
		tr, err := ReadTrace(bytes.NewReader(data))
		if err != nil {
			return
		}
		var out bytes.Buffer
		if err := WriteTrace(&out, tr); err != nil {
			t.Fatalf("WriteTrace of a successfully read trace: %v", err)
		}
		again, err := ReadTrace(bytes.NewReader(out.Bytes()))
		if err != nil {
			t.Fatalf("ReadTrace of a freshly written trace: %v", err)
		}
		if !reflect.DeepEqual(again.Jobs, tr.Jobs) {
			t.Fatal("write/read fixpoint violated")
		}
	})
}
