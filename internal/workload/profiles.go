package workload

import (
	"fmt"
	"sort"
)

// Profile is a named, reusable workload shape shared by the generator
// CLI and the scheduling sweep: given a seed, horizon, and base rate it
// produces a complete Spec, including the two-tenant SLO scenario the
// headline experiment studies (a deadline-carrying "prod" tenant with
// 3x the fairness share, and a higher-volume best-effort "batch"
// tenant).
type Profile struct {
	Name string
	// Describe is the one-line summary shown by -list.
	Describe string
	// Build produces the spec for this profile.
	Build func(seed uint64, horizonSec, rate float64) Spec
}

// sloTenants is the standard two-tenant mix: prod submits a third of
// the traffic, carries deadlines on every job, and owns three quarters
// of the fairness share; batch submits the bulk of the traffic with no
// deadlines and a small share.
func sloTenants() []TenantSpec {
	return []TenantSpec{
		{
			Name:         "prod",
			Weight:       1,
			Share:        3,
			DeadlineFrac: 1,
			// Slack is log-normal around ~9 minutes: tight enough that
			// queueing decisions matter, loose enough that a sane
			// scheduler can meet most of them.
			DeadlineSlack: LogNormalMark{Mu: 6.3, Sigma: 0.6, Max: 2 * 3600},
		},
		{Name: "batch", Weight: 2, Share: 1},
	}
}

// sloMarks attaches the heavy-tailed size and runtime marks every
// profile shares: bounded-Pareto node demand (most jobs small, a real
// tail) and log-normal runtime scaling around 1.
func sloMarks(s *Spec) {
	s.Sizes = ParetoMark{Xm: 2, Alpha: 1.1, Max: 64}
	s.MaxNodes = 64
	s.RuntimeScale = LogNormalMark{Mu: 0, Sigma: 0.4, Max: 8}
}

// Profiles returns the named workload profiles, sorted by name.
func Profiles() []Profile {
	ps := []Profile{
		{
			Name:     "steady",
			Describe: "homogeneous Poisson arrivals, two-tenant SLO mix",
			Build: func(seed uint64, horizonSec, rate float64) Spec {
				s := Spec{
					Seed:       seed,
					HorizonSec: horizonSec,
					Arrivals:   Poisson{Rate: rate},
					Tenants:    sloTenants(),
					Comment:    fmt.Sprintf("steady: poisson %g/s over %gs", rate, horizonSec),
				}
				sloMarks(&s)
				return s
			},
		},
		{
			Name:     "diurnal",
			Describe: "day/night multi-period rate envelope (3:1), two-tenant SLO mix",
			Build: func(seed uint64, horizonSec, rate float64) Spec {
				// A compressed day: 600s of 1.5x rate, 600s at a third of
				// it, so the cycle mean equals the requested rate.
				s := Spec{
					Seed:       seed,
					HorizonSec: horizonSec,
					Arrivals: MultiPeriod{Periods: []Period{
						{DurationSec: 600, Rate: 1.5 * rate},
						{DurationSec: 600, Rate: 0.5 * rate},
					}},
					Tenants: sloTenants(),
					Comment: fmt.Sprintf("diurnal: 600s@%g/s + 600s@%g/s over %gs", 1.5*rate, 0.5*rate, horizonSec),
				}
				sloMarks(&s)
				return s
			},
		},
		{
			Name:     "bursty",
			Describe: "Poisson baseline + synchronized burst trains, two-tenant SLO mix",
			Build: func(seed uint64, horizonSec, rate float64) Spec {
				// Half the volume arrives as the smooth baseline, half in
				// 30-second burst trains every five minutes.
				burstSize := int(0.5*rate*300 + 0.5)
				if burstSize < 1 {
					burstSize = 1
				}
				s := Spec{
					Seed:       seed,
					HorizonSec: horizonSec,
					Arrivals: Superpose{Components: []ArrivalProcess{
						Poisson{Rate: 0.5 * rate},
						Burst{Every: 300, Size: burstSize, Width: 30, Offset: 60},
					}},
					Tenants: sloTenants(),
					Comment: fmt.Sprintf("bursty: poisson %g/s + %d-job bursts/300s over %gs", 0.5*rate, burstSize, horizonSec),
				}
				sloMarks(&s)
				return s
			},
		},
	}
	sort.Slice(ps, func(i, j int) bool { return ps[i].Name < ps[j].Name })
	return ps
}

// ProfileByName resolves a profile by name.
func ProfileByName(name string) (Profile, error) {
	for _, p := range Profiles() {
		if p.Name == name {
			return p, nil
		}
	}
	names := make([]string, 0, 3)
	for _, p := range Profiles() {
		names = append(names, p.Name)
	}
	return Profile{}, fmt.Errorf("workload: unknown profile %q (have %v)", name, names)
}

// ShareMap extracts the tenant fairness shares from a spec in the form
// the scheduler consumes.
func ShareMap(tenants []TenantSpec) map[string]float64 {
	if len(tenants) == 0 {
		return nil
	}
	m := make(map[string]float64, len(tenants))
	for _, t := range tenants {
		m[t.Name] = t.Share
	}
	return m
}
