package workload

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"crossarch/internal/stats"
)

// TestComponentNames pins the display name of every arrival process
// and mark distribution: the names land in trace comments and CLI
// output, so a silent rename would break recorded provenance.
func TestComponentNames(t *testing.T) {
	cases := []struct {
		got, want string
	}{
		{Poisson{Rate: 2}.Name(), "poisson(2/s)"},
		{MultiPeriod{Periods: []Period{{Rate: 1, DurationSec: 60}, {Rate: 2, DurationSec: 60}}}.Name(), "multiperiod(2 windows)"},
		{Burst{Every: 300, Size: 600, Width: 10}.Name(), "burst(600x every 300s)"},
		{Superpose{Components: []ArrivalProcess{Poisson{Rate: 1}, Burst{Every: 300, Size: 10, Width: 5}}}.Name(),
			"superpose([poisson(1/s) burst(10x every 300s)])"},
		{Modulate{P: Poisson{Rate: 4}, Envelope: func(float64) float64 { return 0.5 }, EnvelopeName: "half"}.Name(),
			"modulate(poisson(4/s), half)"},
		{ConstMark{V: 3}.Name(), "const(3)"},
		{UniformMark{Lo: 1, Hi: 4}.Name(), "uniform[1,4)"},
		{LogNormalMark{Mu: 1, Sigma: 0.5}.Name(), "lognormal(mu=1,sigma=0.5)"},
		{ParetoMark{Xm: 2, Alpha: 1.1}.Name(), "pareto(xm=2,alpha=1.1)"},
	}
	for i, c := range cases {
		if c.got != c.want {
			t.Errorf("case %d: name = %q, want %q", i, c.got, c.want)
		}
	}
}

// TestUniformMarkDegenerate pins the point-mass case: lo == hi must
// return exactly lo without consuming a draw from the stream.
func TestUniformMarkDegenerate(t *testing.T) {
	u := UniformMark{Lo: 3, Hi: 3}
	if err := u.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	rng := stats.NewRNG(1)
	before := rng.Float64()
	rng = stats.NewRNG(1)
	if got := u.Sample(rng); got != 3 {
		t.Fatalf("Sample = %v, want 3", got)
	}
	if got := rng.Float64(); got != before {
		t.Fatalf("degenerate Sample consumed a draw: next = %v, want %v", got, before)
	}
}

// TestStatsString covers the human-readable summary, including the
// blank-tenant label.
func TestStatsString(t *testing.T) {
	tr := &Trace{
		SchemaVersion: TraceSchemaVersion,
		Jobs: []TraceJob{
			{ID: 0, ArrivalSec: 0, Tenant: "prod", Nodes: 4, DeadlineSec: 60},
			{ID: 1, ArrivalSec: 5, Nodes: 8},
		},
	}
	s := Summarize(tr).String()
	for _, want := range []string{"jobs=2", "deadline-jobs=1", "tenant prod", "tenant (none)"} {
		if !strings.Contains(s, want) {
			t.Errorf("String() = %q, missing %q", s, want)
		}
	}
}

// TestSaveLoadTrace exercises the file-path wrappers around
// WriteTrace/ReadTrace, including the typed failure on a missing file.
func TestSaveLoadTrace(t *testing.T) {
	spec := Spec{
		Seed:       3,
		HorizonSec: 120,
		Arrivals:   Poisson{Rate: 0.5},
		Sizes:      ConstMark{V: 2},
		MaxNodes:   8,
		Tenants:    []TenantSpec{{Name: "a", Weight: 1}},
	}
	tr, err := Generate(spec)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	path := filepath.Join(t.TempDir(), "trace.json")
	if err := SaveTrace(path, tr); err != nil {
		t.Fatalf("SaveTrace: %v", err)
	}
	got, err := LoadTrace(path)
	if err != nil {
		t.Fatalf("LoadTrace: %v", err)
	}
	if !reflect.DeepEqual(got, tr) {
		t.Fatalf("LoadTrace round trip differs: got %+v, want %+v", got, tr)
	}
	if _, err := LoadTrace(filepath.Join(t.TempDir(), "absent.json")); !os.IsNotExist(err) {
		t.Fatalf("LoadTrace(absent) = %v, want os.IsNotExist", err)
	}
}
