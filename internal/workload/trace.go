package workload

import (
	"encoding/json"
	"errors"
	"fmt"
	"hash/fnv"
	"io"
	"math"
	"os"

	"crossarch/internal/sched"
)

// TraceSchemaVersion is the current trace file schema.
const TraceSchemaVersion = 1

// ErrTraceSchema is the typed cause of every structurally-invalid trace
// failure: unknown schema version, non-monotone arrivals, negative
// fields. Detect with errors.Is.
var ErrTraceSchema = errors.New("workload: invalid trace")

// ErrTraceChecksum is the typed cause of a trace whose stored checksum
// does not match its job payload — a torn write or hand-edited file.
var ErrTraceChecksum = errors.New("workload: trace checksum mismatch")

// TraceJob is one recorded arrival. Runtime information is carried two
// ways: RuntimeScale multiplies the per-machine runtimes attached at
// replay time (the paper's resampled-application path), while a
// non-zero RuntimeSec pins a flat runtime on every machine (the SWF
// import path, where the trace knows the real duration but nothing
// about architecture).
type TraceJob struct {
	ID         int     `json:"id"`
	ArrivalSec float64 `json:"arrival_sec"`
	// Tenant names the submitting tenant ("" = untenanted).
	Tenant string `json:"tenant,omitempty"`
	Nodes  int    `json:"nodes"`
	// RuntimeScale multiplies replay-time runtimes (0 is read as 1).
	RuntimeScale float64 `json:"runtime_scale,omitempty"`
	// DeadlineSec is the relative deadline in seconds after arrival
	// (0 = no deadline).
	DeadlineSec float64 `json:"deadline_sec,omitempty"`
	// RuntimeSec, when > 0, pins a flat runtime on every machine.
	RuntimeSec float64 `json:"runtime_sec,omitempty"`
}

// Trace is the versioned on-disk workload format (schema v1): a header
// plus the arrival-ordered job list, integrity-protected by an FNV-1a 64
// digest over the canonical JSON encoding of the jobs array.
type Trace struct {
	SchemaVersion int        `json:"schema_version"`
	Seed          uint64     `json:"seed"`
	Comment       string     `json:"comment,omitempty"`
	Checksum      string     `json:"checksum,omitempty"`
	Jobs          []TraceJob `json:"jobs"`
}

// jobsChecksum digests the canonical JSON encoding of the jobs array.
func jobsChecksum(jobs []TraceJob) (string, error) {
	payload, err := json.Marshal(jobs)
	if err != nil {
		return "", err
	}
	h := fnv.New64a()
	_, _ = h.Write(payload) // hash.Hash.Write never returns an error
	return fmt.Sprintf("%016x", h.Sum64()), nil
}

// Validate checks structural invariants: known schema version,
// non-decreasing arrivals, positive node counts, finite non-negative
// marks.
func (t *Trace) Validate() error {
	if t.SchemaVersion != TraceSchemaVersion {
		return fmt.Errorf("%w: schema version %d, want %d", ErrTraceSchema, t.SchemaVersion, TraceSchemaVersion)
	}
	prev := math.Inf(-1)
	for i, j := range t.Jobs {
		if math.IsNaN(j.ArrivalSec) || j.ArrivalSec < 0 || math.IsInf(j.ArrivalSec, 1) {
			return fmt.Errorf("%w: job %d arrival %v, want finite >= 0", ErrTraceSchema, i, j.ArrivalSec)
		}
		if j.ArrivalSec < prev {
			return fmt.Errorf("%w: job %d arrives at %v before predecessor at %v", ErrTraceSchema, i, j.ArrivalSec, prev)
		}
		prev = j.ArrivalSec
		if j.Nodes <= 0 {
			return fmt.Errorf("%w: job %d requests %d nodes, want > 0", ErrTraceSchema, i, j.Nodes)
		}
		if math.IsNaN(j.RuntimeScale) || j.RuntimeScale < 0 || math.IsInf(j.RuntimeScale, 1) {
			return fmt.Errorf("%w: job %d runtime scale %v, want finite >= 0", ErrTraceSchema, i, j.RuntimeScale)
		}
		if math.IsNaN(j.DeadlineSec) || j.DeadlineSec < 0 || math.IsInf(j.DeadlineSec, 1) {
			return fmt.Errorf("%w: job %d deadline %v, want finite >= 0", ErrTraceSchema, i, j.DeadlineSec)
		}
		if math.IsNaN(j.RuntimeSec) || j.RuntimeSec < 0 || math.IsInf(j.RuntimeSec, 1) {
			return fmt.Errorf("%w: job %d runtime %v, want finite >= 0", ErrTraceSchema, i, j.RuntimeSec)
		}
	}
	return nil
}

// WriteTrace validates t, stamps the schema version and checksum, and
// writes the indented JSON encoding to w.
func WriteTrace(w io.Writer, t *Trace) error {
	t.SchemaVersion = TraceSchemaVersion
	if err := t.Validate(); err != nil {
		return err
	}
	sum, err := jobsChecksum(t.Jobs)
	if err != nil {
		return err
	}
	t.Checksum = sum
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(t)
}

// ReadTrace decodes and validates a trace. A checksum mismatch is
// reported as ErrTraceChecksum before any job is interpreted; a missing
// checksum field is itself a schema error (every v1 writer stamps one).
func ReadTrace(r io.Reader) (*Trace, error) {
	var t Trace
	dec := json.NewDecoder(r)
	if err := dec.Decode(&t); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTraceSchema, err)
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	if t.Checksum == "" {
		return nil, fmt.Errorf("%w: trace has no checksum", ErrTraceSchema)
	}
	sum, err := jobsChecksum(t.Jobs)
	if err != nil {
		return nil, err
	}
	if sum != t.Checksum {
		return nil, fmt.Errorf("%w: payload digest %s, header says %s", ErrTraceChecksum, sum, t.Checksum)
	}
	return &t, nil
}

// SaveTrace writes the trace to path (truncating).
func SaveTrace(path string, t *Trace) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := WriteTrace(f, t); err != nil {
		_ = f.Close() // the write error is the one worth reporting
		return err
	}
	return f.Close()
}

// LoadTrace reads and verifies the trace at path.
func LoadTrace(path string) (*Trace, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return ReadTrace(f)
}

// TraceFromSWF converts parsed SWF records into a schema-v1 trace. SWF
// records know their real runtime but nothing about architecture, so
// each job pins RuntimeSec; jobs are renumbered densely in submit order
// (ReadSWF preserves file order, which the archive keeps sorted by
// submit time — out-of-order files are rejected by Validate).
func TraceFromSWF(records []sched.SWFRecord, comment string) (*Trace, error) {
	t := &Trace{SchemaVersion: TraceSchemaVersion, Comment: comment}
	t.Jobs = make([]TraceJob, len(records))
	for i, r := range records {
		t.Jobs[i] = TraceJob{
			ID:           i,
			ArrivalSec:   r.Submit,
			Nodes:        r.Procs,
			RuntimeScale: 1,
			RuntimeSec:   r.Run,
		}
	}
	if err := t.Validate(); err != nil {
		return nil, err
	}
	return t, nil
}

// SWFRecords converts the trace to SWF records for export through
// sched.WriteSWF-compatible tooling. Wait time and partition are
// unknown before replay and written as the SWF missing-data convention;
// jobs without a pinned RuntimeSec export run time -1 the same way.
func (t *Trace) SWFRecords() []sched.SWFRecord {
	out := make([]sched.SWFRecord, len(t.Jobs))
	for i, j := range t.Jobs {
		run := j.RuntimeSec
		if run == 0 {
			run = -1
		}
		out[i] = sched.SWFRecord{
			JobID:     j.ID + 1,
			Submit:    j.ArrivalSec,
			Wait:      -1,
			Run:       run,
			Procs:     j.Nodes,
			Partition: -1,
		}
	}
	return out
}
