package workload

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"crossarch/internal/stats"
)

// TenantSpec describes one tenant's traffic and service level.
type TenantSpec struct {
	// Name identifies the tenant in jobs, shares, and metrics.
	Name string
	// Weight is the tenant's share of generated traffic (relative;
	// 0 = 1). A tenant can send much more traffic than its fairness
	// entitlement — that contention is the multi-tenant scenario.
	Weight float64
	// Share is the tenant's fairness entitlement, consumed by the
	// scheduler's share-aware ordering (relative; 0 is legal and means
	// a best-effort tenant that always yields to funded ones).
	Share float64
	// DeadlineFrac is the fraction of the tenant's jobs carrying a
	// deadline in [0, 1].
	DeadlineFrac float64
	// DeadlineSlack draws the relative deadline (seconds after arrival)
	// for deadline-carrying jobs. Required when DeadlineFrac > 0.
	DeadlineSlack MarkDist
}

// Spec assembles arrival process, marks, and tenants into a workload.
type Spec struct {
	// Seed drives every stochastic choice; the same Spec and Seed
	// always generate the same byte-identical trace.
	Seed uint64
	// HorizonSec is the generation window in seconds (> 0).
	HorizonSec float64
	// Arrivals is the composed arrival process.
	Arrivals ArrivalProcess
	// Sizes draws the per-job node demand, rounded up to an integer
	// (nil = constant 1). Values are clamped to [1, MaxNodes].
	Sizes MarkDist
	// MaxNodes caps node demand (0 = 64) so generated jobs always fit
	// the smallest Table I machine.
	MaxNodes int
	// RuntimeScale draws the per-job runtime multiplier applied to the
	// replayed per-machine runtimes (nil = constant 1) — the
	// heavy-tailed job-duration mark.
	RuntimeScale MarkDist
	// Tenants split the traffic (nil = one anonymous tenant with no
	// deadlines).
	Tenants []TenantSpec
	// MaxJobs truncates the generated stream (0 = unbounded).
	MaxJobs int
	// Comment is carried into the trace header.
	Comment string
}

// Validate rejects non-generatable specs.
func (s Spec) Validate() error {
	if !(s.HorizonSec > 0) || math.IsInf(s.HorizonSec, 1) {
		return fmt.Errorf("workload: horizon %v, want finite > 0", s.HorizonSec)
	}
	if s.Arrivals == nil {
		return fmt.Errorf("workload: spec has no arrival process")
	}
	if err := s.Arrivals.Validate(); err != nil {
		return err
	}
	if s.Sizes != nil {
		if err := s.Sizes.Validate(); err != nil {
			return err
		}
	}
	if s.RuntimeScale != nil {
		if err := s.RuntimeScale.Validate(); err != nil {
			return err
		}
	}
	if s.MaxNodes < 0 {
		return fmt.Errorf("workload: negative MaxNodes %d", s.MaxNodes)
	}
	if s.MaxJobs < 0 {
		return fmt.Errorf("workload: negative MaxJobs %d", s.MaxJobs)
	}
	seen := map[string]bool{}
	for i, t := range s.Tenants {
		if t.Name == "" {
			return fmt.Errorf("workload: tenant %d has no name", i)
		}
		if seen[t.Name] {
			return fmt.Errorf("workload: duplicate tenant %q", t.Name)
		}
		seen[t.Name] = true
		if math.IsNaN(t.Weight) || t.Weight < 0 || math.IsInf(t.Weight, 1) {
			return fmt.Errorf("workload: tenant %q weight %v, want finite >= 0", t.Name, t.Weight)
		}
		if math.IsNaN(t.Share) || t.Share < 0 || math.IsInf(t.Share, 1) {
			return fmt.Errorf("workload: tenant %q share %v, want finite >= 0", t.Name, t.Share)
		}
		if math.IsNaN(t.DeadlineFrac) || t.DeadlineFrac < 0 || t.DeadlineFrac > 1 {
			return fmt.Errorf("workload: tenant %q deadline fraction %v, want [0,1]", t.Name, t.DeadlineFrac)
		}
		if t.DeadlineFrac > 0 {
			if t.DeadlineSlack == nil {
				return fmt.Errorf("workload: tenant %q has deadlines but no slack distribution", t.Name)
			}
			if err := t.DeadlineSlack.Validate(); err != nil {
				return err
			}
		}
	}
	return nil
}

// Generate produces the workload trace for the spec. Draw order is
// part of the trace identity: the arrival process consumes one Split
// stream, then each job consumes its marks from a second stream in
// arrival order (tenant choice, size, runtime scale, deadline draw),
// so adding a tenant or mark never perturbs the arrival times.
func Generate(spec Spec) (*Trace, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	maxNodes := spec.MaxNodes
	if maxNodes == 0 {
		maxNodes = 64
	}

	rng := stats.NewRNG(spec.Seed)
	arrivalRNG := rng.Split()
	markRNG := rng.Split()

	arrivals := spec.Arrivals.Generate(arrivalRNG, spec.HorizonSec)
	if spec.MaxJobs > 0 && len(arrivals) > spec.MaxJobs {
		arrivals = arrivals[:spec.MaxJobs]
	}

	var weights []float64
	if len(spec.Tenants) > 0 {
		weights = make([]float64, len(spec.Tenants))
		total := 0.0
		for i, t := range spec.Tenants {
			w := t.Weight
			if w == 0 {
				w = 1
			}
			weights[i] = w
			total += w
		}
		if total == 0 {
			return nil, fmt.Errorf("workload: tenant weights sum to zero")
		}
	}

	jobs := make([]TraceJob, len(arrivals))
	for i, at := range arrivals {
		j := TraceJob{ID: i, ArrivalSec: at, Nodes: 1, RuntimeScale: 1}
		if len(spec.Tenants) > 0 {
			t := spec.Tenants[markRNG.Choice(weights)]
			j.Tenant = t.Name
			if t.DeadlineFrac > 0 && markRNG.Bernoulli(t.DeadlineFrac) {
				j.DeadlineSec = t.DeadlineSlack.Sample(markRNG)
			}
		}
		if spec.Sizes != nil {
			n := int(math.Ceil(spec.Sizes.Sample(markRNG)))
			if n < 1 {
				n = 1
			}
			if n > maxNodes {
				n = maxNodes
			}
			j.Nodes = n
		}
		if spec.RuntimeScale != nil {
			j.RuntimeScale = spec.RuntimeScale.Sample(markRNG)
		}
		jobs[i] = j
	}
	return &Trace{
		SchemaVersion: TraceSchemaVersion,
		Seed:          spec.Seed,
		Comment:       spec.Comment,
		Jobs:          jobs,
	}, nil
}

// Stats summarizes a trace for CLI inspection and sanity tests.
type Stats struct {
	Jobs             int
	HorizonSec       float64
	MeanInterarrival float64
	MaxNodes         int
	MeanNodes        float64
	DeadlineJobs     int
	TenantJobs       map[string]int
	MeanRuntimeScale float64
	MaxBurst10s      int // densest 10-second window
}

// Summarize computes trace statistics.
func Summarize(t *Trace) Stats {
	s := Stats{TenantJobs: map[string]int{}}
	if len(t.Jobs) == 0 {
		return s
	}
	s.Jobs = len(t.Jobs)
	s.HorizonSec = t.Jobs[len(t.Jobs)-1].ArrivalSec
	sumNodes, sumScale := 0.0, 0.0
	winStart := 0
	for i, j := range t.Jobs {
		if j.Nodes > s.MaxNodes {
			s.MaxNodes = j.Nodes
		}
		sumNodes += float64(j.Nodes)
		scale := j.RuntimeScale
		if scale == 0 {
			scale = 1
		}
		sumScale += scale
		if j.DeadlineSec > 0 {
			s.DeadlineJobs++
		}
		s.TenantJobs[j.Tenant]++
		for t.Jobs[winStart].ArrivalSec < j.ArrivalSec-10 {
			winStart++
		}
		if w := i - winStart + 1; w > s.MaxBurst10s {
			s.MaxBurst10s = w
		}
	}
	s.MeanNodes = sumNodes / float64(s.Jobs)
	s.MeanRuntimeScale = sumScale / float64(s.Jobs)
	if s.Jobs > 1 {
		s.MeanInterarrival = (t.Jobs[len(t.Jobs)-1].ArrivalSec - t.Jobs[0].ArrivalSec) / float64(s.Jobs-1)
	}
	return s
}

// String renders the stats as a small table.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "jobs=%d horizon=%.1fs mean-gap=%.3fs nodes(mean=%.1f max=%d) deadline-jobs=%d burst10s=%d\n",
		s.Jobs, s.HorizonSec, s.MeanInterarrival, s.MeanNodes, s.MaxNodes, s.DeadlineJobs, s.MaxBurst10s)
	names := make([]string, 0, len(s.TenantJobs))
	for name := range s.TenantJobs {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		label := name
		if label == "" {
			label = "(none)"
		}
		fmt.Fprintf(&b, "  tenant %-10s %6d jobs\n", label, s.TenantJobs[name])
	}
	return b.String()
}
