package experiments

import (
	"fmt"
	"strings"

	"crossarch/internal/core"
	"crossarch/internal/dataset"
	"crossarch/internal/ml"
)

// FeatureSelectionResult records the paper's Section VI-B model/feature
// selection loop: models are first trained on all features, the top-k
// features by tree importance are selected, and every model is
// retrained on the reduced set.
type FeatureSelectionResult struct {
	// Selected is the chosen feature subset, importance-ordered.
	Selected []string
	// Full and Reduced are per-model evaluations before and after
	// feature selection.
	Full    map[string]ml.Evaluation
	Reduced map[string]ml.Evaluation
}

// FeatureSelection reproduces Section VI-B: train on all 21 features,
// select the top-k by the tree ensembles' gain importances (averaged
// between XGBoost and the decision forest, as the paper uses both),
// and retrain every model on the reduced feature set. The paper notes
// the payoff is not training time but profiling cost: fewer counters
// to collect in future deployments.
func FeatureSelection(ds *dataset.Dataset, cfg Config, k int) (*FeatureSelectionResult, error) {
	cfg.setDefaults()
	all := dataset.FeatureColumns()
	if k <= 0 || k > len(all) {
		return nil, fmt.Errorf("experiments: k=%d outside [1,%d]", k, len(all))
	}
	trX, trY, teX, teY, err := splitFrame(ds, cfg.TestFraction, cfg.SplitSeed)
	if err != nil {
		return nil, err
	}

	res := &FeatureSelectionResult{
		Full:    map[string]ml.Evaluation{},
		Reduced: map[string]ml.Evaluation{},
	}

	// Pass 1: full features; collect importances from both ensembles.
	importance := make([]float64, len(all))
	factories := core.StandardFactories(cfg.ModelSeed)
	for _, name := range core.ModelOrder {
		m := factories[name]()
		if err := m.Fit(trX, trY); err != nil {
			return nil, fmt.Errorf("experiments: feature selection pass 1 %s: %w", name, err)
		}
		res.Full[name] = ml.Evaluate(m, teX, teY)
		if fi, ok := m.(ml.FeatureImporter); ok {
			for i, v := range fi.FeatureImportances() {
				importance[i] += v
			}
		}
	}

	// Select top-k by combined importance (stable under ties by index).
	type fi struct {
		idx int
		v   float64
	}
	ranked := make([]fi, len(all))
	for i, v := range importance {
		ranked[i] = fi{i, v}
	}
	for a := 0; a < len(ranked); a++ {
		best := a
		for b := a + 1; b < len(ranked); b++ {
			if ranked[b].v > ranked[best].v {
				best = b
			}
		}
		ranked[a], ranked[best] = ranked[best], ranked[a]
	}
	keep := make([]int, k)
	for i := 0; i < k; i++ {
		keep[i] = ranked[i].idx
		res.Selected = append(res.Selected, all[ranked[i].idx])
	}

	project := func(rows [][]float64) [][]float64 {
		out := make([][]float64, len(rows))
		for i, row := range rows {
			p := make([]float64, k)
			for j, c := range keep {
				p[j] = row[c]
			}
			out[i] = p
		}
		return out
	}
	rtrX, rteX := project(trX), project(teX)

	// Pass 2: retrain everything on the reduced feature set.
	for _, name := range core.ModelOrder {
		m := factories[name]()
		if err := m.Fit(rtrX, trY); err != nil {
			return nil, fmt.Errorf("experiments: feature selection pass 2 %s: %w", name, err)
		}
		res.Reduced[name] = ml.Evaluate(m, rteX, teY)
	}
	return res, nil
}

// FormatFeatureSelection renders the before/after table.
func FormatFeatureSelection(r *FeatureSelectionResult) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Section VI-B — feature selection (top %d features)\n", len(r.Selected))
	fmt.Fprintf(&b, "selected: %s\n", strings.Join(r.Selected, ", "))
	fmt.Fprintf(&b, "%-16s %12s %12s %12s %12s\n", "model", "MAE(all)", "MAE(sel)", "SOS(all)", "SOS(sel)")
	for _, name := range core.ModelOrder {
		f, s := r.Full[name], r.Reduced[name]
		fmt.Fprintf(&b, "%-16s %12.4f %12.4f %12.4f %12.4f\n", name, f.MAE, s.MAE, f.SOS, s.SOS)
	}
	return b.String()
}
