package experiments

import (
	"fmt"
	"strings"

	"crossarch/internal/apps"
	"crossarch/internal/arch"
	"crossarch/internal/dataset"
	"crossarch/internal/profiler"
)

// TableI renders the Table I system overview from the machine models.
func TableI() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table I — systems and their architectures\n")
	fmt.Fprintf(&b, "%-8s %-24s %12s %10s %-14s %10s %8s\n",
		"System", "CPU Type", "cores/node", "GHz", "GPU Type", "GPUs/node", "nodes")
	for _, m := range arch.All() {
		gpuType, gpuCount := "—", "—"
		if m.HasGPU() {
			gpuType = m.GPU.Model
			gpuCount = fmt.Sprintf("%d", m.GPU.PerNode)
		}
		fmt.Fprintf(&b, "%-8s %-24s %12d %10.1f %-14s %10s %8d\n",
			m.Name, m.CPUType, m.CoresPerNode, m.ClockGHz, gpuType, gpuCount, m.Nodes)
	}
	return b.String()
}

// TableII renders the Table II application catalog.
func TableII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table II — applications (%d total)\n", len(apps.All()))
	fmt.Fprintf(&b, "%-16s %-62s %-4s %s\n", "Application", "Description", "GPU", "Inputs")
	for _, a := range apps.All() {
		gpu := ""
		if a.GPUSupport {
			gpu = "yes"
		}
		fmt.Fprintf(&b, "%-16s %-62s %-4s %d\n", a.Name, a.Description, gpu, len(a.Inputs))
	}
	return b.String()
}

// TableIII renders the Table III feature/counter mapping: the derived
// features on the left, the per-context source counters on the right.
func TableIII() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table III — features and their per-architecture source counters\n")
	contexts := []struct {
		label  string
		system string
		gpu    bool
	}{
		{"Quartz", "Quartz", false},
		{"Ruby", "Ruby", false},
		{"Lassen/GPU", "Lassen", true},
		{"Corona/GPU", "Corona", true},
	}
	fmt.Fprintf(&b, "%-16s", "quantity")
	for _, c := range contexts {
		fmt.Fprintf(&b, " %-26s", c.label)
	}
	b.WriteByte('\n')
	for _, q := range profiler.Quantities() {
		fmt.Fprintf(&b, "%-16s", q)
		for _, c := range contexts {
			schema, err := profiler.SchemaFor(c.system, c.gpu)
			if err != nil {
				fmt.Fprintf(&b, " %-26s", "?")
				continue
			}
			name, ok := schema.Counters[q]
			if !ok {
				if schema.L1ViaHitRate && (q == profiler.L1LoadMiss || q == profiler.L1StoreMiss) {
					name = "requests x hit_rate"
				} else {
					name = "—"
				}
			}
			fmt.Fprintf(&b, " %-26s", name)
		}
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "\nfinal feature columns (%d): %s\n",
		len(dataset.FeatureColumns()), strings.Join(dataset.FeatureColumns(), ", "))
	return b.String()
}
