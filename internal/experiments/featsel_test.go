package experiments

import (
	"strings"
	"testing"
)

func TestFeatureSelection(t *testing.T) {
	ds, cfg := sharedDataset(t)
	res, err := FeatureSelection(ds, cfg, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Selected) != 10 {
		t.Fatalf("selected %d features", len(res.Selected))
	}
	// Both passes must evaluate all four models.
	if len(res.Full) != 4 || len(res.Reduced) != 4 {
		t.Fatalf("passes have %d/%d models", len(res.Full), len(res.Reduced))
	}
	// Selection trades some accuracy for profiling cost (dropping part
	// of the architecture one-hot hurts); the reduced model must still
	// beat the full linear and mean baselines decisively.
	reduced := res.Reduced["xgboost"]
	if reduced.MAE >= res.Full["linear"].MAE {
		t.Errorf("reduced xgboost MAE %v not better than full linear %v", reduced.MAE, res.Full["linear"].MAE)
	}
	if reduced.MAE >= res.Full["mean"].MAE/2 {
		t.Errorf("reduced xgboost MAE %v not far ahead of mean %v", reduced.MAE, res.Full["mean"].MAE)
	}
	// Selected features must be distinct and real columns.
	seen := map[string]bool{}
	for _, f := range res.Selected {
		if seen[f] {
			t.Fatalf("duplicate selected feature %s", f)
		}
		seen[f] = true
		if !ds.Frame.Has(f) {
			t.Fatalf("selected feature %s not in dataset", f)
		}
	}
	out := FormatFeatureSelection(res)
	if !strings.Contains(out, "MAE(sel)") || !strings.Contains(out, "xgboost") {
		t.Error("FormatFeatureSelection malformed")
	}
}

func TestFeatureSelectionErrors(t *testing.T) {
	ds, cfg := sharedDataset(t)
	if _, err := FeatureSelection(ds, cfg, 0); err == nil {
		t.Error("k=0 should error")
	}
	if _, err := FeatureSelection(ds, cfg, 99); err == nil {
		t.Error("k too large should error")
	}
}
