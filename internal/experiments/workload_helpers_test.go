package experiments

import (
	"math"
	"strings"
	"testing"

	"crossarch/internal/sched"
)

// The dataset-free half of the workload sweep: config defaults,
// profile resolution, parameter assembly, verdict selection, and the
// rendered grid. The dataset-backed half lives in workload_test.go.

func TestWorkloadConfigDefaults(t *testing.T) {
	var cfg WorkloadConfig
	cfg.setDefaults()
	if cfg.HorizonSec != 3600 || cfg.Rate != 4 {
		t.Fatalf("defaults = horizon %v rate %v, want 3600 / 4", cfg.HorizonSec, cfg.Rate)
	}
	cfg = WorkloadConfig{HorizonSec: 60, Rate: 0.5}
	cfg.setDefaults()
	if cfg.HorizonSec != 60 || cfg.Rate != 0.5 {
		t.Fatalf("explicit values overwritten: %+v", cfg)
	}
}

func TestResolveProfiles(t *testing.T) {
	all, err := resolveProfiles(WorkloadConfig{})
	if err != nil || len(all) != 3 {
		t.Fatalf("resolveProfiles(nil) = %d profiles, err %v; want 3, nil", len(all), err)
	}
	one, err := resolveProfiles(WorkloadConfig{Profiles: []string{"diurnal"}})
	if err != nil || len(one) != 1 || one[0].Name != "diurnal" {
		t.Fatalf("resolveProfiles(diurnal) = %+v, %v", one, err)
	}
	if _, err := resolveProfiles(WorkloadConfig{Profiles: []string{"nope"}}); err == nil {
		t.Fatal("unknown profile accepted")
	}
	if _, err := resolveProfiles(WorkloadConfig{Profiles: []string{}}); err == nil {
		t.Fatal("empty selection accepted")
	}
}

func TestBaseAndSLOParams(t *testing.T) {
	p, err := baseParams(WorkloadConfig{RetryCap: 2})
	if err != nil || p.Faults != nil || p.RetryCap != 2 {
		t.Fatalf("baseParams(no faults) = %+v, %v", p, err)
	}
	p, err = baseParams(WorkloadConfig{NodeFaultRate: 0.1, FaultSeed: 3})
	if err != nil || p.Faults == nil {
		t.Fatalf("baseParams(faults) = %+v, %v", p, err)
	}
	if _, err := baseParams(WorkloadConfig{NodeFaultRate: 2}); err == nil {
		t.Fatal("fault rate > 1 accepted")
	}
	shares := map[string]float64{"prod": 3, "batch": 1}
	slo := sloParams(p, shares)
	if slo.R1 == nil || slo.R1.Name() != (sched.EDF{}).Name() ||
		!slo.Preempt || !slo.PreemptRequeue || slo.Shares["prod"] != 3 {
		t.Fatalf("sloParams = %+v", slo)
	}
	if slo.Faults != p.Faults {
		t.Fatal("sloParams dropped the base fault injector")
	}
}

func TestMissPct(t *testing.T) {
	if got := missPct(sched.Result{}); got != 0 {
		t.Fatalf("missPct(no deadlines) = %v, want 0", got)
	}
	p := WorkloadPoint{Result: sched.Result{DeadlineJobs: 8, MissedDeadlines: 2}}
	if got := p.MissPct(); got != 25 {
		t.Fatalf("MissPct = %v, want 25", got)
	}
}

// syntheticPoints builds a two-profile grid where slo+model wins on
// bursty (5% vs best FCFS 10%) at 0.9x the fcfs+model makespan.
func syntheticPoints() []WorkloadPoint {
	mk := func(profile, schedName string, missed int, makespan float64) WorkloadPoint {
		return WorkloadPoint{
			Profile: profile, Scheduler: schedName, Jobs: 100,
			Result: sched.Result{
				DeadlineJobs: 20, MissedDeadlines: missed, MetDeadlines: 20 - missed,
				MakespanSec: makespan,
			},
		}
	}
	return []WorkloadPoint{
		mk("steady", "fcfs+rr", 1, 900),
		mk("steady", "fcfs+model", 1, 800),
		mk("steady", SLOSchedulerName, 1, 800),
		mk("bursty", "fcfs+rr", 8, 1200),
		mk("bursty", "fcfs+user-rr", 9, 1300),
		mk("bursty", "fcfs+model", 2, 1000),
		mk("bursty", SLOSchedulerName, 1, 900),
	}
}

func TestWorkloadVerdict(t *testing.T) {
	v := VerdictFor(syntheticPoints())
	if v.Profile != "bursty" {
		t.Fatalf("verdict profile = %q, want bursty (preferred over first profile)", v.Profile)
	}
	if v.SLOMissPct != 5 || v.BestFCFSMissPct != 10 {
		t.Fatalf("miss rates = %v vs %v, want 5 vs 10", v.SLOMissPct, v.BestFCFSMissPct)
	}
	if v.SLOMakespanSec != 900 || v.FCFSModelMakespanSec != 1000 {
		t.Fatalf("makespans = %v vs %v, want 900 vs 1000", v.SLOMakespanSec, v.FCFSModelMakespanSec)
	}
	if !v.FewerMisses {
		t.Fatal("FewerMisses = false for a winning SLO configuration")
	}
	if got := VerdictFor(nil); got != (WorkloadVerdict{}) {
		t.Fatalf("VerdictFor(nil) = %+v, want zero verdict", got)
	}
	steady := VerdictFor(syntheticPoints()[:3])
	if steady.Profile != "steady" || math.IsInf(steady.BestFCFSMissPct, 1) {
		t.Fatalf("no-bursty verdict = %+v, want steady profile with finite FCFS rate", steady)
	}
}

func TestFormatWorkloadSweep(t *testing.T) {
	pts := syntheticPoints()
	sw := &WorkloadSweep{Points: pts, Verdict: VerdictFor(pts)}
	out := FormatWorkloadSweep(sw)
	for _, want := range []string{
		"profile", "slo+model", "bursty",
		"verdict (bursty): slo+model misses 5.0% vs best FCFS 10.0%; makespan 0.90x fcfs+model",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("FormatWorkloadSweep missing %q:\n%s", want, out)
		}
	}
	empty := FormatWorkloadSweep(&WorkloadSweep{})
	if !strings.Contains(empty, "makespan 0.00x") {
		t.Errorf("empty sweep should render a zero makespan ratio:\n%s", empty)
	}
}
