package experiments

import (
	"fmt"
	"sort"
	"strings"

	"crossarch/internal/core"
	"crossarch/internal/dataset"
)

// Fig6Row is one bar of Figure 6: a feature and its gain-based
// importance in the trained XGBoost model.
type Fig6Row struct {
	Feature    string
	Importance float64
}

// Fig6 reproduces the feature-importance analysis: train the headline
// XGBoost model on the training split and report the per-feature
// average split gain, normalized to sum to one, sorted descending.
func Fig6(ds *dataset.Dataset, cfg Config) ([]Fig6Row, error) {
	cfg.setDefaults()
	trX, trY, _, _, err := splitFrame(ds, cfg.TestFraction, cfg.SplitSeed)
	if err != nil {
		return nil, err
	}
	model := core.DefaultXGBoost(cfg.ModelSeed)
	if err := model.Fit(trX, trY); err != nil {
		return nil, fmt.Errorf("experiments: fig6 training: %w", err)
	}
	imp := model.FeatureImportances()
	names := dataset.FeatureColumns()
	rows := make([]Fig6Row, len(names))
	for i, n := range names {
		rows[i] = Fig6Row{Feature: n, Importance: imp[i]}
	}
	sort.SliceStable(rows, func(a, b int) bool { return rows[a].Importance > rows[b].Importance })
	return rows, nil
}

// FormatFig6 renders the rows with a proportional bar.
func FormatFig6(rows []Fig6Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 6 — XGBoost feature importances (average split gain)\n")
	maxImp := 0.0
	for _, r := range rows {
		if r.Importance > maxImp {
			maxImp = r.Importance
		}
	}
	for _, r := range rows {
		barLen := 0
		if maxImp > 0 {
			barLen = int(40 * r.Importance / maxImp)
		}
		fmt.Fprintf(&b, "%-18s %7.4f %s\n", r.Feature, r.Importance, strings.Repeat("#", barLen))
	}
	return b.String()
}

// ImportanceOf returns the importance of the named feature, or 0.
func ImportanceOf(rows []Fig6Row, feature string) float64 {
	for _, r := range rows {
		if r.Feature == feature {
			return r.Importance
		}
	}
	return 0
}

// TopFeatures returns the n highest-importance feature names.
func TopFeatures(rows []Fig6Row, n int) []string {
	if n > len(rows) {
		n = len(rows)
	}
	out := make([]string, n)
	for i := 0; i < n; i++ {
		out[i] = rows[i].Feature
	}
	return out
}
