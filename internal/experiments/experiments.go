// Package experiments regenerates every table and figure of the
// paper's evaluation (Section VIII): the Figure 2 model comparison, the
// Figure 3 per-architecture counter ablation, the Figure 4
// leave-one-scale-out and Figure 5 leave-one-application-out studies,
// the Figure 6 feature importances, and the Figure 7/8 multi-resource
// scheduling simulation. Each experiment is a pure function of a
// dataset and a Config, so the command-line tools, the benchmark
// harness, and the tests all share one implementation.
package experiments

import (
	"fmt"

	"crossarch/internal/dataset"
	"crossarch/internal/ml"
	"crossarch/internal/stats"
)

// Config carries the seeds and sizes shared by all experiments.
type Config struct {
	// DatasetSeed seeds MP-HPC generation.
	DatasetSeed uint64
	// SplitSeed seeds train/test shuffling.
	SplitSeed uint64
	// ModelSeed seeds the stochastic learners.
	ModelSeed uint64
	// Trials is passed to dataset.Build (0 = the paper-scale 11).
	Trials int
	// TestFraction for holdout evaluation (0 = the paper's 0.10).
	TestFraction float64
	// CVFolds for cross-validation (0 = the paper's 5).
	CVFolds int
}

// Defaults returns the canonical experiment configuration.
func Defaults() Config {
	return Config{DatasetSeed: 1, SplitSeed: 2, ModelSeed: 3}
}

func (c *Config) setDefaults() {
	if c.TestFraction == 0 {
		c.TestFraction = 0.10
	}
	if c.CVFolds == 0 {
		c.CVFolds = 5
	}
}

// BuildDataset generates the MP-HPC dataset for the configuration.
func BuildDataset(cfg Config) (*dataset.Dataset, error) {
	return dataset.Build(dataset.Params{Trials: cfg.Trials, Seed: cfg.DatasetSeed})
}

// evalOn trains a fresh model from the factory on (trainX, trainY) and
// evaluates on (testX, testY).
func evalOn(f ml.Factory, trainX, trainY, testX, testY [][]float64) (ml.Evaluation, error) {
	m := f()
	if err := m.Fit(trainX, trainY); err != nil {
		return ml.Evaluation{}, fmt.Errorf("experiments: fitting %s: %w", m.Name(), err)
	}
	return ml.Evaluate(m, testX, testY), nil
}

// splitFrame shuffles and splits a dataset's feature/target matrices.
func splitFrame(ds *dataset.Dataset, testFrac float64, seed uint64) (trX, trY, teX, teY [][]float64, err error) {
	return ml.TrainTestSplit(ds.Features(), ds.Targets(), testFrac, stats.NewRNG(seed))
}
