package experiments

import (
	"strings"
	"testing"

	"crossarch/internal/arch"
	"crossarch/internal/core"
	"crossarch/internal/dataset"
	"crossarch/internal/sched"
)

// testConfig is a reduced-scale configuration: the full Table II app
// catalog (Figure 5 needs it) at 2 trials instead of 11.
func testConfig() Config {
	cfg := Defaults()
	cfg.Trials = 2
	return cfg
}

var (
	sharedDS   *dataset.Dataset
	sharedCfg  Config
	sharedPred *core.Predictor
)

// sharedDataset builds the reduced dataset once for the whole package
// test run; individual experiments are read-only over it.
func sharedDataset(t *testing.T) (*dataset.Dataset, Config) {
	t.Helper()
	if sharedDS == nil {
		sharedCfg = testConfig()
		ds, err := BuildDataset(sharedCfg)
		if err != nil {
			t.Fatal(err)
		}
		sharedDS = ds
	}
	return sharedDS, sharedCfg
}

func TestFig2Shape(t *testing.T) {
	ds, cfg := sharedDataset(t)
	rows, err := Fig2(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("fig2 rows = %d", len(rows))
	}
	byName := map[string]Fig2Row{}
	for _, r := range rows {
		byName[r.Model] = r
	}
	xgb, mean, lin, forest := byName["xgboost"], byName["mean"], byName["linear"], byName["decision forest"]
	// The paper's headline: XGBoost is a large improvement over the
	// mean baseline (81.6% there).
	if xgb.MAE >= mean.MAE/3 {
		t.Errorf("xgboost MAE %v not a large improvement over mean %v", xgb.MAE, mean.MAE)
	}
	if xgb.MAE >= lin.MAE || forest.MAE >= lin.MAE {
		t.Errorf("tree models should beat linear: xgb=%v forest=%v linear=%v",
			xgb.MAE, forest.MAE, lin.MAE)
	}
	if lin.MAE >= mean.MAE {
		t.Errorf("linear MAE %v >= mean %v", lin.MAE, mean.MAE)
	}
	if xgb.SOS <= lin.SOS || xgb.SOS <= mean.SOS {
		t.Errorf("xgboost SOS %v should lead linear %v and mean %v", xgb.SOS, lin.SOS, mean.SOS)
	}
	// CV numbers must be populated and broadly consistent with test.
	if xgb.CVMAE <= 0 || xgb.CVMAE > 3*xgb.MAE+0.1 {
		t.Errorf("xgboost CV MAE %v inconsistent with test MAE %v", xgb.CVMAE, xgb.MAE)
	}
	out := FormatFig2(rows)
	if !strings.Contains(out, "xgboost") || !strings.Contains(out, "MAE") {
		t.Error("FormatFig2 output malformed")
	}
}

func TestFig3Shape(t *testing.T) {
	ds, cfg := sharedDataset(t)
	cells, err := Fig3(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cells) != 16 {
		t.Fatalf("fig3 cells = %d, want 4 models x 4 archs", len(cells))
	}
	// CPU-sourced counters must beat GPU-sourced for xgboost (the
	// paper's key Fig. 3 observation).
	get := func(model, sys string) Fig3Cell {
		for _, c := range cells {
			if c.Model == model && c.SourceArch == sys {
				return c
			}
		}
		t.Fatalf("missing cell %s/%s", model, sys)
		return Fig3Cell{}
	}
	cpu := (get("xgboost", "Quartz").MAE + get("xgboost", "Ruby").MAE) / 2
	gpu := (get("xgboost", "Lassen").MAE + get("xgboost", "Corona").MAE) / 2
	if cpu >= gpu {
		t.Errorf("CPU-source xgboost MAE %v should beat GPU-source %v", cpu, gpu)
	}
	// Corona (AMD, sparse counters + noisy rocprofiler) should be the
	// worst source for the learned models.
	if get("xgboost", "Corona").MAE <= get("xgboost", "Quartz").MAE {
		t.Error("Corona-sourced counters should predict worse than Quartz-sourced")
	}
	out := FormatFig3(cells)
	if !strings.Contains(out, "Quartz") || !strings.Contains(out, "SOS") {
		t.Error("FormatFig3 output malformed")
	}
}

func TestFig4Shape(t *testing.T) {
	ds, cfg := sharedDataset(t)
	rows, err := Fig4(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("fig4 rows = %d", len(rows))
	}
	scales := map[string]bool{}
	for _, r := range rows {
		scales[r.HeldOutScale] = true
		// Cross-scale generalization is harder than random-split (tree
		// ensembles cannot extrapolate to unseen cores/nodes values —
		// see EXPERIMENTS.md) but must stay far better than the mean
		// baseline (~0.9) and the linear model (~0.45).
		if r.MAE > 0.45 {
			t.Errorf("held-out %s MAE = %v, model failed to generalize", r.HeldOutScale, r.MAE)
		}
		if r.TestRows == 0 {
			t.Errorf("held-out %s has no test rows", r.HeldOutScale)
		}
	}
	for _, s := range []string{"1-core", "1-node", "2-node"} {
		if !scales[s] {
			t.Errorf("missing scale %s", s)
		}
	}
	if out := FormatFig4(rows); !strings.Contains(out, "1-node") {
		t.Error("FormatFig4 output malformed")
	}
}

func TestFig5Shape(t *testing.T) {
	ds, cfg := sharedDataset(t)
	rows, err := Fig5(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 20 {
		t.Fatalf("fig5 rows = %d, want 20 applications", len(rows))
	}
	mlSum, mlN, otherSum, otherN := 0.0, 0, 0.0, 0
	for _, r := range rows {
		if r.MLStack {
			mlSum += r.MAE
			mlN++
		} else {
			otherSum += r.MAE
			otherN++
		}
	}
	if mlN != 4 {
		t.Fatalf("ML-stack rows = %d, want 4", mlN)
	}
	// The paper: ML/Python applications predict notably worse.
	if mlSum/float64(mlN) <= otherSum/float64(otherN) {
		t.Errorf("ML apps mean MAE %v should exceed others %v",
			mlSum/float64(mlN), otherSum/float64(otherN))
	}
	if out := FormatFig5(rows); !strings.Contains(out, "ML/Python") {
		t.Error("FormatFig5 output malformed")
	}
}

func TestFig6Shape(t *testing.T) {
	ds, cfg := sharedDataset(t)
	rows, err := Fig6(ds, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 21 {
		t.Fatalf("fig6 rows = %d, want 21 features", len(rows))
	}
	sum := 0.0
	for i, r := range rows {
		if r.Importance < 0 {
			t.Fatalf("negative importance for %s", r.Feature)
		}
		sum += r.Importance
		if i > 0 && rows[i-1].Importance < r.Importance {
			t.Fatal("fig6 rows not sorted descending")
		}
	}
	if sum < 0.999 || sum > 1.001 {
		t.Errorf("importances sum to %v", sum)
	}
	// The paper's Fig. 6 tops out with branch intensity; in our
	// synthetic substrate the clean uses_gpu regime marker absorbs that
	// gain (documented deviation in EXPERIMENTS.md). Assert the
	// defensible invariants: the top feature is a CPU/GPU regime
	// discriminator and some instruction-mix intensity features carry
	// non-trivial importance.
	if top := rows[0].Feature; top != dataset.ColUsesGPU && top != dataset.ColBranchIntensity &&
		!strings.HasPrefix(top, "arch=") {
		t.Errorf("top feature %s is not a regime discriminator", top)
	}
	intensitySum := 0.0
	for _, col := range []string{dataset.ColBranchIntensity, dataset.ColFP32Intensity,
		dataset.ColFP64Intensity, dataset.ColIntIntensity} {
		intensitySum += ImportanceOf(rows, col)
	}
	if intensitySum <= 0 {
		t.Error("instruction-mix intensities carry no importance at all")
	}
	if out := FormatFig6(rows); !strings.Contains(out, "branch_intensity") {
		t.Error("FormatFig6 output malformed")
	}
}

// sharedPredictor trains the default predictor once for the package.
func sharedPredictor(t *testing.T) *core.Predictor {
	t.Helper()
	ds, cfg := sharedDataset(t)
	if sharedPred == nil {
		pred, _, err := core.TrainPredictor(ds, core.DefaultXGBoost(cfg.ModelSeed), cfg.SplitSeed)
		if err != nil {
			t.Fatal(err)
		}
		sharedPred = pred
	}
	return sharedPred
}

func TestSchedulingExperiment(t *testing.T) {
	ds, _ := sharedDataset(t)
	pred := sharedPredictor(t)
	scfg := SchedConfig{NumJobs: 4000, WorkloadSeed: 5, IncludeOracle: true}
	results, err := RunScheduling(ds, pred, scfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(results) != 5 {
		t.Fatalf("results = %d, want 5 with oracle", len(results))
	}
	byName := map[string]sched.Result{}
	for _, r := range results {
		byName[r.Strategy] = r
	}
	model := byName["Model-based"]
	oracle := byName["Oracle"]
	rr := byName["Round-Robin"]
	random := byName["Random"]
	user := byName["User+RR"]
	// Fig. 7 shape: model-based beats round-robin and random; user+RR
	// sits between.
	if model.MakespanSec >= rr.MakespanSec || model.MakespanSec >= random.MakespanSec {
		t.Errorf("model-based makespan %v should beat RR %v and Random %v",
			model.MakespanSec, rr.MakespanSec, random.MakespanSec)
	}
	if user.MakespanSec >= rr.MakespanSec {
		t.Errorf("user+RR makespan %v should beat RR %v", user.MakespanSec, rr.MakespanSec)
	}
	// The oracle bounds the model's total runtime from below.
	if oracle.TotalRuntimeSec > model.TotalRuntimeSec*1.001 {
		t.Errorf("oracle total runtime %v exceeds model-based %v",
			oracle.TotalRuntimeSec, model.TotalRuntimeSec)
	}
	// Fig. 8 shape: model-based has the lowest average bounded slowdown
	// among the paper's four strategies.
	for _, other := range []sched.Result{rr, random, user} {
		if model.AvgBoundedSlowdown > other.AvgBoundedSlowdown*1.001 {
			t.Errorf("model-based slowdown %v exceeds %s %v",
				model.AvgBoundedSlowdown, other.Strategy, other.AvgBoundedSlowdown)
		}
	}
	if out := FormatSched(results); !strings.Contains(out, "makespan") {
		t.Error("FormatSched output malformed")
	}
}

func TestSampleWorkloadProperties(t *testing.T) {
	ds, _ := sharedDataset(t)
	pred := sharedPredictor(t)
	jobs, err := SampleWorkload(ds, pred, SchedConfig{NumJobs: 1000, WorkloadSeed: 9, ArrivalRate: 10})
	if err != nil {
		t.Fatal(err)
	}
	if len(jobs) != 1000 {
		t.Fatalf("jobs = %d", len(jobs))
	}
	prevArrival := 0.0
	for _, j := range jobs {
		if err := j.Validate(arch.NumSystems); err != nil {
			t.Fatal(err)
		}
		if j.Arrival < prevArrival {
			t.Fatal("arrivals not monotone under Poisson process")
		}
		prevArrival = j.Arrival
		if len(j.Predicted) != arch.NumSystems {
			t.Fatalf("job %d prediction has %d entries", j.ID, len(j.Predicted))
		}
		if j.Nodes != 1 && j.Nodes != 2 {
			t.Fatalf("job %d nodes = %d", j.ID, j.Nodes)
		}
	}
}

func TestTables(t *testing.T) {
	t1 := TableI()
	for _, want := range []string{"Quartz", "Ruby", "Lassen", "Corona", "NVIDIA V100", "AMD MI50"} {
		if !strings.Contains(t1, want) {
			t.Errorf("Table I missing %q", want)
		}
	}
	t2 := TableII()
	if !strings.Contains(t2, "XSBench") || !strings.Contains(t2, "20 total") {
		t.Error("Table II malformed")
	}
	t3 := TableIII()
	for _, want := range []string{"PAPI_BR_INS", "cf_executed", "TCC_MISS_RD", "requests x hit_rate", "—"} {
		if !strings.Contains(t3, want) {
			t.Errorf("Table III missing %q", want)
		}
	}
}
