package experiments

import (
	"fmt"
	"strings"

	"crossarch/internal/apps"
	"crossarch/internal/arch"
	"crossarch/internal/core"
	"crossarch/internal/dataset"
	"crossarch/internal/fault"
	"crossarch/internal/ml"
	"crossarch/internal/rpv"
	"crossarch/internal/sched"
	"crossarch/internal/stats"
)

// SchedConfig configures the Section VII scheduling simulation.
type SchedConfig struct {
	// NumJobs is the workload size (0 = the paper's 50,000).
	NumJobs int
	// WorkloadSeed drives resampling and arrivals.
	WorkloadSeed uint64
	// ArrivalRate is mean job arrivals per second (Poisson); 0 submits
	// the whole workload at time zero (a pure throughput experiment).
	ArrivalRate float64
	// IncludeOracle adds the perfect-information strategy for ablation.
	IncludeOracle bool
	// NodeFaultRate injects node failures at this per-attempt rate
	// during the simulation (0 = none); FaultSeed seeds the injector
	// and RetryCap bounds per-job re-executions (0 = sched default).
	NodeFaultRate float64
	FaultSeed     uint64
	RetryCap      int
}

func (c *SchedConfig) setDefaults() {
	if c.NumJobs == 0 {
		c.NumJobs = 50000
	}
}

// SampleWorkload resamples dataset rows (with replacement) into jobs,
// as the paper builds its 50,000-job workload. Each job carries the
// row's observed per-machine runtimes for replay, its node demand, its
// application's GPU capability (for User+RR), and the predictor's RPV
// (for Model-based). Predictions are computed once per distinct
// dataset row and reused across resamples.
func SampleWorkload(ds *dataset.Dataset, pred *core.Predictor, cfg SchedConfig) ([]*sched.Job, error) {
	return SampleWorkloadModel(ds, pred.Model, cfg)
}

// SampleWorkloadModel is SampleWorkload against a bare regressor, so
// callers can substitute a wrapped model — the fault experiments pass
// a DegradingPredictor here and the workload identity (row choices,
// arrivals) stays bit-for-bit the same as with the raw model.
func SampleWorkloadModel(ds *dataset.Dataset, model ml.Regressor, cfg SchedConfig) ([]*sched.Job, error) {
	cfg.setDefaults()
	rng := stats.NewRNG(cfg.WorkloadSeed)
	n := ds.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("experiments: empty dataset")
	}

	features := ds.Features()
	times := ds.Frame.Matrix(dataset.TimeColumns())
	nodes := ds.Frame.Floats(dataset.ColNodes)
	appNames := ds.Frame.Strings(dataset.ColApp)

	gpuCapable := map[string]bool{}
	for _, a := range apps.All() {
		gpuCapable[a.Name] = a.GPUSupport
	}

	// Draw the whole workload first (row choices and arrivals share one
	// RNG stream, so the draw order is part of the workload identity),
	// then push every distinct sampled row through the model in a single
	// batched call instead of one Predict per row.
	rowOf := make([]int, cfg.NumJobs)
	arrivalOf := make([]float64, cfg.NumJobs)
	clock := 0.0
	for i := range rowOf {
		rowOf[i] = rng.Intn(n)
		arrival := clock
		if cfg.ArrivalRate > 0 {
			clock += rng.Exponential(cfg.ArrivalRate)
			arrival = clock
		}
		arrivalOf[i] = arrival
	}

	// Dataset features are already normalized, so the raw model is
	// applied directly rather than via Predictor.PredictFeatures.
	batchOf := make(map[int]int, n) // dataset row -> batch index
	var batchX [][]float64
	for _, row := range rowOf {
		if _, ok := batchOf[row]; !ok {
			batchOf[row] = len(batchX)
			batchX = append(batchX, features[row])
		}
	}
	preds := ml.PredictBatch(model, batchX)

	jobs := make([]*sched.Job, cfg.NumJobs)
	for i := range jobs {
		row := rowOf[i]
		jobs[i] = &sched.Job{
			ID:         i,
			App:        appNames[row],
			GPUCapable: gpuCapable[appNames[row]],
			Arrival:    arrivalOf[i],
			Nodes:      int(nodes[row]),
			Runtimes:   times[row],
			Predicted:  rpv.RPV(preds[batchOf[row]]),
		}
	}
	return jobs, nil
}

// RunScheduling reproduces Figures 7 and 8: the same workload
// scheduled under each machine-assignment strategy, reporting makespan
// and average bounded slowdown. The cluster uses the Table I node
// counts.
func RunScheduling(ds *dataset.Dataset, pred *core.Predictor, cfg SchedConfig) ([]sched.Result, error) {
	cfg.setDefaults()
	jobs, err := SampleWorkload(ds, pred, cfg)
	if err != nil {
		return nil, err
	}
	strategies := []sched.Strategy{
		sched.NewRoundRobin(),
		sched.NewRandom(cfg.WorkloadSeed + 1),
		sched.NewUserRR(),
		sched.NewModelBased(),
	}
	if cfg.IncludeOracle {
		strategies = append(strategies, sched.NewOracle())
	}

	params := sched.Params{RetryCap: cfg.RetryCap}
	if cfg.NodeFaultRate > 0 {
		inj, err := fault.NewInjector(cfg.FaultSeed, fault.Plan{NodeFailure: cfg.NodeFaultRate})
		if err != nil {
			return nil, fmt.Errorf("experiments: %w", err)
		}
		params.Faults = inj
	}

	var results []sched.Result
	for _, strat := range strategies {
		// Fresh job copies per strategy: Run mutates scheduling fields.
		jcopy := make([]*sched.Job, len(jobs))
		for i, j := range jobs {
			cp := *j
			jcopy[i] = &cp
		}
		cluster := sched.NewCluster(arch.All())
		res, err := sched.Run(jcopy, cluster, strat, params)
		if err != nil {
			return nil, fmt.Errorf("experiments: scheduling with %s: %w", strat.Name(), err)
		}
		results = append(results, res)
	}
	return results, nil
}

// FormatSched renders the Figure 7 (makespan) and Figure 8 (average
// bounded slowdown) results.
func FormatSched(results []sched.Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figures 7 & 8 — multi-resource scheduling simulation\n")
	fmt.Fprintf(&b, "%-14s %14s %14s %12s\n", "strategy", "makespan (h)", "avg bd-slowdn", "avg wait (s)")
	for _, r := range results {
		fmt.Fprintf(&b, "%-14s %14.3f %14.2f %12.1f\n",
			r.Strategy, r.MakespanSec/3600, r.AvgBoundedSlowdown, r.AvgWaitSec)
	}
	return b.String()
}
