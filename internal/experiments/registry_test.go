package experiments

import (
	"strings"
	"testing"
)

// TestRegistryDrillInvariants is the poisoned-model drill at its
// canonical configuration: every poison shape caught at its gate, no
// poisoned prediction served, the healthy control promoted.
func TestRegistryDrillInvariants(t *testing.T) {
	res, err := RunRegistryDrill(RegistryDrillConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
	kinds := map[string]int{}
	for _, c := range res.Cases {
		kinds[c.Kind]++
	}
	for _, kind := range []string{"corrupt-blob", "shadow-worse", "rollout-regress", "shadow-better"} {
		if kinds[kind] != 2 {
			t.Fatalf("kind %s ran %d cases, want 2 (default config)", kind, kinds[kind])
		}
	}
}

// TestRegistryDrillDeterministic pins seeded reproducibility: the same
// configuration yields the same gates and reasons.
func TestRegistryDrillDeterministic(t *testing.T) {
	cfg := RegistryDrillConfig{Seed: 31, Cases: 1}
	a, err := RunRegistryDrill(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRegistryDrill(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Cases) != len(b.Cases) {
		t.Fatalf("case counts differ: %d vs %d", len(a.Cases), len(b.Cases))
	}
	for i := range a.Cases {
		x, y := a.Cases[i], b.Cases[i]
		if x.Kind != y.Kind || x.CaughtBy != y.CaughtBy || x.Detail != y.Detail || x.Promoted != y.Promoted {
			t.Fatalf("case %d differs between runs:\n  %+v\n  %+v", i, x, y)
		}
	}
}

// TestRegistryDrillCheckInvariants exercises the checker's refusals.
func TestRegistryDrillCheckInvariants(t *testing.T) {
	empty := &RegistryDrillResult{}
	if err := empty.CheckInvariants(); err == nil {
		t.Fatal("empty drill passed CheckInvariants")
	}
	served := &RegistryDrillResult{Cases: []RegistryDrillCase{
		{Kind: "shadow-worse", CaughtBy: "shadow-gate", PoisonServed: true},
	}}
	if err := served.CheckInvariants(); err == nil || !strings.Contains(err.Error(), "served") {
		t.Fatalf("served poison not flagged: %v", err)
	}
	missed := &RegistryDrillResult{Cases: []RegistryDrillCase{
		{Kind: "corrupt-blob", CaughtBy: ""},
	}}
	if err := missed.CheckInvariants(); err == nil {
		t.Fatal("uncaught corrupt blob passed CheckInvariants")
	}
	unpromoted := &RegistryDrillResult{Cases: []RegistryDrillCase{
		{Kind: "shadow-better", Promoted: false},
	}}
	if err := unpromoted.CheckInvariants(); err == nil {
		t.Fatal("rejected control passed CheckInvariants")
	}
}
