package experiments

import (
	"fmt"
	"strings"

	"crossarch/internal/core"
	"crossarch/internal/dataset"
	"crossarch/internal/ml"
	"crossarch/internal/perfmodel"
)

// Fig4Row is one bar of Figure 4: XGBoost trained on two of the three
// resource scales and evaluated on the held-out third.
type Fig4Row struct {
	HeldOutScale string
	MAE          float64
	SOS          float64
	TestRows     int
}

// Fig4 reproduces the leave-one-scale-out ablation: hold out each of
// 1-core, 1-node, and 2-node in turn, train XGBoost on the remaining
// two scales, evaluate on the held-out scale.
func Fig4(ds *dataset.Dataset, cfg Config) ([]Fig4Row, error) {
	cfg.setDefaults()
	var rows []Fig4Row
	for _, held := range perfmodel.Scales {
		label := held.String()
		trainFrame := ds.Frame.FilterNeq(dataset.ColScale, label)
		testFrame := ds.Frame.FilterEq(dataset.ColScale, label)
		if trainFrame.NumRows() == 0 || testFrame.NumRows() == 0 {
			return nil, fmt.Errorf("experiments: fig4 scale %s has empty split", label)
		}
		train := &dataset.Dataset{Frame: trainFrame, Norms: ds.Norms}
		test := &dataset.Dataset{Frame: testFrame, Norms: ds.Norms}
		model := core.DefaultXGBoost(cfg.ModelSeed)
		if err := model.Fit(train.Features(), train.Targets()); err != nil {
			return nil, fmt.Errorf("experiments: fig4 training without %s: %w", label, err)
		}
		ev := ml.Evaluate(model, test.Features(), test.Targets())
		rows = append(rows, Fig4Row{HeldOutScale: label, MAE: ev.MAE, SOS: ev.SOS, TestRows: ev.N})
	}
	return rows, nil
}

// FormatFig4 renders the rows.
func FormatFig4(rows []Fig4Row) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Figure 4 — XGBoost trained on two scales, evaluated on the third\n")
	fmt.Fprintf(&b, "%-12s %8s %8s %8s\n", "held out", "MAE", "SOS", "n")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-12s %8.4f %8.4f %8d\n", r.HeldOutScale, r.MAE, r.SOS, r.TestRows)
	}
	return b.String()
}
