package experiments

// This file holds the fault sweep, the robustness experiment behind
// the mphpc-faults CLI. One workload is pushed through the full
// pipeline — degradation ladder for predictions, node failures in the
// scheduler — at a range of injection rates, demonstrating that
// makespan degrades gracefully toward (not off a cliff onto) the
// no-prediction floor.

import (
	"fmt"
	"strings"

	"crossarch/internal/arch"
	"crossarch/internal/core"
	"crossarch/internal/dataset"
	"crossarch/internal/fault"
	"crossarch/internal/ml"
	"crossarch/internal/ml/baseline"
	"crossarch/internal/obs"
	"crossarch/internal/sched"
)

// FaultConfig configures the fault-injection sweep.
type FaultConfig struct {
	// Sched shapes the workload (jobs, arrivals, seed), shared by every
	// sweep point so rate is the only variable.
	Sched SchedConfig
	// Rates are the uniform per-class injection rates to sweep
	// (nil = 0, 0.05, 0.2, 0.5).
	Rates []float64
	// FaultSeed seeds the injector. Because draws are keyed, the fault
	// set at a lower rate is a subset of the set at a higher rate under
	// the same seed, which is what makes the sweep read as one world
	// getting progressively less reliable.
	FaultSeed uint64
	// RetryCap bounds per-job re-executions (0 = sched default).
	RetryCap int
}

func (c *FaultConfig) setDefaults() {
	c.Sched.setDefaults()
	if c.Rates == nil {
		c.Rates = []float64{0, 0.05, 0.2, 0.5}
	}
}

// FaultPoint is one sweep row: the model-based pipeline under
// injection at Rate, next to the no-prediction floor (identity ladder,
// same faults) it must stay clearly below.
type FaultPoint struct {
	Rate   float64
	Result sched.Result
	// Floor is the same workload and faults scheduled with the
	// identity-only ladder (no model, no fallback): what the cluster
	// does when prediction is gone entirely.
	Floor sched.Result
	// ModelCorrupted reports whether the ModelCorrupt draw removed the
	// primary model for this point (the ladder then starts at the
	// fallback rung).
	ModelCorrupted bool
	// PrimaryRows/FallbackRows/IdentityRows count prediction rows by
	// the ladder level that resolved them; they always sum to the
	// number of predicted rows.
	PrimaryRows, FallbackRows, IdentityRows float64
}

// DegradedRows is the count of rows resolved below the primary rung.
func (p FaultPoint) DegradedRows() float64 { return p.FallbackRows + p.IdentityRows }

// ladderRows reads the ladder counters.
func ladderRows() (primary, fallback, identity float64) {
	reg := obs.Default()
	return reg.Counter("ml.ladder.primary.rows").Value(),
		reg.Counter("ml.ladder.fallback.rows").Value(),
		reg.Counter("ml.ladder.identity.rows").Value()
}

// RunFaultSweep runs the pipeline at every configured rate. For each
// point it builds a fresh injector (same seed), assembles the ladder —
// the trained model over a mean fallback fitted on the dataset, unless
// the ModelCorrupt draw removed the primary — predicts the workload
// through it, and schedules under node failures with the Model-based
// strategy. The floor run repeats the schedule with identity
// predictions and the same injected node failures.
func RunFaultSweep(ds *dataset.Dataset, pred *core.Predictor, cfg FaultConfig) ([]FaultPoint, error) {
	cfg.setDefaults()
	outputs := len(dataset.TimeColumns())

	// One shared fallback: the mean baseline the paper uses as its
	// model floor, fitted on the same dataset.
	fallback := baseline.New()
	if err := fallback.Fit(ds.Features(), ds.Targets()); err != nil {
		return nil, fmt.Errorf("experiments: fitting fault-sweep fallback: %w", err)
	}

	var points []FaultPoint
	for _, rate := range cfg.Rates {
		inj, err := fault.NewInjector(cfg.FaultSeed, fault.Uniform(rate))
		if err != nil {
			return nil, fmt.Errorf("experiments: fault sweep rate %v: %w", rate, err)
		}
		pt := FaultPoint{Rate: rate}

		// A corrupt model artifact takes out the whole primary rung;
		// the ladder absorbs it instead of the pipeline dying.
		primary := pred.Model
		if inj.Hit(fault.ModelCorrupt, 0) {
			primary = nil
			pt.ModelCorrupted = true
		}
		ladder, err := ml.NewDegradingPredictor(primary, fallback, outputs, ml.DegradeOpts{
			Injector: inj,
			Clock:    &fault.Clock{},
		})
		if err != nil {
			return nil, err
		}

		p0, f0, i0 := ladderRows()
		jobs, err := SampleWorkloadModel(ds, ladder, cfg.Sched)
		if err != nil {
			return nil, err
		}
		p1, f1, i1 := ladderRows()
		pt.PrimaryRows, pt.FallbackRows, pt.IdentityRows = p1-p0, f1-f0, i1-i0

		params := sched.Params{Faults: inj, RetryCap: cfg.RetryCap}
		pt.Result, err = sched.Run(jobs, sched.NewCluster(arch.All()), sched.NewModelBased(), params)
		if err != nil {
			return nil, err
		}

		// Floor: identical workload identity and faults, no prediction
		// at all (identity ladder ranks every machine equally).
		identity, err := ml.NewDegradingPredictor(nil, nil, outputs, ml.DegradeOpts{})
		if err != nil {
			return nil, err
		}
		floorJobs, err := SampleWorkloadModel(ds, identity, cfg.Sched)
		if err != nil {
			return nil, err
		}
		pt.Floor, err = sched.Run(floorJobs, sched.NewCluster(arch.All()), sched.NewModelBased(), params)
		if err != nil {
			return nil, err
		}
		points = append(points, pt)
	}
	return points, nil
}

// FormatFaultSweep renders the makespan-vs-fault-rate table.
func FormatFaultSweep(points []FaultPoint) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fault sweep — graceful degradation under injected failures\n")
	fmt.Fprintf(&b, "%-6s %12s %12s %8s %9s %11s %10s %10s %10s %8s\n",
		"rate", "makespan(h)", "floor(h)", "killed", "abandoned", "wasted(nh)",
		"primary", "fallback", "identity", "model")
	for _, p := range points {
		model := "ok"
		if p.ModelCorrupted {
			model = "corrupt"
		}
		fmt.Fprintf(&b, "%-6.2f %12.3f %12.3f %8d %9d %11.1f %10.0f %10.0f %10.0f %8s\n",
			p.Rate, p.Result.MakespanSec/3600, p.Floor.MakespanSec/3600,
			p.Result.KilledAttempts, p.Result.AbandonedJobs, p.Result.WastedNodeSec/3600,
			p.PrimaryRows, p.FallbackRows, p.IdentityRows, model)
	}
	return b.String()
}
