package experiments

// This file holds the workload-realism sweep: generated (or replayed)
// traces from internal/workload pushed through the scheduler under
// FCFS baselines and the SLO-aware configuration (EDF + fairness
// shares + preemption), answering whether RPV-aware placement still
// pays off under bursty, deadline-constrained, multi-tenant load.

import (
	"bytes"
	"fmt"
	"math"
	"reflect"
	"strings"

	"crossarch/internal/apps"
	"crossarch/internal/arch"
	"crossarch/internal/dataset"
	"crossarch/internal/fault"
	"crossarch/internal/ml"
	"crossarch/internal/rpv"
	"crossarch/internal/sched"
	"crossarch/internal/stats"
	"crossarch/internal/workload"
)

// JobsFromTrace binds every trace job to a dataset row and assembles
// the schedulable workload. The binding is a pure function of the
// trace content — row = RNG(Key2(trace seed, job ID)) — so a trace
// that is written to disk and read back replays onto exactly the rows
// the original bound, independent of any generation-time state.
//
// Jobs carrying a pinned RuntimeSec (the SWF import path) run for that
// duration on every machine and get a flat RPV: the trace knows the
// real duration but nothing about architecture, so no strategy gains
// placement information from it. All other jobs replay the bound row's
// observed per-machine runtimes scaled by the trace's RuntimeScale,
// with the model's prediction attached for the Model-based strategy.
func JobsFromTrace(ds *dataset.Dataset, model ml.Regressor, tr *workload.Trace) ([]*sched.Job, error) {
	if err := tr.Validate(); err != nil {
		return nil, err
	}
	n := ds.NumRows()
	if n == 0 {
		return nil, fmt.Errorf("experiments: empty dataset")
	}
	features := ds.Features()
	times := ds.Frame.Matrix(dataset.TimeColumns())
	appNames := ds.Frame.Strings(dataset.ColApp)
	machines := len(dataset.TimeColumns())

	gpuCapable := map[string]bool{}
	for _, a := range apps.All() {
		gpuCapable[a.Name] = a.GPUSupport
	}

	// Bind rows first, then push every distinct row that needs a
	// prediction through the model in one batched call.
	rowOf := make([]int, len(tr.Jobs))
	batchOf := make(map[int]int, len(tr.Jobs))
	var batchX [][]float64
	for i, tj := range tr.Jobs {
		row := stats.NewRNG(fault.Key2(tr.Seed, uint64(tj.ID))).Intn(n)
		rowOf[i] = row
		if tj.RuntimeSec > 0 {
			continue
		}
		if _, ok := batchOf[row]; !ok {
			batchOf[row] = len(batchX)
			batchX = append(batchX, features[row])
		}
	}
	preds := ml.PredictBatch(model, batchX)

	flat := make(rpv.RPV, machines)
	for k := range flat {
		flat[k] = 1
	}

	jobs := make([]*sched.Job, len(tr.Jobs))
	for i, tj := range tr.Jobs {
		row := rowOf[i]
		scale := tj.RuntimeScale
		if scale == 0 {
			scale = 1
		}
		j := &sched.Job{
			ID:         tj.ID,
			App:        appNames[row],
			GPUCapable: gpuCapable[appNames[row]],
			Arrival:    tj.ArrivalSec,
			Tenant:     tj.Tenant,
			Nodes:      tj.Nodes,
		}
		if tj.DeadlineSec > 0 {
			j.Deadline = tj.ArrivalSec + tj.DeadlineSec
		}
		rts := make([]float64, machines)
		if tj.RuntimeSec > 0 {
			for k := range rts {
				rts[k] = tj.RuntimeSec * scale
			}
			j.Predicted = flat
		} else {
			for k, v := range times[row] {
				rts[k] = v * scale
			}
			j.Predicted = rpv.RPV(preds[batchOf[row]])
		}
		j.Runtimes = rts
		jobs[i] = j
	}
	return jobs, nil
}

// WorkloadConfig configures the workload-realism sweep.
type WorkloadConfig struct {
	// Profiles selects workload profiles by name (nil = all).
	Profiles []string
	// Seed drives trace generation; every profile derives its spec from
	// this one seed.
	Seed uint64
	// HorizonSec is the generation window in seconds (0 = 3600).
	HorizonSec float64
	// Rate is the base arrival rate in jobs/second (0 = 4, which keeps
	// the Table I machines contended enough that queue order matters);
	// each profile shapes it into its envelope or burst train.
	Rate float64
	// MaxJobs truncates each generated trace (0 = unbounded).
	MaxJobs int
	// NodeFaultRate injects node failures at this per-attempt rate
	// (0 = none); FaultSeed seeds the injector and RetryCap bounds
	// per-job re-executions (0 = sched default).
	NodeFaultRate float64
	FaultSeed     uint64
	RetryCap      int
}

func (c *WorkloadConfig) setDefaults() {
	if c.HorizonSec == 0 {
		c.HorizonSec = 3600
	}
	if c.Rate == 0 {
		c.Rate = 4
	}
}

// WorkloadSchedulerNames lists the sweep's scheduler configurations in
// run order: three FCFS+EASY baselines differing only in machine
// assignment, then the SLO-aware configuration (EDF queue order,
// fairness shares, deadline-driven preemption) over the same
// Model-based assignment.
var WorkloadSchedulerNames = []string{"fcfs+rr", "fcfs+user-rr", "fcfs+model", "slo+model"}

// SLOSchedulerName is the sweep's SLO-aware configuration.
const SLOSchedulerName = "slo+model"

// WorkloadPoint is one sweep cell: a profile's trace under one
// scheduler configuration.
type WorkloadPoint struct {
	Profile   string
	Scheduler string
	// Jobs is the generated trace length (shared by every scheduler row
	// of the same profile).
	Jobs   int
	Result sched.Result
}

// MissPct is the deadline miss rate in percent (0 when the trace
// carries no deadlines).
func (p WorkloadPoint) MissPct() float64 { return missPct(p.Result) }

func missPct(r sched.Result) float64 {
	if r.DeadlineJobs == 0 {
		return 0
	}
	return 100 * float64(r.MissedDeadlines) / float64(r.DeadlineJobs)
}

// WorkloadVerdict is the sweep's headline read-out on the bursty
// profile (or the first profile when bursty is not in the sweep): the
// SLO-aware configuration against the FCFS baselines.
type WorkloadVerdict struct {
	Profile string
	// SLOMissPct and BestFCFSMissPct compare deadline miss rates; the
	// FCFS number is the best (lowest) across the three baselines.
	SLOMissPct      float64
	BestFCFSMissPct float64
	// SLOMakespanSec against FCFSModelMakespanSec isolates what the SLO
	// machinery costs (or saves) at identical machine assignment.
	SLOMakespanSec       float64
	FCFSModelMakespanSec float64
	// FewerMisses reports whether slo+model's miss rate is no worse
	// than every FCFS baseline's.
	FewerMisses bool
}

// WorkloadSweep is the full grid plus its verdict.
type WorkloadSweep struct {
	Points  []WorkloadPoint
	Verdict WorkloadVerdict
}

// resolveProfiles expands the config's profile selection.
func resolveProfiles(cfg WorkloadConfig) ([]workload.Profile, error) {
	if cfg.Profiles == nil {
		return workload.Profiles(), nil
	}
	var out []workload.Profile
	for _, name := range cfg.Profiles {
		p, err := workload.ProfileByName(name)
		if err != nil {
			return nil, err
		}
		out = append(out, p)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("experiments: workload sweep selects no profiles")
	}
	return out, nil
}

// baseParams builds the scheduler parameters shared by every sweep
// cell (faults, retry cap); the SLO cell layers its machinery on top.
func baseParams(cfg WorkloadConfig) (sched.Params, error) {
	p := sched.Params{RetryCap: cfg.RetryCap}
	if cfg.NodeFaultRate > 0 {
		inj, err := fault.NewInjector(cfg.FaultSeed, fault.Plan{NodeFailure: cfg.NodeFaultRate})
		if err != nil {
			return sched.Params{}, fmt.Errorf("experiments: workload sweep faults: %w", err)
		}
		p.Faults = inj
	}
	return p, nil
}

// sloParams is baseParams plus the SLO machinery: EDF queue order,
// fairness shares, and deadline-driven preemption with requeue.
func sloParams(base sched.Params, shares map[string]float64) sched.Params {
	base.R1 = sched.EDF{}
	base.Shares = shares
	base.Preempt = true
	base.PreemptRequeue = true
	return base
}

// runWorkloadSched schedules a fresh copy of the jobs (Run mutates
// scheduling fields) on a fresh Table I cluster.
func runWorkloadSched(jobs []*sched.Job, strat sched.Strategy, params sched.Params) (sched.Result, error) {
	jcopy := make([]*sched.Job, len(jobs))
	for i, j := range jobs {
		cp := *j
		jcopy[i] = &cp
	}
	return sched.Run(jcopy, sched.NewCluster(arch.All()), strat, params)
}

// ReplayTrace schedules one trace under every configuration in
// WorkloadSchedulerNames, labeling the resulting points with label.
// shares feeds the SLO configuration's fairness ordering (nil = no
// share ordering); cfg contributes the fault/retry parameters shared
// by every cell.
func ReplayTrace(ds *dataset.Dataset, model ml.Regressor, tr *workload.Trace, label string, shares map[string]float64, cfg WorkloadConfig) ([]WorkloadPoint, error) {
	jobs, err := JobsFromTrace(ds, model, tr)
	if err != nil {
		return nil, fmt.Errorf("experiments: replaying %s workload: %w", label, err)
	}
	base, err := baseParams(cfg)
	if err != nil {
		return nil, err
	}
	var points []WorkloadPoint
	for _, name := range WorkloadSchedulerNames {
		var strat sched.Strategy
		params := base
		switch name {
		case "fcfs+rr":
			strat = sched.NewRoundRobin()
		case "fcfs+user-rr":
			strat = sched.NewUserRR()
		case "fcfs+model":
			strat = sched.NewModelBased()
		case SLOSchedulerName:
			strat = sched.NewModelBased()
			params = sloParams(base, shares)
		default:
			return nil, fmt.Errorf("experiments: unknown workload scheduler %q", name)
		}
		res, err := runWorkloadSched(jobs, strat, params)
		if err != nil {
			return nil, fmt.Errorf("experiments: scheduling %s under %s: %w", label, name, err)
		}
		points = append(points, WorkloadPoint{
			Profile: label, Scheduler: name, Jobs: len(jobs), Result: res,
		})
	}
	return points, nil
}

// VerdictFor computes the sweep verdict over an externally-assembled
// point list (the CLI's single-trace replay path).
func VerdictFor(points []WorkloadPoint) WorkloadVerdict { return workloadVerdict(points) }

// RunWorkloadSweep generates one trace per profile and schedules it
// under each configuration in WorkloadSchedulerNames. Every scheduler
// row of a profile replays the identical trace — scheduler policy is
// the only variable within a profile, arrival shape the only variable
// across profiles.
func RunWorkloadSweep(ds *dataset.Dataset, model ml.Regressor, cfg WorkloadConfig) (*WorkloadSweep, error) {
	cfg.setDefaults()
	profiles, err := resolveProfiles(cfg)
	if err != nil {
		return nil, err
	}

	sw := &WorkloadSweep{}
	for _, prof := range profiles {
		spec := prof.Build(cfg.Seed, cfg.HorizonSec, cfg.Rate)
		spec.MaxJobs = cfg.MaxJobs
		tr, err := workload.Generate(spec)
		if err != nil {
			return nil, fmt.Errorf("experiments: generating %s workload: %w", prof.Name, err)
		}
		points, err := ReplayTrace(ds, model, tr, prof.Name, workload.ShareMap(spec.Tenants), cfg)
		if err != nil {
			return nil, err
		}
		sw.Points = append(sw.Points, points...)
	}
	sw.Verdict = workloadVerdict(sw.Points)
	return sw, nil
}

// workloadVerdict reads the headline comparison off the grid.
func workloadVerdict(points []WorkloadPoint) WorkloadVerdict {
	if len(points) == 0 {
		return WorkloadVerdict{}
	}
	profile := points[0].Profile
	for _, p := range points {
		if p.Profile == "bursty" {
			profile = "bursty"
			break
		}
	}
	v := WorkloadVerdict{Profile: profile, BestFCFSMissPct: math.Inf(1)}
	for _, p := range points {
		if p.Profile != profile {
			continue
		}
		if p.Scheduler == SLOSchedulerName {
			v.SLOMissPct = p.MissPct()
			v.SLOMakespanSec = p.Result.MakespanSec
			continue
		}
		if mp := p.MissPct(); mp < v.BestFCFSMissPct {
			v.BestFCFSMissPct = mp
		}
		if p.Scheduler == "fcfs+model" {
			v.FCFSModelMakespanSec = p.Result.MakespanSec
		}
	}
	if math.IsInf(v.BestFCFSMissPct, 1) {
		v.BestFCFSMissPct = 0
	}
	v.FewerMisses = v.SLOMissPct <= v.BestFCFSMissPct
	return v
}

// FormatWorkloadSweep renders the profile × scheduler grid and the
// verdict line.
func FormatWorkloadSweep(sw *WorkloadSweep) string {
	var b strings.Builder
	fmt.Fprintf(&b, "Workload sweep — deadline performance across arrival profiles\n")
	fmt.Fprintf(&b, "%-10s %-14s %6s %12s %12s %11s %7s %8s %7s\n",
		"profile", "scheduler", "jobs", "makespan(h)", "avg-wait(s)", "missed", "miss%", "preempt", "aband")
	for _, p := range sw.Points {
		r := p.Result
		fmt.Fprintf(&b, "%-10s %-14s %6d %12.3f %12.1f %5d/%-5d %7.1f %8d %7d\n",
			p.Profile, p.Scheduler, p.Jobs, r.MakespanSec/3600, r.AvgWaitSec,
			r.MissedDeadlines, r.DeadlineJobs, p.MissPct(), r.PreemptedAttempts, r.AbandonedJobs)
	}
	v := sw.Verdict
	rel := 0.0
	if v.FCFSModelMakespanSec > 0 {
		rel = v.SLOMakespanSec / v.FCFSModelMakespanSec
	}
	fmt.Fprintf(&b, "\nverdict (%s): slo+model misses %.1f%% vs best FCFS %.1f%%; makespan %.2fx fcfs+model\n",
		v.Profile, v.SLOMissPct, v.BestFCFSMissPct, rel)
	return b.String()
}

// RunWorkloadSmoke runs the sweep twice and checks every invariant the
// simulation guarantees by construction — job and deadline
// conservation, per-tenant totals, preemption confined to the SLO
// configuration, determinism across identical runs, and replay
// identity through the serialized trace format. It returns the (first)
// sweep for display; any violation is an error. This is the `make
// check` gate: it must hold for every seed, not just golden ones.
func RunWorkloadSmoke(ds *dataset.Dataset, model ml.Regressor, cfg WorkloadConfig) (*WorkloadSweep, error) {
	sw, err := RunWorkloadSweep(ds, model, cfg)
	if err != nil {
		return nil, err
	}
	again, err := RunWorkloadSweep(ds, model, cfg)
	if err != nil {
		return nil, err
	}
	if !reflect.DeepEqual(sw, again) {
		return nil, fmt.Errorf("experiments: workload smoke: identical sweeps diverged — nondeterminism")
	}
	for _, p := range sw.Points {
		if err := checkWorkloadInvariants(p); err != nil {
			return nil, err
		}
	}
	if err := checkTraceReplayIdentity(ds, model, cfg); err != nil {
		return nil, err
	}
	return sw, nil
}

// checkWorkloadInvariants verifies one sweep cell's accounting.
func checkWorkloadInvariants(p WorkloadPoint) error {
	r := p.Result
	fail := func(format string, args ...any) error {
		return fmt.Errorf("experiments: workload smoke %s/%s: %s", p.Profile, p.Scheduler, fmt.Sprintf(format, args...))
	}
	if r.CompletedJobs+r.AbandonedJobs != p.Jobs {
		return fail("completed %d + abandoned %d != %d jobs", r.CompletedJobs, r.AbandonedJobs, p.Jobs)
	}
	if r.MetDeadlines+r.MissedDeadlines != r.DeadlineJobs {
		return fail("met %d + missed %d != %d deadline jobs", r.MetDeadlines, r.MissedDeadlines, r.DeadlineJobs)
	}
	var jobs, completed, abandoned, deadline, missed int
	for _, t := range r.PerTenant {
		jobs += t.Jobs
		completed += t.Completed
		abandoned += t.Abandoned
		deadline += t.DeadlineJobs
		missed += t.MissedDeadlines
	}
	if jobs != p.Jobs || completed != r.CompletedJobs || abandoned != r.AbandonedJobs ||
		deadline != r.DeadlineJobs || missed != r.MissedDeadlines {
		return fail("per-tenant sums (jobs=%d completed=%d abandoned=%d deadline=%d missed=%d) disagree with totals",
			jobs, completed, abandoned, deadline, missed)
	}
	if p.Scheduler != SLOSchedulerName && r.PreemptedAttempts != 0 {
		return fail("%d preemptions under a non-preemptive configuration", r.PreemptedAttempts)
	}
	if r.PreemptedNodeSec > r.WastedNodeSec+1e-9 {
		return fail("preempted node-sec %v exceeds wasted node-sec %v", r.PreemptedNodeSec, r.WastedNodeSec)
	}
	if math.IsNaN(r.MakespanSec) || math.IsInf(r.MakespanSec, 0) || (p.Jobs > 0 && r.MakespanSec <= 0) {
		return fail("makespan %v for %d jobs", r.MakespanSec, p.Jobs)
	}
	return nil
}

// checkTraceReplayIdentity generates the first selected profile's
// trace, round-trips it through the on-disk format, and demands the
// replayed schedule be deep-equal to the direct one: recording a
// workload must never change what replaying it does.
func checkTraceReplayIdentity(ds *dataset.Dataset, model ml.Regressor, cfg WorkloadConfig) error {
	cfg.setDefaults()
	profiles, err := resolveProfiles(cfg)
	if err != nil {
		return err
	}
	spec := profiles[0].Build(cfg.Seed, cfg.HorizonSec, cfg.Rate)
	spec.MaxJobs = cfg.MaxJobs
	tr, err := workload.Generate(spec)
	if err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := workload.WriteTrace(&buf, tr); err != nil {
		return err
	}
	reread, err := workload.ReadTrace(&buf)
	if err != nil {
		return err
	}
	direct, err := JobsFromTrace(ds, model, tr)
	if err != nil {
		return err
	}
	replayed, err := JobsFromTrace(ds, model, reread)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(direct, replayed) {
		return fmt.Errorf("experiments: workload smoke: %s jobs differ after trace round-trip", profiles[0].Name)
	}
	base, err := baseParams(cfg)
	if err != nil {
		return err
	}
	params := sloParams(base, workload.ShareMap(spec.Tenants))
	r1, err := runWorkloadSched(direct, sched.NewModelBased(), params)
	if err != nil {
		return err
	}
	r2, err := runWorkloadSched(replayed, sched.NewModelBased(), params)
	if err != nil {
		return err
	}
	if !reflect.DeepEqual(r1, r2) {
		return fmt.Errorf("experiments: workload smoke: %s schedule differs after trace round-trip", profiles[0].Name)
	}
	return nil
}
