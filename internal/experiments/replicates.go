package experiments

import (
	"fmt"
	"strings"

	"crossarch/internal/core"
	"crossarch/internal/dataset"
	"crossarch/internal/stats"
)

// StrategyReplicates summarizes one strategy across several workload
// resamplings: mean makespan and slowdown with bootstrap confidence
// intervals.
type StrategyReplicates struct {
	Strategy   string
	MakespanH  stats.CI
	Slowdown   stats.CI
	Replicates int
}

// SchedulingReplicates repeats the Figure 7/8 simulation across
// distinct workload seeds and reports per-strategy confidence
// intervals, establishing that the strategy ordering is not an
// artifact of one resampling. Replicates share the predictor; only the
// workload draw changes.
func SchedulingReplicates(ds *dataset.Dataset, pred *core.Predictor, cfg SchedConfig, replicates int) ([]StrategyReplicates, error) {
	if replicates < 2 {
		return nil, fmt.Errorf("experiments: need at least 2 replicates, got %d", replicates)
	}
	makespans := map[string][]float64{}
	slowdowns := map[string][]float64{}
	var order []string
	for rep := 0; rep < replicates; rep++ {
		rcfg := cfg
		rcfg.WorkloadSeed = cfg.WorkloadSeed + uint64(rep)*7919
		results, err := RunScheduling(ds, pred, rcfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: replicate %d: %w", rep, err)
		}
		for _, r := range results {
			if rep == 0 {
				order = append(order, r.Strategy)
			}
			makespans[r.Strategy] = append(makespans[r.Strategy], r.MakespanSec/3600)
			slowdowns[r.Strategy] = append(slowdowns[r.Strategy], r.AvgBoundedSlowdown)
		}
	}
	rng := stats.NewRNG(cfg.WorkloadSeed + 1)
	var out []StrategyReplicates
	for _, name := range order {
		out = append(out, StrategyReplicates{
			Strategy:   name,
			MakespanH:  stats.BootstrapMeanCI(makespans[name], 0.95, 1000, rng),
			Slowdown:   stats.BootstrapMeanCI(slowdowns[name], 0.95, 1000, rng),
			Replicates: replicates,
		})
	}
	return out, nil
}

// FormatReplicates renders the replicate table.
func FormatReplicates(rows []StrategyReplicates) string {
	var b strings.Builder
	if len(rows) == 0 {
		return ""
	}
	fmt.Fprintf(&b, "Figures 7 & 8 with %d workload replicates (mean [95%% CI])\n", rows[0].Replicates)
	fmt.Fprintf(&b, "%-14s %-28s %-28s\n", "strategy", "makespan (h)", "avg bounded slowdown")
	for _, r := range rows {
		fmt.Fprintf(&b, "%-14s %-28s %-28s\n", r.Strategy, r.MakespanH, r.Slowdown)
	}
	return b.String()
}
